package caba_test

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"reflect"
	"testing"

	caba "github.com/caba-sim/caba"
)

// useCaseConfig is the small reference machine the use-case tests run
// on: golden scale, one worker by default, full Baseline mechanisms.
func useCaseConfig() caba.Config {
	cfg := caba.Baseline()
	cfg.Scale = 0.03
	cfg.SMWorkers = 1
	return cfg
}

// smallMachine shrinks per-SM thread capacity so compute-bound apps
// (whose size scales with machine fill, not Config.Scale) finish fast.
func smallMachine(cfg caba.Config) caba.Config {
	cfg.MaxThreadsPerSM = 512
	return cfg
}

// TestUseCaseGoldenEquivalence pins the tentpole invariant: with the
// assist use cases off (UseCompression, the zero value every paper
// design carries), runs are byte-identical to the recorded goldens —
// the prefetcher and result cache are never allocated, never consulted,
// and perturb no counter.
func TestUseCaseGoldenEquivalence(t *testing.T) {
	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file: %v", err)
	}
	want := map[string]*caba.Metrics{}
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	for _, design := range []caba.Design{caba.Base, caba.CABABDI} {
		design := design
		t.Run(design.Name, func(t *testing.T) {
			if design.UseCase != caba.UseCompression {
				t.Fatalf("paper design %s carries UseCase %v, want the zero value", design.Name, design.UseCase)
			}
			res, err := caba.Run(useCaseConfig(), design, "PVC", 1)
			if err != nil {
				t.Fatal(err)
			}
			w, ok := want["PVC/"+design.Name]
			if !ok {
				t.Fatalf("golden file has no entry for PVC/%s", design.Name)
			}
			if !reflect.DeepEqual(w, res.Stats) {
				for _, d := range w.Diff(res.Stats) {
					t.Errorf("use-cases-off run diverged from golden: %s", d)
				}
			}
			s := res.Stats
			for name, v := range map[string]uint64{
				"PrefetchTriggers":  s.PrefetchTriggers,
				"PrefetchThrottled": s.PrefetchThrottled,
				"PrefetchUseful":    s.PrefetchUseful,
				"MemoHits":          s.MemoHits,
				"MemoMisses":        s.MemoMisses,
				"MemoNoSlot":        s.MemoNoSlot,
				"MemoUpdates":       s.MemoUpdates,
			} {
				if v != 0 {
					t.Errorf("%s = %d with use cases off, want 0", name, v)
				}
			}
		})
	}
}

// TestUseCaseDeterminismGrid runs each use-case design across the full
// execution-strategy grid — SMWorkers {1,4} × FastForward {off,on} ×
// BatchIssue {off,on} — and requires bit-identical statistics from every
// combination. The use-case structures are per-SM and quiescence/batch
// establishment refuse to claim stretches the use cases could act in, so
// the strategies must be invisible.
func TestUseCaseDeterminismGrid(t *testing.T) {
	cases := []struct {
		design caba.Design
		app    string
		small  bool
	}{
		{caba.CABAPrefetch, "STRD", false},
		{caba.CABAMemo, "TBL", true},
		{caba.CABACombined, "STRD", false},
	}
	for _, c := range cases {
		c := c
		t.Run(c.design.Name+"/"+c.app, func(t *testing.T) {
			var ref *caba.Metrics
			var refName string
			for _, workers := range []int{1, 4} {
				for _, ff := range []bool{false, true} {
					for _, batch := range []bool{false, true} {
						cfg := useCaseConfig()
						if c.small {
							cfg = smallMachine(cfg)
						}
						cfg.SMWorkers = workers
						cfg.FastForward = ff
						cfg.BatchIssue = batch
						name := fmt.Sprintf("w%d-ff%v-batch%v", workers, ff, batch)
						res, err := caba.Run(cfg, c.design, c.app, 1)
						if err != nil {
							t.Fatalf("%s: %v", name, err)
						}
						// FF bookkeeping counters differ by construction; the
						// architected statistics must not.
						got := *res.Stats
						if ref == nil {
							r := got
							ref, refName = &r, name
							continue
						}
						if !reflect.DeepEqual(*ref, got) {
							for _, d := range ref.Diff(&got) {
								t.Errorf("%s vs %s: %s", refName, name, d)
							}
						}
					}
				}
			}
		})
	}
}

// TestPrefetchWinsOnSTRD pins the acceptance claim for the prefetch use
// case: on the low-occupancy strided stream, assist-warp prefetching
// fires, fills lines demand later hits, and measurably reduces cycles.
func TestPrefetchWinsOnSTRD(t *testing.T) {
	base, err := caba.Run(useCaseConfig(), caba.Base, "STRD", 1)
	if err != nil {
		t.Fatal(err)
	}
	pf, err := caba.Run(useCaseConfig(), caba.CABAPrefetch, "STRD", 1)
	if err != nil {
		t.Fatal(err)
	}
	if pf.Stats.PrefetchTriggers == 0 {
		t.Error("no prefetch triggers fired")
	}
	if pf.Stats.PrefetchUseful == 0 {
		t.Error("no prefetched line was ever hit by demand")
	}
	if pf.Cycles >= base.Cycles {
		t.Errorf("prefetch did not win: %d cycles vs base %d", pf.Cycles, base.Cycles)
	}
}

// TestMemoizationWinsOnTBL pins the acceptance claim for the memoization
// use case: on the SFU-bound repeated-operand kernel, result-cache
// probes add SFU throughput past the port's initiation interval and
// measurably reduce cycles.
func TestMemoizationWinsOnTBL(t *testing.T) {
	cfg := smallMachine(useCaseConfig())
	base, err := caba.Run(cfg, caba.Base, "TBL", 1)
	if err != nil {
		t.Fatal(err)
	}
	memo, err := caba.Run(cfg, caba.CABAMemo, "TBL", 1)
	if err != nil {
		t.Fatal(err)
	}
	if memo.Stats.MemoHits == 0 {
		t.Error("no memo probes launched")
	}
	if memo.Stats.MemoUpdates == 0 {
		t.Error("no results were ever installed")
	}
	if memo.Cycles >= base.Cycles {
		t.Errorf("memoization did not win: %d cycles vs base %d", memo.Cycles, base.Cycles)
	}
}

// TestUseCaseSnapshotResume checkpoints a run with both use cases live
// (stride table trained, result cache populated, probes possibly in
// flight) and requires the resumed run to converge to the bit-identical
// result of the uninterrupted one — the serialized use-case state is
// part of the architected machine.
func TestUseCaseSnapshotResume(t *testing.T) {
	for _, c := range []struct {
		design caba.Design
		app    string
		small  bool
	}{
		{caba.CABAPrefetch, "STRD", false},
		{caba.CABAMemo, "TBL", true},
	} {
		c := c
		t.Run(c.design.Name+"/"+c.app, func(t *testing.T) {
			cfg := useCaseConfig()
			if c.small {
				cfg = smallMachine(cfg)
			}
			straight, err := caba.Run(cfg, c.design, c.app, 1)
			if err != nil {
				t.Fatal(err)
			}

			// Capture checkpoints at thirds of the run.
			ckCfg := cfg
			ckCfg.CheckpointEvery = straight.Cycles / 3
			if ckCfg.CheckpointEvery == 0 {
				t.Fatalf("run too short to checkpoint (%d cycles)", straight.Cycles)
			}
			var blobs [][]byte
			_, _, err = caba.RunResumable(context.Background(), ckCfg, c.design, c.app, 1, nil,
				func(cycle uint64, blob []byte) error {
					blobs = append(blobs, append([]byte(nil), blob...))
					return nil
				})
			if err != nil {
				t.Fatal(err)
			}
			if len(blobs) < 2 {
				t.Fatalf("captured %d checkpoints, want >= 2", len(blobs))
			}

			// Resume from a mid-run blob; the finish must match exactly.
			resumed, at, err := caba.RunResumable(context.Background(), cfg, c.design, c.app, 1,
				blobs[len(blobs)/2], nil)
			if err != nil {
				t.Fatal(err)
			}
			if at == 0 {
				t.Fatal("resume blob was rejected (restarted from cycle 0)")
			}
			if !reflect.DeepEqual(straight.Stats, resumed.Stats) {
				for _, d := range straight.Stats.Diff(resumed.Stats) {
					t.Errorf("resumed run diverged: %s", d)
				}
			}
		})
	}
}
