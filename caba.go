// Package caba is a cycle-level reproduction of "A Case for Core-Assisted
// Bottleneck Acceleration in GPUs: Enabling Flexible Data Compression with
// Assist Warps" (Vijaykumar et al., ISCA 2015).
//
// It bundles a SIMT GPU timing model (internal/gpu, internal/mem), the
// CABA assist-warp framework and its compression subroutine library
// (internal/core), reference compression algorithms (internal/compress),
// an energy model (internal/energy), and synthetic stand-ins for the
// paper's 27 applications (internal/workloads).
//
// The quickest path is Run: pick an application and a design, get the
// paper's metrics back:
//
//	res, err := caba.Run(caba.QuickConfig(), caba.CABABDI, "PVC", 1)
//	fmt.Println(res.IPC, res.BandwidthUtil, res.CompressionRatio)
//
// Custom kernels written in the textual ISA go through RunKernel; direct
// access to the compression algorithms and the assist-warp subroutine
// library is re-exported below for tooling and experimentation.
package caba

import (
	"context"
	"errors"
	"fmt"
	"os"
	"strings"

	"github.com/caba-sim/caba/internal/audit"
	"github.com/caba-sim/caba/internal/compress"
	"github.com/caba-sim/caba/internal/config"
	"github.com/caba-sim/caba/internal/core"
	"github.com/caba-sim/caba/internal/energy"
	"github.com/caba-sim/caba/internal/gpu"
	"github.com/caba-sim/caba/internal/isa"
	"github.com/caba-sim/caba/internal/obs"
	"github.com/caba-sim/caba/internal/snapshot"
	"github.com/caba-sim/caba/internal/stats"
	"github.com/caba-sim/caba/internal/workloads"
)

// Config is the simulated-system configuration (the paper's Table 1).
type Config = config.Config

// Design is one of the evaluated system designs.
type Design = config.Design

// Metrics is the full set of raw counters and derived metrics of a run.
type Metrics = stats.Sim

// UseCase selects which assist-warp application(s) a Design deploys
// (Section 7): the zero value is compression-only (still gated by the
// design's Decomp setting), so every pre-existing design is unchanged.
type UseCase = config.UseCase

// The assist-warp use cases a Design can select (Design.UseCase).
const (
	UseCompression = config.UseCompression
	UsePrefetch    = config.UsePrefetch
	UseMemoization = config.UseMemoization
	UseCombined    = config.UseCombined
)

// App describes one benchmark application.
type App = workloads.App

// Kernel is a launchable grid for custom-kernel runs.
type Kernel = gpu.Kernel

// Simulator is the underlying GPU instance (exposed for advanced use:
// custom memory preparation, occupancy queries).
type Simulator = gpu.Simulator

// Occupancy is the static per-SM resource allocation of a kernel.
type Occupancy = gpu.Occupancy

// EnergyModel holds the event-energy constants.
type EnergyModel = energy.Model

// MetricsSeries is the cycle-sampled metrics time-series a run records
// when Config.SampleEvery is set (one MetricsSample per window).
type MetricsSeries = obs.Series

// MetricsSample is one row of a MetricsSeries.
type MetricsSample = obs.Sample

// StallAttribution is the per-warp stall attribution report a run
// records when Config.AttributeStalls is set.
type StallAttribution = obs.Attribution

// Trace is the Chrome-trace/Perfetto event recorder a run fills when
// Config.TraceFile is set.
type Trace = obs.Trace

// The evaluated designs (Section 6), plus the Section 7 assist-warp use
// cases (prefetching, memoization, and compression+prefetch combined).
var (
	Base         = config.DesignBase
	HWBDIMem     = config.DesignHWBDIMem
	HWBDI        = config.DesignHWBDI
	CABABDI      = config.DesignCABABDI
	IdealBDI     = config.DesignIdealBDI
	CABAFPC      = config.DesignCABAFPC
	CABACPack    = config.DesignCABACPack
	CABABest     = config.DesignCABABest
	CABAPrefetch = config.DesignCABAPrefetch
	CABAMemo     = config.DesignCABAMemo
	CABACombined = config.DesignCABACombined
)

// CacheCompressed returns a Figure 13 design: CABA-BDI plus capacity
// compression at "L1" or "L2" with 2x or 4x tags.
func CacheCompressed(level string, tagMult int) Design {
	return config.CacheCompressed(level, tagMult)
}

// Baseline returns the paper's Table 1 configuration.
func Baseline() Config { return config.Baseline() }

// QuickConfig returns the Table 1 configuration scaled down for fast
// interactive runs (full mechanisms, smaller working sets).
func QuickConfig() Config {
	c := config.Baseline()
	c.Scale = 0.05
	return c
}

// Applications returns the full benchmark pool.
func Applications() []App { return append([]App(nil), workloads.Apps...) }

// AppByName looks up one application descriptor.
func AppByName(name string) (*App, error) {
	a := workloads.ByName(name)
	if a == nil {
		return nil, fmt.Errorf("caba: unknown application %q", name)
	}
	return a, nil
}

// Result is the outcome of one simulation run.
type Result struct {
	App    string
	Design string

	Cycles           uint64
	IPC              float64
	BandwidthUtil    float64 // fraction of DRAM cycles the data bus is busy
	CompressionRatio float64 // DRAM-burst ratio, uncompressed/compressed
	EnergyNJ         float64 // total energy (event model)
	DRAMEnergyNJ     float64
	AvgPowerW        float64
	MDHitRate        float64
	InputRatio       float64 // compression ratio of the precompressed input

	// DecompMismatches counts assist-warp decompressions whose output no
	// longer matched the backing store (a later write raced the
	// compressed copy); the parallel-equivalence tests assert it too.
	DecompMismatches uint64
	// FaultsInjected / FaultsDetected / FaultsRecovered summarize the
	// fault-injection campaign (Config.Faults): faults placed, faults the
	// integrity checks caught, and faults fully recovered (corrupted
	// decompressions re-fetched raw, metadata misses re-read). All zero
	// when injection is disabled.
	FaultsInjected  uint64
	FaultsDetected  uint64
	FaultsRecovered uint64
	// FFSkips / FFCycles report the fast-forward engine's clock jumps and
	// the cycles they covered (observability; zero with FastForward off).
	FFSkips  uint64
	FFCycles uint64

	Occupancy Occupancy
	Stats     *Metrics

	// Series is the sampled metrics time-series (nil unless
	// Config.SampleEvery > 0). When Config.MetricsFile is also set the
	// series is additionally written there as JSONL (or CSV for a
	// ".csv" path) when the run completes.
	Series *MetricsSeries
	// Stalls is the per-warp stall attribution report (nil unless
	// Config.AttributeStalls). Its Sum always equals the run's unissued
	// scheduler slots: Cycles × NumSchedulers × NumSMs − IssueSlots[Active].
	Stalls *StallAttribution
}

// ErrInterrupted is wrapped into the error a run returns when it is
// stopped early — by a cancelled context (RunContext/RunKernelContext)
// or an explicit Simulator.Interrupt.
var ErrInterrupted = gpu.ErrInterrupted

// WedgeError is the structured report of a hung simulation (warps or the
// final memory drain that can never make progress again). Match it with
// errors.As; under fault injection a wedge is a deterministic outcome, so
// retrying the same cell reproduces it.
type WedgeError = gpu.WedgeError

// InvariantViolation is the runtime auditor's failure report
// (Config.AuditEvery), naming the broken invariant, the cycle, the SM and
// the recent flight-recorder trail. Match it with errors.As.
type InvariantViolation = audit.Violation

// FlightRecord is one flight-recorder event (Config.FlightRecorderDepth).
type FlightRecord = audit.Record

// SnapshotError is the structured report for a checkpoint blob that
// cannot be decoded (truncation, corruption, version or configuration
// skew). Match it with errors.As.
type SnapshotError = snapshot.FormatError

// Run simulates one application under one design and returns the paper's
// metrics. seed controls the synthetic data generator.
func Run(cfg Config, design Design, appName string, seed int64) (*Result, error) {
	return RunContext(context.Background(), cfg, design, appName, seed)
}

// RunContext is Run with cancellation: when ctx is cancelled or its
// deadline passes, the simulation stops at the next interrupt poll and
// returns an error wrapping both ctx.Err() and ErrInterrupted. No panic
// escapes: internal invariant violations come back as errors.
func RunContext(ctx context.Context, cfg Config, design Design, appName string, seed int64) (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("caba: %s/%s: internal panic: %v", appName, design.Name, r)
		}
	}()
	sim, design, inputRatio, maxCycles, err := prepareApp(&cfg, design, appName, seed)
	if err != nil {
		return nil, err
	}
	if err := runSim(ctx, sim, maxCycles); err != nil {
		return nil, fmt.Errorf("caba: %s/%s: %w", appName, design.Name, err)
	}
	return finishResult(appName, design, &cfg, sim, inputRatio)
}

// prepareApp builds and prepares the simulator for one application run:
// it applies the static profiling gate (Section 4.3.1 — non-memory-bound
// applications keep the design label but run without assist warps),
// instantiates the workload and fills memory. Returns the simulator, the
// effective design, the input compression ratio and the cycle budget.
func prepareApp(cfg *Config, design Design, appName string, seed int64) (*gpu.Simulator, Design, float64, uint64, error) {
	app, err := AppByName(appName)
	if err != nil {
		return nil, design, 0, 0, err
	}
	if design.Decomp == config.DecompCABA && !app.MemoryBound {
		// The gate disables only the compression machinery: the prefetch
		// and memoization use cases carry their own throttles and stay on.
		name, uc := design.Name, design.UseCase
		design = config.DesignBase
		design.Name, design.UseCase = name, uc
	}
	inst, err := app.Instantiate(cfg)
	if err != nil {
		return nil, design, 0, 0, err
	}
	sim, err := gpu.New(cfg, design, inst.Kernel)
	if err != nil {
		return nil, design, 0, 0, err
	}
	inputRatio := inst.Prepare(sim, seed)
	return sim, design, inputRatio, inst.MaxCycles(), nil
}

// RunCheckpointed is RunContext plus durable mid-run checkpoints: every
// cfg.CheckpointEvery cycles the complete simulator state is saved to
// ckptPath (written atomically via a temp file and rename), and when
// ckptPath already holds a snapshot from an earlier killed, interrupted
// or crashed invocation, the run resumes from it mid-flight instead of
// starting over — the resumed run is bit-identical to an uninterrupted
// one, including across changes to SMWorkers and FastForward.
//
// On success the checkpoint (and any stale crash report) is removed. On
// failure the last checkpoint is kept for postmortem resumption and a
// crash report — the error, a one-line repro, and the flight-recorder
// trail when Config.FlightRecorderDepth is set — is written to
// ckptPath+".crash".
//
// A resume snapshot that no longer decodes (torn file, version skew,
// different simulated configuration) does not brick the run: it is
// deleted and the run starts from cycle zero.
func RunCheckpointed(ctx context.Context, cfg Config, design Design, appName string, seed int64, ckptPath string) (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("caba: %s/%s: internal panic: %v", appName, design.Name, r)
		}
	}()
	sim, design, inputRatio, maxCycles, err := prepareApp(&cfg, design, appName, seed)
	if err != nil {
		return nil, err
	}
	if blob, rerr := os.ReadFile(ckptPath); rerr == nil {
		if lerr := sim.LoadState(blob); lerr != nil {
			os.Remove(ckptPath)
		}
	}
	if cfg.CheckpointEvery > 0 {
		sim.OnCheckpoint = func(cycle uint64, blob []byte) error {
			return writeFileAtomic(ckptPath, blob)
		}
	}
	if err := runSim(ctx, sim, maxCycles); err != nil {
		err = fmt.Errorf("caba: %s/%s: %w", appName, design.Name, err)
		repro := fmt.Sprintf("app=%s design=%s seed=%d scale=%g smworkers=%d fastforward=%v checkpoint_every=%d resume=%s",
			appName, design.Name, seed, cfg.Scale, cfg.SMWorkers, cfg.FastForward, cfg.CheckpointEvery, ckptPath)
		writeCrashReport(ckptPath+".crash", repro, err, sim)
		return nil, err
	}
	os.Remove(ckptPath)
	os.Remove(ckptPath + ".crash")
	return finishResult(appName, design, &cfg, sim, inputRatio)
}

// RunResumable is the checkpointed run primitive with caller-managed blob
// persistence: resume (when non-empty) is a checkpoint blob to restore
// before running, and save — invoked every cfg.CheckpointEvery cycles
// with the current cycle and a freshly sealed blob — owns durability
// (write it to disk, upload it to a coordinator, drop it). A save error
// aborts the run; the distributed sweep farm treats a checkpoint it could
// not persist as a failed cell rather than silently losing resumability.
//
// The returned resumedAt is the simulated cycle the run actually resumed
// from: 0 when resume was empty or did not decode (torn, corrupted, or
// bound to a different configuration — the run then starts from cycle
// zero, mirroring RunCheckpointed's tolerance). A resumed run converges
// to the bit-identical result of an uninterrupted one.
//
// RunCheckpointed is this function plus file persistence, crash reports
// and checkpoint cleanup; workers that report to a coordinator instead of
// the local filesystem use RunResumable directly.
func RunResumable(ctx context.Context, cfg Config, design Design, appName string, seed int64, resume []byte, save func(cycle uint64, blob []byte) error) (res *Result, resumedAt uint64, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("caba: %s/%s: internal panic: %v", appName, design.Name, r)
		}
	}()
	sim, design, inputRatio, maxCycles, err := prepareApp(&cfg, design, appName, seed)
	if err != nil {
		return nil, 0, err
	}
	if len(resume) > 0 {
		if lerr := sim.LoadState(resume); lerr == nil {
			resumedAt = sim.Cycles()
		}
	}
	if cfg.CheckpointEvery > 0 && save != nil {
		sim.OnCheckpoint = save
	}
	if err := runSim(ctx, sim, maxCycles); err != nil {
		return nil, resumedAt, fmt.Errorf("caba: %s/%s: %w", appName, design.Name, err)
	}
	res, err = finishResult(appName, design, &cfg, sim, inputRatio)
	return res, resumedAt, err
}

// CheckpointCycle reads the simulated cycle a checkpoint blob was taken
// at without restoring it, validating the container's integrity (not its
// configuration binding). Blob custodians use it for progress reporting.
func CheckpointCycle(blob []byte) (uint64, error) { return gpu.SnapshotCycle(blob) }

// writeFileAtomic persists blob so that a crash mid-write can never leave
// a torn file at path: write to a sibling temp file, fsync, rename.
func writeFileAtomic(path string, blob []byte) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(blob); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// writeCrashReport writes the postmortem file for a failed checkpointed
// run: the error, a one-line repro, and the flight-recorder trail. Best
// effort — the report must never mask the run's own error.
func writeCrashReport(path, repro string, runErr error, sim *gpu.Simulator) {
	var b strings.Builder
	b.WriteString("caba crash report\n")
	fmt.Fprintf(&b, "repro: %s\n", repro)
	fmt.Fprintf(&b, "error: %v\n", runErr)
	trail := sim.FlightRecord()
	var we *WedgeError
	if errors.As(runErr, &we) && len(we.Trail) > 0 {
		trail = we.Trail
	}
	if len(trail) == 0 {
		b.WriteString("flight record: disabled (set Config.FlightRecorderDepth)\n")
	} else {
		b.WriteString("flight record (oldest first):\n")
		for _, rec := range trail {
			fmt.Fprintf(&b, "  %s\n", rec.String())
		}
	}
	_ = writeFileAtomic(path, []byte(b.String()))
}

// RunKernel simulates a custom kernel. prepare (optional) populates
// memory and precompresses inputs before the run.
func RunKernel(cfg Config, design Design, k *Kernel, prepare func(*Simulator)) (*Result, error) {
	return RunKernelContext(context.Background(), cfg, design, k, prepare)
}

// RunKernelContext is RunKernel with cancellation, with the same
// semantics as RunContext.
func RunKernelContext(ctx context.Context, cfg Config, design Design, k *Kernel, prepare func(*Simulator)) (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("caba: kernel %s/%s: internal panic: %v", k.Prog.Name, design.Name, r)
		}
	}()
	sim, err := gpu.New(&cfg, design, k)
	if err != nil {
		return nil, err
	}
	if prepare != nil {
		prepare(sim)
	}
	if err := runSim(ctx, sim, 0); err != nil {
		return nil, err
	}
	return finishResult(k.Prog.Name, design, &cfg, sim, 1)
}

// runSim drives sim.Run under ctx: a watcher goroutine requests an
// interrupt when the context ends, and is always reaped before return
// (no goroutine outlives the call).
func runSim(ctx context.Context, sim *gpu.Simulator, maxCycles uint64) error {
	if ctx == nil || ctx.Done() == nil {
		return sim.Run(maxCycles)
	}
	finished := make(chan struct{})
	watcher := make(chan struct{})
	go func() {
		defer close(watcher)
		select {
		case <-ctx.Done():
			sim.Interrupt()
		case <-finished:
		}
	}()
	err := sim.Run(maxCycles)
	close(finished)
	<-watcher
	if err != nil && errors.Is(err, gpu.ErrInterrupted) && ctx.Err() != nil {
		return fmt.Errorf("%w (%w)", ctx.Err(), err)
	}
	return err
}

// finishResult derives the paper's metrics from a completed run and
// flushes the enabled observability outputs (metrics series, trace). The
// outputs are written only for successful runs; a write failure surfaces
// as the run's error.
func finishResult(app string, design Design, cfg *Config, sim *gpu.Simulator, inputRatio float64) (*Result, error) {
	m := energy.DefaultModel()
	energy.Apply(&m, cfg, design, sim.S)
	r := &Result{
		App:              app,
		Design:           design.Name,
		Cycles:           sim.Cycles(),
		IPC:              sim.S.IPC(),
		BandwidthUtil:    sim.S.BWUtilization(),
		CompressionRatio: sim.S.Ratio.Value(),
		EnergyNJ:         sim.S.TotalEnergy(),
		DRAMEnergyNJ:     sim.S.DRAMEnergy(),
		AvgPowerW:        sim.S.AvgPowerW(cfg.CoreClockMHz),
		MDHitRate:        sim.S.MDHitRate(),
		InputRatio:       inputRatio,
		DecompMismatches: sim.DecompMismatches(),
		FaultsInjected:   sim.S.FaultsInjected,
		FaultsDetected:   sim.S.FaultsDetected,
		FaultsRecovered:  sim.S.FaultsRecovered,
		Occupancy:        sim.Occupancy(),
		Stats:            sim.S,
	}
	r.FFSkips, r.FFCycles = sim.FastForwardStats()
	r.Series = sim.Series()
	r.Stalls = sim.StallAttribution()
	if err := writeObsOutputs(cfg, sim); err != nil {
		return nil, err
	}
	return r, nil
}

// writeObsOutputs flushes the run's enabled observability files: the
// metrics series to Config.MetricsFile (JSONL, or CSV when the path ends
// in ".csv") and the event trace to Config.TraceFile (Chrome Trace Event
// JSON, loadable in Perfetto). Open trace spans are closed at the final
// cycle first, so the emitted file always passes schema validation. Both
// are written atomically (temp file + rename).
func writeObsOutputs(cfg *Config, sim *gpu.Simulator) error {
	if s := sim.Series(); s != nil && cfg.MetricsFile != "" {
		var b strings.Builder
		var err error
		if strings.HasSuffix(cfg.MetricsFile, ".csv") {
			err = s.WriteCSV(&b)
		} else {
			err = s.WriteJSONL(&b)
		}
		if err == nil {
			err = writeFileAtomic(cfg.MetricsFile, []byte(b.String()))
		}
		if err != nil {
			return fmt.Errorf("caba: writing metrics series: %w", err)
		}
	}
	if tr := sim.Trace(); tr != nil && cfg.TraceFile != "" {
		tr.CloseOpen(sim.Cycles())
		var b strings.Builder
		err := tr.Flush(&b)
		if err == nil {
			err = writeFileAtomic(cfg.TraceFile, []byte(b.String()))
		}
		if err != nil {
			return fmt.Errorf("caba: writing trace: %w", err)
		}
	}
	return nil
}

// Assemble compiles a kernel written in the textual ISA (the same
// CUDA-extension-style syntax assist-warp subroutines use).
func Assemble(name, src string) (*isa.Program, error) { return isa.Assemble(name, src) }

// --- Compression toolkit (re-exported for tooling and examples) ---

// AlgID identifies a compression algorithm.
type AlgID = compress.AlgID

// Compression algorithms.
const (
	AlgNone  = compress.AlgNone
	AlgBDI   = compress.AlgBDI
	AlgFPC   = compress.AlgFPC
	AlgCPack = compress.AlgCPack
	AlgBest  = compress.AlgBest
)

// LineSize is the cache-line granularity of compression (bytes).
const LineSize = compress.LineSize

// CompressedLine is one compressed cache line.
type CompressedLine = compress.Compressed

// CompressLine compresses one LineSize-byte cache line.
func CompressLine(alg AlgID, line []byte) (CompressedLine, error) {
	return compress.Compress(alg, line)
}

// DecompressLine expands c into out (LineSize bytes).
func DecompressLine(c CompressedLine, out []byte) error {
	return compress.Decompress(c, out)
}

// MeasureRatio compresses every line of data and returns the burst-level
// compression ratio.
func MeasureRatio(alg AlgID, data []byte) (float64, error) {
	return compress.MeasureRatio(alg, data)
}

// --- Assist-warp subroutine library (Section 4) ---

// AssistLibrary returns the preloaded Assist Warp Store: every
// compression/decompression subroutine plus the Section 7 routines.
func AssistLibrary() *core.Store { return core.BuildLibrary() }

// DecompressWithAssistWarp runs the matching decompression subroutine
// functionally over a compressed line, returning the reconstructed bytes
// and the number of warp instructions it executed — the same code path the
// simulated GPU charges cycle by cycle.
func DecompressWithAssistWarp(c CompressedLine) ([]byte, uint64, error) {
	out, ex, err := core.RunDecompression(core.BuildLibrary(), c)
	if err != nil {
		return nil, 0, err
	}
	return out, ex.Executed, nil
}

// CompressWithAssistWarp runs the CABA compression pass (the AWC-driven
// routine chain) over a raw line.
func CompressWithAssistWarp(alg AlgID, line []byte) (CompressedLine, uint64, error) {
	res, err := core.RunCompression(core.BuildLibrary(), alg, line)
	if err != nil {
		return CompressedLine{}, 0, err
	}
	return res.State, res.Instrs, nil
}
