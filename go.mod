module github.com/caba-sim/caba

go 1.22
