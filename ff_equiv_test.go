package caba_test

import (
	"fmt"
	"testing"

	caba "github.com/caba-sim/caba"
)

// TestFastForwardGoldenEquivalence is the fast-forward engine's contract:
// cycle-skipping must be invisible in the results. Every app×design pair
// below runs twice — per-cycle ticking and fast-forward — and the two
// Result structs (cycles, the Figure-1 stall breakdown, bandwidth
// utilization, energy, and every raw counter in Metrics) must match
// exactly, not approximately.
func TestFastForwardGoldenEquivalence(t *testing.T) {
	pairs := []struct {
		app    string
		design caba.Design
	}{
		{"sssp", caba.Base},   // memory-bound, no compression machinery
		{"PVC", caba.CABABDI}, // assist-warp compression + decompression
		{"bfs", caba.HWBDI},   // hardware (de)compression latencies
		{"TRA", caba.CABABDI}, // second CABA-BDI app, different access pattern
		{"KM", caba.IdealBDI}, // zero-latency decompression design
	}
	for _, p := range pairs {
		p := p
		t.Run(fmt.Sprintf("%s_%s", p.app, p.design.Name), func(t *testing.T) {
			t.Parallel()
			cfg := caba.QuickConfig()
			cfg.Scale = 0.03

			cfg.FastForward = false
			slow, err := caba.Run(cfg, p.design, p.app, 1)
			if err != nil {
				t.Fatalf("per-cycle run: %v", err)
			}
			cfg.FastForward = true
			fast, err := caba.Run(cfg, p.design, p.app, 1)
			if err != nil {
				t.Fatalf("fast-forward run: %v", err)
			}

			if slow.Cycles != fast.Cycles {
				t.Errorf("cycles diverge: per-cycle %d, fast-forward %d", slow.Cycles, fast.Cycles)
			}
			if slow.IPC != fast.IPC {
				t.Errorf("IPC diverges: %v != %v", slow.IPC, fast.IPC)
			}
			if slow.BandwidthUtil != fast.BandwidthUtil {
				t.Errorf("bandwidth utilization diverges: %v != %v", slow.BandwidthUtil, fast.BandwidthUtil)
			}
			if slow.CompressionRatio != fast.CompressionRatio {
				t.Errorf("compression ratio diverges: %v != %v", slow.CompressionRatio, fast.CompressionRatio)
			}
			if slow.EnergyNJ != fast.EnergyNJ || slow.DRAMEnergyNJ != fast.DRAMEnergyNJ {
				t.Errorf("energy diverges: total %v != %v, DRAM %v != %v",
					slow.EnergyNJ, fast.EnergyNJ, slow.DRAMEnergyNJ, fast.DRAMEnergyNJ)
			}
			for _, d := range slow.Stats.Diff(fast.Stats) {
				t.Errorf("stats diverge: %s", d)
			}
		})
	}
}
