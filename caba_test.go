package caba_test

import (
	"bytes"
	"testing"

	caba "github.com/caba-sim/caba"
)

func TestPublicRunAPI(t *testing.T) {
	cfg := caba.QuickConfig()
	cfg.Scale = 0.02
	res, err := caba.Run(cfg, caba.CABABDI, "PVC", 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.App != "PVC" || res.Design != "CABA-BDI" {
		t.Errorf("identity = %s/%s", res.App, res.Design)
	}
	if res.IPC <= 0 || res.Cycles == 0 {
		t.Error("no work simulated")
	}
	if res.CompressionRatio <= 1.0 {
		t.Errorf("PVC should compress (ratio %.2f)", res.CompressionRatio)
	}
	if res.Stats.AssistWarps == 0 {
		t.Error("CABA run must trigger assist warps")
	}
}

func TestPublicRunUnknownApp(t *testing.T) {
	if _, err := caba.Run(caba.QuickConfig(), caba.Base, "nonesuch", 1); err == nil {
		t.Error("unknown app must error")
	}
}

func TestProfilingGateDisablesComputeBoundApps(t *testing.T) {
	cfg := caba.QuickConfig()
	cfg.Scale = 0.02
	// NQU is compute-bound: the Section 4.3.1 gate must disable CABA
	// compression — same label, no assist warps, no degradation.
	res, err := caba.Run(cfg, caba.CABABDI, "NQU", 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Design != "CABA-BDI" {
		t.Errorf("design label = %s", res.Design)
	}
	if res.Stats.AssistWarps != 0 {
		t.Errorf("compute-bound app triggered %d assist warps", res.Stats.AssistWarps)
	}
}

func TestPublicRunKernel(t *testing.T) {
	prog, err := caba.Assemble("double", `
  mov r0, %gtid
  shl r0, r0, 2
  add r1, r0, %p0
  ld.global.u32 r2, [r1]
  add r2, r2, r2
  st.global.u32 [r1], r2
  exit`)
	if err != nil {
		t.Fatal(err)
	}
	cfg := caba.QuickConfig()
	cfg.NumSMs = 2
	cfg.MaxThreadsPerSM = 256
	k := &caba.Kernel{Prog: prog, GridCTAs: 2, CTAThreads: 64, Params: [4]uint64{0x1000}}
	res, err := caba.RunKernel(cfg, caba.Base, k, func(sim *caba.Simulator) {
		for i := 0; i < 128; i++ {
			sim.Mem.WriteU(0x1000+uint64(i*4), uint64(i), 4)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles == 0 {
		t.Error("kernel did not run")
	}
}

func TestApplicationsPool(t *testing.T) {
	apps := caba.Applications()
	// 30 paper apps plus the two Section 7 use-case studies (STRD, TBL).
	if len(apps) != 32 {
		t.Errorf("pool = %d apps, want 32", len(apps))
	}
	if _, err := caba.AppByName("sssp"); err != nil {
		t.Error(err)
	}
	if _, err := caba.AppByName("STRD"); err != nil {
		t.Error(err)
	}
	if _, err := caba.AppByName("TBL"); err != nil {
		t.Error(err)
	}
}

func TestCompressionToolkit(t *testing.T) {
	line := make([]byte, caba.LineSize) // zeros
	c, err := caba.CompressLine(caba.AlgBDI, line)
	if err != nil || !c.IsCompressed() {
		t.Fatalf("zero line should compress: %v", err)
	}
	out := make([]byte, caba.LineSize)
	if err := caba.DecompressLine(c, out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, line) {
		t.Error("round trip failed")
	}
	ratio, err := caba.MeasureRatio(caba.AlgBest, make([]byte, 4*caba.LineSize))
	if err != nil || ratio < 3.9 {
		t.Errorf("zero-data ratio = %v, %v", ratio, err)
	}
}

func TestAssistWarpToolkit(t *testing.T) {
	lib := caba.AssistLibrary()
	if lib.Len() < 17 {
		t.Errorf("library has %d routines", lib.Len())
	}
	line := make([]byte, caba.LineSize)
	for i := range line {
		line[i] = byte(i % 7) // compressible-ish
	}
	c, instrs, err := caba.CompressWithAssistWarp(caba.AlgBDI, line)
	if err != nil {
		t.Fatal(err)
	}
	if instrs == 0 {
		t.Error("assist compression must execute instructions")
	}
	if !c.IsCompressed() {
		t.Skip("line did not compress under BDI")
	}
	out, dinstrs, err := caba.DecompressWithAssistWarp(c)
	if err != nil {
		t.Fatal(err)
	}
	if dinstrs == 0 || !bytes.Equal(out, line) {
		t.Error("assist decompression broken")
	}
}
