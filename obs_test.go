package caba_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	caba "github.com/caba-sim/caba"
	"github.com/caba-sim/caba/internal/obs"
	"github.com/caba-sim/caba/internal/stats"
)

// obsConfig is the shared observed-run configuration: small enough to be
// quick, long enough that sampling windows, assist-warp activity and
// fast-forward skips all occur.
func obsConfig() caba.Config {
	cfg := caba.QuickConfig()
	cfg.Scale = 0.03
	return cfg
}

// TestObsGoldenEquivalence is the observability layer's core contract:
// turning every probe on — metrics sampling, stall attribution, trace
// export — must not change a single simulated statistic, at any SM worker
// count, with and without fast-forward. The reference run has the layer
// fully off; every instrumented variant must match it bit-for-bit, and
// the sampled series itself must be identical across engines (the
// fast-forward engine synthesizes the samples it skips past).
func TestObsGoldenEquivalence(t *testing.T) {
	ref, err := caba.Run(obsConfig(), caba.CABABDI, "PVC", 1)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	if ref.Series != nil || ref.Stalls != nil {
		t.Fatal("observability off must leave Result.Series and Result.Stalls nil")
	}
	var refSeries *caba.MetricsSeries
	for _, workers := range []int{1, 4} {
		for _, ff := range []bool{false, true} {
			name := fmt.Sprintf("workers=%d_ff=%v", workers, ff)
			t.Run(name, func(t *testing.T) {
				cfg := obsConfig()
				cfg.SMWorkers = workers
				cfg.FastForward = ff
				cfg.SampleEvery = 500
				cfg.AttributeStalls = true
				cfg.TraceFile = filepath.Join(t.TempDir(), "run.trace.json")
				res, err := caba.Run(cfg, caba.CABABDI, "PVC", 1)
				if err != nil {
					t.Fatalf("instrumented run: %v", err)
				}
				if res.Cycles != ref.Cycles || res.IPC != ref.IPC {
					t.Errorf("instrumented run: %d cycles IPC %v, reference: %d cycles IPC %v",
						res.Cycles, res.IPC, ref.Cycles, ref.IPC)
				}
				for _, d := range ref.Stats.Diff(res.Stats) {
					t.Errorf("stats diverge with observability on: %s", d)
				}
				if res.Series == nil || res.Series.Len() == 0 {
					t.Fatal("instrumented run produced no metrics samples")
				}
				if refSeries == nil {
					refSeries = res.Series
				} else if !reflect.DeepEqual(refSeries, res.Series) {
					t.Error("metrics series differs across engine variants; sampling must be engine-invariant")
				}
			})
		}
	}
}

// TestStallAttributionSums pins the attribution exactness invariant: the
// per-(warp, cause) charges must account for every unissued scheduler
// slot exactly once — their machine-wide sum equals total issue slots
// minus issued ones, which in turn equals the classified non-Active slot
// counters. Checked with and without fast-forward, whose bulk crediting
// shares the same charge sites.
func TestStallAttributionSums(t *testing.T) {
	for _, ff := range []bool{false, true} {
		t.Run(fmt.Sprintf("ff=%v", ff), func(t *testing.T) {
			cfg := obsConfig()
			cfg.FastForward = ff
			cfg.AttributeStalls = true
			res, err := caba.Run(cfg, caba.CABABDI, "PVC", 1)
			if err != nil {
				t.Fatal(err)
			}
			if res.Stalls == nil {
				t.Fatal("AttributeStalls set but Result.Stalls is nil")
			}
			slots := res.Cycles * uint64(cfg.NumSchedulers) * uint64(cfg.NumSMs)
			wantUnissued := slots - res.Stats.IssueSlots[stats.Active]
			var classified uint64
			for k, n := range res.Stats.IssueSlots {
				if stats.StallKind(k) != stats.Active {
					classified += n
				}
			}
			if classified != wantUnissued {
				t.Errorf("classified stall slots %d != cycles×sched×SMs − issued = %d", classified, wantUnissued)
			}
			if got := res.Stalls.Sum(); got != wantUnissued {
				t.Errorf("attribution sum %d != unissued slots %d (every unissued slot must be charged exactly once)", got, wantUnissued)
			}
			var rendered strings.Builder
			res.Stalls.RenderTable(&rendered, 5)
			if !strings.Contains(rendered.String(), "Stall attribution") {
				t.Error("RenderTable produced no report")
			}
		})
	}
}

// TestTraceSchemaPVC runs a small instrumented PVC cell, flushes the
// execution trace, and validates it against the Chrome-trace schema the
// exporter promises (Perfetto-loadable, balanced spans, monotone
// timestamps). `make trace-check` runs exactly this test.
func TestTraceSchemaPVC(t *testing.T) {
	cfg := obsConfig()
	cfg.TraceFile = filepath.Join(t.TempDir(), "pvc.trace.json")
	if _, err := caba.Run(cfg, caba.CABABDI, "PVC", 1); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(cfg.TraceFile)
	if err != nil {
		t.Fatalf("trace file not written: %v", err)
	}
	if err := obs.ValidateBytes(raw); err != nil {
		t.Errorf("trace fails schema validation: %v", err)
	}
}

// TestMetricsFileFormats checks both metrics sinks: a ".csv" path gets a
// CSV with the canonical header, any other path gets JSON Lines whose
// row count and first row match the in-memory series.
func TestMetricsFileFormats(t *testing.T) {
	dir := t.TempDir()
	cfg := obsConfig()
	cfg.Scale = 0.01
	cfg.SampleEvery = 500
	cfg.MetricsFile = filepath.Join(dir, "m.jsonl")
	res, err := caba.Run(cfg, caba.Base, "PVC", 1)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(cfg.MetricsFile)
	if err != nil {
		t.Fatalf("metrics file not written: %v", err)
	}
	lines := bytes.Split(bytes.TrimSpace(raw), []byte("\n"))
	if len(lines) != res.Series.Len() {
		t.Fatalf("JSONL has %d rows, series has %d", len(lines), res.Series.Len())
	}
	var row caba.MetricsSample
	if err := json.Unmarshal(lines[0], &row); err != nil {
		t.Fatalf("first JSONL row does not decode: %v", err)
	}
	if row != res.Series.At(0) {
		t.Errorf("first JSONL row %+v != series row %+v", row, res.Series.At(0))
	}

	cfg.MetricsFile = filepath.Join(dir, "m.csv")
	if _, err := caba.Run(cfg, caba.Base, "PVC", 1); err != nil {
		t.Fatal(err)
	}
	csvRaw, err := os.ReadFile(cfg.MetricsFile)
	if err != nil {
		t.Fatalf("CSV metrics file not written: %v", err)
	}
	if !bytes.HasPrefix(csvRaw, []byte("cycle,ipc,issue_active")) {
		t.Errorf("CSV missing canonical header, starts %q", csvRaw[:min(len(csvRaw), 40)])
	}
	if got := bytes.Count(csvRaw, []byte("\n")); got != res.Series.Len()+1 {
		t.Errorf("CSV has %d lines, want %d rows + header", got, res.Series.Len())
	}
}

// TestObsSnapshotResume: interrupting and resuming an instrumented run
// must reproduce the uninterrupted run's metrics series and stall
// attribution bit-for-bit — the sampler and attribution tables travel
// through the snapshot with the rest of the machine.
func TestObsSnapshotResume(t *testing.T) {
	cfg := obsConfig()
	cfg.Scale = 0.05
	cfg.CheckpointEvery = 2_000
	cfg.SampleEvery = 500
	cfg.AttributeStalls = true
	straight, err := caba.Run(cfg, caba.CABABDI, "PVC", 1)
	if err != nil {
		t.Fatal(err)
	}

	ckpt := filepath.Join(t.TempDir(), "cell.ckpt")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	defer close(done)
	go func() {
		for {
			if _, err := os.Stat(ckpt); err == nil {
				cancel()
				return
			}
			select {
			case <-done:
				return
			case <-time.After(200 * time.Microsecond):
			}
		}
	}()
	res, err := caba.RunCheckpointed(ctx, cfg, caba.CABABDI, "PVC", 1, ckpt)
	if err != nil {
		if !errors.Is(err, caba.ErrInterrupted) {
			t.Fatalf("interrupted run: %v, want ErrInterrupted", err)
		}
		res, err = caba.RunCheckpointed(context.Background(), cfg, caba.CABABDI, "PVC", 1, ckpt)
		if err != nil {
			t.Fatalf("resume: %v", err)
		}
	} else {
		t.Log("run completed before the interrupt landed")
	}
	if !reflect.DeepEqual(straight.Stats, res.Stats) {
		t.Error("resumed run statistics differ from the uninterrupted run")
	}
	if !reflect.DeepEqual(straight.Series, res.Series) {
		t.Error("resumed run metrics series differs from the uninterrupted run")
	}
	if !reflect.DeepEqual(straight.Stalls, res.Stalls) {
		t.Error("resumed run stall attribution differs from the uninterrupted run")
	}
}
