// Command farmd runs the simulation-farm coordinator: the durable work
// queue, lease manager, failure classifier and content-addressed result
// cache that a fleet of farmworker processes executes sweeps against.
//
//	farmd -dir farm-state -addr :8423
//
// State in -dir survives restarts: a coordinator reopened over the same
// directory resumes its sweep — completed cells are served from the
// result store as cache hits, terminally failed cells (including
// deterministic wedges) keep their recorded outcome, and everything else
// is re-queued. Submit work with `experiments -farm http://host:8423`
// or a raw POST /sweep; watch it live with GET /progress (JSONL).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/caba-sim/caba/internal/farm"
)

func main() { os.Exit(realMain()) }

func realMain() int {
	dir := flag.String("dir", "farm-state", "durable state directory (journal, results, checkpoint blobs)")
	addr := flag.String("addr", ":8423", "HTTP listen address")
	leaseTTL := flag.Duration("lease-ttl", 15*time.Second,
		"worker heartbeat deadline; a cell whose lease lapses is re-queued")
	maxAttempts := flag.Int("max-attempts", 4,
		"executions per cell (transient failures and lease expiries) before it fails permanently")
	retryBackoff := flag.Duration("retry-backoff", 250*time.Millisecond,
		"re-queue delay after the first transient failure, doubling per failure with jitter")
	maxBackoff := flag.Duration("max-backoff", 30*time.Second, "exponential backoff cap")
	maxQueue := flag.Int("max-queue", 4096,
		"live-queue bound (pending+leased cells); submissions beyond it get HTTP 429 + Retry-After")
	clientQuota := flag.Int("client-quota", 0,
		"per-client live-cell quota (0 = no separate bound beyond -max-queue)")
	poisonThreshold := flag.Int("poison-threshold", 3,
		"distinct workers a cell may be presumed to have killed before it is quarantined as poison")
	compactMinLines := flag.Int("compact-min-lines", 256,
		"dead journal lines accumulated before the journal is compacted")
	minDiskFree := flag.Int64("min-disk-free", 0,
		"store disk-headroom floor in bytes; checkpoint uploads below it get HTTP 507 (0 = no preflight)")
	shutdownGrace := flag.Duration("shutdown-grace", 10*time.Second,
		"on SIGTERM/SIGINT: how long to drain in-flight HTTP after leasing stops and the journal is flushed")
	flag.Parse()

	c, err := farm.NewCoordinator(farm.CoordinatorConfig{
		Dir:             *dir,
		LeaseTTL:        *leaseTTL,
		MaxAttempts:     *maxAttempts,
		RetryBackoff:    *retryBackoff,
		MaxBackoff:      *maxBackoff,
		MaxQueue:        *maxQueue,
		ClientQuota:     *clientQuota,
		PoisonThreshold: *poisonThreshold,
		CompactMinLines: *compactMinLines,
		MinDiskFree:     *minDiskFree,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "farmd:", err)
		return 1
	}
	defer c.Close()

	srv := &http.Server{Addr: *addr, Handler: c.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "farmd: serving on %s, state in %s\n", *addr, *dir)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "farmd:", err)
			return 1
		}
	case <-sig:
		// Graceful stop, in order: quiesce (no new leases or admissions,
		// journal fsynced), drain in-flight HTTP within the grace window
		// so a result already computed still lands, then close (final
		// fsync). The queue is durable, so workers reconnect after a
		// restart and the sweep picks up where it stopped.
		c.Quiesce()
		ctx, cancel := context.WithTimeout(context.Background(), *shutdownGrace)
		defer cancel()
		srv.Shutdown(ctx)
		fmt.Fprintln(os.Stderr, "farmd: drained, state saved")
	}
	return 0
}
