// Command farmd runs the simulation-farm coordinator: the durable work
// queue, lease manager, failure classifier and content-addressed result
// cache that a fleet of farmworker processes executes sweeps against.
//
//	farmd -dir farm-state -addr :8423
//
// State in -dir survives restarts: a coordinator reopened over the same
// directory resumes its sweep — completed cells are served from the
// result store as cache hits, terminally failed cells (including
// deterministic wedges) keep their recorded outcome, and everything else
// is re-queued. Submit work with `experiments -farm http://host:8423`
// or a raw POST /sweep; watch it live with GET /progress (JSONL).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/caba-sim/caba/internal/farm"
)

func main() { os.Exit(realMain()) }

func realMain() int {
	dir := flag.String("dir", "farm-state", "durable state directory (journal, results, checkpoint blobs)")
	addr := flag.String("addr", ":8423", "HTTP listen address")
	leaseTTL := flag.Duration("lease-ttl", 15*time.Second,
		"worker heartbeat deadline; a cell whose lease lapses is re-queued")
	maxAttempts := flag.Int("max-attempts", 4,
		"executions per cell (transient failures and lease expiries) before it fails permanently")
	retryBackoff := flag.Duration("retry-backoff", 250*time.Millisecond,
		"re-queue delay after the first transient failure, doubling per failure with jitter")
	maxBackoff := flag.Duration("max-backoff", 30*time.Second, "exponential backoff cap")
	flag.Parse()

	c, err := farm.NewCoordinator(farm.CoordinatorConfig{
		Dir:          *dir,
		LeaseTTL:     *leaseTTL,
		MaxAttempts:  *maxAttempts,
		RetryBackoff: *retryBackoff,
		MaxBackoff:   *maxBackoff,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "farmd:", err)
		return 1
	}
	defer c.Close()

	srv := &http.Server{Addr: *addr, Handler: c.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "farmd: serving on %s, state in %s\n", *addr, *dir)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "farmd:", err)
			return 1
		}
	case <-sig:
		// Graceful stop: finish in-flight requests; leases and queue
		// state are durable, so workers reconnect after a restart.
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		fmt.Fprintln(os.Stderr, "farmd: drained, state saved")
	}
	return 0
}
