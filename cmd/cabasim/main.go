// Command cabasim runs one benchmark application under one design and
// prints the paper's metrics.
//
//	cabasim -app PVC -design caba-bdi
//	cabasim -app sssp -design base -scale 0.5 -bw 2.0
//	cabasim -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	caba "github.com/caba-sim/caba"
)

var designs = map[string]caba.Design{
	"base":       caba.Base,
	"hw-bdi-mem": caba.HWBDIMem,
	"hw-bdi":     caba.HWBDI,
	"caba-bdi":   caba.CABABDI,
	"ideal-bdi":  caba.IdealBDI,
	"caba-fpc":   caba.CABAFPC,
	"caba-cpack": caba.CABACPack,
	"caba-best":  caba.CABABest,
	"caba-l1-2x": caba.CacheCompressed("L1", 2),
	"caba-l1-4x": caba.CacheCompressed("L1", 4),
	"caba-l2-2x": caba.CacheCompressed("L2", 2),
	"caba-l2-4x": caba.CacheCompressed("L2", 4),
	// Assist-warp use cases beyond compression (USECASES.md).
	"caba-prefetch": caba.CABAPrefetch,
	"caba-memo":     caba.CABAMemo,
	"caba-combined": caba.CABACombined,
}

func main() {
	app := flag.String("app", "PVC", "application name (-list to enumerate)")
	designName := flag.String("design", "caba-bdi", "design: base, hw-bdi-mem, hw-bdi, caba-bdi, ideal-bdi, caba-fpc, caba-cpack, caba-best, caba-l{1,2}-{2,4}x, caba-{prefetch,memo,combined}")
	scale := flag.Float64("scale", 0.2, "working-set scale (1.0 = paper scale)")
	bw := flag.Float64("bw", 1.0, "peak-bandwidth scale (0.5, 1.0, 2.0)")
	seed := flag.Int64("seed", 1, "synthetic data seed")
	list := flag.Bool("list", false, "list applications and exit")
	verbose := flag.Bool("v", false, "dump raw counters")
	flag.Parse()

	if *list {
		fmt.Printf("%-6s %-8s %-9s %-10s %s\n", "name", "suite", "bound", "kernel", "pattern")
		for _, a := range caba.Applications() {
			bound := "compute"
			if a.MemoryBound {
				bound = "memory"
			}
			fmt.Printf("%-6s %-8s %-9s %-10v %v\n", a.Name, a.Suite, bound, a.Kind, a.Pattern)
		}
		return
	}

	d, ok := designs[strings.ToLower(*designName)]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown design %q\n", *designName)
		os.Exit(2)
	}
	cfg := caba.Baseline()
	cfg.Scale = *scale
	cfg.BWScale = *bw

	start := time.Now()
	res, err := caba.Run(cfg, d, *app, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	fmt.Printf("%s / %s (scale %.2f, %.1fx bandwidth)\n", res.App, res.Design, *scale, *bw)
	fmt.Printf("  cycles            %d\n", res.Cycles)
	fmt.Printf("  IPC               %.1f\n", res.IPC)
	fmt.Printf("  bandwidth util    %.1f%%\n", 100*res.BandwidthUtil)
	fmt.Printf("  compression ratio %.2f (input %.2f)\n", res.CompressionRatio, res.InputRatio)
	fmt.Printf("  energy            %.2f mJ (%.1f W avg, DRAM %.2f mJ)\n",
		res.EnergyNJ/1e6, res.AvgPowerW, res.DRAMEnergyNJ/1e6)
	if res.MDHitRate > 0 {
		fmt.Printf("  MD cache hit rate %.1f%%\n", 100*res.MDHitRate)
	}
	fmt.Printf("  occupancy         %d CTAs/SM, %d threads/SM, %.0f%% registers unallocated\n",
		res.Occupancy.CTAsPerSM, res.Occupancy.ThreadsPerSM, 100*res.Occupancy.UnallocatedRegs)
	s := res.Stats
	fmt.Printf("  assist warps      %d activations, %d instructions, %d decompressions, %d compressions\n",
		s.AssistWarps, s.AssistInstrs, s.LinesDecompressed, s.LinesCompressed)
	if s.PrefetchTriggers+s.PrefetchThrottled > 0 {
		fmt.Printf("  prefetch          %d triggers, %d useful fills, %d throttled\n",
			s.PrefetchTriggers, s.PrefetchUseful, s.PrefetchThrottled)
	}
	if s.MemoHits+s.MemoMisses > 0 {
		fmt.Printf("  memoization       %d probe hits, %d misses, %d installs, %d no-slot\n",
			s.MemoHits, s.MemoMisses, s.MemoUpdates, s.MemoNoSlot)
	}
	if *verbose {
		fmt.Printf("  raw: %s\n", s)
		fmt.Printf("  L1 %.1f%% / L2 %.1f%% hit, %d DRAM bursts, %d activates, load latency %.0f cyc\n",
			100*s.L1HitRate(), 100*s.L2HitRate(), s.DRAMBursts, s.DRAMActivates, s.AvgLoadLatency())
	}
	fmt.Printf("  (simulated in %v)\n", time.Since(start).Round(time.Millisecond))
}
