// Command experiments regenerates the paper's tables and figures.
//
//	experiments -fig 7            # one figure (1,2,7,8,9,10,11,12,13)
//	experiments -all              # everything
//	experiments -table 1          # print the live Table 1 configuration
//	experiments -scale 0.25       # bigger working sets (slower, stabler)
//	experiments -full             # paper-scale working sets (slow)
//	experiments -all -checkpoint runs.ckpt -run-timeout 10m -retries 1
//	                              # hardened sweep: resumable, deadline-bounded
//	experiments -obs pvc -design CABA-BDI -obs-dir obs/
//	                              # one fully-instrumented cell: metrics
//	                              # time-series, stall attribution, trace
//
// With -checkpoint, completed runs persist as the sweep goes; rerunning
// the same command resumes from where the previous invocation stopped.
// Failed cells are reported together at the end while every figure still
// renders its completed cells.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"github.com/caba-sim/caba/experiments"
)

func main() { os.Exit(realMain()) }

// realMain returns the process exit code; keeping it out of main lets the
// deferred profile writers run before exit.
func realMain() int {
	fig := flag.Int("fig", 0, "figure number to regenerate (1,2,7,8,9,10,11,12,13)")
	figs := flag.String("figs", "", "comma-separated figure list, e.g. 7,8,9")
	table := flag.Int("table", 0, "table number to print (1)")
	all := flag.Bool("all", false, "regenerate every figure")
	scale := flag.Float64("scale", 0.15, "working-set scale (1.0 = paper scale)")
	full := flag.Bool("full", false, "shorthand for -scale 1.0")
	seed := flag.Int64("seed", 1, "synthetic data seed")
	parallel := flag.Int("parallel", 0, "concurrent simulations (0 = GOMAXPROCS)")
	parallelism := flag.Int("parallelism", 0,
		"total worker-goroutine budget: concurrent simulations x SM workers per simulation (0 = GOMAXPROCS)")
	checkpoint := flag.String("checkpoint", "",
		"JSONL file persisting completed runs; an interrupted sweep resumes from it (parameters must match), and in-flight cells snapshot mid-run state under <file>.d/ for bit-identical resume")
	checkpointEvery := flag.Uint64("checkpoint-every", 0,
		"mid-run snapshot cadence in simulated cycles (0 = default; needs -checkpoint)")
	runTimeout := flag.Duration("run-timeout", 0,
		"wall-clock deadline per simulation (0 = none); timed-out cells are reported and the sweep continues")
	retries := flag.Int("retries", 0, "extra attempts per failed simulation, with exponential backoff")
	farmURL := flag.String("farm", "",
		"farm coordinator base URL (e.g. http://localhost:8423): dispatch cells to a worker fleet (see cmd/farmd, cmd/farmworker) instead of simulating in-process")
	obsApp := flag.String("obs", "",
		"run ONE instrumented cell for this app: metrics time-series + stall attribution + Perfetto trace")
	obsDesign := flag.String("design", "CABA-BDI",
		"design for -obs ("+strings.Join(experiments.ObsDesignNames(), ", ")+")")
	obsDir := flag.String("obs-dir", "obs", "output directory for -obs artifacts")
	sampleEvery := flag.Uint64("sample-every", 0,
		"metrics sampling cadence in cycles for -obs (0 = auto from -scale)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cpuprofile:", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "cpuprofile:", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle allocations so the profile shows live heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
			}
		}()
	}

	o := experiments.Defaults(os.Stdout)
	o.Scale = *scale
	if *full {
		o.Scale = 1.0
	}
	o.Seed = *seed
	o.Parallel = *parallel
	o.Parallelism = *parallelism
	o.Checkpoint = *checkpoint
	o.CheckpointEvery = *checkpointEvery
	o.RunTimeout = *runTimeout
	o.Retries = *retries
	o.FarmURL = *farmURL

	run := func(n int) error {
		start := time.Now()
		var err error
		switch n {
		case 1:
			_, err = experiments.Fig1(o)
		case 2:
			_, err = experiments.Fig2(o)
		case 7:
			_, err = experiments.Fig7(o)
		case 8:
			_, err = experiments.Fig8(o)
		case 9:
			_, err = experiments.Fig9(o)
		case 10, 11:
			_, err = experiments.Fig10and11(o)
		case 12:
			_, err = experiments.Fig12(o)
		case 13:
			_, err = experiments.Fig13(o)
		case 14:
			_, err = experiments.Fig14(o)
		default:
			return fmt.Errorf("unknown figure %d", n)
		}
		fmt.Fprintf(os.Stdout, "(figure %d: %v)\n\n", n, time.Since(start).Round(time.Second))
		return err
	}

	switch {
	case *obsApp != "":
		d, ok := experiments.ObsDesign(*obsDesign)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown design %q (want one of %s)\n",
				*obsDesign, strings.Join(experiments.ObsDesignNames(), ", "))
			return 2
		}
		if _, err := experiments.ObsRun(o, *obsApp, d, *obsDir, *sampleEvery); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			return 1
		}
	case *table == 1:
		experiments.Table1(o)
	case *figs != "":
		for _, part := range strings.Split(*figs, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				fmt.Fprintln(os.Stderr, "bad figure:", part)
				return 2
			}
			if err := run(n); err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				return 1
			}
		}
	case *all:
		for _, n := range []int{1, 2, 7, 8, 9, 10, 12, 13, 14} {
			if err := run(n); err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				return 1
			}
		}
	case *fig != 0:
		if err := run(*fig); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			return 1
		}
	default:
		flag.Usage()
		return 2
	}
	return 0
}
