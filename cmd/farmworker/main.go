// Command farmworker executes simulation cells leased from a farmd
// coordinator. Run as many as you like, on as many machines as can reach
// the coordinator:
//
//	farmworker -coordinator http://localhost:8423 -name $(hostname)-1
//
// Each cell runs through the panic-safe resumable engine path: if the
// coordinator holds a checkpoint blob from a previous (killed, hung or
// drained) attempt, the run resumes mid-flight and still produces the
// bit-identical result of an uninterrupted run. On SIGINT/SIGTERM the
// worker drains gracefully — the in-flight cell stops at its next
// interrupt poll and is released back to the queue with its last
// uploaded checkpoint intact.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/caba-sim/caba/internal/farm"
)

func main() { os.Exit(realMain()) }

func realMain() int {
	coordinator := flag.String("coordinator", "http://localhost:8423", "farmd base URL")
	name := flag.String("name", "", "worker name in leases and logs (default: host-pid)")
	cellTimeout := flag.Duration("cell-timeout", 0,
		"wall-clock bound per cell; an overrun is a transient failure the coordinator may retry (0 = none)")
	smWorkers := flag.Int("sm-workers", 0, "SM-tick workers per simulation (0 = GOMAXPROCS; results identical either way)")
	checkpointEvery := flag.Uint64("checkpoint-every", 0,
		"checkpoint-upload cadence in simulated cycles for cells that do not set their own (0 = default)")
	exitWhenDrained := flag.Bool("exit-when-drained", false,
		"exit once every submitted cell is terminal instead of polling for future sweeps")
	memLimitMB := flag.Int64("mem-limit-mb", 0,
		"per-cell live-heap budget in MiB; a cell that blows it is aborted as resource-exhausted, not the process (0 = none)")
	cpuTimeLimit := flag.Duration("cpu-time", 0,
		"per-cell CPU-time budget (user+system, all cores), distinct from -cell-timeout wall clock (0 = none)")
	minDiskFreeMB := flag.Int64("min-disk-free-mb", 0,
		"skip checkpoint uploads while local disk free space is below this many MiB (0 = no preflight)")
	flag.Parse()

	if *name == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		*name = fmt.Sprintf("%s-%d", host, os.Getpid())
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	w := farm.NewWorker(*coordinator, farm.WorkerConfig{
		Name:            *name,
		CellTimeout:     *cellTimeout,
		MemLimit:        *memLimitMB << 20,
		CPUTime:         *cpuTimeLimit,
		MinDiskFree:     *minDiskFreeMB << 20,
		SMWorkers:       *smWorkers,
		CheckpointEvery: *checkpointEvery,
		PollInterval:    200 * time.Millisecond,
		ExitWhenDrained: *exitWhenDrained,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	})
	fmt.Fprintf(os.Stderr, "farmworker %s: leasing from %s\n", *name, *coordinator)
	if err := w.Run(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "farmworker:", err)
		return 1
	}
	return 0
}
