// Command compress measures cache-line compressibility of a file (or of
// the built-in synthetic patterns) under BDI, FPC, C-Pack and BestOfAll —
// the offline analysis one would run to decide whether to enable
// CABA-based compression for a data set (Section 4.3.1).
//
//	compress -file trace.bin
//	compress -patterns          # report the synthetic generators
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	caba "github.com/caba-sim/caba"
	"github.com/caba-sim/caba/internal/workloads"
)

func measure(label string, data []byte) {
	// Trim to whole lines.
	n := len(data) / caba.LineSize * caba.LineSize
	if n == 0 {
		fmt.Fprintf(os.Stderr, "%s: needs at least %d bytes\n", label, caba.LineSize)
		return
	}
	fmt.Printf("%-10s (%d lines):", label, n/caba.LineSize)
	for _, alg := range []caba.AlgID{caba.AlgBDI, caba.AlgFPC, caba.AlgCPack, caba.AlgBest} {
		r, err := caba.MeasureRatio(alg, data[:n])
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		fmt.Printf("  %v %.2fx", alg, r)
	}
	fmt.Println()
}

func main() {
	file := flag.String("file", "", "file to measure")
	patterns := flag.Bool("patterns", false, "measure the synthetic workload patterns")
	seed := flag.Int64("seed", 1, "pattern generator seed")
	flag.Parse()

	switch {
	case *file != "":
		data, err := os.ReadFile(*file)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		measure(*file, data)
	case *patterns:
		rng := rand.New(rand.NewSource(*seed))
		for p := workloads.PatZero; p <= workloads.PatMixedPtr; p++ {
			buf := make([]byte, 256*caba.LineSize)
			p.Fill(buf, rng)
			measure(fmt.Sprintf("pattern-%d", p), buf)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}
