// Quickstart: run one benchmark under the baseline and under CABA-BDI,
// and print the headline comparison the paper makes (Section 6.1).
package main

import (
	"fmt"
	"log"

	caba "github.com/caba-sim/caba"
)

func main() {
	cfg := caba.QuickConfig() // Table 1 machine, scaled-down working sets

	// PageViewCount: the paper's running example (its Figure 5 cache line
	// is a PVC line). Mixed pointers + small integers: BDI-friendly.
	const app = "PVC"

	base, err := caba.Run(cfg, caba.Base, app, 1)
	if err != nil {
		log.Fatal(err)
	}
	withCABA, err := caba.Run(cfg, caba.CABABDI, app, 1)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s on the Table 1 GPU (%d SMs, %.0f GB/s):\n",
		app, cfg.NumSMs, cfg.PeakBandwidthGBs())
	fmt.Printf("  Base:     %7d cycles, IPC %6.1f, bandwidth %4.1f%% busy\n",
		base.Cycles, base.IPC, 100*base.BandwidthUtil)
	fmt.Printf("  CABA-BDI: %7d cycles, IPC %6.1f, bandwidth %4.1f%% busy, compression %.2fx\n",
		withCABA.Cycles, withCABA.IPC, 100*withCABA.BandwidthUtil, withCABA.CompressionRatio)
	fmt.Printf("  speedup:  %.2fx with %d assist-warp activations (%d decompressions, %d compressions)\n",
		withCABA.IPC/base.IPC, withCABA.Stats.AssistWarps,
		withCABA.Stats.LinesDecompressed, withCABA.Stats.LinesCompressed)
	fmt.Printf("  energy:   %.2fx of baseline (DRAM %.2fx)\n",
		withCABA.EnergyNJ/base.EnergyNJ, withCABA.DRAMEnergyNJ/base.DRAMEnergyNJ)
}
