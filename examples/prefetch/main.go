// Prefetching with assist warps (Section 7.2): the caba.prefetch
// subroutine issues strided loads ahead of a streaming warp, warming the
// caches from otherwise-idle memory-pipeline slots.
//
// The example first shows the subroutine itself computing the right
// prefetch addresses, then quantifies the latency-hiding effect by
// comparing a plain strided-read kernel against a software-pipelined one
// on the full GPU model — the same overlap an assist-warp prefetcher
// provides without recompiling the kernel.
package main

import (
	"fmt"
	"log"

	caba "github.com/caba-sim/caba"
	"github.com/caba-sim/caba/internal/core"
	"github.com/caba-sim/caba/internal/isa"
)

// recordMem captures the addresses the prefetch routine touches.
type recordMem struct{ addrs []uint64 }

func (m *recordMem) LoadGlobal(a uint64, w uint8) uint64          { m.addrs = append(m.addrs, a); return 0 }
func (m *recordMem) StoreGlobal(a uint64, v uint64, w uint8)      {}
func (m *recordMem) AtomicAdd(a uint64, v uint64, w uint8) uint64 { return 0 }

func main() {
	lib := caba.AssistLibrary()
	rt, _ := lib.Get(core.RtPrefetch)
	if rt == nil {
		log.Fatal("prefetch routine not preloaded")
	}

	// Trigger the stride prefetcher: live-ins are the next address and the
	// detected stride (the AWC's per-warp bookkeeping computes these from
	// spare registers, Section 7.2).
	ex := core.NewAssistExec(rt)
	mem := &recordMem{}
	ex.Mem = mem
	const base, stride = 0x1000_0000, 512
	for lane := 0; lane < core.WarpSize; lane++ {
		ex.SetReg(lane, 2, base)
		ex.SetReg(lane, 3, stride) 
	}
	if _, err := ex.Run(100); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("prefetch assist warp issued %d requests in %d instructions:\n", len(mem.addrs), ex.Executed)
	for _, a := range mem.addrs {
		fmt.Printf("  prefetch 0x%x (+%d)\n", a, a-base)
	}

	// Latency-hiding effect on the timing model: same traffic, overlapped.
	// A latency-bound point: few warps, so exposed memory latency is the
	// bottleneck (prefetching targets memory-latency-bound applications).
	cfg := caba.QuickConfig()
	cfg.NumSMs = 2
	cfg.MaxThreadsPerSM = 128
	cfg.MaxWarpsPerSM = 4
	plain := `
  movi r10, 0x10000000
  mov r0, %gtid
  shl r0, r0, 2
  add r1, r0, r10
  movi r2, 0
  movi r3, 0
loop:
  ld.global.u32 r4, [r1]
  add r2, r2, r4        ; consume immediately: full latency exposed
  add r1, r1, %p2
  add r3, r3, 1
  setp.lt p0, r3, %p3
  @p0 bra loop
  movi r10, 0x20000000
  add r5, r0, r10
  st.global.u32 [r5], r2
  exit`
	pipelined := `
  movi r10, 0x10000000
  mov r0, %gtid
  shl r0, r0, 2
  add r1, r0, r10
  movi r2, 0
  movi r3, 0
loop:
  ld.global.u32 r4, [r1]  ; four lines in flight at once -- the overlap a
  add r1, r1, %p2         ; degree-4 assist-warp prefetcher creates
  ld.global.u32 r5, [r1]
  add r1, r1, %p2
  ld.global.u32 r6, [r1]
  add r1, r1, %p2
  ld.global.u32 r7, [r1]
  add r1, r1, %p2
  add r2, r2, r4
  add r2, r2, r5
  add r2, r2, r6
  add r2, r2, r7
  add r3, r3, 4
  setp.lt p0, r3, %p3
  @p0 bra loop
  movi r10, 0x20000000
  add r5, r0, r10
  st.global.u32 [r5], r2
  exit`

	run := func(src string) uint64 {
		prog, err := caba.Assemble("stream", src)
		if err != nil {
			log.Fatal(err)
		}
		threads := 512
		k := &caba.Kernel{Prog: prog, GridCTAs: threads / 128, CTAThreads: 128,
			Params: [4]uint64{0, 0, uint64(threads * 4), 32}}
		res, err := caba.RunKernel(cfg, caba.Base, k, nil)
		if err != nil {
			log.Fatal(err)
		}
		return res.Cycles
	}
	exposed := run(plain)
	hidden := run(pipelined)
	fmt.Printf("\nstrided sum, latency exposed:  %d cycles\n", exposed)
	fmt.Printf("strided sum, 4-deep overlap:    %d cycles (%.2fx)\n",
		hidden, float64(exposed)/float64(hidden))
	fmt.Println("an assist-warp prefetcher provides this overlap transparently,")
	fmt.Println("throttled to idle memory-pipeline slots (Section 7.2).")
	_ = isa.RegZero // keep the isa import for the doc reference
}
