// Prefetching with assist warps (Section 7.2), run the way the paper
// means it: as a hardware use case inside the cycle-level simulator.
//
// The CABA-Prefetch design arms a per-warp stride detector in every SM.
// It trains on L1 misses; once a (warp, PC) stream shows a stable stride,
// the AWC triggers the caba.prefetch assist routine with the next address
// and the detected stride as live-ins, and the assist warp issues a
// degree of strided fills from otherwise-idle memory-pipeline slots.
// Triggers are throttled when the MSHRs or the assist controller are
// under pressure, so prefetching never steals bandwidth a demand miss
// needs. All of this is architected state: it survives snapshots, it is
// bit-identical across engine strategies, and the run reports it in the
// standard counters (PrefetchTriggers / PrefetchUseful /
// PrefetchThrottled).
//
// The primary demonstration below therefore just runs a latency-bound
// strided workload (STRD) under Base and CABA-Prefetch and lets the
// timing model speak. The appendix then pops the hood two ways: driving
// the caba.prefetch subroutine by hand to show the addresses it covers,
// and hand-software-pipelining the same loop to show that the cycles the
// prefetcher buys equal the overlap it creates.
package main

import (
	"fmt"
	"log"

	caba "github.com/caba-sim/caba"
	"github.com/caba-sim/caba/internal/core"
	"github.com/caba-sim/caba/internal/isa"
)

func main() {
	// --- Primary: the simulated use case -------------------------------
	// STRD is the low-occupancy strided stream built for this regime: too
	// few warps to hide memory latency, so covering misses early pays.
	cfg := caba.Baseline()
	cfg.Scale = 0.03
	cfg.SMWorkers = 1

	base, err := caba.Run(cfg, caba.Base, "STRD", 1)
	if err != nil {
		log.Fatal(err)
	}
	pf, err := caba.Run(cfg, caba.CABAPrefetch, "STRD", 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("STRD, strided streaming at low occupancy:")
	fmt.Printf("  Base:          %6d cycles\n", base.Cycles)
	fmt.Printf("  CABA-Prefetch: %6d cycles (%.2fx)\n",
		pf.Cycles, float64(base.Cycles)/float64(pf.Cycles))
	fmt.Printf("  triggers=%d useful fills=%d throttled=%d\n\n",
		pf.Stats.PrefetchTriggers, pf.Stats.PrefetchUseful, pf.Stats.PrefetchThrottled)

	appendixRoutine()
	appendixOverlap()
}

// --- Appendix A: the assist subroutine, driven by hand ----------------
// The same caba.prefetch routine the simulator triggers, executed in
// isolation so the addresses it covers are visible. The live-ins (next
// address, stride) are exactly what the SM's stride table hands the AWC
// at trigger time.

// recordMem captures the addresses the prefetch routine touches.
type recordMem struct{ addrs []uint64 }

func (m *recordMem) LoadGlobal(a uint64, w uint8) uint64          { m.addrs = append(m.addrs, a); return 0 }
func (m *recordMem) StoreGlobal(a uint64, v uint64, w uint8)      {}
func (m *recordMem) AtomicAdd(a uint64, v uint64, w uint8) uint64 { return 0 }

func appendixRoutine() {
	lib := caba.AssistLibrary()
	rt, _ := lib.Get(core.RtPrefetch)
	if rt == nil {
		log.Fatal("prefetch routine not preloaded")
	}
	ex := core.NewAssistExec(rt)
	mem := &recordMem{}
	ex.Mem = mem
	const base, stride = 0x1000_0000, 512
	for lane := 0; lane < core.WarpSize; lane++ {
		ex.SetReg(lane, 2, base)
		ex.SetReg(lane, 3, stride)
	}
	if _, err := ex.Run(100); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("appendix A: one trigger covers %d requests in %d assist instructions:\n",
		len(mem.addrs), ex.Executed)
	for _, a := range mem.addrs {
		fmt.Printf("  prefetch 0x%x (+%d)\n", a, a-base)
	}
}

// --- Appendix B: the overlap, hand-built ------------------------------
// What the prefetcher buys is memory-level parallelism. Pipelining the
// same strided loop by hand — four lines in flight instead of one —
// reproduces the overlap a degree-4 assist-warp prefetcher creates
// transparently, without recompiling the kernel.

func appendixOverlap() {
	cfg := caba.QuickConfig()
	cfg.NumSMs = 2
	cfg.MaxThreadsPerSM = 128
	cfg.MaxWarpsPerSM = 4
	plain := `
  movi r10, 0x10000000
  mov r0, %gtid
  shl r0, r0, 2
  add r1, r0, r10
  movi r2, 0
  movi r3, 0
loop:
  ld.global.u32 r4, [r1]
  add r2, r2, r4        ; consume immediately: full latency exposed
  add r1, r1, %p2
  add r3, r3, 1
  setp.lt p0, r3, %p3
  @p0 bra loop
  movi r10, 0x20000000
  add r5, r0, r10
  st.global.u32 [r5], r2
  exit`
	pipelined := `
  movi r10, 0x10000000
  mov r0, %gtid
  shl r0, r0, 2
  add r1, r0, r10
  movi r2, 0
  movi r3, 0
loop:
  ld.global.u32 r4, [r1]  ; four lines in flight at once -- the overlap a
  add r1, r1, %p2         ; degree-4 assist-warp prefetcher creates
  ld.global.u32 r5, [r1]
  add r1, r1, %p2
  ld.global.u32 r6, [r1]
  add r1, r1, %p2
  ld.global.u32 r7, [r1]
  add r1, r1, %p2
  add r2, r2, r4
  add r2, r2, r5
  add r2, r2, r6
  add r2, r2, r7
  add r3, r3, 4
  setp.lt p0, r3, %p3
  @p0 bra loop
  movi r10, 0x20000000
  add r5, r0, r10
  st.global.u32 [r5], r2
  exit`

	run := func(src string) uint64 {
		prog, err := caba.Assemble("stream", src)
		if err != nil {
			log.Fatal(err)
		}
		threads := 512
		k := &caba.Kernel{Prog: prog, GridCTAs: threads / 128, CTAThreads: 128,
			Params: [4]uint64{0, 0, uint64(threads * 4), 32}}
		res, err := caba.RunKernel(cfg, caba.Base, k, nil)
		if err != nil {
			log.Fatal(err)
		}
		return res.Cycles
	}
	exposed := run(plain)
	hidden := run(pipelined)
	fmt.Printf("\nappendix B: strided sum, latency exposed: %d cycles\n", exposed)
	fmt.Printf("            strided sum, 4-deep overlap:   %d cycles (%.2fx)\n",
		hidden, float64(exposed)/float64(hidden))
	fmt.Println("the CABA-Prefetch design provides this overlap transparently,")
	fmt.Println("throttled to idle memory-pipeline slots (Section 7.2).")
	_ = isa.RegZero // keep the isa import for the doc reference
}
