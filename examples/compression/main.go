// Compression walkthrough: the paper's Figure 5 cache line from
// PageViewCount, compressed with BDI, then decompressed by the actual
// assist-warp subroutine — the same instruction sequence the simulated GPU
// executes — and cross-checked against the reference decompressor.
package main

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"log"

	caba "github.com/caba-sim/caba"
)

func main() {
	// Figure 5: a 64-byte PVC region holding 8-byte values that mix small
	// integers (implicit zero base) with pointers around 0x8001d000 (one
	// explicit base). Our lines are 128B, so the figure's region repeats.
	fig5 := []uint64{
		0x00, 0x8001d000, 0x10, 0x8001d000,
		0x10, 0x8001d008, 0x20, 0x8001d010,
	}
	line := make([]byte, caba.LineSize)
	for i := 0; i < caba.LineSize/8; i++ {
		binary.LittleEndian.PutUint64(line[i*8:], fig5[i%len(fig5)])
	}

	// Hardware-style (oracle) compression.
	c, err := caba.CompressLine(caba.AlgBDI, line)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Figure 5 line: %d bytes -> %d bytes (BDI encoding %d), %d DRAM bursts instead of 4\n",
		caba.LineSize, c.Size(), c.Enc, c.Bursts())

	// The same compression performed by the CABA assist-warp pass: the
	// zeros/repeat check plus per-encoding tests, executed instruction by
	// instruction in the mini-ISA.
	awc, instrs, err := caba.CompressWithAssistWarp(caba.AlgBDI, line)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("assist-warp compression: %d bytes in %d warp instructions\n", awc.Size(), instrs)
	if !bytes.Equal(awc.Data, c.Data) {
		log.Fatal("assist-warp payload differs from the dedicated-logic oracle!")
	}
	fmt.Println("assist-warp payload is byte-identical to dedicated compression logic")

	// Decompression by assist warp (the high-priority routine a load
	// triggers in Section 4.2.1).
	out, dinstrs, err := caba.DecompressWithAssistWarp(awc)
	if err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(out, line) {
		log.Fatal("assist-warp decompression mismatch!")
	}
	fmt.Printf("assist-warp decompression: %d warp instructions, output bit-exact\n", dinstrs)

	// Algorithm choice matters per data pattern (Section 6.3): compare the
	// three algorithms on this pointer-heavy line and on text.
	text := bytes.Repeat([]byte("AAACCCGGTTTTaaccgggt ACGT genome"), 4)
	for _, data := range [][]byte{line, text[:caba.LineSize]} {
		fmt.Printf("line %x...:", data[:8])
		for _, alg := range []caba.AlgID{caba.AlgBDI, caba.AlgFPC, caba.AlgCPack, caba.AlgBest} {
			cc, _ := caba.CompressLine(alg, data)
			fmt.Printf("  %v=%dB", alg, cc.Size())
		}
		fmt.Println()
	}
}
