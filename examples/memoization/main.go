// Memoization with assist warps (Section 7.1): CABA converts a
// computational bottleneck into a storage problem — hash the inputs of an
// expensive computation, probe a result cache, and skip the computation
// on a hit.
//
// The use case is first-class in the cycle-level simulator. Under the
// CABA-Memo design every SM carries a bounded set-associative result
// cache keyed by a content hash of the instruction and all 32 lanes'
// source operands. When an SFU instruction cannot issue because the
// port's initiation interval is busy, the SM probes the cache; on a hit
// it triggers the caba.memo.probe assist routine, the result is replayed
// architecturally, and the warp retires the instruction without ever
// entering the SFU pipe — extra SFU throughput exactly at the
// bottleneck. Misses that do execute install their result for later
// reuse. The cache is architected state: snapshots carry it, every
// engine strategy sees the same contents, and runs report the activity
// as MemoHits / MemoMisses / MemoUpdates / MemoNoSlot.
//
// The primary demonstration runs TBL — an SFU-heavy kernel with a
// recurring operand pattern — under Base and CABA-Memo and lets the
// timing model speak. The appendix then drives the underlying
// memo.lookup / memo.update subroutines by hand over a redundant input
// stream, the storage-side mechanics in isolation.
package main

import (
	"fmt"
	"log"
	"math/bits"
	"math/rand"

	caba "github.com/caba-sim/caba"
	"github.com/caba-sim/caba/internal/core"
	"github.com/caba-sim/caba/internal/isa"
)

func main() {
	// --- Primary: the simulated use case -------------------------------
	// TBL reuses a small operand domain, so the result cache converges
	// quickly. The shrunken per-SM thread capacity keeps the run short
	// while preserving the SFU-bound regime.
	cfg := caba.Baseline()
	cfg.Scale = 0.03
	cfg.SMWorkers = 1
	cfg.MaxThreadsPerSM = 512

	base, err := caba.Run(cfg, caba.Base, "TBL", 1)
	if err != nil {
		log.Fatal(err)
	}
	memo, err := caba.Run(cfg, caba.CABAMemo, "TBL", 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("TBL, SFU-bound table lookups with recurring operands:")
	fmt.Printf("  Base:      %6d cycles\n", base.Cycles)
	fmt.Printf("  CABA-Memo: %6d cycles (%.2fx)\n",
		memo.Cycles, float64(base.Cycles)/float64(memo.Cycles))
	fmt.Printf("  probe hits=%d misses=%d installs=%d no-slot=%d\n\n",
		memo.Stats.MemoHits, memo.Stats.MemoMisses,
		memo.Stats.MemoUpdates, memo.Stats.MemoNoSlot)

	appendixLUT()
}

// --- Appendix: the subroutines, driven by hand ------------------------
// The same memo.lookup / memo.update routines the simulator's probe path
// uses, executed standalone against a shared-memory LUT so the hit/miss
// mechanics and the assist-instruction cost are visible.

func appendixLUT() {
	lib := caba.AssistLibrary()
	lookup, _ := lib.Get(core.RtMemoLookup)
	update, _ := lib.Get(core.RtMemoUpdate)
	if lookup == nil || update == nil {
		log.Fatal("memoization routines not preloaded")
	}

	// A redundant input stream: image-processing-style kernels see the
	// same pixel neighborhoods repeatedly (the paper cites fragment
	// shading and multimedia workloads [8, 12, 77]).
	rng := rand.New(rand.NewSource(7))
	distinct := 48 // unique inputs
	inputs := make([]uint64, 4096)
	for i := range inputs {
		inputs[i] = uint64(rng.Intn(distinct))*2654435761 + 17
	}

	// One shared-memory LUT per CTA, shared by its assist warps.
	lut := make([]byte, core.SharedScratchSize)

	const sfuCostPerMiss = 4 * 20 // four dependent SFU ops at 20 cycles
	hits, misses := 0, 0
	var assistInstrs uint64

	for base := 0; base < len(inputs); base += core.WarpSize {
		// Probe: one warp-wide lookup assist warp.
		probe := core.NewAssistExec(lookup)
		probe.Shared = lut
		for lane := 0; lane < core.WarpSize; lane++ {
			probe.SetReg(lane, 2, inputs[base+lane]) // live-in: input value
		}
		if _, err := probe.Run(1000); err != nil {
			log.Fatal(err)
		}
		assistInstrs += probe.Executed
		hitMask := uint32(probe.Result(isa.R(0))) // ballot of hitting lanes
		hits += bits.OnesCount32(hitMask)
		misses += core.WarpSize - bits.OnesCount32(hitMask)

		// Missing lanes compute for real, then an update assist warp
		// installs their results.
		up := core.NewAssistExec(update)
		up.Shared = lut
		for lane := 0; lane < core.WarpSize; lane++ {
			in := inputs[base+lane]
			up.SetReg(lane, 2, in)
			up.SetReg(lane, 3, in*in+1) // stand-in for the expensive result
		}
		if _, err := up.Run(1000); err != nil {
			log.Fatal(err)
		}
		assistInstrs += up.Executed
	}

	total := hits + misses
	fmt.Printf("appendix: hand-driven LUT over %d invocations (%d distinct inputs):\n", total, distinct)
	fmt.Printf("  LUT hits:   %d (%.1f%%)\n", hits, 100*float64(hits)/float64(total))
	fmt.Printf("  recomputed: %d\n", misses)
	saved := hits*sfuCostPerMiss - int(assistInstrs)
	fmt.Printf("  SFU cycles avoided: %d, assist instructions spent: %d, net saving: %d cycles\n",
		hits*sfuCostPerMiss, assistInstrs, saved)
	if saved <= 0 {
		fmt.Println("  (workload not redundant enough for memoization to pay off)")
	}
}
