// Memoization with assist warps (Section 7.1): CABA converts a
// computational bottleneck into a storage problem. An assist warp hashes
// the inputs of an expensive (SFU-heavy) computation, probes a lookup
// table in on-chip shared memory, and skips the computation on a hit.
//
// This example drives the actual memo.lookup / memo.update subroutines
// from the Assist Warp Store over a redundant input stream and reports the
// reuse it captures, then estimates the SFU cycles saved.
package main

import (
	"fmt"
	"log"
	"math/bits"
	"math/rand"

	caba "github.com/caba-sim/caba"
	"github.com/caba-sim/caba/internal/core"
	"github.com/caba-sim/caba/internal/isa"
)

func main() {
	lib := caba.AssistLibrary()
	lookup, _ := lib.Get(core.RtMemoLookup)
	update, _ := lib.Get(core.RtMemoUpdate)
	if lookup == nil || update == nil {
		log.Fatal("memoization routines not preloaded")
	}

	// A redundant input stream: image-processing-style kernels see the
	// same pixel neighborhoods repeatedly (the paper cites fragment
	// shading and multimedia workloads [8, 12, 77]).
	rng := rand.New(rand.NewSource(7))
	distinct := 48 // unique inputs
	inputs := make([]uint64, 4096)
	for i := range inputs {
		inputs[i] = uint64(rng.Intn(distinct))*2654435761 + 17
	}

	// One shared-memory LUT per CTA, shared by its assist warps.
	lut := make([]byte, core.SharedScratchSize)

	const sfuCostPerMiss = 4 * 20 // four dependent SFU ops at 20 cycles
	hits, misses := 0, 0
	var assistInstrs uint64

	for base := 0; base < len(inputs); base += core.WarpSize {
		// Probe: one warp-wide lookup assist warp.
		probe := core.NewAssistExec(lookup)
		probe.Shared = lut
		for lane := 0; lane < core.WarpSize; lane++ {
			probe.SetReg(lane, 2, inputs[base+lane]) // live-in: input value
		}
		if _, err := probe.Run(1000); err != nil {
			log.Fatal(err)
		}
		assistInstrs += probe.Executed
		hitMask := uint32(probe.Result(isa.R(0))) // ballot of hitting lanes
		hits += bits.OnesCount32(hitMask)
		misses += core.WarpSize - bits.OnesCount32(hitMask)

		// Missing lanes compute for real, then an update assist warp
		// installs their results.
		up := core.NewAssistExec(update)
		up.Shared = lut
		for lane := 0; lane < core.WarpSize; lane++ {
			in := inputs[base+lane]
			up.SetReg(lane, 2, in)
			up.SetReg(lane, 3, in*in+1) // stand-in for the expensive result
		}
		if _, err := up.Run(1000); err != nil {
			log.Fatal(err)
		}
		assistInstrs += up.Executed
	}

	total := hits + misses
	fmt.Printf("memoization over %d invocations (%d distinct inputs):\n", total, distinct)
	fmt.Printf("  LUT hits:   %d (%.1f%%)\n", hits, 100*float64(hits)/float64(total))
	fmt.Printf("  recomputed: %d\n", misses)
	saved := hits*sfuCostPerMiss - int(assistInstrs)
	fmt.Printf("  SFU cycles avoided: %d, assist instructions spent: %d, net saving: %d cycles\n",
		hits*sfuCostPerMiss, assistInstrs, saved)
	if saved <= 0 {
		fmt.Println("  (workload not redundant enough for memoization to pay off)")
	}
}
