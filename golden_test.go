package caba_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	caba "github.com/caba-sim/caba"
)

// goldenPath holds the recorded statistics of a small reference sweep.
// Regenerate with:
//
//	GOLDEN_UPDATE=1 go test -run TestZeroFaultGolden .
const goldenPath = "testdata/golden_zero_fault.json"

// goldenRuns is the reference grid: one memory-bound app under the
// baseline and the CABA design, at the same scale/seed the equivalence
// tests use.
var goldenRuns = []struct {
	App    string
	Design caba.Design
}{
	{"PVC", caba.Base},
	{"PVC", caba.CABABDI},
}

func goldenConfig() caba.Config {
	cfg := caba.Baseline()
	cfg.Scale = 0.03
	cfg.SMWorkers = 1
	return cfg
}

// TestZeroFaultGolden asserts that a run with no fault injection remains
// bit-identical to the recorded pre-fault-framework statistics: every
// counter of stats.Sim, including the energy model outputs, must match
// the golden file exactly. scripts/bench.sh runs this as a preflight.
func TestZeroFaultGolden(t *testing.T) {
	got := map[string]*caba.Metrics{}
	for _, g := range goldenRuns {
		res, err := caba.Run(goldenConfig(), g.Design, g.App, 1)
		if err != nil {
			t.Fatalf("%s/%s: %v", g.App, g.Design.Name, err)
		}
		got[g.App+"/"+g.Design.Name] = res.Stats
	}
	if os.Getenv("GOLDEN_UPDATE") != "" {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", goldenPath)
		return
	}
	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (run with GOLDEN_UPDATE=1 to create): %v", err)
	}
	want := map[string]*caba.Metrics{}
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	for key, w := range want {
		g, ok := got[key]
		if !ok {
			t.Errorf("%s: missing from current run set", key)
			continue
		}
		if !reflect.DeepEqual(w, g) {
			for _, d := range w.Diff(g) {
				t.Errorf("%s: golden mismatch: %s", key, d)
			}
		}
	}
	for key := range got {
		if _, ok := want[key]; !ok {
			t.Errorf("%s: not in golden file; regenerate with GOLDEN_UPDATE=1", key)
		}
	}
}
