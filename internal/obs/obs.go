// Package obs is the simulator's deterministic observability layer: a
// cycle-sampled metrics time-series (Series), per-warp stall attribution
// tables (Attr), and a Perfetto/Chrome-trace exporter (Trace).
//
// All three are pure data sinks. They never influence the simulated
// machine: every recorder call is nil-gated at the call site, so with the
// observability knobs at their zero values the simulator executes the
// exact same instruction stream and allocates nothing extra, and with
// them enabled the simulated statistics remain bit-identical. The layer
// composes with the repo's other runtime engines:
//
//   - Parallel tick (Config.SMWorkers): phase-A workers write only
//     per-SM shards (one Attr and one TraceShard per SM); shared state
//     is read or merged on the main goroutine in phase B, so output is
//     identical at every worker count.
//   - Fast-forward (Config.FastForward): skipped windows are pure
//     stall-accounting no-ops, so crossed sample boundaries synthesize
//     flat samples from the quiescence credit formula and skipped slots
//     are bulk-charged to the cached quiescent blame.
//   - Snapshot/restore: Series and Attr serialize into the simulator
//     snapshot payload, so a resumed run emits the identical series a
//     straight-through run would; open trace spans are re-opened for
//     live entities on load.
package obs
