package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// Trace accumulates Chrome-trace events ("Trace Event Format" JSON, the
// format chrome://tracing and Perfetto load) for one simulation run. It
// is sharded for the two-phase parallel tick: one TraceShard per SM —
// written only by that SM's phase-A worker or the main goroutine, never
// concurrently — plus one memory-system shard written only on the main
// goroutine. Because each SM's event sequence is independent of worker
// count, the flushed file is byte-identical at every SMWorkers setting.
//
// Timestamps are simulated cycles (core cycles on SM shards, memory bus
// cycles on the memory shard), rendered as integer microseconds in the
// trace — absolute units are meaningless inside a simulator; relative
// spans are what the timeline shows.
type Trace struct {
	shards []*TraceShard // SMs 0..n-1, then the memory shard
}

// TraceShard is one process row of the trace (pid = SM id, or the
// memory-system pseudo-process). Events on a shard are appended in
// simulated-time order per track (tid), which is what the schema
// validator checks.
type TraceShard struct {
	pid    int
	events []traceEvent
	depth  map[int]int // open Begin count per tid, for CloseOpen
}

// traceEvent is one trace record; ph selects the Chrome event phase
// ('B' begin, 'E' end, 'X' complete-with-duration, 'M' metadata).
type traceEvent struct {
	ph       byte
	ts, dur  uint64
	tid      int
	name, ct string
}

// NewTrace returns a trace with one shard per SM plus the memory shard,
// each pre-labeled with a process_name metadata record.
func NewTrace(numSMs int) *Trace {
	t := &Trace{shards: make([]*TraceShard, numSMs+1)}
	for i := range t.shards {
		t.shards[i] = &TraceShard{pid: i, depth: make(map[int]int)}
	}
	for i := 0; i < numSMs; i++ {
		t.shards[i].meta("process_name", fmt.Sprintf("SM %d", i))
	}
	t.shards[numSMs].meta("process_name", "memory")
	return t
}

// SM returns SM i's shard.
func (t *Trace) SM(i int) *TraceShard { return t.shards[i] }

// Mem returns the memory-system shard.
func (t *Trace) Mem() *TraceShard { return t.shards[len(t.shards)-1] }

// meta appends a process-scoped metadata record (tid 0).
func (sh *TraceShard) meta(name, value string) {
	sh.events = append(sh.events, traceEvent{ph: 'M', name: name, ct: value})
}

// ThreadName labels track tid within the shard (a thread_name metadata
// record). Call once per track; duplicate labels are harmless but bloat
// the file.
func (sh *TraceShard) ThreadName(tid int, name string) {
	sh.events = append(sh.events, traceEvent{ph: 'M', tid: tid, name: "thread_name", ct: name})
}

// Begin opens a span on track tid at time ts.
func (sh *TraceShard) Begin(ts uint64, tid int, name, cat string) {
	sh.events = append(sh.events, traceEvent{ph: 'B', ts: ts, tid: tid, name: name, ct: cat})
	sh.depth[tid]++
}

// End closes the innermost open span on track tid at time ts.
func (sh *TraceShard) End(ts uint64, tid int) {
	sh.events = append(sh.events, traceEvent{ph: 'E', ts: ts, tid: tid})
	sh.depth[tid]--
}

// Complete records a closed span of length dur starting at ts on track
// tid (a Chrome 'X' event).
func (sh *TraceShard) Complete(ts, dur uint64, tid int, name, cat string) {
	sh.events = append(sh.events, traceEvent{ph: 'X', ts: ts, dur: dur, tid: tid, name: name, ct: cat})
}

// CloseOpen closes every still-open span at time ts, deepest first, so a
// run that ends with live warps or in-flight memory still flushes a
// schema-valid trace. Tracks are visited in tid order for deterministic
// output.
func (t *Trace) CloseOpen(ts uint64) {
	for _, sh := range t.shards {
		tids := make([]int, 0, len(sh.depth))
		for tid, d := range sh.depth {
			if d > 0 {
				tids = append(tids, tid)
			}
		}
		sort.Ints(tids)
		for _, tid := range tids {
			for sh.depth[tid] > 0 {
				sh.End(ts, tid)
			}
		}
	}
}

// Flush writes the trace as a single JSON object in the Chrome trace
// event format. Shards are concatenated in pid order — the format does
// not require global timestamp ordering, and per-track order is already
// correct — so output is deterministic.
func (t *Trace) Flush(w io.Writer) error {
	b := make([]byte, 0, 1<<16)
	b = append(b, `{"traceEvents":[`...)
	first := true
	for _, sh := range t.shards {
		for i := range sh.events {
			if !first {
				b = append(b, ',')
			}
			first = false
			b = sh.events[i].append(b, sh.pid)
			if len(b) >= 1<<16 {
				if _, err := w.Write(b); err != nil {
					return fmt.Errorf("trace flush: %w", err)
				}
				b = b[:0]
			}
		}
	}
	b = append(b, "]}\n"...)
	if _, err := w.Write(b); err != nil {
		return fmt.Errorf("trace flush: %w", err)
	}
	return nil
}

// append renders the event as one JSON object.
func (e *traceEvent) append(b []byte, pid int) []byte {
	b = append(b, `{"ph":"`...)
	b = append(b, e.ph)
	b = append(b, `","pid":`...)
	b = strconv.AppendInt(b, int64(pid), 10)
	b = append(b, `,"tid":`...)
	b = strconv.AppendInt(b, int64(e.tid), 10)
	if e.ph == 'M' {
		b = append(b, `,"name":`...)
		b = strconv.AppendQuote(b, e.name)
		b = append(b, `,"args":{"name":`...)
		b = strconv.AppendQuote(b, e.ct)
		b = append(b, `}}`...)
		return b
	}
	b = append(b, `,"ts":`...)
	b = strconv.AppendUint(b, e.ts, 10)
	if e.ph == 'X' {
		b = append(b, `,"dur":`...)
		b = strconv.AppendUint(b, e.dur, 10)
	}
	if e.ph != 'E' {
		b = append(b, `,"name":`...)
		b = strconv.AppendQuote(b, e.name)
		b = append(b, `,"cat":`...)
		b = strconv.AppendQuote(b, e.ct)
	}
	b = append(b, '}')
	return b
}

// validateEvent mirrors the JSON shape of a flushed event for the schema
// validator.
type validateEvent struct {
	Ph   string  `json:"ph"`
	Pid  int     `json:"pid"`
	Tid  int     `json:"tid"`
	Ts   float64 `json:"ts"`
	Dur  float64 `json:"dur"`
	Name string  `json:"name"`
}

// validateFile mirrors the top-level JSON object of a flushed trace.
type validateFile struct {
	TraceEvents []validateEvent `json:"traceEvents"`
}

// Validate checks a flushed trace against the schema the exporter
// guarantees: every event phase is one of B/E/X/M, timestamps are
// non-decreasing per (pid,tid) track, every Begin has a matching End
// (properly nested per track, never negative depth), X durations are
// non-negative, and no span is left open at end of file. It returns nil
// for a conforming trace and a descriptive error for the first
// violation found.
func Validate(r io.Reader) error {
	var f validateFile
	dec := json.NewDecoder(r)
	if err := dec.Decode(&f); err != nil {
		return fmt.Errorf("trace parse: %w", err)
	}
	type track struct{ pid, tid int }
	lastTS := make(map[track]float64)
	depth := make(map[track]int)
	for i, e := range f.TraceEvents {
		tr := track{e.Pid, e.Tid}
		switch e.Ph {
		case "M":
			continue // metadata carries no timestamp
		case "B", "E", "X":
		default:
			return fmt.Errorf("event %d: unknown phase %q", i, e.Ph)
		}
		if last, ok := lastTS[tr]; ok && e.Ts < last {
			return fmt.Errorf("event %d (pid %d tid %d): timestamp %v regresses below %v",
				i, e.Pid, e.Tid, e.Ts, last)
		}
		lastTS[tr] = e.Ts
		switch e.Ph {
		case "B":
			depth[tr]++
		case "E":
			depth[tr]--
			if depth[tr] < 0 {
				return fmt.Errorf("event %d (pid %d tid %d): end without matching begin", i, e.Pid, e.Tid)
			}
		case "X":
			if e.Dur < 0 {
				return fmt.Errorf("event %d (pid %d tid %d): negative duration %v", i, e.Pid, e.Tid, e.Dur)
			}
		}
	}
	for tr, d := range depth {
		if d != 0 {
			return fmt.Errorf("pid %d tid %d: %d span(s) left open at end of trace", tr.pid, tr.tid, d)
		}
	}
	return nil
}

// ValidateBytes validates an in-memory flushed trace; it is Validate
// over a byte slice, for tests and the trace-check target.
func ValidateBytes(b []byte) error { return Validate(bytes.NewReader(b)) }
