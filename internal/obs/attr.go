package obs

import (
	"fmt"
	"io"
	"sort"

	"github.com/caba-sim/caba/internal/snapshot"
)

// maxAttrWarps bounds the warp-slot count a serialized Attr may claim,
// so a corrupt snapshot cannot force a huge allocation.
const maxAttrWarps = 1 << 16

// Cause is the typed reason an issue slot went unfilled. Every cycle, for
// every scheduler slot that fails to issue, exactly one (warp, Cause)
// pair is charged, so summed over a run the attribution tables account
// for every unissued slot exactly once.
type Cause uint8

const (
	// CauseScoreboard: the blamed warp's next instruction had a source or
	// destination register still owned by an in-flight instruction.
	CauseScoreboard Cause = iota
	// CauseBarrier: the blamed warp was parked at a CTA-wide barrier.
	CauseBarrier
	// CauseDrain: the blamed warp had retired its last instruction and
	// was draining — waiting for CTA-mates before the CTA frees its slot.
	CauseDrain
	// CauseLSUBusy: the blamed warp's memory instruction found no free
	// load-store-unit port (or coalescer slot) this cycle.
	CauseLSUBusy
	// CauseStoreBufFull: the blamed warp's store found the pending-store
	// buffer full with nothing evictable.
	CauseStoreBufFull
	// CauseMSHRFull: the blamed warp was replaying a load whose
	// coalesced lines had overflowed the L1 MSHR file.
	CauseMSHRFull
	// CauseSFUBusy: the blamed warp's special-function instruction found
	// no free SFU port.
	CauseSFUBusy
	// CauseALUBusy: the blamed warp's arithmetic instruction found no
	// free ALU port.
	CauseALUBusy
	// CauseAssist: the slot stalled on an assist-warp hazard — the
	// highest-priority candidate was an assist warp (AWS priority rules
	// put fill-path assists ahead of parent warps) that could not issue;
	// the charge lands on the assist's host warp slot.
	CauseAssist
	// CauseEmpty: the SM had no issue candidate at all — no valid warp
	// and no assist entry. Charged to the SM row, not a warp.
	CauseEmpty
	// CauseMemoWait: the blamed warp's next instruction depended on a
	// register owned by an in-flight memoization probe — a scoreboard
	// stall whose latency is the assist-warp replay, not the SFU. Only
	// charged when the memoization use case is on.
	CauseMemoWait
	// CausePrefetchMSHR: the blamed warp was replaying a load whose MSHR
	// overflow happened while prefetch-initiated fills held MSHR entries —
	// CauseMSHRFull re-attributed to prefetch aggressiveness. Only charged
	// when the prefetch use case is on.
	CausePrefetchMSHR
	// NumCauses counts the Cause values; it is not itself a cause.
	NumCauses
)

// causeNames maps Cause values to the short labels used in rendered
// tables and snapshots of the breakdown.
var causeNames = [NumCauses]string{
	"scoreboard", "barrier", "drain", "lsu-busy", "storebuf-full",
	"mshr-full", "sfu-busy", "alu-busy", "assist", "empty",
	"memo-wait", "pf-mshr",
}

// String returns the short lower-case label for the cause, or "cause(N)"
// for out-of-range values.
func (c Cause) String() string {
	if c < NumCauses {
		return causeNames[c]
	}
	return fmt.Sprintf("cause(%d)", uint8(c))
}

// Attr accumulates one SM's per-warp stall attribution: a row of Cause
// counters per warp slot plus one trailing SM-level row for slots with no
// candidate warp (CauseEmpty). Each counter is the number of scheduler
// issue slots charged to that (warp, cause) pair. Attr is written only by
// its owning SM (phase A) or the main goroutine, never concurrently.
type Attr struct {
	// Counts holds warpSlots+1 rows of NumCauses counters; the last row
	// is the SM-level row addressed by warp index -1.
	Counts [][NumCauses]uint64
}

// NewAttr returns an attribution table for an SM with warpSlots warp
// contexts.
func NewAttr(warpSlots int) *Attr {
	return &Attr{Counts: make([][NumCauses]uint64, warpSlots+1)}
}

// Charge adds n unissued slots to (warp, cause). warp -1 addresses the
// SM-level row.
func (a *Attr) Charge(warp int, c Cause, n uint64) {
	if warp < 0 {
		warp = len(a.Counts) - 1
	}
	a.Counts[warp][c] += n
}

// Sum returns the total slots charged across all warps and causes.
func (a *Attr) Sum() uint64 {
	var t uint64
	for i := range a.Counts {
		for _, n := range a.Counts[i] {
			t += n
		}
	}
	return t
}

// Totals returns the per-cause totals summed over all warp rows.
func (a *Attr) Totals() [NumCauses]uint64 {
	var t [NumCauses]uint64
	for i := range a.Counts {
		for c, n := range a.Counts[i] {
			t[c] += n
		}
	}
	return t
}

// Save serializes the table into a snapshot payload.
func (a *Attr) Save(w *snapshot.Writer) {
	w.Len(len(a.Counts))
	for i := range a.Counts {
		for _, n := range a.Counts[i] {
			w.U64(n)
		}
	}
}

// Load restores a table saved by Save, replacing the receiver's
// contents. The row count must match the receiver's (the SM geometry is
// fixed by the config the snapshot was sealed against).
func (a *Attr) Load(r *snapshot.Reader) error {
	n := r.Len(maxAttrWarps + 1)
	if err := r.Err(); err != nil {
		return fmt.Errorf("attr rows: %w", err)
	}
	if n != len(a.Counts) {
		return fmt.Errorf("attr rows: snapshot has %d, machine has %d", n, len(a.Counts))
	}
	for i := range a.Counts {
		for c := range a.Counts[i] {
			a.Counts[i][c] = r.U64()
		}
	}
	if err := r.Err(); err != nil {
		return fmt.Errorf("attr counters: %w", err)
	}
	return nil
}

// Attribution is the whole-machine stall-attribution report: one Attr
// per SM, in SM-index order, plus the geometry needed to render it.
type Attribution struct {
	// WarpSlots is the number of warp contexts per SM (each Attr has
	// WarpSlots+1 rows).
	WarpSlots int
	// PerSM holds each SM's table, indexed by SM id.
	PerSM []*Attr
}

// Sum returns the total unissued slots charged machine-wide. The repo's
// invariant test pins this to (cycles × schedulers × SMs − issued
// slots).
func (at *Attribution) Sum() uint64 {
	var t uint64
	for _, a := range at.PerSM {
		t += a.Sum()
	}
	return t
}

// Totals returns machine-wide per-cause totals.
func (at *Attribution) Totals() [NumCauses]uint64 {
	var t [NumCauses]uint64
	for _, a := range at.PerSM {
		s := a.Totals()
		for c := range s {
			t[c] += s[c]
		}
	}
	return t
}

// warpRow pairs a warp's global identity with its total for sorting.
type warpRow struct {
	sm, warp int
	total    uint64
	counts   [NumCauses]uint64
}

// RenderTable writes the human-readable stall-attribution breakdown: a
// machine-wide per-cause summary (share of all unissued slots), a per-SM
// totals table, and the topWarps most-stalled warps with their dominant
// causes. topWarps <= 0 renders the summary tables only.
func (at *Attribution) RenderTable(w io.Writer, topWarps int) {
	total := at.Sum()
	fmt.Fprintf(w, "Stall attribution: %d unissued issue slots charged\n\n", total)
	fmt.Fprintf(w, "  %-14s %14s %7s\n", "cause", "slots", "share")
	tt := at.Totals()
	for c := Cause(0); c < NumCauses; c++ {
		fmt.Fprintf(w, "  %-14s %14d %6.1f%%\n", c, tt[c], share(tt[c], total))
	}
	fmt.Fprintf(w, "\n  %-5s %14s %14s %14s %14s\n", "SM", "total", "scoreboard", "mem-pipe", "barrier+drain")
	for sm, a := range at.PerSM {
		t := a.Totals()
		mem := t[CauseLSUBusy] + t[CauseStoreBufFull] + t[CauseMSHRFull]
		fmt.Fprintf(w, "  %-5d %14d %14d %14d %14d\n",
			sm, a.Sum(), t[CauseScoreboard], mem, t[CauseBarrier]+t[CauseDrain])
	}
	if topWarps <= 0 {
		return
	}
	var rows []warpRow
	for sm, a := range at.PerSM {
		for wi := 0; wi < len(a.Counts)-1; wi++ {
			var rt uint64
			for _, n := range a.Counts[wi] {
				rt += n
			}
			if rt > 0 {
				rows = append(rows, warpRow{sm: sm, warp: wi, total: rt, counts: a.Counts[wi]})
			}
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].total != rows[j].total {
			return rows[i].total > rows[j].total
		}
		if rows[i].sm != rows[j].sm {
			return rows[i].sm < rows[j].sm
		}
		return rows[i].warp < rows[j].warp
	})
	if len(rows) > topWarps {
		rows = rows[:topWarps]
	}
	fmt.Fprintf(w, "\n  top %d stalled warps:\n", len(rows))
	fmt.Fprintf(w, "  %-10s %14s  %s\n", "warp", "slots", "dominant causes")
	for _, r := range rows {
		fmt.Fprintf(w, "  sm%d.w%-4d %14d  %s\n", r.sm, r.warp, r.total, dominant(r.counts, r.total))
	}
}

// share returns n as a percentage of total, or 0 for an empty total.
func share(n, total uint64) float64 {
	if total == 0 {
		return 0
	}
	return 100 * float64(n) / float64(total)
}

// dominant formats the top causes of one warp row, largest first,
// stopping once 90% of the row's slots are explained.
func dominant(counts [NumCauses]uint64, total uint64) string {
	type cc struct {
		c Cause
		n uint64
	}
	var cs []cc
	for c := Cause(0); c < NumCauses; c++ {
		if counts[c] > 0 {
			cs = append(cs, cc{c, counts[c]})
		}
	}
	sort.Slice(cs, func(i, j int) bool {
		if cs[i].n != cs[j].n {
			return cs[i].n > cs[j].n
		}
		return cs[i].c < cs[j].c
	})
	out := ""
	var covered uint64
	for i, x := range cs {
		if i > 0 {
			if covered*10 >= total*9 {
				break
			}
			out += " "
		}
		out += fmt.Sprintf("%s=%.0f%%", x.c, share(x.n, total))
		covered += x.n
	}
	return out
}
