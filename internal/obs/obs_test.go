package obs

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"github.com/caba-sim/caba/internal/snapshot"
)

// sampleRows returns a small deterministic series for round-trip tests.
func sampleRows() []Sample {
	return []Sample{
		{Cycle: 100, IPC: 1.5, IssueActive: 0.5, IssueComp: 0.1, IssueMem: 0.2, IssueDep: 0.1, IssueIdle: 0.1,
			L1HitRate: 0.75, L2HitRate: 0.5, MSHROcc: 0.25, DRAMBusy: 0.3, AWOcc: 0.125, CompRatio: 2.5},
		{Cycle: 200, IPC: 0.25, IssueIdle: 1},
	}
}

func TestSeriesRoundTripJSONL(t *testing.T) {
	var s Series
	for _, r := range sampleRows() {
		s.Append(r)
	}
	var buf bytes.Buffer
	if err := s.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != s.Len() {
		t.Fatalf("got %d lines, want %d", len(lines), s.Len())
	}
	for i, ln := range lines {
		var got Sample
		if err := json.Unmarshal([]byte(ln), &got); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if got != s.At(i) {
			t.Fatalf("line %d: got %+v want %+v", i, got, s.At(i))
		}
	}
}

func TestSeriesCSV(t *testing.T) {
	var s Series
	for _, r := range sampleRows() {
		s.Append(r)
	}
	var buf bytes.Buffer
	if err := s.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != s.Len()+1 {
		t.Fatalf("got %d lines, want header + %d rows", len(lines), s.Len())
	}
	if want := strings.Join(csvHeader, ","); lines[0] != want {
		t.Fatalf("header %q, want %q", lines[0], want)
	}
	for i, ln := range lines[1:] {
		if got := strings.Count(ln, ","); got != len(csvHeader)-1 {
			t.Fatalf("row %d: %d commas, want %d", i, got, len(csvHeader)-1)
		}
	}
}

func TestSeriesSnapshotRoundTrip(t *testing.T) {
	var s Series
	for _, r := range sampleRows() {
		s.Append(r)
	}
	var w snapshot.Writer
	s.Save(&w)
	var got Series
	if err := got.Load(snapshot.NewReader(w.Payload())); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&s, &got) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, s)
	}
}

func TestSeriesLoadRejectsTruncated(t *testing.T) {
	var s Series
	s.Append(sampleRows()[0])
	var w snapshot.Writer
	s.Save(&w)
	var got Series
	if err := got.Load(snapshot.NewReader(w.Payload()[:len(w.Payload())-3])); err == nil {
		t.Fatal("truncated payload loaded without error")
	}
}

func TestAttrChargeAndInvariants(t *testing.T) {
	a := NewAttr(4)
	a.Charge(0, CauseScoreboard, 3)
	a.Charge(3, CauseMSHRFull, 2)
	a.Charge(-1, CauseEmpty, 7) // SM-level row
	if got := a.Sum(); got != 12 {
		t.Fatalf("Sum = %d, want 12", got)
	}
	tt := a.Totals()
	if tt[CauseScoreboard] != 3 || tt[CauseMSHRFull] != 2 || tt[CauseEmpty] != 7 {
		t.Fatalf("Totals = %v", tt)
	}
	if a.Counts[4][CauseEmpty] != 7 {
		t.Fatalf("SM-level charge landed on %v", a.Counts)
	}
}

func TestAttrSnapshotRoundTrip(t *testing.T) {
	a := NewAttr(2)
	a.Charge(1, CauseBarrier, 5)
	a.Charge(-1, CauseEmpty, 1)
	var w snapshot.Writer
	a.Save(&w)
	got := NewAttr(2)
	if err := got.Load(snapshot.NewReader(w.Payload())); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, got) {
		t.Fatalf("round trip mismatch: %+v vs %+v", a, got)
	}
	wrong := NewAttr(3)
	if err := wrong.Load(snapshot.NewReader(w.Payload())); err == nil {
		t.Fatal("geometry mismatch loaded without error")
	}
}

func TestCauseString(t *testing.T) {
	if CauseScoreboard.String() != "scoreboard" || CauseEmpty.String() != "empty" {
		t.Fatal("cause names drifted")
	}
	if got := Cause(200).String(); got != "cause(200)" {
		t.Fatalf("out-of-range cause: %q", got)
	}
}

func TestAttributionRenderTable(t *testing.T) {
	at := &Attribution{WarpSlots: 2, PerSM: []*Attr{NewAttr(2), NewAttr(2)}}
	at.PerSM[0].Charge(0, CauseScoreboard, 10)
	at.PerSM[1].Charge(1, CauseLSUBusy, 4)
	var buf bytes.Buffer
	at.RenderTable(&buf, 8)
	out := buf.String()
	for _, want := range []string{"14 unissued", "scoreboard", "sm0.w0", "sm1.w1", "lsu-busy=100%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestTraceFlushAndValidate(t *testing.T) {
	tr := NewTrace(2)
	tr.SM(0).ThreadName(3, "warp 3")
	tr.SM(0).Begin(10, 3, "warp", "cta0")
	tr.SM(0).Begin(12, 3, "nested", "cta0")
	tr.SM(0).End(15, 3)
	tr.SM(0).End(20, 3)
	tr.SM(1).Begin(5, 1000, "assist", "fill-decompress")
	tr.SM(1).End(9, 1000)
	tr.Mem().Complete(30, 4, 0, "burst", "read")
	var buf bytes.Buffer
	if err := tr.Flush(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ValidateBytes(buf.Bytes()); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("flushed trace is not valid JSON")
	}
}

func TestTraceCloseOpen(t *testing.T) {
	tr := NewTrace(1)
	tr.SM(0).Begin(1, 7, "warp", "cta0")
	tr.SM(0).Begin(2, 7, "inner", "cta0")
	tr.SM(0).Begin(3, 9, "other", "cta0")
	var buf bytes.Buffer
	if err := tr.Flush(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ValidateBytes(buf.Bytes()); err == nil {
		t.Fatal("open spans passed validation")
	}
	tr.CloseOpen(50)
	buf.Reset()
	if err := tr.Flush(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ValidateBytes(buf.Bytes()); err != nil {
		t.Fatalf("closed trace rejected: %v", err)
	}
}

func TestValidateCatchesViolations(t *testing.T) {
	cases := map[string]string{
		"unmatched end":     `{"traceEvents":[{"ph":"E","pid":0,"tid":1,"ts":5}]}`,
		"ts regression":     `{"traceEvents":[{"ph":"B","pid":0,"tid":1,"ts":5,"name":"a"},{"ph":"E","pid":0,"tid":1,"ts":4}]}`,
		"unknown phase":     `{"traceEvents":[{"ph":"Q","pid":0,"tid":1,"ts":5}]}`,
		"open at eof":       `{"traceEvents":[{"ph":"B","pid":0,"tid":1,"ts":5,"name":"a"}]}`,
		"negative duration": `{"traceEvents":[{"ph":"X","pid":0,"tid":1,"ts":5,"dur":-2,"name":"a"}]}`,
		"not json":          `]`,
	}
	for name, in := range cases {
		if err := ValidateBytes([]byte(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	ok := `{"traceEvents":[{"ph":"M","pid":0,"tid":0,"name":"process_name","args":{"name":"SM 0"}},` +
		`{"ph":"B","pid":0,"tid":1,"ts":5,"name":"a"},{"ph":"E","pid":0,"tid":1,"ts":5}]}`
	if err := ValidateBytes([]byte(ok)); err != nil {
		t.Errorf("conforming trace rejected: %v", err)
	}
}
