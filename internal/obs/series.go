package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"github.com/caba-sim/caba/internal/snapshot"
)

// maxSeriesLen bounds the number of samples a serialized Series may
// claim, so a corrupt snapshot cannot force a huge allocation before the
// CRC/length checks in the reader catch it.
const maxSeriesLen = 1 << 22

// Sample is one row of the metrics time-series: the machine's gauges and
// windowed rates observed at the end of a sampling window. Rates (IPC,
// issue fractions, hit rates, bus busy fraction) are computed over the
// window that ends at Cycle; occupancies (MSHR, assist warps) are
// instantaneous at Cycle; CompRatio is the cumulative compression ratio
// so far.
type Sample struct {
	// Cycle is the simulated core cycle at which the window closed.
	Cycle uint64 `json:"cycle"`
	// IPC is thread instructions retired per core cycle over the window.
	IPC float64 `json:"ipc"`
	// IssueActive..IssueIdle split the window's issue slots into the
	// paper's Figure-1 categories; the five fractions sum to 1.
	IssueActive float64 `json:"issue_active"`
	IssueComp   float64 `json:"issue_comp"`
	IssueMem    float64 `json:"issue_mem"`
	IssueDep    float64 `json:"issue_dep"`
	IssueIdle   float64 `json:"issue_idle"`
	// L1HitRate and L2HitRate are hits/(hits+misses) over the window's
	// accesses at each level, or 0 when the window saw no accesses.
	L1HitRate float64 `json:"l1_hit_rate"`
	L2HitRate float64 `json:"l2_hit_rate"`
	// MSHROcc is the fraction of L1 MSHR entries outstanding at Cycle,
	// averaged across SMs.
	MSHROcc float64 `json:"mshr_occ"`
	// DRAMBusy is the fraction of the window's aggregate data-bus cycles
	// (all channels) spent transferring data.
	DRAMBusy float64 `json:"dram_busy"`
	// AWOcc is the fraction of Assist Warp Table entries live at Cycle,
	// averaged across SMs.
	AWOcc float64 `json:"aw_occ"`
	// CompRatio is the cumulative memory-side compression ratio
	// (uncompressed bytes / compressed bytes) observed so far, or 0
	// before any line has been compressed.
	CompRatio float64 `json:"comp_ratio"`
}

// Series is a columnar, append-only metrics time-series: one entry per
// column per recorded Sample. Columns stay parallel — Append is the only
// mutator — so row i can always be reassembled with At(i).
type Series struct {
	Cycle       []uint64
	IPC         []float64
	IssueActive []float64
	IssueComp   []float64
	IssueMem    []float64
	IssueDep    []float64
	IssueIdle   []float64
	L1HitRate   []float64
	L2HitRate   []float64
	MSHROcc     []float64
	DRAMBusy    []float64
	AWOcc       []float64
	CompRatio   []float64
}

// Append records one sample as the new last row.
func (s *Series) Append(sm Sample) {
	s.Cycle = append(s.Cycle, sm.Cycle)
	s.IPC = append(s.IPC, sm.IPC)
	s.IssueActive = append(s.IssueActive, sm.IssueActive)
	s.IssueComp = append(s.IssueComp, sm.IssueComp)
	s.IssueMem = append(s.IssueMem, sm.IssueMem)
	s.IssueDep = append(s.IssueDep, sm.IssueDep)
	s.IssueIdle = append(s.IssueIdle, sm.IssueIdle)
	s.L1HitRate = append(s.L1HitRate, sm.L1HitRate)
	s.L2HitRate = append(s.L2HitRate, sm.L2HitRate)
	s.MSHROcc = append(s.MSHROcc, sm.MSHROcc)
	s.DRAMBusy = append(s.DRAMBusy, sm.DRAMBusy)
	s.AWOcc = append(s.AWOcc, sm.AWOcc)
	s.CompRatio = append(s.CompRatio, sm.CompRatio)
}

// Len returns the number of recorded samples.
func (s *Series) Len() int { return len(s.Cycle) }

// At reassembles row i as a Sample. It panics if i is out of range,
// matching slice-index semantics.
func (s *Series) At(i int) Sample {
	return Sample{
		Cycle:       s.Cycle[i],
		IPC:         s.IPC[i],
		IssueActive: s.IssueActive[i],
		IssueComp:   s.IssueComp[i],
		IssueMem:    s.IssueMem[i],
		IssueDep:    s.IssueDep[i],
		IssueIdle:   s.IssueIdle[i],
		L1HitRate:   s.L1HitRate[i],
		L2HitRate:   s.L2HitRate[i],
		MSHROcc:     s.MSHROcc[i],
		DRAMBusy:    s.DRAMBusy[i],
		AWOcc:       s.AWOcc[i],
		CompRatio:   s.CompRatio[i],
	}
}

// WriteJSONL writes the series as JSON Lines: one Sample object per
// line, in row order, using the json tags on Sample as keys.
func (s *Series) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for i := 0; i < s.Len(); i++ {
		if err := enc.Encode(s.At(i)); err != nil {
			return fmt.Errorf("series jsonl row %d: %w", i, err)
		}
	}
	return nil
}

// csvHeader lists the CSV column names, matching the Sample json tags
// and the Series column order.
var csvHeader = []string{
	"cycle", "ipc",
	"issue_active", "issue_comp", "issue_mem", "issue_dep", "issue_idle",
	"l1_hit_rate", "l2_hit_rate", "mshr_occ", "dram_busy", "aw_occ", "comp_ratio",
}

// WriteCSV writes the series as CSV with a header row. Floats use the
// shortest round-trippable representation (strconv 'g', 64-bit).
func (s *Series) WriteCSV(w io.Writer) error {
	b := make([]byte, 0, 256)
	for i, h := range csvHeader {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, h...)
	}
	b = append(b, '\n')
	if _, err := w.Write(b); err != nil {
		return fmt.Errorf("series csv header: %w", err)
	}
	for i := 0; i < s.Len(); i++ {
		row := s.At(i)
		b = b[:0]
		b = strconv.AppendUint(b, row.Cycle, 10)
		for _, f := range []float64{
			row.IPC,
			row.IssueActive, row.IssueComp, row.IssueMem, row.IssueDep, row.IssueIdle,
			row.L1HitRate, row.L2HitRate, row.MSHROcc, row.DRAMBusy, row.AWOcc, row.CompRatio,
		} {
			b = append(b, ',')
			b = strconv.AppendFloat(b, f, 'g', -1, 64)
		}
		b = append(b, '\n')
		if _, err := w.Write(b); err != nil {
			return fmt.Errorf("series csv row %d: %w", i, err)
		}
	}
	return nil
}

// Save serializes the series into a snapshot payload: row count followed
// by the rows in column order.
func (s *Series) Save(w *snapshot.Writer) {
	w.Len(s.Len())
	for i := 0; i < s.Len(); i++ {
		row := s.At(i)
		w.U64(row.Cycle)
		w.F64(row.IPC)
		w.F64(row.IssueActive)
		w.F64(row.IssueComp)
		w.F64(row.IssueMem)
		w.F64(row.IssueDep)
		w.F64(row.IssueIdle)
		w.F64(row.L1HitRate)
		w.F64(row.L2HitRate)
		w.F64(row.MSHROcc)
		w.F64(row.DRAMBusy)
		w.F64(row.AWOcc)
		w.F64(row.CompRatio)
	}
}

// Load restores a series saved by Save, replacing the receiver's
// contents. It returns an error on malformed input instead of panicking
// so snapshot loading can surface corrupt payloads gracefully.
func (s *Series) Load(r *snapshot.Reader) error {
	n := r.Len(maxSeriesLen)
	if err := r.Err(); err != nil {
		return fmt.Errorf("series length: %w", err)
	}
	*s = Series{}
	for i := 0; i < n; i++ {
		s.Append(Sample{
			Cycle:       r.U64(),
			IPC:         r.F64(),
			IssueActive: r.F64(),
			IssueComp:   r.F64(),
			IssueMem:    r.F64(),
			IssueDep:    r.F64(),
			IssueIdle:   r.F64(),
			L1HitRate:   r.F64(),
			L2HitRate:   r.F64(),
			MSHROcc:     r.F64(),
			DRAMBusy:    r.F64(),
			AWOcc:       r.F64(),
			CompRatio:   r.F64(),
		})
		if err := r.Err(); err != nil {
			return fmt.Errorf("series row %d: %w", i, err)
		}
	}
	return nil
}
