// Package stats collects the simulation metrics the paper reports:
// instructions per cycle, the Figure 1 issue-cycle breakdown, DRAM
// bandwidth utilization, compression ratios, cache and MD-cache hit rates,
// and the raw event counts the energy model consumes.
package stats

import (
	"fmt"
	"reflect"
	"strings"

	"github.com/caba-sim/caba/internal/compress"
)

// StallKind classifies one scheduler-cycle, matching Figure 1's taxonomy.
type StallKind uint8

// Scheduler-cycle outcomes.
const (
	Active       StallKind = iota // issued at least one instruction
	ComputeStall                  // ready warp blocked by a full ALU/SFU pipeline
	MemoryStall                   // ready warp blocked by the memory pipeline/MSHRs
	DataDepStall                  // warps present but blocked by the scoreboard
	IdleCycle                     // no warp had a decoded, unblocked instruction
	NumStallKinds
)

var stallNames = [...]string{"Active", "ComputeStall", "MemoryStall", "DataDepStall", "Idle"}

// String returns the stall kind name.
func (k StallKind) String() string {
	if int(k) < len(stallNames) {
		return stallNames[k]
	}
	return fmt.Sprintf("stall(%d)", uint8(k))
}

// Sim aggregates all counters for one simulation run. Plain fields; the
// simulator increments them directly and the reporting layer derives the
// paper's metrics.
type Sim struct {
	// Time.
	Cycles    uint64 // core-clock cycles until kernel completion
	MemCycles uint64 // DRAM-clock cycles elapsed

	// Work.
	WarpInstrs   uint64 // warp-instructions issued (parent warps)
	ThreadInstrs uint64 // thread-instructions (warp instrs x active lanes)
	AssistInstrs uint64 // warp-instructions issued on behalf of assist warps
	AssistWarps  uint64 // assist-warp activations
	AssistKilled uint64 // assist warps killed/flushed before completion

	// Instruction class mix (regular + assist), for the energy model.
	ALUInstrs  uint64
	SFUInstrs  uint64
	MemInstrs  uint64 // shared/staging/global accesses issued
	CtrlInstrs uint64

	// Issue-cycle breakdown (per scheduler slot; sums to
	// Cycles x NumSchedulers x NumSMs).
	IssueSlots [NumStallKinds]uint64

	// Caches.
	L1Hits, L1Misses   uint64
	L2Hits, L2Misses   uint64
	L1Evictions        uint64
	L2Evictions        uint64
	StoreBufferFlushes uint64 // pending-store buffer overflows (released raw)

	// Interconnect.
	FlitsToMem   uint64 // SM -> memory-partition flits
	FlitsFromMem uint64 // memory-partition -> SM flits

	// DRAM.
	DRAMReads      uint64
	DRAMWrites     uint64
	DRAMBursts     uint64 // data-bus busy slots (one burst each)
	DRAMActivates  uint64
	DRAMBusyCycles uint64 // memory cycles the data bus was transferring

	// Compression.
	Ratio             compress.Ratio
	LinesCompressed   uint64 // compression events (store path)
	LinesDecompressed uint64 // decompression events (fill path)

	// Load latency (issue to last-line completion, in core cycles).
	LoadCount    uint64
	LoadLatTotal uint64

	// MD cache (Section 4.3.2).
	MDHits, MDMisses uint64

	// Assist-warp use cases (Sections 7.1/7.2). All zero unless the
	// design's UseCase enables prefetch and/or memoization.
	PrefetchTriggers  uint64 // RtPrefetch assist warps launched by the stride table
	PrefetchThrottled uint64 // confident triggers dropped on MSHR/slot/utilization pressure
	PrefetchUseful    uint64 // demand L1 hits on lines a prefetch assist filled
	MemoHits          uint64 // SFU ops skipped via the result cache (probe assist replayed the value)
	MemoMisses        uint64 // memoizable SFU ops that missed the result cache
	MemoNoSlot        uint64 // result-cache hits abandoned because no AWT slot was free
	MemoUpdates       uint64 // RtMemoSave assist warps launched to install a result

	// Fault injection (internal/faults). Zero when injection is disabled.
	FaultsInjected   uint64 // faults the campaign actually placed
	FaultsDetected   uint64 // faults caught by a check (ECC assist warp, MD ECC, routine error)
	FaultsRecovered  uint64 // detected faults repaired (raw re-fetch or metadata refetch)
	ResponsesDropped uint64 // read responses lost to injection (unrecoverable)
	ResponsesDelayed uint64 // read responses held and redelivered late

	// Occupancy / registers (Figure 2).
	RegsPerThread     int
	ThreadsPerSM      int // resident threads at steady state
	CTAsPerSM         int
	UnallocatedRegs   float64 // fraction of the register file unallocated
	AssistRegsPerWarp int     // extra registers provisioned per warp for assist routines

	// Energy (filled by internal/energy after the run, in nanojoules).
	EnergyCore     float64
	EnergyRF       float64
	EnergyL1       float64
	EnergyL2       float64
	EnergyNoC      float64
	EnergyDRAM     float64
	EnergyStatic   float64
	EnergyOverhead float64 // MD cache + AWS/AWC/AWB or dedicated logic
}

// IPC returns thread-instructions per core cycle (the paper's performance
// metric; assist-warp instructions are overhead, not work, and are
// excluded).
func (s *Sim) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.ThreadInstrs) / float64(s.Cycles)
}

// BWUtilization returns the fraction of DRAM cycles the data bus was busy.
func (s *Sim) BWUtilization() float64 {
	if s.MemCycles == 0 {
		return 0
	}
	return float64(s.DRAMBusyCycles) / float64(s.MemCycles)
}

// IssueBreakdown returns each stall kind as a fraction of all scheduler
// slots.
func (s *Sim) IssueBreakdown() [NumStallKinds]float64 {
	var out [NumStallKinds]float64
	var total uint64
	for _, v := range s.IssueSlots {
		total += v
	}
	if total == 0 {
		return out
	}
	for i, v := range s.IssueSlots {
		out[i] = float64(v) / float64(total)
	}
	return out
}

// L1HitRate returns the L1 hit fraction.
func (s *Sim) L1HitRate() float64 { return rate(s.L1Hits, s.L1Misses) }

// L2HitRate returns the L2 hit fraction.
func (s *Sim) L2HitRate() float64 { return rate(s.L2Hits, s.L2Misses) }

// MDHitRate returns the metadata-cache hit fraction.
func (s *Sim) MDHitRate() float64 { return rate(s.MDHits, s.MDMisses) }

func rate(hit, miss uint64) float64 {
	if hit+miss == 0 {
		return 0
	}
	return float64(hit) / float64(hit+miss)
}

// AvgLoadLatency returns the mean global-load latency in cycles.
func (s *Sim) AvgLoadLatency() float64 {
	if s.LoadCount == 0 {
		return 0
	}
	return float64(s.LoadLatTotal) / float64(s.LoadCount)
}

// TotalEnergy returns total energy in nanojoules.
func (s *Sim) TotalEnergy() float64 {
	return s.EnergyCore + s.EnergyRF + s.EnergyL1 + s.EnergyL2 + s.EnergyNoC +
		s.EnergyDRAM + s.EnergyStatic + s.EnergyOverhead
}

// DRAMEnergy returns the DRAM component in nanojoules.
func (s *Sim) DRAMEnergy() float64 { return s.EnergyDRAM }

// AvgPowerW returns average power in watts given the core clock in MHz.
func (s *Sim) AvgPowerW(coreClockMHz int) float64 {
	if s.Cycles == 0 {
		return 0
	}
	seconds := float64(s.Cycles) / (float64(coreClockMHz) * 1e6)
	return s.TotalEnergy() * 1e-9 / seconds
}

// Shard is the per-SM slice of the counters the SM tick path increments.
// With the two-phase parallel tick, phase-A workers bump their own SM's
// shard (no contention, no atomics) and the simulator folds the shards
// into the run's Sim once at the end; every field is a commutative sum,
// so the fold is order-independent and the totals are bit-identical to
// serial direct increments. Memory-system counters (flits, DRAM, L2, MD
// cache) stay on Sim itself: they are only touched by the main goroutine
// during the commit phase.
type Shard struct {
	WarpInstrs   uint64
	ThreadInstrs uint64
	AssistInstrs uint64
	AssistWarps  uint64

	ALUInstrs  uint64
	SFUInstrs  uint64
	MemInstrs  uint64
	CtrlInstrs uint64

	IssueSlots [NumStallKinds]uint64

	L1Hits, L1Misses   uint64
	StoreBufferFlushes uint64

	LinesCompressed   uint64
	LinesDecompressed uint64

	LoadCount    uint64
	LoadLatTotal uint64

	// Assist-warp use-case counters (all SM-resident state).
	PrefetchTriggers  uint64
	PrefetchThrottled uint64
	PrefetchUseful    uint64
	MemoHits          uint64
	MemoMisses        uint64
	MemoNoSlot        uint64
	MemoUpdates       uint64

	// Fault counters for injection/detection/recovery events that happen
	// on the SM fill path (phase-B commit or event delivery, so in
	// practice main-goroutine only, but shard-resident to keep every SM
	// counter on one write path).
	FaultsInjected  uint64
	FaultsDetected  uint64
	FaultsRecovered uint64

	// DecompMismatches mirrors the simulator's racing-write counter; it is
	// not a Sim field, so AddShard leaves it to the caller.
	DecompMismatches uint64
}

// AddShard folds one SM's shard into the run totals (DecompMismatches
// excluded; see Shard).
func (s *Sim) AddShard(sh *Shard) {
	s.WarpInstrs += sh.WarpInstrs
	s.ThreadInstrs += sh.ThreadInstrs
	s.AssistInstrs += sh.AssistInstrs
	s.AssistWarps += sh.AssistWarps
	s.ALUInstrs += sh.ALUInstrs
	s.SFUInstrs += sh.SFUInstrs
	s.MemInstrs += sh.MemInstrs
	s.CtrlInstrs += sh.CtrlInstrs
	for i := range sh.IssueSlots {
		s.IssueSlots[i] += sh.IssueSlots[i]
	}
	s.L1Hits += sh.L1Hits
	s.L1Misses += sh.L1Misses
	s.StoreBufferFlushes += sh.StoreBufferFlushes
	s.LinesCompressed += sh.LinesCompressed
	s.LinesDecompressed += sh.LinesDecompressed
	s.LoadCount += sh.LoadCount
	s.LoadLatTotal += sh.LoadLatTotal
	s.PrefetchTriggers += sh.PrefetchTriggers
	s.PrefetchThrottled += sh.PrefetchThrottled
	s.PrefetchUseful += sh.PrefetchUseful
	s.MemoHits += sh.MemoHits
	s.MemoMisses += sh.MemoMisses
	s.MemoNoSlot += sh.MemoNoSlot
	s.MemoUpdates += sh.MemoUpdates
	s.FaultsInjected += sh.FaultsInjected
	s.FaultsDetected += sh.FaultsDetected
	s.FaultsRecovered += sh.FaultsRecovered
}

// Diff compares every field of two runs and returns a human-readable
// line per mismatch (empty when identical). The fast-forward golden
// equivalence tests use it so a divergence names the counter that moved
// instead of dumping two structs.
func (s *Sim) Diff(o *Sim) []string {
	var out []string
	va, vb := reflect.ValueOf(*s), reflect.ValueOf(*o)
	t := va.Type()
	for i := 0; i < t.NumField(); i++ {
		fa, fb := va.Field(i), vb.Field(i)
		if !reflect.DeepEqual(fa.Interface(), fb.Interface()) {
			out = append(out, fmt.Sprintf("%s: %v != %v", t.Field(i).Name, fa.Interface(), fb.Interface()))
		}
	}
	return out
}

// String summarizes the run for logs and the CLI.
func (s *Sim) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cycles=%d ipc=%.2f bw=%.1f%%", s.Cycles, s.IPC(), 100*s.BWUtilization())
	br := s.IssueBreakdown()
	fmt.Fprintf(&b, " issue[act=%.0f%% comp=%.0f%% mem=%.0f%% dep=%.0f%% idle=%.0f%%]",
		100*br[Active], 100*br[ComputeStall], 100*br[MemoryStall], 100*br[DataDepStall], 100*br[IdleCycle])
	if s.Ratio.Lines > 0 {
		fmt.Fprintf(&b, " comp-ratio=%.2f", s.Ratio.Value())
	}
	if s.MDHits+s.MDMisses > 0 {
		fmt.Fprintf(&b, " md-hit=%.1f%%", 100*s.MDHitRate())
	}
	return b.String()
}
