package stats

import (
	"strings"
	"testing"
)

func TestIPCExcludesAssistInstrs(t *testing.T) {
	s := Sim{Cycles: 100, ThreadInstrs: 3200, AssistInstrs: 999}
	if got := s.IPC(); got != 32 {
		t.Errorf("IPC = %v, want 32 (assist instructions are overhead, not work)", got)
	}
	var zero Sim
	if zero.IPC() != 0 {
		t.Error("zero-cycle IPC must be 0")
	}
}

func TestBWUtilization(t *testing.T) {
	s := Sim{MemCycles: 1000, DRAMBusyCycles: 400}
	if got := s.BWUtilization(); got != 0.4 {
		t.Errorf("utilization = %v, want 0.4", got)
	}
}

func TestIssueBreakdownSumsToOne(t *testing.T) {
	s := Sim{}
	s.IssueSlots[Active] = 10
	s.IssueSlots[MemoryStall] = 30
	s.IssueSlots[IdleCycle] = 60
	br := s.IssueBreakdown()
	sum := 0.0
	for _, v := range br {
		sum += v
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("breakdown sums to %v", sum)
	}
	if br[IdleCycle] != 0.6 {
		t.Errorf("idle = %v", br[IdleCycle])
	}
}

func TestHitRates(t *testing.T) {
	s := Sim{L1Hits: 3, L1Misses: 1, MDHits: 85, MDMisses: 15}
	if s.L1HitRate() != 0.75 {
		t.Errorf("L1 = %v", s.L1HitRate())
	}
	if s.MDHitRate() != 0.85 {
		t.Errorf("MD = %v", s.MDHitRate())
	}
	var zero Sim
	if zero.L2HitRate() != 0 {
		t.Error("empty rate must be 0")
	}
}

func TestAvgLoadLatency(t *testing.T) {
	s := Sim{LoadCount: 4, LoadLatTotal: 400}
	if s.AvgLoadLatency() != 100 {
		t.Errorf("latency = %v", s.AvgLoadLatency())
	}
}

func TestStallKindNames(t *testing.T) {
	want := []string{"Active", "ComputeStall", "MemoryStall", "DataDepStall", "Idle"}
	for i, w := range want {
		if StallKind(i).String() != w {
			t.Errorf("kind %d = %q, want %q", i, StallKind(i), w)
		}
	}
}

func TestStringSummary(t *testing.T) {
	s := Sim{Cycles: 10, ThreadInstrs: 100, MemCycles: 20, DRAMBusyCycles: 10}
	s.IssueSlots[Active] = 1
	out := s.String()
	for _, frag := range []string{"cycles=10", "ipc=10.00", "bw=50.0%"} {
		if !strings.Contains(out, frag) {
			t.Errorf("summary %q missing %q", out, frag)
		}
	}
}
