package energy

import (
	"testing"

	"github.com/caba-sim/caba/internal/config"
	"github.com/caba-sim/caba/internal/stats"
)

func baseStats() *stats.Sim {
	return &stats.Sim{
		Cycles:        1_000_000,
		ALUInstrs:     2_000_000,
		SFUInstrs:     100_000,
		MemInstrs:     500_000,
		CtrlInstrs:    300_000,
		L1Hits:        400_000,
		L1Misses:      100_000,
		L2Hits:        40_000,
		L2Misses:      60_000,
		FlitsToMem:    200_000,
		FlitsFromMem:  500_000,
		DRAMBursts:    1_500_000, // memory-bound profile: ~1.5 bursts/cycle
		DRAMActivates: 150_000,
	}
}

func TestApplyFillsComponents(t *testing.T) {
	m := DefaultModel()
	cfg := config.Baseline()
	s := baseStats()
	total := Apply(&m, &cfg, config.DesignBase, s)
	if total <= 0 {
		t.Fatal("total energy must be positive")
	}
	for name, v := range map[string]float64{
		"core": s.EnergyCore, "rf": s.EnergyRF, "l1": s.EnergyL1,
		"l2": s.EnergyL2, "noc": s.EnergyNoC, "dram": s.EnergyDRAM,
		"static": s.EnergyStatic,
	} {
		if v <= 0 {
			t.Errorf("component %s = %v, want > 0", name, v)
		}
	}
	if s.EnergyOverhead != 0 {
		t.Error("base design has no compression overhead")
	}
	if got := s.TotalEnergy(); got != total {
		t.Errorf("TotalEnergy %v != Apply result %v", got, total)
	}
}

func TestStaticScalesWithRuntime(t *testing.T) {
	m := DefaultModel()
	cfg := config.Baseline()
	s1, s2 := baseStats(), baseStats()
	s2.Cycles = 2 * s1.Cycles
	Apply(&m, &cfg, config.DesignBase, s1)
	Apply(&m, &cfg, config.DesignBase, s2)
	if s2.EnergyStatic != 2*s1.EnergyStatic {
		t.Errorf("static energy must scale with cycles: %v vs %v", s1.EnergyStatic, s2.EnergyStatic)
	}
}

func TestDRAMDominatesForTrafficHeavyRuns(t *testing.T) {
	// Sanity: a bandwidth-bound profile should show DRAM as a large
	// share, which is what makes compression's energy story work.
	m := DefaultModel()
	cfg := config.Baseline()
	s := baseStats()
	Apply(&m, &cfg, config.DesignBase, s)
	share := s.EnergyDRAM / s.TotalEnergy()
	if share < 0.15 || share > 0.70 {
		t.Errorf("DRAM share = %.2f; calibration off", share)
	}
}

func TestDesignOverheads(t *testing.T) {
	m := DefaultModel()
	cfg := config.Baseline()

	hw := baseStats()
	hw.MDHits, hw.MDMisses = 90_000, 10_000
	hw.Ratio.Lines = 50_000
	Apply(&m, &cfg, config.DesignHWBDI, hw)
	if hw.EnergyOverhead <= 0 {
		t.Error("HW design must pay dedicated-logic + MD energy")
	}

	caba := baseStats()
	caba.MDHits, caba.MDMisses = 90_000, 10_000
	caba.AssistInstrs = 800_000
	Apply(&m, &cfg, config.DesignCABABDI, caba)
	if caba.EnergyOverhead <= 0 {
		t.Error("CABA design must pay AWS/AWC/AWB + MD energy")
	}

	ideal := baseStats()
	ideal.MDHits = 100_000
	Apply(&m, &cfg, config.DesignIdealBDI, ideal)
	// Ideal pays only the MD cache (it still needs line metadata).
	if ideal.EnergyOverhead >= caba.EnergyOverhead {
		t.Error("ideal overhead should be below CABA's")
	}
}

func TestCompressionEnergyStory(t *testing.T) {
	// The paper's qualitative result: halving DRAM traffic and shaving
	// runtime must reduce total energy even after CABA's overheads.
	m := DefaultModel()
	cfg := config.Baseline()
	base := baseStats()
	Apply(&m, &cfg, config.DesignBase, base)

	caba := baseStats()
	caba.Cycles = uint64(float64(base.Cycles) / 1.4)
	caba.DRAMBursts /= 2
	caba.FlitsFromMem /= 2
	caba.AssistInstrs = 400_000
	caba.ALUInstrs += 350_000
	caba.MemInstrs += 50_000
	caba.MDHits = 100_000
	Apply(&m, &cfg, config.DesignCABABDI, caba)

	saving := 1 - caba.TotalEnergy()/base.TotalEnergy()
	if saving < 0.05 || saving > 0.50 {
		t.Errorf("energy saving = %.2f; expected a paper-like reduction (0.05..0.50)", saving)
	}
}

func TestAvgPower(t *testing.T) {
	m := DefaultModel()
	cfg := config.Baseline()
	s := baseStats()
	Apply(&m, &cfg, config.DesignBase, s)
	w := s.AvgPowerW(cfg.CoreClockMHz)
	if w < 36 || w > 300 {
		t.Errorf("average power = %.1f W; expected a GTX480-class range", w)
	}
}
