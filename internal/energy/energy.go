// Package energy is the event-based power/energy model standing in for
// GPUWattch + CACTI (Section 5). Every architectural event counted by the
// simulator carries a fixed energy; static power accrues with runtime.
// Absolute watts are calibrated to a GTX480-class part, but — as in the
// paper — only the *relative* energies of the compared designs matter:
// compression saves energy by moving fewer DRAM bursts and interconnect
// flits and by finishing sooner (less static energy), while CABA pays for
// its assist-warp instructions, the MD cache, and the AWS/AWC/AWB; the HW
// designs instead pay a dedicated-logic cost per (de)compression.
package energy

import (
	"github.com/caba-sim/caba/internal/config"
	"github.com/caba-sim/caba/internal/stats"
)

// Model holds per-event energies in nanojoules and static power in watts.
// Defaults come from DefaultModel; all knobs are exported so ablation
// benches can vary them.
type Model struct {
	// Core dynamic energy per warp-instruction (32 lanes), by class.
	ALUOp  float64
	SFUOp  float64
	MemOp  float64 // LSU/coalescer/shared access energy
	CtrlOp float64
	// Register file access per issued instruction (operand reads +
	// writeback across the banked RF).
	RFAccess float64

	// Memory hierarchy, per access/transfer.
	L1Access     float64
	L2Access     float64
	NoCFlit      float64 // one 32B flit through the crossbar
	DRAMBurst    float64 // one 32B burst incl. I/O
	DRAMActivate float64

	// Compression-related overheads.
	MDCacheAccess float64 // per DRAM access in compressing designs
	HWCompress    float64 // dedicated-logic energy per line compressed
	HWDecompress  float64 // dedicated-logic energy per line decompressed
	// AWStructures is the extra per-assist-instruction energy of the
	// AWS/AWC/AWB structures (fetch from the assist warp store etc.).
	AWStructures float64

	// Static (leakage + clock) power in watts, split so DRAM background
	// power exists even when idle.
	StaticCoreW float64
	StaticDRAMW float64
}

// DefaultModel returns the calibrated constants (nJ / W).
func DefaultModel() Model {
	return Model{
		ALUOp:         0.10,
		SFUOp:         0.40,
		MemOp:         0.15,
		CtrlOp:        0.05,
		RFAccess:      0.12,
		L1Access:      0.06,
		L2Access:      0.30,
		NoCFlit:       0.40,
		DRAMBurst:     8.00,
		DRAMActivate:  4.00,
		MDCacheAccess: 0.02,
		HWCompress:    0.40,
		HWDecompress:  0.10,
		AWStructures:  0.02,
		StaticCoreW:   26,
		StaticDRAMW:   9,
	}
}

// Apply fills the Energy* fields of s from its event counters, for the
// given configuration and design. It returns total energy in nanojoules.
func Apply(m *Model, cfg *config.Config, design config.Design, s *stats.Sim) float64 {
	instrs := float64(s.ALUInstrs + s.SFUInstrs + s.MemInstrs + s.CtrlInstrs)
	s.EnergyCore = m.ALUOp*float64(s.ALUInstrs) +
		m.SFUOp*float64(s.SFUInstrs) +
		m.MemOp*float64(s.MemInstrs) +
		m.CtrlOp*float64(s.CtrlInstrs)
	s.EnergyRF = m.RFAccess * instrs
	s.EnergyL1 = m.L1Access * float64(s.L1Hits+s.L1Misses)
	s.EnergyL2 = m.L2Access * float64(s.L2Hits+s.L2Misses)
	s.EnergyNoC = m.NoCFlit * float64(s.FlitsToMem+s.FlitsFromMem)
	s.EnergyDRAM = m.DRAMBurst*float64(s.DRAMBursts) +
		m.DRAMActivate*float64(s.DRAMActivates)

	seconds := float64(s.Cycles) / (float64(cfg.CoreClockMHz) * 1e6)
	s.EnergyStatic = (m.StaticCoreW + m.StaticDRAMW) * seconds * 1e9

	// Design-specific overheads.
	var overhead float64
	if design.Compressing() {
		overhead += m.MDCacheAccess * float64(s.MDHits+s.MDMisses)
	}
	switch design.Decomp {
	case config.DecompHW:
		overhead += m.HWCompress*float64(s.Ratio.Lines) + // each DRAM transfer consulted the logic
			m.HWDecompress*float64(s.L1Misses)
	case config.DecompCABA:
		overhead += m.AWStructures * float64(s.AssistInstrs)
	}
	s.EnergyOverhead = overhead
	return s.TotalEnergy()
}
