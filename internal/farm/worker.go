package farm

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	caba "github.com/caba-sim/caba"
)

// WorkerConfig tunes one worker process.
type WorkerConfig struct {
	// Name identifies the worker in leases, logs and attempt history.
	Name string
	// CellTimeout bounds each cell's wall clock; a cell that exceeds it
	// is reported as a transient failure (the coordinator retries it
	// under the attempt cap). 0 disables the deadline.
	CellTimeout time.Duration
	// SMWorkers is the per-simulation SM-tick worker count (0 =
	// GOMAXPROCS). Pure strategy: results are bit-identical either way.
	SMWorkers int
	// CheckpointEvery overrides the mid-run checkpoint-upload cadence in
	// simulated cycles when the cell's own config leaves it unset
	// (default 100,000 — the sweep layer's quick-scale default).
	CheckpointEvery uint64
	// MemLimit caps each cell's live heap in bytes (0 = unlimited).
	// debug.SetMemoryLimit steers the GC toward the budget and a soft
	// watchdog aborts the cell with a typed resource-exhausted failure
	// when live heap still crosses it — the coordinator retries the cell
	// (preferring a different worker) and the abort feeds the
	// poison-cell circuit breaker.
	MemLimit int64
	// CPUTime bounds each cell's consumed CPU time — user+system across
	// every core, distinct from the CellTimeout wall clock (0 =
	// unlimited). Exceeding it aborts the cell the same way MemLimit
	// does.
	CPUTime time.Duration
	// MinDiskFree skips checkpoint uploads while the worker's local
	// filesystem (scratch, crash reports) has less than this many bytes
	// free (0 = no preflight). Skipping costs resume granularity, never
	// the run.
	MinDiskFree int64
	// PollInterval is the idle re-poll delay when the coordinator has no
	// work and suggests none (default 200ms).
	PollInterval time.Duration
	// ExitWhenDrained stops Run when the coordinator reports every
	// submitted cell terminal, instead of polling for future sweeps.
	ExitWhenDrained bool
	// Logf receives worker log lines (nil = silent).
	Logf func(format string, args ...any)
}

// hookAction is what a test hook tells the worker to do next.
type hookAction int

const (
	hookContinue hookAction = iota
	// hookDie makes the worker abandon the cell with no report and stop
	// its loop — the protocol-level image of a killed process: the lease
	// simply stops being fed and expires.
	hookDie
)

// workerHooks are the chaos-test seams. All nil in production.
type workerHooks struct {
	// beforeRun runs after the lease is granted and before heartbeats
	// start. Blocking here emulates a hung worker (the lease expires
	// underneath); returning an error reports it as the cell's failure
	// without running the simulation.
	beforeRun func(cell Cell, attempt int) error
	// beforeRunAction runs right after the lease is granted and may
	// order the worker to vanish (hookDie) before touching the cell —
	// the image of a process killed between lease and first instruction.
	beforeRunAction func(cell Cell, attempt int) hookAction
	// memLimitFor overrides cfg.MemLimit per cell (the soak harness
	// injects OOM pressure on chosen cells here).
	memLimitFor func(cell Cell, attempt int) int64
	// afterUpload runs after each successful checkpoint upload.
	afterUpload func(cell Cell, cycle uint64, uploads int) hookAction
}

// Worker leases cells from a coordinator and simulates them through the
// panic-safe caba.RunResumable path: resume blob fetched from the
// coordinator when one exists, periodic checkpoints uploaded back, the
// result (or classified failure) reported at the end. On shutdown
// (context cancellation) it drains gracefully: the in-flight run stops
// at the next interrupt poll, the lease is released for immediate
// re-queue, and the last uploaded checkpoint carries the progress.
type Worker struct {
	base   string
	client *http.Client
	cfg    WorkerConfig
	hooks  workerHooks

	killed bool // set by hookDie
}

// NewWorker builds a worker against the coordinator's base URL.
func NewWorker(coordinatorURL string, cfg WorkerConfig) *Worker {
	if cfg.Name == "" {
		cfg.Name = "worker"
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 200 * time.Millisecond
	}
	if cfg.CheckpointEvery == 0 {
		cfg.CheckpointEvery = 100_000
	}
	return &Worker{
		base:   strings.TrimRight(coordinatorURL, "/"),
		client: &http.Client{},
		cfg:    cfg,
	}
}

func (w *Worker) logf(format string, args ...any) {
	if w.cfg.Logf != nil {
		w.cfg.Logf(format, args...)
	}
}

// errStaleLease marks a coordinator 409: the lease is gone and the cell
// has moved on, so the worker abandons it.
var errStaleLease = errors.New("farm: lease is stale")

// errKilled is the hookDie sentinel.
var errKilled = errors.New("farm: worker killed by chaos hook")

// Run is the worker loop: lease, simulate, report, repeat. It returns
// nil on graceful shutdown (ctx cancelled, or the sweep drained with
// ExitWhenDrained set).
func (w *Worker) Run(ctx context.Context) error {
	for {
		if ctx.Err() != nil || w.killed {
			return nil
		}
		lr, err := w.lease(ctx)
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			w.logf("farm worker %s: lease: %v", w.cfg.Name, err)
			if !sleepCtx(ctx, w.cfg.PollInterval) {
				return nil
			}
			continue
		}
		if lr.Lease == "" || lr.Cell == nil {
			if lr.Drained && w.cfg.ExitWhenDrained {
				return nil
			}
			wait := w.cfg.PollInterval
			if lr.RetryMs > 0 {
				wait = time.Duration(lr.RetryMs) * time.Millisecond
			}
			if !sleepCtx(ctx, wait) {
				return nil
			}
			continue
		}
		w.runCell(ctx, lr)
	}
}

// sleepCtx sleeps d unless ctx ends first; it reports whether the sleep
// completed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	select {
	case <-ctx.Done():
		return false
	case <-time.After(d):
		return true
	}
}

// runCell executes one leased cell end to end.
func (w *Worker) runCell(ctx context.Context, lr *LeaseResponse) {
	cell := *lr.Cell
	if h := w.hooks.beforeRunAction; h != nil && h(cell, lr.Attempt) == hookDie {
		w.killed = true
		return
	}
	if h := w.hooks.beforeRun; h != nil {
		if err := h(cell, lr.Attempt); err != nil {
			w.report(&ReportRequest{Lease: lr.Lease, Error: err.Error()})
			return
		}
	}

	var resume []byte
	if lr.Checkpoint {
		blob, err := w.fetchCheckpoint(ctx, lr.Lease)
		if err != nil {
			// A missing or unreachable blob is not fatal: the engine's
			// contract is resume-when-possible, restart-from-zero
			// otherwise, converging to the identical result.
			w.logf("farm worker %s: checkpoint fetch for %s: %v (starting from cycle 0)", w.cfg.Name, cell.Label(), err)
		} else {
			resume = blob
		}
	}

	runCtx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)
	// The resource watchdog cancels through the cause-carrying cancel so
	// the classification switch below can read the typed *ResourceError
	// back out of context.Cause; the wall-clock timeout wraps afterwards
	// and stays a plain DeadlineExceeded.
	memLimit := w.cfg.MemLimit
	if h := w.hooks.memLimitFor; h != nil {
		memLimit = h(cell, lr.Attempt)
	}
	stopWatch := startResourceWatch(cancel, memLimit, w.cfg.CPUTime)
	defer stopWatch()
	if w.cfg.CellTimeout > 0 {
		var tcancel context.CancelFunc
		runCtx, tcancel = context.WithTimeout(runCtx, w.cfg.CellTimeout)
		defer tcancel()
	}

	// Heartbeats: keep the lease alive while the simulation runs. A 409
	// means the lease expired underneath us (we were presumed dead);
	// the run is cancelled — finishing a zombie cell is wasted work and
	// its report would be discarded anyway.
	hbStop := make(chan struct{})
	hbDone := make(chan struct{})
	ttl := time.Duration(lr.TTLMs) * time.Millisecond
	if ttl <= 0 {
		ttl = 15 * time.Second
	}
	var lastCycle atomic.Uint64
	go func() {
		defer close(hbDone)
		t := time.NewTicker(ttl / 3)
		defer t.Stop()
		for {
			select {
			case <-hbStop:
				return
			case <-runCtx.Done():
				return
			case <-t.C:
				if err := w.heartbeat(lr.Lease, lastCycle.Load()); err != nil {
					if errors.Is(err, errStaleLease) {
						cancel(errStaleLease)
						return
					}
					w.logf("farm worker %s: heartbeat: %v", w.cfg.Name, err)
				}
			}
		}
	}()

	cfg := cell.Config
	cfg.SMWorkers = w.cfg.SMWorkers
	if cfg.CheckpointEvery == 0 {
		cfg.CheckpointEvery = w.cfg.CheckpointEvery
	}
	// Workers never write local observability files; series and stall
	// attribution still travel inside the Result.
	cfg.MetricsFile = ""
	cfg.TraceFile = ""

	uploads := 0
	save := func(cycle uint64, blob []byte) error {
		lastCycle.Store(cycle)
		if w.cfg.MinDiskFree > 0 {
			// Disk preflight: a nearly-full local filesystem means crash
			// reports and scratch may be about to fail; stop adding
			// upload traffic and let the run continue checkpoint-free.
			if free := diskFree("."); free >= 0 && free < w.cfg.MinDiskFree {
				w.logf("farm worker %s: skipping checkpoint upload for %s (local disk %d bytes free, floor %d)",
					w.cfg.Name, cell.Label(), free, w.cfg.MinDiskFree)
				return nil
			}
		}
		if err := w.uploadCheckpoint(lr.Lease, blob); err != nil {
			if errors.Is(err, errStaleLease) {
				cancel(errStaleLease)
				return err
			}
			// Best effort: a transient upload failure costs resume
			// granularity, not the run.
			w.logf("farm worker %s: checkpoint upload: %v", w.cfg.Name, err)
			return nil
		}
		uploads++
		if h := w.hooks.afterUpload; h != nil && h(cell, cycle, uploads) == hookDie {
			w.killed = true
			return errKilled
		}
		return nil
	}

	res, resumedAt, err := caba.RunResumable(runCtx, cfg, cell.Design, cell.App, cell.Seed, resume, save)
	close(hbStop)
	<-hbDone

	var re *ResourceError
	switch {
	case err == nil:
		w.report(&ReportRequest{Lease: lr.Lease, Result: res, ResumeCycle: resumedAt})
	case errors.Is(err, errKilled):
		// Chaos kill: vanish. No report, no release — the lease expires.
	case errors.As(context.Cause(runCtx), &re):
		// The resource watchdog aborted the cell: the worker survived
		// its budget, the cell did not. Reported as a typed
		// resource-exhausted failure so the coordinator can retry it
		// elsewhere and feed the poison breaker.
		w.logf("farm worker %s: %s aborted: %v", w.cfg.Name, cell.Label(), re)
		w.report(&ReportRequest{Lease: lr.Lease, Error: re.Error(), Resource: re.Kind})
	case errors.Is(context.Cause(runCtx), errStaleLease):
		// The cell was re-queued while we ran; nothing we say counts.
	case ctx.Err() != nil:
		// Graceful drain: the worker is shutting down, the cell is
		// healthy. Release it for immediate re-queue; the last uploaded
		// checkpoint carries the progress.
		w.report(&ReportRequest{Lease: lr.Lease, Released: true})
	default:
		rep := &ReportRequest{Lease: lr.Lease, Error: err.Error()}
		var we *caba.WedgeError
		if errors.As(err, &we) {
			// Deterministic: same cell, same wedge, every time.
			rep.Wedge = true
		}
		w.report(rep)
	}
}

// --- HTTP client plumbing ---

func (w *Worker) lease(ctx context.Context) (*LeaseResponse, error) {
	var resp LeaseResponse
	if err := w.postJSON(ctx, "/lease", &LeaseRequest{Worker: w.cfg.Name}, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

func (w *Worker) heartbeat(lease string, cycle uint64) error {
	return w.postJSON(context.Background(), "/heartbeat", &HeartbeatRequest{Lease: lease, Cycle: cycle}, nil)
}

// report delivers a cell outcome, retrying transient transport failures:
// losing a computed result to one connection reset would waste a whole
// simulation. A 409 (stale lease) is final — the cell moved on.
func (w *Worker) report(rep *ReportRequest) {
	var err error
	for attempt := 0; attempt < 3; attempt++ {
		if err = w.postJSON(context.Background(), "/report", rep, nil); err == nil {
			return
		}
		if errors.Is(err, errStaleLease) {
			w.logf("farm worker %s: report discarded (stale lease)", w.cfg.Name)
			return
		}
		time.Sleep(50 * time.Millisecond << attempt)
	}
	w.logf("farm worker %s: report failed: %v (lease will expire and re-queue)", w.cfg.Name, err)
}

func (w *Worker) uploadCheckpoint(lease string, blob []byte) error {
	req, err := http.NewRequest(http.MethodPost, w.base+"/checkpoint?lease="+lease, bytes.NewReader(blob))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := w.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return statusErr(resp)
}

func (w *Worker) fetchCheckpoint(ctx context.Context, lease string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.base+"/checkpoint?lease="+lease, nil)
	if err != nil {
		return nil, err
	}
	resp, err := w.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if err := statusErr(resp); err != nil {
		return nil, err
	}
	return io.ReadAll(io.LimitReader(resp.Body, maxBlobBytes))
}

func (w *Worker) postJSON(ctx context.Context, path string, body, out any) error {
	raw, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.base+path, bytes.NewReader(raw))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if err := statusErr(resp); err != nil {
		return err
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// statusErr converts a non-2xx response into an error, mapping 409 to
// errStaleLease.
func statusErr(resp *http.Response) error {
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		return nil
	}
	msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	if resp.StatusCode == http.StatusConflict {
		return fmt.Errorf("%w: %s", errStaleLease, strings.TrimSpace(string(msg)))
	}
	return fmt.Errorf("farm: %s: %s", resp.Status, strings.TrimSpace(string(msg)))
}
