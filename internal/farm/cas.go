package farm

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	caba "github.com/caba-sim/caba"
	"github.com/caba-sim/caba/internal/snapshot"
)

// Store is the coordinator's durable, content-addressed state: completed
// results keyed by cell content hash, terminal failure and poison
// records, plus the latest mid-run checkpoint blob per cell. Every result entry is sealed in the snapshot container —
// magic, version, the cell key as the binding hash, and a CRC over the
// JSON payload — so a read always verifies integrity and address binding
// before trusting the bytes. An entry that fails verification (torn
// write, bit rot, a file renamed to the wrong address) is quarantined:
// moved aside with a ".quarantine" suffix and treated as absent, so the
// cell re-runs instead of serving a corrupt result.
//
// Checkpoint blobs are stored as uploaded (they are already sealed,
// CRC-checked containers); PutBlob verifies the container before
// accepting, GetBlob re-verifies before serving and quarantines on
// failure.
type Store struct {
	dir string
	mu  sync.Mutex
	// minFree is the disk-headroom floor for checkpoint blob uploads
	// (0 = no preflight); set by the coordinator from its MinDiskFree.
	minFree int64
	// slowWrite, when non-nil, runs before every durable write (the
	// soak harness injects disk latency here). Nil in production.
	slowWrite func()
	// quarantined counts entries set aside since open (observability).
	quarantined atomic.Uint64
}

// resSchema is the minimal shape check applied to a decoded result: a
// completed simulation always has an application label and ran at least
// one cycle. It guards against a valid JSON payload of the wrong type
// landing at a result address.
func resSchema(res *caba.Result) error {
	if res == nil || res.App == "" || res.Design == "" || res.Cycles == 0 {
		return fmt.Errorf("farm: result fails schema check (app=%q design=%q cycles=%d)",
			resApp(res), resDesign(res), resCycles(res))
	}
	return nil
}

func resApp(r *caba.Result) string {
	if r == nil {
		return ""
	}
	return r.App
}

func resDesign(r *caba.Result) string {
	if r == nil {
		return ""
	}
	return r.Design
}

func resCycles(r *caba.Result) uint64 {
	if r == nil {
		return 0
	}
	return r.Cycles
}

// OpenStore opens (creating if needed) a store rooted at dir.
func OpenStore(dir string) (*Store, error) {
	for _, sub := range []string{resultsDir, blobsDir} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("farm: store: %w", err)
		}
	}
	return &Store{dir: dir}, nil
}

const (
	resultsDir = "results"
	blobsDir   = "blobs"
)

// KeyString renders a cell key in its canonical %016x wire form.
func KeyString(key uint64) string { return fmt.Sprintf("%016x", key) }

// ParseKey parses the canonical %016x wire form back into a key.
func ParseKey(s string) (uint64, error) {
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("farm: malformed cell key %q", s)
	}
	return v, nil
}

func (s *Store) resultPath(key uint64) string {
	return filepath.Join(s.dir, resultsDir, KeyString(key)+".res")
}

func (s *Store) blobPath(key uint64) string {
	return filepath.Join(s.dir, blobsDir, KeyString(key)+".ckpt")
}

// Quarantined returns the number of entries set aside since open.
func (s *Store) Quarantined() uint64 { return s.quarantined.Load() }

// quarantine moves a corrupt entry aside (never deletes: the bytes are
// evidence) and counts it. A collision on the quarantine name appends a
// numeric suffix so repeated corruption never silently overwrites.
func (s *Store) quarantine(path string) {
	q := path + ".quarantine"
	for i := 1; ; i++ {
		if _, err := os.Stat(q); errors.Is(err, os.ErrNotExist) {
			break
		}
		q = path + ".quarantine." + strconv.Itoa(i)
	}
	if err := os.Rename(path, q); err == nil {
		s.quarantined.Add(1)
	}
}

// PutResult seals and durably stores a verified result at its cell key.
// The write is atomic (temp file + rename), so a crash mid-write can
// never leave a torn entry at the address.
func (s *Store) PutResult(key uint64, res *caba.Result) error {
	if err := resSchema(res); err != nil {
		return err
	}
	payload, err := json.Marshal(res)
	if err != nil {
		return fmt.Errorf("farm: store result: %w", err)
	}
	if s.slowWrite != nil {
		s.slowWrite()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return writeFileAtomic(s.resultPath(key), snapshot.Seal(key, payload))
}

// GetResult returns the stored result for key, or (nil, nil) when absent.
// The entry is verified on every read — container CRC, address binding,
// JSON decode, schema — and quarantined on any failure (the caller then
// sees it as absent and re-runs the cell).
func (s *Store) GetResult(key uint64) (*caba.Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	path := s.resultPath(key)
	raw, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("farm: read result: %w", err)
	}
	payload, err := snapshot.Open(raw, key)
	if err != nil {
		s.quarantine(path)
		return nil, nil
	}
	var res caba.Result
	if err := json.Unmarshal(payload, &res); err != nil {
		s.quarantine(path)
		return nil, nil
	}
	if err := resSchema(&res); err != nil {
		s.quarantine(path)
		return nil, nil
	}
	return &res, nil
}

// ResultKeys lists every key with a verified-looking entry present (by
// filename; entries are still re-verified on read). Used to rebuild the
// completed set when a coordinator restarts over an existing store.
func (s *Store) ResultKeys() ([]uint64, error) {
	entries, err := os.ReadDir(filepath.Join(s.dir, resultsDir))
	if err != nil {
		return nil, fmt.Errorf("farm: list results: %w", err)
	}
	var keys []uint64
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".res") {
			continue
		}
		key, err := ParseKey(strings.TrimSuffix(name, ".res"))
		if err != nil {
			continue
		}
		keys = append(keys, key)
	}
	return keys, nil
}

// failRecord is the durable form of a terminal failure.
type failRecord struct {
	Error string `json:"error"`
	Wedge bool   `json:"wedge"`
	// Attempts is how many executions were charged before failing.
	Attempts int `json:"attempts"`
}

func (s *Store) failPath(key uint64) string {
	return filepath.Join(s.dir, resultsDir, KeyString(key)+".fail")
}

// PutFailure durably records a terminal failure at the cell's address, so
// a coordinator restart (or a later sweep over the same store) serves the
// known outcome instead of re-simulating. Deterministic wedges in
// particular replay identically on every attempt — re-running one is
// pure waste.
func (s *Store) PutFailure(key uint64, errMsg string, wedge bool, attempts int) error {
	payload, err := json.Marshal(failRecord{Error: errMsg, Wedge: wedge, Attempts: attempts})
	if err != nil {
		return fmt.Errorf("farm: store failure: %w", err)
	}
	if s.slowWrite != nil {
		s.slowWrite()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return writeFileAtomic(s.failPath(key), snapshot.Seal(key, payload))
}

// GetFailure returns the recorded terminal failure for key, or ok=false
// when absent. Corrupt entries are quarantined and read as absent (the
// cell then re-runs).
func (s *Store) GetFailure(key uint64) (errMsg string, wedge bool, attempts int, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	path := s.failPath(key)
	raw, err := os.ReadFile(path)
	if err != nil {
		return "", false, 0, false
	}
	payload, err := snapshot.Open(raw, key)
	if err != nil {
		s.quarantine(path)
		return "", false, 0, false
	}
	var rec failRecord
	if err := json.Unmarshal(payload, &rec); err != nil || rec.Error == "" {
		s.quarantine(path)
		return "", false, 0, false
	}
	return rec.Error, rec.Wedge, rec.Attempts, true
}

// poisonRecord is the durable, sealed form of a poison-cell quarantine:
// the circuit breaker's diagnosis plus the distinct workers the cell is
// presumed to have killed.
type poisonRecord struct {
	Error   string   `json:"error"`
	Victims []string `json:"victims"`
	// Attempts is how many executions were charged before quarantine.
	Attempts int `json:"attempts"`
}

func (s *Store) poisonPath(key uint64) string {
	return filepath.Join(s.dir, resultsDir, KeyString(key)+".poison")
}

// PutPoison durably seals a poison-cell quarantine at the cell's
// address. Like a wedge record it is terminal — a coordinator restart or
// a later sweep over the same store serves the quarantine instead of
// leasing the cell out to kill more workers.
func (s *Store) PutPoison(key uint64, errMsg string, victims []string, attempts int) error {
	payload, err := json.Marshal(poisonRecord{Error: errMsg, Victims: victims, Attempts: attempts})
	if err != nil {
		return fmt.Errorf("farm: store poison record: %w", err)
	}
	if s.slowWrite != nil {
		s.slowWrite()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return writeFileAtomic(s.poisonPath(key), snapshot.Seal(key, payload))
}

// GetPoison returns the recorded quarantine for key, or ok=false when
// absent. Corrupt records are quarantined-aside and read as absent (the
// breaker then has to trip again, which is safe — just slower).
func (s *Store) GetPoison(key uint64) (errMsg string, victims []string, attempts int, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	path := s.poisonPath(key)
	raw, err := os.ReadFile(path)
	if err != nil {
		return "", nil, 0, false
	}
	payload, err := snapshot.Open(raw, key)
	if err != nil {
		s.quarantine(path)
		return "", nil, 0, false
	}
	var rec poisonRecord
	if err := json.Unmarshal(payload, &rec); err != nil || rec.Error == "" {
		s.quarantine(path)
		return "", nil, 0, false
	}
	return rec.Error, rec.Victims, rec.Attempts, true
}

// errInsufficientStorage marks a write refused by the disk-space
// preflight; the HTTP layer maps it to 507 Insufficient Storage.
var errInsufficientStorage = errors.New("farm: store disk headroom below floor")

// PutBlob stores a cell's latest mid-run checkpoint blob, replacing any
// previous one. The blob must be a valid sealed snapshot container
// (magic, version, CRC) — corrupt uploads are rejected here so a torn
// network transfer can never poison the resume path. When the store has
// a disk-headroom floor, a preflight rejects the upload (keeping the
// previous good blob) rather than filling the disk: losing checkpoint
// granularity is recoverable, a full store volume is not.
func (s *Store) PutBlob(key uint64, blob []byte) error {
	if _, _, err := snapshot.Inspect(blob); err != nil {
		return fmt.Errorf("farm: checkpoint blob rejected: %w", err)
	}
	if s.minFree > 0 {
		if free := diskFree(s.dir); free >= 0 && free < s.minFree+2*int64(len(blob)) {
			return fmt.Errorf("%w: %d bytes free, need %d headroom",
				errInsufficientStorage, free, s.minFree+2*int64(len(blob)))
		}
	}
	if s.slowWrite != nil {
		s.slowWrite()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return writeFileAtomic(s.blobPath(key), blob)
}

// GetBlob returns the cell's stored checkpoint blob, or (nil, nil) when
// absent. The container is re-verified on read and quarantined on
// corruption (the cell then resumes from cycle zero instead of failing).
func (s *Store) GetBlob(key uint64) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	path := s.blobPath(key)
	raw, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("farm: read blob: %w", err)
	}
	if _, _, err := snapshot.Inspect(raw); err != nil {
		s.quarantine(path)
		return nil, nil
	}
	return raw, nil
}

// HasBlob reports whether a checkpoint blob is stored for key.
func (s *Store) HasBlob(key uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, err := os.Stat(s.blobPath(key))
	return err == nil
}

// DeleteBlob drops the cell's checkpoint blob (after the cell completes;
// best effort).
func (s *Store) DeleteBlob(key uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	os.Remove(s.blobPath(key))
}

// writeFileAtomic persists data so a crash mid-write can never leave a
// torn file at path: write a sibling temp file, fsync, rename.
func writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err = f.Write(data); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}
