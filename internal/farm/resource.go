package farm

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"time"
)

// ResourceError marks a cell aborted by the worker's resource watchdog:
// the cell blew its memory or CPU-time budget before finishing. It is
// reported to the coordinator as a resource-exhausted failure —
// transient-retryable, preferentially on a different worker, and feeding
// the poison-cell circuit breaker.
type ResourceError struct {
	// Kind is the exhausted budget: "memory" or "cpu".
	Kind string
	// Used and Limit are the measured consumption and the budget, in
	// bytes (memory) or nanoseconds (cpu).
	Used, Limit int64
}

// Error renders the budget violation.
func (e *ResourceError) Error() string {
	switch e.Kind {
	case "memory":
		return fmt.Sprintf("farm: cell exceeded memory budget (%d of %d bytes live)", e.Used, e.Limit)
	case "cpu":
		return fmt.Sprintf("farm: cell exceeded CPU-time budget (%s of %s)",
			time.Duration(e.Used), time.Duration(e.Limit))
	}
	return fmt.Sprintf("farm: cell exceeded %s budget (%d of %d)", e.Kind, e.Used, e.Limit)
}

// gcLimitFloor is the lowest value handed to debug.SetMemoryLimit: a GC
// target far below a working heap turns the runtime into a continuous
// collector long before the watchdog fires. The soft watchdog still
// compares against the exact configured budget.
const gcLimitFloor = 32 << 20

// startResourceWatch polices a cell's memory and CPU-time budgets while
// it runs. Memory is enforced two ways: debug.SetMemoryLimit steers the
// GC toward the budget (clamped to gcLimitFloor so a tiny budget cannot
// thrash collection), and a soft watchdog polls live heap so a cell the
// GC cannot save is aborted with a typed *ResourceError through cancel
// instead of taking the whole worker process down. CPU time is measured
// as process rusage (user+system, all cores) against budget — distinct
// from the wall-clock cell timeout: an I/O-stalled cell burns wall time
// but no CPU budget, a compute-bound runaway burns budget on every core
// it occupies. The returned stop must be called when the cell ends; it
// restores the previous GC limit.
func startResourceWatch(cancel context.CancelCauseFunc, memLimit int64, cpuBudget time.Duration) (stop func()) {
	if memLimit <= 0 && cpuBudget <= 0 {
		return func() {}
	}
	var prevGCLimit int64
	if memLimit > 0 {
		gcLimit := memLimit
		if gcLimit < gcLimitFloor {
			gcLimit = gcLimitFloor
		}
		prevGCLimit = debug.SetMemoryLimit(gcLimit)
	}
	cpuStart := cpuTime()
	stopCh := make(chan struct{})
	doneCh := make(chan struct{})
	go func() {
		defer close(doneCh)
		t := time.NewTicker(20 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-stopCh:
				return
			case <-t.C:
				if memLimit > 0 {
					var ms runtime.MemStats
					runtime.ReadMemStats(&ms)
					if int64(ms.HeapAlloc) > memLimit {
						cancel(&ResourceError{Kind: "memory", Used: int64(ms.HeapAlloc), Limit: memLimit})
						return
					}
				}
				if cpuBudget > 0 && cpuStart >= 0 {
					if used := cpuTime() - cpuStart; used > int64(cpuBudget) {
						cancel(&ResourceError{Kind: "cpu", Used: used, Limit: int64(cpuBudget)})
						return
					}
				}
			}
		}
	}()
	return func() {
		close(stopCh)
		<-doneCh
		if memLimit > 0 {
			debug.SetMemoryLimit(prevGCLimit)
		}
	}
}
