//go:build race

package farm

// soakTimeScale stretches the chaos soak's real-time schedule under
// the race detector, which slows simulation 5-10x: with the production
// TTL, heartbeats go tardy and healthy cells accumulate spurious
// lease-expiry victims past the poison threshold.
const soakTimeScale = 4
