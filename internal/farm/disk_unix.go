//go:build unix

package farm

import "syscall"

// diskFree returns the free bytes available to unprivileged writers on
// the filesystem holding path, or -1 when the platform cannot report it.
// Used by the store's checkpoint-upload preflight and the worker's
// pre-upload check: refusing a write while headroom remains beats
// filling the volume and corrupting everything on it.
func diskFree(path string) int64 {
	var st syscall.Statfs_t
	if err := syscall.Statfs(path, &st); err != nil {
		return -1
	}
	return int64(st.Bavail) * int64(st.Bsize)
}

// cpuTime returns the process's consumed CPU time (user + system) in
// nanoseconds, or -1 when the platform cannot report it. The worker's
// CPU-time deadline is measured against this, not the wall clock: a cell
// stalled on I/O burns wall time but no budget, while a compute-bound
// runaway burns budget across every core it occupies.
func cpuTime() int64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return -1
	}
	return tvNanos(ru.Utime) + tvNanos(ru.Stime)
}

func tvNanos(tv syscall.Timeval) int64 {
	return int64(tv.Sec)*1e9 + int64(tv.Usec)*1e3
}
