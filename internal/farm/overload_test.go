package farm

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	caba "github.com/caba-sim/caba"
)

// fakeClock is a hand-advanced clock for lease-boundary tests. The
// coordinator's janitor still ticks on real time but reads this clock,
// so nothing moves until a test advances it.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1_000_000, 0)} }

func (f *fakeClock) now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

func (f *fakeClock) advance(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.t = f.t.Add(d)
}

// harvestNow forces a lease-expiry sweep without taking any work: a
// heartbeat for an unknown lease harvests first, then 409s harmlessly.
func harvestNow(t *testing.T, base string) {
	t.Helper()
	call(t, base+"/heartbeat", &HeartbeatRequest{Lease: "bogus-harvest-trigger"}, nil)
}

// getHealth fetches /healthz.
func getHealth(t *testing.T, base string) (*HealthResponse, int) {
	t.Helper()
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	defer resp.Body.Close()
	var h HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatalf("decode healthz: %v", err)
	}
	return &h, resp.StatusCode
}

// callCode POSTs JSON and returns the status code, the response body
// text, and the Retry-After header.
func callCode(t *testing.T, url string, in any) (int, string, string) {
	t.Helper()
	raw, err := json.Marshal(in)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(url, "application/json", strings.NewReader(string(raw)))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	return resp.StatusCode, string(body), resp.Header.Get("Retry-After")
}

// TestHeartbeatTTLBoundary pins the lease deadline semantics exactly: a
// heartbeat arriving at precisely now == deadline still extends the
// lease (harvest evicts strictly after the deadline), and a heartbeat
// arriving after a harvest gets 409.
func TestHeartbeatTTLBoundary(t *testing.T) {
	clk := newFakeClock()
	const ttl = 1 * time.Second
	_, srv := newTestFarm(t, t.TempDir(), CoordinatorConfig{LeaseTTL: ttl, Now: clk.now})
	call(t, srv.URL+"/sweep", &SweepRequest{Cells: []Cell{testCell("SCP", "Base", 0.02, 11)}}, nil)
	lr := leaseOne(t, srv.URL, "w1")

	// Exactly at the deadline: still alive.
	clk.advance(ttl)
	if code := call(t, srv.URL+"/heartbeat", &HeartbeatRequest{Lease: lr.Lease}, nil); code != http.StatusNoContent {
		t.Fatalf("heartbeat at exactly TTL: HTTP %d, want 204 (deadline is inclusive)", code)
	}

	// One nanosecond past the (extended) deadline: harvested first, 409.
	clk.advance(ttl + time.Nanosecond)
	if code := call(t, srv.URL+"/heartbeat", &HeartbeatRequest{Lease: lr.Lease}, nil); code != http.StatusConflict {
		t.Fatalf("heartbeat past TTL: HTTP %d, want 409 (lease harvested)", code)
	}

	// The harvest charged the expiry and re-queued the cell.
	st := getStatus(t, srv.URL, "?results=0")
	if st.Pending != 1 || st.Leased != 0 {
		t.Fatalf("status after harvest = %+v, want the cell re-queued", st)
	}
}

// TestDoubleRelease: the second release of the same lease token must be
// rejected with 409 — the first settle consumed the worker's authority.
func TestDoubleRelease(t *testing.T) {
	_, srv := newTestFarm(t, t.TempDir(), CoordinatorConfig{})
	call(t, srv.URL+"/sweep", &SweepRequest{Cells: []Cell{testCell("SCP", "Base", 0.02, 11)}}, nil)
	lr := leaseOne(t, srv.URL, "w1")
	if code := call(t, srv.URL+"/report", &ReportRequest{Lease: lr.Lease, Released: true}, nil); code != http.StatusNoContent {
		t.Fatalf("first release: HTTP %d, want 204", code)
	}
	if code := call(t, srv.URL+"/report", &ReportRequest{Lease: lr.Lease, Released: true}, nil); code != http.StatusConflict {
		t.Fatalf("double release: HTTP %d, want 409", code)
	}
	st := getStatus(t, srv.URL, "?results=0")
	if st.Pending != 1 {
		t.Fatalf("status after double release = %+v, want exactly one pending cell (no double requeue)", st)
	}
}

// TestAdmission429 exercises the bounded queue: a submission that would
// push live cells past MaxQueue stops with 429 + Retry-After, everything
// accepted before the bound stays accepted, and the identical
// resubmission succeeds once capacity frees up.
func TestAdmission429(t *testing.T) {
	_, srv := newTestFarm(t, t.TempDir(), CoordinatorConfig{MaxQueue: 2})
	cells := []Cell{
		testCell("SCP", "Base", 0.02, 11),
		testCell("SCP", "Base", 0.02, 12),
		testCell("SCP", "Base", 0.02, 13),
	}
	code, body, retryAfter := callCode(t, srv.URL+"/sweep", &SweepRequest{Cells: cells, Client: "c1"})
	if code != http.StatusTooManyRequests {
		t.Fatalf("oversized submission: HTTP %d (%s), want 429", code, body)
	}
	if retryAfter == "" {
		t.Error("429 lacks a Retry-After header")
	}
	st := getStatus(t, srv.URL, "?results=0")
	if st.Pending != 2 {
		t.Fatalf("pending = %d, want the 2 cells admitted before the bound", st.Pending)
	}

	// Complete one admitted cell to free capacity.
	lr := leaseOne(t, srv.URL, "w1")
	call(t, srv.URL+"/report", &ReportRequest{Lease: lr.Lease,
		Result: &caba.Result{App: "SCP", Design: "Base", Cycles: 100, IPC: 1}}, nil)

	// The verbatim retry is safe: the two earlier cells dedupe, the
	// third is admitted now.
	var sw SweepResponse
	if code := call(t, srv.URL+"/sweep", &SweepRequest{Cells: cells, Client: "c1"}, &sw); code != 200 {
		t.Fatalf("retry after capacity freed: HTTP %d", code)
	}
	if sw.Accepted != 1 || sw.Known != 2 {
		t.Fatalf("retry = %+v, want 1 newly accepted + 2 known", sw)
	}
	h, _ := getHealth(t, srv.URL)
	if h.Rejected429 == 0 {
		t.Errorf("healthz rejected_429 = 0, want the rejection counted")
	}
}

// TestClientQuota: one client at its quota is rejected while another
// client still gets in — a runaway submitter cannot starve the fleet.
func TestClientQuota(t *testing.T) {
	_, srv := newTestFarm(t, t.TempDir(), CoordinatorConfig{MaxQueue: 10, ClientQuota: 1})
	a1 := testCell("SCP", "Base", 0.02, 11)
	a2 := testCell("SCP", "Base", 0.02, 12)
	var sw SweepResponse
	if code := call(t, srv.URL+"/sweep", &SweepRequest{Cells: []Cell{a1}, Client: "greedy"}, &sw); code != 200 || sw.Accepted != 1 {
		t.Fatalf("first cell: HTTP %d %+v, want accepted", code, sw)
	}
	code, body, _ := callCode(t, srv.URL+"/sweep", &SweepRequest{Cells: []Cell{a2}, Client: "greedy"})
	if code != http.StatusTooManyRequests || !strings.Contains(body, "quota") {
		t.Fatalf("over-quota submission: HTTP %d (%s), want 429 naming the quota", code, body)
	}
	if code := call(t, srv.URL+"/sweep", &SweepRequest{Cells: []Cell{a2}, Client: "modest"}, &sw); code != 200 || sw.Accepted != 1 {
		t.Fatalf("other client: HTTP %d %+v, want accepted", code, sw)
	}
}

// TestPoisonBreaker: a cell that kills PoisonThreshold distinct workers
// is quarantined — terminal, durable, never leased again, distinct from
// a wedge — and the quarantine survives a coordinator restart.
func TestPoisonBreaker(t *testing.T) {
	clk := newFakeClock()
	const ttl = 200 * time.Millisecond
	dir := t.TempDir()
	cfg := CoordinatorConfig{
		LeaseTTL: ttl, Now: clk.now, PoisonThreshold: 2,
		MaxAttempts: 10, RetryBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond,
	}
	c, srv := newTestFarm(t, dir, cfg)
	cell := testCell("SCP", "Base", 0.02, 11)
	key, _ := cell.Key()
	call(t, srv.URL+"/sweep", &SweepRequest{Cells: []Cell{cell}}, nil)

	// Victim 1: w1 leases and dies; its lease expires.
	if lr := leaseOne(t, srv.URL, "w1"); lr.Lease == "" {
		t.Fatal("no lease for w1")
	}
	clk.advance(ttl + 10*time.Millisecond)
	harvestNow(t, srv.URL)
	clk.advance(50 * time.Millisecond) // clear the retry backoff window

	// Victim 2: w2 leases the re-queued cell and dies too.
	lr2 := leaseOne(t, srv.URL, "w2")
	if lr2.Attempt != 2 {
		t.Fatalf("w2 attempt = %d, want 2 (w1's expiry charged)", lr2.Attempt)
	}
	clk.advance(ttl + 10*time.Millisecond)
	harvestNow(t, srv.URL) // second distinct victim: the breaker trips

	var lr3 LeaseResponse
	call(t, srv.URL+"/lease", &LeaseRequest{Worker: "w3"}, &lr3)
	if lr3.Lease != "" {
		t.Fatalf("poisoned cell was leased to w3: %+v", lr3)
	}
	st := getStatus(t, srv.URL, "?results=0")
	if st.Failed != 1 || st.Poisoned != 1 {
		t.Fatalf("status = %+v, want 1 failed, 1 poisoned", st)
	}
	if len(st.Failures) != 1 || !st.Failures[0].Poison || st.Failures[0].Wedge {
		t.Fatalf("failure = %+v, want poison (not wedge)", st.Failures)
	}
	if !strings.Contains(st.Failures[0].Error, "w1") || !strings.Contains(st.Failures[0].Error, "w2") {
		t.Errorf("poison diagnosis %q does not name its victims", st.Failures[0].Error)
	}
	if _, victims, _, ok := c.Store().GetPoison(key); !ok || len(victims) != 2 {
		t.Fatalf("store poison record: ok=%v victims=%v, want sealed record with 2 victims", ok, victims)
	}
	h, _ := getHealth(t, srv.URL)
	if h.Poisoned != 1 {
		t.Errorf("healthz poisoned = %d, want 1", h.Poisoned)
	}

	// Durable across restart: the fresh coordinator serves the
	// quarantine as a cache hit and never re-leases the cell.
	srv.Close()
	c.Close()
	_, srv2 := newTestFarm(t, dir, CoordinatorConfig{LeaseTTL: ttl, PoisonThreshold: 2})
	var sw SweepResponse
	call(t, srv2.URL+"/sweep", &SweepRequest{Cells: []Cell{cell}}, &sw)
	if sw.CacheHits != 1 || sw.Accepted != 0 {
		t.Fatalf("resubmission after restart = %+v, want 1 cache hit", sw)
	}
	st2 := getStatus(t, srv2.URL, "?results=0")
	if st2.Poisoned != 1 || len(st2.Failures) != 1 || !st2.Failures[0].Poison {
		t.Fatalf("restarted status = %+v, want the poison quarantine preserved", st2)
	}
	var lr4 LeaseResponse
	call(t, srv2.URL+"/lease", &LeaseRequest{Worker: "w9"}, &lr4)
	if lr4.Lease != "" {
		t.Fatal("restarted coordinator leased a poisoned cell")
	}
}

// TestVictimAvoidance: the dispatcher passes over cells that already
// count the requesting worker among their victims when other work is
// ready, but still grants such a cell when it is the only one — no
// livelock for small fleets.
func TestVictimAvoidance(t *testing.T) {
	clk := newFakeClock()
	const ttl = 200 * time.Millisecond
	_, srv := newTestFarm(t, t.TempDir(), CoordinatorConfig{
		LeaseTTL: ttl, Now: clk.now, PoisonThreshold: 99,
		MaxAttempts: 10, RetryBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond,
	})
	cellA := testCell("SCP", "Base", 0.02, 11)
	cellB := testCell("SCP", "Base", 0.02, 12)
	keyA, _ := cellA.Key()
	keyB, _ := cellB.Key()
	call(t, srv.URL+"/sweep", &SweepRequest{Cells: []Cell{cellA, cellB}}, nil)

	// w1 draws A (oldest) and dies; A records w1 as a victim.
	lr := leaseOne(t, srv.URL, "w1")
	if lr.Key != KeyString(keyA) {
		t.Fatalf("first grant = %s, want oldest cell A %s", lr.Key, KeyString(keyA))
	}
	clk.advance(ttl + 10*time.Millisecond)
	harvestNow(t, srv.URL)
	clk.advance(50 * time.Millisecond) // A is ready again (backoff passed)

	// w1 returns: it should be steered to B even though A is older.
	lr2 := leaseOne(t, srv.URL, "w1")
	if lr2.Key != KeyString(keyB) {
		t.Fatalf("victim worker was handed its old cell back: got %s, want B %s", lr2.Key, KeyString(keyB))
	}

	// With B leased, A is the only ready cell: the fallback grants it to
	// w1 anyway rather than starving the queue.
	lr3 := leaseOne(t, srv.URL, "w1")
	if lr3.Key != KeyString(keyA) {
		t.Fatalf("fallback grant = %s, want A %s (only ready cell)", lr3.Key, KeyString(keyA))
	}
}

// TestResourceExhaustedReport: a resource-exhausted report charges a
// transient attempt, records the worker as a victim (feeding the poison
// breaker), and the cell still completes on a later attempt.
func TestResourceExhaustedReport(t *testing.T) {
	_, srv := newTestFarm(t, t.TempDir(), CoordinatorConfig{
		PoisonThreshold: 3, MaxAttempts: 10,
		RetryBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond,
	})
	cell := testCell("SCP", "Base", 0.02, 11)
	key, _ := cell.Key()
	call(t, srv.URL+"/sweep", &SweepRequest{Cells: []Cell{cell}}, nil)

	lr := leaseOne(t, srv.URL, "w1")
	if code := call(t, srv.URL+"/report", &ReportRequest{Lease: lr.Lease, Error: "heap blown", Resource: "memory"}, nil); code != http.StatusNoContent {
		t.Fatalf("resource report: HTTP %d", code)
	}
	st := getStatus(t, srv.URL, "?results=0")
	if st.Pending != 1 || st.Failed != 0 {
		t.Fatalf("status = %+v, want the cell re-queued (transient), not failed", st)
	}
	hist := st.Attempts[KeyString(key)]
	if len(hist) != 1 || hist[0].Outcome != "resource" || !strings.Contains(hist[0].Error, "memory") {
		t.Fatalf("history = %+v, want one resource-exhausted attempt", hist)
	}

	// Same worker gets it back via the fallback (only cell) and lands it.
	lr2 := leaseOne(t, srv.URL, "w1")
	if lr2.Attempt != 2 {
		t.Fatalf("attempt = %d, want 2 (the resource abort was charged)", lr2.Attempt)
	}
	call(t, srv.URL+"/report", &ReportRequest{Lease: lr2.Lease,
		Result: &caba.Result{App: "SCP", Design: "Base", Cycles: 100, IPC: 1}}, nil)
	st = getStatus(t, srv.URL, "?results=0")
	if st.Done != 1 || st.Poisoned != 0 {
		t.Fatalf("final status = %+v, want done without poison (below threshold)", st)
	}
}

// TestJournalCompaction: dead journal lines (victim events) trigger
// compaction down to one line per cell, the counters report it, and a
// restart over the compacted journal reproduces the exact queue state —
// the folded victim set on the live cell and the completed cell's
// outcome included.
func TestJournalCompaction(t *testing.T) {
	dir := t.TempDir()
	cfg := CoordinatorConfig{
		LeaseTTL: 40 * time.Millisecond, CompactMinLines: 3, PoisonThreshold: 99,
		MaxAttempts: 100, RetryBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond,
	}
	c, srv := newTestFarm(t, dir, cfg)
	cellA := testCell("SCP", "Base", 0.02, 11)
	cellB := testCell("SCP", "Base", 0.02, 12)
	keyA, _ := cellA.Key()

	// Complete B first so the restart check covers a done cell.
	call(t, srv.URL+"/sweep", &SweepRequest{Cells: []Cell{cellB}}, nil)
	lrB := leaseOne(t, srv.URL, "finisher")
	call(t, srv.URL+"/report", &ReportRequest{Lease: lrB.Lease,
		Result: &caba.Result{App: "SCP", Design: "Base", Cycles: 100, IPC: 1}}, nil)

	// Three distinct workers die on cell A: 3 victim lines are dead
	// weight against 2 live acceptance lines.
	call(t, srv.URL+"/sweep", &SweepRequest{Cells: []Cell{cellA}}, nil)
	for _, worker := range []string{"w1", "w2", "w3"} {
		lr := leaseOne(t, srv.URL, worker)
		if lr.Key != KeyString(keyA) {
			t.Fatalf("worker %s leased %s, want cell A %s", worker, lr.Key, KeyString(keyA))
		}
		time.Sleep(60 * time.Millisecond) // past the TTL
		harvestNow(t, srv.URL)
		time.Sleep(20 * time.Millisecond) // past the re-queue backoff
	}

	c.maybeCompact() // the janitor's own trigger, forced deterministically
	if got := c.compactions.Load(); got != 1 {
		c.mu.Lock()
		lines, known := c.journalLines, len(c.order)
		c.mu.Unlock()
		t.Fatalf("compactions = %d (journal %d lines, %d cells), want exactly 1", got, lines, known)
	}
	raw, err := os.ReadFile(filepath.Join(dir, journalName))
	if err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(string(raw), "\n"); n != 2 {
		t.Fatalf("compacted journal has %d lines, want 2 (one per cell)", n)
	}
	h, _ := getHealth(t, srv.URL)
	if h.Compactions != 1 {
		t.Errorf("healthz compactions = %d, want 1", h.Compactions)
	}

	// Restart: state reproduced from the compacted journal.
	srv.Close()
	c.Close()
	c2, srv2 := newTestFarm(t, dir, cfg)
	st := getStatus(t, srv2.URL, "?results=0")
	if st.Pending != 1 || st.Done != 1 {
		t.Fatalf("restarted status = %+v, want cell A pending + cell B done", st)
	}
	c2.mu.Lock()
	victims := append([]string(nil), c2.cells[keyA].victims...)
	c2.mu.Unlock()
	if len(victims) != 3 {
		t.Fatalf("cell A victims after restart = %v, want the 3 folded into the compacted line", victims)
	}
}

// TestTornCompactionRecovery: a crash mid-compaction leaves a stale temp
// file; the next open must discard it and replay the intact original
// journal.
func TestTornCompactionRecovery(t *testing.T) {
	dir := t.TempDir()
	cell := testCell("SCP", "Base", 0.02, 11)
	key, _ := cell.Key()
	line, _ := json.Marshal(journalLine{Key: KeyString(key), Cell: &cell})
	if err := os.WriteFile(filepath.Join(dir, journalName), append(line, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, compactTmpName), []byte(`{"key":"torn mid-comp`), 0o644); err != nil {
		t.Fatal(err)
	}
	_, srv := newTestFarm(t, dir, CoordinatorConfig{})
	st := getStatus(t, srv.URL, "?results=0")
	if st.Pending != 1 {
		t.Fatalf("status = %+v, want the original journal replayed", st)
	}
	if _, err := os.Stat(filepath.Join(dir, compactTmpName)); !errors.Is(err, os.ErrNotExist) {
		t.Error("stale compaction temp file survived open")
	}
}

// TestTornTailTruncatedOnOpen: a torn trailing line must be truncated at
// open, not merely skipped — otherwise lines appended after it are
// unreachable to every future replay.
func TestTornTailTruncatedOnOpen(t *testing.T) {
	dir := t.TempDir()
	cellA := testCell("SCP", "Base", 0.02, 11)
	cellB := testCell("SCP", "Base", 0.02, 12)
	keyA, _ := cellA.Key()
	line, _ := json.Marshal(journalLine{Key: KeyString(keyA), Cell: &cellA})
	raw := append(append([]byte{}, line...), '\n')
	raw = append(raw, []byte(`{"key":"dead`)...) // torn mid-append
	if err := os.WriteFile(filepath.Join(dir, journalName), raw, 0o644); err != nil {
		t.Fatal(err)
	}

	// First open tolerates the tear; cell B is appended after it.
	c, srv := newTestFarm(t, dir, CoordinatorConfig{})
	var sw SweepResponse
	call(t, srv.URL+"/sweep", &SweepRequest{Cells: []Cell{cellB}}, &sw)
	if sw.Accepted != 1 {
		t.Fatalf("sweep = %+v, want cell B accepted", sw)
	}
	srv.Close()
	c.Close()

	// Second open must see both cells: B's line landed on a clean tail.
	_, srv2 := newTestFarm(t, dir, CoordinatorConfig{})
	st := getStatus(t, srv2.URL, "?results=0")
	if st.Pending != 2 {
		t.Fatalf("status after re-open = %+v, want both cells replayed", st)
	}
}

// TestLongPollShedding: once MaxLongPolls /status waits are parked,
// further long-polls are served as immediate snapshots with X-Farm-Shed
// set, and the shed is counted.
func TestLongPollShedding(t *testing.T) {
	_, srv := newTestFarm(t, t.TempDir(), CoordinatorConfig{MaxLongPolls: 1})
	// One pending cell keeps the sweep un-drained so long-polls park.
	call(t, srv.URL+"/sweep", &SweepRequest{Cells: []Cell{testCell("SCP", "Base", 0.02, 11)}}, nil)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		req, _ := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL+"/status?results=0&wait_ms=30000", nil)
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
	}()
	time.Sleep(150 * time.Millisecond) // let the first poll park server-side

	start := time.Now()
	resp, err := http.Get(srv.URL + "/status?results=0&wait_ms=30000")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get("X-Farm-Shed") != "1" {
		t.Error("second long-poll was not shed (no X-Farm-Shed header)")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("shed long-poll took %s, want an immediate snapshot", elapsed)
	}
	h, _ := getHealth(t, srv.URL)
	if h.ShedLongPolls == 0 {
		t.Error("healthz shed_long_polls = 0, want the shed counted")
	}
}

// TestHealthzStates walks the health ladder: ok → degraded (≥80%
// occupancy) → saturated (full, HTTP 503) → draining (Quiesce, 503 with
// no leases and no admissions).
func TestHealthzStates(t *testing.T) {
	c, srv := newTestFarm(t, t.TempDir(), CoordinatorConfig{MaxQueue: 5})
	if h, code := getHealth(t, srv.URL); h.State != "ok" || code != 200 {
		t.Fatalf("fresh healthz = %s/%d, want ok/200", h.State, code)
	}
	var cells []Cell
	for seed := int64(11); seed < 16; seed++ {
		cells = append(cells, testCell("SCP", "Base", 0.02, seed))
	}
	call(t, srv.URL+"/sweep", &SweepRequest{Cells: cells[:4]}, nil)
	if h, code := getHealth(t, srv.URL); h.State != "degraded" || code != 200 {
		t.Fatalf("healthz at 4/5 = %s/%d, want degraded/200", h.State, code)
	}
	call(t, srv.URL+"/sweep", &SweepRequest{Cells: cells[4:]}, nil)
	h, code := getHealth(t, srv.URL)
	if h.State != "saturated" || code != http.StatusServiceUnavailable {
		t.Fatalf("healthz at 5/5 = %s/%d, want saturated/503", h.State, code)
	}
	if h.QueueLive != 5 || h.QueueCap != 5 {
		t.Fatalf("healthz occupancy = %d/%d, want 5/5", h.QueueLive, h.QueueCap)
	}

	c.Quiesce()
	if h, code := getHealth(t, srv.URL); h.State != "draining" || code != http.StatusServiceUnavailable {
		t.Fatalf("healthz after Quiesce = %s/%d, want draining/503", h.State, code)
	}
	code2, _, retryAfter := callCode(t, srv.URL+"/sweep", &SweepRequest{Cells: []Cell{testCell("SCP", "Base", 0.02, 99)}})
	if code2 != http.StatusServiceUnavailable || retryAfter == "" {
		t.Fatalf("sweep while draining: HTTP %d (Retry-After %q), want 503 with a hint", code2, retryAfter)
	}
	var lr LeaseResponse
	call(t, srv.URL+"/lease", &LeaseRequest{Worker: "w1"}, &lr)
	if lr.Lease != "" {
		t.Fatal("draining coordinator granted a lease")
	}
}

// TestResourceWatchCPU: the CPU-time watchdog aborts a compute-bound
// task with a typed *ResourceError carried through the context cause.
func TestResourceWatchCPU(t *testing.T) {
	if cpuTime() < 0 {
		t.Skip("platform cannot report process CPU time")
	}
	ctx, cancel := context.WithCancelCause(context.Background())
	defer cancel(nil)
	stop := startResourceWatch(cancel, 0, time.Nanosecond)
	defer stop()
	deadline := time.Now().Add(10 * time.Second)
	x := 0
	for ctx.Err() == nil && time.Now().Before(deadline) {
		x++ // burn CPU until the watchdog fires
	}
	_ = x
	var re *ResourceError
	if !errors.As(context.Cause(ctx), &re) || re.Kind != "cpu" {
		t.Fatalf("cause = %v, want a cpu *ResourceError", context.Cause(ctx))
	}
}

// TestWorkerMemBudget is the end-to-end memory-budget path: the
// watchdog aborts the first attempt as resource-exhausted (the worker
// process survives), the coordinator re-queues, and the second attempt
// completes with the bit-identical in-process result.
func TestWorkerMemBudget(t *testing.T) {
	cell := testCell("PVC", "CABA-BDI", 0.05, 11)
	key, _ := cell.Key()
	ref, err := caba.Run(cell.Config, cell.Design, cell.App, cell.Seed)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	refRaw, _ := json.Marshal(ref)

	_, srv := newTestFarm(t, t.TempDir(), CoordinatorConfig{
		LeaseTTL: 2 * time.Second, RetryBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond,
	})
	call(t, srv.URL+"/sweep", &SweepRequest{Cells: []Cell{cell}}, nil)

	w := NewWorker(srv.URL, WorkerConfig{
		Name: "budgeted", PollInterval: 10 * time.Millisecond,
		CellTimeout: time.Minute, ExitWhenDrained: true, Logf: t.Logf,
	})
	w.hooks.memLimitFor = func(_ Cell, attempt int) int64 {
		if attempt == 1 {
			return 1 // impossible budget: the watchdog must abort attempt 1
		}
		return 0
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := w.Run(ctx); err != nil {
		t.Fatalf("worker: %v", err)
	}

	st := getStatus(t, srv.URL, "")
	if st.Done != 1 || st.Failed != 0 {
		t.Fatalf("status = %+v, want the cell done", st)
	}
	hist := st.Attempts[KeyString(key)]
	if len(hist) < 2 || hist[0].Outcome != "resource" || !strings.Contains(hist[0].Error, "memory") {
		t.Fatalf("history = %+v, want a memory resource abort then success", hist)
	}
	if hist[len(hist)-1].Outcome != "ok" {
		t.Fatalf("history = %+v, want the final attempt ok", hist)
	}
	got, _ := json.Marshal(st.Results[KeyString(key)])
	if string(got) != string(refRaw) {
		t.Errorf("budget-aborted-then-retried result differs from the in-process run")
	}
}

// TestBlobDiskPreflight: with an unsatisfiable disk-headroom floor the
// store refuses checkpoint uploads with 507 (results still store — a
// computed result must always land) and /healthz degrades.
func TestBlobDiskPreflight(t *testing.T) {
	if diskFree(".") < 0 {
		t.Skip("platform cannot report disk free space")
	}
	_, srv := newTestFarm(t, t.TempDir(), CoordinatorConfig{MinDiskFree: 1 << 60})
	cell := testCell("SCP", "Base", 0.02, 11)
	call(t, srv.URL+"/sweep", &SweepRequest{Cells: []Cell{cell}}, nil)
	lr := leaseOne(t, srv.URL, "w1")

	blob := validBlob(t, cell)
	resp, err := http.Post(srv.URL+"/checkpoint?lease="+lr.Lease, "application/octet-stream", strings.NewReader(string(blob)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInsufficientStorage {
		t.Fatalf("checkpoint upload with no headroom: HTTP %d, want 507", resp.StatusCode)
	}
	h, _ := getHealth(t, srv.URL)
	if h.State != "degraded" {
		t.Errorf("healthz state = %s, want degraded on low disk", h.State)
	}

	// The result path is never preflighted: losing a checkpoint is
	// recoverable, losing a computed result is not.
	if code := call(t, srv.URL+"/report", &ReportRequest{Lease: lr.Lease,
		Result: &caba.Result{App: "SCP", Design: "Base", Cycles: 100, IPC: 1}}, nil); code != http.StatusNoContent {
		t.Fatalf("report with low disk: HTTP %d, want the result stored anyway", code)
	}
}

// validBlob runs a short checkpointed simulation to obtain a genuine
// sealed snapshot container for upload tests.
func validBlob(t *testing.T, cell Cell) []byte {
	t.Helper()
	cfg := cell.Config
	cfg.CheckpointEvery = 1000
	var blob []byte
	_, _, err := caba.RunResumable(context.Background(), cfg, cell.Design, cell.App, cell.Seed, nil,
		func(cycle uint64, b []byte) error {
			if blob == nil {
				blob = append([]byte(nil), b...)
			}
			return nil
		})
	if err != nil {
		t.Fatalf("building checkpoint blob: %v", err)
	}
	if blob == nil {
		t.Fatal("no checkpoint produced")
	}
	return blob
}
