package farm

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// The durable journal is an append-only JSONL event log under the
// coordinator's Dir. Two line kinds exist:
//
//   - acceptance (Cell set): a cell entered the queue, with its
//     submitting client for admission attribution;
//   - victim (Victim set): the named worker was presumed killed by the
//     cell (lease expiry or resource-budget abort) — replaying these
//     makes the poison-cell circuit breaker durable across restarts.
//
// Compaction rewrites the log as exactly one line per known cell
// (victims folded into the Victims field for live cells, dropped for
// terminal ones whose outcome lives in the store), so restart replay is
// O(cells), not O(event history). The rewrite goes through a temp file
// plus rename; a stale temp left by a crash mid-compaction is removed
// on open, leaving the original journal authoritative.
const (
	journalName    = "journal.jsonl"
	compactTmpName = "journal.compact.tmp"
)

// journalLine is one event in the durable journal (see the package
// comment above for the two line kinds and the compacted form).
type journalLine struct {
	Key string `json:"key"`
	// Cell marks an acceptance line. Pre-admission-control journals used
	// the same shape (minus Client), so old logs replay unchanged.
	Cell *Cell `json:"cell,omitempty"`
	// Client names the submitter on acceptance lines.
	Client string `json:"client,omitempty"`
	// Victim marks an incremental poison-breaker event.
	Victim string `json:"victim,omitempty"`
	// Victims is the folded victim set on compacted acceptance lines.
	Victims []string `json:"victims,omitempty"`
}

// openJournal replays the durable journal into the queue, truncates any
// torn tail, and leaves c.journal open for appending. Called once from
// NewCoordinator before the HTTP surface or janitor exist, so no lock is
// needed.
func (c *Coordinator) openJournal() error {
	// Torn-compaction recovery: a crash after writing (some of) the
	// compacted temp file but before the rename leaves the original
	// journal authoritative and the temp file garbage.
	os.Remove(filepath.Join(c.cfg.Dir, compactTmpName))

	path := filepath.Join(c.cfg.Dir, journalName)
	raw, err := os.ReadFile(path)
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("farm: journal: %w", err)
	}
	goodLen := int64(0)
	dec := json.NewDecoder(bytes.NewReader(raw))
	for {
		var line journalLine
		if err := dec.Decode(&line); err != nil {
			// io.EOF is the clean end; anything else is a torn trailing
			// append, replayed up to the last intact line.
			break
		}
		goodLen = dec.InputOffset()
		if goodLen < int64(len(raw)) && raw[goodLen] == '\n' {
			goodLen++ // keep the line terminator inside the clean prefix
		}
		c.journalLines++
		c.replayLine(line)
	}
	if goodLen < int64(len(raw)) {
		// Truncate the torn tail now: the handle below appends at the
		// file end, and bytes after a torn line would be unreachable to
		// every future replay (the decoder stops at the tear).
		if err := os.Truncate(path, goodLen); err != nil {
			return fmt.Errorf("farm: journal truncate: %w", err)
		}
		c.logf("farm: journal had a torn tail; truncated to %d bytes", goodLen)
	}
	c.journal, err = os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("farm: journal: %w", err)
	}
	return nil
}

// replayLine applies one journal event to the in-memory queue during
// open (no lock held; nothing else is running yet).
func (c *Coordinator) replayLine(line journalLine) {
	key, err := ParseKey(line.Key)
	if err != nil {
		return
	}
	if line.Cell == nil {
		// Victim event for an already-replayed cell.
		if st := c.cells[key]; st != nil && line.Victim != "" {
			st.addVictim(line.Victim)
		}
		return
	}
	if _, ok := c.cells[key]; ok {
		return
	}
	st := &cellState{cell: *line.Cell, key: key, client: line.Client}
	for _, v := range line.Victims {
		st.addVictim(v)
	}
	// The durable store is the outcome authority: a sealed poison,
	// result or failure record replayed from disk means the cell is
	// terminal and served as a cache hit, never re-leased.
	if msg, victims, attempts, ok := c.store.GetPoison(key); ok {
		st.status = cellFailed
		st.poison = true
		st.errMsg = msg
		st.failures = attempts
		st.victims = victims
		st.cacheHit = true
	} else if res, _ := c.store.GetResult(key); res != nil {
		st.status = cellDone
		st.result = res
		st.cacheHit = true
	} else if msg, wedge, attempts, ok := c.store.GetFailure(key); ok {
		st.status = cellFailed
		st.errMsg = msg
		st.wedge = wedge
		st.failures = attempts
		st.cacheHit = true
	}
	c.addCellLocked(st)
}

// appendJournalLocked appends one event line; the caller holds c.mu and
// is responsible for syncing at its durability boundary.
func (c *Coordinator) appendJournalLocked(line journalLine) error {
	if err := json.NewEncoder(c.journal).Encode(line); err != nil {
		return err
	}
	c.journalLines++
	return nil
}

// maybeCompact compacts the journal once enough dead lines (events
// superseded by the one-line-per-cell compact form) have accumulated.
// Called from the janitor and once at startup.
func (c *Coordinator) maybeCompact() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.journalLines-len(c.order) < c.cfg.compactMinLines() {
		return
	}
	if err := c.compactLocked(); err != nil {
		c.logf("farm: journal compaction failed (keeping full log): %v", err)
	}
}

// compactLocked rewrites the journal as one acceptance line per known
// cell, folding live cells' victim sets in and dropping events whose
// outcome the store already records. The temp-file + fsync + rename
// sequence makes the swap atomic: a crash on either side of the rename
// leaves exactly one intact journal. Caller holds c.mu.
func (c *Coordinator) compactLocked() error {
	tmp := filepath.Join(c.cfg.Dir, compactTmpName)
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	lines := 0
	for _, key := range c.order {
		st := c.cells[key]
		line := journalLine{Key: KeyString(key), Cell: &st.cell, Client: st.client}
		if st.status == cellPending || st.status == cellLeased {
			line.Victims = st.victims
		}
		if err == nil {
			err = enc.Encode(line)
		}
		lines++
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	path := filepath.Join(c.cfg.Dir, journalName)
	c.journal.Close()
	if err := os.Rename(tmp, path); err != nil {
		// The old journal is still in place; reopen it and carry on with
		// the uncompacted log.
		c.journal, _ = os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
		return err
	}
	j, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("farm: reopening compacted journal: %w", err)
	}
	c.journal = j
	c.journalLines = lines
	c.compactions.Add(1)
	c.publishLocked(ProgressEvent{Type: "compact"})
	c.logf("farm: journal compacted to %d lines", lines)
	return nil
}
