//go:build !race

package farm

// soakTimeScale stretches the chaos soak's real-time schedule (lease
// TTL, restart/skew times). Without the race detector, real time runs
// at full speed and no stretch is needed.
const soakTimeScale = 1
