package farm

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	caba "github.com/caba-sim/caba"
	"github.com/caba-sim/caba/internal/snapshot"
)

// testCell builds a small valid sweep cell.
func testCell(app, designName string, scale float64, seed int64) Cell {
	design := caba.Base
	if designName == caba.CABABDI.Name {
		design = caba.CABABDI
	}
	cfg := caba.Baseline()
	cfg.Scale = scale
	return Cell{App: app, Seed: seed, Config: cfg, Design: design}
}

// newTestFarm starts a coordinator over dir behind an httptest server.
func newTestFarm(t *testing.T, dir string, cfg CoordinatorConfig) (*Coordinator, *httptest.Server) {
	t.Helper()
	cfg.Dir = dir
	c, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	srv := httptest.NewServer(c.Handler())
	t.Cleanup(func() { srv.Close(); c.Close() })
	return c, srv
}

// call POSTs a JSON request and decodes the JSON response, returning the
// HTTP status.
func call(t *testing.T, url string, in, out any) int {
	t.Helper()
	raw, err := json.Marshal(in)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(url, "application/json", strings.NewReader(string(raw)))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s response: %v", url, err)
		}
	}
	return resp.StatusCode
}

// getStatus fetches /status.
func getStatus(t *testing.T, base string, query string) *StatusResponse {
	t.Helper()
	resp, err := http.Get(base + "/status" + query)
	if err != nil {
		t.Fatalf("GET /status: %v", err)
	}
	defer resp.Body.Close()
	var st StatusResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode status: %v", err)
	}
	return &st
}

// leaseOne polls /lease until a cell is granted (retries cover backoff
// windows) or the deadline passes.
func leaseOne(t *testing.T, base, worker string) *LeaseResponse {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		var lr LeaseResponse
		if code := call(t, base+"/lease", &LeaseRequest{Worker: worker}, &lr); code != 200 {
			t.Fatalf("lease: HTTP %d", code)
		}
		if lr.Lease != "" {
			return &lr
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("no lease granted within deadline")
	return nil
}

// TestCellKeyStrategyInvariance: strategy knobs (worker counts, engine
// selection, checkpoint cadence, output paths) must not move a cell's
// content address; anything result-determining must.
func TestCellKeyStrategyInvariance(t *testing.T) {
	base := testCell("PVC", "Base", 0.02, 11)
	ref, err := base.Key()
	if err != nil {
		t.Fatalf("Key: %v", err)
	}
	strategies := []func(*Cell){
		func(c *Cell) { c.Config.SMWorkers = 7 },
		func(c *Cell) { c.Config.FastForward = !c.Config.FastForward },
		func(c *Cell) { c.Config.Interpreter = true },
		func(c *Cell) { c.Config.BatchIssue = !c.Config.BatchIssue },
		func(c *Cell) { c.Config.CheckpointEvery = 123 },
		func(c *Cell) { c.Config.AuditEvery = 9 },
		func(c *Cell) { c.Config.FlightRecorderDepth = 4 },
		func(c *Cell) { c.Config.MetricsFile = "m.jsonl" },
		func(c *Cell) { c.Config.TraceFile = "t.json" },
	}
	for i, mutate := range strategies {
		c := base
		mutate(&c)
		got, err := c.Key()
		if err != nil {
			t.Fatalf("strategy %d: %v", i, err)
		}
		if got != ref {
			t.Errorf("strategy knob %d changed the cell key: %016x != %016x", i, got, ref)
		}
	}
	semantic := []func(*Cell){
		func(c *Cell) { c.Seed = 12 },
		func(c *Cell) { c.App = "SCP" },
		func(c *Cell) { c.Design = caba.CABABDI },
		func(c *Cell) { c.Design.UseCase = caba.UsePrefetch },
		func(c *Cell) { c.Config.Scale = 0.03 },
		func(c *Cell) { c.Config.SampleEvery = 500 },
		func(c *Cell) { c.Config.Faults.Seed = 1; c.Config.Faults.BitFlipRate = 0.1 },
	}
	for i, mutate := range semantic {
		c := base
		mutate(&c)
		got, err := c.Key()
		if err != nil {
			t.Fatalf("semantic %d: %v", i, err)
		}
		if got == ref {
			t.Errorf("result-determining change %d did not change the cell key", i)
		}
	}
}

// corruptFile flips one byte near the end of the file (inside the CRC'd
// payload region).
func corruptFile(t *testing.T, path string) {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	raw[len(raw)-5] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatalf("write %s: %v", path, err)
	}
}

// TestStoreResultVerifyAndQuarantine: results round-trip through the
// sealed container; a corrupted entry reads as absent and is moved aside,
// never served.
func TestStoreResultVerifyAndQuarantine(t *testing.T) {
	s, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	res := &caba.Result{App: "PVC", Design: "Base", Cycles: 42, IPC: 1.25}
	if err := s.PutResult(7, res); err != nil {
		t.Fatalf("PutResult: %v", err)
	}
	got, err := s.GetResult(7)
	if err != nil || got == nil || got.Cycles != 42 || got.IPC != 1.25 {
		t.Fatalf("GetResult = %+v, %v", got, err)
	}
	// Wrong address: the container binds the key, so a file copied to
	// another address must not be served.
	if err := os.Rename(s.resultPath(7), s.resultPath(8)); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.GetResult(8); got != nil {
		t.Error("result served from the wrong content address")
	}
	if s.Quarantined() != 1 {
		t.Errorf("Quarantined = %d, want 1", s.Quarantined())
	}
	// Corrupt payload: CRC catches it.
	if err := s.PutResult(9, res); err != nil {
		t.Fatal(err)
	}
	corruptFile(t, s.resultPath(9))
	if got, _ := s.GetResult(9); got != nil {
		t.Error("corrupt result served")
	}
	if s.Quarantined() != 2 {
		t.Errorf("Quarantined = %d, want 2", s.Quarantined())
	}
	if _, err := os.Stat(s.resultPath(9) + ".quarantine"); err != nil {
		t.Errorf("corrupt entry not preserved in quarantine: %v", err)
	}
	// Schema guard: a structurally valid but wrong-shaped payload is
	// rejected at write time.
	if err := s.PutResult(10, &caba.Result{}); err == nil {
		t.Error("PutResult accepted a result failing the schema check")
	}
}

// TestStoreFailureRecords: terminal failures round-trip durably and
// corrupt records read as absent.
func TestStoreFailureRecords(t *testing.T) {
	s, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, ok := s.GetFailure(3); ok {
		t.Fatal("GetFailure on empty store reported a record")
	}
	if err := s.PutFailure(3, "caba: PVC/Base: wedged", true, 1); err != nil {
		t.Fatalf("PutFailure: %v", err)
	}
	msg, wedge, attempts, ok := s.GetFailure(3)
	if !ok || !wedge || attempts != 1 || !strings.Contains(msg, "wedged") {
		t.Fatalf("GetFailure = %q %v %d %v", msg, wedge, attempts, ok)
	}
	corruptFile(t, s.failPath(3))
	if _, _, _, ok := s.GetFailure(3); ok {
		t.Error("corrupt failure record served")
	}
	if s.Quarantined() != 1 {
		t.Errorf("Quarantined = %d, want 1", s.Quarantined())
	}
}

// TestStoreBlobVerification: checkpoint blobs are verified as sealed
// containers on write and on read.
func TestStoreBlobVerification(t *testing.T) {
	s, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutBlob(1, []byte("not a snapshot container")); err == nil {
		t.Fatal("PutBlob accepted garbage")
	}
	blob := snapshot.Seal(99, []byte("checkpoint payload"))
	if err := s.PutBlob(1, blob); err != nil {
		t.Fatalf("PutBlob: %v", err)
	}
	if !s.HasBlob(1) {
		t.Fatal("HasBlob = false after PutBlob")
	}
	got, err := s.GetBlob(1)
	if err != nil || string(got) != string(blob) {
		t.Fatalf("GetBlob mismatch: %v", err)
	}
	corruptFile(t, s.blobPath(1))
	if got, _ := s.GetBlob(1); got != nil {
		t.Error("corrupt blob served")
	}
	if s.Quarantined() != 1 {
		t.Errorf("Quarantined = %d, want 1", s.Quarantined())
	}
	s.DeleteBlob(1)
	if s.HasBlob(1) {
		t.Error("HasBlob = true after DeleteBlob")
	}
}

// TestSweepLifecycle drives one cell through the protocol by hand:
// submit, lease, heartbeat, report, status; then dedupe semantics on
// resubmission and cache hits across a coordinator restart.
func TestSweepLifecycle(t *testing.T) {
	dir := t.TempDir()
	_, srv := newTestFarm(t, dir, CoordinatorConfig{})
	cell := testCell("PVC", "Base", 0.02, 11)

	var sw SweepResponse
	if code := call(t, srv.URL+"/sweep", &SweepRequest{Cells: []Cell{cell}}, &sw); code != 200 {
		t.Fatalf("sweep: HTTP %d", code)
	}
	if sw.Accepted != 1 || sw.CacheHits != 0 || sw.Known != 0 {
		t.Fatalf("sweep response = %+v, want 1 accepted", sw)
	}

	lr := leaseOne(t, srv.URL, "w1")
	if lr.Attempt != 1 || lr.Cell == nil || lr.Cell.App != "PVC" || lr.Checkpoint {
		t.Fatalf("lease = %+v, want attempt 1 on PVC with no checkpoint", lr)
	}
	if code := call(t, srv.URL+"/heartbeat", &HeartbeatRequest{Lease: lr.Lease, Cycle: 10}, nil); code != 204 {
		t.Fatalf("heartbeat: HTTP %d", code)
	}
	res := &caba.Result{App: "PVC", Design: "Base", Cycles: 100, IPC: 2}
	if code := call(t, srv.URL+"/report", &ReportRequest{Lease: lr.Lease, Result: res}, nil); code != 204 {
		t.Fatalf("report: HTTP %d", code)
	}

	st := getStatus(t, srv.URL, "")
	if st.Done != 1 || !st.Drained || st.CacheHits != 0 {
		t.Fatalf("status = %+v, want 1 done, drained", st)
	}
	key, _ := cell.Key()
	if got := st.Results[KeyString(key)]; got == nil || got.Cycles != 100 {
		t.Fatalf("stored result = %+v", got)
	}
	if hist := st.Attempts[KeyString(key)]; len(hist) != 1 || hist[0].Outcome != "ok" {
		t.Fatalf("attempt history = %+v, want one ok", hist)
	}

	// Same session, same cell again: already known in memory.
	if call(t, srv.URL+"/sweep", &SweepRequest{Cells: []Cell{cell}}, &sw); sw.Known != 1 {
		t.Fatalf("resubmit = %+v, want known", sw)
	}

	// An idle lease poll reports the sweep drained.
	var empty LeaseResponse
	call(t, srv.URL+"/lease", &LeaseRequest{Worker: "w1"}, &empty)
	if empty.Lease != "" || !empty.Drained {
		t.Fatalf("lease on drained sweep = %+v", empty)
	}

	// Restart over the same directory: the journaled cell is served from
	// the content-addressed store — a cache hit, no re-simulation.
	_, srv2 := newTestFarm(t, dir, CoordinatorConfig{})
	st2 := getStatus(t, srv2.URL, "")
	if st2.Done != 1 || st2.CacheHits != 1 || !st2.Drained {
		t.Fatalf("restarted status = %+v, want 1 done via cache", st2)
	}
	if call(t, srv2.URL+"/sweep", &SweepRequest{Cells: []Cell{cell}}, &sw); sw.CacheHits != 1 || sw.Accepted != 0 {
		t.Fatalf("resubmit after restart = %+v, want a cache hit", sw)
	}
}

// TestSweepRejectsInvalidCell: a cell whose config fails validation is
// rejected with 400 before touching the queue.
func TestSweepRejectsInvalidCell(t *testing.T) {
	_, srv := newTestFarm(t, t.TempDir(), CoordinatorConfig{})
	cell := testCell("PVC", "Base", 0.02, 1)
	cell.Config.Scale = -1
	if code := call(t, srv.URL+"/sweep", &SweepRequest{Cells: []Cell{cell}}, nil); code != 400 {
		t.Fatalf("sweep with invalid config: HTTP %d, want 400", code)
	}
}

// TestLeaseExpiryRequeues: a worker that stops heartbeating loses the
// cell — it re-queues as attempt 2 and every late call quoting the stale
// token is rejected with 409 and mutates nothing.
func TestLeaseExpiryRequeues(t *testing.T) {
	_, srv := newTestFarm(t, t.TempDir(), CoordinatorConfig{
		LeaseTTL: 40 * time.Millisecond, RetryBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond,
	})
	cell := testCell("PVC", "Base", 0.02, 11)
	call(t, srv.URL+"/sweep", &SweepRequest{Cells: []Cell{cell}}, nil)

	stale := leaseOne(t, srv.URL, "dead-worker")
	// Let the lease expire (janitor tick = TTL/4).
	time.Sleep(100 * time.Millisecond)

	release := leaseOne(t, srv.URL, "live-worker")
	if release.Attempt != 2 {
		t.Fatalf("re-lease attempt = %d, want 2 (expiry charged)", release.Attempt)
	}
	if stale.Lease == release.Lease {
		t.Fatal("stale token re-issued")
	}

	// The presumed-dead worker comes back: everything it says is refused.
	if code := call(t, srv.URL+"/heartbeat", &HeartbeatRequest{Lease: stale.Lease}, nil); code != 409 {
		t.Errorf("stale heartbeat: HTTP %d, want 409", code)
	}
	zombie := &caba.Result{App: "PVC", Design: "Base", Cycles: 1, IPC: 1}
	if code := call(t, srv.URL+"/report", &ReportRequest{Lease: stale.Lease, Result: zombie}, nil); code != 409 {
		t.Errorf("stale report: HTTP %d, want 409", code)
	}
	st := getStatus(t, srv.URL, "?results=0")
	if st.Done != 0 || st.Leased != 1 {
		t.Fatalf("status after stale report = %+v, want the cell still leased", st)
	}
	key, _ := cell.Key()
	hist := st.Attempts[KeyString(key)]
	if len(hist) == 0 || hist[0].Outcome != "expired" {
		t.Fatalf("attempt history = %+v, want a leading expiry", hist)
	}
}

// TestTransientRetryAndAttemptCap: transient failures re-queue with
// backoff until the cap, then fail permanently — and the terminal record
// survives a coordinator restart as a cache hit.
func TestTransientRetryAndAttemptCap(t *testing.T) {
	dir := t.TempDir()
	c, srv := newTestFarm(t, dir, CoordinatorConfig{
		MaxAttempts: 2, RetryBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond,
	})
	cell := testCell("SCP", "CABA-BDI", 0.02, 5)
	call(t, srv.URL+"/sweep", &SweepRequest{Cells: []Cell{cell}}, nil)

	lr := leaseOne(t, srv.URL, "w1")
	call(t, srv.URL+"/report", &ReportRequest{Lease: lr.Lease, Error: "synthetic transient"}, nil)
	st := getStatus(t, srv.URL, "?results=0")
	if st.Pending != 1 || st.Failed != 0 {
		t.Fatalf("after first failure: %+v, want the cell pending again", st)
	}

	lr = leaseOne(t, srv.URL, "w2")
	if lr.Attempt != 2 {
		t.Fatalf("attempt = %d, want 2", lr.Attempt)
	}
	call(t, srv.URL+"/report", &ReportRequest{Lease: lr.Lease, Error: "synthetic transient"}, nil)
	st = getStatus(t, srv.URL, "?results=0")
	if st.Failed != 1 || !st.Drained {
		t.Fatalf("after cap: %+v, want terminal failure", st)
	}
	f := st.Failures[0]
	if f.Wedge || f.Attempts != 2 || !strings.Contains(f.Error, "attempt cap 2 reached") {
		t.Fatalf("failure = %+v", f)
	}

	// The terminal outcome is durable: a restarted coordinator serves it
	// from the store instead of re-queuing the cell.
	key, _ := cell.Key()
	if _, _, _, ok := c.Store().GetFailure(key); !ok {
		t.Fatal("terminal failure not persisted")
	}
	_, srv2 := newTestFarm(t, dir, CoordinatorConfig{})
	st2 := getStatus(t, srv2.URL, "?results=0")
	if st2.Failed != 1 || st2.Pending != 0 || st2.CacheHits != 1 {
		t.Fatalf("restarted status = %+v, want the failure served from the store", st2)
	}
}

// TestWedgeFailsFast: a deterministic wedge fails the cell on attempt 1
// with its retry budget unspent, and is recorded durably.
func TestWedgeFailsFast(t *testing.T) {
	c, srv := newTestFarm(t, t.TempDir(), CoordinatorConfig{MaxAttempts: 4})
	cell := testCell("PVC", "Base", 0.02, 7)
	call(t, srv.URL+"/sweep", &SweepRequest{Cells: []Cell{cell}}, nil)

	lr := leaseOne(t, srv.URL, "w1")
	call(t, srv.URL+"/report", &ReportRequest{Lease: lr.Lease, Error: "caba: PVC/Base: warps wedged", Wedge: true}, nil)

	st := getStatus(t, srv.URL, "?results=0")
	if st.Failed != 1 || st.Pending != 0 || !st.Drained {
		t.Fatalf("status = %+v, want immediate terminal failure", st)
	}
	f := st.Failures[0]
	if !f.Wedge || f.Attempts != 1 {
		t.Fatalf("failure = %+v, want wedge on attempt 1", f)
	}
	key, _ := cell.Key()
	if _, wedge, _, ok := c.Store().GetFailure(key); !ok || !wedge {
		t.Fatal("wedge not persisted to the failure store")
	}
	hist := getStatus(t, srv.URL, "?results=0").Attempts[KeyString(key)]
	if len(hist) != 1 || hist[0].Outcome != "wedged" {
		t.Fatalf("history = %+v, want exactly one wedged attempt", hist)
	}
}

// TestReleasedRequeuesWithoutCharge: a draining worker's release puts the
// cell straight back in the queue — no backoff, no attempt charged.
func TestReleasedRequeuesWithoutCharge(t *testing.T) {
	_, srv := newTestFarm(t, t.TempDir(), CoordinatorConfig{RetryBackoff: time.Hour})
	cell := testCell("PVC", "CABA-BDI", 0.02, 3)
	call(t, srv.URL+"/sweep", &SweepRequest{Cells: []Cell{cell}}, nil)

	lr := leaseOne(t, srv.URL, "draining")
	call(t, srv.URL+"/report", &ReportRequest{Lease: lr.Lease, Released: true}, nil)

	// RetryBackoff is an hour: only an uncharged immediate re-queue can
	// grant this lease now.
	lr2 := leaseOne(t, srv.URL, "fresh")
	if lr2.Attempt != 1 {
		t.Fatalf("attempt after release = %d, want 1 (no charge)", lr2.Attempt)
	}
}

// TestCheckpointBlobFlow: a leased worker uploads checkpoints (corrupt
// uploads rejected), a successor fetches the latest blob, and completion
// clears it.
func TestCheckpointBlobFlow(t *testing.T) {
	c, srv := newTestFarm(t, t.TempDir(), CoordinatorConfig{
		LeaseTTL: 40 * time.Millisecond, RetryBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond,
	})
	cell := testCell("SCP", "Base", 0.02, 9)
	call(t, srv.URL+"/sweep", &SweepRequest{Cells: []Cell{cell}}, nil)
	lr := leaseOne(t, srv.URL, "w1")

	post := func(lease string, blob []byte) int {
		resp, err := http.Post(srv.URL+"/checkpoint?lease="+lease, "application/octet-stream", strings.NewReader(string(blob)))
		if err != nil {
			t.Fatalf("upload: %v", err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post(lr.Lease, []byte("garbage")); code != 400 {
		t.Fatalf("corrupt blob upload: HTTP %d, want 400", code)
	}
	blob := snapshot.Seal(1, []byte("state@cycle-1000"))
	if code := post(lr.Lease, blob); code != 204 {
		t.Fatalf("blob upload: HTTP %d", code)
	}

	// Let the lease lapse; the successor is offered the checkpoint.
	time.Sleep(100 * time.Millisecond)
	if code := post(lr.Lease, blob); code != 409 {
		t.Fatalf("stale blob upload: HTTP %d, want 409", code)
	}
	lr2 := leaseOne(t, srv.URL, "w2")
	if !lr2.Checkpoint {
		t.Fatal("successor lease not offered the checkpoint blob")
	}
	resp, err := http.Get(srv.URL + "/checkpoint?lease=" + lr2.Lease)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	fetched, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != 200 || string(fetched) != string(blob) {
		t.Fatalf("checkpoint fetch: HTTP %d, %d bytes", resp.StatusCode, len(fetched))
	}

	// Completion clears the blob.
	res := &caba.Result{App: "SCP", Design: "Base", Cycles: 2722, IPC: 1}
	call(t, srv.URL+"/report", &ReportRequest{Lease: lr2.Lease, Result: res, ResumeCycle: 1000}, nil)
	key, _ := cell.Key()
	if c.Store().HasBlob(key) {
		t.Error("checkpoint blob survived completion")
	}
	hist := getStatus(t, srv.URL, "?results=0").Attempts[KeyString(key)]
	last := hist[len(hist)-1]
	if last.Outcome != "ok" || last.ResumeCycle != 1000 {
		t.Fatalf("final attempt = %+v, want ok resumed from 1000", last)
	}
}

// TestTornJournalReplay: a journal whose final line was torn mid-append
// replays every intact line and drops only the tail.
func TestTornJournalReplay(t *testing.T) {
	dir := t.TempDir()
	cell := testCell("PVC", "Base", 0.02, 11)
	key, _ := cell.Key()
	line, _ := json.Marshal(journalLine{Key: KeyString(key), Cell: &cell})
	raw := append(append([]byte{}, line...), '\n')
	raw = append(raw, []byte(`{"key":"deadbeef","cell":{"app":"SC`)...) // torn tail
	if err := os.WriteFile(filepath.Join(dir, "journal.jsonl"), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	_, srv := newTestFarm(t, dir, CoordinatorConfig{})
	st := getStatus(t, srv.URL, "?results=0")
	if st.Pending != 1 || st.Done != 0 {
		t.Fatalf("status = %+v, want the intact cell pending and the torn tail dropped", st)
	}
}

// TestProgressStream: the JSONL progress endpoint streams lifecycle
// events live.
func TestProgressStream(t *testing.T) {
	_, srv := newTestFarm(t, t.TempDir(), CoordinatorConfig{})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL+"/progress", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("GET /progress: %v", err)
	}
	defer resp.Body.Close()
	events := make(chan ProgressEvent, 64)
	go func() {
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			var ev ProgressEvent
			if json.Unmarshal(sc.Bytes(), &ev) == nil {
				events <- ev
			}
		}
		close(events)
	}()

	cell := testCell("PVC", "Base", 0.02, 11)
	call(t, srv.URL+"/sweep", &SweepRequest{Cells: []Cell{cell}}, nil)
	lr := leaseOne(t, srv.URL, "w1")
	res := &caba.Result{App: "PVC", Design: "Base", Cycles: 10, IPC: 1}
	call(t, srv.URL+"/report", &ReportRequest{Lease: lr.Lease, Result: res}, nil)

	want := map[string]bool{"queued": false, "lease": false, "done": false}
	deadline := time.After(5 * time.Second)
	for {
		allSeen := true
		for _, seen := range want {
			allSeen = allSeen && seen
		}
		if allSeen {
			return
		}
		select {
		case ev, ok := <-events:
			if !ok {
				t.Fatal("progress stream closed early")
			}
			if _, tracked := want[ev.Type]; tracked {
				want[ev.Type] = true
			}
		case <-deadline:
			t.Fatalf("progress events missing: %+v", want)
		}
	}
}
