package farm

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	caba "github.com/caba-sim/caba"
	"github.com/caba-sim/caba/internal/faults"
)

// TestChaosSweepEquivalence is the farm's end-to-end robustness proof: a
// sweep sharded across four workers — one killed mid-cell after its
// first checkpoint upload, one hung past its lease (exercising the
// stale-report rejection), one failing transiently on first contact —
// must converge to results bit-identical to running every cell
// in-process, with:
//
//   - the killed cell resumed from its uploaded checkpoint blob, not
//     from cycle zero,
//   - the deterministic wedge cell failed fast on attempt 1, never
//     retried, its error identical to the in-process run's,
//   - and, after a coordinator restart, every cell served as a cache
//     hit with no simulation at all.
func TestChaosSweepEquivalence(t *testing.T) {
	const (
		scale    = 0.02
		seed     = 11
		leaseTTL = 600 * time.Millisecond
	)
	baseCfg := func() caba.Config {
		cfg := caba.Baseline()
		cfg.Scale = scale
		return cfg
	}

	// The grid. Each troublemaker hook targets one specific cell so the
	// attempt histories stay exactly predictable.
	sampled := Cell{App: "PVC", Seed: seed, Config: baseCfg(), Design: caba.Base}
	sampled.Config.SampleEvery = 500 // exercises "sample" progress events

	flakyCell := Cell{App: "PVC", Seed: seed, Config: baseCfg(), Design: caba.CABABDI}
	killCell := Cell{App: "SCP", Seed: seed, Config: baseCfg(), Design: caba.Base}
	hangCell := Cell{App: "SCP", Seed: seed, Config: baseCfg(), Design: caba.CABABDI}

	wedgeCell := Cell{App: "BFS", Seed: seed, Config: baseCfg(), Design: caba.Base}
	wedgeCell.Config.Faults = faults.Config{Seed: 7, ResponseDropRate: 1.0}

	cells := []Cell{sampled, flakyCell, killCell, hangCell, wedgeCell}
	keys := make(map[string]string) // label -> key hex
	for _, c := range cells {
		k, err := c.Key()
		if err != nil {
			t.Fatalf("key: %v", err)
		}
		keys[c.Label()] = KeyString(k)
	}

	// Reference: every healthy cell simulated in-process, single run, no
	// farm. The wedge cell's in-process error is the reference for the
	// farm's failure record.
	refResults := make(map[string][]byte)
	for _, c := range cells[:4] {
		res, err := caba.Run(c.Config, c.Design, c.App, c.Seed)
		if err != nil {
			t.Fatalf("reference %s: %v", c.Label(), err)
		}
		raw, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		refResults[keys[c.Label()]] = raw
	}
	_, refWedgeErr := caba.Run(wedgeCell.Config, wedgeCell.Design, wedgeCell.App, wedgeCell.Seed)
	if refWedgeErr == nil || !strings.Contains(refWedgeErr.Error(), "wedged") {
		t.Fatalf("reference wedge run: err = %v, want a wedge", refWedgeErr)
	}

	dir := t.TempDir()
	coord, err := NewCoordinator(CoordinatorConfig{
		Dir:          dir,
		LeaseTTL:     leaseTTL,
		MaxAttempts:  4,
		RetryBackoff: 10 * time.Millisecond,
		MaxBackoff:   50 * time.Millisecond,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()
	defer coord.Close()

	// Live progress: collect every event for the duration of the sweep.
	progCtx, progCancel := context.WithCancel(context.Background())
	defer progCancel()
	seenEvents := make(map[string]int)
	var evMu sync.Mutex
	progReady := make(chan struct{})
	go func() {
		req, _ := http.NewRequestWithContext(progCtx, http.MethodGet, srv.URL+"/progress", nil)
		resp, err := http.DefaultClient.Do(req)
		close(progReady)
		if err != nil {
			return
		}
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
		for sc.Scan() {
			var ev ProgressEvent
			if json.Unmarshal(sc.Bytes(), &ev) == nil {
				evMu.Lock()
				seenEvents[ev.Type]++
				evMu.Unlock()
			}
		}
	}()
	<-progReady

	var sw SweepResponse
	if err := postJSONT(srv.URL+"/sweep", &SweepRequest{Cells: cells}, &sw); err != nil {
		t.Fatalf("sweep: %v", err)
	}
	if sw.Accepted != 5 {
		t.Fatalf("sweep = %+v, want 5 accepted", sw)
	}

	// Chaos hooks, shared across the fleet so whichever worker draws the
	// target cell misbehaves — each fault fires exactly once.
	var kills, hangs, flakes atomic.Int32
	kills.Store(1)
	hangs.Store(1)
	flakes.Store(1)
	hooks := workerHooks{
		beforeRun: func(cell Cell, attempt int) error {
			switch cell.Label() {
			case hangCell.Label():
				if hangs.Add(-1) >= 0 {
					// Hang past the lease TTL: the coordinator presumes us
					// dead and re-queues; our late report must bounce off
					// the stale-lease check.
					time.Sleep(leaseTTL + leaseTTL/2)
					return fmt.Errorf("synthetic hang (woke after lease expiry)")
				}
			case flakyCell.Label():
				if flakes.Add(-1) >= 0 {
					return fmt.Errorf("synthetic transient failure")
				}
			}
			return nil
		},
		afterUpload: func(cell Cell, cycle uint64, uploads int) hookAction {
			if cell.Label() == killCell.Label() && kills.Add(-1) >= 0 {
				return hookDie // vanish mid-cell: no report, lease expires
			}
			return hookContinue
		},
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		w := NewWorker(srv.URL, WorkerConfig{
			Name: fmt.Sprintf("chaos-w%d", i),
			// Checkpoint every 1000 simulated cycles: the kill cell (~2700
			// cycles) uploads at 1000 before the chaos kill, so its second
			// attempt provably resumes mid-run.
			CheckpointEvery: 1000,
			PollInterval:    20 * time.Millisecond,
			CellTimeout:     time.Minute,
			ExitWhenDrained: true,
			Logf:            t.Logf,
		})
		w.hooks = hooks
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.Run(ctx)
		}()
	}
	wg.Wait()
	if ctx.Err() != nil {
		t.Fatal("sweep did not drain before the test deadline")
	}

	st := statusT(t, srv.URL, "")
	if !st.Drained || st.Done != 4 || st.Failed != 1 {
		t.Fatalf("final status = %+v, want 4 done + 1 failed", st)
	}
	if st.Quarantined != 0 {
		t.Errorf("quarantined = %d, want 0 (no store corruption in this run)", st.Quarantined)
	}

	// 1. Bit-identical equivalence: every farm result byte-equal to its
	// single-process reference (JSON round-trips Go floats exactly).
	for label, key := range keys {
		if label == wedgeCell.Label() {
			continue
		}
		got := st.Results[key]
		if got == nil {
			t.Errorf("%s: no farm result", label)
			continue
		}
		raw, err := json.Marshal(got)
		if err != nil {
			t.Fatal(err)
		}
		if string(raw) != string(refResults[key]) {
			t.Errorf("%s: farm result differs from single-process run\n farm: %s\n  ref: %s", label, raw, refResults[key])
		}
	}

	// 2. The killed cell resumed from the uploaded checkpoint: its
	// history shows the expiry, then a successful attempt starting at a
	// non-zero cycle.
	killHist := st.Attempts[keys[killCell.Label()]]
	var expired bool
	var final Attempt
	for _, a := range killHist {
		if a.Outcome == "expired" {
			expired = true
		}
		final = a
	}
	if !expired {
		t.Errorf("kill cell history %+v lacks the lease expiry", killHist)
	}
	if final.Outcome != "ok" || final.ResumeCycle == 0 {
		t.Errorf("kill cell final attempt = %+v, want ok with ResumeCycle > 0 (resumed from blob, not cycle 0)", final)
	}

	// 3. The wedge failed fast: exactly one attempt, marked wedged, with
	// the identical deterministic diagnosis the in-process run produced.
	if len(st.Failures) != 1 {
		t.Fatalf("failures = %+v, want exactly the wedge cell", st.Failures)
	}
	f := st.Failures[0]
	if f.Key != keys[wedgeCell.Label()] || !f.Wedge || f.Attempts != 1 {
		t.Errorf("wedge failure = %+v, want wedge on attempt 1, never retried", f)
	}
	if f.Error != refWedgeErr.Error() {
		t.Errorf("wedge diagnosis differs from in-process run:\n farm: %s\n  ref: %s", f.Error, refWedgeErr.Error())
	}
	wedgeHist := st.Attempts[keys[wedgeCell.Label()]]
	if len(wedgeHist) != 1 || wedgeHist[0].Outcome != "wedged" {
		t.Errorf("wedge history = %+v, want exactly one wedged attempt", wedgeHist)
	}

	// 4. The hang and the flake each cost one transient attempt and the
	// cells still completed.
	for _, tc := range []struct {
		label string
		want  string
	}{
		{hangCell.Label(), "expired"},
		{flakyCell.Label(), "failed"},
	} {
		hist := st.Attempts[keys[tc.label]]
		var sawCharge bool
		for _, a := range hist {
			if a.Outcome == tc.want {
				sawCharge = true
			}
		}
		if !sawCharge || hist[len(hist)-1].Outcome != "ok" {
			t.Errorf("%s history = %+v, want a %q charge then ok", tc.label, hist, tc.want)
		}
	}

	// 5. Progress stream carried the whole story, including metrics
	// samples from the sampled cell.
	evMu.Lock()
	for _, typ := range []string{"queued", "lease", "checkpoint", "requeue", "done", "failed", "sample"} {
		if seenEvents[typ] == 0 {
			t.Errorf("progress stream missing %q events (saw %v)", typ, seenEvents)
		}
	}
	evMu.Unlock()
	progCancel()

	// 6. Cache hits across restart: a new coordinator over the same
	// store serves every cell — results and the wedge — without any
	// worker running at all.
	coord.Close()
	srv.Close()
	coord2, err := NewCoordinator(CoordinatorConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer coord2.Close()
	srv2 := httptest.NewServer(coord2.Handler())
	defer srv2.Close()
	var sw2 SweepResponse
	if err := postJSONT(srv2.URL+"/sweep", &SweepRequest{Cells: cells}, &sw2); err != nil {
		t.Fatal(err)
	}
	if sw2.CacheHits != 5 || sw2.Accepted != 0 {
		t.Fatalf("resubmission after restart = %+v, want 5 cache hits, 0 accepted", sw2)
	}
	st2 := statusT(t, srv2.URL, "")
	if !st2.Drained || st2.Done != 4 || st2.Failed != 1 || st2.CacheHits != 5 {
		t.Fatalf("restarted status = %+v, want everything served from the store", st2)
	}
	for label, key := range keys {
		if label == wedgeCell.Label() {
			continue
		}
		raw, err := json.Marshal(st2.Results[key])
		if err != nil {
			t.Fatal(err)
		}
		if string(raw) != string(refResults[key]) {
			t.Errorf("%s: cached result differs from reference", label)
		}
	}
}

// postJSONT is a minimal client helper for chaos-test requests.
func postJSONT(url string, in, out any) error {
	raw, err := json.Marshal(in)
	if err != nil {
		return err
	}
	resp, err := http.Post(url, "application/json", strings.NewReader(string(raw)))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		return fmt.Errorf("HTTP %d", resp.StatusCode)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func statusT(t *testing.T, base, query string) *StatusResponse {
	t.Helper()
	resp, err := http.Get(base + "/status" + query)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatusResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return &st
}
