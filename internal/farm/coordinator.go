package farm

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"time"

	caba "github.com/caba-sim/caba"
)

// CoordinatorConfig tunes the coordinator's robustness policy. The zero
// value of every field selects a sensible default.
type CoordinatorConfig struct {
	// Dir roots the durable state: the content-addressed result store,
	// the checkpoint blob store and the submission journal. A
	// coordinator restarted over the same Dir resumes the sweep —
	// journaled cells with a stored result are complete, the rest are
	// re-queued. Required.
	Dir string
	// LeaseTTL is how long a worker may go without heartbeating before
	// its cell is re-queued (default 15s).
	LeaseTTL time.Duration
	// MaxAttempts caps executions per cell: a cell whose transient
	// failures (including lease expiries) reach the cap fails
	// permanently (default 4). Deterministic wedges ignore the cap —
	// they fail on the first attempt and are never retried.
	MaxAttempts int
	// RetryBackoff is the re-queue delay after the first transient
	// failure, doubling per failure with ±50% jitter so a thundering
	// herd of failed cells does not re-land in lockstep (default 250ms).
	RetryBackoff time.Duration
	// MaxBackoff caps the exponential backoff (default 30s).
	MaxBackoff time.Duration
	// Logf receives coordinator log lines (nil = silent).
	Logf func(format string, args ...any)
}

func (c *CoordinatorConfig) ttl() time.Duration {
	if c.LeaseTTL <= 0 {
		return 15 * time.Second
	}
	return c.LeaseTTL
}

func (c *CoordinatorConfig) maxAttempts() int {
	if c.MaxAttempts <= 0 {
		return 4
	}
	return c.MaxAttempts
}

func (c *CoordinatorConfig) backoff() time.Duration {
	if c.RetryBackoff <= 0 {
		return 250 * time.Millisecond
	}
	return c.RetryBackoff
}

func (c *CoordinatorConfig) maxBackoff() time.Duration {
	if c.MaxBackoff <= 0 {
		return 30 * time.Second
	}
	return c.MaxBackoff
}

// cellStatus is a queued cell's lifecycle state.
type cellStatus uint8

const (
	cellPending cellStatus = iota // waiting for a lease (possibly backed off)
	cellLeased                    // held by a worker
	cellDone                      // verified result stored
	cellFailed                    // terminal failure (wedge or attempt cap)
)

// cellState is the coordinator's view of one queued cell.
type cellState struct {
	cell     Cell
	key      uint64
	status   cellStatus
	failures int       // transient failures charged (incl. lease expiries)
	notBefore time.Time // backoff gate while pending
	errMsg   string
	wedge    bool
	cacheHit bool
	result   *caba.Result
	history  []Attempt
	order    int // submission order, for stable dispatch
}

// Coordinator is the sweep service: durable queue, lease manager, failure
// classifier, result cache and progress broadcaster, exposed over HTTP
// via Handler.
type Coordinator struct {
	cfg    CoordinatorConfig
	store  *Store
	leases *leaseTable
	mux    *http.ServeMux

	mu      sync.Mutex
	cells   map[uint64]*cellState
	order   []uint64
	journal *os.File
	subs    map[chan ProgressEvent]struct{}

	janitorStop chan struct{}
	janitorDone chan struct{}
	closeOnce   sync.Once
}

// journalLine is one accepted cell in the durable submission journal.
type journalLine struct {
	Key  string `json:"key"`
	Cell Cell   `json:"cell"`
}

// NewCoordinator opens (or resumes) a coordinator over cfg.Dir: the
// submission journal is replayed, journaled cells whose verified result
// is already in the store are marked complete, and the rest are
// re-queued. Call Close when done.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("farm: coordinator needs a state directory")
	}
	store, err := OpenStore(cfg.Dir)
	if err != nil {
		return nil, err
	}
	c := &Coordinator{
		cfg:         cfg,
		store:       store,
		leases:      newLeaseTable(),
		cells:       make(map[uint64]*cellState),
		subs:        make(map[chan ProgressEvent]struct{}),
		janitorStop: make(chan struct{}),
		janitorDone: make(chan struct{}),
	}
	if err := c.replayJournal(); err != nil {
		return nil, err
	}
	jpath := filepath.Join(cfg.Dir, "journal.jsonl")
	c.journal, err = os.OpenFile(jpath, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("farm: journal: %w", err)
	}
	c.mux = http.NewServeMux()
	c.mux.HandleFunc("POST /sweep", c.handleSweep)
	c.mux.HandleFunc("POST /lease", c.handleLease)
	c.mux.HandleFunc("POST /heartbeat", c.handleHeartbeat)
	c.mux.HandleFunc("POST /checkpoint", c.handlePutCheckpoint)
	c.mux.HandleFunc("GET /checkpoint", c.handleGetCheckpoint)
	c.mux.HandleFunc("POST /report", c.handleReport)
	c.mux.HandleFunc("GET /status", c.handleStatus)
	c.mux.HandleFunc("GET /progress", c.handleProgress)
	go c.janitor()
	return c, nil
}

// replayJournal rebuilds the queue from the durable journal: every
// journaled cell either has a verified result in the store (complete) or
// goes back to pending. A torn trailing line — the coordinator died
// mid-append — is tolerated and everything before it is replayed.
func (c *Coordinator) replayJournal() error {
	raw, err := os.ReadFile(filepath.Join(c.cfg.Dir, "journal.jsonl"))
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("farm: journal: %w", err)
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	for {
		var line journalLine
		if err := dec.Decode(&line); err != nil {
			// io.EOF is the clean end; anything else is a torn trailing
			// append, replayed up to the last intact line.
			break
		}
		key, err := ParseKey(line.Key)
		if err != nil {
			continue
		}
		if _, ok := c.cells[key]; ok {
			continue
		}
		st := &cellState{cell: line.Cell, key: key, order: len(c.order)}
		if res, _ := c.store.GetResult(key); res != nil {
			// Completed before the restart: served from the store, never
			// re-simulated by this coordinator session.
			st.status = cellDone
			st.result = res
			st.cacheHit = true
		} else if msg, wedge, attempts, ok := c.store.GetFailure(key); ok {
			st.status = cellFailed
			st.errMsg = msg
			st.wedge = wedge
			st.failures = attempts
			st.cacheHit = true
		}
		c.cells[key] = st
		c.order = append(c.order, key)
	}
	return nil
}

// Close stops the lease janitor and closes the journal. In-memory state
// is discarded; the durable state in Dir survives for the next open.
func (c *Coordinator) Close() {
	c.closeOnce.Do(func() {
		close(c.janitorStop)
		<-c.janitorDone
		c.mu.Lock()
		defer c.mu.Unlock()
		c.journal.Close()
	})
}

// Handler returns the coordinator's HTTP surface.
func (c *Coordinator) Handler() http.Handler { return c.mux }

// Store exposes the underlying content-addressed store (observability
// and tests).
func (c *Coordinator) Store() *Store { return c.store }

func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// janitor periodically harvests expired leases so dead workers surface
// as re-queued cells even when no request traffic arrives.
func (c *Coordinator) janitor() {
	defer close(c.janitorDone)
	tick := c.cfg.ttl() / 4
	if tick < 10*time.Millisecond {
		tick = 10 * time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-c.janitorStop:
			return
		case now := <-t.C:
			c.harvestExpired(now)
		}
	}
}

// harvestExpired re-queues every cell whose lease deadline has passed,
// charging the expiry as a transient failure: a worker that died or hung
// mid-cell looks exactly like a failed attempt, subject to the same
// backoff and attempt cap.
func (c *Coordinator) harvestExpired(now time.Time) {
	for _, l := range c.leases.harvest(now) {
		c.mu.Lock()
		st := c.cells[l.Key]
		if st != nil && st.status == cellLeased {
			st.history = append(st.history, Attempt{Worker: l.Worker, Outcome: "expired"})
			c.chargeTransient(st, now, fmt.Sprintf("lease expired (worker %s died or hung)", l.Worker))
		}
		c.mu.Unlock()
		c.logf("farm: lease %s expired (worker %s, cell %s)", l.Token, l.Worker, l.Cell.Label())
	}
}

// chargeTransient applies the transient-failure policy to a cell (caller
// holds c.mu): one more failure, then either terminal at the attempt cap
// or re-queued with exponential backoff and jitter.
func (c *Coordinator) chargeTransient(st *cellState, now time.Time, msg string) {
	st.failures++
	if st.failures >= c.cfg.maxAttempts() {
		st.status = cellFailed
		st.errMsg = fmt.Sprintf("%s (attempt cap %d reached)", msg, c.cfg.maxAttempts())
		if err := c.store.PutFailure(st.key, st.errMsg, false, st.failures); err != nil {
			c.logf("farm: recording failure for %s: %v", st.cell.Label(), err)
		}
		c.publishLocked(ProgressEvent{Type: "failed", Cell: st.cell.Label(), Key: KeyString(st.key), Error: st.errMsg, Attempt: st.failures})
		return
	}
	st.status = cellPending
	st.notBefore = now.Add(c.backoffFor(st.failures))
	c.publishLocked(ProgressEvent{Type: "requeue", Cell: st.cell.Label(), Key: KeyString(st.key), Error: msg, Attempt: st.failures})
}

// backoffFor computes the re-queue delay after n transient failures:
// RetryBackoff doubling per failure, capped at MaxBackoff, with ±50%
// jitter.
func (c *Coordinator) backoffFor(n int) time.Duration {
	d := c.cfg.backoff()
	for i := 1; i < n && d < c.cfg.maxBackoff(); i++ {
		d *= 2
	}
	if d > c.cfg.maxBackoff() {
		d = c.cfg.maxBackoff()
	}
	// Jitter in [d/2, 3d/2): rand here affects scheduling only, never
	// simulated results.
	return d/2 + time.Duration(rand.Int63n(int64(d)))
}

// --- Progress broadcasting ---

// subscribe registers a progress listener. Events are dropped, never
// blocked on, when a listener falls behind.
func (c *Coordinator) subscribe() (ch chan ProgressEvent, cancel func()) {
	ch = make(chan ProgressEvent, 256)
	c.mu.Lock()
	c.subs[ch] = struct{}{}
	c.mu.Unlock()
	return ch, func() {
		c.mu.Lock()
		delete(c.subs, ch)
		c.mu.Unlock()
	}
}

// publishLocked fans an event out to subscribers; caller holds c.mu.
func (c *Coordinator) publishLocked(ev ProgressEvent) {
	for ch := range c.subs {
		select {
		case ch <- ev:
		default: // slow subscriber: drop rather than stall the sweep
		}
	}
}

func (c *Coordinator) publish(ev ProgressEvent) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.publishLocked(ev)
}

// --- HTTP handlers ---

// maxBodyBytes bounds JSON request bodies; checkpoint blobs get the
// larger maxBlobBytes (a full simulator snapshot is megabytes).
const (
	maxBodyBytes = 64 << 20
	maxBlobBytes = 512 << 20
)

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	http.Error(w, fmt.Sprintf(format, args...), code)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	if err := json.NewDecoder(body).Decode(v); err != nil {
		httpError(w, http.StatusBadRequest, "malformed request: %v", err)
		return false
	}
	return true
}

// handleSweep accepts cells: new ones are journaled and queued, ones with
// a stored verified result complete instantly as cache hits, known ones
// are acknowledged without duplication.
func (c *Coordinator) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	var resp SweepResponse
	for _, cell := range req.Cells {
		if err := cell.Config.Validate(); err != nil {
			httpError(w, http.StatusBadRequest, "cell %s: %v", cell.Label(), err)
			return
		}
		key, err := cell.Key()
		if err != nil {
			httpError(w, http.StatusBadRequest, "cell %s: %v", cell.Label(), err)
			return
		}
		c.mu.Lock()
		if st, ok := c.cells[key]; ok {
			// A cell replayed from the durable store (result or terminal
			// failure) was served without re-simulation: a cache hit. A
			// cell merely queued/leased/completed this session is Known.
			if st.cacheHit {
				resp.CacheHits++
			} else {
				resp.Known++
			}
			c.mu.Unlock()
			continue
		}
		st := &cellState{cell: cell, key: key, order: len(c.order)}
		// Content-addressed dedupe: a cell already simulated — by any
		// earlier sweep over this store — is a cache hit, not a re-run.
		// Durable terminal failures count too: a deterministic wedge
		// replays identically, so its recorded outcome is the answer.
		hit := false
		if res, _ := c.store.GetResult(key); res != nil {
			st.status = cellDone
			st.result = res
			hit = true
		} else if msg, wedge, attempts, ok := c.store.GetFailure(key); ok {
			st.status = cellFailed
			st.errMsg = msg
			st.wedge = wedge
			st.failures = attempts
			hit = true
		}
		if hit {
			st.cacheHit = true
			resp.CacheHits++
			c.cells[key] = st
			c.order = append(c.order, key)
			c.publishLocked(ProgressEvent{Type: "cachehit", Cell: cell.Label(), Key: KeyString(key)})
			c.mu.Unlock()
			continue
		}
		if err := json.NewEncoder(c.journal).Encode(journalLine{Key: KeyString(key), Cell: cell}); err != nil {
			c.mu.Unlock()
			httpError(w, http.StatusInternalServerError, "journal append: %v", err)
			return
		}
		c.cells[key] = st
		c.order = append(c.order, key)
		resp.Accepted++
		c.publishLocked(ProgressEvent{Type: "queued", Cell: cell.Label(), Key: KeyString(key)})
		c.mu.Unlock()
	}
	// One fsync per submission, not per cell: the queue is durable at
	// request granularity.
	if err := c.journal.Sync(); err != nil {
		httpError(w, http.StatusInternalServerError, "journal sync: %v", err)
		return
	}
	writeJSON(w, &resp)
}

// handleLease grants the oldest ready pending cell, or tells the worker
// when to come back.
func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	now := time.Now()
	c.harvestExpired(now)
	c.mu.Lock()
	var pick *cellState
	var soonest time.Time
	pending, leased := 0, 0
	for _, key := range c.order {
		st := c.cells[key]
		switch st.status {
		case cellLeased:
			leased++
		case cellPending:
			pending++
			if now.Before(st.notBefore) {
				if soonest.IsZero() || st.notBefore.Before(soonest) {
					soonest = st.notBefore
				}
				continue
			}
			if pick == nil {
				pick = st
			}
		}
	}
	if pick == nil {
		// A coordinator that has never been given work is idle, not
		// drained: a worker fleet started ahead of the first submission
		// must keep polling, not exit.
		resp := LeaseResponse{Drained: pending == 0 && leased == 0 && len(c.cells) > 0}
		switch {
		case !soonest.IsZero():
			resp.RetryMs = max64(10, soonest.Sub(now).Milliseconds())
		case leased > 0:
			resp.RetryMs = max64(10, (c.cfg.ttl() / 4).Milliseconds())
		}
		c.mu.Unlock()
		writeJSON(w, &resp)
		return
	}
	pick.status = cellLeased
	attempt := pick.failures + 1
	l := c.leases.grant(pick.cell, pick.key, req.Worker, attempt, c.cfg.ttl(), now)
	c.publishLocked(ProgressEvent{Type: "lease", Cell: pick.cell.Label(), Key: KeyString(pick.key), Worker: req.Worker, Attempt: attempt})
	cell := pick.cell
	key := pick.key
	c.mu.Unlock()
	writeJSON(w, &LeaseResponse{
		Lease:      l.Token,
		Cell:       &cell,
		Key:        KeyString(key),
		Attempt:    attempt,
		TTLMs:      c.cfg.ttl().Milliseconds(),
		Checkpoint: c.store.HasBlob(key),
	})
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// handleHeartbeat extends a live lease; a stale token gets 409 so the
// worker abandons the zombie cell.
func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	l, ok := c.leases.extend(req.Lease, c.cfg.ttl(), time.Now())
	if !ok {
		httpError(w, http.StatusConflict, "lease %s is not live (expired and re-queued?)", req.Lease)
		return
	}
	c.publish(ProgressEvent{Type: "heartbeat", Cell: l.Cell.Label(), Key: KeyString(l.Key), Worker: l.Worker, Cycle: req.Cycle})
	w.WriteHeader(http.StatusNoContent)
}

// handlePutCheckpoint stores a mid-run checkpoint blob for a leased cell.
// Uploading also extends the lease (a checkpoint is the strongest
// possible heartbeat).
func (c *Coordinator) handlePutCheckpoint(w http.ResponseWriter, r *http.Request) {
	token := r.URL.Query().Get("lease")
	l, ok := c.leases.extend(token, c.cfg.ttl(), time.Now())
	if !ok {
		httpError(w, http.StatusConflict, "lease %s is not live", token)
		return
	}
	blob, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBlobBytes))
	if err != nil {
		httpError(w, http.StatusBadRequest, "reading blob: %v", err)
		return
	}
	if err := c.store.PutBlob(l.Key, blob); err != nil {
		// A corrupt upload (torn transfer, bit rot in flight) is
		// rejected outright; the previous good blob, if any, survives.
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	cycle, _ := caba.CheckpointCycle(blob)
	c.publish(ProgressEvent{Type: "checkpoint", Cell: l.Cell.Label(), Key: KeyString(l.Key), Worker: l.Worker, Cycle: cycle})
	w.WriteHeader(http.StatusNoContent)
}

// handleGetCheckpoint serves the leased cell's stored resume blob.
func (c *Coordinator) handleGetCheckpoint(w http.ResponseWriter, r *http.Request) {
	token := r.URL.Query().Get("lease")
	l, ok := c.leases.lookup(token)
	if !ok {
		httpError(w, http.StatusConflict, "lease %s is not live", token)
		return
	}
	blob, err := c.store.GetBlob(l.Key)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	if blob == nil {
		httpError(w, http.StatusNotFound, "no checkpoint blob for cell %s", l.Cell.Label())
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(blob)
}

// handleReport settles a lease with its cell's outcome, applying the
// failure taxonomy: verified results are stored, wedges fail fast,
// transient errors re-queue with backoff under the attempt cap, and a
// drain release re-queues immediately without charge.
func (c *Coordinator) handleReport(w http.ResponseWriter, r *http.Request) {
	var req ReportRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	l, ok := c.leases.settle(req.Lease)
	if !ok {
		// The lease expired and the cell moved on; the late report must
		// not mutate state (the worker that holds no lease holds no
		// authority). 409 tells it to drop the result.
		httpError(w, http.StatusConflict, "lease %s is not live (report discarded)", req.Lease)
		return
	}
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.cells[l.Key]
	if st == nil || st.status != cellLeased {
		httpError(w, http.StatusConflict, "cell %s is not leased", l.Cell.Label())
		return
	}
	switch {
	case req.Released:
		st.status = cellPending
		st.notBefore = now // no backoff: the worker drained, the cell is healthy
		st.history = append(st.history, Attempt{Worker: l.Worker, Outcome: "released"})
		c.publishLocked(ProgressEvent{Type: "requeue", Cell: st.cell.Label(), Key: KeyString(st.key), Worker: l.Worker, Attempt: l.Attempt})
	case req.Result != nil:
		if err := c.store.PutResult(st.key, req.Result); err != nil {
			// Failing to persist is the coordinator's problem, not the
			// cell's: put it back and let a retry land it.
			st.status = cellPending
			st.notBefore = now
			httpError(w, http.StatusInternalServerError, "storing result: %v", err)
			return
		}
		st.status = cellDone
		st.result = req.Result
		st.history = append(st.history, Attempt{Worker: l.Worker, Outcome: "ok", ResumeCycle: req.ResumeCycle})
		c.store.DeleteBlob(st.key)
		c.publishLocked(ProgressEvent{Type: "done", Cell: st.cell.Label(), Key: KeyString(st.key), Worker: l.Worker, Cycle: req.Result.Cycles, Attempt: l.Attempt})
		c.streamSeriesLocked(st, req.Result)
	case req.Wedge:
		// A wedge is a deterministic outcome of the cell's fault
		// stream: every retry replays the identical wedge, so the cell
		// fails permanently with its retry budget unspent.
		st.status = cellFailed
		st.errMsg = req.Error
		st.wedge = true
		st.failures++
		st.history = append(st.history, Attempt{Worker: l.Worker, Outcome: "wedged", Error: req.Error})
		if err := c.store.PutFailure(st.key, req.Error, true, st.failures); err != nil {
			c.logf("farm: recording wedge for %s: %v", st.cell.Label(), err)
		}
		c.store.DeleteBlob(st.key)
		c.publishLocked(ProgressEvent{Type: "failed", Cell: st.cell.Label(), Key: KeyString(st.key), Worker: l.Worker, Error: req.Error, Attempt: l.Attempt})
	default:
		st.history = append(st.history, Attempt{Worker: l.Worker, Outcome: "failed", Error: req.Error})
		c.chargeTransient(st, now, req.Error)
	}
	w.WriteHeader(http.StatusNoContent)
}

// streamSeriesLocked publishes a completed cell's metrics time-series as
// "sample" progress events (only when the cell's config enabled
// sampling); caller holds c.mu.
func (c *Coordinator) streamSeriesLocked(st *cellState, res *caba.Result) {
	if res.Series == nil || len(c.subs) == 0 {
		return
	}
	for i := 0; i < res.Series.Len(); i++ {
		s := res.Series.At(i)
		c.publishLocked(ProgressEvent{Type: "sample", Cell: st.cell.Label(), Key: KeyString(st.key), Sample: &s})
	}
}

// handleStatus reports the sweep's state; ?wait_ms=N long-polls until
// drained or the wait elapses. ?results=0 omits the (possibly large)
// result payloads.
func (c *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	var waitMs int64
	fmt.Sscanf(r.URL.Query().Get("wait_ms"), "%d", &waitMs)
	includeResults := r.URL.Query().Get("results") != "0"
	deadline := time.Now().Add(time.Duration(waitMs) * time.Millisecond)
	for {
		resp, drained := c.statusSnapshot(includeResults)
		if drained || waitMs <= 0 || time.Now().After(deadline) || r.Context().Err() != nil {
			writeJSON(w, resp)
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-time.After(25 * time.Millisecond):
		}
		c.harvestExpired(time.Now())
	}
}

// statusSnapshot assembles a StatusResponse under the lock.
func (c *Coordinator) statusSnapshot(includeResults bool) (*StatusResponse, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	resp := &StatusResponse{
		Quarantined: int(c.store.Quarantined()),
		Attempts:    make(map[string][]Attempt),
	}
	if includeResults {
		resp.Results = make(map[string]*caba.Result)
	}
	for _, key := range c.order {
		st := c.cells[key]
		ks := KeyString(key)
		switch st.status {
		case cellPending:
			resp.Pending++
		case cellLeased:
			resp.Leased++
		case cellDone:
			resp.Done++
			if st.cacheHit {
				resp.CacheHits++
			}
			if includeResults {
				resp.Results[ks] = st.result
			}
		case cellFailed:
			resp.Failed++
			if st.cacheHit {
				resp.CacheHits++
			}
			resp.Failures = append(resp.Failures, Failure{
				Cell: st.cell, Key: ks, Error: st.errMsg, Wedge: st.wedge,
				Attempts: st.failures,
			})
		}
		if len(st.history) > 0 {
			resp.Attempts[ks] = append([]Attempt(nil), st.history...)
		}
	}
	resp.Drained = resp.Pending == 0 && resp.Leased == 0
	return resp, resp.Drained
}

// handleProgress streams live progress events as JSON Lines until the
// client disconnects. Slow clients lose events rather than stalling the
// sweep.
func (c *Coordinator) handleProgress(w http.ResponseWriter, r *http.Request) {
	ch, cancel := c.subscribe()
	defer cancel()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	if flusher != nil {
		flusher.Flush()
	}
	enc := json.NewEncoder(w)
	for {
		select {
		case <-r.Context().Done():
			return
		case ev := <-ch:
			if err := enc.Encode(ev); err != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
	}
}
