package farm

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	caba "github.com/caba-sim/caba"
)

// CoordinatorConfig tunes the coordinator's robustness policy. The zero
// value of every field selects a sensible default.
type CoordinatorConfig struct {
	// Dir roots the durable state: the content-addressed result store,
	// the checkpoint blob store and the submission journal. A
	// coordinator restarted over the same Dir resumes the sweep —
	// journaled cells with a stored result are complete, the rest are
	// re-queued. Required.
	Dir string
	// LeaseTTL is how long a worker may go without heartbeating before
	// its cell is re-queued (default 15s).
	LeaseTTL time.Duration
	// MaxAttempts caps executions per cell: a cell whose transient
	// failures (including lease expiries) reach the cap fails
	// permanently (default 4). Deterministic wedges ignore the cap —
	// they fail on the first attempt and are never retried.
	MaxAttempts int
	// RetryBackoff is the re-queue delay after the first transient
	// failure, doubling per failure with ±50% jitter so a thundering
	// herd of failed cells does not re-land in lockstep (default 250ms).
	RetryBackoff time.Duration
	// MaxBackoff caps the exponential backoff (default 30s).
	MaxBackoff time.Duration
	// MaxQueue bounds the live queue (pending + leased cells). A
	// submission that would exceed it is rejected with HTTP 429 and a
	// Retry-After hint; retrying the identical request is safe because
	// admission is idempotent by content address (default 4096).
	MaxQueue int
	// ClientQuota bounds one client's share of the live queue, so a
	// single runaway submitter cannot starve everyone else (default:
	// MaxQueue, i.e. no separate per-client bound).
	ClientQuota int
	// PoisonThreshold is the poison-cell circuit breaker: a cell
	// presumed to have killed this many distinct workers (lease expiry
	// or resource-budget abort) is quarantined with a durable sealed
	// record and never leased again (default 3).
	PoisonThreshold int
	// CompactMinLines triggers journal compaction once this many dead
	// lines (events beyond one per known cell) have accumulated, keeping
	// restart replay O(cells) instead of O(history) (default 256).
	CompactMinLines int
	// MaxLongPolls bounds concurrent /status long-polls; excess polls
	// are shed — served as immediate snapshots — so status watchers can
	// never pin the coordinator under overload (default 64).
	MaxLongPolls int
	// MinDiskFree, when positive, is the store's disk-headroom floor in
	// bytes: checkpoint uploads below it are refused with HTTP 507 and
	// /healthz degrades. Losing checkpoint granularity is recoverable; a
	// full store volume is not.
	MinDiskFree int64
	// Now overrides the clock for lease and backoff decisions (tests
	// exercising TTL boundaries and clock skew). Nil means time.Now.
	Now func() time.Time
	// Logf receives coordinator log lines (nil = silent).
	Logf func(format string, args ...any)
}

func (c *CoordinatorConfig) ttl() time.Duration {
	if c.LeaseTTL <= 0 {
		return 15 * time.Second
	}
	return c.LeaseTTL
}

func (c *CoordinatorConfig) maxAttempts() int {
	if c.MaxAttempts <= 0 {
		return 4
	}
	return c.MaxAttempts
}

func (c *CoordinatorConfig) backoff() time.Duration {
	if c.RetryBackoff <= 0 {
		return 250 * time.Millisecond
	}
	return c.RetryBackoff
}

func (c *CoordinatorConfig) maxBackoff() time.Duration {
	if c.MaxBackoff <= 0 {
		return 30 * time.Second
	}
	return c.MaxBackoff
}

func (c *CoordinatorConfig) maxQueue() int {
	if c.MaxQueue <= 0 {
		return 4096
	}
	return c.MaxQueue
}

func (c *CoordinatorConfig) clientQuota() int {
	if c.ClientQuota <= 0 {
		return c.maxQueue()
	}
	return c.ClientQuota
}

func (c *CoordinatorConfig) poisonThreshold() int {
	if c.PoisonThreshold <= 0 {
		return 3
	}
	return c.PoisonThreshold
}

func (c *CoordinatorConfig) compactMinLines() int {
	if c.CompactMinLines <= 0 {
		return 256
	}
	return c.CompactMinLines
}

func (c *CoordinatorConfig) maxLongPolls() int {
	if c.MaxLongPolls <= 0 {
		return 64
	}
	return c.MaxLongPolls
}

// cellStatus is a queued cell's lifecycle state.
type cellStatus uint8

const (
	cellPending cellStatus = iota // waiting for a lease (possibly backed off)
	cellLeased                    // held by a worker
	cellDone                      // verified result stored
	cellFailed                    // terminal failure (wedge, poison or attempt cap)
)

// cellState is the coordinator's view of one queued cell.
type cellState struct {
	cell      Cell
	key       uint64
	status    cellStatus
	failures  int       // transient failures charged (incl. lease expiries)
	notBefore time.Time // backoff gate while pending
	errMsg    string
	wedge     bool
	poison    bool // quarantined by the poison-cell circuit breaker
	cacheHit  bool
	client    string   // submitting client (admission attribution)
	victims   []string // distinct workers presumed killed by this cell
	result    *caba.Result
	history   []Attempt
	order     int // submission order, for stable dispatch
}

// addVictim records worker in the cell's distinct-victim set, reporting
// whether it was new.
func (st *cellState) addVictim(worker string) bool {
	for _, v := range st.victims {
		if v == worker {
			return false
		}
	}
	st.victims = append(st.victims, worker)
	return true
}

// hasVictim reports whether worker is already in the victim set (the
// lease dispatcher prefers not to feed a cell back to a worker it is
// presumed to have killed).
func (st *cellState) hasVictim(worker string) bool {
	for _, v := range st.victims {
		if v == worker {
			return true
		}
	}
	return false
}

// Coordinator is the sweep service: durable queue, lease manager, failure
// classifier, result cache, admission controller and progress
// broadcaster, exposed over HTTP via Handler.
type Coordinator struct {
	cfg     CoordinatorConfig
	store   *Store
	leases  *leaseTable
	mux     *http.ServeMux
	handler http.Handler

	mu           sync.Mutex
	cells        map[uint64]*cellState
	order        []uint64
	journal      *os.File
	journalLines int // lines in the journal file (compaction trigger)
	subs         map[chan ProgressEvent]struct{}
	clientLive   map[string]int // live (pending+leased) cells per client
	draining     bool           // Quiesce called: no new leases or admissions
	pendingN     int
	leasedN      int
	doneN        int
	failedN      int
	poisonedN    int

	compactions atomic.Uint64
	rejected429 atomic.Uint64
	shedPolls   atomic.Uint64
	longPolls   atomic.Int64 // currently parked /status long-polls

	janitorStop chan struct{}
	janitorDone chan struct{}
	closeOnce   sync.Once
}

// NewCoordinator opens (or resumes) a coordinator over cfg.Dir: the
// submission journal is replayed (torn tail truncated, interrupted
// compaction rolled back), journaled cells whose sealed outcome is
// already in the store are terminal, replayed victim counts at the
// poison threshold quarantine immediately, and the rest are re-queued.
// Call Close when done.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("farm: coordinator needs a state directory")
	}
	store, err := OpenStore(cfg.Dir)
	if err != nil {
		return nil, err
	}
	store.minFree = cfg.MinDiskFree
	c := &Coordinator{
		cfg:         cfg,
		store:       store,
		leases:      newLeaseTable(),
		cells:       make(map[uint64]*cellState),
		subs:        make(map[chan ProgressEvent]struct{}),
		clientLive:  make(map[string]int),
		janitorStop: make(chan struct{}),
		janitorDone: make(chan struct{}),
	}
	if err := c.openJournal(); err != nil {
		return nil, err
	}
	// A coordinator that died between journaling a cell's Nth victim and
	// sealing the poison record re-trips the breaker here.
	c.mu.Lock()
	for _, key := range c.order {
		st := c.cells[key]
		if st.status == cellPending && len(st.victims) >= c.cfg.poisonThreshold() {
			c.poisonLocked(st, "victim count at threshold on replay")
		}
	}
	c.mu.Unlock()
	c.mux = http.NewServeMux()
	c.mux.HandleFunc("POST /sweep", c.handleSweep)
	c.mux.HandleFunc("POST /lease", c.handleLease)
	c.mux.HandleFunc("POST /heartbeat", c.handleHeartbeat)
	c.mux.HandleFunc("POST /checkpoint", c.handlePutCheckpoint)
	c.mux.HandleFunc("GET /checkpoint", c.handleGetCheckpoint)
	c.mux.HandleFunc("POST /report", c.handleReport)
	c.mux.HandleFunc("GET /status", c.handleStatus)
	c.mux.HandleFunc("GET /healthz", c.handleHealth)
	c.mux.HandleFunc("GET /progress", c.handleProgress)
	// Every response advertises the current health state so clients can
	// surface degradation without polling /healthz.
	c.handler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Farm-Health", c.healthState())
		c.mux.ServeHTTP(w, r)
	})
	c.maybeCompact()
	go c.janitor()
	return c, nil
}

// now returns the configured clock's time (real time by default).
func (c *Coordinator) now() time.Time {
	if c.cfg.Now != nil {
		return c.cfg.Now()
	}
	return time.Now()
}

// Close stops the lease janitor and fsyncs and closes the journal.
// In-memory state is discarded; the durable state in Dir survives for
// the next open.
func (c *Coordinator) Close() {
	c.closeOnce.Do(func() {
		close(c.janitorStop)
		<-c.janitorDone
		c.mu.Lock()
		defer c.mu.Unlock()
		c.journal.Sync()
		c.journal.Close()
	})
}

// Quiesce puts the coordinator into draining mode ahead of shutdown: no
// new leases are granted, submissions are refused with 503 +
// Retry-After, /healthz reports "draining", and the journal is flushed.
// In-flight leases may still heartbeat and report — a computed result in
// hand is always worth storing.
func (c *Coordinator) Quiesce() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.draining = true
	c.journal.Sync()
}

// Handler returns the coordinator's HTTP surface.
func (c *Coordinator) Handler() http.Handler { return c.handler }

// Store exposes the underlying content-addressed store (observability
// and tests).
func (c *Coordinator) Store() *Store { return c.store }

func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// addCellLocked registers a new cell and updates the aggregate counters;
// caller holds c.mu (or is the single-threaded open path).
func (c *Coordinator) addCellLocked(st *cellState) {
	st.order = len(c.order)
	c.cells[st.key] = st
	c.order = append(c.order, st.key)
	switch st.status {
	case cellPending, cellLeased:
		if st.status == cellPending {
			c.pendingN++
		} else {
			c.leasedN++
		}
		c.clientLive[st.client]++
	case cellDone:
		c.doneN++
	case cellFailed:
		c.failedN++
		if st.poison {
			c.poisonedN++
		}
	}
}

// transitionLocked moves a cell between lifecycle states, keeping the
// aggregate and per-client counters exact; caller holds c.mu. A cell
// transitioning to cellFailed with st.poison already set counts as
// poisoned.
func (c *Coordinator) transitionLocked(st *cellState, to cellStatus) {
	if st.status == to {
		return
	}
	switch st.status {
	case cellPending:
		c.pendingN--
	case cellLeased:
		c.leasedN--
	case cellDone:
		c.doneN--
	case cellFailed:
		c.failedN--
		if st.poison {
			c.poisonedN--
		}
	}
	wasLive := st.status == cellPending || st.status == cellLeased
	st.status = to
	switch to {
	case cellPending:
		c.pendingN++
	case cellLeased:
		c.leasedN++
	case cellDone:
		c.doneN++
	case cellFailed:
		c.failedN++
		if st.poison {
			c.poisonedN++
		}
	}
	isLive := to == cellPending || to == cellLeased
	if wasLive && !isLive {
		if c.clientLive[st.client]--; c.clientLive[st.client] <= 0 {
			delete(c.clientLive, st.client)
		}
	}
	if !wasLive && isLive {
		c.clientLive[st.client]++
	}
}

// janitor periodically harvests expired leases (so dead workers surface
// as re-queued cells even when no request traffic arrives) and compacts
// the journal when enough dead lines accumulate.
func (c *Coordinator) janitor() {
	defer close(c.janitorDone)
	tick := c.cfg.ttl() / 4
	if tick < 10*time.Millisecond {
		tick = 10 * time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-c.janitorStop:
			return
		case <-t.C:
			c.harvestExpired(c.now())
			c.maybeCompact()
		}
	}
}

// harvestExpired re-queues every cell whose lease deadline has passed,
// charging the expiry as a transient failure and recording the worker as
// a presumed victim of the cell: a worker that died or hung mid-cell is
// indistinguishable from one the cell killed, and enough distinct
// victims trip the poison breaker.
func (c *Coordinator) harvestExpired(now time.Time) {
	for _, l := range c.leases.harvest(now) {
		c.mu.Lock()
		st := c.cells[l.Key]
		if st != nil && st.status == cellLeased {
			st.history = append(st.history, Attempt{Worker: l.Worker, Outcome: "expired"})
			msg := fmt.Sprintf("lease expired (worker %s died or hung)", l.Worker)
			if !c.recordVictimLocked(st, l.Worker, msg) {
				c.chargeTransient(st, now, msg)
			}
		}
		c.mu.Unlock()
		c.logf("farm: lease %s expired (worker %s, cell %s)", l.Token, l.Worker, l.Cell.Label())
	}
}

// recordVictimLocked journals worker as a presumed victim of st's cell
// and trips the poison-cell breaker once PoisonThreshold distinct
// workers have fallen to it. It reports whether the cell was quarantined
// (in which case the caller must not also charge a transient failure);
// callers hold c.mu.
func (c *Coordinator) recordVictimLocked(st *cellState, worker, reason string) bool {
	if !st.addVictim(worker) {
		return false
	}
	// Durable before decisive: the victim line makes the breaker's
	// memory survive coordinator restarts.
	if err := c.appendJournalLocked(journalLine{Key: KeyString(st.key), Victim: worker}); err != nil {
		c.logf("farm: journaling victim for %s: %v", st.cell.Label(), err)
	} else {
		c.journal.Sync()
	}
	if len(st.victims) < c.cfg.poisonThreshold() {
		return false
	}
	c.poisonLocked(st, reason)
	return true
}

// poisonLocked quarantines a cell under the poison-cell circuit
// breaker: terminal, sealed into the store as a .poison record, never
// leased again. Distinct from a wedge — a wedge is the cell's own
// deterministic failure; poison is the cell's presumed effect on the
// workers that ran it. Caller holds c.mu.
func (c *Coordinator) poisonLocked(st *cellState, reason string) {
	st.failures++
	st.poison = true
	st.wedge = false
	st.errMsg = fmt.Sprintf("poisoned: presumed to have killed %d distinct workers (%s): %s",
		len(st.victims), strings.Join(st.victims, ", "), reason)
	c.transitionLocked(st, cellFailed)
	if err := c.store.PutPoison(st.key, st.errMsg, st.victims, st.failures); err != nil {
		c.logf("farm: recording poison for %s: %v", st.cell.Label(), err)
	}
	c.store.DeleteBlob(st.key)
	c.publishLocked(ProgressEvent{Type: "poisoned", Cell: st.cell.Label(), Key: KeyString(st.key), Error: st.errMsg, Attempt: st.failures})
	c.logf("farm: cell %s poisoned: %s", st.cell.Label(), st.errMsg)
}

// chargeTransient applies the transient-failure policy to a cell (caller
// holds c.mu): one more failure, then either terminal at the attempt cap
// or re-queued with exponential backoff and jitter.
func (c *Coordinator) chargeTransient(st *cellState, now time.Time, msg string) {
	st.failures++
	if st.failures >= c.cfg.maxAttempts() {
		st.errMsg = fmt.Sprintf("%s (attempt cap %d reached)", msg, c.cfg.maxAttempts())
		c.transitionLocked(st, cellFailed)
		if err := c.store.PutFailure(st.key, st.errMsg, false, st.failures); err != nil {
			c.logf("farm: recording failure for %s: %v", st.cell.Label(), err)
		}
		c.publishLocked(ProgressEvent{Type: "failed", Cell: st.cell.Label(), Key: KeyString(st.key), Error: st.errMsg, Attempt: st.failures})
		return
	}
	c.transitionLocked(st, cellPending)
	st.notBefore = now.Add(c.backoffFor(st.failures))
	c.publishLocked(ProgressEvent{Type: "requeue", Cell: st.cell.Label(), Key: KeyString(st.key), Error: msg, Attempt: st.failures})
}

// backoffFor computes the re-queue delay after n transient failures:
// RetryBackoff doubling per failure, capped at MaxBackoff, with ±50%
// jitter.
func (c *Coordinator) backoffFor(n int) time.Duration {
	d := c.cfg.backoff()
	for i := 1; i < n && d < c.cfg.maxBackoff(); i++ {
		d *= 2
	}
	if d > c.cfg.maxBackoff() {
		d = c.cfg.maxBackoff()
	}
	// Jitter in [d/2, 3d/2): rand here affects scheduling only, never
	// simulated results.
	return d/2 + time.Duration(rand.Int63n(int64(d)))
}

// --- Health and admission ---

// healthState classifies the coordinator's condition for /healthz and
// the X-Farm-Health response header: "draining" during Quiesce,
// "saturated" at a full live queue, "degraded" at ≥80% occupancy or low
// store disk, else "ok".
func (c *Coordinator) healthState() string {
	c.mu.Lock()
	draining := c.draining
	live := c.pendingN + c.leasedN
	c.mu.Unlock()
	mq := c.cfg.maxQueue()
	switch {
	case draining:
		return "draining"
	case live >= mq:
		return "saturated"
	case live*5 >= mq*4:
		return "degraded"
	case c.cfg.MinDiskFree > 0:
		if free := diskFree(c.cfg.Dir); free >= 0 && free < c.cfg.MinDiskFree {
			return "degraded"
		}
	}
	return "ok"
}

// retryAfterSecs is the Retry-After hint on 429/503 responses: a quarter
// TTL is long enough for the janitor to have harvested something.
func (c *Coordinator) retryAfterSecs() int {
	s := int((c.cfg.ttl() / 4).Seconds())
	if s < 1 {
		s = 1
	}
	return s
}

// handleHealth serves the coordinator's self-assessment. Saturated and
// draining states are carried on HTTP 503 so dumb load-balancer probes
// read them without parsing the body.
func (c *Coordinator) handleHealth(w http.ResponseWriter, r *http.Request) {
	state := c.healthState()
	c.mu.Lock()
	resp := HealthResponse{
		State:         state,
		QueueLive:     c.pendingN + c.leasedN,
		QueueCap:      c.cfg.maxQueue(),
		Pending:       c.pendingN,
		Leased:        c.leasedN,
		Done:          c.doneN,
		Failed:        c.failedN,
		Poisoned:      c.poisonedN,
		Compactions:   c.compactions.Load(),
		Rejected429:   c.rejected429.Load(),
		ShedLongPolls: c.shedPolls.Load(),
		Quarantined:   c.store.Quarantined(),
		DiskFreeBytes: diskFree(c.cfg.Dir),
	}
	c.mu.Unlock()
	code := http.StatusOK
	if state == "saturated" || state == "draining" {
		code = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(&resp)
}

// --- Progress broadcasting ---

// subscribe registers a progress listener. Events are dropped, never
// blocked on, when a listener falls behind.
func (c *Coordinator) subscribe() (ch chan ProgressEvent, cancel func()) {
	ch = make(chan ProgressEvent, 256)
	c.mu.Lock()
	c.subs[ch] = struct{}{}
	c.mu.Unlock()
	return ch, func() {
		c.mu.Lock()
		delete(c.subs, ch)
		c.mu.Unlock()
	}
}

// publishLocked fans an event out to subscribers; caller holds c.mu.
func (c *Coordinator) publishLocked(ev ProgressEvent) {
	for ch := range c.subs {
		select {
		case ch <- ev:
		default: // slow subscriber: drop rather than stall the sweep
		}
	}
}

func (c *Coordinator) publish(ev ProgressEvent) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.publishLocked(ev)
}

// --- HTTP handlers ---

// maxBodyBytes bounds JSON request bodies; checkpoint blobs get the
// larger maxBlobBytes (a full simulator snapshot is megabytes).
const (
	maxBodyBytes = 64 << 20
	maxBlobBytes = 512 << 20
)

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	http.Error(w, fmt.Sprintf(format, args...), code)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	if err := json.NewDecoder(body).Decode(v); err != nil {
		httpError(w, http.StatusBadRequest, "malformed request: %v", err)
		return false
	}
	return true
}

// handleSweep accepts cells under admission control: new ones are
// journaled and queued while the live queue and the client's quota have
// room, ones with a stored sealed outcome complete instantly as cache
// hits, known ones are acknowledged without duplication. A submission
// that hits either bound stops there with 429 + Retry-After; everything
// accepted before the bound stays accepted (durably), and retrying the
// identical request is safe — accepted cells come back as Known.
func (c *Coordinator) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	client := req.Client
	if client == "" {
		client = "anonymous"
	}
	var resp SweepResponse
	for _, cell := range req.Cells {
		if err := cell.Config.Validate(); err != nil {
			httpError(w, http.StatusBadRequest, "cell %s: %v", cell.Label(), err)
			return
		}
		key, err := cell.Key()
		if err != nil {
			httpError(w, http.StatusBadRequest, "cell %s: %v", cell.Label(), err)
			return
		}
		c.mu.Lock()
		if c.draining {
			c.mu.Unlock()
			c.journal.Sync()
			w.Header().Set("Retry-After", strconv.Itoa(c.retryAfterSecs()))
			httpError(w, http.StatusServiceUnavailable, "coordinator is draining for shutdown; resubmit after restart (accepted cells are journaled)")
			return
		}
		if st, ok := c.cells[key]; ok {
			// A cell replayed from the durable store (result or terminal
			// failure) was served without re-simulation: a cache hit. A
			// cell merely queued/leased/completed this session is Known.
			if st.cacheHit {
				resp.CacheHits++
			} else {
				resp.Known++
			}
			c.mu.Unlock()
			continue
		}
		st := &cellState{cell: cell, key: key, client: client}
		// Content-addressed dedupe: a cell already simulated — by any
		// earlier sweep over this store — is a cache hit, not a re-run.
		// Durable terminal outcomes count too: a deterministic wedge
		// replays identically and a poisoned cell must never lease, so
		// the recorded outcome is the answer.
		hit := false
		if msg, victims, attempts, ok := c.store.GetPoison(key); ok {
			st.poison = true
			st.errMsg = msg
			st.victims = victims
			st.failures = attempts
			st.status = cellFailed
			hit = true
		} else if res, _ := c.store.GetResult(key); res != nil {
			st.status = cellDone
			st.result = res
			hit = true
		} else if msg, wedge, attempts, ok := c.store.GetFailure(key); ok {
			st.status = cellFailed
			st.errMsg = msg
			st.wedge = wedge
			st.failures = attempts
			hit = true
		}
		if hit {
			st.cacheHit = true
			resp.CacheHits++
			c.addCellLocked(st)
			c.publishLocked(ProgressEvent{Type: "cachehit", Cell: cell.Label(), Key: KeyString(key)})
			c.mu.Unlock()
			continue
		}
		// Admission control: the live queue and the client's share of it
		// are both bounded. Rejection is safe to retry verbatim — the
		// cells accepted above are already journaled and will dedupe.
		if live := c.pendingN + c.leasedN; live >= c.cfg.maxQueue() {
			c.rejected429.Add(1)
			c.mu.Unlock()
			c.journal.Sync()
			w.Header().Set("Retry-After", strconv.Itoa(c.retryAfterSecs()))
			httpError(w, http.StatusTooManyRequests,
				"live queue full (%d cells, cap %d); retry the submission later — already-accepted cells deduplicate", live, c.cfg.maxQueue())
			return
		}
		if used := c.clientLive[client]; used >= c.cfg.clientQuota() {
			c.rejected429.Add(1)
			c.mu.Unlock()
			c.journal.Sync()
			w.Header().Set("Retry-After", strconv.Itoa(c.retryAfterSecs()))
			httpError(w, http.StatusTooManyRequests,
				"client %q is at its live-cell quota (%d of %d); retry as cells complete", client, used, c.cfg.clientQuota())
			return
		}
		if err := c.appendJournalLocked(journalLine{Key: KeyString(key), Cell: &cell, Client: client}); err != nil {
			c.mu.Unlock()
			httpError(w, http.StatusInternalServerError, "journal append: %v", err)
			return
		}
		c.addCellLocked(st)
		resp.Accepted++
		c.publishLocked(ProgressEvent{Type: "queued", Cell: cell.Label(), Key: KeyString(key)})
		c.mu.Unlock()
	}
	// One fsync per submission, not per cell: the queue is durable at
	// request granularity.
	if err := c.journal.Sync(); err != nil {
		httpError(w, http.StatusInternalServerError, "journal sync: %v", err)
		return
	}
	writeJSON(w, &resp)
}

// handleLease grants the oldest ready pending cell, or tells the worker
// when to come back. Cells that already count the requesting worker
// among their presumed victims are passed over in favor of any other
// ready cell — but still granted when they are the only work available,
// so a small fleet cannot livelock against its own victim lists. A
// draining coordinator grants nothing.
func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	now := c.now()
	c.harvestExpired(now)
	c.mu.Lock()
	if c.draining {
		c.mu.Unlock()
		writeJSON(w, &LeaseResponse{RetryMs: max64(10, (c.cfg.ttl() / 2).Milliseconds())})
		return
	}
	var pick, victimFallback *cellState
	var soonest time.Time
	for _, key := range c.order {
		st := c.cells[key]
		if st.status != cellPending {
			continue
		}
		if now.Before(st.notBefore) {
			if soonest.IsZero() || st.notBefore.Before(soonest) {
				soonest = st.notBefore
			}
			continue
		}
		if st.hasVictim(req.Worker) {
			if victimFallback == nil {
				victimFallback = st
			}
			continue
		}
		pick = st
		break
	}
	if pick == nil {
		pick = victimFallback
	}
	if pick == nil {
		// A coordinator that has never been given work is idle, not
		// drained: a worker fleet started ahead of the first submission
		// must keep polling, not exit.
		resp := LeaseResponse{Drained: c.pendingN == 0 && c.leasedN == 0 && len(c.cells) > 0}
		switch {
		case !soonest.IsZero():
			resp.RetryMs = max64(10, soonest.Sub(now).Milliseconds())
		case c.leasedN > 0:
			resp.RetryMs = max64(10, (c.cfg.ttl() / 4).Milliseconds())
		}
		c.mu.Unlock()
		writeJSON(w, &resp)
		return
	}
	c.transitionLocked(pick, cellLeased)
	attempt := pick.failures + 1
	l := c.leases.grant(pick.cell, pick.key, req.Worker, attempt, c.cfg.ttl(), now)
	c.publishLocked(ProgressEvent{Type: "lease", Cell: pick.cell.Label(), Key: KeyString(pick.key), Worker: req.Worker, Attempt: attempt})
	cell := pick.cell
	key := pick.key
	c.mu.Unlock()
	writeJSON(w, &LeaseResponse{
		Lease:      l.Token,
		Cell:       &cell,
		Key:        KeyString(key),
		Attempt:    attempt,
		TTLMs:      c.cfg.ttl().Milliseconds(),
		Checkpoint: c.store.HasBlob(key),
	})
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// handleHeartbeat extends a live lease; a stale token gets 409 so the
// worker abandons the zombie cell. Expired leases are harvested first,
// making the TTL boundary exact: a heartbeat arriving at precisely the
// deadline still extends (harvest evicts strictly after it), one
// arriving any later finds the lease gone.
func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	now := c.now()
	c.harvestExpired(now)
	l, ok := c.leases.extend(req.Lease, c.cfg.ttl(), now)
	if !ok {
		httpError(w, http.StatusConflict, "lease %s is not live (expired and re-queued?)", req.Lease)
		return
	}
	c.publish(ProgressEvent{Type: "heartbeat", Cell: l.Cell.Label(), Key: KeyString(l.Key), Worker: l.Worker, Cycle: req.Cycle})
	w.WriteHeader(http.StatusNoContent)
}

// handlePutCheckpoint stores a mid-run checkpoint blob for a leased cell.
// Uploading also extends the lease (a checkpoint is the strongest
// possible heartbeat). An upload refused by the store's disk-headroom
// preflight gets 507: the worker keeps running and simply loses this
// checkpoint's granularity.
func (c *Coordinator) handlePutCheckpoint(w http.ResponseWriter, r *http.Request) {
	token := r.URL.Query().Get("lease")
	l, ok := c.leases.extend(token, c.cfg.ttl(), c.now())
	if !ok {
		httpError(w, http.StatusConflict, "lease %s is not live", token)
		return
	}
	blob, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBlobBytes))
	if err != nil {
		httpError(w, http.StatusBadRequest, "reading blob: %v", err)
		return
	}
	if err := c.store.PutBlob(l.Key, blob); err != nil {
		if errors.Is(err, errInsufficientStorage) {
			httpError(w, http.StatusInsufficientStorage, "%v", err)
			return
		}
		// A corrupt upload (torn transfer, bit rot in flight) is
		// rejected outright; the previous good blob, if any, survives.
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	cycle, _ := caba.CheckpointCycle(blob)
	c.publish(ProgressEvent{Type: "checkpoint", Cell: l.Cell.Label(), Key: KeyString(l.Key), Worker: l.Worker, Cycle: cycle})
	w.WriteHeader(http.StatusNoContent)
}

// handleGetCheckpoint serves the leased cell's stored resume blob.
func (c *Coordinator) handleGetCheckpoint(w http.ResponseWriter, r *http.Request) {
	token := r.URL.Query().Get("lease")
	l, ok := c.leases.lookup(token)
	if !ok {
		httpError(w, http.StatusConflict, "lease %s is not live", token)
		return
	}
	blob, err := c.store.GetBlob(l.Key)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	if blob == nil {
		httpError(w, http.StatusNotFound, "no checkpoint blob for cell %s", l.Cell.Label())
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(blob)
}

// handleReport settles a lease with its cell's outcome, applying the
// failure taxonomy: verified results are stored, wedges fail fast,
// resource-exhausted failures charge a transient attempt and feed the
// poison breaker, other transient errors re-queue with backoff under the
// attempt cap, and a drain release re-queues immediately without charge.
func (c *Coordinator) handleReport(w http.ResponseWriter, r *http.Request) {
	var req ReportRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	l, ok := c.leases.settle(req.Lease)
	if !ok {
		// The lease expired and the cell moved on; the late report must
		// not mutate state (the worker that holds no lease holds no
		// authority). 409 tells it to drop the result. A double release
		// of the same token lands here too: the first settle consumed it.
		httpError(w, http.StatusConflict, "lease %s is not live (report discarded)", req.Lease)
		return
	}
	now := c.now()
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.cells[l.Key]
	if st == nil || st.status != cellLeased {
		httpError(w, http.StatusConflict, "cell %s is not leased", l.Cell.Label())
		return
	}
	switch {
	case req.Released:
		c.transitionLocked(st, cellPending)
		st.notBefore = now // no backoff: the worker drained, the cell is healthy
		st.history = append(st.history, Attempt{Worker: l.Worker, Outcome: "released"})
		c.publishLocked(ProgressEvent{Type: "requeue", Cell: st.cell.Label(), Key: KeyString(st.key), Worker: l.Worker, Attempt: l.Attempt})
	case req.Result != nil:
		if err := c.store.PutResult(st.key, req.Result); err != nil {
			// Failing to persist is the coordinator's problem, not the
			// cell's: put it back and let a retry land it.
			c.transitionLocked(st, cellPending)
			st.notBefore = now
			httpError(w, http.StatusInternalServerError, "storing result: %v", err)
			return
		}
		c.transitionLocked(st, cellDone)
		st.result = req.Result
		st.history = append(st.history, Attempt{Worker: l.Worker, Outcome: "ok", ResumeCycle: req.ResumeCycle})
		c.store.DeleteBlob(st.key)
		c.publishLocked(ProgressEvent{Type: "done", Cell: st.cell.Label(), Key: KeyString(st.key), Worker: l.Worker, Cycle: req.Result.Cycles, Attempt: l.Attempt})
		c.streamSeriesLocked(st, req.Result)
	case req.Wedge:
		// A wedge is a deterministic outcome of the cell's fault
		// stream: every retry replays the identical wedge, so the cell
		// fails permanently with its retry budget unspent.
		st.errMsg = req.Error
		st.wedge = true
		st.failures++
		c.transitionLocked(st, cellFailed)
		st.history = append(st.history, Attempt{Worker: l.Worker, Outcome: "wedged", Error: req.Error})
		if err := c.store.PutFailure(st.key, req.Error, true, st.failures); err != nil {
			c.logf("farm: recording wedge for %s: %v", st.cell.Label(), err)
		}
		c.store.DeleteBlob(st.key)
		c.publishLocked(ProgressEvent{Type: "failed", Cell: st.cell.Label(), Key: KeyString(st.key), Worker: l.Worker, Error: req.Error, Attempt: l.Attempt})
	case req.Resource != "":
		// The worker's own budget watchdog killed the cell. The worker
		// survived to tell us, but the cell is still a presumed killer:
		// it exhausted one worker's budget and will likely exhaust the
		// next identical one's too, unless placement differs — hence
		// victim tracking plus transient retry preferring other workers.
		msg := fmt.Sprintf("resource exhausted (%s): %s", req.Resource, req.Error)
		st.history = append(st.history, Attempt{Worker: l.Worker, Outcome: "resource", Error: msg})
		if !c.recordVictimLocked(st, l.Worker, msg) {
			c.chargeTransient(st, now, msg)
		}
	default:
		st.history = append(st.history, Attempt{Worker: l.Worker, Outcome: "failed", Error: req.Error})
		c.chargeTransient(st, now, req.Error)
	}
	w.WriteHeader(http.StatusNoContent)
}

// streamSeriesLocked publishes a completed cell's metrics time-series as
// "sample" progress events (only when the cell's config enabled
// sampling); caller holds c.mu.
func (c *Coordinator) streamSeriesLocked(st *cellState, res *caba.Result) {
	if res.Series == nil || len(c.subs) == 0 {
		return
	}
	for i := 0; i < res.Series.Len(); i++ {
		s := res.Series.At(i)
		c.publishLocked(ProgressEvent{Type: "sample", Cell: st.cell.Label(), Key: KeyString(st.key), Sample: &s})
	}
}

// handleStatus reports the sweep's state; ?wait_ms=N long-polls until
// drained or the wait elapses. ?results=0 omits the (possibly large)
// result payloads. Long-polls are shed — served as one immediate
// snapshot with X-Farm-Shed set — when too many are already parked or
// the coordinator is not healthy, so status watchers can never pin a
// coordinator that is struggling.
func (c *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	var waitMs int64
	fmt.Sscanf(r.URL.Query().Get("wait_ms"), "%d", &waitMs)
	includeResults := r.URL.Query().Get("results") != "0"
	if waitMs > 0 {
		if n := c.longPolls.Add(1); int(n) > c.cfg.maxLongPolls() || c.healthState() != "ok" {
			c.longPolls.Add(-1)
			c.shedPolls.Add(1)
			w.Header().Set("X-Farm-Shed", "1")
			waitMs = 0
		} else {
			defer c.longPolls.Add(-1)
		}
	}
	deadline := time.Now().Add(time.Duration(waitMs) * time.Millisecond)
	for {
		resp, drained := c.statusSnapshot(includeResults)
		if drained || waitMs <= 0 || time.Now().After(deadline) || r.Context().Err() != nil {
			writeJSON(w, resp)
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-time.After(25 * time.Millisecond):
		}
		c.harvestExpired(c.now())
	}
}

// statusSnapshot assembles a StatusResponse under the lock.
func (c *Coordinator) statusSnapshot(includeResults bool) (*StatusResponse, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	resp := &StatusResponse{
		Pending:     c.pendingN,
		Leased:      c.leasedN,
		Done:        c.doneN,
		Failed:      c.failedN,
		Poisoned:    c.poisonedN,
		Quarantined: int(c.store.Quarantined()),
		Attempts:    make(map[string][]Attempt),
	}
	if includeResults {
		resp.Results = make(map[string]*caba.Result)
	}
	for _, key := range c.order {
		st := c.cells[key]
		ks := KeyString(key)
		switch st.status {
		case cellDone:
			if st.cacheHit {
				resp.CacheHits++
			}
			if includeResults {
				resp.Results[ks] = st.result
			}
		case cellFailed:
			if st.cacheHit {
				resp.CacheHits++
			}
			resp.Failures = append(resp.Failures, Failure{
				Cell: st.cell, Key: ks, Error: st.errMsg, Wedge: st.wedge,
				Poison: st.poison, Attempts: st.failures,
			})
		}
		if len(st.history) > 0 {
			resp.Attempts[ks] = append([]Attempt(nil), st.history...)
		}
	}
	resp.Drained = resp.Pending == 0 && resp.Leased == 0
	return resp, resp.Drained
}

// handleProgress streams live progress events as JSON Lines until the
// client disconnects. Slow clients lose events rather than stalling the
// sweep.
func (c *Coordinator) handleProgress(w http.ResponseWriter, r *http.Request) {
	ch, cancel := c.subscribe()
	defer cancel()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	if flusher != nil {
		flusher.Flush()
	}
	enc := json.NewEncoder(w)
	for {
		select {
		case <-r.Context().Done():
			return
		case ev := <-ch:
			if err := enc.Encode(ev); err != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
	}
}
