package farm

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	caba "github.com/caba-sim/caba"
)

// TestSoakSeededChaos is the randomized overload/chaos soak for the
// whole farm stack. One seeded rng (SOAK_SEED, default 1) derives the
// entire chaos schedule — which cells suffer worker kills, hangs and
// OOM aborts, when the coordinator is killed and restarted with
// torn-write injection, when the lease clock skews, how slow the store's
// disk is — so a failure reproduces by re-running with the same seed.
//
// The sweep runs under all of it at once and the test then asserts the
// paper-grade invariants:
//
//   - every healthy cell's result is byte-identical to an uninterrupted
//     in-process run;
//   - exactly one cell (the designated worker-killer) was quarantined by
//     the poison breaker, with at least PoisonThreshold distinct victims
//     in its sealed record;
//   - admission control engaged (at least one 429 was served) and the
//     submitter recovered by retrying;
//   - the journal was compacted at least once across incarnations;
//   - a final fresh coordinator over the surviving state serves the
//     entire sweep as cache hits.
func TestSoakSeededChaos(t *testing.T) {
	seed := int64(1)
	if s := os.Getenv("SOAK_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("bad SOAK_SEED %q: %v", s, err)
		}
		seed = v
	}
	rng := rand.New(rand.NewSource(seed))
	t.Logf("soak seed %d (set SOAK_SEED to reproduce the chaos schedule)", seed)

	const (
		ttl             = 250 * time.Millisecond * soakTimeScale
		poisonThreshold = 4
		fleetSize       = 4
	)

	// The sweep grid: 8 cells, the first designated as the poison cell —
	// every worker that leases it "dies" (hookDie) before running it.
	var cells []Cell
	for _, app := range []string{"PVC", "SCP"} {
		for _, design := range []string{"Base", "CABA-BDI"} {
			for _, s := range []int64{11, 12} {
				cells = append(cells, testCell(app, design, 0.02, s))
			}
		}
	}
	// keyOf is called from worker-hook goroutines, so it must not touch
	// t; Key cannot fail for the valid cells this test builds.
	keyOf := func(c Cell) string {
		k, _ := c.Key()
		return KeyString(k)
	}
	poisonKey := keyOf(cells[0])
	var healthy []Cell
	healthyKeys := make([]string, 0, len(cells)-1)
	for _, c := range cells[1:] {
		healthy = append(healthy, c)
		healthyKeys = append(healthyKeys, keyOf(c))
	}

	// Chaos schedule, all derived from the seed before anything runs.
	// Each healthy cell suffers at most ONE chaos event, fired once
	// globally (attempt numbering resets across coordinator restarts, so
	// per-attempt triggers would double-fire): with clock-skew harvests
	// bounded to 2, a healthy cell can collect at most 3 victims — below
	// the poison threshold of 4, so only the designated cell quarantines.
	chaosKind := map[string]string{}
	// OOM needs a cell that outlives the 20ms watchdog tick: PVC/CABA-BDI.
	chaosKind[healthyKeys[2]] = "oom" // healthy[2] = PVC/CABA-BDI seed 11
	rest := rng.Perm(len(healthy))
	kinds := []string{"kill", "hang", "flaky"}
	for _, idx := range rest {
		if len(kinds) == 0 {
			break
		}
		if _, taken := chaosKind[healthyKeys[idx]]; taken {
			continue
		}
		chaosKind[healthyKeys[idx]] = kinds[0]
		kinds = kinds[1:]
	}
	if healthy[2].App != "PVC" || healthy[2].Design.Name != "CABA-BDI" {
		t.Fatalf("grid order changed: healthy[2] = %s, want PVC/CABA-BDI for the oom slot", healthy[2].Label())
	}
	restartTimes := []time.Duration{
		time.Duration(700+rng.Intn(800)) * time.Millisecond * soakTimeScale,
		time.Duration(1800+rng.Intn(1000)) * time.Millisecond * soakTimeScale,
	}
	skewTimes := []time.Duration{
		time.Duration(500+rng.Intn(700)) * time.Millisecond * soakTimeScale,
		time.Duration(1500+rng.Intn(1200)) * time.Millisecond * soakTimeScale,
	}
	downWindow := time.Duration(150+rng.Intn(150)) * time.Millisecond * soakTimeScale
	slowDelay := time.Duration(1+rng.Intn(3)) * time.Millisecond

	// Uninterrupted in-process references for every healthy cell.
	refs := make(map[string][]byte, len(healthy))
	for i, c := range healthy {
		res, err := caba.Run(c.Config, c.Design, c.App, c.Seed)
		if err != nil {
			t.Fatalf("reference %s: %v", c.Label(), err)
		}
		raw, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		refs[healthyKeys[i]] = raw
	}

	// Coordinator behind a swappable handler: the URL stays stable across
	// kill/restart cycles, exactly like a respawning farmd behind one
	// address. The lease clock is real time plus an injectable skew.
	var skewNs atomic.Int64
	skewedNow := func() time.Time { return time.Now().Add(time.Duration(skewNs.Load())) }
	cfg := CoordinatorConfig{
		LeaseTTL: ttl, MaxAttempts: 12,
		RetryBackoff: 5 * time.Millisecond, MaxBackoff: 20 * time.Millisecond,
		MaxQueue: 4, PoisonThreshold: poisonThreshold, CompactMinLines: 4,
		Now: skewedNow,
	}
	dir := t.TempDir()
	cfg.Dir = dir
	slowWrite := func() { time.Sleep(slowDelay) }
	// openCoordinator is also called from the restart goroutine, where
	// t.Fatalf is illegal — it returns the error instead.
	openCoordinator := func() (*Coordinator, error) {
		c, err := NewCoordinator(cfg)
		if err != nil {
			return nil, err
		}
		c.Store().slowWrite = slowWrite
		return c, nil
	}

	var cur atomic.Value // http.Handler
	downHandler := http.Handler(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1")
		http.Error(w, "farm: coordinator restarting (soak chaos)", http.StatusServiceUnavailable)
	}))
	var mu sync.Mutex // guards coord and restart transitions
	coord, err := openCoordinator()
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	cur.Store(coord.Handler())
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		cur.Load().(http.Handler).ServeHTTP(w, r)
	}))
	defer srv.Close()
	defer func() {
		mu.Lock()
		defer mu.Unlock()
		if coord != nil {
			coord.Close()
		}
	}()

	soakCtx, soakCancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	defer wg.Wait()
	defer soakCancel()
	start := time.Now()
	var compactTotal atomic.Uint64
	var restarts atomic.Int64

	// Coordinator kill/restart with torn-write and stale-compaction-tmp
	// injection: the journal gets a garbage tail (a write torn by the
	// "crash") and a leftover compaction temp file, both of which the
	// reopen must survive.
	restart := func() {
		mu.Lock()
		defer mu.Unlock()
		if soakCtx.Err() != nil {
			return
		}
		cur.Store(downHandler)
		coord.Quiesce()
		compactTotal.Add(coord.compactions.Load())
		coord.Close()
		if f, err := os.OpenFile(filepath.Join(dir, journalName), os.O_WRONLY|os.O_APPEND, 0); err == nil {
			f.WriteString(`{"key":"torn-by-soak-crash`)
			f.Close()
		}
		os.WriteFile(filepath.Join(dir, compactTmpName), []byte("soak garbage"), 0o644)
		time.Sleep(downWindow)
		nc, err := openCoordinator()
		if err != nil {
			t.Errorf("soak restart: reopen failed: %v", err)
			soakCancel()
			return
		}
		coord = nc
		cur.Store(coord.Handler())
		restarts.Add(1)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, at := range restartTimes {
			if !sleepCtx(soakCtx, time.Until(start.Add(at))) {
				return
			}
			restart()
		}
	}()

	// Lease-clock skew: each event jumps the coordinator's clock forward
	// by two TTLs, expiring every live lease at once.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, at := range skewTimes {
			if !sleepCtx(soakCtx, time.Until(start.Add(at))) {
				return
			}
			skewNs.Add(int64(2 * ttl))
		}
	}()

	// The worker fleet. Chaos hooks fire each cell's event exactly once
	// across the whole soak; the poison cell kills every worker that
	// draws it, and the supervisor respawns fresh-named replacements (so
	// distinct victims accumulate to the threshold).
	var fired sync.Map
	shouldFire := func(ks string) bool {
		_, loaded := fired.LoadOrStore(ks, true)
		return !loaded
	}
	hooks := workerHooks{
		beforeRunAction: func(cell Cell, attempt int) hookAction {
			ks := keyOf(cell)
			if ks == poisonKey {
				return hookDie
			}
			if chaosKind[ks] == "kill" && shouldFire(ks) {
				return hookDie
			}
			return hookContinue
		},
		beforeRun: func(cell Cell, attempt int) error {
			ks := keyOf(cell)
			switch chaosKind[ks] {
			case "hang":
				if shouldFire(ks) {
					time.Sleep(ttl + ttl/2) // lease expires underneath
					return fmt.Errorf("soak: synthetic hang on %s", cell.Label())
				}
			case "flaky":
				if shouldFire(ks) {
					return fmt.Errorf("soak: synthetic transient failure on %s", cell.Label())
				}
			}
			return nil
		},
		memLimitFor: func(cell Cell, attempt int) int64 {
			if chaosKind[keyOf(cell)] == "oom" && shouldFire(keyOf(cell)) {
				return 1 // unmeetable budget: resource-exhausted abort
			}
			return 0
		},
	}
	var workerSeq, respawns atomic.Int64
	for i := 0; i < fleetSize; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for soakCtx.Err() == nil {
				w := NewWorker(srv.URL, WorkerConfig{
					Name:            fmt.Sprintf("soak-w%d", workerSeq.Add(1)),
					PollInterval:    15 * time.Millisecond,
					CellTimeout:     30 * time.Second,
					CheckpointEvery: 1000,
				})
				w.hooks = hooks
				w.Run(soakCtx)
				if !w.killed {
					return // graceful exit: soak cancelled
				}
				if respawns.Add(1) > 80 {
					return // runaway guard; the test will fail on its asserts
				}
			}
		}()
	}

	// Submit the sweep against the overloaded queue (cap 4, 8 cells):
	// the first submission is guaranteed to hit admission control, and
	// the client recovers by resubmitting the identical request — safe by
	// content-address idempotence — until everything is admitted.
	soakPost := func(url string, in, out any) (int, string) {
		raw, err := json.Marshal(in)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		resp, err := http.Post(url, "application/json", strings.NewReader(string(raw)))
		if err != nil {
			return 0, err.Error()
		}
		defer resp.Body.Close()
		if resp.StatusCode >= 300 {
			body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
			return resp.StatusCode, string(body)
		}
		if out != nil {
			if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
				return 0, err.Error()
			}
		}
		return resp.StatusCode, ""
	}
	deadline := time.Now().Add(90 * time.Second)
	saw429 := 0
	for {
		if time.Now().After(deadline) {
			t.Fatalf("sweep not fully admitted in time (%d 429s seen)", saw429)
		}
		code, msg := soakPost(srv.URL+"/sweep", &SweepRequest{Cells: cells, Client: "soak"}, nil)
		if code == 200 {
			break
		}
		if code == http.StatusTooManyRequests {
			saw429++
		} else if code != http.StatusServiceUnavailable && code != 0 {
			t.Fatalf("sweep: HTTP %d (%s)", code, msg)
		}
		time.Sleep(100 * time.Millisecond)
	}

	// Wait for the sweep to drain: every one of the 8 cells terminal.
	for {
		if time.Now().After(deadline) {
			st, _ := func() (*StatusResponse, string) {
				var st StatusResponse
				resp, err := http.Get(srv.URL + "/status?results=0")
				if err != nil {
					return nil, err.Error()
				}
				defer resp.Body.Close()
				json.NewDecoder(resp.Body).Decode(&st)
				return &st, ""
			}()
			t.Fatalf("sweep did not drain in time: %+v (restarts %d, respawns %d)",
				st, restarts.Load(), respawns.Load())
		}
		resp, err := http.Get(srv.URL + "/status?results=0&wait_ms=500")
		if err != nil {
			time.Sleep(100 * time.Millisecond)
			continue
		}
		var st StatusResponse
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			time.Sleep(100 * time.Millisecond)
			continue
		}
		if st.Drained && st.Done+st.Failed == len(cells) {
			break
		}
		// Under saturation the coordinator sheds long-polls (the poll
		// returns immediately); don't turn that protection into a
		// busy-loop against it.
		time.Sleep(25 * time.Millisecond)
	}
	soakCancel()
	wg.Wait()

	// Final accounting on the last incarnation.
	mu.Lock()
	final := coord
	mu.Unlock()
	final.maybeCompact() // the janitor's trigger, forced so timing can't hide it
	compactTotal.Add(final.compactions.Load())

	st := statusT(t, srv.URL, "")
	if st.Done != len(healthy) || st.Failed != 1 || st.Poisoned != 1 {
		t.Fatalf("final status = done %d, failed %d, poisoned %d; want %d done, 1 failed, 1 poisoned",
			st.Done, st.Failed, st.Poisoned, len(healthy))
	}
	for i, ks := range healthyKeys {
		res := st.Results[ks]
		if res == nil {
			t.Fatalf("no result for healthy cell %s (%s)", healthy[i].Label(), ks)
		}
		raw, _ := json.Marshal(res)
		if string(raw) != string(refs[ks]) {
			t.Errorf("cell %s seed %d: farm result differs from uninterrupted in-process run",
				healthy[i].Label(), healthy[i].Seed)
		}
	}
	if len(st.Failures) != 1 || st.Failures[0].Key != poisonKey || !st.Failures[0].Poison {
		t.Fatalf("failures = %+v, want exactly the designated poison cell quarantined", st.Failures)
	}
	if _, victims, _, ok := final.Store().GetPoison(mustKey(t, cells[0])); !ok || len(victims) < poisonThreshold {
		t.Errorf("poison record: ok=%v victims=%v, want a sealed record with >= %d distinct victims",
			ok, victims, poisonThreshold)
	}
	if saw429 == 0 {
		t.Error("admission control never engaged: no 429 was served to the submitter")
	}
	if compactTotal.Load() == 0 {
		t.Error("journal was never compacted across any coordinator incarnation")
	}
	t.Logf("soak: %d restarts, %d worker respawns, %d 429s, %d compactions, %d journal victims on poison cell",
		restarts.Load(), respawns.Load(), saw429, compactTotal.Load(), poisonThreshold)

	// Epilogue: a fresh coordinator over the battle-scarred state serves
	// the whole sweep from the store — nothing re-simulates.
	mu.Lock()
	cur.Store(downHandler)
	coord.Quiesce()
	coord.Close()
	coord, err = openCoordinator()
	mu.Unlock()
	if err != nil {
		t.Fatalf("epilogue reopen: %v", err)
	}
	cur.Store(coord.Handler())
	var sw SweepResponse
	if code, msg := soakPost(srv.URL+"/sweep", &SweepRequest{Cells: cells, Client: "soak"}, &sw); code != 200 {
		t.Fatalf("epilogue sweep: HTTP %d (%s)", code, msg)
	}
	if sw.CacheHits != len(cells) || sw.Accepted != 0 {
		t.Fatalf("epilogue sweep = %+v, want all %d cells as cache hits", sw, len(cells))
	}
}

// mustKey returns a cell's content address or fails the test.
func mustKey(t *testing.T, c Cell) uint64 {
	t.Helper()
	k, err := c.Key()
	if err != nil {
		t.Fatal(err)
	}
	return k
}
