package farm

import (
	"strconv"
	"sync"
	"time"
)

// Lease is one live cell assignment: a worker holds it while simulating
// and must extend it by heartbeating before the deadline. A lease whose
// deadline passes is harvested by the coordinator and its cell re-queued;
// any late heartbeat, checkpoint upload or report quoting the stale token
// is rejected, which is what makes a hung or partitioned worker safe — it
// can finish its zombie run, but it can no longer mutate sweep state.
type Lease struct {
	// Token is the opaque assignment id quoted on every subsequent call.
	Token string
	// Key is the leased cell's content address.
	Key uint64
	// Cell is the leased work item.
	Cell Cell
	// Worker names the holder.
	Worker string
	// Attempt is 1 for the cell's first execution, counting retries up.
	Attempt int
	// Deadline is when the lease expires unless extended.
	Deadline time.Time
}

// leaseTable tracks live leases. It is a pure bookkeeping structure —
// classification and re-queuing policy live in the Coordinator — and all
// methods are safe for concurrent use.
type leaseTable struct {
	mu     sync.Mutex
	seq    uint64
	leases map[string]*Lease
}

func newLeaseTable() *leaseTable {
	return &leaseTable{leases: make(map[string]*Lease)}
}

// grant creates a lease for cell held by worker until now+ttl.
func (t *leaseTable) grant(cell Cell, key uint64, worker string, attempt int, ttl time.Duration, now time.Time) *Lease {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seq++
	l := &Lease{
		Token:    "l" + strconv.FormatUint(t.seq, 10) + "-" + KeyString(key),
		Key:      key,
		Cell:     cell,
		Worker:   worker,
		Attempt:  attempt,
		Deadline: now.Add(ttl),
	}
	t.leases[l.Token] = l
	return l
}

// extend pushes the lease's deadline to now+ttl. It reports false for an
// unknown (expired or already settled) token.
func (t *leaseTable) extend(token string, ttl time.Duration, now time.Time) (*Lease, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	l, ok := t.leases[token]
	if !ok {
		return nil, false
	}
	l.Deadline = now.Add(ttl)
	return l, true
}

// lookup returns the live lease for token, if any.
func (t *leaseTable) lookup(token string) (*Lease, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	l, ok := t.leases[token]
	return l, ok
}

// settle removes the lease (its cell reached a report) and returns it.
func (t *leaseTable) settle(token string) (*Lease, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	l, ok := t.leases[token]
	if ok {
		delete(t.leases, token)
	}
	return l, ok
}

// harvest removes and returns every lease whose deadline has passed.
func (t *leaseTable) harvest(now time.Time) []*Lease {
	t.mu.Lock()
	defer t.mu.Unlock()
	var dead []*Lease
	for tok, l := range t.leases {
		if now.After(l.Deadline) {
			dead = append(dead, l)
			delete(t.leases, tok)
		}
	}
	return dead
}

// count returns the number of live leases.
func (t *leaseTable) count() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.leases)
}
