// Package farm is the fault-tolerant distributed simulation sweep
// service: an HTTP coordinator that shards sweep cells across a fleet of
// worker processes and is robust by construction.
//
// The coordinator owns a durable work queue of cells (keyed by a
// content hash of everything that determines a cell's result), hands out
// lease-based assignments with heartbeats and deadlines, re-queues cells
// whose lease expires or whose worker dies mid-run — resuming from the
// worker's last uploaded checkpoint blob when one exists — classifies
// failures (transient errors retry with exponential backoff, jitter and
// a per-cell attempt cap; deterministic wedges fail fast and are never
// retried), and dedupes through a content-addressed result store so a
// repeated cell is a cache hit, not a re-simulation.
//
// Workers wrap each cell in the panic-safe caba.RunResumable path with a
// per-cell timeout and drain gracefully on shutdown (release the lease,
// keep the last uploaded checkpoint). The service degrades gracefully: a
// sweep with broken cells still returns every completed result plus a
// joined failure report, and a live progress endpoint streams cell
// lifecycle events and metrics samples as JSONL.
//
// The wire protocol is JSON over HTTP (this file). Everything that makes
// the service robust is deliberately mechanism, not policy: the engine's
// bit-identical resume, the sealed CRC-checked snapshot container, and
// the typed wedge error do the heavy lifting; the farm only routes them.
package farm

import (
	caba "github.com/caba-sim/caba"
	"github.com/caba-sim/caba/internal/snapshot"
)

// Cell is one sweep grid cell: everything that determines the simulated
// result. Strategy knobs inside Config (SMWorkers, FastForward,
// Interpreter, BatchIssue, checkpoint/audit cadence, output paths) do not
// affect results — the engine is bit-identical across them — so Key
// zeroes them and workers are free to override them locally.
type Cell struct {
	App    string      `json:"app"`
	Seed   int64       `json:"seed"`
	Config caba.Config `json:"config"`
	Design caba.Design `json:"design"`
}

// Key returns the cell's content address: a hash over the application,
// seed, design and the result-determining configuration. Two cells with
// equal keys produce bit-identical results, so the key doubles as the
// result store's address and the dedupe identity.
func (c Cell) Key() (uint64, error) {
	cfg := c.Config
	cfg.SMWorkers = 0
	cfg.FastForward = false
	cfg.Interpreter = false
	cfg.BatchIssue = false
	cfg.CheckpointEvery = 0
	cfg.AuditEvery = 0
	cfg.FlightRecorderDepth = 0
	cfg.MetricsFile = ""
	cfg.TraceFile = ""
	return snapshot.HashPlain(cfg, c.Design, c.App, c.Seed)
}

// Label renders the human-readable cell identity used in logs, progress
// events and failure reports.
func (c Cell) Label() string { return c.App + "/" + c.Design.Name }

// SweepRequest submits cells to the coordinator (POST /sweep). Cells
// already in the result store complete instantly as cache hits; cells
// already queued or leased are not duplicated. Admission is bounded: a
// submission that would push the live queue past the coordinator's
// MaxQueue — or this client past its per-client quota — is rejected
// with HTTP 429 and a Retry-After hint. Submission is idempotent by
// content address, so retrying the identical request after a 429 is
// always safe: already-accepted cells count as Known, not duplicates.
type SweepRequest struct {
	Cells []Cell `json:"cells"`
	// Client names the submitting client for per-client admission
	// quotas and queue attribution (empty = "anonymous").
	Client string `json:"client,omitempty"`
}

// SweepResponse acknowledges a sweep submission.
type SweepResponse struct {
	// Accepted counts newly queued cells.
	Accepted int `json:"accepted"`
	// CacheHits counts submitted cells served from the result store.
	CacheHits int `json:"cache_hits"`
	// Known counts submitted cells that were already queued, leased or
	// terminally failed from an earlier submission.
	Known int `json:"known"`
}

// LeaseRequest asks for work (POST /lease).
type LeaseRequest struct {
	// Worker names the requester (for logs and attempt history).
	Worker string `json:"worker"`
}

// LeaseResponse grants a cell lease, or explains why there is none.
type LeaseResponse struct {
	// Lease is the assignment token; empty when no work was granted.
	Lease string `json:"lease,omitempty"`
	Cell  *Cell  `json:"cell,omitempty"`
	// Key is the cell's content address in %016x form.
	Key string `json:"key,omitempty"`
	// Attempt is 1 for a cell's first execution, counting up per retry.
	Attempt int `json:"attempt,omitempty"`
	// TTLMs is the lease duration; the worker must heartbeat well within
	// it or the cell is re-queued for someone else.
	TTLMs int64 `json:"ttl_ms,omitempty"`
	// Checkpoint reports that a resume blob exists for this cell (GET
	// /checkpoint with the lease token fetches it).
	Checkpoint bool `json:"checkpoint,omitempty"`
	// RetryMs hints when to poll again after an empty grant.
	RetryMs int64 `json:"retry_ms,omitempty"`
	// Drained reports that cells have been submitted and every one of
	// them is terminal (none pending or leased). A coordinator that has
	// not yet received any work reports false, so a worker fleet started
	// ahead of the first submission keeps polling instead of exiting.
	Drained bool `json:"drained,omitempty"`
}

// HeartbeatRequest extends a lease (POST /heartbeat). A heartbeat for a
// lease the coordinator no longer recognizes (expired and re-queued)
// fails with HTTP 409; the worker must abandon the cell.
type HeartbeatRequest struct {
	Lease string `json:"lease"`
	// Cycle is the cell's current simulated cycle (progress reporting).
	Cycle uint64 `json:"cycle,omitempty"`
}

// ReportRequest delivers a cell's outcome (POST /report). Exactly one of
// Result, Error or Released describes it:
//
//   - Result: the cell completed; the coordinator verifies and stores it.
//   - Error: the cell failed. Wedge marks the failure deterministic
//     (gpu.WedgeError — the cell's fault stream replays the identical
//     wedge on every attempt), which fails the cell immediately; any
//     other error is transient and re-queued with backoff until the
//     attempt cap. Resource marks the failure resource-exhausted (the
//     worker's memory or CPU budget watchdog aborted the cell): still
//     transient-retryable, but preferentially on a different worker,
//     and it feeds the poison-cell circuit breaker.
//   - Released: the worker is draining; the cell is re-queued at once
//     without consuming an attempt.
type ReportRequest struct {
	Lease    string       `json:"lease"`
	Result   *caba.Result `json:"result,omitempty"`
	Error    string       `json:"error,omitempty"`
	Wedge    bool         `json:"wedge,omitempty"`
	Released bool         `json:"released,omitempty"`
	// Resource, when non-empty, classifies the failure as
	// resource-exhausted and names the blown budget ("memory" or
	// "cpu"). See the taxonomy above.
	Resource string `json:"resource,omitempty"`
	// ResumeCycle is the simulated cycle this attempt resumed from (0 =
	// started from scratch); recorded in the cell's attempt history.
	ResumeCycle uint64 `json:"resume_cycle,omitempty"`
}

// Failure describes one terminally failed cell.
type Failure struct {
	Cell Cell `json:"cell"`
	// Key is the cell's content address in %016x form.
	Key      string `json:"key"`
	Error    string `json:"error"`
	Wedge    bool   `json:"wedge"`
	Attempts int    `json:"attempts"`
	// Poison marks a cell quarantined by the poison-cell circuit
	// breaker: it was presumed to have killed PoisonThreshold distinct
	// workers and is never leased again.
	Poison bool `json:"poison,omitempty"`
}

// Attempt is one entry of a cell's execution history.
type Attempt struct {
	Worker string `json:"worker"`
	// Outcome is "ok", "failed", "wedged", "released", "expired" or
	// "resource" (the worker's memory/CPU budget watchdog aborted it).
	Outcome string `json:"outcome"`
	// ResumeCycle is where the attempt resumed from (successful attempts
	// only; 0 = cycle zero).
	ResumeCycle uint64 `json:"resume_cycle,omitempty"`
	Error       string `json:"error,omitempty"`
}

// StatusResponse is the sweep's current state (GET /status). With
// ?wait_ms=N the coordinator long-polls until the sweep is drained or the
// wait elapses, whichever comes first — unless the coordinator is under
// pressure, in which case the long-poll is shed (served as an immediate
// snapshot with the X-Farm-Shed response header set).
type StatusResponse struct {
	Pending   int `json:"pending"`
	Leased    int `json:"leased"`
	Done      int `json:"done"`
	Failed    int `json:"failed"`
	CacheHits int `json:"cache_hits"`
	// Quarantined counts corrupt result-store entries and checkpoint
	// blobs set aside since the coordinator started.
	Quarantined int `json:"quarantined"`
	// Poisoned counts cells quarantined by the poison-cell circuit
	// breaker (they also appear in Failures with Poison set).
	Poisoned int `json:"poisoned,omitempty"`
	// Drained is true when every submitted cell is terminal.
	Drained bool `json:"drained"`
	// Results maps cell keys (%016x) to completed results.
	Results map[string]*caba.Result `json:"results,omitempty"`
	// Failures lists terminally failed cells.
	Failures []Failure `json:"failures,omitempty"`
	// Attempts maps cell keys to their execution history.
	Attempts map[string][]Attempt `json:"attempts,omitempty"`
}

// HealthResponse is the coordinator's self-assessment (GET /healthz).
// State is one of:
//
//   - "ok": normal operation.
//   - "degraded": still serving, but under pressure — the live queue is
//     at ≥80% of MaxQueue or the store's disk headroom is below
//     MinDiskFree. Long-polls are shed in this state.
//   - "saturated": the live queue is full; submissions are being
//     rejected with 429. Served with HTTP 503.
//   - "draining": the coordinator is quiescing for shutdown — no new
//     leases are granted and submissions get 503 + Retry-After.
type HealthResponse struct {
	State string `json:"state"`
	// QueueLive / QueueCap report admission-control occupancy: live
	// (pending + leased) cells against the MaxQueue bound.
	QueueLive int `json:"queue_live"`
	QueueCap  int `json:"queue_cap"`
	Pending   int `json:"pending"`
	Leased    int `json:"leased"`
	Done      int `json:"done"`
	Failed    int `json:"failed"`
	// Poisoned counts cells quarantined by the poison-cell breaker.
	Poisoned int `json:"poisoned"`
	// Compactions counts journal compactions since the coordinator
	// opened.
	Compactions uint64 `json:"compactions"`
	// Rejected429 counts submissions rejected by admission control.
	Rejected429 uint64 `json:"rejected_429"`
	// ShedLongPolls counts /status long-polls downgraded to immediate
	// snapshots under pressure.
	ShedLongPolls uint64 `json:"shed_long_polls"`
	// Quarantined counts corrupt store entries set aside since open.
	Quarantined uint64 `json:"quarantined"`
	// DiskFreeBytes is the store filesystem's free space (-1 when the
	// platform cannot report it).
	DiskFreeBytes int64 `json:"disk_free_bytes"`
}

// ProgressEvent is one line of the live progress stream (GET /progress,
// JSONL). Event types: "queued", "cachehit", "lease", "heartbeat",
// "checkpoint", "done", "requeue", "failed", "poisoned", "compact",
// "sample".
type ProgressEvent struct {
	Type    string `json:"type"`
	Cell    string `json:"cell,omitempty"`
	Key     string `json:"key,omitempty"`
	Worker  string `json:"worker,omitempty"`
	Cycle   uint64 `json:"cycle,omitempty"`
	Attempt int    `json:"attempt,omitempty"`
	Error   string `json:"error,omitempty"`
	// Sample carries one metrics time-series row for "sample" events
	// (emitted from completed cells whose config enabled sampling).
	Sample *caba.MetricsSample `json:"sample,omitempty"`
}
