//go:build !unix

package farm

// diskFree reports -1 on platforms without Statfs: the disk-space
// preflight is disabled rather than guessed at.
func diskFree(path string) int64 { return -1 }

// cpuTime reports -1 on platforms without Getrusage: the CPU-time
// deadline degrades to wall-clock-only enforcement.
func cpuTime() int64 { return -1 }
