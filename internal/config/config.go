// Package config holds the simulated-system configuration (the paper's
// Table 1) and the design presets compared in the evaluation (Section 6).
package config

import (
	"fmt"

	"github.com/caba-sim/caba/internal/compress"
	"github.com/caba-sim/caba/internal/faults"
)

// SchedPolicy selects the warp scheduling policy.
type SchedPolicy uint8

// Warp scheduler policies.
const (
	SchedGTO SchedPolicy = iota // greedy-then-oldest (baseline, Table 1)
	SchedLRR                    // loose round-robin
)

// String returns the policy name.
func (s SchedPolicy) String() string {
	if s == SchedLRR {
		return "lrr"
	}
	return "gto"
}

// DRAMTiming is the GDDR5 timing set (Table 1, in memory-clock cycles).
type DRAMTiming struct {
	TCL  int // CAS latency
	TRP  int // row precharge
	TRC  int // row cycle
	TRAS int // row active
	TRCD int // RAS-to-CAS
	TRRD int // row-to-row activate
	TCCD int // column-to-column (tCLDR in the paper's table)
	TWR  int // write recovery
}

// Config describes the simulated GPU. The zero value is not meaningful;
// start from Baseline().
type Config struct {
	// Cores.
	NumSMs          int         // streaming multiprocessors
	WarpSize        int         // threads per warp
	MaxWarpsPerSM   int         // hardware warp contexts per SM
	MaxCTAsPerSM    int         // thread-block limit per SM
	MaxThreadsPerSM int         // thread limit per SM
	RegFilePerSM    int         // 32-bit registers per SM
	SharedMemPerSM  int         // bytes of shared memory per SM
	NumSchedulers   int         // warp schedulers per SM (issue width)
	Scheduler       SchedPolicy // scheduling policy
	CoreClockMHz    int

	// Pipeline latencies (core cycles).
	ALULatency int
	SFULatency int

	// Caches. Line size is shared across levels.
	LineSize  int
	L1Size    int
	L1Assoc   int
	L1MSHRs   int // outstanding misses per SM
	L2Size    int // total, banked across memory partitions
	L2Assoc   int
	L2Latency int // L2 hit latency in core cycles
	L1Latency int // L1 hit latency in core cycles

	// Interconnect: one crossbar per direction; per-port flit width in
	// bytes moved per core cycle.
	FlitSize int

	// Memory system.
	NumChannels     int // GDDR5 memory controllers
	BanksPerChannel int
	MemClockMHz     int // DRAM data-clock; one 32B burst per memory cycle
	BurstSize       int // bytes per DRAM burst
	Timing          DRAMTiming
	MemQueueDepth   int // per-channel request queue

	// BWScale scales peak off-chip bandwidth: 0.5, 1.0 or 2.0 in the
	// paper's sensitivity studies. Implemented as a memory-clock scale.
	BWScale float64

	// MD (metadata) cache for compression designs, Section 4.3.2.
	MDCacheSize  int // bytes
	MDCacheAssoc int
	// MDLinesPerEntry is how many data lines one MD-cache line covers:
	// with 2 bits of burst-count metadata per 128B line, a 32B MD line
	// covers 128 data lines.
	MDLinesPerEntry int

	// AWDeployBW overrides the Assist Warp Controller's per-cycle
	// deployment bandwidth (0 = default). Exposed for the DESIGN.md
	// ablation: deployment bandwidth is what bounds decompression
	// throughput (Section 3.3's fetch/decode-bandwidth discussion).
	AWDeployBW int

	// Scale shrinks workload working sets and grids for tests/quick
	// benches. 1.0 is paper scale.
	Scale float64

	// SMWorkers bounds the worker goroutines that tick SMs concurrently
	// within one simulation (the two-phase tick): in phase A the workers
	// advance their SMs and stage all outbound memory traffic into
	// per-SM outboxes; in phase B the main goroutine commits the staged
	// traffic in fixed SM-index order. 1 forces the serial path; 0 (the
	// default) uses runtime.GOMAXPROCS(0); values above NumSMs are
	// clamped. Results are bit-identical at every setting — the staging
	// and ordered commit run identically regardless of worker count.
	SMWorkers int

	// FastForward enables the cycle-skipping engine: when every SM is
	// provably unable to issue (all warps stalled on memory or
	// dependencies, or the grid is exhausted and the memory system is
	// draining), the simulator jumps the clock to the next wake event in
	// one step, crediting the skipped issue slots to the stall
	// classifier in bulk. Statistics are bit-identical to per-cycle
	// ticking; only wall-clock time changes.
	FastForward bool

	// WedgeLimit bounds how many consecutive idle drain cycles the
	// simulator tolerates before declaring the memory system wedged and
	// returning a structured error instead of spinning to the cycle cap.
	// 0 selects the default of 10,000,000 cycles.
	WedgeLimit uint64

	// Faults configures deterministic fault injection (zero value =
	// disabled). Same seed + same rates produce bit-identical fault
	// sites and statistics at every SMWorkers setting.
	Faults faults.Config

	// CheckpointEvery takes a full simulator snapshot every N cycles and
	// hands it to the run's checkpoint sink (Simulator.OnCheckpoint /
	// caba's checkpoint file). 0 disables periodic checkpointing and adds
	// zero overhead to the run. Restoring a snapshot and running to
	// completion is bit-identical to the uninterrupted run.
	CheckpointEvery uint64

	// AuditEvery runs the runtime invariant auditor every N cycles,
	// turning internal-state corruption (MSHR leaks, scoreboard drift,
	// ring-conservation violations) into a structured error at the first
	// audited cycle instead of a downstream wedge or silent bad
	// statistics. 0 disables auditing and adds zero overhead.
	AuditEvery uint64

	// FlightRecorderDepth keeps the last N notable events per SM (plus a
	// simulator-level ring) for crash postmortems: wedge errors, audit
	// violations and panics attach the merged recent-event trail. 0
	// disables recording and adds zero overhead.
	FlightRecorderDepth int

	// SampleEvery records a metrics time-series sample (IPC, issue-slot
	// breakdown, hit rates, MSHR/assist-warp occupancy, DRAM bus busy
	// fraction, compression ratio) every N core cycles into
	// Result.Series. Sampling reads counters after the phase-B commit on
	// the main goroutine, so the series is identical at every SMWorkers
	// setting; fast-forwarded windows synthesize the flat samples the
	// per-cycle path would have recorded; snapshot/restore carries the
	// sampler state so resumed runs emit identical series. 0 disables
	// sampling and adds zero overhead. Simulated statistics are
	// bit-identical either way.
	SampleEvery uint64

	// MetricsFile writes the sampled series (needs SampleEvery > 0) to
	// this path at the end of the run, as JSON Lines (".csv" suffix
	// selects CSV). Empty writes nothing. Pure output: it does not
	// affect simulation and is excluded from the snapshot config hash.
	MetricsFile string

	// TraceFile writes a Chrome-trace/Perfetto JSON timeline of the run
	// to this path: warp lifetimes, assist-warp spawn→complete spans
	// (keyed by trigger kind), MSHR allocate→fill spans, and DRAM data
	// bursts. Empty disables tracing and adds zero overhead. Pure
	// output: it does not affect simulation and is excluded from the
	// snapshot config hash. Simulated statistics are bit-identical
	// either way, at every SMWorkers setting.
	TraceFile string

	// Interpreter routes warp and assist-warp execution through the
	// original field-walking instruction interpreter instead of the
	// predecoded superop engine. The two engines are bit-identical in
	// every observable effect (registers, predicates, SIMT stack, error
	// text, statistics, snapshots); the interpreter survives as the
	// differential-testing reference and is several times slower. Pure
	// strategy: excluded from the snapshot config hash.
	Interpreter bool

	// BatchIssue enables block-batched warp execution: when the GTO
	// scheduler selects a warp whose next instruction heads a
	// straightline ALU run (precomputed at predecode) and no other event
	// can intervene before the run's horizon — no pending writebacks,
	// fills or assist deploys earlier than the window end, no
	// higher-priority warp becoming ready — the SM executes the run as
	// macro-steps and replays the architected per-cycle side effects
	// (issue-slot statistics, stall-attribution charges, assist-warp
	// utilization windows, energy counters) from a precomputed schedule
	// instead of re-deriving them through the full scheduler scan each
	// cycle. Requires the predecoded engine (ignored under Interpreter)
	// and the GTO scheduler (ignored under LRR). Statistics, snapshots
	// and the metrics series are bit-identical either way; only
	// wall-clock time changes. Pure strategy: excluded from the snapshot
	// config hash.
	BatchIssue bool

	// AttributeStalls accumulates per-warp stall attribution: every
	// cycle, each scheduler slot that fails to issue is charged to
	// exactly one (warp, cause) pair — scoreboard, barrier, drain,
	// LSU/SFU/ALU port contention, store-buffer full, MSHR full, assist
	// priority, or empty SM — summed into Result.Stalls. The totals are
	// pinned to the issue-slot counters: sum == total slots − issued
	// slots, in every FastForward/SMWorkers combination. false disables
	// attribution and adds zero overhead.
	AttributeStalls bool
}

// Baseline returns the paper's Table 1 configuration.
func Baseline() Config {
	return Config{
		NumSMs:          15,
		WarpSize:        32,
		MaxWarpsPerSM:   48,
		MaxCTAsPerSM:    8,
		MaxThreadsPerSM: 1536,
		RegFilePerSM:    32768, // 128KB of 4B registers
		SharedMemPerSM:  32 << 10,
		NumSchedulers:   2,
		Scheduler:       SchedGTO,
		CoreClockMHz:    1400,
		ALULatency:      4,
		SFULatency:      20,
		LineSize:        compress.LineSize,
		L1Size:          16 << 10,
		L1Assoc:         4,
		L1MSHRs:         64,
		L2Size:          768 << 10,
		L2Assoc:         16,
		L1Latency:       4,
		L2Latency:       40,
		FlitSize:        32,
		NumChannels:     6,
		BanksPerChannel: 16,
		MemClockMHz:     924, // 6 x 924MHz x 32B = 177.4 GB/s
		BurstSize:       compress.BurstSize,
		Timing: DRAMTiming{
			TCL: 12, TRP: 12, TRC: 40, TRAS: 28,
			TRCD: 12, TRRD: 6, TCCD: 5, TWR: 12,
		},
		MemQueueDepth:   32,
		BWScale:         1.0,
		MDCacheSize:     8 << 10,
		MDCacheAssoc:    4,
		MDLinesPerEntry: 128,
		Scale:           1.0,
		FastForward:     true,
		BatchIssue:      true,
		WedgeLimit:      10_000_000,
	}
}

// TestConfig returns a shrunken configuration for fast unit tests: fewer
// SMs and a small memory system, same mechanisms.
func TestConfig() Config {
	c := Baseline()
	c.NumSMs = 2
	c.MaxWarpsPerSM = 8
	c.MaxCTAsPerSM = 4
	c.MaxThreadsPerSM = 256
	c.RegFilePerSM = 8192
	c.L1Size = 4 << 10
	c.L2Size = 32 << 10
	c.NumChannels = 2
	c.Scale = 0.02
	return c
}

// Validate reports the first configuration problem found.
func (c *Config) Validate() error {
	switch {
	case c.NumSMs <= 0:
		return fmt.Errorf("config: NumSMs must be positive")
	case c.WarpSize <= 0 || c.WarpSize > 64:
		return fmt.Errorf("config: WarpSize %d out of range", c.WarpSize)
	case c.MaxWarpsPerSM <= 0:
		return fmt.Errorf("config: MaxWarpsPerSM must be positive")
	case c.LineSize != compress.LineSize:
		return fmt.Errorf("config: LineSize %d must equal compress.LineSize %d", c.LineSize, compress.LineSize)
	case c.NumChannels <= 0:
		return fmt.Errorf("config: NumChannels must be positive")
	case c.L1Assoc <= 0 || c.L1Size%(c.L1Assoc*c.LineSize) != 0:
		return fmt.Errorf("config: L1 geometry (%d/%d-way) not line-divisible", c.L1Size, c.L1Assoc)
	case c.L2Assoc <= 0 || c.L2Size%(c.L2Assoc*c.LineSize*c.NumChannels) != 0:
		return fmt.Errorf("config: L2 geometry (%d/%d-way/%d parts) not line-divisible", c.L2Size, c.L2Assoc, c.NumChannels)
	case c.BWScale <= 0:
		return fmt.Errorf("config: BWScale must be positive")
	case c.Scale <= 0 || c.Scale > 1:
		return fmt.Errorf("config: Scale %v out of (0,1]", c.Scale)
	case c.NumSchedulers <= 0:
		return fmt.Errorf("config: NumSchedulers must be positive")
	case c.SMWorkers < 0:
		return fmt.Errorf("config: SMWorkers must be non-negative (0 = GOMAXPROCS)")
	case c.FlightRecorderDepth < 0:
		return fmt.Errorf("config: FlightRecorderDepth must be non-negative")
	case c.MetricsFile != "" && c.SampleEvery == 0:
		return fmt.Errorf("config: MetricsFile needs SampleEvery > 0")
	}
	if err := c.Faults.Validate(); err != nil {
		return fmt.Errorf("config: %w", err)
	}
	return nil
}

// PeakBandwidthGBs returns the peak off-chip bandwidth in GB/s.
func (c *Config) PeakBandwidthGBs() float64 {
	return float64(c.NumChannels) * float64(c.MemClockMHz) * 1e6 * c.BWScale * float64(c.BurstSize) / 1e9
}

// MemCyclesPerCoreCycle returns the DRAM-clock to core-clock ratio,
// including the bandwidth scale factor.
func (c *Config) MemCyclesPerCoreCycle() float64 {
	return float64(c.MemClockMHz) * c.BWScale / float64(c.CoreClockMHz)
}

// LinesPerL2Partition returns the number of lines in one L2 partition.
func (c *Config) LinesPerL2Partition() int {
	return c.L2Size / c.NumChannels / c.LineSize
}

// DecompressorKind selects who performs decompression in a design.
type DecompressorKind uint8

// Decompressor kinds.
const (
	DecompNone  DecompressorKind = iota // no compression anywhere
	DecompCABA                          // assist warps on the cores
	DecompHW                            // dedicated fixed-latency logic
	DecompIdeal                         // free (zero latency, zero energy)
)

var decompNames = [...]string{"none", "caba", "hw", "ideal"}

// String returns the decompressor kind name.
func (d DecompressorKind) String() string {
	if int(d) < len(decompNames) {
		return decompNames[d]
	}
	return fmt.Sprintf("decomp(%d)", uint8(d))
}

// CompressScope says where data lives in compressed form.
type CompressScope uint8

// Compression scopes.
const (
	ScopeNone   CompressScope = iota // nowhere
	ScopeMemory                      // DRAM only (HW-BDI-Mem): interconnect moves raw lines
	ScopeL2                          // L2 + DRAM + interconnect (lines move compressed to the SM)
)

var scopeNames = [...]string{"none", "memory", "l2"}

// String returns the scope name.
func (s CompressScope) String() string {
	if int(s) < len(scopeNames) {
		return scopeNames[s]
	}
	return fmt.Sprintf("scope(%d)", uint8(s))
}

// UseCase selects which assist-warp application(s) a design deploys on
// the cores. Compression is the paper's primary use case (Section 4);
// prefetching and memoization are the framework generalizations from
// Sections 7.1/7.2, promoted here to first-class simulated use cases.
type UseCase uint8

// Assist-warp use cases.
const (
	UseCompression UseCase = iota // data compression only (the default; Decomp still gates it)
	UsePrefetch                   // stride-detected assist-warp prefetching (Section 7.2)
	UseMemoization                // result-cache SFU memoization (Section 7.1)
	UseCombined                   // prefetch + memoization together (alongside any compression)
)

var useCaseNames = [...]string{"compression", "prefetch", "memoization", "combined"}

// String returns the use-case name.
func (u UseCase) String() string {
	if int(u) < len(useCaseNames) {
		return useCaseNames[u]
	}
	return fmt.Sprintf("usecase(%d)", uint8(u))
}

// Design is one of the evaluated system designs (Section 6): a compression
// algorithm, where compressed data lives, who decompresses it, and which
// assist-warp use cases run on the cores.
type Design struct {
	Name      string
	Scope     CompressScope
	Alg       compress.AlgID
	Decomp    DecompressorKind
	L1TagMult int // >1 enables L1 capacity compression with N x tags (Fig 13)
	L2TagMult int // >1 enables L2 capacity compression with N x tags (Fig 13)
	UseCase   UseCase
}

// The designs evaluated in the paper.
var (
	// DesignBase is the no-compression baseline.
	DesignBase = Design{Name: "Base", Scope: ScopeNone, Alg: compress.AlgNone, Decomp: DecompNone, L1TagMult: 1, L2TagMult: 1}
	// DesignHWBDIMem compresses DRAM traffic only, with dedicated logic at
	// the memory controller (prior work, e.g. Sathish et al. [72]).
	DesignHWBDIMem = Design{Name: "HW-BDI-Mem", Scope: ScopeMemory, Alg: compress.AlgBDI, Decomp: DecompHW, L1TagMult: 1, L2TagMult: 1}
	// DesignHWBDI compresses interconnect + DRAM traffic with dedicated
	// per-SM logic.
	DesignHWBDI = Design{Name: "HW-BDI", Scope: ScopeL2, Alg: compress.AlgBDI, Decomp: DecompHW, L1TagMult: 1, L2TagMult: 1}
	// DesignCABABDI is the paper's proposal: assist warps do the work.
	DesignCABABDI = Design{Name: "CABA-BDI", Scope: ScopeL2, Alg: compress.AlgBDI, Decomp: DecompCABA, L1TagMult: 1, L2TagMult: 1}
	// DesignIdealBDI has all the bandwidth benefits and none of the costs.
	DesignIdealBDI = Design{Name: "Ideal-BDI", Scope: ScopeL2, Alg: compress.AlgBDI, Decomp: DecompIdeal, L1TagMult: 1, L2TagMult: 1}
	// CABA with the alternative algorithms (Section 6.3).
	DesignCABAFPC   = Design{Name: "CABA-FPC", Scope: ScopeL2, Alg: compress.AlgFPC, Decomp: DecompCABA, L1TagMult: 1, L2TagMult: 1}
	DesignCABACPack = Design{Name: "CABA-CPack", Scope: ScopeL2, Alg: compress.AlgCPack, Decomp: DecompCABA, L1TagMult: 1, L2TagMult: 1}
	DesignCABABest  = Design{Name: "CABA-BestOfAll", Scope: ScopeL2, Alg: compress.AlgBest, Decomp: DecompCABA, L1TagMult: 1, L2TagMult: 1}
	// The framework use cases (Sections 7.1/7.2): assist warps with no
	// compression anywhere...
	DesignCABAPrefetch = Design{Name: "CABA-Prefetch", Scope: ScopeNone, Alg: compress.AlgNone, Decomp: DecompNone, L1TagMult: 1, L2TagMult: 1, UseCase: UsePrefetch}
	DesignCABAMemo     = Design{Name: "CABA-Memo", Scope: ScopeNone, Alg: compress.AlgNone, Decomp: DecompNone, L1TagMult: 1, L2TagMult: 1, UseCase: UseMemoization}
	// ...and everything at once: BDI compression + prefetch + memoization
	// sharing the same assist-warp slots and deploy bandwidth.
	DesignCABACombined = Design{Name: "CABA-Combined", Scope: ScopeL2, Alg: compress.AlgBDI, Decomp: DecompCABA, L1TagMult: 1, L2TagMult: 1, UseCase: UseCombined}
)

// CacheCompressed returns a Figure 13 design: CABA-BDI plus capacity
// compression at L1 or L2 with the given tag multiplier (2 or 4).
func CacheCompressed(level string, tagMult int) Design {
	d := DesignCABABDI
	switch level {
	case "L1":
		d.Name = fmt.Sprintf("CABA-L1-%dx", tagMult)
		d.L1TagMult = tagMult
	case "L2":
		d.Name = fmt.Sprintf("CABA-L2-%dx", tagMult)
		d.L2TagMult = tagMult
	default:
		panic("config: CacheCompressed level must be L1 or L2")
	}
	return d
}

// Compressing reports whether the design compresses anything.
func (d Design) Compressing() bool { return d.Scope != ScopeNone }

// Prefetching reports whether the design runs the stride-prefetch
// assist-warp use case.
func (d Design) Prefetching() bool {
	return d.UseCase == UsePrefetch || d.UseCase == UseCombined
}

// Memoizing reports whether the design runs the SFU-memoization
// assist-warp use case.
func (d Design) Memoizing() bool {
	return d.UseCase == UseMemoization || d.UseCase == UseCombined
}

// AssistUseCases reports whether any non-compression assist-warp use
// case is enabled — i.e. whether the simulator must instantiate the
// stride table, result cache and their trigger paths.
func (d Design) AssistUseCases() bool { return d.Prefetching() || d.Memoizing() }
