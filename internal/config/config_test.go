package config

import (
	"testing"

	"github.com/caba-sim/caba/internal/compress"
)

func TestBaselineMatchesTable1(t *testing.T) {
	c := Baseline()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// Table 1 values.
	checks := []struct {
		name string
		got  int
		want int
	}{
		{"SMs", c.NumSMs, 15},
		{"warp size", c.WarpSize, 32},
		{"channels", c.NumChannels, 6},
		{"warps/SM", c.MaxWarpsPerSM, 48},
		{"registers/SM", c.RegFilePerSM, 32768},
		{"shared/SM", c.SharedMemPerSM, 32 << 10},
		{"schedulers", c.NumSchedulers, 2},
		{"core MHz", c.CoreClockMHz, 1400},
		{"L1 size", c.L1Size, 16 << 10},
		{"L1 assoc", c.L1Assoc, 4},
		{"L2 size", c.L2Size, 768 << 10},
		{"L2 assoc", c.L2Assoc, 16},
		{"banks/MC", c.BanksPerChannel, 16},
		{"tCL", c.Timing.TCL, 12},
		{"tRP", c.Timing.TRP, 12},
		{"tRC", c.Timing.TRC, 40},
		{"tRAS", c.Timing.TRAS, 28},
		{"tRCD", c.Timing.TRCD, 12},
		{"tRRD", c.Timing.TRRD, 6},
		{"tWR", c.Timing.TWR, 12},
	}
	for _, ch := range checks {
		if ch.got != ch.want {
			t.Errorf("%s = %d, want %d", ch.name, ch.got, ch.want)
		}
	}
	// 177.4 GB/s peak bandwidth.
	if bw := c.PeakBandwidthGBs(); bw < 176 || bw > 179 {
		t.Errorf("peak bandwidth = %.1f GB/s, want ~177.4", bw)
	}
}

func TestValidateCatchesBadConfigs(t *testing.T) {
	mk := func(f func(*Config)) Config {
		c := Baseline()
		f(&c)
		return c
	}
	bad := []Config{
		mk(func(c *Config) { c.NumSMs = 0 }),
		mk(func(c *Config) { c.WarpSize = 0 }),
		mk(func(c *Config) { c.LineSize = 64 }),
		mk(func(c *Config) { c.L1Size = 1000 }),
		mk(func(c *Config) { c.NumChannels = 0 }),
		mk(func(c *Config) { c.BWScale = 0 }),
		mk(func(c *Config) { c.Scale = 0 }),
		mk(func(c *Config) { c.Scale = 2 }),
		mk(func(c *Config) { c.NumSchedulers = 0 }),
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d should fail validation", i)
		}
	}
}

func TestTestConfigValid(t *testing.T) {
	c := TestConfig()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDesignPresets(t *testing.T) {
	if DesignBase.Compressing() {
		t.Error("Base must not compress")
	}
	for _, d := range []Design{DesignHWBDIMem, DesignHWBDI, DesignCABABDI, DesignIdealBDI} {
		if !d.Compressing() {
			t.Errorf("%s must compress", d.Name)
		}
		if d.Alg != compress.AlgBDI {
			t.Errorf("%s must use BDI", d.Name)
		}
	}
	if DesignHWBDIMem.Scope != ScopeMemory {
		t.Error("HW-BDI-Mem compresses memory only")
	}
	if DesignHWBDI.Scope != ScopeL2 || DesignCABABDI.Scope != ScopeL2 {
		t.Error("HW-BDI and CABA-BDI compress interconnect + memory")
	}
	if DesignCABABDI.Decomp != DecompCABA || DesignIdealBDI.Decomp != DecompIdeal {
		t.Error("decompressor kinds wrong")
	}
}

func TestCacheCompressedPresets(t *testing.T) {
	d := CacheCompressed("L1", 2)
	if d.L1TagMult != 2 || d.L2TagMult != 1 || d.Name != "CABA-L1-2x" {
		t.Errorf("L1 preset wrong: %+v", d)
	}
	d = CacheCompressed("L2", 4)
	if d.L2TagMult != 4 || d.L1TagMult != 1 {
		t.Errorf("L2 preset wrong: %+v", d)
	}
	defer func() {
		if recover() == nil {
			t.Error("bad level must panic")
		}
	}()
	CacheCompressed("L3", 2)
}

func TestMemClockRatio(t *testing.T) {
	c := Baseline()
	r := c.MemCyclesPerCoreCycle()
	if r < 0.6 || r > 0.7 {
		t.Errorf("mem/core clock ratio = %v, want ~0.66", r)
	}
	c.BWScale = 2
	if c.MemCyclesPerCoreCycle() != 2*r {
		t.Error("BWScale must scale the ratio")
	}
}

func TestSchedPolicyNames(t *testing.T) {
	if SchedGTO.String() != "gto" || SchedLRR.String() != "lrr" {
		t.Error("policy names wrong")
	}
}
