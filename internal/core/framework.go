package core

import (
	"fmt"

	"github.com/caba-sim/caba/internal/isa"
)

// Priority is an assist warp's scheduling priority (Section 3.2.3):
// high-priority warps (decompression) are required for correctness and
// take precedence over their parent warp; low-priority warps (compression)
// run only in idle issue slots and carry no completion guarantee.
type Priority uint8

// Priorities.
const (
	PriLow Priority = iota
	PriHigh
)

// RoutineID indexes the Assist Warp Store (the paper's SR.ID).
type RoutineID uint16

// Routine is one assist-warp subroutine: its code, static priority and
// static lane mask (Section 3.4: the active mask provides flexibility when
// fewer than 32 lanes are needed).
type Routine struct {
	ID         RoutineID
	Name       string
	Prog       *isa.Program
	Priority   Priority
	ActiveMask uint32
}

// Store is the Assist Warp Store (AWS): on-chip storage preloaded with
// subroutine code before the application runs, indexed by SR.ID (and
// walked by Inst.ID as the AWC deploys instructions).
type Store struct {
	routines map[RoutineID]*Routine
	// TotalInstrs approximates the AWS's storage requirement.
	TotalInstrs int
}

// NewStore returns an empty AWS.
func NewStore() *Store {
	return &Store{routines: make(map[RoutineID]*Routine)}
}

// Preload installs a routine; duplicate IDs are an error.
func (s *Store) Preload(r *Routine) error {
	if r.Prog == nil || len(r.Prog.Code) == 0 {
		return fmt.Errorf("core: routine %q has no code", r.Name)
	}
	if _, dup := s.routines[r.ID]; dup {
		return fmt.Errorf("core: duplicate routine id %d (%q)", r.ID, r.Name)
	}
	s.routines[r.ID] = r
	s.TotalInstrs += len(r.Prog.Code)
	return nil
}

// Get looks up a routine by ID.
func (s *Store) Get(id RoutineID) (*Routine, bool) {
	r, ok := s.routines[id]
	return r, ok
}

// MustGet looks up a routine that is known to be preloaded.
func (s *Store) MustGet(id RoutineID) *Routine {
	r, ok := s.routines[id]
	if !ok {
		panic(fmt.Sprintf("core: routine %d not preloaded", id))
	}
	return r
}

// Len returns the number of preloaded routines.
func (s *Store) Len() int { return len(s.routines) }

// Entry is one Assist Warp Table (AWT) entry: a triggered assist warp
// coupled to its parent warp, tracking the next instruction to deploy
// (Inst.ID) via its execution context, plus live-in/live-out bookkeeping.
type Entry struct {
	Routine *Routine
	// Pri mirrors Routine.Priority so the per-cycle deploy scan reads one
	// byte here instead of chasing the Routine pointer.
	Pri  Priority
	Warp int // parent warp index within the SM
	Exec *Exec

	// Staged counts instructions deployed into the AWB but not yet issued.
	Staged int
	// Outstanding counts issued instructions not yet written back.
	Outstanding int

	// SB is the assist warp's issue scoreboard over its reserved register
	// slice; embedding it here avoids a per-entry side-table.
	SB RegMask

	Killed bool
	User   any // opaque owner context (e.g. the pending load this unblocks)

	// OnComplete fires when the routine has executed its last instruction
	// and all writebacks have drained.
	OnComplete func(*Entry)
}

// Done reports whether the assist warp has finished executing.
func (e *Entry) Done() bool {
	return e.Killed || (e.Exec.Done && e.Staged == 0 && e.Outstanding == 0)
}

// Controller is the Assist Warp Controller (AWC): it triggers assist warps
// on events, tracks them in the AWT, deploys their instructions
// round-robin into the Assist Warp Buffer, and throttles low-priority
// deployment by monitoring pipeline utilization (Section 3.4, Dynamic
// Feedback and Throttling).
type Controller struct {
	Store *Store

	// MaxEntries bounds the AWT (one slot per hardware warp context, so
	// every parent warp can host an assist warp).
	MaxEntries int
	// DeployBW is the maximum instructions staged per cycle (decode
	// bandwidth shared with the front-end).
	DeployBW int
	// StagedCap is the per-entry AWB staging capacity.
	StagedCap int

	// Low-priority AWB partition: the dedicated two-entry IB partition.
	LowCap int

	entries []*Entry
	rr      int

	// highByWarp gives O(1) lookup of the high-priority assist warp
	// attached to a parent warp (at most one: only a single instance of
	// each routine per parent, Section 3.2.2). A slice indexed by warp
	// slot, grown on demand: CanTrigger sits on the per-trigger
	// findAssistHost scan, where a map lookup is measurably hotter.
	highByWarp []*Entry
	lowList    []*Entry

	// Utilization monitor: a sliding window of issue-slot business.
	window     [64]bool
	windowPos  int
	windowBusy int

	// drained short-circuits Tick's deploy scan: it is set when an
	// unthrottled full scan staged nothing, and cleared whenever staging
	// capacity can reappear (an instruction is consumed from the AWB, or
	// a new entry is triggered). It is a pure strategy hint — Tick's
	// architected effects (Staged, DeployedIns, rr rotation) are
	// identical with or without it — and is not serialized; Load clears
	// it so a restored controller rescans conservatively.
	drained bool

	// Stats.
	Triggered   uint64
	KilledCount uint64
	DeployedIns uint64
}

// NewController builds an AWC.
func NewController(store *Store, maxEntries int) *Controller {
	return &Controller{
		Store:      store,
		MaxEntries: maxEntries,
		DeployBW:   4,
		StagedCap:  4,
		LowCap:     2,
	}
}

// highFor is the slice-backed lookup behind HighFor/CanTrigger.
func (c *Controller) highFor(warp int) *Entry {
	if warp < len(c.highByWarp) {
		return c.highByWarp[warp]
	}
	return nil
}

// setHigh installs (or clears, with nil) the high-priority entry for a
// parent warp, growing the slice to cover the slot.
func (c *Controller) setHigh(warp int, e *Entry) {
	for warp >= len(c.highByWarp) {
		c.highByWarp = append(c.highByWarp, nil)
	}
	c.highByWarp[warp] = e
}

// CanTrigger reports whether a new assist warp of the given priority can
// be accepted for parent warp `warp`.
func (c *Controller) CanTrigger(pri Priority, warp int) bool {
	if len(c.entries) >= c.MaxEntries {
		return false
	}
	if pri == PriHigh {
		return c.highFor(warp) == nil
	}
	return len(c.lowList) < c.LowCap
}

// Trigger creates an AWT entry running routine rt on behalf of warp. exec
// must be freshly built for the routine (registers, staging buffers and
// live-ins populated by the caller, which models the MOVE instructions
// that copy live-in data, Section 3.4). Returns nil if the AWT or the
// relevant AWB partition is full.
func (c *Controller) Trigger(rt *Routine, warp int, exec *Exec, user any, onComplete func(*Entry)) *Entry {
	if !c.CanTrigger(rt.Priority, warp) {
		return nil
	}
	e := &Entry{Routine: rt, Pri: rt.Priority, Warp: warp, Exec: exec, User: user, OnComplete: onComplete}
	c.entries = append(c.entries, e)
	if rt.Priority == PriHigh {
		c.setHigh(warp, e)
	} else {
		c.lowList = append(c.lowList, e)
	}
	c.Triggered++
	c.drained = false
	return e
}

// NoteIssueSlot feeds the utilization monitor: busy is true when the slot
// issued an instruction.
func (c *Controller) NoteIssueSlot(busy bool) {
	if c.window[c.windowPos] {
		c.windowBusy--
	}
	c.window[c.windowPos] = busy
	if busy {
		c.windowBusy++
	}
	c.windowPos = (c.windowPos + 1) % len(c.window)
}

// NoteIdleSlots advances the utilization monitor by n idle slots, exactly
// as if NoteIssueSlot(false) had been called n times. The fast-forward
// engine uses it to credit skipped cycles in bulk; once n covers the whole
// window the update collapses to a clear plus a position rotation.
func (c *Controller) NoteIdleSlots(n int) {
	if n >= len(c.window) {
		for i := range c.window {
			c.window[i] = false
		}
		c.windowBusy = 0
		c.windowPos = (c.windowPos + n) % len(c.window)
		return
	}
	for i := 0; i < n; i++ {
		c.NoteIssueSlot(false)
	}
}

// Idle reports whether the AWT holds no assist warps (the controller's
// Tick and issue paths are guaranteed no-ops).
func (c *Controller) Idle() bool { return len(c.entries) == 0 }

// Full reports whether the AWT has no free entry slot (CanTrigger is
// false for every priority and warp).
func (c *Controller) Full() bool { return len(c.entries) >= c.MaxEntries }

// Utilization returns the fraction of recent issue slots that were busy.
func (c *Controller) Utilization() float64 {
	return float64(c.windowBusy) / float64(len(c.window))
}

// LowPriorityThrottled reports whether low-priority deployment should be
// withheld because the pipelines are already saturated.
func (c *Controller) LowPriorityThrottled() bool {
	return c.Utilization() > 0.90
}

// Tick deploys up to DeployBW instructions into the AWB, round-robin over
// AWT entries, respecting per-entry staging capacity and the low-priority
// throttle. High-priority (blocking, correctness-critical) assist warps
// consume deploy bandwidth first; low-priority warps use what is left.
func (c *Controller) Tick() {
	if len(c.entries) == 0 {
		return
	}
	n := len(c.entries)
	if c.drained {
		c.rr = (c.rr + 1) % n
		return
	}
	credits := c.DeployBW
	deploy := func(pri Priority) {
		for scanned := 0; scanned < n && credits > 0; scanned++ {
			e := c.entries[(c.rr+scanned)%n]
			// Cheapest rejections first; the conditions are pure, so the
			// order does not change which entries are skipped.
			if e.Pri != pri || e.Staged >= c.StagedCap || e.Killed || e.Exec.Done {
				continue
			}
			e.Staged++
			c.DeployedIns++
			credits--
		}
	}
	deploy(PriHigh)
	throttled := c.LowPriorityThrottled()
	if !throttled {
		deploy(PriLow)
	}
	if credits == c.DeployBW && !throttled {
		// Nothing staged on a full, unthrottled scan: every entry is at
		// capacity, killed, or done. None of those revert except through
		// NoteConsumed/Trigger, which re-arm the scan.
		c.drained = true
	}
	c.rr = (c.rr + 1) % n
}

// NoteConsumed tells the controller an instruction left the AWB (an SM
// issued a staged assist instruction), so a capacity-full entry may have
// room again and the deploy scan must resume.
func (c *Controller) NoteConsumed() { c.drained = false }

// HighFor returns the high-priority assist warp attached to warp, if any.
func (c *Controller) HighFor(warp int) *Entry { return c.highFor(warp) }

// LowEntries returns the low-priority partition contents.
func (c *Controller) LowEntries() []*Entry { return c.lowList }

// Entries returns all live AWT entries.
func (c *Controller) Entries() []*Entry { return c.entries }

// Retire removes a finished or killed entry from the AWT and AWB
// partitions and fires its completion callback (unless killed).
func (c *Controller) Retire(e *Entry) {
	for i, x := range c.entries {
		if x == e {
			c.entries = append(c.entries[:i], c.entries[i+1:]...)
			break
		}
	}
	if c.highFor(e.Warp) == e {
		c.highByWarp[e.Warp] = nil
	}
	for i, x := range c.lowList {
		if x == e {
			c.lowList = append(c.lowList[:i], c.lowList[i+1:]...)
			break
		}
	}
	if !e.Killed && e.OnComplete != nil {
		e.OnComplete(e)
	}
}

// Kill flushes an assist warp (Section 3.4: entries in the AWT and AWB are
// simply flushed when the warp is no longer required or beneficial).
func (c *Controller) Kill(e *Entry) {
	if e.Killed {
		return
	}
	e.Killed = true
	e.Staged = 0
	c.KilledCount++
	c.Retire(e)
}
