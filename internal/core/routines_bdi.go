package core

import (
	"fmt"

	"github.com/caba-sim/caba/internal/compress"
	"github.com/caba-sim/caba/internal/isa"
)

// BDI assist-warp subroutines (Section 4.1.2). Lane i handles value i of
// the line; decompression is "a masked vector addition of the deltas to
// the appropriate bases", compression tests an encoding with a warp-wide
// predicate AND (vote.all).

// maskFor activates the low n lanes.
func maskFor(n int) uint32 {
	if n >= 32 {
		return FullMask
	}
	return (1 << n) - 1
}

// widthOp maps a byte width to the store/load Width field.
func chkWidth(w int) uint8 {
	switch w {
	case 1, 2, 4, 8:
		return uint8(w)
	}
	panic(fmt.Sprintf("core: bad width %d", w))
}

// bdiDecompRoutine builds the decompression subroutine for one encoding.
func bdiDecompRoutine(enc compress.BDIEncoding) *Routine {
	name := "bdi.decomp." + enc.String()
	b := isa.NewBuilder(name)
	r := isa.R
	p := isa.P

	switch enc {
	case compress.BDIZeros:
		// Every lane zeroes its 4-byte slice of the line.
		b.Mov(r(2), isa.RegLane).
			ShlI(r(2), r(2), 2).
			MovI(r(3), 0).
			StStage(r(2), 0, r(3), 4).
			Exit()
		return &Routine{ID: RtBDIDecomp + RoutineID(enc), Name: name,
			Prog: b.MustBuild(), Priority: PriHigh, ActiveMask: FullMask}

	case compress.BDIRepeat:
		// Lanes 0..15 broadcast the 8-byte base across the line.
		b.MovI(r(2), 0).
			LdStage(r(3), r(2), 1, 8). // base at payload[1..9]
			Mov(r(4), isa.RegLane).
			ShlI(r(4), r(4), 3).
			StStage(r(4), 0, r(3), 8).
			Exit()
		return &Routine{ID: RtBDIDecomp + RoutineID(enc), Name: name,
			Prog: b.MustBuild(), Priority: PriHigh, ActiveMask: maskFor(16)}
	}

	w, d := enc.Geometry()
	n := compress.LineSize / w
	basePos := int64(1 + n/8)
	deltaPos := basePos + int64(w)

	// Emit one element's work; for n=64 (b2d1) each lane covers two
	// elements. The mask fits one 64-bit register, so a single uniform
	// load replaces per-lane byte extraction — this is the paper's "masked
	// vector addition" at its minimal instruction count.
	log2 := func(v int) int64 {
		s := int64(0)
		for v > 1 {
			v >>= 1
			s++
		}
		return s
	}
	b.MovI(r(3), basePos).
		LdStage(r(4), r(3), 0, chkWidth(w)).     // base (uniform)
		LdStage(r(9), r(3), int64(1)-basePos, 8) // whole mask (uniform, at byte 1)
	element := func(laneOffset int64) {
		b.Mov(r(2), isa.RegLane)
		if laneOffset != 0 {
			b.AddI(r(2), r(2), laneOffset)
		}
		b.Shr(r(5), r(9), r(2)).
			AndI(r(5), r(5), 1). // use-base bit
			ShlI(r(6), r(2), log2(d)).
			LdStage(r(6), r(6), deltaPos, chkWidth(d)).
			Sext(r(6), r(6), chkWidth(d)). // signed delta
			Add(r(7), r(4), r(6)).         // base + delta
			SetPI(isa.CmpNE, p(0), r(5), 0).
			Sel(r(7), p(0), r(7), r(6)). // zero base keeps the delta
			ShlI(r(8), r(2), log2(w)).
			StStage(r(8), 0, r(7), chkWidth(w)) // store truncates to width
	}
	element(0)
	if n > 32 {
		element(32)
	}
	b.Exit()
	return &Routine{ID: RtBDIDecomp + RoutineID(enc), Name: name,
		Prog: b.MustBuild(), Priority: PriHigh, ActiveMask: maskFor(n)}
}

// bdiCompSpecialRoutine tests the all-zero and repeated-value encodings
// over the raw line and writes the winning payload. Result: 2 = zeros,
// 1 = repeat, 0 = neither.
func bdiCompSpecialRoutine() *Routine {
	b := isa.NewBuilder("bdi.comp.special")
	r := isa.R
	p := isa.P
	b.Mov(r(2), isa.RegLane).
		ShlI(r(3), r(2), 3).
		LdStage(r(4), r(3), 0, 8). // v_i (lanes 0..15)
		SetPI(isa.CmpEQ, p(0), r(4), 0).
		VoteAll(p(0), p(0)). // all zero?
		MovI(r(5), 0).
		Shfl(r(6), r(4), r(5)). // v_0
		SetP(isa.CmpEQ, p(1), r(4), r(6)).
		VoteAll(p(1), p(1)). // all equal?
		// Lane-0 payload writes.
		SetPI(isa.CmpEQ, p(2), r(2), 0). // lane 0
		MovI(r(7), 0).                   // address register
		MovI(r(8), int64(compress.BDIRepeat)).
		PAnd(p(3), p(2), p(1)).
		StStage(r(7), 0, r(8), 1).WithGuard(p(3), false). // enc byte = repeat
		StStage(r(7), 1, r(6), 8).WithGuard(p(3), false). // base = v_0
		MovI(r(8), int64(compress.BDIZeros)).
		PAnd(p(3), p(2), p(0)).
		StStage(r(7), 0, r(8), 1).WithGuard(p(3), false). // enc byte = zeros
		// Result: 0 / 1 (repeat) / 2 (zeros) — zeros wins when both hold.
		MovI(r(0), 0).
		MovI(r(0), 1).WithGuard(p(1), false).
		MovI(r(0), 2).WithGuard(p(0), false).
		Exit()
	return &Routine{ID: RtBDICompSpecial, Name: "bdi.comp.special",
		Prog: b.MustBuild(), Priority: PriLow, ActiveMask: maskFor(16)}
}

// bdiCompTestRoutine tests one base-delta encoding: every lane checks its
// value against the implicit zero base and the explicit base (the first
// value that does not fit the zero base, found with ballot+ctz+shfl), and
// a warp-wide vote.all — the paper's global predicate register — decides
// success. On success the lanes cooperatively emit the exact payload.
func bdiCompTestRoutine(enc compress.BDIEncoding) *Routine {
	w, d := enc.Geometry()
	if w == 0 {
		panic("core: comp test needs a base-delta encoding")
	}
	n := compress.LineSize / w
	if n > 32 {
		panic("core: comp test encoding exceeds warp width")
	}
	basePos := int64(1 + n/8)
	deltaPos := basePos + int64(w)
	maskWidth := chkWidth(n / 8) // 2 bytes for n=16, 4 for n=32

	name := "bdi.comp." + enc.String()
	b := isa.NewBuilder(name)
	r := isa.R
	p := isa.P
	b.Mov(r(2), isa.RegLane). // i
					MulI(r(3), r(2), int64(w)).
					LdStage(r(4), r(3), 0, chkWidth(w)). // v (zero-extended)
					Sext(r(5), r(4), chkWidth(w)).       // sv
					Sext(r(6), r(5), chkWidth(d)).
					SetP(isa.CmpEQ, p(0), r(6), r(5)). // fits zero base
					PNot(p(1), p(0)).                  // needs explicit base
					Ballot(r(7), p(1)).
					Ctz(r(8), r(7)).
					AndI(r(8), r(8), 31).
					Shfl(r(9), r(4), r(8)). // base candidate
					VoteAny(p(2), p(1)).
					MovI(r(10), 0).
					Sel(r(9), p(2), r(9), r(10)). // base (0 when unused, as the oracle stores)
					Sub(r(11), r(4), r(9)).
					Sext(r(11), r(11), chkWidth(w)). // v - base at width w
					Sext(r(12), r(11), chkWidth(d)).
					SetP(isa.CmpEQ, p(3), r(12), r(11)). // fits base delta
					POr(p(3), p(0), p(3)).
					VoteAll(p(3), p(3)). // the global predicate AND
		// Payload (all guarded on success).
		Ballot(r(7), p(1)).              // base-select mask bits
		SetPI(isa.CmpEQ, p(2), r(2), 0). // lane 0
		PAnd(p(2), p(2), p(3)).
		MovI(r(10), 0).
		MovI(r(13), int64(enc)).
		StStage(r(10), 0, r(13), 1).WithGuard(p(2), false).
		StStage(r(10), 1, r(7), maskWidth).WithGuard(p(2), false).
		StStage(r(10), basePos, r(9), chkWidth(w)).WithGuard(p(2), false).
		Sel(r(13), p(0), r(5), r(11)). // delta: sv (zero base) or v-base
		MulI(r(3), r(2), int64(d)).
		StStage(r(3), deltaPos, r(13), chkWidth(d)).WithGuard(p(3), false).
		MovI(r(0), 0).
		MovI(r(0), 1).WithGuard(p(3), false).
		Exit()
	return &Routine{ID: RtBDICompTest + RoutineID(enc), Name: name,
		Prog: b.MustBuild(), Priority: PriLow, ActiveMask: maskFor(n)}
}
