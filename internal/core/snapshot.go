package core

import (
	"github.com/caba-sim/caba/internal/isa"
	"github.com/caba-sim/caba/internal/snapshot"
)

// Serialization of the CABA framework's architectural state: warp
// execution contexts (Exec) and the Assist Warp Controller with its live
// AWT entries. Opaque owner state (Entry.User, Entry.OnComplete) is
// round-tripped through caller-supplied codecs, since only the GPU core
// knows how to encode its payloads and reattach completion callbacks.

// maxSnapLen bounds decoded collection lengths; every real collection here
// is far smaller, so a larger claim is always corruption.
const maxSnapLen = 1 << 20

// Bits exposes the scoreboard's raw bitsets for serialization.
func (m *RegMask) Bits() (g [4]uint64, p uint8) { return m.g, m.p }

// SetBits restores the scoreboard from its raw bitsets.
func (m *RegMask) SetBits(g [4]uint64, p uint8) { m.g, m.p = g, p }

// StackDepth returns the SIMT divergence-stack depth (invariant audits
// bound it by the program length).
func (e *Exec) StackDepth() int { return len(e.stack) }

// Save serializes the execution context. Program identity is the caller's
// responsibility (a warp's program comes from the kernel, an assist
// warp's from its routine). includeBufs also serializes the staging
// buffers and the Shared view — set for assist warps, whose Exec owns all
// three; regular warps stage nothing and share the CTA's memory, which
// the SM serializes once per CTA.
func (e *Exec) Save(w *snapshot.Writer, includeBufs bool) {
	w.Int(e.PC)
	w.Int(e.rpc)
	w.U32(e.Active)
	w.U32(e.launch)
	w.U32(e.exited)
	w.Len(len(e.stack))
	for _, f := range e.stack {
		w.Int(f.pc)
		w.Int(f.rpc)
		w.U32(f.mask)
	}
	w.Len(len(e.regBack))
	for _, v := range e.regBack {
		w.U64(v)
	}
	for lane := range e.Preds {
		var bits uint8
		for p := 0; p < isa.NumPredRegs; p++ {
			if e.Preds[lane][p] {
				bits |= 1 << p
			}
		}
		w.U8(bits)
	}
	for lane := range e.Special {
		for _, v := range e.Special[lane] {
			w.U64(v)
		}
	}
	if includeBufs {
		w.Bytes(e.StageIn)
		w.Bytes(e.StageOut)
		w.Bytes(e.Shared)
	}
	w.Bool(e.Done)
	w.Bool(e.AtBarrier)
	if e.Err != nil {
		w.Bool(true)
		w.String(e.Err.Error())
	} else {
		w.Bool(false)
	}
	w.U64(e.Executed)
}

// Load restores the execution context for prog, mirroring Save. The
// caller sets Mem and (for regular warps) Shared afterwards.
func (e *Exec) Load(r *snapshot.Reader, prog *isa.Program, includeBufs bool) error {
	e.Reset(prog, 0)
	e.PC = r.Int()
	e.rpc = r.Int()
	e.Active = r.U32()
	e.launch = r.U32()
	e.exited = r.U32()
	n := r.Len(maxSnapLen)
	for i := 0; i < n; i++ {
		e.stack = append(e.stack, pathFrame{pc: r.Int(), rpc: r.Int(), mask: r.U32()})
	}
	nr := r.Len(maxSnapLen)
	if r.Err() != nil {
		return r.Err()
	}
	if nr != len(e.regBack) {
		return &snapshot.FormatError{Off: -1,
			Msg: "register file size mismatch (wrong program?)"}
	}
	for i := range e.regBack {
		e.regBack[i] = r.U64()
	}
	for lane := range e.Preds {
		bits := r.U8()
		for p := 0; p < isa.NumPredRegs; p++ {
			e.Preds[lane][p] = bits&(1<<p) != 0
		}
	}
	for lane := range e.Special {
		for s := range e.Special[lane] {
			e.Special[lane][s] = r.U64()
		}
	}
	if includeBufs {
		e.StageIn = append(e.StageIn[:0], r.Bytes(maxSnapLen)...)
		e.StageOut = append(e.StageOut[:0], r.Bytes(maxSnapLen)...)
		e.Shared = append(e.Shared[:0], r.Bytes(maxSnapLen)...)
	}
	e.Done = r.Bool()
	e.AtBarrier = r.Bool()
	if r.Bool() {
		e.Err = &execErr{msg: r.String(maxSnapLen)}
	}
	e.Executed = r.U64()
	if e.PC < 0 || e.PC > len(prog.Code) || e.rpc < 0 || e.rpc > len(prog.Code) {
		return &snapshot.FormatError{Off: -1, Msg: "PC out of program range"}
	}
	return r.Err()
}

// execErr is a restored execution error: only the message survives a
// snapshot round trip (the wrap chain does not), which is all the
// simulator's error reporting consumes.
type execErr struct{ msg string }

// Error returns the restored message.
func (e *execErr) Error() string { return e.msg }

// Save serializes the controller and its AWT entries. encEntry encodes
// each entry's opaque User payload (OnComplete is rebuilt from it on
// load). Entries are written in AWT order, which is also trigger order
// for the low-priority partition, so Load rebuilds highByWarp and lowList
// exactly.
func (c *Controller) Save(w *snapshot.Writer, encEntry func(*snapshot.Writer, *Entry) error) error {
	w.Int(c.rr)
	var bits uint64
	for i, b := range c.window {
		if b {
			bits |= 1 << i
		}
	}
	w.U64(bits)
	w.Int(c.windowPos)
	w.Int(c.windowBusy)
	w.U64(c.Triggered)
	w.U64(c.KilledCount)
	w.U64(c.DeployedIns)
	w.Len(len(c.entries))
	for _, e := range c.entries {
		w.U64(uint64(e.Routine.ID))
		w.Int(e.Warp)
		w.Int(e.Staged)
		w.Int(e.Outstanding)
		g, p := e.SB.Bits()
		for _, v := range g {
			w.U64(v)
		}
		w.U8(p)
		w.Bool(e.Killed)
		e.Exec.Save(w, true)
		if err := encEntry(w, e); err != nil {
			return err
		}
	}
	return nil
}

// Load restores the controller. decEntry decodes each entry's User
// payload and must set OnComplete; the entry's Routine, Warp and Exec are
// already populated when it runs.
func (c *Controller) Load(r *snapshot.Reader, decEntry func(*snapshot.Reader, *Entry) error) error {
	c.rr = r.Int()
	bits := r.U64()
	for i := range c.window {
		c.window[i] = bits&(1<<i) != 0
	}
	c.windowPos = r.Int()
	c.windowBusy = r.Int()
	c.drained = false
	c.Triggered = r.U64()
	c.KilledCount = r.U64()
	c.DeployedIns = r.U64()
	n := r.Len(maxSnapLen)
	if r.Err() != nil {
		return r.Err()
	}
	c.entries = c.entries[:0]
	c.lowList = c.lowList[:0]
	clear(c.highByWarp)
	for i := 0; i < n; i++ {
		id := RoutineID(r.U64())
		rt, ok := c.Store.Get(id)
		if r.Err() != nil {
			return r.Err()
		}
		if !ok {
			return &snapshot.FormatError{Off: -1, Msg: "unknown assist routine id"}
		}
		e := &Entry{Routine: rt, Pri: rt.Priority, Warp: r.Int(), Staged: r.Int(), Outstanding: r.Int()}
		var g [4]uint64
		for j := range g {
			g[j] = r.U64()
		}
		e.SB.SetBits(g, r.U8())
		e.Killed = r.Bool()
		e.Exec = NewAssistExec(rt)
		if err := e.Exec.Load(r, rt.Prog, true); err != nil {
			return err
		}
		if err := decEntry(r, e); err != nil {
			return err
		}
		c.entries = append(c.entries, e)
		if rt.Priority == PriHigh {
			c.setHigh(e.Warp, e)
		} else {
			c.lowList = append(c.lowList, e)
		}
	}
	return r.Err()
}
