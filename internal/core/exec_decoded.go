package core

import (
	"math/bits"

	"github.com/caba-sim/caba/internal/isa"
)

// This file is the predecoded execution engine: stepDecoded executes one
// warp instruction from the program's superop form (isa.Decoded). It is
// the default engine; Exec.Interp routes through stepInterp instead. The
// two must stay bit-identical in every observable effect — register and
// predicate files, SIMT stack, PC/rpc, Done/AtBarrier/Err (including
// error text), Executed, and the returned StepInfo — a property pinned by
// FuzzPredecode and the gpu differential tests.
//
// The speed comes from predecode, not from different semantics: operands
// are direct register-file indices (no RegNone/IsGeneral branches), the
// per-lane EvalALU switch is hoisted into one dispatch per instruction
// with a tight loop per op, lane iteration walks only set mask bits, and
// Brab's reconvergence point is a precomputed field instead of an IPDom
// table lookup.

// The per-lane accessors index the register-major backing directly
// (reg*WarpSize+lane): the WarpSize stride is a constant shift, and the
// lanes of one register are contiguous, so a masked sweep over the warp
// stays within a few cache lines per operand.

// srcA reads the resolved A operand in one lane.
func (e *Exec) srcA(lane int, s *isa.Superop) uint64 {
	if s.ASpec {
		return e.Special[lane][s.A]
	}
	return e.regBack[int(s.A)*WarpSize+lane]
}

// srcB reads the resolved B operand in one lane.
func (e *Exec) srcB(lane int, s *isa.Superop) uint64 {
	if s.BSpec {
		return e.Special[lane][s.B]
	}
	return e.regBack[int(s.B)*WarpSize+lane]
}

// srcC reads the resolved C operand in one lane.
func (e *Exec) srcC(lane int, s *isa.Superop) uint64 {
	if s.CSpec {
		return e.Special[lane][s.C]
	}
	return e.regBack[int(s.C)*WarpSize+lane]
}

// setDst writes the general destination register in one lane (no-op when
// the instruction has none).
func (e *Exec) setDst(lane int, s *isa.Superop, v uint64) {
	if s.Dst >= 0 {
		e.regBack[int(s.Dst)*WarpSize+lane] = v
	}
}

// execMaskSop is execMask on the predecoded form.
func (e *Exec) execMaskSop(s *isa.Superop) uint32 {
	if s.Guard == isa.PredNone {
		return e.Active
	}
	var m uint32
	for a := e.Active; a != 0; a &= a - 1 {
		lane := bits.TrailingZeros32(a)
		if e.Preds[lane][s.Guard] != s.GuardNeg {
			m |= 1 << lane
		}
	}
	return m
}

// stepDecoded executes exactly one warp instruction from the superop
// form, filling e.info in place (only Addrs entries for executed lanes
// are written; see StepRef). See Step for the contract.
func (e *Exec) stepDecoded() bool {
	if e.Done || e.AtBarrier || e.Err != nil {
		return false
	}
	s := &e.dec.Ops[e.PC]
	e.Executed++
	info := &e.info
	info.Instr = s.In
	info.ExecMask = e.execMaskSop(s)
	info.Width = s.Width
	info.IsGlobal = false
	adv := true // advance PC by 1 unless a branch redirects

	switch s.Op {
	case isa.OpBra:
		// Unconditional (assembler only emits guard-free OpBra).
		e.PC = int(s.Target)
		adv = false

	case isa.OpBrab:
		adv = false
		taken := info.ExecMask
		notTaken := e.Active &^ taken
		switch {
		case taken == 0:
			e.PC++
		case notTaken == 0:
			e.PC = int(s.Target)
		default:
			r := int(s.RPC)
			e.stack = append(e.stack,
				pathFrame{pc: r, rpc: e.rpc, mask: e.Active},
				pathFrame{pc: e.PC + 1, rpc: r, mask: notTaken},
			)
			e.Active = taken
			e.PC = int(s.Target)
			e.rpc = r
		}

	case isa.OpExit:
		adv = false
		e.exited |= info.ExecMask
		if rem := e.Active &^ info.ExecMask; rem != 0 {
			// Guarded exit: surviving lanes continue.
			e.Active = rem
			e.PC++
		} else {
			e.popPath()
		}

	case isa.OpBar:
		// PC advances in ReleaseBarrier, once all CTA warps arrive.
		e.AtBarrier = true
		adv = false

	case isa.OpSetP:
		for m := info.ExecMask; m != 0; m &= m - 1 {
			lane := bits.TrailingZeros32(m)
			e.Preds[lane][s.PDst] = isa.EvalCmp(s.Cmp, e.srcA(lane, s), e.srcB(lane, s))
		}

	case isa.OpSetPI:
		b := uint64(s.Imm)
		for m := info.ExecMask; m != 0; m &= m - 1 {
			lane := bits.TrailingZeros32(m)
			e.Preds[lane][s.PDst] = isa.EvalCmp(s.Cmp, e.srcA(lane, s), b)
		}

	case isa.OpPAnd:
		for m := info.ExecMask; m != 0; m &= m - 1 {
			lane := bits.TrailingZeros32(m)
			e.Preds[lane][s.PDst] = e.Preds[lane][s.PA] && e.Preds[lane][s.PB]
		}

	case isa.OpPOr:
		for m := info.ExecMask; m != 0; m &= m - 1 {
			lane := bits.TrailingZeros32(m)
			e.Preds[lane][s.PDst] = e.Preds[lane][s.PA] || e.Preds[lane][s.PB]
		}

	case isa.OpPNot:
		for m := info.ExecMask; m != 0; m &= m - 1 {
			lane := bits.TrailingZeros32(m)
			e.Preds[lane][s.PDst] = !e.Preds[lane][s.PA]
		}

	case isa.OpVoteAll, isa.OpVoteAny:
		all, any := true, false
		for m := info.ExecMask; m != 0; m &= m - 1 {
			lane := bits.TrailingZeros32(m)
			if e.Preds[lane][s.PA] {
				any = true
			} else {
				all = false
			}
		}
		v := any
		if s.Op == isa.OpVoteAll {
			v = all
		}
		for m := info.ExecMask; m != 0; m &= m - 1 {
			lane := bits.TrailingZeros32(m)
			e.Preds[lane][s.PDst] = v
		}

	case isa.OpBallot:
		var mask uint64
		for m := info.ExecMask; m != 0; m &= m - 1 {
			lane := bits.TrailingZeros32(m)
			if e.Preds[lane][s.PA] {
				mask |= 1 << lane
			}
		}
		for m := info.ExecMask; m != 0; m &= m - 1 {
			lane := bits.TrailingZeros32(m)
			e.setDst(lane, s, mask)
		}

	case isa.OpShfl:
		// Snapshot pre-instruction values of SrcA across the warp.
		for lane := 0; lane < WarpSize; lane++ {
			e.shflBuf[lane] = e.srcA(lane, s)
		}
		for m := info.ExecMask; m != 0; m &= m - 1 {
			lane := bits.TrailingZeros32(m)
			src := int(e.srcB(lane, s) & 31)
			var v uint64
			if info.ExecMask&(1<<src) != 0 {
				v = e.shflBuf[src]
			}
			e.setDst(lane, s, v)
		}

	case isa.OpSel:
		for m := info.ExecMask; m != 0; m &= m - 1 {
			lane := bits.TrailingZeros32(m)
			if e.Preds[lane][s.PA] {
				e.setDst(lane, s, e.srcA(lane, s))
			} else {
				e.setDst(lane, s, e.srcB(lane, s))
			}
		}

	case isa.OpLdGlobal:
		info.IsGlobal = true
		imm := uint64(s.Imm)
		for m := info.ExecMask; m != 0; m &= m - 1 {
			lane := bits.TrailingZeros32(m)
			addr := e.srcA(lane, s) + imm
			info.Addrs[lane] = addr
			e.setDst(lane, s, e.Mem.LoadGlobal(addr, s.Width))
		}

	case isa.OpStGlobal:
		info.IsGlobal = true
		imm := uint64(s.Imm)
		for m := info.ExecMask; m != 0; m &= m - 1 {
			lane := bits.TrailingZeros32(m)
			addr := e.srcA(lane, s) + imm
			info.Addrs[lane] = addr
			e.Mem.StoreGlobal(addr, e.srcB(lane, s), s.Width)
		}

	case isa.OpAtomAdd:
		info.IsGlobal = true
		imm := uint64(s.Imm)
		for m := info.ExecMask; m != 0; m &= m - 1 {
			lane := bits.TrailingZeros32(m)
			addr := e.srcA(lane, s) + imm
			info.Addrs[lane] = addr
			e.setDst(lane, s, e.Mem.AtomicAdd(addr, e.srcB(lane, s), s.Width))
		}

	case isa.OpLdShared:
		for m := info.ExecMask; m != 0; m &= m - 1 {
			lane := bits.TrailingZeros32(m)
			off := int64(e.srcA(lane, s)) + s.Imm
			e.setDst(lane, s, stageLoad(e.Shared, off, s.Width))
		}

	case isa.OpStShared:
		for m := info.ExecMask; m != 0; m &= m - 1 {
			lane := bits.TrailingZeros32(m)
			off := int64(e.srcA(lane, s)) + s.Imm
			if !stageStore(e.Shared, off, e.srcB(lane, s), s.Width) {
				e.fail("shared store out of range: off %d", off)
				return true
			}
		}

	case isa.OpLdStage:
		for m := info.ExecMask; m != 0; m &= m - 1 {
			lane := bits.TrailingZeros32(m)
			off := int64(e.srcA(lane, s)) + s.Imm
			e.setDst(lane, s, stageLoad(e.StageIn, off, s.Width))
		}

	case isa.OpStStage:
		for m := info.ExecMask; m != 0; m &= m - 1 {
			lane := bits.TrailingZeros32(m)
			off := int64(e.srcA(lane, s)) + s.Imm
			if !stageStore(e.StageOut, off, e.srcB(lane, s), s.Width) {
				e.fail("stage store out of range: off %d", off)
				return true
			}
		}

	// Scalar ALU/SFU ops: EvalALU's per-lane switch hoisted to one case
	// per op with a dense loop over the set mask bits.
	case isa.OpNop:
		for m := info.ExecMask; m != 0; m &= m - 1 {
			e.setDst(bits.TrailingZeros32(m), s, 0)
		}
	case isa.OpMov:
		for m := info.ExecMask; m != 0; m &= m - 1 {
			lane := bits.TrailingZeros32(m)
			e.setDst(lane, s, e.srcA(lane, s))
		}
	case isa.OpMovI:
		v := uint64(s.Imm)
		for m := info.ExecMask; m != 0; m &= m - 1 {
			e.setDst(bits.TrailingZeros32(m), s, v)
		}
	case isa.OpAdd:
		for m := info.ExecMask; m != 0; m &= m - 1 {
			lane := bits.TrailingZeros32(m)
			e.setDst(lane, s, e.srcA(lane, s)+e.srcB(lane, s))
		}
	case isa.OpAddI:
		imm := uint64(s.Imm)
		for m := info.ExecMask; m != 0; m &= m - 1 {
			lane := bits.TrailingZeros32(m)
			e.setDst(lane, s, e.srcA(lane, s)+imm)
		}
	case isa.OpSub:
		for m := info.ExecMask; m != 0; m &= m - 1 {
			lane := bits.TrailingZeros32(m)
			e.setDst(lane, s, e.srcA(lane, s)-e.srcB(lane, s))
		}
	case isa.OpSubI:
		imm := uint64(s.Imm)
		for m := info.ExecMask; m != 0; m &= m - 1 {
			lane := bits.TrailingZeros32(m)
			e.setDst(lane, s, e.srcA(lane, s)-imm)
		}
	case isa.OpMul:
		for m := info.ExecMask; m != 0; m &= m - 1 {
			lane := bits.TrailingZeros32(m)
			e.setDst(lane, s, e.srcA(lane, s)*e.srcB(lane, s))
		}
	case isa.OpMulI:
		imm := uint64(s.Imm)
		for m := info.ExecMask; m != 0; m &= m - 1 {
			lane := bits.TrailingZeros32(m)
			e.setDst(lane, s, e.srcA(lane, s)*imm)
		}
	case isa.OpMad:
		for m := info.ExecMask; m != 0; m &= m - 1 {
			lane := bits.TrailingZeros32(m)
			e.setDst(lane, s, e.srcA(lane, s)*e.srcB(lane, s)+e.srcC(lane, s))
		}
	case isa.OpMin:
		for m := info.ExecMask; m != 0; m &= m - 1 {
			lane := bits.TrailingZeros32(m)
			a, b := e.srcA(lane, s), e.srcB(lane, s)
			if b < a {
				a = b
			}
			e.setDst(lane, s, a)
		}
	case isa.OpMax:
		for m := info.ExecMask; m != 0; m &= m - 1 {
			lane := bits.TrailingZeros32(m)
			a, b := e.srcA(lane, s), e.srcB(lane, s)
			if b > a {
				a = b
			}
			e.setDst(lane, s, a)
		}
	case isa.OpAnd:
		for m := info.ExecMask; m != 0; m &= m - 1 {
			lane := bits.TrailingZeros32(m)
			e.setDst(lane, s, e.srcA(lane, s)&e.srcB(lane, s))
		}
	case isa.OpAndI:
		imm := uint64(s.Imm)
		for m := info.ExecMask; m != 0; m &= m - 1 {
			lane := bits.TrailingZeros32(m)
			e.setDst(lane, s, e.srcA(lane, s)&imm)
		}
	case isa.OpOr:
		for m := info.ExecMask; m != 0; m &= m - 1 {
			lane := bits.TrailingZeros32(m)
			e.setDst(lane, s, e.srcA(lane, s)|e.srcB(lane, s))
		}
	case isa.OpOrI:
		imm := uint64(s.Imm)
		for m := info.ExecMask; m != 0; m &= m - 1 {
			lane := bits.TrailingZeros32(m)
			e.setDst(lane, s, e.srcA(lane, s)|imm)
		}
	case isa.OpXor:
		for m := info.ExecMask; m != 0; m &= m - 1 {
			lane := bits.TrailingZeros32(m)
			e.setDst(lane, s, e.srcA(lane, s)^e.srcB(lane, s))
		}
	case isa.OpXorI:
		imm := uint64(s.Imm)
		for m := info.ExecMask; m != 0; m &= m - 1 {
			lane := bits.TrailingZeros32(m)
			e.setDst(lane, s, e.srcA(lane, s)^imm)
		}
	case isa.OpNot:
		for m := info.ExecMask; m != 0; m &= m - 1 {
			lane := bits.TrailingZeros32(m)
			e.setDst(lane, s, ^e.srcA(lane, s))
		}
	case isa.OpShl:
		for m := info.ExecMask; m != 0; m &= m - 1 {
			lane := bits.TrailingZeros32(m)
			e.setDst(lane, s, e.srcA(lane, s)<<(e.srcB(lane, s)&63))
		}
	case isa.OpShlI:
		sh := uint64(s.Imm) & 63
		for m := info.ExecMask; m != 0; m &= m - 1 {
			lane := bits.TrailingZeros32(m)
			e.setDst(lane, s, e.srcA(lane, s)<<sh)
		}
	case isa.OpShr:
		for m := info.ExecMask; m != 0; m &= m - 1 {
			lane := bits.TrailingZeros32(m)
			e.setDst(lane, s, e.srcA(lane, s)>>(e.srcB(lane, s)&63))
		}
	case isa.OpShrI:
		sh := uint64(s.Imm) & 63
		for m := info.ExecMask; m != 0; m &= m - 1 {
			lane := bits.TrailingZeros32(m)
			e.setDst(lane, s, e.srcA(lane, s)>>sh)
		}
	case isa.OpSext:
		for m := info.ExecMask; m != 0; m &= m - 1 {
			lane := bits.TrailingZeros32(m)
			e.setDst(lane, s, isa.SignExtend(e.srcA(lane, s), s.Width))
		}
	case isa.OpSfu:
		for m := info.ExecMask; m != 0; m &= m - 1 {
			lane := bits.TrailingZeros32(m)
			e.setDst(lane, s, isa.SFUMix(e.srcA(lane, s)))
		}
	case isa.OpCtz:
		for m := info.ExecMask; m != 0; m &= m - 1 {
			lane := bits.TrailingZeros32(m)
			e.setDst(lane, s, uint64(bits.TrailingZeros64(e.srcA(lane, s))))
		}

	default:
		// An op outside the ISA. The interpreter hits EvalALU's error on
		// the first active lane; mirror that, including the no-active-lane
		// case where the instruction retires as a nop.
		if info.ExecMask != 0 {
			e.fail("%v", &isa.NonALUOpError{Op: s.Op})
			return true
		}
	}

	if adv && !e.Done {
		e.PC++
	}
	e.checkReconverge()
	return true
}
