package core

import "github.com/caba-sim/caba/internal/isa"

// RegMask is a scoreboard bitset over the general registers and predicate
// registers of one warp (or one assist-warp context). It is embedded by
// value in warp contexts and AWT entries so scoreboard tracking does not
// allocate.
type RegMask struct {
	g [4]uint64 // 256 general registers
	p uint8     // predicate registers
}

// SetReg marks a general register pending.
func (m *RegMask) SetReg(r isa.Reg) {
	if r != isa.RegNone && r.IsGeneral() {
		i := r.GeneralIndex()
		m.g[i/64] |= 1 << (i % 64)
	}
}

// ClearReg releases a general register.
func (m *RegMask) ClearReg(r isa.Reg) {
	if r != isa.RegNone && r.IsGeneral() {
		i := r.GeneralIndex()
		m.g[i/64] &^= 1 << (i % 64)
	}
}

// HasReg reports whether a general register is pending.
func (m *RegMask) HasReg(r isa.Reg) bool {
	if r == isa.RegNone || !r.IsGeneral() {
		return false
	}
	i := r.GeneralIndex()
	return m.g[i/64]&(1<<(i%64)) != 0
}

// SetPred marks a predicate register pending.
func (m *RegMask) SetPred(p isa.Pred) {
	if p != isa.PredNone {
		m.p |= 1 << p
	}
}

// ClearPred releases a predicate register.
func (m *RegMask) ClearPred(p isa.Pred) {
	if p != isa.PredNone {
		m.p &^= 1 << p
	}
}

// HasPred reports whether a predicate register is pending.
func (m *RegMask) HasPred(p isa.Pred) bool {
	return p != isa.PredNone && m.p&(1<<p) != 0
}

// Masks returns the raw pending bitsets — the 256-register general mask
// and the predicate mask, in the same layout as isa.Superop's Use/Set
// masks. Schedulers that precompute issue schedules (the block-batched
// issue engine) seed their simulated scoreboards from these and then
// evolve copies with the Superop Set masks, off the live structure.
func (m *RegMask) Masks() ([4]uint64, uint8) {
	return m.g, m.p
}

// Empty reports whether nothing is pending.
func (m *RegMask) Empty() bool {
	return m.g[0]|m.g[1]|m.g[2]|m.g[3] == 0 && m.p == 0
}

// Conflicts reports whether issuing in must wait for pending writes
// (RAW on sources, guard and predicate reads; WAW on destinations).
func (m *RegMask) Conflicts(in *isa.Instr) bool {
	if m.Empty() {
		return false
	}
	if m.HasReg(in.SrcA) || m.HasReg(in.SrcB) || m.HasReg(in.SrcC) || m.HasReg(in.Dst) {
		return true
	}
	if m.HasPred(in.Guard) || m.HasPred(in.PA) || m.HasPred(in.PB) || m.HasPred(in.PDst) {
		return true
	}
	return false
}

// MarkDsts records in's destinations as pending.
func (m *RegMask) MarkDsts(in *isa.Instr) {
	m.SetReg(in.Dst)
	m.SetPred(in.PDst)
}

// ClearDsts releases in's destinations.
func (m *RegMask) ClearDsts(in *isa.Instr) {
	m.ClearReg(in.Dst)
	m.ClearPred(in.PDst)
}

// ConflictsSop is Conflicts on a predecoded instruction: the superop's
// Use masks cover exactly the registers Conflicts probes field by field,
// so the check collapses to word-wide ANDs.
func (m *RegMask) ConflictsSop(s *isa.Superop) bool {
	return (m.g[0]&s.UseG[0])|(m.g[1]&s.UseG[1])|
		(m.g[2]&s.UseG[2])|(m.g[3]&s.UseG[3]) != 0 ||
		m.p&s.UseP != 0
}

// MarkSop is MarkDsts on a predecoded instruction.
func (m *RegMask) MarkSop(s *isa.Superop) {
	m.g[0] |= s.SetG[0]
	m.g[1] |= s.SetG[1]
	m.g[2] |= s.SetG[2]
	m.g[3] |= s.SetG[3]
	m.p |= s.SetP
}

// ClearSop is ClearDsts on a predecoded instruction.
func (m *RegMask) ClearSop(s *isa.Superop) {
	m.g[0] &^= s.SetG[0]
	m.g[1] &^= s.SetG[1]
	m.g[2] &^= s.SetG[2]
	m.g[3] &^= s.SetG[3]
	m.p &^= s.SetP
}
