package core

import "math/bits"

// This file implements the macro-step primitive of the block-batched
// issue engine (Config.BatchIssue): StepRun executes several consecutive
// straightline instructions in one call, eliminating the per-instruction
// Step dispatch (engine selection, done/barrier/error re-checks, StepInfo
// handoff) for runs the scheduler has already proven will issue
// back-to-back. It is defined only for the predecoded engine — batching
// composes with Config.Interpreter off — and only for straightline ALU
// runs (isa.Decoded.RunLen), where each instruction advances PC by
// exactly one and cannot diverge, exit, fault or touch memory.

// Straightline reports whether the warp is executing with no divergence
// in flight: the SIMT stack is empty and the current path reconverges
// only at the program end. Only then does a straightline run
// (isa.Decoded.RunLen) advance PC by exactly one per instruction with no
// reconvergence pops, which is the precondition for StepRun.
func (e *Exec) Straightline() bool {
	return len(e.stack) == 0 && e.rpc == len(e.Prog.Code)
}

// StepRun executes exactly n consecutive instructions through the
// predecoded engine and returns the summed active-lane count (the
// thread-instruction credit the per-cycle path accumulates from each
// StepInfo.ExecMask). ok is false if any step refuses (done, barrier,
// error) or errors — impossible when the caller batches only within a
// straightline ALU run on a Straightline warp, and treated as a fatal
// internal inconsistency by the scheduler. State after StepRun(n) is
// bit-identical to n successive Step calls; FuzzStepRun pins this.
func (e *Exec) StepRun(n int) (threadInstrs uint64, ok bool) {
	for i := 0; i < n; i++ {
		if !e.stepDecoded() || e.Err != nil {
			return threadInstrs, false
		}
		threadInstrs += uint64(bits.OnesCount32(e.info.ExecMask))
	}
	return threadInstrs, true
}
