package core

import (
	"testing"

	"github.com/caba-sim/caba/internal/isa"
)

func runProg(t *testing.T, src string, active uint32) *Exec {
	t.Helper()
	p := isa.MustAssemble("t", src)
	e := NewExec(p, active)
	if _, err := e.Run(10000); err != nil {
		t.Fatalf("run: %v\n%s", err, p.Disassemble())
	}
	return e
}

func TestExecLockstepALU(t *testing.T) {
	e := runProg(t, `
  mov r0, %lane
  mul r1, r0, 3
  add r1, r1, 7
  exit`, FullMask)
	for lane := 0; lane < WarpSize; lane++ {
		if got, want := e.Reg(lane, 1), uint64(lane*3+7); got != want {
			t.Errorf("lane %d: r1 = %d, want %d", lane, got, want)
		}
	}
	if !e.Done {
		t.Error("warp should be done")
	}
}

func TestExecGuardedInstr(t *testing.T) {
	e := runProg(t, `
  mov r0, %lane
  setp.lt p0, r0, 4
  movi r1, 9
  @p0 movi r1, 5
  @!p0 movi r1, 6
  exit`, FullMask)
	for lane := 0; lane < WarpSize; lane++ {
		want := uint64(6)
		if lane < 4 {
			want = 5
		}
		if e.Reg(lane, 1) != want {
			t.Errorf("lane %d: r1 = %d, want %d", lane, e.Reg(lane, 1), want)
		}
	}
}

func TestExecIfThenDivergence(t *testing.T) {
	// Lanes < 8 take the branch and skip the fall-through block; all
	// lanes reconverge and run the tail.
	e := runProg(t, `
  mov r0, %lane
  setp.lt p0, r0, 8
  movi r1, 0
  movi r2, 0
  @p0 bra skip
  movi r1, 1       ; only lanes >= 8
skip:
  movi r2, 1       ; all lanes
  exit`, FullMask)
	for lane := 0; lane < WarpSize; lane++ {
		wantR1 := uint64(1)
		if lane < 8 {
			wantR1 = 0
		}
		if e.Reg(lane, 1) != wantR1 {
			t.Errorf("lane %d: r1 = %d, want %d", lane, e.Reg(lane, 1), wantR1)
		}
		if e.Reg(lane, 2) != 1 {
			t.Errorf("lane %d: r2 = %d, want 1 (reconvergence)", lane, e.Reg(lane, 2))
		}
	}
}

func TestExecIfElseDivergence(t *testing.T) {
	e := runProg(t, `
  mov r0, %lane
  setp.lt p0, r0, 16
  @p0 bra then
  movi r1, 200     ; else
  bra join
then:
  movi r1, 100
join:
  add r2, r1, r0
  exit`, FullMask)
	for lane := 0; lane < WarpSize; lane++ {
		want := uint64(200)
		if lane < 16 {
			want = 100
		}
		if e.Reg(lane, 1) != want {
			t.Errorf("lane %d: r1 = %d, want %d", lane, e.Reg(lane, 1), want)
		}
		if e.Reg(lane, 2) != want+uint64(lane) {
			t.Errorf("lane %d: r2 wrong after join", lane)
		}
	}
}

func TestExecLoopVariableTripCounts(t *testing.T) {
	// Each lane loops lane+1 times: classic divergent loop exit.
	e := runProg(t, `
  mov r0, %lane
  add r0, r0, 1    ; trip count
  movi r1, 0
top:
  add r1, r1, 1
  setp.lt p0, r1, r0
  @p0 bra top
  mul r2, r1, 10
  exit`, FullMask)
	for lane := 0; lane < WarpSize; lane++ {
		if got, want := e.Reg(lane, 1), uint64(lane+1); got != want {
			t.Errorf("lane %d: trips = %d, want %d", lane, got, want)
		}
		if got, want := e.Reg(lane, 2), uint64((lane+1)*10); got != want {
			t.Errorf("lane %d: tail = %d, want %d (must run after loop)", lane, got, want)
		}
	}
}

func TestExecNestedDivergence(t *testing.T) {
	e := runProg(t, `
  mov r0, %lane
  movi r1, 0
  setp.lt p0, r0, 16
  @p0 bra outer_then
  movi r1, 4
  bra done
outer_then:
  setp.lt p1, r0, 8
  @p1 bra inner_then
  movi r1, 2
  bra inner_join
inner_then:
  movi r1, 1
inner_join:
  add r1, r1, 100
done:
  exit`, FullMask)
	for lane := 0; lane < WarpSize; lane++ {
		var want uint64
		switch {
		case lane < 8:
			want = 101
		case lane < 16:
			want = 102
		default:
			want = 4
		}
		if e.Reg(lane, 1) != want {
			t.Errorf("lane %d: r1 = %d, want %d", lane, e.Reg(lane, 1), want)
		}
	}
}

func TestExecPartialExit(t *testing.T) {
	// Half the lanes exit early; the rest continue.
	e := runProg(t, `
  mov r0, %lane
  setp.lt p0, r0, 16
  @p0 exit
  movi r1, 7
  exit`, FullMask)
	for lane := 0; lane < WarpSize; lane++ {
		want := uint64(7)
		if lane < 16 {
			want = 0
		}
		if e.Reg(lane, 1) != want {
			t.Errorf("lane %d: r1 = %d, want %d", lane, e.Reg(lane, 1), want)
		}
	}
}

func TestExecVotesAndBallot(t *testing.T) {
	e := runProg(t, `
  mov r0, %lane
  setp.lt p0, r0, 4
  vote.any p1, p0
  vote.all p2, p0
  ballot r1, p0
  exit`, FullMask)
	if !e.Preds[9][1] {
		t.Error("vote.any should be true in every lane")
	}
	if e.Preds[9][2] {
		t.Error("vote.all should be false")
	}
	if e.Reg(5, 1) != 0xF {
		t.Errorf("ballot = %#x, want 0xF", e.Reg(5, 1))
	}
}

func TestExecBallotRespectsActiveMask(t *testing.T) {
	p := isa.MustAssemble("b", `
  setp.eq p0, %zero, 0
  ballot r1, p0
  exit`)
	e := NewExec(p, 0x0000FFFF)
	if _, err := e.Run(100); err != nil {
		t.Fatal(err)
	}
	if e.Reg(3, 1) != 0xFFFF {
		t.Errorf("ballot = %#x, want 0xFFFF (inactive lanes excluded)", e.Reg(3, 1))
	}
}

func TestExecShfl(t *testing.T) {
	e := runProg(t, `
  mov r0, %lane
  mul r1, r0, 11
  movi r2, 3
  shfl r3, r1, r2
  exit`, FullMask)
	for lane := 0; lane < WarpSize; lane++ {
		if e.Reg(lane, 3) != 33 {
			t.Errorf("lane %d: shfl = %d, want 33", lane, e.Reg(lane, 3))
		}
	}
}

func TestExecShflSnapshotSemantics(t *testing.T) {
	// shfl must read pre-instruction values even when dst == src.
	e := runProg(t, `
  mov r0, %lane
  movi r2, 0
  shfl r0, r0, r2
  exit`, FullMask)
	for lane := 0; lane < WarpSize; lane++ {
		if e.Reg(lane, 0) != 0 {
			t.Errorf("lane %d: got %d, want lane 0's value", lane, e.Reg(lane, 0))
		}
	}
}

func TestExecStagingBuffers(t *testing.T) {
	p := isa.MustAssemble("st", `
  mov r0, %lane
  shl r1, r0, 2
  ld.stage.u32 r2, [r1]
  add r2, r2, 1
  st.stage.u32 [r1], r2
  exit`)
	e := NewExec(p, FullMask)
	e.StageIn = make([]byte, 128)
	e.StageOut = make([]byte, 128)
	for i := 0; i < 128; i++ {
		e.StageIn[i] = byte(i)
	}
	if _, err := e.Run(1000); err != nil {
		t.Fatal(err)
	}
	// Each u32 word incremented by 1.
	if e.StageOut[0] != 1 || e.StageOut[4] != 5 {
		t.Errorf("stage out = % x", e.StageOut[:8])
	}
}

func TestExecStageLoadZeroPadded(t *testing.T) {
	p := isa.MustAssemble("pad", `
  movi r0, 120
  ld.stage.u64 r1, [r0]
  exit`)
	e := NewExec(p, 1)
	e.StageIn = []byte{1, 2, 3} // tiny buffer; reads past it see zero
	if _, err := e.Run(100); err != nil {
		t.Fatal(err)
	}
	if e.Reg(0, 1) != 0 {
		t.Errorf("r1 = %d, want 0", e.Reg(0, 1))
	}
}

func TestExecStageStoreOutOfRangeErrors(t *testing.T) {
	p := isa.MustAssemble("oob", `
  movi r0, 500
  movi r1, 1
  st.stage.u8 [r0], r1
  exit`)
	e := NewExec(p, 1)
	e.StageOut = make([]byte, 128)
	if _, err := e.Run(100); err == nil {
		t.Error("out-of-range stage store should error")
	}
}

func TestExecSharedMemory(t *testing.T) {
	p := isa.MustAssemble("sh", `
  mov r0, %lane
  shl r1, r0, 2
  st.shared.u32 [r1], r0
  movi r2, 0
  ld.shared.u32 r3, [r2+20]
  exit`)
	e := NewExec(p, FullMask)
	e.Shared = make([]byte, 256)
	if _, err := e.Run(1000); err != nil {
		t.Fatal(err)
	}
	if e.Reg(0, 3) != 5 {
		t.Errorf("shared readback = %d, want 5", e.Reg(0, 3))
	}
}

type recordMem struct {
	loads, stores []uint64
}

func (m *recordMem) LoadGlobal(a uint64, w uint8) uint64 { m.loads = append(m.loads, a); return a * 2 }
func (m *recordMem) StoreGlobal(a uint64, v uint64, w uint8) {
	m.stores = append(m.stores, a)
}
func (m *recordMem) AtomicAdd(a uint64, v uint64, w uint8) uint64 { return 0 }

func TestExecGlobalMemoryAndStepInfo(t *testing.T) {
	p := isa.MustAssemble("g", `
  mov r0, %lane
  shl r1, r0, 2
  ld.global.u32 r2, [r1+64]
  st.global.u32 [r1+256], r2
  exit`)
	e := NewExec(p, 0xF)
	m := &recordMem{}
	e.Mem = m
	var infos []StepInfo
	for {
		info, ok := e.Step()
		if !ok {
			break
		}
		infos = append(infos, info)
	}
	if len(m.loads) != 4 || m.loads[2] != 72 {
		t.Errorf("loads = %v", m.loads)
	}
	if len(m.stores) != 4 || m.stores[3] != 268 {
		t.Errorf("stores = %v", m.stores)
	}
	if e.Reg(1, 2) != (4+64)*2 {
		t.Errorf("loaded value = %d", e.Reg(1, 2))
	}
	ld := infos[2]
	if !ld.IsGlobal || ld.ExecMask != 0xF || ld.Addrs[1] != 68 {
		t.Errorf("load StepInfo = %+v", ld)
	}
}

func TestExecBarrier(t *testing.T) {
	p := isa.MustAssemble("bar", `
  movi r0, 1
  bar
  movi r0, 2
  exit`)
	e := NewExec(p, FullMask)
	n, err := e.Run(100)
	if err != nil {
		t.Fatal(err)
	}
	if !e.AtBarrier || n != 2 {
		t.Fatalf("should stop at barrier after 2 instrs, n=%d", n)
	}
	if e.Reg(0, 0) != 1 {
		t.Error("pre-barrier code must have run")
	}
	e.ReleaseBarrier()
	if _, err := e.Run(100); err != nil {
		t.Fatal(err)
	}
	if !e.Done || e.Reg(0, 0) != 2 {
		t.Error("post-barrier code must run to completion")
	}
}

func TestExecSpecialRegs(t *testing.T) {
	p := isa.MustAssemble("sp", `
  mov r0, %tid
  mov r1, %ctaid
  mov r2, %p0
  exit`)
	e := NewExec(p, FullMask)
	for lane := 0; lane < WarpSize; lane++ {
		e.SetLaneSpecial(lane, isa.RegTid, uint64(100+lane))
	}
	e.SetSpecial(isa.RegCtaid, 7)
	e.SetSpecial(isa.RegParam0, 0xABC)
	if _, err := e.Run(100); err != nil {
		t.Fatal(err)
	}
	if e.Reg(5, 0) != 105 || e.Reg(5, 1) != 7 || e.Reg(5, 2) != 0xABC {
		t.Errorf("specials = %d %d %#x", e.Reg(5, 0), e.Reg(5, 1), e.Reg(5, 2))
	}
}

func TestExecRunawayGuard(t *testing.T) {
	p := isa.MustAssemble("inf", `
top:
  bra top`)
	e := NewExec(p, FullMask)
	if _, err := e.Run(100); err == nil {
		t.Error("infinite loop should hit the step guard")
	}
}

func TestExecEmptyMaskIsDone(t *testing.T) {
	p := isa.MustAssemble("e", "exit")
	e := NewExec(p, 0)
	if !e.Done {
		t.Error("zero-mask warp is done immediately")
	}
	if _, ok := e.Step(); ok {
		t.Error("stepping a done warp must return ok=false")
	}
}

func TestExecResultSkipsInactiveLanes(t *testing.T) {
	p := isa.MustAssemble("r", `
  movi r0, 42
  exit`)
	e := NewExec(p, 0xFF00) // lanes 8..15
	if _, err := e.Run(100); err != nil {
		t.Fatal(err)
	}
	if e.Result(isa.R(0)) != 42 {
		t.Errorf("Result = %d, want 42 from first launched lane", e.Result(isa.R(0)))
	}
}

func TestPostDominatorsDiamond(t *testing.T) {
	p := isa.MustAssemble("d", `
  setp.lt p0, r0, r1
  @p0 bra then
  movi r2, 1
  bra join
then:
  movi r2, 2
join:
  exit`)
	ipdom := isa.PostDominators(p)
	// The branch (index 1) must reconverge at "join" (index 5).
	if ipdom[1] != 5 {
		t.Errorf("branch ipdom = %d, want 5\n%s", ipdom[1], p.Disassemble())
	}
}

func TestPostDominatorsLoop(t *testing.T) {
	p := isa.MustAssemble("l", `
  movi r0, 0
top:
  add r0, r0, 1
  setp.lt p0, r0, 10
  @p0 bra top
  exit`)
	ipdom := isa.PostDominators(p)
	// The loop branch (index 3) reconverges at the loop exit (index 4).
	if ipdom[3] != 4 {
		t.Errorf("loop branch ipdom = %d, want 4", ipdom[3])
	}
}

func TestPeekAddrsNoSideEffects(t *testing.T) {
	p := isa.MustAssemble("peek", `
  mov r0, %lane
  shl r1, r0, 2
  ld.global.u32 r2, [r1+256]
  exit`)
	e := NewExec(p, 0xFF)
	e.Step() // mov
	e.Step() // shl
	var addrs [WarpSize]uint64
	mask := e.PeekAddrs(&addrs)
	if mask != 0xFF {
		t.Fatalf("mask = %#x", mask)
	}
	if addrs[3] != 3*4+256 {
		t.Errorf("addr[3] = %d", addrs[3])
	}
	pcBefore := e.PC
	e.PeekAddrs(&addrs) // idempotent, no state change
	if e.PC != pcBefore || e.Executed != 2 {
		t.Error("PeekAddrs must not execute anything")
	}
	info, _ := e.Step() // the actual load must agree with the peek
	if info.Addrs[3] != addrs[3] {
		t.Error("peeked address differs from executed address")
	}
}
