package core

import (
	"testing"

	"github.com/caba-sim/caba/internal/isa"
)

func testRoutinePair() (hi, lo *Routine) {
	prog := isa.MustAssemble("r", `
  movi r0, 1
  movi r0, 2
  movi r0, 3
  exit`)
	hi = &Routine{ID: 100, Name: "hi", Prog: prog, Priority: PriHigh, ActiveMask: FullMask}
	lo = &Routine{ID: 101, Name: "lo", Prog: prog, Priority: PriLow, ActiveMask: FullMask}
	return
}

func TestStorePreloadAndDuplicates(t *testing.T) {
	s := NewStore()
	hi, _ := testRoutinePair()
	if err := s.Preload(hi); err != nil {
		t.Fatal(err)
	}
	if err := s.Preload(hi); err == nil {
		t.Error("duplicate preload should error")
	}
	if _, ok := s.Get(100); !ok {
		t.Error("preloaded routine not found")
	}
	if s.TotalInstrs != 4 {
		t.Errorf("TotalInstrs = %d", s.TotalInstrs)
	}
	empty := &Routine{ID: 102, Name: "empty", Prog: &isa.Program{Name: "e", NumReg: 1}}
	if err := s.Preload(empty); err == nil {
		t.Error("empty routine should be rejected")
	}
}

func TestControllerTriggerLimits(t *testing.T) {
	s := NewStore()
	hi, lo := testRoutinePair()
	s.Preload(hi)
	s.Preload(lo)
	c := NewController(s, 4)

	// One high-priority assist warp per parent warp.
	e1 := c.Trigger(hi, 3, NewExec(hi.Prog, hi.ActiveMask), nil, nil)
	if e1 == nil {
		t.Fatal("first trigger failed")
	}
	if c.Trigger(hi, 3, NewExec(hi.Prog, hi.ActiveMask), nil, nil) != nil {
		t.Error("second high-pri trigger for same warp must be rejected")
	}
	if c.Trigger(hi, 4, NewExec(hi.Prog, hi.ActiveMask), nil, nil) == nil {
		t.Error("different warp should trigger fine")
	}
	// Low-priority partition has 2 entries.
	if c.Trigger(lo, 5, NewExec(lo.Prog, lo.ActiveMask), nil, nil) == nil {
		t.Error("low-pri slot 1 should trigger")
	}
	if c.Trigger(lo, 6, NewExec(lo.Prog, lo.ActiveMask), nil, nil) == nil {
		t.Error("low-pri slot 2 should trigger")
	}
	if c.Trigger(lo, 7, NewExec(lo.Prog, lo.ActiveMask), nil, nil) != nil {
		t.Error("low-pri partition is full (2 entries)")
	}
	// AWT full.
	if c.Trigger(hi, 8, NewExec(hi.Prog, hi.ActiveMask), nil, nil) != nil {
		t.Error("AWT is full (4 entries)")
	}
}

func TestControllerDeployRoundRobin(t *testing.T) {
	s := NewStore()
	hi, _ := testRoutinePair()
	s.Preload(hi)
	c := NewController(s, 8)
	c.DeployBW = 2
	c.StagedCap = 2
	e1 := c.Trigger(hi, 0, NewExec(hi.Prog, hi.ActiveMask), nil, nil)
	e2 := c.Trigger(hi, 1, NewExec(hi.Prog, hi.ActiveMask), nil, nil)
	c.Tick() // DeployBW=2: one instr staged for each
	if e1.Staged != 1 || e2.Staged != 1 {
		t.Errorf("staged = %d/%d, want 1/1", e1.Staged, e2.Staged)
	}
	c.Tick()
	if e1.Staged != 2 || e2.Staged != 2 {
		t.Errorf("staged = %d/%d, want 2/2 (StagedCap)", e1.Staged, e2.Staged)
	}
	c.Tick() // both at cap: nothing staged
	if e1.Staged != 2 || e2.Staged != 2 {
		t.Error("staging must respect per-entry cap")
	}
}

func TestControllerThrottlesLowPriority(t *testing.T) {
	s := NewStore()
	hi, lo := testRoutinePair()
	s.Preload(hi)
	s.Preload(lo)
	c := NewController(s, 8)
	eh := c.Trigger(hi, 0, NewExec(hi.Prog, hi.ActiveMask), nil, nil)
	el := c.Trigger(lo, 1, NewExec(lo.Prog, lo.ActiveMask), nil, nil)
	// Saturate the utilization window.
	for i := 0; i < 64; i++ {
		c.NoteIssueSlot(true)
	}
	if !c.LowPriorityThrottled() {
		t.Fatal("fully busy pipeline should throttle low priority")
	}
	c.Tick()
	if el.Staged != 0 {
		t.Error("low-pri must not deploy under throttle")
	}
	if eh.Staged == 0 {
		t.Error("high-pri must still deploy under throttle")
	}
	// Now idle the pipeline.
	for i := 0; i < 64; i++ {
		c.NoteIssueSlot(false)
	}
	c.Tick()
	if el.Staged == 0 {
		t.Error("low-pri should deploy once idle")
	}
}

func TestControllerRetireAndComplete(t *testing.T) {
	s := NewStore()
	hi, _ := testRoutinePair()
	s.Preload(hi)
	c := NewController(s, 8)
	completed := false
	e := c.Trigger(hi, 2, NewExec(hi.Prog, hi.ActiveMask), "ctx", func(x *Entry) {
		completed = true
		if x.User != "ctx" {
			t.Error("user context lost")
		}
	})
	// Drive to completion: stage, issue, execute.
	for !e.Exec.Done {
		e.Exec.Step()
	}
	c.Retire(e)
	if !completed {
		t.Error("OnComplete must fire on retire")
	}
	if len(c.Entries()) != 0 || c.HighFor(2) != nil {
		t.Error("entry must be removed from AWT")
	}
	// A new high-pri trigger for warp 2 must now succeed.
	if c.Trigger(hi, 2, NewExec(hi.Prog, hi.ActiveMask), nil, nil) == nil {
		t.Error("slot should be free after retire")
	}
}

func TestControllerKillFlushes(t *testing.T) {
	s := NewStore()
	hi, _ := testRoutinePair()
	s.Preload(hi)
	c := NewController(s, 8)
	fired := false
	e := c.Trigger(hi, 0, NewExec(hi.Prog, hi.ActiveMask), nil, func(*Entry) { fired = true })
	c.Tick()
	c.Kill(e)
	if fired {
		t.Error("killed warps must not fire OnComplete")
	}
	if e.Staged != 0 || !e.Killed {
		t.Error("kill must flush AWB staging")
	}
	if len(c.Entries()) != 0 {
		t.Error("kill must remove the AWT entry")
	}
	if c.KilledCount != 1 {
		t.Error("kill accounting wrong")
	}
	c.Kill(e) // idempotent
	if c.KilledCount != 1 {
		t.Error("double kill must not double count")
	}
}

func TestEntryDone(t *testing.T) {
	hi, _ := testRoutinePair()
	e := &Entry{Routine: hi, Exec: NewExec(hi.Prog, hi.ActiveMask)}
	if e.Done() {
		t.Error("fresh entry is not done")
	}
	for !e.Exec.Done {
		e.Exec.Step()
	}
	e.Outstanding = 1
	if e.Done() {
		t.Error("outstanding writebacks keep the entry live")
	}
	e.Outstanding = 0
	if !e.Done() {
		t.Error("entry should be done")
	}
}

func TestUtilizationWindow(t *testing.T) {
	c := NewController(NewStore(), 1)
	for i := 0; i < 32; i++ {
		c.NoteIssueSlot(true)
		c.NoteIssueSlot(false)
	}
	if u := c.Utilization(); u != 0.5 {
		t.Errorf("utilization = %v, want 0.5", u)
	}
}
