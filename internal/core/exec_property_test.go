package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/caba-sim/caba/internal/isa"
)

// TestQuickExecMatchesScalarReference generates random straight-line ALU
// programs and checks that the lockstep executor computes exactly what a
// per-lane scalar interpretation of the same instructions computes.
func TestQuickExecMatchesScalarReference(t *testing.T) {
	ops := []isa.Op{
		isa.OpAdd, isa.OpSub, isa.OpMul, isa.OpAnd, isa.OpOr, isa.OpXor,
		isa.OpShl, isa.OpShr, isa.OpMin, isa.OpMax, isa.OpMad, isa.OpNot,
		isa.OpMov, isa.OpSfu,
	}
	const nRegs = 8

	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := isa.NewBuilder("rand")
		// Seed registers from the lane id so lanes diverge in values.
		for r := 0; r < nRegs; r++ {
			b.Mov(isa.R(r), isa.RegLane)
			b.MulI(isa.R(r), isa.R(r), int64(rng.Intn(1000)+1))
			b.AddI(isa.R(r), isa.R(r), int64(rng.Intn(1<<16)))
		}
		type emitted struct {
			op         isa.Op
			d, a, x, y int
		}
		var body []emitted
		for i := 0; i < 30; i++ {
			e := emitted{
				op: ops[rng.Intn(len(ops))],
				d:  rng.Intn(nRegs), a: rng.Intn(nRegs),
				x: rng.Intn(nRegs), y: rng.Intn(nRegs),
			}
			body = append(body, e)
			switch e.op {
			case isa.OpMov, isa.OpNot, isa.OpSfu:
				in := isa.Instr{Op: e.op, Dst: isa.R(e.d), SrcA: isa.R(e.a),
					SrcB: isa.RegNone, SrcC: isa.RegNone, Guard: isa.PredNone,
					PDst: isa.PredNone, PA: isa.PredNone, PB: isa.PredNone}
				switch e.op {
				case isa.OpMov:
					b.Mov(isa.R(e.d), isa.R(e.a))
				case isa.OpNot:
					b.Not(isa.R(e.d), isa.R(e.a))
				case isa.OpSfu:
					b.Sfu(isa.R(e.d), isa.R(e.a))
				}
				_ = in
			case isa.OpMad:
				b.Mad(isa.R(e.d), isa.R(e.a), isa.R(e.x), isa.R(e.y))
			default:
				switch e.op {
				case isa.OpAdd:
					b.Add(isa.R(e.d), isa.R(e.a), isa.R(e.x))
				case isa.OpSub:
					b.Sub(isa.R(e.d), isa.R(e.a), isa.R(e.x))
				case isa.OpMul:
					b.Mul(isa.R(e.d), isa.R(e.a), isa.R(e.x))
				case isa.OpAnd:
					b.And(isa.R(e.d), isa.R(e.a), isa.R(e.x))
				case isa.OpOr:
					b.Or(isa.R(e.d), isa.R(e.a), isa.R(e.x))
				case isa.OpXor:
					b.Xor(isa.R(e.d), isa.R(e.a), isa.R(e.x))
				case isa.OpShl:
					b.Shl(isa.R(e.d), isa.R(e.a), isa.R(e.x))
				case isa.OpShr:
					b.Shr(isa.R(e.d), isa.R(e.a), isa.R(e.x))
				case isa.OpMin:
					b.Min(isa.R(e.d), isa.R(e.a), isa.R(e.x))
				case isa.OpMax:
					b.Max(isa.R(e.d), isa.R(e.a), isa.R(e.x))
				}
			}
		}
		b.Exit()
		prog, err := b.Build()
		if err != nil {
			return false
		}

		// Scalar reference: re-run the generated sequence per lane.
		rng2 := rand.New(rand.NewSource(seed))
		var ref [WarpSize][nRegs]uint64
		for r := 0; r < nRegs; r++ {
			m := uint64(rng2.Intn(1000) + 1)
			a := uint64(rng2.Intn(1 << 16))
			for lane := 0; lane < WarpSize; lane++ {
				ref[lane][r] = uint64(lane)*m + a
			}
		}
		for _, e := range body {
			for lane := 0; lane < WarpSize; lane++ {
				in := isa.Instr{Op: e.op}
				v, evalErr := isa.EvalALU(&in,
					ref[lane][e.a], ref[lane][e.x], ref[lane][e.y])
				if evalErr != nil {
					return false
				}
				ref[lane][e.d] = v
			}
		}

		ex := NewExec(prog, FullMask)
		if _, err := ex.Run(10000); err != nil {
			return false
		}
		for lane := 0; lane < WarpSize; lane++ {
			for r := 0; r < nRegs; r++ {
				if ex.Reg(lane, r) != ref[lane][r] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDivergentLoopsTerminate throws random bounded divergent loops
// at the SIMT stack: every lane must execute its exact trip count.
func TestQuickDivergentLoopsTerminate(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mod := int64(rng.Intn(7) + 2)
		base := int64(rng.Intn(5) + 1)
		prog := isa.NewBuilder("dloop")
		// trips = base + lane % mod
		prog.Mov(isa.R(0), isa.RegLane).
			AndI(isa.R(0), isa.R(0), mod-1). // not exactly mod; fine, bounded
			AddI(isa.R(0), isa.R(0), base).
			MovI(isa.R(1), 0).
			Label("top").
			AddI(isa.R(1), isa.R(1), 1).
			SetP(isa.CmpLT, isa.P(0), isa.R(1), isa.R(0)).
			BraP(isa.P(0), false, "top").
			Exit()
		p, err := prog.Build()
		if err != nil {
			return false
		}
		ex := NewExec(p, FullMask)
		if _, err := ex.Run(100000); err != nil {
			return false
		}
		for lane := 0; lane < WarpSize; lane++ {
			want := uint64(int64(lane)&(mod-1) + base)
			if ex.Reg(lane, 1) != want {
				return false
			}
		}
		return ex.Done
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
