// Package core implements the paper's contribution: the Core-Assisted
// Bottleneck Acceleration framework. It provides
//
//   - the warp-level functional executor (Exec) that runs both regular
//     kernels and assist-warp subroutines in lockstep SIMT fashion with
//     PDOM-based reconvergence;
//   - the CABA hardware structures of Section 3.3: the Assist Warp Store
//     (AWS), Assist Warp Table + Controller (AWT/AWC) and Assist Warp
//     Buffer (AWB), with priorities, round-robin deployment, throttling
//     and kill/flush;
//   - the assist-warp subroutine library of Section 4: BDI decompression
//     (one routine per encoding) and compression (per-encoding tests with
//     a warp-wide vote), FPC and C-Pack routines, and the memoization and
//     prefetching routines of Section 7.
package core

import (
	"fmt"

	"github.com/caba-sim/caba/internal/isa"
)

// WarpSize is the number of SIMT lanes per warp.
const WarpSize = 32

// FullMask activates all lanes.
const FullMask uint32 = 0xFFFFFFFF

// GlobalMem is the functional global-memory interface the executor uses.
type GlobalMem interface {
	LoadGlobal(addr uint64, width uint8) uint64
	StoreGlobal(addr uint64, v uint64, width uint8)
	AtomicAdd(addr uint64, v uint64, width uint8) uint64
}

// NopMem is a GlobalMem that ignores stores and loads zeros, for routines
// that never touch global memory (all compression subroutines).
type NopMem struct{}

// LoadGlobal returns 0.
func (NopMem) LoadGlobal(uint64, uint8) uint64 { return 0 }

// StoreGlobal discards the store.
func (NopMem) StoreGlobal(uint64, uint64, uint8) {}

// AtomicAdd returns 0 and discards the update.
func (NopMem) AtomicAdd(uint64, uint64, uint8) uint64 { return 0 }

// pathFrame is one SIMT-stack entry: resume execution at pc with mask,
// reconverging at rpc.
type pathFrame struct {
	pc   int
	rpc  int
	mask uint32
}

// StepInfo reports what one executed instruction did, for the timing
// model: its op, the lanes that ran it, and — for global memory ops — the
// per-lane addresses to coalesce.
type StepInfo struct {
	Instr    *isa.Instr
	ExecMask uint32 // lanes that actually executed (active & guard)
	Width    uint8
	Addrs    [WarpSize]uint64 // valid where ExecMask bit set, global ops only
	IsGlobal bool
}

// Exec is one warp's execution context: per-lane registers and predicates,
// the SIMT divergence stack, shared-memory and staging-buffer views, and
// special-register values. Both regular warps and assist warps use it;
// assist warps get a fresh small Exec whose registers model the reserved
// slice of the parent's register file.
type Exec struct {
	Prog  *isa.Program
	ipdom []int
	dec   *isa.Decoded

	// Interp selects the original per-instruction interpreter instead of
	// the predecoded superop engine. The two are bit-identical (pinned by
	// the differential tests and FuzzPredecode); the interpreter survives
	// as the differential-testing reference behind Config.Interpreter.
	Interp bool

	PC     int
	rpc    int // reconvergence point of the current path (len(code) = none)
	Active uint32
	launch uint32 // lanes that ever existed (initial mask)
	exited uint32
	stack  []pathFrame

	// regBack is the flat register file, register-major:
	// [reg*WarpSize+lane]. A SIMT step touches one register across all 32
	// lanes at once, so this layout keeps each access within 4 cache lines
	// where a lane-major file would touch 32. Access via Reg/SetReg.
	regBack []uint64
	Preds   [][isa.NumPredRegs]bool
	Special [][isa.NumSpecial]uint64

	Shared   []byte // CTA shared memory view (may be nil)
	StageIn  []byte // assist staging input (ld.stage)
	StageOut []byte // assist staging output (st.stage)

	Mem GlobalMem

	Done      bool
	AtBarrier bool
	Err       error

	// Instructions executed (warp-level), for tests and cost accounting.
	Executed uint64

	shflBuf [WarpSize]uint64
	// info is the per-step result buffer behind StepRef; transient (never
	// snapshotted) and overwritten by every Step/StepRef call.
	info StepInfo
}

// NewExec builds an execution context for prog with the given initial
// active mask. Register files are sized from prog.NumReg; all lanes share
// one flat backing array, so a context costs a handful of allocations
// rather than one per lane.
func NewExec(prog *isa.Program, active uint32) *Exec {
	e := &Exec{
		Preds:   make([][isa.NumPredRegs]bool, WarpSize),
		Special: make([][isa.NumSpecial]uint64, WarpSize),
	}
	e.Reset(prog, active)
	return e
}

// Reset reinitializes e for a fresh run of prog with the given active
// mask, reusing every prior allocation (register backing, predicate and
// special files, the SIMT stack). It is the allocation-free twin of
// NewExec for execution-context pools; staging buffers (StageIn/StageOut/
// Shared) are left untouched for the caller to manage.
func (e *Exec) Reset(prog *isa.Program, active uint32) {
	e.Prog = prog
	e.ipdom = prog.IPDom()
	e.dec = prog.Decoded()
	e.PC = 0
	e.rpc = len(prog.Code)
	e.Active = active
	e.launch = active
	e.exited = 0
	e.stack = e.stack[:0]
	e.Mem = NopMem{}
	e.Done = active == 0
	e.AtBarrier = false
	e.Err = nil
	e.Executed = 0

	need := WarpSize * prog.NumReg
	if cap(e.regBack) < need {
		e.regBack = make([]uint64, need)
	} else {
		e.regBack = e.regBack[:need]
		clear(e.regBack)
	}
	clear(e.Preds)
	clear(e.Special)
	for lane := 0; lane < WarpSize; lane++ {
		e.Special[lane][isa.RegLane.SpecialIndex()] = uint64(lane)
	}
}

// SetSpecial sets a special register to the same value in every lane
// (thread-varying specials like %tid are set per lane by the launcher).
func (e *Exec) SetSpecial(r isa.Reg, v uint64) {
	for lane := range e.Special {
		e.Special[lane][r.SpecialIndex()] = v
	}
}

// SetLaneSpecial sets a special register in one lane.
func (e *Exec) SetLaneSpecial(lane int, r isa.Reg, v uint64) {
	e.Special[lane][r.SpecialIndex()] = v
}

// Current returns the instruction the warp will execute next, or nil when
// the warp is done or stopped at a barrier.
func (e *Exec) Current() *isa.Instr {
	if e.Done || e.AtBarrier || e.Err != nil {
		return nil
	}
	return &e.Prog.Code[e.PC]
}

// CurrentSop returns the predecoded form of the instruction the warp will
// execute next, or nil when the warp is done or stopped at a barrier.
// Superop index == PC, so CurrentSop and Current always describe the same
// instruction.
func (e *Exec) CurrentSop() *isa.Superop {
	if e.Done || e.AtBarrier || e.Err != nil {
		return nil
	}
	return &e.dec.Ops[e.PC]
}

// Reg returns lane's value of general register r.
func (e *Exec) Reg(lane, r int) uint64 { return e.regBack[r*WarpSize+lane] }

// SetReg sets lane's value of general register r (live-in population and
// tests; the hot paths index regBack directly).
func (e *Exec) SetReg(lane, r int, v uint64) { e.regBack[r*WarpSize+lane] = v }

func (e *Exec) readReg(lane int, r isa.Reg) uint64 {
	if r == isa.RegNone {
		return 0
	}
	if r.IsGeneral() {
		return e.regBack[r.GeneralIndex()*WarpSize+lane]
	}
	return e.Special[lane][r.SpecialIndex()]
}

func (e *Exec) writeReg(lane int, r isa.Reg, v uint64) {
	if r != isa.RegNone && r.IsGeneral() {
		e.regBack[r.GeneralIndex()*WarpSize+lane] = v
	}
}

// execMask returns the lanes that execute the current instruction after
// applying its guard predicate.
func (e *Exec) execMask(in *isa.Instr) uint32 {
	if in.Guard == isa.PredNone {
		return e.Active
	}
	var m uint32
	for lane := 0; lane < WarpSize; lane++ {
		if e.Active&(1<<lane) == 0 {
			continue
		}
		p := e.Preds[lane][in.Guard]
		if p != in.GuardNeg {
			m |= 1 << lane
		}
	}
	return m
}

func (e *Exec) fail(format string, args ...any) {
	e.Err = fmt.Errorf("core: %s: pc %d: %s", e.Prog.Name, e.PC, fmt.Sprintf(format, args...))
	e.Done = true
}

// stageLoad reads width bytes little-endian from buf at off; bytes outside
// buf read as zero (staging buffers are logically zero-padded).
func stageLoad(buf []byte, off int64, width uint8) uint64 {
	var v uint64
	for i := 0; i < int(width); i++ {
		idx := off + int64(i)
		if idx >= 0 && idx < int64(len(buf)) {
			v |= uint64(buf[idx]) << (8 * i)
		}
	}
	return v
}

// stageStore writes width bytes little-endian; out-of-range is an error
// (a subroutine bug).
func stageStore(buf []byte, off int64, v uint64, width uint8) bool {
	if off < 0 || off+int64(width) > int64(len(buf)) {
		return false
	}
	for i := 0; i < int(width); i++ {
		buf[off+int64(i)] = byte(v >> (8 * i))
	}
	return true
}

// PeekAddrs computes the per-lane effective addresses of the *current*
// instruction without executing it, so the scheduler can coalesce and
// check MSHR capacity before committing to issue. Returns the would-be
// exec mask; only valid for memory ops.
func (e *Exec) PeekAddrs(addrs *[WarpSize]uint64) uint32 {
	in := e.Current()
	if in == nil {
		return 0
	}
	mask := e.execMask(in)
	for lane := 0; lane < WarpSize; lane++ {
		if mask&(1<<lane) != 0 {
			addrs[lane] = e.readReg(lane, in.SrcA) + uint64(in.Imm)
		}
	}
	return mask
}

// Step executes exactly one warp instruction functionally and returns what
// it did. Calling Step on a done/barrier/errored warp returns ok=false.
// The predecoded superop engine (stepDecoded) is the default; Interp
// routes through the original field-walking interpreter, which is kept
// bit-identical for differential testing.
func (e *Exec) Step() (StepInfo, bool) {
	if e.Interp {
		return e.stepInterp()
	}
	if !e.stepDecoded() {
		return StepInfo{}, false
	}
	return e.info, true
}

// StepRef executes one instruction like Step but returns a pointer to an
// internal buffer instead of copying the 288-byte StepInfo out. Addrs
// entries for lanes outside ExecMask are unspecified (possibly stale from
// an earlier instruction); every consumer masks by ExecMask. The buffer
// is overwritten by the next Step/StepRef on this Exec.
func (e *Exec) StepRef() (*StepInfo, bool) {
	if e.Interp {
		info, ok := e.stepInterp()
		e.info = info
		return &e.info, ok
	}
	ok := e.stepDecoded()
	return &e.info, ok
}

// stepInterp is the reference interpreter: it re-walks Instr fields
// (RegNone checks, IsGeneral branches, per-lane EvalALU dispatch) on every
// execution.
func (e *Exec) stepInterp() (StepInfo, bool) {
	in := e.Current()
	if in == nil {
		return StepInfo{}, false
	}
	e.Executed++
	info := StepInfo{Instr: in, ExecMask: e.execMask(in), Width: in.Width}
	adv := true // advance PC by 1 unless a branch redirects

	switch in.Op {
	case isa.OpBra:
		// Unconditional (assembler only emits guard-free OpBra).
		e.PC = int(in.Target)
		adv = false

	case isa.OpBrab:
		adv = false
		taken := info.ExecMask
		notTaken := e.Active &^ taken
		switch {
		case taken == 0:
			e.PC++
		case notTaken == 0:
			e.PC = int(in.Target)
		default:
			r := e.ipdom[e.PC]
			e.stack = append(e.stack,
				pathFrame{pc: r, rpc: e.rpc, mask: e.Active},
				pathFrame{pc: e.PC + 1, rpc: r, mask: notTaken},
			)
			e.Active = taken
			e.PC = int(in.Target)
			e.rpc = r
		}

	case isa.OpExit:
		adv = false
		e.exited |= info.ExecMask
		if rem := e.Active &^ info.ExecMask; rem != 0 {
			// Guarded exit: surviving lanes continue.
			e.Active = rem
			e.PC++
		} else {
			e.popPath()
		}

	case isa.OpBar:
		// PC advances in ReleaseBarrier, once all CTA warps arrive.
		e.AtBarrier = true
		adv = false

	case isa.OpSetP, isa.OpSetPI:
		for lane := 0; lane < WarpSize; lane++ {
			if info.ExecMask&(1<<lane) == 0 {
				continue
			}
			a := e.readReg(lane, in.SrcA)
			b := uint64(in.Imm)
			if in.Op == isa.OpSetP {
				b = e.readReg(lane, in.SrcB)
			}
			e.Preds[lane][in.PDst] = isa.EvalCmp(in.Cmp, a, b)
		}

	case isa.OpPAnd, isa.OpPOr, isa.OpPNot:
		for lane := 0; lane < WarpSize; lane++ {
			if info.ExecMask&(1<<lane) == 0 {
				continue
			}
			pa := e.Preds[lane][in.PA]
			switch in.Op {
			case isa.OpPAnd:
				e.Preds[lane][in.PDst] = pa && e.Preds[lane][in.PB]
			case isa.OpPOr:
				e.Preds[lane][in.PDst] = pa || e.Preds[lane][in.PB]
			case isa.OpPNot:
				e.Preds[lane][in.PDst] = !pa
			}
		}

	case isa.OpVoteAll, isa.OpVoteAny:
		all, any := true, false
		for lane := 0; lane < WarpSize; lane++ {
			if info.ExecMask&(1<<lane) == 0 {
				continue
			}
			if e.Preds[lane][in.PA] {
				any = true
			} else {
				all = false
			}
		}
		v := any
		if in.Op == isa.OpVoteAll {
			v = all
		}
		for lane := 0; lane < WarpSize; lane++ {
			if info.ExecMask&(1<<lane) != 0 {
				e.Preds[lane][in.PDst] = v
			}
		}

	case isa.OpBallot:
		var mask uint64
		for lane := 0; lane < WarpSize; lane++ {
			if info.ExecMask&(1<<lane) != 0 && e.Preds[lane][in.PA] {
				mask |= 1 << lane
			}
		}
		for lane := 0; lane < WarpSize; lane++ {
			if info.ExecMask&(1<<lane) != 0 {
				e.writeReg(lane, in.Dst, mask)
			}
		}

	case isa.OpShfl:
		// Snapshot pre-instruction values of SrcA across the warp.
		for lane := 0; lane < WarpSize; lane++ {
			e.shflBuf[lane] = e.readReg(lane, in.SrcA)
		}
		for lane := 0; lane < WarpSize; lane++ {
			if info.ExecMask&(1<<lane) == 0 {
				continue
			}
			src := int(e.readReg(lane, in.SrcB) & 31)
			var v uint64
			if info.ExecMask&(1<<src) != 0 {
				v = e.shflBuf[src]
			}
			e.writeReg(lane, in.Dst, v)
		}

	case isa.OpSel:
		for lane := 0; lane < WarpSize; lane++ {
			if info.ExecMask&(1<<lane) == 0 {
				continue
			}
			if e.Preds[lane][in.PA] {
				e.writeReg(lane, in.Dst, e.readReg(lane, in.SrcA))
			} else {
				e.writeReg(lane, in.Dst, e.readReg(lane, in.SrcB))
			}
		}

	case isa.OpLdGlobal, isa.OpStGlobal, isa.OpAtomAdd:
		info.IsGlobal = true
		for lane := 0; lane < WarpSize; lane++ {
			if info.ExecMask&(1<<lane) == 0 {
				continue
			}
			addr := e.readReg(lane, in.SrcA) + uint64(in.Imm)
			info.Addrs[lane] = addr
			switch in.Op {
			case isa.OpLdGlobal:
				e.writeReg(lane, in.Dst, e.Mem.LoadGlobal(addr, in.Width))
			case isa.OpStGlobal:
				e.Mem.StoreGlobal(addr, e.readReg(lane, in.SrcB), in.Width)
			case isa.OpAtomAdd:
				e.writeReg(lane, in.Dst, e.Mem.AtomicAdd(addr, e.readReg(lane, in.SrcB), in.Width))
			}
		}

	case isa.OpLdShared, isa.OpStShared:
		for lane := 0; lane < WarpSize; lane++ {
			if info.ExecMask&(1<<lane) == 0 {
				continue
			}
			off := int64(e.readReg(lane, in.SrcA)) + in.Imm
			if in.Op == isa.OpLdShared {
				e.writeReg(lane, in.Dst, stageLoad(e.Shared, off, in.Width))
			} else {
				if !stageStore(e.Shared, off, e.readReg(lane, in.SrcB), in.Width) {
					e.fail("shared store out of range: off %d", off)
					return info, true
				}
			}
		}

	case isa.OpLdStage, isa.OpStStage:
		for lane := 0; lane < WarpSize; lane++ {
			if info.ExecMask&(1<<lane) == 0 {
				continue
			}
			off := int64(e.readReg(lane, in.SrcA)) + in.Imm
			if in.Op == isa.OpLdStage {
				e.writeReg(lane, in.Dst, stageLoad(e.StageIn, off, in.Width))
			} else {
				if !stageStore(e.StageOut, off, e.readReg(lane, in.SrcB), in.Width) {
					e.fail("stage store out of range: off %d", off)
					return info, true
				}
			}
		}

	default:
		// Scalar ALU/SFU ops.
		for lane := 0; lane < WarpSize; lane++ {
			if info.ExecMask&(1<<lane) == 0 {
				continue
			}
			a := e.readReg(lane, in.SrcA)
			b := e.readReg(lane, in.SrcB)
			c := e.readReg(lane, in.SrcC)
			v, err := isa.EvalALU(in, a, b, c)
			if err != nil {
				e.fail("%v", err)
				return info, true
			}
			e.writeReg(lane, in.Dst, v)
		}
	}

	if adv && !e.Done {
		e.PC++
	}
	e.checkReconverge()
	return info, true
}

// checkReconverge pops SIMT-stack frames when the current path reaches its
// reconvergence point.
func (e *Exec) checkReconverge() {
	for !e.Done && e.PC == e.rpc {
		e.popPath()
	}
	if !e.Done && e.PC >= len(e.Prog.Code) {
		// Fell off the end: treat as exit.
		e.exited |= e.Active
		e.popPath()
	}
}

// popPath resumes the next pending SIMT path, skipping frames whose lanes
// have all exited; the warp is done when the stack empties.
func (e *Exec) popPath() {
	for len(e.stack) > 0 {
		f := e.stack[len(e.stack)-1]
		e.stack = e.stack[:len(e.stack)-1]
		if m := f.mask &^ e.exited; m != 0 {
			e.PC, e.rpc, e.Active = f.pc, f.rpc, m
			return
		}
	}
	e.Done = true
	e.Active = 0
}

// Run executes until completion, barrier, or error, up to maxSteps
// instructions (a runaway guard). It returns the number executed.
func (e *Exec) Run(maxSteps int) (int, error) {
	n := 0
	for n < maxSteps {
		if _, ok := e.Step(); !ok {
			break
		}
		n++
	}
	if e.Err != nil {
		return n, e.Err
	}
	if n == maxSteps && !e.Done && !e.AtBarrier {
		return n, fmt.Errorf("core: %s: exceeded %d steps", e.Prog.Name, maxSteps)
	}
	return n, nil
}

// ReleaseBarrier lets a warp stopped at a bar proceed.
func (e *Exec) ReleaseBarrier() {
	if e.AtBarrier {
		e.AtBarrier = false
		e.PC++
		e.checkReconverge()
	}
}

// Result returns lane 0's value of register r (the subroutine result
// convention: r0 = status, r1 = size).
func (e *Exec) Result(r isa.Reg) uint64 {
	lane := 0
	for ; lane < WarpSize; lane++ {
		if e.launch&(1<<lane) != 0 {
			break
		}
	}
	if lane == WarpSize {
		return 0
	}
	return e.readReg(lane, r)
}
