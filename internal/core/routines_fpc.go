package core

import (
	"github.com/caba-sim/caba/internal/isa"
)

// FPC assist-warp subroutines (Section 4.1.3). The CABA adaptation places
// all pattern metadata at the head of the line, so decompression can
// compute every word's data offset up front: each lane reads its 3-bit
// code, the per-lane lengths are prefix-summed with a log-step shuffle
// scan, and all 32 words expand in parallel. Compression classifies in
// parallel, then a single serialized packing pass emits the exact
// LSB-first bitstream (C-Pack-style serial packing is what a dedicated FPC
// circuit does too, which is why the paper charges FPC higher latencies
// than BDI).

// fpcLens packs the data-bit length of each 3-bit pattern code into one
// 64-bit constant, 8 bits per code: {0,4,8,16,16,16,8,32}.
const fpcLens = 0x2008101010080400

// fpcCodeBase/fpcDataBase are the byte offsets of the code table and data
// stream in the payload.
const (
	fpcCodeBase = 1
	fpcDataBase = 13
)

// emitExclusiveScan turns acc (per-lane value) into its exclusive prefix
// sum across the warp using 5 shuffle steps. lane must hold the lane
// index; tmp/idx are scratch; pred is clobbered.
func emitExclusiveScan(b *isa.Builder, lane, acc, orig, tmp, idx isa.Reg, pred isa.Pred) {
	b.Mov(orig, acc)
	for k := int64(1); k <= 16; k <<= 1 {
		b.SubI(idx, lane, k).
			AndI(idx, idx, 31).
			Shfl(tmp, acc, idx).
			SetPI(isa.CmpGE, pred, lane, k).
			Add(acc, acc, tmp).WithGuard(pred, false)
	}
	b.Sub(acc, acc, orig)
}

// fpcDecompRoutine expands all 32 words in parallel.
func fpcDecompRoutine() *Routine {
	b := isa.NewBuilder("fpc.decomp")
	r := isa.R
	p := isa.P

	b.Mov(r(2), isa.RegLane).
		// 3-bit code at bit 3*lane of the code table.
		MulI(r(3), r(2), 3).
		ShrI(r(4), r(3), 3).
		LdStage(r(4), r(4), fpcCodeBase, 2).
		AndI(r(5), r(3), 7).
		Shr(r(4), r(4), r(5)).
		AndI(r(3), r(4), 7). // code
		// len = (fpcLens >> (code*8)) & 0xFF
		MovI(r(4), fpcLens).
		ShlI(r(5), r(3), 3).
		Shr(r(4), r(4), r(5)).
		AndI(r(4), r(4), 0xFF) // len (bits)
	// Exclusive scan of lens -> bit offset in r(5).
	b.Mov(r(5), r(4))
	emitExclusiveScan(b, r(2), r(5), r(6), r(7), r(8), p(0))
	b.
		// Load up to 39 bits covering the field.
		ShrI(r(6), r(5), 3).
		AndI(r(7), r(5), 7).
		LdStage(r(8), r(6), fpcDataBase, 8).
		Shr(r(8), r(8), r(7)).
		MovI(r(9), 1).
		Shl(r(9), r(9), r(4)).
		SubI(r(9), r(9), 1).
		And(r(8), r(8), r(9)). // field
		// Decode into r(10), lowest-priority first.
		Mov(r(10), r(8)). // code 7: raw
		// code 0: zero.
		SetPI(isa.CmpEQ, p(0), r(3), 0).
		MovI(r(10), 0).WithGuard(p(0), false).
		// code 1: 4-bit sign extension via (x ^ 8) - 8.
		XorI(r(6), r(8), 8).
		SubI(r(6), r(6), 8).
		SetPI(isa.CmpEQ, p(0), r(3), 1).
		Mov(r(10), r(6)).WithGuard(p(0), false).
		// code 2: 8-bit sign extension.
		Sext(r(6), r(8), 1).
		SetPI(isa.CmpEQ, p(0), r(3), 2).
		Mov(r(10), r(6)).WithGuard(p(0), false).
		// code 3: 16-bit sign extension.
		Sext(r(6), r(8), 2).
		SetPI(isa.CmpEQ, p(0), r(3), 3).
		Mov(r(10), r(6)).WithGuard(p(0), false).
		// code 4: halfword in the upper half.
		ShlI(r(6), r(8), 16).
		SetPI(isa.CmpEQ, p(0), r(3), 4).
		Mov(r(10), r(6)).WithGuard(p(0), false).
		// code 5: two sign-extended bytes.
		AndI(r(6), r(8), 0xFF).
		Sext(r(6), r(6), 1).
		AndI(r(6), r(6), 0xFFFF).
		ShrI(r(7), r(8), 8).
		AndI(r(7), r(7), 0xFF).
		Sext(r(7), r(7), 1).
		ShlI(r(7), r(7), 16).
		Or(r(6), r(6), r(7)).
		SetPI(isa.CmpEQ, p(0), r(3), 5).
		Mov(r(10), r(6)).WithGuard(p(0), false).
		// code 6: repeated byte.
		AndI(r(6), r(8), 0xFF).
		MulI(r(6), r(6), 0x01010101).
		SetPI(isa.CmpEQ, p(0), r(3), 6).
		Mov(r(10), r(6)).WithGuard(p(0), false).
		// Store the word.
		MulI(r(6), r(2), 4).
		StStage(r(6), 0, r(10), 4).
		Exit()
	return &Routine{ID: RtFPCDecomp, Name: "fpc.decomp",
		Prog: b.MustBuild(), Priority: PriHigh, ActiveMask: FullMask}
}

// fpcCompRoutine classifies all words in parallel, then packs the
// bitstream serially (guarded on lane 0 for the stores, with shuffles
// feeding each word's code/field/len to the packer).
func fpcCompRoutine() *Routine {
	b := isa.NewBuilder("fpc.comp")
	r := isa.R
	p := isa.P

	// --- Parallel classification. r2=lane, r3=w, r4=code, r5=field,
	// r6=len, r7/r8 scratch.
	b.Mov(r(2), isa.RegLane).
		MulI(r(3), r(2), 4).
		LdStage(r(3), r(3), 0, 4). // w
		// Default: raw.
		MovI(r(4), 7).
		Mov(r(5), r(3)).
		// repbyte (code 6): w == (w&0xFF) * 0x01010101.
		AndI(r(7), r(3), 0xFF).
		MulI(r(8), r(7), 0x01010101).
		SetP(isa.CmpEQ, p(0), r(8), r(3)).
		MovI(r(4), 6).WithGuard(p(0), false).
		Mov(r(5), r(7)).WithGuard(p(0), false).
		// halfsext (code 5): both halfwords are sign-extended bytes.
		AndI(r(7), r(3), 0xFF).
		Sext(r(7), r(7), 1).
		AndI(r(7), r(7), 0xFFFF).
		ShrI(r(8), r(3), 16).
		AndI(r(8), r(8), 0xFF).
		Sext(r(8), r(8), 1).
		ShlI(r(8), r(8), 16).
		Or(r(7), r(7), r(8)).
		AndI(r(7), r(7), 0xFFFFFFFF).
		SetP(isa.CmpEQ, p(0), r(7), r(3)).
		// field = (w&0xFF) | ((w>>16)&0xFF)<<8
		AndI(r(7), r(3), 0xFF).
		ShrI(r(8), r(3), 16).
		AndI(r(8), r(8), 0xFF).
		ShlI(r(8), r(8), 8).
		Or(r(7), r(7), r(8)).
		MovI(r(4), 5).WithGuard(p(0), false).
		Mov(r(5), r(7)).WithGuard(p(0), false).
		// zerolow (code 4): w & 0xFFFF == 0.
		AndI(r(7), r(3), 0xFFFF).
		SetPI(isa.CmpEQ, p(0), r(7), 0).
		MovI(r(4), 4).WithGuard(p(0), false).
		ShrI(r(7), r(3), 16).
		Mov(r(5), r(7)).WithGuard(p(0), false).
		// sext16 (code 3).
		Sext(r(7), r(3), 2).
		AndI(r(7), r(7), 0xFFFFFFFF).
		SetP(isa.CmpEQ, p(0), r(7), r(3)).
		MovI(r(4), 3).WithGuard(p(0), false).
		AndI(r(7), r(3), 0xFFFF).
		Mov(r(5), r(7)).WithGuard(p(0), false).
		// sext8 (code 2).
		Sext(r(7), r(3), 1).
		AndI(r(7), r(7), 0xFFFFFFFF).
		SetP(isa.CmpEQ, p(0), r(7), r(3)).
		MovI(r(4), 2).WithGuard(p(0), false).
		AndI(r(7), r(3), 0xFF).
		Mov(r(5), r(7)).WithGuard(p(0), false).
		// sext4 (code 1): ((w&0xF ^ 8) - 8) & 0xFFFFFFFF == w.
		AndI(r(7), r(3), 0xF).
		XorI(r(7), r(7), 8).
		SubI(r(7), r(7), 8).
		AndI(r(7), r(7), 0xFFFFFFFF).
		SetP(isa.CmpEQ, p(0), r(7), r(3)).
		MovI(r(4), 1).WithGuard(p(0), false).
		AndI(r(7), r(3), 0xF).
		Mov(r(5), r(7)).WithGuard(p(0), false).
		// zero (code 0).
		SetPI(isa.CmpEQ, p(0), r(3), 0).
		MovI(r(4), 0).WithGuard(p(0), false).
		MovI(r(5), 0).WithGuard(p(0), false).
		// len.
		MovI(r(6), fpcLens).
		ShlI(r(7), r(4), 3).
		Shr(r(6), r(6), r(7)).
		AndI(r(6), r(6), 0xFF)

	// --- Serial pack. r9=j, r10=codeacc, r11=codefill, r12=codepos,
	// r13=dataacc, r14=datafill, r15=datapos, r16=totalbits,
	// r17..r19 = code/field/len of word j, r7/r8 scratch.
	// p3 = lane 0.
	b.SetPI(isa.CmpEQ, p(3), r(2), 0).
		MovI(r(9), 0).
		MovI(r(10), 0).
		MovI(r(11), 0).
		MovI(r(12), fpcCodeBase).
		MovI(r(13), 0).
		MovI(r(14), 0).
		MovI(r(15), fpcDataBase).
		MovI(r(16), 0).
		Label("pack")
	b.Shfl(r(17), r(4), r(9)).
		Shfl(r(18), r(5), r(9)).
		Shfl(r(19), r(6), r(9)).
		// Append 3 code bits.
		Shl(r(7), r(17), r(11)).
		Or(r(10), r(10), r(7)).
		AddI(r(11), r(11), 3).
		// Flush 32 code bits when full.
		SetPI(isa.CmpGE, p(0), r(11), 32).
		PAnd(p(1), p(0), p(3)).
		StStage(r(12), 0, r(10), 4).WithGuard(p(1), false).
		AddI(r(12), r(12), 4).WithGuard(p(0), false).
		ShrI(r(10), r(10), 32).WithGuard(p(0), false).
		SubI(r(11), r(11), 32).WithGuard(p(0), false).
		// Append len data bits.
		Shl(r(7), r(18), r(14)).
		Or(r(13), r(13), r(7)).
		Add(r(14), r(14), r(19)).
		Add(r(16), r(16), r(19)).
		SetPI(isa.CmpGE, p(0), r(14), 32).
		PAnd(p(1), p(0), p(3)).
		StStage(r(15), 0, r(13), 4).WithGuard(p(1), false).
		AddI(r(15), r(15), 4).WithGuard(p(0), false).
		ShrI(r(13), r(13), 32).WithGuard(p(0), false).
		SubI(r(14), r(14), 32).WithGuard(p(0), false).
		AddI(r(9), r(9), 1).
		SetPI(isa.CmpLT, p(0), r(9), 32).
		BraP(p(0), false, "pack")
	// Residual data flush (codes end 32-bit aligned: 96 bits total).
	b.SetPI(isa.CmpGT, p(0), r(14), 0).
		PAnd(p(1), p(0), p(3)).
		StStage(r(15), 0, r(13), 4).WithGuard(p(1), false).
		// size = fpcDataBase + ceil(totalbits/8)
		AddI(r(1), r(16), 7).
		ShrI(r(1), r(1), 3).
		AddI(r(1), r(1), fpcDataBase).
		// success = size < LineSize; write encoding byte 0 on success.
		SetPI(isa.CmpLT, p(0), r(1), 128).
		PAnd(p(1), p(0), p(3)).
		MovI(r(7), 0).
		StStage(r(7), 0, r(7), 1).WithGuard(p(1), false).
		MovI(r(0), 0).
		MovI(r(0), 1).WithGuard(p(0), false).
		Exit()
	return &Routine{ID: RtFPCComp, Name: "fpc.comp",
		Prog: b.MustBuild(), Priority: PriLow, ActiveMask: FullMask}
}
