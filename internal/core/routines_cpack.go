package core

import (
	"github.com/caba-sim/caba/internal/isa"
)

// C-Pack assist-warp subroutines (Section 4.1.3). The CABA adaptation uses
// four fixed 2-bit codes and a no-wraparound dictionary of the line's
// first <=16 raw words, which removes decode-order dependencies:
// decompression recovers every dictionary entry directly from the data
// stream, publishes entries through a shared-memory scratch (the dictionary
// the paper allocates from unused shared memory), and expands all 32 words
// in parallel. Compression is serialized per word — as in the C-Pack
// hardware — but matches all 16 dictionary entries at once across lanes.

// cpackLens packs the data-bit lengths of codes {zzzz,xxxx,mmmm,mmxx} =
// {0,32,4,12}, 8 bits per code.
const cpackLens = 0x0C042000

const (
	cpackCodeBase = 1
	cpackDataBase = 9
)

// cpackDecompRoutine expands all 32 words in parallel.
func cpackDecompRoutine() *Routine {
	b := isa.NewBuilder("cpack.decomp")
	r := isa.R
	p := isa.P

	b.Mov(r(2), isa.RegLane).
		// 2-bit code at bit 2*lane.
		MulI(r(3), r(2), 2).
		ShrI(r(4), r(3), 3).
		LdStage(r(4), r(4), cpackCodeBase, 1).
		AndI(r(5), r(3), 7).
		Shr(r(4), r(4), r(5)).
		AndI(r(3), r(4), 3). // code
		// len = (cpackLens >> (code*8)) & 0xFF.
		MovI(r(4), cpackLens).
		ShlI(r(5), r(3), 3).
		Shr(r(4), r(4), r(5)).
		AndI(r(4), r(4), 0xFF). // len
		// Pack (isRaw << 16) | len so one scan yields both the bit offset
		// and the dictionary push index.
		SetPI(isa.CmpEQ, p(0), r(3), 1).
		MovI(r(5), 0).
		MovI(r(5), 0x10000).WithGuard(p(0), false).
		Or(r(5), r(5), r(4))
	emitExclusiveScan(b, r(2), r(5), r(6), r(7), r(8), p(1))
	b.AndI(r(6), r(5), 0xFFFF). // bit offset
					ShrI(r(7), r(5), 16). // push index (raw words before me)
		// Load the field.
		ShrI(r(8), r(6), 3).
		AndI(r(9), r(6), 7).
		LdStage(r(10), r(8), cpackDataBase, 8).
		Shr(r(10), r(10), r(9)).
		MovI(r(11), 1).
		Shl(r(11), r(11), r(4)).
		SubI(r(11), r(11), 1).
		And(r(10), r(10), r(11)). // field
		// Raw lanes publish their dictionary entry (first 16 pushes).
		SetPI(isa.CmpLT, p(1), r(7), 16).
		PAnd(p(1), p(0), p(1)).
		MulI(r(8), r(7), 4).
		StShared(r(8), 0, r(10), 4).WithGuard(p(1), false).
		// Decode into r(12).
		MovI(r(12), 0).                           // zzzz
		Mov(r(12), r(10)).WithGuard(p(0), false). // xxxx
		// Dictionary index for mmmm/mmxx.
		AndI(r(8), r(10), 0xF).
		MulI(r(8), r(8), 4).
		LdShared(r(13), r(8), 0, 4). // dict[b] (don't-care for other codes)
		SetPI(isa.CmpEQ, p(1), r(3), 2).
		Mov(r(12), r(13)).WithGuard(p(1), false). // mmmm
		// mmxx: (dict & ~0xFF) | literal.
		AndI(r(13), r(13), 0xFFFFFF00).
		ShrI(r(14), r(10), 4).
		AndI(r(14), r(14), 0xFF).
		Or(r(13), r(13), r(14)).
		SetPI(isa.CmpEQ, p(1), r(3), 3).
		Mov(r(12), r(13)).WithGuard(p(1), false).
		// Store the word.
		MulI(r(8), r(2), 4).
		StStage(r(8), 0, r(12), 4).
		Exit()
	return &Routine{ID: RtCPackDecomp, Name: "cpack.decomp",
		Prog: b.MustBuild(), Priority: PriHigh, ActiveMask: FullMask}
}

// cpackCompRoutine compresses the line: one serial pass over the 32 words
// with warp-parallel dictionary matching (each lane compares one
// dictionary slot) and the same serial bit-packer as FPC.
func cpackCompRoutine() *Routine {
	b := isa.NewBuilder("cpack.comp")
	r := isa.R
	p := isa.P

	// Prelude: per-lane word, lane-0 predicate, packer state.
	// r2=lane, r3=w_i, p3=lane0.
	// r6=dictN, r8=j, r9=codeacc, r10=codefill, r11=codepos, r12=dataacc,
	// r13=datafill, r14=datapos, r15=totalbits.
	b.Mov(r(2), isa.RegLane).
		MulI(r(4), r(2), 4).
		LdStage(r(3), r(4), 0, 4).
		SetPI(isa.CmpEQ, p(3), r(2), 0).
		MovI(r(6), 0).
		MovI(r(8), 0).
		MovI(r(9), 0).
		MovI(r(10), 0).
		MovI(r(11), cpackCodeBase).
		MovI(r(12), 0).
		MovI(r(13), 0).
		MovI(r(14), cpackDataBase).
		MovI(r(15), 0).
		Label("word")
	// w_j broadcast; parallel dictionary compare (lane k handles slot k).
	b.Shfl(r(16), r(3), r(8)).
		SetP(isa.CmpLT, p(0), r(2), r(6)). // my slot is populated
		MulI(r(17), r(2), 4).
		MovI(r(18), 0).
		LdShared(r(18), r(17), 0, 4).WithGuard(p(0), false).
		SetP(isa.CmpEQ, p(1), r(18), r(16)).
		PAnd(p(1), p(1), p(0)).
		Ballot(r(19), p(1)). // exact-match mask
		AndI(r(20), r(18), 0xFFFFFF00).
		AndI(r(21), r(16), 0xFFFFFF00).
		SetP(isa.CmpEQ, p(2), r(20), r(21)).
		PAnd(p(2), p(2), p(0)).
		Ballot(r(20), p(2)). // partial-match mask
		Ctz(r(21), r(19)).   // first exact slot
		Ctz(r(22), r(20)).   // first partial slot
		// Choose pattern. Defaults: raw (code 1, field w, len 32).
		MovI(r(17), 1).
		Mov(r(18), r(16)).
		MovI(r(23), 32).
		// Partial match: code 3, field idx | literal<<4, len 12.
		SetPI(isa.CmpNE, p(1), r(20), 0).
		AndI(r(24), r(16), 0xFF).
		ShlI(r(24), r(24), 4).
		Or(r(24), r(24), r(22)).
		MovI(r(17), 3).WithGuard(p(1), false).
		Mov(r(18), r(24)).WithGuard(p(1), false).
		MovI(r(23), 12).WithGuard(p(1), false).
		// Exact match: code 2, field idx, len 4.
		SetPI(isa.CmpNE, p(1), r(19), 0).
		MovI(r(17), 2).WithGuard(p(1), false).
		Mov(r(18), r(21)).WithGuard(p(1), false).
		MovI(r(23), 4).WithGuard(p(1), false).
		// Zero: code 0, len 0.
		SetPI(isa.CmpEQ, p(1), r(16), 0).
		MovI(r(17), 0).WithGuard(p(1), false).
		MovI(r(18), 0).WithGuard(p(1), false).
		MovI(r(23), 0).WithGuard(p(1), false).
		// Raw words push into the dictionary while it has room.
		SetPI(isa.CmpEQ, p(1), r(17), 1).
		SetPI(isa.CmpLT, p(2), r(6), 16).
		PAnd(p(1), p(1), p(2)).
		PAnd(p(2), p(1), p(3)).
		MulI(r(24), r(6), 4).
		StShared(r(24), 0, r(16), 4).WithGuard(p(2), false).
		AddI(r(6), r(6), 1).WithGuard(p(1), false).
		// Append 2 code bits.
		Shl(r(24), r(17), r(10)).
		Or(r(9), r(9), r(24)).
		AddI(r(10), r(10), 2).
		SetPI(isa.CmpGE, p(1), r(10), 32).
		PAnd(p(2), p(1), p(3)).
		StStage(r(11), 0, r(9), 4).WithGuard(p(2), false).
		AddI(r(11), r(11), 4).WithGuard(p(1), false).
		ShrI(r(9), r(9), 32).WithGuard(p(1), false).
		SubI(r(10), r(10), 32).WithGuard(p(1), false).
		// Append data bits.
		Shl(r(24), r(18), r(13)).
		Or(r(12), r(12), r(24)).
		Add(r(13), r(13), r(23)).
		Add(r(15), r(15), r(23)).
		SetPI(isa.CmpGE, p(1), r(13), 32).
		PAnd(p(2), p(1), p(3)).
		StStage(r(14), 0, r(12), 4).WithGuard(p(2), false).
		AddI(r(14), r(14), 4).WithGuard(p(1), false).
		ShrI(r(12), r(12), 32).WithGuard(p(1), false).
		SubI(r(13), r(13), 32).WithGuard(p(1), false).
		AddI(r(8), r(8), 1).
		SetPI(isa.CmpLT, p(1), r(8), 32).
		BraP(p(1), false, "word")
	// Residual data flush (codes end exactly 32-bit aligned: 64 bits).
	b.SetPI(isa.CmpGT, p(1), r(13), 0).
		PAnd(p(2), p(1), p(3)).
		StStage(r(14), 0, r(12), 4).WithGuard(p(2), false).
		// size = cpackDataBase + ceil(totalbits/8).
		AddI(r(1), r(15), 7).
		ShrI(r(1), r(1), 3).
		AddI(r(1), r(1), cpackDataBase).
		SetPI(isa.CmpLT, p(1), r(1), 128).
		PAnd(p(2), p(1), p(3)).
		MovI(r(24), 0).
		StStage(r(24), 0, r(24), 1).WithGuard(p(2), false).
		MovI(r(0), 0).
		MovI(r(0), 1).WithGuard(p(1), false).
		Exit()
	return &Routine{ID: RtCPackComp, Name: "cpack.comp",
		Prog: b.MustBuild(), Priority: PriLow, ActiveMask: FullMask}
}
