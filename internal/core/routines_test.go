package core

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/caba-sim/caba/internal/compress"
)

var testStore = BuildLibrary()

// lineGen produces application-like cache lines (mirrors the compress
// package's generator so routines see the same distribution).
func lineGen(rng *rand.Rand) []byte {
	line := make([]byte, compress.LineSize)
	switch rng.Intn(7) {
	case 0: // all zero
	case 1: // zeros with spikes
		for i := 0; i < 4; i++ {
			line[rng.Intn(compress.LineSize)] = byte(rng.Intn(256))
		}
	case 2: // small 4-byte counters
		for i := 0; i < 32; i++ {
			binary.LittleEndian.PutUint32(line[i*4:], uint32(rng.Intn(2000)))
		}
	case 3: // 8-byte pointers with offsets
		base := rng.Uint64() &^ 0xFFF
		for i := 0; i < 16; i++ {
			binary.LittleEndian.PutUint64(line[i*8:], base+uint64(rng.Intn(200)))
		}
	case 4: // few distinct words
		var ws [3]uint32
		for i := range ws {
			ws[i] = rng.Uint32()
		}
		for i := 0; i < 32; i++ {
			binary.LittleEndian.PutUint32(line[i*4:], ws[rng.Intn(3)])
		}
	case 5: // repeated 8-byte value
		v := rng.Uint64()
		for i := 0; i < 16; i++ {
			binary.LittleEndian.PutUint64(line[i*8:], v)
		}
	case 6: // noise
		rng.Read(line)
	}
	return line
}

// --- Decompression routines vs oracle ---

func verifyDecomp(t *testing.T, c compress.Compressed, want []byte) {
	t.Helper()
	got, e, err := RunDecompression(testStore, c)
	if err != nil {
		t.Fatalf("decompress %v enc=%d: %v", c.Alg, c.Enc, err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%v enc=%d: assist warp output differs from oracle\nwant %x\n got %x\n(%d instrs)",
			c.Alg, c.Enc, want, got, e.Executed)
	}
}

func TestBDIDecompRoutinesAllEncodings(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	hit := map[compress.BDIEncoding]int{}
	for trial := 0; trial < 400; trial++ {
		line := lineGen(rng)
		c, err := compress.Compress(compress.AlgBDI, line)
		if err != nil {
			t.Fatal(err)
		}
		if !c.IsCompressed() {
			continue
		}
		hit[compress.BDIEncoding(c.Enc)]++
		verifyDecomp(t, c, line)
	}
	for _, enc := range []compress.BDIEncoding{compress.BDIZeros, compress.BDIRepeat, compress.BDIBase8D1} {
		if hit[enc] == 0 {
			t.Errorf("generator never produced encoding %v; coverage too weak", enc)
		}
	}
}

func TestBDIDecompEachEncodingDirected(t *testing.T) {
	// Force every encoding via BDICompressAs and verify its routine.
	mk := func(width, spread int) []byte {
		line := make([]byte, compress.LineSize)
		base := uint64(0x7000_0000_0000)
		for i := 0; i < compress.LineSize/width; i++ {
			v := base + uint64(i%spread)
			if i%3 == 0 {
				v = uint64(i % spread) // zero-base immediates
			}
			switch width {
			case 2:
				binary.LittleEndian.PutUint16(line[i*2:], uint16(v))
			case 4:
				binary.LittleEndian.PutUint32(line[i*4:], uint32(v|0x40000000))
			case 8:
				binary.LittleEndian.PutUint64(line[i*8:], v)
			}
		}
		return line
	}
	cases := map[compress.BDIEncoding][]byte{
		compress.BDIBase8D1: mk(8, 100),
		compress.BDIBase8D2: mk(8, 30000),
		compress.BDIBase8D4: mk(8, 1<<30),
		compress.BDIBase4D1: mk(4, 100),
		compress.BDIBase4D2: mk(4, 30000),
		compress.BDIBase2D1: mk(2, 100),
	}
	for enc, line := range cases {
		c, ok := compress.BDICompressAs(line, enc)
		if !ok {
			t.Errorf("%v: directed line does not fit its own encoding", enc)
			continue
		}
		verifyDecomp(t, c, line)
	}
}

func TestFPCDecompRoutine(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	checked := 0
	for trial := 0; trial < 300; trial++ {
		line := lineGen(rng)
		c, _ := compress.Compress(compress.AlgFPC, line)
		if !c.IsCompressed() {
			continue
		}
		verifyDecomp(t, c, line)
		checked++
	}
	if checked < 100 {
		t.Errorf("only %d compressible FPC lines checked", checked)
	}
}

func TestCPackDecompRoutine(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	checked := 0
	for trial := 0; trial < 300; trial++ {
		line := lineGen(rng)
		c, _ := compress.Compress(compress.AlgCPack, line)
		if !c.IsCompressed() {
			continue
		}
		verifyDecomp(t, c, line)
		checked++
	}
	if checked < 100 {
		t.Errorf("only %d compressible C-Pack lines checked", checked)
	}
}

// --- Compression routines vs oracle ---

func TestBDICompSpecialRoutine(t *testing.T) {
	zeros := make([]byte, compress.LineSize)
	res, err := RunBDICompression(testStore, zeros)
	if err != nil {
		t.Fatal(err)
	}
	if compress.BDIEncoding(res.State.Enc) != compress.BDIZeros {
		t.Errorf("zero line got %v", compress.BDIEncoding(res.State.Enc))
	}
	oracle, _ := compress.Compress(compress.AlgBDI, zeros)
	if !bytes.Equal(res.State.Data, oracle.Data) {
		t.Errorf("zeros payload: got %x, want %x", res.State.Data, oracle.Data)
	}

	rep := make([]byte, compress.LineSize)
	for i := 0; i < 16; i++ {
		binary.LittleEndian.PutUint64(rep[i*8:], 0xdead_beef_cafe_f00d)
	}
	res, err = RunBDICompression(testStore, rep)
	if err != nil {
		t.Fatal(err)
	}
	oracle, _ = compress.Compress(compress.AlgBDI, rep)
	if !bytes.Equal(res.State.Data, oracle.Data) {
		t.Errorf("repeat payload: got %x, want %x", res.State.Data, oracle.Data)
	}
}

func TestBDICompTestRoutineMatchesOraclePayload(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	matched := 0
	for trial := 0; trial < 300; trial++ {
		line := lineGen(rng)
		res, err := RunBDICompression(testStore, line)
		if err != nil {
			t.Fatal(err)
		}
		if !res.State.IsCompressed() {
			// The assist warp skips b2d1; anything else compressible by
			// the oracle must also compress here.
			oracle, _ := compress.Compress(compress.AlgBDI, line)
			if oracle.IsCompressed() && compress.BDIEncoding(oracle.Enc) != compress.BDIBase2D1 {
				t.Fatalf("assist warp failed to compress a %v-compressible line",
					compress.BDIEncoding(oracle.Enc))
			}
			continue
		}
		// The chosen encoding's oracle payload must match byte for byte.
		enc := compress.BDIEncoding(res.State.Enc)
		if enc != compress.BDIZeros && enc != compress.BDIRepeat {
			oracle, ok := compress.BDICompressAs(line, enc)
			if !ok {
				t.Fatalf("assist warp chose %v but oracle says it does not fit", enc)
			}
			if !bytes.Equal(res.State.Data, oracle.Data) {
				t.Fatalf("%v payload mismatch:\n aw %x\n or %x", enc, res.State.Data, oracle.Data)
			}
			matched++
		}
		// And it must decompress back to the original line.
		out := make([]byte, compress.LineSize)
		if err := compress.Decompress(res.State, out); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out, line) {
			t.Fatal("assist-warp payload does not round-trip")
		}
	}
	if matched < 30 {
		t.Errorf("only %d base-delta payload comparisons; coverage too weak", matched)
	}
}

func TestFPCCompRoutineByteExact(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	checked := 0
	for trial := 0; trial < 200; trial++ {
		line := lineGen(rng)
		res, err := RunCompression(testStore, compress.AlgFPC, line)
		if err != nil {
			t.Fatal(err)
		}
		oracle, _ := compress.Compress(compress.AlgFPC, line)
		if oracle.IsCompressed() != res.State.IsCompressed() {
			t.Fatalf("compressibility disagreement: oracle %v, aw %v (size %d)",
				oracle.IsCompressed(), res.State.IsCompressed(), res.State.Size())
		}
		if !oracle.IsCompressed() {
			continue
		}
		if !bytes.Equal(res.State.Data, oracle.Data) {
			t.Fatalf("FPC payload mismatch (trial %d):\n aw %x\n or %x", trial, res.State.Data, oracle.Data)
		}
		checked++
	}
	if checked < 50 {
		t.Errorf("only %d FPC payloads compared", checked)
	}
}

func TestCPackCompRoutineByteExact(t *testing.T) {
	rng := rand.New(rand.NewSource(66))
	checked := 0
	for trial := 0; trial < 200; trial++ {
		line := lineGen(rng)
		res, err := RunCompression(testStore, compress.AlgCPack, line)
		if err != nil {
			t.Fatal(err)
		}
		oracle, _ := compress.Compress(compress.AlgCPack, line)
		if oracle.IsCompressed() != res.State.IsCompressed() {
			t.Fatalf("compressibility disagreement: oracle %v aw %v",
				oracle.IsCompressed(), res.State.IsCompressed())
		}
		if !oracle.IsCompressed() {
			continue
		}
		if !bytes.Equal(res.State.Data, oracle.Data) {
			t.Fatalf("C-Pack payload mismatch (trial %d):\n aw %x\n or %x", trial, res.State.Data, oracle.Data)
		}
		checked++
	}
	if checked < 50 {
		t.Errorf("only %d C-Pack payloads compared", checked)
	}
}

func TestBestOfAllCompression(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 50; trial++ {
		line := lineGen(rng)
		res, err := RunCompression(testStore, compress.AlgBest, line)
		if err != nil {
			t.Fatal(err)
		}
		if !res.State.IsCompressed() {
			continue
		}
		out := make([]byte, compress.LineSize)
		if err := compress.Decompress(res.State, out); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out, line) {
			t.Fatal("BestOfAll payload does not round-trip")
		}
	}
}

// TestQuickRoutineOracleAgreement is the headline property: for any line,
// running the full CABA compression pass and then the matching
// decompression routine reproduces the line exactly, and FPC/C-Pack
// payloads equal the oracle's bit for bit.
func TestQuickRoutineOracleAgreement(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		line := lineGen(rng)
		for _, alg := range []compress.AlgID{compress.AlgBDI, compress.AlgFPC, compress.AlgCPack} {
			res, err := RunCompression(testStore, alg, line)
			if err != nil {
				return false
			}
			if !res.State.IsCompressed() {
				continue
			}
			got, _, err := RunDecompression(testStore, res.State)
			if err != nil {
				return false
			}
			if !bytes.Equal(got, line) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// --- Cost accounting sanity: the instruction counts the GPU model charges ---

func TestRoutineCostsOrdered(t *testing.T) {
	// BDI decompression must be much cheaper than FPC/C-Pack compression,
	// mirroring the paper's latency hierarchy.
	line := make([]byte, compress.LineSize)
	for i := 0; i < 16; i++ {
		binary.LittleEndian.PutUint64(line[i*8:], 0x70000000+uint64(i))
	}
	c, _ := compress.Compress(compress.AlgBDI, line)
	_, e, err := RunDecompression(testStore, c)
	if err != nil {
		t.Fatal(err)
	}
	bdiDecompCost := e.Executed

	res, err := RunCompression(testStore, compress.AlgFPC, line)
	if err != nil {
		t.Fatal(err)
	}
	if bdiDecompCost >= res.Instrs {
		t.Errorf("BDI decomp (%d instrs) should be far cheaper than FPC comp (%d)", bdiDecompCost, res.Instrs)
	}
	if bdiDecompCost > 30 {
		t.Errorf("BDI decompression = %d instrs; expected a short parallel routine", bdiDecompCost)
	}
	if res.Instrs < 100 {
		t.Errorf("FPC compression = %d instrs; the serial packer should dominate", res.Instrs)
	}
}

func TestLibraryPreload(t *testing.T) {
	if testStore.Len() < 17 {
		t.Errorf("library has %d routines; expected the full set", testStore.Len())
	}
	if testStore.TotalInstrs == 0 || testStore.TotalInstrs > 4096 {
		t.Errorf("AWS footprint = %d instructions; should be small on-chip storage", testStore.TotalInstrs)
	}
	// Every routine's register demand must fit the reserved assist slice.
	for enc := compress.BDIZeros; enc < compress.BDINumEncodings; enc++ {
		rt := testStore.MustGet(RtBDIDecomp + RoutineID(enc))
		if rt.Prog.NumReg > 32 {
			t.Errorf("%s needs %d regs", rt.Name, rt.Prog.NumReg)
		}
	}
	for _, id := range []RoutineID{RtFPCComp, RtCPackComp, RtFPCDecomp, RtCPackDecomp} {
		rt := testStore.MustGet(id)
		if rt.Prog.NumReg > 32 {
			t.Errorf("%s needs %d regs, exceeding the assist register window", rt.Name, rt.Prog.NumReg)
		}
	}
}

func TestDecompRoutineIDs(t *testing.T) {
	id, err := DecompRoutineID(compress.Compressed{Alg: compress.AlgBDI, Enc: 3})
	if err != nil || id != RtBDIDecomp+3 {
		t.Errorf("BDI id = %d, %v", id, err)
	}
	if _, err := DecompRoutineID(compress.Compressed{Alg: compress.AlgNone}); err == nil {
		t.Error("AlgNone has no decompression routine")
	}
}

// TestRoutineLengths pins the static instruction counts of the key
// subroutines: the simulator charges these per line, so silent growth is a
// performance regression (and shrinkage deserves a look too).
func TestRoutineLengths(t *testing.T) {
	want := map[RoutineID][2]int{ // id -> {min, max} instructions
		RtBDIDecomp + RoutineID(compress.BDIZeros):   {4, 6},
		RtBDIDecomp + RoutineID(compress.BDIRepeat):  {5, 8},
		RtBDIDecomp + RoutineID(compress.BDIBase8D1): {12, 18},
		RtBDIDecomp + RoutineID(compress.BDIBase2D1): {20, 32},
		RtBDICompSpecial: {15, 24},
		RtBDICompTest + RoutineID(compress.BDIBase8D1): {24, 34},
		RtFPCDecomp:   {55, 90},
		RtCPackDecomp: {50, 85},
		RtPrefetch:    {4, 8},
	}
	for id, bounds := range want {
		rt := testStore.MustGet(id)
		n := len(rt.Prog.Code)
		if n < bounds[0] || n > bounds[1] {
			t.Errorf("%s: %d instructions, expected %d..%d", rt.Name, n, bounds[0], bounds[1])
		}
	}
	// Decompression must stay much shorter than serial compression.
	dec := len(testStore.MustGet(RtBDIDecomp + RoutineID(compress.BDIBase8D1)).Prog.Code)
	fpcComp := len(testStore.MustGet(RtFPCComp).Prog.Code)
	if fpcComp < 3*dec {
		t.Errorf("FPC compression (%d) should dwarf BDI decompression (%d)", fpcComp, dec)
	}
}
