package core

import (
	"github.com/caba-sim/caba/internal/isa"
)

// Section 7 routines: memoization (7.1) and prefetching (7.2). These are
// the paper's "other uses of CABA" — implemented here as working routines
// and exercised by the examples/ programs.

// Memoization LUT layout in the shared-memory scratch: 64 direct-mapped
// slots of 16 bytes each — {tag u64, value u64}. Inputs are hashed with
// the SFU bit-mixer (the paper suggests hashing inputs for
// approximation-tolerant kernels).
const (
	memoSlots    = 64
	memoSlotSize = 16
)

// memoLookupRoutine probes the LUT. Live-in: r2 = per-lane input value.
// Live-out: r0 = ballot mask of lanes that hit, r1 = unused; per-lane r3 =
// cached result where hit.
func memoLookupRoutine() *Routine {
	b := isa.NewBuilder("memo.lookup")
	r := isa.R
	p := isa.P
	b.Sfu(r(4), r(2)). // hash = mix(input)
				AndI(r(4), r(4), memoSlots-1). // slot
				MulI(r(4), r(4), memoSlotSize).
				LdShared(r(5), r(4), 0, 8). // tag
				SetP(isa.CmpEQ, p(0), r(5), r(2)).
				LdShared(r(6), r(4), 8, 8). // value
				MovI(r(3), 0).
				Mov(r(3), r(6)).WithGuard(p(0), false).
				Ballot(r(0), p(0)).
				Exit()
	return &Routine{ID: RtMemoLookup, Name: "memo.lookup",
		Prog: b.MustBuild(), Priority: PriHigh, ActiveMask: FullMask}
}

// memoUpdateRoutine installs computed results. Live-in: r2 = input,
// r3 = result.
func memoUpdateRoutine() *Routine {
	b := isa.NewBuilder("memo.update")
	r := isa.R
	b.Sfu(r(4), r(2)).
		AndI(r(4), r(4), memoSlots-1).
		MulI(r(4), r(4), memoSlotSize).
		StShared(r(4), 0, r(2), 8). // tag
		StShared(r(4), 8, r(3), 8). // value
		Exit()
	return &Routine{ID: RtMemoUpdate, Name: "memo.update",
		Prog: b.MustBuild(), Priority: PriLow, ActiveMask: FullMask}
}

// memoProbeRoutine is the hardware-trigger variant of memo.lookup: the
// AWC's trigger path has already hashed the parent instruction's source
// operands (the content hash the result cache is indexed by), so the
// routine receives the slot byte offset as a live-in instead of spending
// an SFU op computing it — an SFU op here would re-occupy the very port
// memoization exists to relieve. Live-in: r2 = content-hash tag (all
// lanes), r4 = slot byte offset. Live-out: r0 = ballot of hitting lanes,
// per-lane r3 = cached result where hit.
func memoProbeRoutine() *Routine {
	b := isa.NewBuilder("memo.probe")
	r := isa.R
	p := isa.P
	b.LdShared(r(5), r(4), 0, 8). // tag
					SetP(isa.CmpEQ, p(0), r(5), r(2)).
					LdShared(r(6), r(4), 8, 8). // value
					MovI(r(3), 0).
					Mov(r(3), r(6)).WithGuard(p(0), false).
					Ballot(r(0), p(0)).
					Exit()
	return &Routine{ID: RtMemoProbe, Name: "memo.probe",
		Prog: b.MustBuild(), Priority: PriHigh, ActiveMask: FullMask}
}

// memoSaveRoutine is the hardware-trigger variant of memo.update: installs
// a freshly computed result under its pre-hashed slot. Live-in: r2 = tag,
// r3 = value, r4 = slot byte offset. Lane 0 only — one slot is written.
// Low priority: installs ride idle issue slots; dropping one costs only a
// future cache miss.
func memoSaveRoutine() *Routine {
	b := isa.NewBuilder("memo.save")
	r := isa.R
	b.StShared(r(4), 0, r(2), 8). // tag
					StShared(r(4), 8, r(3), 8). // value
					Exit()
	return &Routine{ID: RtMemoSave, Name: "memo.save",
		Prog: b.MustBuild(), Priority: PriLow, ActiveMask: maskFor(1)}
}

// PrefetchDegree is how many lines ahead the stride prefetcher fetches.
const PrefetchDegree = 4

// prefetchRoutine issues strided prefetch loads. Live-in: r2 = base
// address (the line after the triggering access), r3 = stride in bytes.
// Lane k fetches base + k*stride; the loaded values are discarded — the
// useful work is warming the caches. Low priority: prefetches go out only
// when the memory pipelines are idle, which is exactly the throttling
// CABA gives for free (Section 7.2).
func prefetchRoutine() *Routine {
	b := isa.NewBuilder("caba.prefetch")
	r := isa.R
	b.Mov(r(4), isa.RegLane).
		Mul(r(5), r(4), r(3)).
		Add(r(5), r(5), r(2)).
		LdGlobal(r(6), r(5), 0, 4).
		Exit()
	return &Routine{ID: RtPrefetch, Name: "caba.prefetch",
		Prog: b.MustBuild(), Priority: PriLow, ActiveMask: maskFor(PrefetchDegree)}
}

// eccCheckRoutine folds the 128-byte line in Exec.StageIn into a single
// warp-wide XOR checksum: lane k loads word k, then a shfl butterfly
// (offsets 16, 8, 4, 2, 1) XOR-reduces across the warp, leaving the
// checksum in every lane's accumulator and the live-out in lane 0's r0.
// The SM uses it as the timing model for the ECC-style integrity pass an
// assist warp runs over a freshly decompressed line before releasing it
// to the parent warp. High priority: the parent load is blocked on it,
// like decompression itself.
func eccCheckRoutine() *Routine {
	b := isa.NewBuilder("ecc.check")
	r := isa.R
	b.Mov(r(4), isa.RegLane).
		MulI(r(5), r(4), 4).
		LdStage(r(6), r(5), 0, 4) // word k
	for _, off := range [...]int64{16, 8, 4, 2, 1} {
		b.XorI(r(7), r(4), off). // partner lane = lane ^ off
						Shfl(r(8), r(6), r(7)).
						Xor(r(6), r(6), r(8))
	}
	b.Mov(r(0), r(6)).
		Exit()
	return &Routine{ID: RtECCCheck, Name: "ecc.check",
		Prog: b.MustBuild(), Priority: PriHigh, ActiveMask: FullMask}
}
