package core

import (
	"fmt"

	"github.com/caba-sim/caba/internal/compress"
	"github.com/caba-sim/caba/internal/isa"
)

// Subroutine conventions
// ----------------------
//
// Decompression routines: Exec.StageIn holds the compressed payload
// (including its leading encoding byte), Exec.StageOut receives the
// uncompressed 128-byte line. High priority: the parent warp's load is
// blocked until the routine completes (Section 4.2.1).
//
// Compression routines: Exec.StageIn holds the raw 128-byte line,
// Exec.StageOut receives the compressed payload. Low priority: issued only
// in idle cycles (Section 4.2.2). On completion, lane 0's registers carry
// the live-out results:
//
//	r0 (ResultReg): status — 0 failure; for RtBDICompSpecial 2 means the
//	    all-zero encoding and 1 the repeated-value encoding; otherwise 1
//	    means success
//	r1 (SizeReg): payload size in bytes (routines with variable size)
//
// Some routines need a small shared-memory scratch (Exec.Shared): the
// C-Pack dictionary (64B). The paper carves this out of the unallocated
// shared memory the same way registers are reserved (Section 3.2.2).

// ResultReg holds a compression routine's status at completion.
var ResultReg = isa.R(0)

// SizeReg holds a compression routine's payload byte size at completion.
var SizeReg = isa.R(1)

// StageBufSize is the staging-buffer allocation per assist warp: a line
// plus slack for serial bit-packers that may overrun before discovering
// the line is incompressible.
const StageBufSize = compress.LineSize + 64

// SharedScratchSize is the per-assist-warp shared-memory scratch (C-Pack
// dictionary, memoization tags).
const SharedScratchSize = 1024

// Routine IDs (the SR.ID space of the AWS).
const (
	// RtBDIDecomp+enc decompresses one BDI encoding (Section 4.1.2 stores
	// a separate subroutine per encoding).
	RtBDIDecomp RoutineID = 0x00
	// RtBDICompSpecial tests the all-zeros and repeated-value encodings
	// and emits their payload.
	RtBDICompSpecial RoutineID = 0x10
	// RtBDICompTest+enc tests one base-delta encoding and emits its
	// payload on success.
	RtBDICompTest RoutineID = 0x20
	// FPC and C-Pack routines.
	RtFPCDecomp   RoutineID = 0x30
	RtFPCComp     RoutineID = 0x31
	RtCPackDecomp RoutineID = 0x38
	RtCPackComp   RoutineID = 0x39
	// Section 7 routines.
	RtMemoLookup RoutineID = 0x40
	RtMemoUpdate RoutineID = 0x41
	RtPrefetch   RoutineID = 0x42
	// RtECCCheck folds a decompressed line into a warp-wide XOR checksum
	// (fault-injection recovery support).
	RtECCCheck RoutineID = 0x43
	// Hardware-trigger variants of the Section 7 memoization routines:
	// the AWC trigger path supplies the content-hash slot as a live-in,
	// so no SFU op runs inside the routine (see routines_other.go).
	RtMemoProbe RoutineID = 0x44
	RtMemoSave  RoutineID = 0x45
)

// BDICompTestOrder is the sequence of encodings a CABA compression pass
// tries, cheapest target size first. BDIBase2D1 is omitted: its 64
// two-byte values exceed the warp width, and the paper's adaptation drops
// rarely-winning encodings (Section 4.1.3).
var BDICompTestOrder = [...]compress.BDIEncoding{
	compress.BDIBase8D1,
	compress.BDIBase4D1,
	compress.BDIBase8D2,
	compress.BDIBase4D2,
	compress.BDIBase8D4,
}

// DecompRoutineID returns the AWS index for decompressing state c.
func DecompRoutineID(c compress.Compressed) (RoutineID, error) {
	switch c.Alg {
	case compress.AlgBDI:
		return RtBDIDecomp + RoutineID(c.Enc), nil
	case compress.AlgFPC:
		return RtFPCDecomp, nil
	case compress.AlgCPack:
		return RtCPackDecomp, nil
	}
	return 0, fmt.Errorf("core: no decompression routine for %v", c.Alg)
}

// BuildLibrary constructs the full Assist Warp Store: every compression
// and decompression subroutine plus the Section 7 routines, preloaded
// before the application runs (Section 3.3).
func BuildLibrary() *Store {
	s := NewStore()
	mustPreload := func(r *Routine) {
		if err := s.Preload(r); err != nil {
			panic(err)
		}
	}
	// BDI decompression: one routine per encoding.
	for enc := compress.BDIZeros; enc < compress.BDINumEncodings; enc++ {
		mustPreload(bdiDecompRoutine(enc))
	}
	// BDI compression: special checks + per-encoding tests.
	mustPreload(bdiCompSpecialRoutine())
	for _, enc := range BDICompTestOrder {
		mustPreload(bdiCompTestRoutine(enc))
	}
	// FPC.
	mustPreload(fpcDecompRoutine())
	mustPreload(fpcCompRoutine())
	// C-Pack.
	mustPreload(cpackDecompRoutine())
	mustPreload(cpackCompRoutine())
	// Section 7.
	mustPreload(memoLookupRoutine())
	mustPreload(memoUpdateRoutine())
	mustPreload(memoProbeRoutine())
	mustPreload(memoSaveRoutine())
	mustPreload(prefetchRoutine())
	// Fault-recovery support.
	mustPreload(eccCheckRoutine())
	return s
}

// NewAssistExec builds an execution context for an assist routine with
// fresh staging buffers and scratch shared memory. Live-in registers
// (Section 3.4's MOVE-copied values) are populated by the caller.
func NewAssistExec(rt *Routine) *Exec {
	e := NewExec(rt.Prog, rt.ActiveMask)
	e.StageIn = make([]byte, StageBufSize)
	e.StageOut = make([]byte, StageBufSize)
	e.Shared = make([]byte, SharedScratchSize)
	return e
}

// ResetAssistExec reinitializes a pooled assist execution context for rt,
// reusing its register file and staging buffers. The staging and scratch
// buffers are zeroed: routines rely on reads past the written payload
// returning zero, exactly as freshly allocated buffers do. A nil e builds
// a fresh context.
func ResetAssistExec(e *Exec, rt *Routine) *Exec {
	if e == nil {
		return NewAssistExec(rt)
	}
	e.Reset(rt.Prog, rt.ActiveMask)
	clear(e.StageIn)
	clear(e.StageOut)
	clear(e.Shared)
	return e
}

// RunDecompression executes a decompression routine functionally over the
// payload and returns the reconstructed line. It is the verification path
// used by tests and the functional path used by the GPU model (which adds
// per-instruction timing around the same Exec).
func RunDecompression(store *Store, c compress.Compressed) ([]byte, *Exec, error) {
	id, err := DecompRoutineID(c)
	if err != nil {
		return nil, nil, err
	}
	rt, ok := store.Get(id)
	if !ok {
		return nil, nil, fmt.Errorf("core: routine %d not preloaded", id)
	}
	e := NewAssistExec(rt)
	copy(e.StageIn, c.Data)
	if _, err := e.Run(100000); err != nil {
		return nil, e, err
	}
	if !e.Done {
		return nil, e, fmt.Errorf("core: %s did not complete", rt.Name)
	}
	return e.StageOut[:compress.LineSize], e, nil
}

// CompressionResult is the outcome of running the CABA compression pass.
type CompressionResult struct {
	State  compress.Compressed // AlgNone if the line did not compress
	Execs  []*Exec             // every routine invocation, in order
	Instrs uint64              // total warp instructions executed
}

// RunBDICompression executes the BDI compression pass the way the AWC
// drives it: the special zeros/repeat check first, then per-encoding test
// routines in BDICompTestOrder, stopping at the first success (the paper
// notes homogeneous applications usually succeed on the first try). The
// line is in raw; the returned state carries the assist-warp-produced
// payload.
func RunBDICompression(store *Store, raw []byte) (CompressionResult, error) {
	var res CompressionResult
	run := func(id RoutineID) (*Exec, error) {
		rt, ok := store.Get(id)
		if !ok {
			return nil, fmt.Errorf("core: routine %d not preloaded", id)
		}
		e := NewAssistExec(rt)
		copy(e.StageIn, raw)
		if _, err := e.Run(100000); err != nil {
			return e, err
		}
		res.Execs = append(res.Execs, e)
		res.Instrs += e.Executed
		return e, nil
	}
	// Zeros / repeated-value check.
	e, err := run(RtBDICompSpecial)
	if err != nil {
		return res, err
	}
	switch e.Result(ResultReg) {
	case 2:
		res.State = compress.Compressed{Alg: compress.AlgBDI, Enc: uint8(compress.BDIZeros),
			Data: append([]byte(nil), e.StageOut[:compress.BDIZeros.CompressedSize()]...)}
		return res, nil
	case 1:
		res.State = compress.Compressed{Alg: compress.AlgBDI, Enc: uint8(compress.BDIRepeat),
			Data: append([]byte(nil), e.StageOut[:compress.BDIRepeat.CompressedSize()]...)}
		return res, nil
	}
	// Per-encoding tests, cheapest first.
	for _, enc := range BDICompTestOrder {
		e, err := run(RtBDICompTest + RoutineID(enc))
		if err != nil {
			return res, err
		}
		if e.Result(ResultReg) == 1 {
			res.State = compress.Compressed{Alg: compress.AlgBDI, Enc: uint8(enc),
				Data: append([]byte(nil), e.StageOut[:enc.CompressedSize()]...)}
			return res, nil
		}
	}
	res.State = compress.Compressed{Alg: compress.AlgNone}
	return res, nil
}

// RunCompression dispatches the CABA compression pass for any supported
// algorithm over the raw line.
func RunCompression(store *Store, alg compress.AlgID, raw []byte) (CompressionResult, error) {
	switch alg {
	case compress.AlgBDI:
		return RunBDICompression(store, raw)
	case compress.AlgFPC, compress.AlgCPack:
		var res CompressionResult
		id, resAlg := RtFPCComp, compress.AlgFPC
		if alg == compress.AlgCPack {
			id, resAlg = RtCPackComp, compress.AlgCPack
		}
		rt, ok := store.Get(id)
		if !ok {
			return res, fmt.Errorf("core: routine %d not preloaded", id)
		}
		e := NewAssistExec(rt)
		copy(e.StageIn, raw)
		if _, err := e.Run(200000); err != nil {
			return res, err
		}
		res.Execs = append(res.Execs, e)
		res.Instrs = e.Executed
		if e.Result(ResultReg) == 1 {
			size := int(e.Result(SizeReg))
			res.State = compress.Compressed{Alg: resAlg, Enc: 0,
				Data: append([]byte(nil), e.StageOut[:size]...)}
		} else {
			res.State = compress.Compressed{Alg: compress.AlgNone}
		}
		return res, nil
	case compress.AlgBest:
		// BestOfAll: run every algorithm's pass, keep the smallest
		// (Section 6.3's idealized selection, paying every pass's cost).
		var best CompressionResult
		best.State = compress.Compressed{Alg: compress.AlgNone}
		for _, a := range [...]compress.AlgID{compress.AlgBDI, compress.AlgFPC, compress.AlgCPack} {
			r, err := RunCompression(store, a, raw)
			if err != nil {
				return best, err
			}
			best.Instrs += r.Instrs
			best.Execs = append(best.Execs, r.Execs...)
			if r.State.IsCompressed() &&
				(!best.State.IsCompressed() || r.State.Size() < best.State.Size()) {
				best.State = r.State
			}
		}
		return best, nil
	}
	return CompressionResult{}, fmt.Errorf("core: no compression routines for %v", alg)
}
