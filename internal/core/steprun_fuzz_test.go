package core

import (
	"math/bits"
	"math/rand"
	"testing"
)

// FuzzStepRun pins the macro-step≡per-step invariant of the block-batched
// issue engine (DESIGN.md §13): for random valid programs, executing a
// straightline run through one StepRun(n) call must leave the Exec in a
// state bit-identical to n successive Step calls — PC, active mask,
// registers, predicates, shared/staging memory, global memory, executed
// count — and must return exactly the thread-instruction credit the
// per-step path accumulates from each StepInfo.ExecMask. The run lengths
// batched here are chosen randomly within the predecoded RunLen table,
// exercising both full runs and partial prefixes (a window that
// truncates a run mid-way is the common case in the scheduler).
func FuzzStepRun(f *testing.F) {
	for s := int64(0); s < 8; s++ {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		prog := randomProgram(rng)
		runLen := prog.Decoded().RunLen

		mkExec := func() (*Exec, *fuzzMem) {
			e := NewExec(prog, 0xFFFFFFFF)
			e.Shared = make([]byte, 256)
			e.StageIn = make([]byte, 128)
			e.StageOut = make([]byte, 128)
			for i := range e.StageIn {
				e.StageIn[i] = byte(i * 7)
			}
			m := &fuzzMem{data: make(map[uint64]byte)}
			e.Mem = m
			return e, m
		}
		bat, batMem := mkExec() // macro-steps where runs allow
		ref, refMem := mkExec() // always one Step at a time

		for step := 0; step < 4096; step++ {
			if diff := diffExecState(bat, ref); diff != "" {
				t.Fatalf("seed %d step %d: %s", seed, step, diff)
			}
			pc := bat.PC
			if !bat.Done && !bat.AtBarrier && bat.Err == nil &&
				bat.Straightline() && pc < len(runLen) && runLen[pc] >= 2 {
				// Batch a random prefix of the run (1 < n <= RunLen).
				n := 2 + rng.Intn(int(runLen[pc])-1)
				var want uint64
				for j := 0; j < n; j++ {
					ri, rok := ref.Step()
					if !rok {
						t.Fatalf("seed %d step %d: reference refused inside a run (j=%d)", seed, step, j)
					}
					want += uint64(bits.OnesCount32(ri.ExecMask))
				}
				got, ok := bat.StepRun(n)
				if !ok {
					t.Fatalf("seed %d step %d: StepRun(%d) refused at pc %d", seed, step, n, pc)
				}
				if got != want {
					t.Fatalf("seed %d step %d: StepRun(%d) thread-instrs %d, per-step sum %d", seed, step, n, got, want)
				}
				continue
			}
			_, bok := bat.Step()
			_, rok := ref.Step()
			if bok != rok {
				t.Fatalf("seed %d step %d: batched stepped=%v reference stepped=%v", seed, step, bok, rok)
			}
			if !bok {
				if bat.AtBarrier && ref.AtBarrier {
					bat.ReleaseBarrier()
					ref.ReleaseBarrier()
					continue
				}
				break
			}
		}
		if diff := diffExecState(bat, ref); diff != "" {
			t.Fatalf("seed %d final: %s", seed, diff)
		}
		if diff := batMem.diff(refMem); diff != "" {
			t.Fatalf("seed %d final: global memory: %s", seed, diff)
		}
	})
}
