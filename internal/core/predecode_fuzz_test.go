package core

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/caba-sim/caba/internal/isa"
)

// FuzzPredecode pins the decoded≡interpreter invariant (DESIGN.md §12):
// for random valid programs built through the isa.Builder API, the
// predecoded superop engine and the per-instruction interpreter must
// agree instruction by instruction on every piece of observable state —
// PC, active mask, divergence outcome, registers, predicates, error
// strings, and the StepInfo fields the pipeline consumes (ExecMask,
// Width, IsGlobal, and the per-lane addresses of active lanes; inactive
// lanes' Addrs are unspecified by the StepRef contract and excluded).
func FuzzPredecode(f *testing.F) {
	for s := int64(0); s < 8; s++ {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		prog := randomProgram(rand.New(rand.NewSource(seed)))

		mkExec := func(interp bool) (*Exec, *fuzzMem) {
			e := NewExec(prog, 0xFFFFFFFF)
			e.Interp = interp
			e.Shared = make([]byte, 256)
			e.StageIn = make([]byte, 128)
			e.StageOut = make([]byte, 128)
			for i := range e.StageIn {
				e.StageIn[i] = byte(i * 7)
			}
			m := &fuzzMem{data: make(map[uint64]byte)}
			e.Mem = m
			return e, m
		}
		dec, decMem := mkExec(false)
		ref, refMem := mkExec(true)

		for step := 0; step < 4096; step++ {
			di, dok := dec.Step()
			ri, rok := ref.Step()
			if dok != rok {
				t.Fatalf("seed %d step %d: decoded stepped=%v interp stepped=%v", seed, step, dok, rok)
			}
			if !dok {
				// Both stopped: a barrier is released on both in lockstep
				// (single-warp CTA), anything else ends the program.
				if dec.AtBarrier && ref.AtBarrier {
					dec.ReleaseBarrier()
					ref.ReleaseBarrier()
					continue
				}
				break
			}
			if di.ExecMask != ri.ExecMask || di.Width != ri.Width || di.IsGlobal != ri.IsGlobal {
				t.Fatalf("seed %d step %d: StepInfo mismatch: decoded {mask %#x w %d g %v} interp {mask %#x w %d g %v}",
					seed, step, di.ExecMask, di.Width, di.IsGlobal, ri.ExecMask, ri.Width, ri.IsGlobal)
			}
			if di.IsGlobal {
				for lane := 0; lane < WarpSize; lane++ {
					if di.ExecMask&(1<<lane) != 0 && di.Addrs[lane] != ri.Addrs[lane] {
						t.Fatalf("seed %d step %d lane %d: addr %#x vs %#x", seed, step, lane, di.Addrs[lane], ri.Addrs[lane])
					}
				}
			}
			if diff := diffExecState(dec, ref); diff != "" {
				t.Fatalf("seed %d step %d: %s", seed, step, diff)
			}
		}
		if diff := diffExecState(dec, ref); diff != "" {
			t.Fatalf("seed %d final: %s", seed, diff)
		}
		if diff := decMem.diff(refMem); diff != "" {
			t.Fatalf("seed %d final: global memory: %s", seed, diff)
		}
	})
}

// diffExecState compares every piece of architectural state the two
// engines are required to keep identical, returning "" on a match.
func diffExecState(a, b *Exec) string {
	if a.PC != b.PC || a.Active != b.Active || a.Done != b.Done || a.AtBarrier != b.AtBarrier {
		return fmt.Sprintf("control state: decoded {pc %d active %#x done %v bar %v} interp {pc %d active %#x done %v bar %v}",
			a.PC, a.Active, a.Done, a.AtBarrier, b.PC, b.Active, b.Done, b.AtBarrier)
	}
	ae, be := "", ""
	if a.Err != nil {
		ae = a.Err.Error()
	}
	if b.Err != nil {
		be = b.Err.Error()
	}
	if ae != be {
		return fmt.Sprintf("error: decoded %q interp %q", ae, be)
	}
	if a.Executed != b.Executed {
		return fmt.Sprintf("executed count: %d vs %d", a.Executed, b.Executed)
	}
	for lane := 0; lane < WarpSize; lane++ {
		for r := 0; r < a.Prog.NumReg; r++ {
			if a.Reg(lane, r) != b.Reg(lane, r) {
				return fmt.Sprintf("lane %d r%d: %#x vs %#x", lane, r, a.Reg(lane, r), b.Reg(lane, r))
			}
		}
		if a.Preds[lane] != b.Preds[lane] {
			return fmt.Sprintf("lane %d preds: %v vs %v", lane, a.Preds[lane], b.Preds[lane])
		}
	}
	if len(a.Shared) > 0 || len(b.Shared) > 0 {
		if string(a.Shared) != string(b.Shared) {
			return "shared memory diverged"
		}
	}
	if string(a.StageOut) != string(b.StageOut) {
		return "staging output diverged"
	}
	return ""
}

// fuzzMem is a byte-granular functional memory; two instances fed the
// same store sequence hold identical contents.
type fuzzMem struct{ data map[uint64]byte }

func (m *fuzzMem) LoadGlobal(addr uint64, width uint8) uint64 {
	var v uint64
	for i := uint64(0); i < uint64(width); i++ {
		v |= uint64(m.data[addr+i]) << (8 * i)
	}
	return v
}

func (m *fuzzMem) StoreGlobal(addr, v uint64, width uint8) {
	for i := uint64(0); i < uint64(width); i++ {
		m.data[addr+i] = byte(v >> (8 * i))
	}
}

func (m *fuzzMem) AtomicAdd(addr, v uint64, width uint8) uint64 {
	old := m.LoadGlobal(addr, width)
	m.StoreGlobal(addr, old+v, width)
	return old
}

func (m *fuzzMem) diff(o *fuzzMem) string {
	for a, v := range m.data {
		if o.data[a] != v {
			return fmt.Sprintf("addr %#x: %#x vs %#x", a, v, o.data[a])
		}
	}
	for a, v := range o.data {
		if m.data[a] != v {
			return fmt.Sprintf("addr %#x: %#x vs %#x", a, m.data[a], v)
		}
	}
	return ""
}

// randomProgram builds a random valid program through the public Builder
// API: seeded registers and predicates, ALU/SFU/predicate/warp-wide ops
// (guarded and not), shared/stage/global memory traffic (including
// occasional deliberately out-of-range stage offsets, which must produce
// identical fail-fast errors in both engines), barriers, and nested
// forward branches so the SIMT stack diverges and reconverges.
func randomProgram(rng *rand.Rand) *isa.Program {
	const nRegs = 8
	b := isa.NewBuilder("fuzz-predecode")

	// Seed lanes with diverging values and predicates.
	for r := 0; r < nRegs; r++ {
		b.Mov(isa.R(r), isa.RegLane)
		b.MulI(isa.R(r), isa.R(r), int64(rng.Intn(77)+1))
		b.AddI(isa.R(r), isa.R(r), int64(rng.Intn(1<<12)))
	}
	for p := 0; p < isa.NumPredRegs; p++ {
		b.SetPI(isa.CmpLT, isa.P(p), isa.R(rng.Intn(nRegs)), int64(rng.Intn(2048)))
	}

	nChunks := rng.Intn(6) + 2
	for c := 0; c < nChunks; c++ {
		label := fmt.Sprintf("skip%d", c)
		branched := rng.Intn(3) != 0
		if branched {
			b.BraP(isa.P(rng.Intn(isa.NumPredRegs)), rng.Intn(2) == 0, label)
		}
		emitChunk(b, rng, nRegs)
		if branched {
			b.Label(label)
		}
	}
	// A tail chunk after the last reconvergence point.
	emitChunk(b, rng, nRegs)
	b.Exit()
	return b.MustBuild()
}

// emitChunk emits a straight-line run of random instructions.
func emitChunk(b *isa.Builder, rng *rand.Rand, nRegs int) {
	reg := func() isa.Reg { return isa.R(rng.Intn(nRegs)) }
	pred := func() isa.Pred { return isa.P(rng.Intn(isa.NumPredRegs)) }
	width := func() uint8 { return []uint8{1, 2, 4, 8}[rng.Intn(4)] }
	n := rng.Intn(12) + 3
	for i := 0; i < n; i++ {
		if rng.Intn(5) == 0 {
			b.WithGuard(pred(), rng.Intn(2) == 0)
		}
		switch rng.Intn(20) {
		case 0:
			b.Add(reg(), reg(), reg())
		case 1:
			b.Sub(reg(), reg(), reg())
		case 2:
			b.Mul(reg(), reg(), reg())
		case 3:
			b.Mad(reg(), reg(), reg(), reg())
		case 4:
			b.And(reg(), reg(), reg())
		case 5:
			b.Or(reg(), reg(), reg())
		case 6:
			b.Xor(reg(), reg(), reg())
		case 7:
			b.ShlI(reg(), reg(), int64(rng.Intn(63)))
		case 8:
			b.ShrI(reg(), reg(), int64(rng.Intn(63)))
		case 9:
			b.Min(reg(), reg(), reg())
		case 10:
			b.Sfu(reg(), reg())
		case 11:
			b.SetP(isa.CmpOp(rng.Intn(4)), pred(), reg(), reg())
		case 12:
			b.Sel(reg(), pred(), reg(), reg())
		case 13:
			b.VoteAll(pred(), pred())
		case 14:
			b.Ballot(reg(), pred())
		case 15:
			b.Shfl(reg(), reg(), reg())
		case 16:
			// Shared memory: mask the address into (mostly) valid range;
			// rare out-of-range offsets must fail identically.
			a := reg()
			b.AndI(a, a, 0xF8)
			if rng.Intn(2) == 0 {
				b.StShared(a, int64(rng.Intn(64)), reg(), width())
			} else {
				b.LdShared(reg(), a, int64(rng.Intn(64)), width())
			}
		case 17:
			a := reg()
			b.AndI(a, a, 0x78)
			if rng.Intn(2) == 0 {
				b.StStage(a, int64(rng.Intn(80)), reg(), width())
			} else {
				b.LdStage(reg(), a, int64(rng.Intn(80)), width())
			}
		case 18:
			if rng.Intn(2) == 0 {
				b.StGlobal(reg(), int64(rng.Intn(512)), reg(), width())
			} else {
				b.LdGlobal(reg(), reg(), int64(rng.Intn(512)), width())
			}
		case 19:
			if rng.Intn(3) == 0 {
				b.Bar()
			} else {
				b.AtomAdd(reg(), reg(), int64(rng.Intn(256)), reg(), width())
			}
		}
	}
}
