// Package faults is the seeded, deterministic fault-injection framework
// (the robustness layer the paper's Section 7 motivates: CABA generalizes
// to reliability work — redundant execution, memory-error checking — but a
// simulator can only exercise those paths if it can produce faults).
//
// Faults are injected at fixed sites in the memory system and the SM fill
// path: single-bit flips in compressed payloads on DRAM fill, corrupted
// metadata-cache entries, and dropped or delayed memory responses. Every
// decision is drawn from a per-site splitmix64 stream seeded from
// Config.Seed, and every injection site executes on the simulator's main
// goroutine (event delivery or the phase-B commit of the two-phase tick),
// so the decision sequence is a pure function of the seed and the
// simulated schedule: same seed + same config ⇒ bit-identical fault
// sites, recovery counters and final statistics at every Config.SMWorkers
// setting, preserving the PR 1/2 equivalence contracts. A zero-value
// Config disables injection entirely and leaves the simulator's behavior
// untouched.
package faults

import "fmt"

// Config selects a deterministic fault-injection campaign. All rates are
// probabilities in [0, 1]; the zero value injects nothing.
type Config struct {
	// Seed drives every injection decision. Runs with equal Seed and
	// rates produce bit-identical fault sites and statistics.
	Seed int64
	// BitFlipRate is the per-fill probability that a compressed line
	// arriving at an SM has one payload bit flipped (a DRAM or bus error
	// surviving into the decompression path).
	BitFlipRate float64
	// MDCorruptRate is the per-access probability that a metadata-cache
	// entry is corrupted. The channel's ECC detects it and refetches the
	// metadata from DRAM (one extra burst), so the fault costs bandwidth
	// but never propagates a wrong burst count.
	MDCorruptRate float64
	// ResponseDropRate is the per-response probability that a read
	// response is lost between the partition and the SM. Dropped
	// responses are unrecoverable at this layer: the waiting warp stalls
	// forever and the simulator's wedge detector converts the hang into
	// a structured error.
	ResponseDropRate float64
	// ResponseDelayRate is the per-response probability that a read
	// response is held for ResponseDelayCycles before delivery (a
	// transient link fault with retry, recovered transparently).
	ResponseDelayRate float64
	// ResponseDelayCycles is the hold time for delayed responses in core
	// cycles (0 selects the default of 500).
	ResponseDelayCycles int
}

// DefaultResponseDelay is the response hold time when
// Config.ResponseDelayCycles is zero.
const DefaultResponseDelay = 500

// Enabled reports whether any fault class has a non-zero rate.
func (c Config) Enabled() bool {
	return c.BitFlipRate > 0 || c.MDCorruptRate > 0 ||
		c.ResponseDropRate > 0 || c.ResponseDelayRate > 0
}

// Validate reports the first problem with the campaign parameters.
func (c Config) Validate() error {
	check := func(name string, v float64) error {
		if v < 0 || v > 1 {
			return fmt.Errorf("faults: %s %v out of [0,1]", name, v)
		}
		return nil
	}
	if err := check("BitFlipRate", c.BitFlipRate); err != nil {
		return err
	}
	if err := check("MDCorruptRate", c.MDCorruptRate); err != nil {
		return err
	}
	if err := check("ResponseDropRate", c.ResponseDropRate); err != nil {
		return err
	}
	if err := check("ResponseDelayRate", c.ResponseDelayRate); err != nil {
		return err
	}
	if c.ResponseDelayCycles < 0 {
		return fmt.Errorf("faults: ResponseDelayCycles must be non-negative")
	}
	return nil
}

// Site identifies one injection point. Each site draws from its own
// seeded stream so enabling one fault class never perturbs the decision
// sequence of another.
type Site uint8

// Injection sites.
const (
	SiteBitFlip Site = iota
	SiteMDCorrupt
	SiteRespDrop
	SiteRespDelay
	numSites
)

// Injector draws deterministic injection decisions. A nil *Injector is
// valid and never injects, so callers need no enabled-checks at the
// sites. Injector is not safe for concurrent use; all sites run on the
// simulator's main goroutine.
type Injector struct {
	cfg     Config
	streams [numSites]uint64
}

// New builds an injector for the campaign, or nil when the campaign is
// disabled (the nil injector short-circuits every site check).
func New(cfg Config) *Injector {
	if !cfg.Enabled() {
		return nil
	}
	inj := &Injector{cfg: cfg}
	for s := range inj.streams {
		// Distinct golden-ratio offsets decorrelate the per-site streams
		// even under adjacent seeds.
		inj.streams[s] = uint64(cfg.Seed) + uint64(s+1)*0x9E3779B97F4A7C15
	}
	return inj
}

// next advances site s's splitmix64 stream.
func (inj *Injector) next(s Site) uint64 {
	inj.streams[s] += 0x9E3779B97F4A7C15
	z := inj.streams[s]
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// roll draws one decision at the given rate from site s's stream.
func (inj *Injector) roll(s Site, rate float64) bool {
	if inj == nil || rate <= 0 {
		return false
	}
	return float64(inj.next(s)>>11)/(1<<53) < rate
}

// BitFlip decides whether the current compressed fill is corrupted.
func (inj *Injector) BitFlip() bool {
	if inj == nil {
		return false
	}
	return inj.roll(SiteBitFlip, inj.cfg.BitFlipRate)
}

// Corrupt returns a copy of data with one deterministically chosen bit
// flipped. The original is never modified: the corruption models a bad
// transfer, not damage to the stored (backing) copy.
func (inj *Injector) Corrupt(data []byte) []byte {
	out := append([]byte(nil), data...)
	if len(out) == 0 {
		return out
	}
	bit := inj.next(SiteBitFlip) % uint64(len(out)*8)
	out[bit/8] ^= 1 << (bit % 8)
	return out
}

// MDCorrupt decides whether the current metadata-cache access hits a
// corrupted entry.
func (inj *Injector) MDCorrupt() bool {
	if inj == nil {
		return false
	}
	return inj.roll(SiteMDCorrupt, inj.cfg.MDCorruptRate)
}

// RespDrop decides whether the current read response is lost.
func (inj *Injector) RespDrop() bool {
	if inj == nil {
		return false
	}
	return inj.roll(SiteRespDrop, inj.cfg.ResponseDropRate)
}

// SaveStreams returns the per-site stream positions for checkpointing.
// Nil injectors return nil (a disabled campaign has no stream state).
func (inj *Injector) SaveStreams() []uint64 {
	if inj == nil {
		return nil
	}
	out := make([]uint64, numSites)
	copy(out, inj.streams[:])
	return out
}

// LoadStreams restores stream positions previously captured by
// SaveStreams. The site count is part of the snapshot format: a mismatch
// means the blob came from an incompatible build.
func (inj *Injector) LoadStreams(s []uint64) error {
	if inj == nil {
		if len(s) != 0 {
			return fmt.Errorf("faults: snapshot has %d fault streams but injection is disabled", len(s))
		}
		return nil
	}
	if len(s) != int(numSites) {
		return fmt.Errorf("faults: snapshot has %d fault streams, want %d", len(s), numSites)
	}
	copy(inj.streams[:], s)
	return nil
}

// RespDelay decides whether the current read response is held, returning
// the hold time in core cycles.
func (inj *Injector) RespDelay() (cycles int, delayed bool) {
	if inj == nil {
		return 0, false
	}
	if !inj.roll(SiteRespDelay, inj.cfg.ResponseDelayRate) {
		return 0, false
	}
	d := inj.cfg.ResponseDelayCycles
	if d <= 0 {
		d = DefaultResponseDelay
	}
	return d, true
}
