package faults

import "testing"

func TestNilInjectorNeverInjects(t *testing.T) {
	var inj *Injector
	if inj != New(Config{}) {
		t.Fatal("disabled config must yield a nil injector")
	}
	if inj.BitFlip() || inj.MDCorrupt() || inj.RespDrop() {
		t.Fatal("nil injector injected")
	}
	if _, ok := inj.RespDelay(); ok {
		t.Fatal("nil injector delayed")
	}
}

func TestDeterministicDecisionSequence(t *testing.T) {
	cfg := Config{Seed: 42, BitFlipRate: 0.3, MDCorruptRate: 0.1,
		ResponseDropRate: 0.05, ResponseDelayRate: 0.2}
	a, b := New(cfg), New(cfg)
	for i := 0; i < 10_000; i++ {
		if a.BitFlip() != b.BitFlip() {
			t.Fatalf("BitFlip diverged at draw %d", i)
		}
		if a.MDCorrupt() != b.MDCorrupt() {
			t.Fatalf("MDCorrupt diverged at draw %d", i)
		}
		if a.RespDrop() != b.RespDrop() {
			t.Fatalf("RespDrop diverged at draw %d", i)
		}
		da, oka := a.RespDelay()
		db, okb := b.RespDelay()
		if oka != okb || da != db {
			t.Fatalf("RespDelay diverged at draw %d", i)
		}
	}
}

func TestSiteStreamsIndependent(t *testing.T) {
	// Drawing from one site must not perturb another site's sequence.
	cfg := Config{Seed: 7, BitFlipRate: 0.5, MDCorruptRate: 0.5}
	a, b := New(cfg), New(cfg)
	var seqA, seqB []bool
	for i := 0; i < 1000; i++ {
		seqA = append(seqA, a.BitFlip())
	}
	for i := 0; i < 1000; i++ {
		b.MDCorrupt() // interleave draws from the other site
		seqB = append(seqB, b.BitFlip())
	}
	for i := range seqA {
		if seqA[i] != seqB[i] {
			t.Fatalf("BitFlip stream perturbed by MDCorrupt draws at %d", i)
		}
	}
}

func TestRateExtremes(t *testing.T) {
	always := New(Config{Seed: 1, ResponseDropRate: 1})
	never := New(Config{Seed: 1, ResponseDropRate: 1}) // other rates zero
	for i := 0; i < 1000; i++ {
		if !always.RespDrop() {
			t.Fatal("rate 1 must always inject")
		}
		if never.BitFlip() || never.MDCorrupt() {
			t.Fatal("rate 0 must never inject")
		}
	}
}

func TestCorruptFlipsExactlyOneBit(t *testing.T) {
	inj := New(Config{Seed: 3, BitFlipRate: 1})
	orig := make([]byte, 37)
	for i := range orig {
		orig[i] = byte(i * 17)
	}
	out := inj.Corrupt(orig)
	if len(out) != len(orig) {
		t.Fatalf("length changed: %d != %d", len(out), len(orig))
	}
	diff := 0
	for i := range orig {
		x := orig[i] ^ out[i]
		for ; x != 0; x &= x - 1 {
			diff++
		}
		if orig[i] != byte(i*17) {
			t.Fatal("Corrupt modified its input")
		}
	}
	if diff != 1 {
		t.Fatalf("flipped %d bits, want exactly 1", diff)
	}
	if got := inj.Corrupt(nil); len(got) != 0 {
		t.Fatal("empty input must stay empty")
	}
}

func TestValidate(t *testing.T) {
	good := Config{Seed: 1, BitFlipRate: 0.5, ResponseDelayCycles: 10}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []Config{
		{BitFlipRate: -0.1},
		{MDCorruptRate: 1.5},
		{ResponseDropRate: 2},
		{ResponseDelayRate: -1},
		{ResponseDelayCycles: -5},
	} {
		if err := bad.Validate(); err == nil {
			t.Fatalf("%+v: expected validation error", bad)
		}
	}
	if (Config{}).Enabled() {
		t.Fatal("zero config must be disabled")
	}
	if !(Config{ResponseDelayRate: 0.1}).Enabled() {
		t.Fatal("non-zero rate must enable")
	}
}
