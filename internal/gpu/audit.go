package gpu

import (
	"fmt"
	"sort"

	"github.com/caba-sim/caba/internal/audit"
)

// Runtime invariant auditor and crash flight recorder.
//
// The auditor (Config.AuditEvery) walks the machine's bookkeeping at
// cycle boundaries — writeback-ring conservation, scoreboard/in-flight
// consistency, SIMT stack bounds, MSHR waiter balance, store-buffer
// bounds — and fails fast with an *audit.Violation naming the invariant,
// cycle and SM, instead of letting corrupted state surface thousands of
// cycles later as a wedge or silently wrong statistics.
//
// The flight recorder (Config.FlightRecorderDepth) keeps a bounded ring
// of recent notable events per SM plus one simulator-level ring. Phase-A
// workers only ever touch their own SM's ring, so recording needs no
// synchronization; wedges and violations attach the merged trail.

// flightRing is one bounded event ring. A nil ring records nothing, so
// the zero-depth configuration costs one nil check per hook.
type flightRing struct {
	recs []audit.Record
	pos  int
	n    int
}

func newFlightRing(depth int) *flightRing {
	if depth <= 0 {
		return nil
	}
	return &flightRing{recs: make([]audit.Record, depth)}
}

func (fr *flightRing) add(rec audit.Record) {
	fr.recs[fr.pos] = rec
	fr.pos = (fr.pos + 1) % len(fr.recs)
	if fr.n < len(fr.recs) {
		fr.n++
	}
}

func (fr *flightRing) dump() []audit.Record {
	if fr == nil {
		return nil
	}
	out := make([]audit.Record, 0, fr.n)
	start := fr.pos - fr.n
	if start < 0 {
		start += len(fr.recs)
	}
	for i := 0; i < fr.n; i++ {
		out = append(out, fr.recs[(start+i)%len(fr.recs)])
	}
	return out
}

// record adds an SM-level event (safe from phase-A workers: each SM owns
// its ring).
func (sm *SM) record(event string, ln uint64) {
	if sm.fr == nil {
		return
	}
	sm.fr.add(audit.Record{Cycle: sm.cycle, SM: sm.id, Event: event, Line: ln})
}

// record adds a simulator-level event (main goroutine only).
func (sim *Simulator) record(event string, ln uint64) {
	if sim.frSim == nil {
		return
	}
	sim.frSim.add(audit.Record{Cycle: sim.cycle, SM: -1, Event: event, Line: ln})
}

// FlightRecord returns the merged recent-event trail across all rings in
// chronological order, or nil when the recorder is disabled. Call it only
// between cycles (no phase-A tick in flight).
func (sim *Simulator) FlightRecord() []audit.Record {
	var out []audit.Record
	out = append(out, sim.frSim.dump()...)
	for _, sm := range sim.sms {
		out = append(out, sm.fr.dump()...)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Cycle != out[j].Cycle {
			return out[i].Cycle < out[j].Cycle
		}
		return out[i].SM < out[j].SM
	})
	return out
}

// violation builds a structured invariant failure with the flight trail
// attached.
func (sim *Simulator) violation(inv string, smID int, format string, args ...any) error {
	return &audit.Violation{
		Invariant: inv,
		Cycle:     sim.cycle,
		SM:        smID,
		Detail:    fmt.Sprintf(format, args...),
		Records:   sim.FlightRecord(),
	}
}

// Audit checks the simulator's internal invariants at a cycle boundary
// and returns an *audit.Violation describing the first failure. Run
// schedules it every Config.AuditEvery cycles; tests and postmortems may
// call it directly between Run invocations. It never mutates state.
func (sim *Simulator) Audit() error {
	if err := sim.Sys.Audit(); err != nil {
		return sim.violation("mem-mshr", -1, "%v", err)
	}
	progLen := len(sim.Kernel.Prog.Code)
	for _, sm := range sim.sms {
		// Writeback-ring conservation: the pending counter that gates
		// drain detection must equal the recorded writebacks.
		n := 0
		for i := range sm.wbRing {
			n += len(sm.wbRing[i])
		}
		if n != sm.wbPending {
			return sim.violation("wb-ring-conservation", sm.id,
				"%d writebacks in ring buckets but wbPending=%d", n, sm.wbPending)
		}
		for _, wp := range sm.warps {
			if !wp.valid {
				continue
			}
			if wp.inFlight < 0 || wp.pendingLoads < 0 {
				return sim.violation("warp-counters", sm.id,
					"warp %d: inFlight=%d pendingLoads=%d", wp.id, wp.inFlight, wp.pendingLoads)
			}
			// Scoreboard/in-flight consistency: every pending register is
			// owed to an in-flight instruction, so a drained warp with a
			// non-empty scoreboard is permanently stalled (a leak).
			if wp.inFlight == 0 && !wp.sb.Empty() {
				return sim.violation("scoreboard-leak", sm.id,
					"warp %d: scoreboard has pending registers with no in-flight instructions", wp.id)
			}
			// SIMT divergence stacks are bounded by program structure;
			// unbounded growth means reconvergence is broken.
			if d := wp.exec.StackDepth(); d > 2*progLen+4 {
				return sim.violation("simt-stack-depth", sm.id,
					"warp %d: divergence stack depth %d exceeds bound %d", wp.id, d, 2*progLen+4)
			}
		}
		// MSHR waiter balance: every allocated line must have waiters, and
		// every load waiter must still expect at least one line — a waiter
		// owed zero lines can never be completed or freed (a leak).
		for _, ln := range sm.mshr.Lines() {
			ws := sm.mshr.Waiters(ln)
			if len(ws) == 0 {
				return sim.violation("mshr-waiters", sm.id,
					"line %#x allocated with no waiters", ln)
			}
			for _, wt := range ws {
				if q, ok := wt.(*loadReq); ok && q != nil && q.linesPending <= 0 {
					return sim.violation("mshr-waiters", sm.id,
						"line %#x: load waiter expects %d lines", ln, q.linesPending)
				}
			}
		}
		if len(sm.storeBuf) > storeBufCap {
			return sim.violation("storebuf-bound", sm.id,
				"%d buffered stores exceed capacity %d", len(sm.storeBuf), storeBufCap)
		}
		for _, se := range sm.storeBuf {
			if se.released {
				return sim.violation("storebuf-released", sm.id,
					"line %#x still buffered after release", se.lineAddr)
			}
		}
		for _, cta := range sm.ctas {
			if cta.liveWarps < 0 || cta.atBarrier < 0 || cta.atBarrier > cta.liveWarps {
				return sim.violation("cta-barrier", sm.id,
					"CTA %d: atBarrier=%d liveWarps=%d", cta.id, cta.atBarrier, cta.liveWarps)
			}
		}
	}
	return nil
}
