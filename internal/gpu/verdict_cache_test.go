package gpu

import (
	"reflect"
	"testing"
)

// TestVerdictCachesAcrossSnapshot is the scheduler verdict caches'
// snapshot contract, pinned directly rather than only through whole-run
// equivalence: a mid-run LoadState resets every warp's depStalled/idle
// verdict to the conservative false (the caches are pure — recomputed on
// the next scheduler probe, never serialized), the verdicts the resumed
// run rebuilds are always consistent with architected state (depStalled
// only while the scoreboard conflicts with the current instruction, idle
// only while there is no current instruction), and the resumed run —
// with the batch-issue window engine on or off, independent of the
// donor's setting — finishes bit-identical to the uninterrupted run.
func TestVerdictCachesAcrossSnapshot(t *testing.T) {
	const maxCycles = 20_000_000
	c := snapMatrixCase{name: "w1-ff-clean", workers: 1, ff: true}

	straight := newSnapSim(t, c, true)
	if err := straight.Run(maxCycles); err != nil {
		t.Fatal(err)
	}
	total := straight.Cycles()
	if total == 0 {
		t.Fatal("straight run recorded no cycles")
	}

	// Capture one blob near the middle of the run, where warps hold a
	// mix of live verdicts (dep-stalled on in-flight results, idle at
	// barriers or done).
	donor := newSnapSim(t, c, true)
	donor.Cfg.CheckpointEvery = total / 2
	var blob []byte
	var at uint64
	donor.OnCheckpoint = func(cycle uint64, b []byte) error {
		if blob == nil {
			blob = append([]byte(nil), b...)
			at = cycle
		}
		return nil
	}
	if err := donor.Run(maxCycles); err != nil {
		t.Fatal(err)
	}
	if blob == nil {
		t.Fatal("no checkpoint captured")
	}

	for _, batch := range []bool{true, false} {
		resumed := newSnapSim(t, c, false)
		resumed.Cfg.BatchIssue = batch
		if err := resumed.LoadState(blob); err != nil {
			t.Fatalf("BatchIssue=%v: restore at cycle %d: %v", batch, at, err)
		}
		// Conservative-reset contract: no verdict survives the load.
		for _, sm := range resumed.sms {
			for _, w := range sm.warps {
				if w.valid && (w.depStalled || w.idle) {
					t.Fatalf("BatchIssue=%v: warp %d/%d holds a verdict (dep=%v idle=%v) straight out of LoadState",
						batch, sm.id, w.id, w.depStalled, w.idle)
				}
			}
		}
		// Rebuilt-verdict consistency, audited at every checkpoint
		// boundary of the resumed run: a cached true verdict must match
		// what a fresh probe of architected state would conclude.
		audited := 0
		resumed.Cfg.CheckpointEvery = total / 16
		if resumed.Cfg.CheckpointEvery == 0 {
			resumed.Cfg.CheckpointEvery = 1
		}
		resumed.OnCheckpoint = func(cycle uint64, b []byte) error {
			for _, sm := range resumed.sms {
				for _, w := range sm.warps {
					if !w.valid {
						continue
					}
					if w.depStalled {
						audited++
						in := w.exec.CurrentSop()
						if in == nil || !w.sb.ConflictsSop(in) {
							t.Errorf("BatchIssue=%v cycle %d: warp %d/%d depStalled with no scoreboard conflict",
								batch, cycle, sm.id, w.id)
						}
					}
					if w.idle {
						audited++
						if w.exec.CurrentSop() != nil {
							t.Errorf("BatchIssue=%v cycle %d: warp %d/%d idle with a current instruction",
								batch, cycle, sm.id, w.id)
						}
					}
				}
			}
			return nil
		}
		if err := resumed.Run(maxCycles); err != nil {
			t.Fatalf("BatchIssue=%v: resume at cycle %d: %v", batch, at, err)
		}
		if audited == 0 {
			t.Errorf("BatchIssue=%v: audit hook saw no live verdicts (test lost its teeth)", batch)
		}
		if resumed.Cycles() != total {
			t.Errorf("BatchIssue=%v: finished at cycle %d, straight run at %d", batch, resumed.Cycles(), total)
		}
		if !reflect.DeepEqual(straight.S, resumed.S) {
			t.Errorf("BatchIssue=%v: stats diverged from the uninterrupted run", batch)
		}
		if outChecksum(straight) != outChecksum(resumed) {
			t.Errorf("BatchIssue=%v: output memory diverged", batch)
		}
	}
}
