package gpu

import (
	"fmt"

	"github.com/caba-sim/caba/internal/audit"
)

// WedgeError is Run's structured report of a hung simulation: warps (or
// the final memory drain) that can never make progress again, detected by
// the wedge counter or the mid-run deadlock scan. Under fault injection a
// wedge is the expected terminal outcome of a dropped response — callers
// match it with errors.As to classify the run (the sweep runner treats
// wedges as deterministic outcomes and never retries them).
type WedgeError struct {
	// Cycle is when the wedge was detected (for the drain detector, after
	// the full wedge-limit budget of idle cycles).
	Cycle uint64
	// Dropped is the number of memory responses dropped by fault
	// injection at detection time; zero for the drain-phase detector.
	Dropped uint64
	// Drain marks a wedge during the final memory drain (no runnable
	// warps left) rather than a mid-run warp deadlock.
	Drain bool
	// Trail is the flight-recorder trail at detection, when enabled.
	Trail []audit.Record
}

// Error keeps the exact legacy message text for both wedge classes.
func (e *WedgeError) Error() string {
	if e.Drain {
		return fmt.Sprintf("gpu: wedged waiting for memory drain at cycle %d", e.Cycle)
	}
	return fmt.Sprintf(
		"gpu: wedged at cycle %d: %d memory responses dropped by fault injection, warps stalled forever",
		e.Cycle, e.Dropped)
}
