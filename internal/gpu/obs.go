package gpu

// Observability glue: the metrics sampler, per-warp stall attribution,
// and trace-span recording for the simulator. Everything here is a pure
// observer — nil-gated at every call site, reading machine state without
// mutating it — so the simulated statistics are bit-identical whether
// the knobs are on or off, at every SMWorkers setting, with or without
// fast-forward, and across snapshot/restore.

import (
	"fmt"

	"github.com/caba-sim/caba/internal/core"
	"github.com/caba-sim/caba/internal/obs"
	"github.com/caba-sim/caba/internal/snapshot"
	"github.com/caba-sim/caba/internal/stats"
)

// Trace track-id namespaces within an SM's shard: warp-lifetime spans
// use the warp slot index directly; assist-warp and MSHR spans get
// free-list-allocated tracks in disjoint ranges so per-track begin/end
// pairs never interleave.
const (
	trackAWBase   = 1000
	trackMSHRBase = 2000
)

// classify maps a slot's accumulated hazard flags to Figure 1's stall
// kind. The precedence — Memory over Compute over DataDep over Idle — is
// deliberate and load-bearing: a slot that saw both a memory-blocked and
// a scoreboard-blocked candidate counts as a memory stall, matching the
// paper's taxonomy (the memory system is the resource whose recovery
// would have let the slot issue soonest). issueSlot and quiescent both
// classify through this single function, and the per-warp stall
// attribution charges along the same precedence, so attribution totals
// always reconcile exactly with the IssueSlots counters.
func classify(f *slotFlags) stats.StallKind {
	switch {
	case f.memS:
		return stats.MemoryStall
	case f.compS:
		return stats.ComputeStall
	case f.dep:
		return stats.DataDepStall
	default:
		return stats.IdleCycle
	}
}

// initBlame arms a slotFlags for attribution: blamed-warp fields start
// at -1 (unset) so the first flagged candidate in scheduler visit order
// wins deterministically.
func (f *slotFlags) initBlame() {
	f.blame = true
	f.depW, f.memW, f.compW = -1, -1, -1
	f.barW, f.drainW, f.idleAW = -1, -1, -1
}

// blameFor resolves which (warp, cause) pair an unissued slot of the
// given classification is charged to. For stall kinds it is the first
// candidate that raised the classified flag; for idle slots the
// precedence is barrier > drain > blocked low-priority assist > empty
// SM (charged to the SM row as warp -1).
func blameFor(kind stats.StallKind, f *slotFlags) (int, obs.Cause) {
	switch kind {
	case stats.MemoryStall:
		return f.memW, f.memC
	case stats.ComputeStall:
		return f.compW, f.compC
	case stats.DataDepStall:
		return f.depW, f.depC
	default:
		switch {
		case f.barW >= 0:
			return f.barW, obs.CauseBarrier
		case f.drainW >= 0:
			return f.drainW, obs.CauseDrain
		case f.idleAW >= 0:
			return f.idleAW, obs.CauseAssist
		default:
			return -1, obs.CauseEmpty
		}
	}
}

// chargeSlot charges one unissued issue slot to exactly one (warp,
// cause) pair, derived from the slot's final classification so the
// attribution tables sum exactly to the non-Active IssueSlots counters.
func (sm *SM) chargeSlot(kind stats.StallKind, f *slotFlags) {
	w, c := blameFor(kind, f)
	sm.attr.Charge(w, c, 1)
}

// noteIdleWarp records a valid warp with no current instruction for idle
// blame: parked at a barrier, or drained (done, CTA not yet retired).
func (f *slotFlags) noteIdleWarp(w *warpCtx) {
	if w.exec.AtBarrier {
		if f.barW < 0 {
			f.barW = w.id
		}
	} else if f.drainW < 0 {
		f.drainW = w.id
	}
}

// noteAssist records a blocked high-priority assist warp for blame. The
// charge lands on the assist's host warp slot as CauseAssist, filed
// under whichever stall flag the assist's hazard raised so it stays
// consistent with the slot's final classification.
func (f *slotFlags) noteAssist(warp int, dep, memS, compS bool) {
	switch {
	case memS && f.memW < 0:
		f.memW, f.memC = warp, obs.CauseAssist
	case compS && f.compW < 0:
		f.compW, f.compC = warp, obs.CauseAssist
	case dep && f.depW < 0:
		f.depW, f.depC = warp, obs.CauseAssist
	}
}

// --- Trace-span recording (all methods assume sm.tr != nil) ---

// traceWarpBegin opens the lifetime span of a warp just placed by
// placeCTA; the track is the warp's slot index.
func (sm *SM) traceWarpBegin(w *warpCtx, ctaID int) {
	sm.tr.Begin(sm.cycle, w.id, fmt.Sprintf("cta %d", ctaID), "warp")
}

// traceWarpEnd closes a warp's lifetime span when its CTA retires.
func (sm *SM) traceWarpEnd(w *warpCtx) {
	sm.tr.End(sm.cycle, w.id)
}

// traceAssistBegin opens an assist warp's spawn→complete span. cat keys
// the trigger kind ("fill-decompress", "writeback-compress",
// "ecc-check") so the timeline separates the high-priority fill path
// from the idle-cycle compression path.
func (sm *SM) traceAssistBegin(e *core.Entry, cat string) {
	tid := sm.trAWNext
	if n := len(sm.trAWFree); n > 0 {
		tid = sm.trAWFree[n-1]
		sm.trAWFree = sm.trAWFree[:n-1]
	} else {
		sm.trAWNext++
		sm.tr.ThreadName(trackAWBase+tid, fmt.Sprintf("assist %d", tid))
	}
	sm.trAW[e] = tid
	sm.tr.Begin(sm.cycle, trackAWBase+tid, e.Routine.Name, cat)
}

// traceAssistEnd closes an assist warp's span at retirement and recycles
// its track.
func (sm *SM) traceAssistEnd(e *core.Entry) {
	tid, ok := sm.trAW[e]
	if !ok {
		return
	}
	delete(sm.trAW, e)
	sm.trAWFree = append(sm.trAWFree, tid)
	sm.tr.End(sm.cycle, trackAWBase+tid)
}

// traceMSHRBegin opens an allocate→fill span for a line that just took a
// primary MSHR entry.
func (sm *SM) traceMSHRBegin(ln uint64) {
	if _, dup := sm.trMSHR[ln]; dup {
		return
	}
	tid := sm.trMSHRNext
	if n := len(sm.trMSHRFree); n > 0 {
		tid = sm.trMSHRFree[n-1]
		sm.trMSHRFree = sm.trMSHRFree[:n-1]
	} else {
		sm.trMSHRNext++
		sm.tr.ThreadName(trackMSHRBase+tid, fmt.Sprintf("mshr %d", tid))
	}
	sm.trMSHR[ln] = tid
	sm.tr.Begin(sm.cycle, trackMSHRBase+tid, "miss", "mshr")
}

// traceMSHREnd closes a line's allocate→fill span when the fill installs
// it.
func (sm *SM) traceMSHREnd(ln uint64) {
	tid, ok := sm.trMSHR[ln]
	if !ok {
		return
	}
	delete(sm.trMSHR, ln)
	sm.trMSHRFree = append(sm.trMSHRFree, tid)
	sm.tr.End(sm.cycle, trackMSHRBase+tid)
}

// assistTraceCat derives the trace category for an AWT entry from its
// routine — used when re-opening spans after a snapshot restore, where
// the original trigger site is gone.
func assistTraceCat(rt *core.Routine) string {
	switch {
	case rt.ID == core.RtECCCheck:
		return "ecc-check"
	case rt.ID == core.RtPrefetch:
		return "prefetch"
	case rt.ID == core.RtMemoProbe:
		return "memo-probe"
	case rt.ID == core.RtMemoSave:
		return "memo-update"
	case rt.Priority == core.PriHigh:
		return "fill-decompress"
	default:
		return "writeback-compress"
	}
}

// --- Metrics sampler ---

// obsTotals is a cumulative snapshot of the counters the sampler
// windows over. Totals fold sim.S (which holds memory-side counters and
// fast-forward bulk credits) with every per-SM shard, so they are exact
// in all engine modes.
type obsTotals struct {
	instrs   uint64
	issue    [stats.NumStallKinds]uint64
	l1h, l1m uint64
	l2h, l2m uint64
	dramBusy uint64
}

// sampler drives the metrics time-series: it closes a window every
// `every` cycles (on the main goroutine, after the phase-B commit) and
// appends one Sample of windowed rates and instantaneous gauges. prev
// carries the previous boundary's totals; next is the next boundary
// cycle. All fields serialize into snapshots so a resumed run emits the
// identical series.
type sampler struct {
	every     uint64
	next      uint64
	prevCycle uint64
	prev      obsTotals
	series    obs.Series
}

// gather folds the current cumulative counters. extraTicks synthesizes a
// mid-skip boundary during fast-forward: each SM is credited with
// extraTicks × schedulers slots of its cached quiescent classification —
// exactly what per-cycle ticking would have accumulated by then, since a
// skip window is a proven accounting no-op.
func (sim *Simulator) gather(extraTicks uint64) obsTotals {
	t := obsTotals{
		instrs:   sim.S.ThreadInstrs,
		issue:    sim.S.IssueSlots,
		l1h:      sim.S.L1Hits,
		l1m:      sim.S.L1Misses,
		l2h:      sim.S.L2Hits,
		l2m:      sim.S.L2Misses,
		dramBusy: sim.S.DRAMBusyCycles,
	}
	sched := uint64(sim.Cfg.NumSchedulers)
	for i, sm := range sim.sms {
		t.instrs += sm.stat.ThreadInstrs
		for k := range t.issue {
			t.issue[k] += sm.stat.IssueSlots[k]
		}
		t.l1h += sm.stat.L1Hits
		t.l1m += sm.stat.L1Misses
		if extraTicks > 0 {
			t.issue[sim.ffKinds[i]] += extraTicks * sched
		}
	}
	return t
}

// sample closes the window ending at cycle boundary t and appends the
// row. extraTicks is non-zero only for boundaries synthesized inside a
// fast-forward skip (see gather).
func (sim *Simulator) sample(t, extraTicks uint64) {
	smp := sim.smp
	cur := sim.gather(extraTicks)
	dc := t - smp.prevCycle
	row := obs.Sample{Cycle: t}
	if dc > 0 {
		row.IPC = float64(cur.instrs-smp.prev.instrs) / float64(dc)
		slots := float64(dc) * float64(sim.Cfg.NumSchedulers) * float64(len(sim.sms))
		row.IssueActive = float64(cur.issue[stats.Active]-smp.prev.issue[stats.Active]) / slots
		row.IssueComp = float64(cur.issue[stats.ComputeStall]-smp.prev.issue[stats.ComputeStall]) / slots
		row.IssueMem = float64(cur.issue[stats.MemoryStall]-smp.prev.issue[stats.MemoryStall]) / slots
		row.IssueDep = float64(cur.issue[stats.DataDepStall]-smp.prev.issue[stats.DataDepStall]) / slots
		row.IssueIdle = float64(cur.issue[stats.IdleCycle]-smp.prev.issue[stats.IdleCycle]) / slots
		if h, m := cur.l1h-smp.prev.l1h, cur.l1m-smp.prev.l1m; h+m > 0 {
			row.L1HitRate = float64(h) / float64(h+m)
		}
		if h, m := cur.l2h-smp.prev.l2h, cur.l2m-smp.prev.l2m; h+m > 0 {
			row.L2HitRate = float64(h) / float64(h+m)
		}
		// Window data-bus capacity in burst slots: elapsed core cycles ×
		// clock ratio × channels (the same identity FinishStats uses for
		// the whole run).
		cap := float64(dc) * sim.Cfg.MemCyclesPerCoreCycle() * float64(sim.Cfg.NumChannels)
		if cap > 0 {
			row.DRAMBusy = float64(cur.dramBusy-smp.prev.dramBusy) / cap
		}
	}
	var mshrOut, awOut int
	for _, sm := range sim.sms {
		mshrOut += sm.mshr.Outstanding()
		awOut += len(sm.awc.Entries())
	}
	if d := len(sim.sms) * sim.Cfg.L1MSHRs; d > 0 {
		row.MSHROcc = float64(mshrOut) / float64(d)
	}
	if d := len(sim.sms) * sim.awtEntries; d > 0 {
		row.AWOcc = float64(awOut) / float64(d)
	}
	if sim.S.Ratio.Lines > 0 {
		row.CompRatio = sim.S.Ratio.Value()
	}
	smp.series.Append(row)
	smp.prev, smp.prevCycle = cur, t
	smp.next = t + smp.every
}

// sampleSkip synthesizes the samples for every boundary a fast-forward
// skip will cross. Called with sim.cycle still at the skip start,
// before creditSkip: inside the window no event fires and every SM's
// per-tick contribution is its cached quiescent classification, so the
// boundary-t totals are the pre-skip totals plus (t − skipStart) ticks
// of linear credit — bit-identical to the rows per-cycle ticking would
// have recorded.
func (sim *Simulator) sampleSkip(wake uint64) {
	for t := sim.smp.next; t <= wake; t += sim.smp.every {
		sim.sample(t, t-sim.cycle)
	}
}

// save serializes the sampler state (cadence cursor, previous-boundary
// totals, recorded rows) into a snapshot payload.
func (smp *sampler) save(w *snapshot.Writer) {
	w.U64(smp.next)
	w.U64(smp.prevCycle)
	w.U64(smp.prev.instrs)
	for _, v := range smp.prev.issue {
		w.U64(v)
	}
	w.U64(smp.prev.l1h)
	w.U64(smp.prev.l1m)
	w.U64(smp.prev.l2h)
	w.U64(smp.prev.l2m)
	w.U64(smp.prev.dramBusy)
	smp.series.Save(w)
}

// load restores sampler state saved by save.
func (smp *sampler) load(r *snapshot.Reader) error {
	smp.next = r.U64()
	smp.prevCycle = r.U64()
	smp.prev.instrs = r.U64()
	for k := range smp.prev.issue {
		smp.prev.issue[k] = r.U64()
	}
	smp.prev.l1h = r.U64()
	smp.prev.l1m = r.U64()
	smp.prev.l2h = r.U64()
	smp.prev.l2m = r.U64()
	smp.prev.dramBusy = r.U64()
	if err := r.Err(); err != nil {
		return err
	}
	return smp.series.Load(r)
}

// --- Wiring and accessors ---

// wireObs builds the enabled observability sinks for a freshly
// constructed simulator: the sampler, the per-SM attribution tables, and
// the trace with its per-SM shards and track labels.
func (sim *Simulator) wireObs() {
	cfg := sim.Cfg
	if cfg.SampleEvery > 0 {
		sim.smp = &sampler{every: cfg.SampleEvery, next: cfg.SampleEvery}
	}
	if cfg.AttributeStalls {
		for _, sm := range sim.sms {
			sm.attr = obs.NewAttr(cfg.MaxWarpsPerSM)
		}
	}
	if cfg.TraceFile != "" {
		sim.tr = obs.NewTrace(cfg.NumSMs)
		for i, sm := range sim.sms {
			sm.tr = sim.tr.SM(i)
			sm.trAW = make(map[*core.Entry]int)
			sm.trMSHR = make(map[uint64]int)
			for w := 0; w < cfg.MaxWarpsPerSM; w++ {
				sm.tr.ThreadName(w, fmt.Sprintf("warp %d", w))
			}
		}
		sim.Sys.AttachTrace(sim.tr.Mem())
	}
}

// reopenTraceSpans re-opens begin events for every entity that is live
// in a just-restored snapshot — valid warps, AWT entries, outstanding
// MSHR lines — so a resumed run's trace closes cleanly and passes schema
// validation. The resumed trace covers restore→end; DRAM spans are
// self-contained 'X' events and need nothing.
func (sim *Simulator) reopenTraceSpans() {
	if sim.tr == nil {
		return
	}
	for _, sm := range sim.sms {
		for _, w := range sm.warps {
			if w.valid {
				sm.traceWarpBegin(w, w.cta.id)
			}
		}
		for _, e := range sm.awc.Entries() {
			sm.traceAssistBegin(e, assistTraceCat(e.Routine))
		}
		for _, ln := range sm.mshr.Lines() {
			sm.traceMSHRBegin(ln)
		}
	}
}

// Series returns the sampled metrics time-series, or nil when
// Config.SampleEvery is zero. Valid after Run.
func (sim *Simulator) Series() *obs.Series {
	if sim.smp == nil {
		return nil
	}
	return &sim.smp.series
}

// StallAttribution returns the per-warp stall attribution report, or nil
// when Config.AttributeStalls is false. Valid after Run; the per-SM
// tables are returned in SM-index order.
func (sim *Simulator) StallAttribution() *obs.Attribution {
	if !sim.Cfg.AttributeStalls {
		return nil
	}
	at := &obs.Attribution{WarpSlots: sim.Cfg.MaxWarpsPerSM}
	for _, sm := range sim.sms {
		at.PerSM = append(at.PerSM, sm.attr)
	}
	return at
}

// Trace returns the run's trace recorder, or nil when Config.TraceFile
// is empty. The caller flushes it (typically after CloseOpen at the
// final cycle).
func (sim *Simulator) Trace() *obs.Trace { return sim.tr }
