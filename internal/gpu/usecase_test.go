package gpu

import (
	"testing"

	"github.com/caba-sim/caba/internal/core"
	"github.com/caba-sim/caba/internal/isa"
)

// trainSeq feeds a miss sequence for one stream and returns the bases of
// every trigger train reported (the caller decides whether to mark them
// launched, like pfTrain does).
func trainSeq(p *prefetcher, tag uint64, lines []uint64, mark bool) []uint64 {
	var fired []uint64
	for _, ln := range lines {
		if base, _, fire := p.train(tag, ln); fire {
			fired = append(fired, base)
			if mark {
				p.markTriggered(tag, base)
			}
		}
	}
	return fired
}

func TestStrideTableTraining(t *testing.T) {
	p := newPrefetcher()
	tag := pfTag(3, 0x40)
	const stride = 16 * 128 // byte stride, line-aligned

	// Misses at a constant stride: allocate, adopt, conf 1, conf 2 → the
	// fourth miss fires one stride ahead.
	var lines []uint64
	for i := 0; i < 8; i++ {
		lines = append(lines, uint64(0x10000+i*stride))
	}
	fired := trainSeq(p, tag, lines, true)
	if len(fired) != 5 {
		t.Fatalf("fired %d triggers, want 5 (misses 4..8 of 8)", len(fired))
	}
	if want := lines[3] + stride; fired[0] != want {
		t.Errorf("first trigger base = %#x, want %#x (one stride ahead)", fired[0], want)
	}

	// Re-missing the same line carries no direction signal and must not
	// fire or perturb the armed stride.
	if _, _, fire := p.train(tag, lines[7]); fire {
		t.Error("duplicate miss fired a trigger")
	}
	if base, s, fire := p.train(tag, lines[7]+stride); !fire || s != stride || base != lines[7]+2*stride {
		t.Errorf("stream lost its stride after a duplicate miss: base=%#x stride=%d fire=%v", base, s, fire)
	}
}

func TestStrideTableDuplicateSuppression(t *testing.T) {
	p := newPrefetcher()
	tag := pfTag(0, 0x10)
	const stride = 128
	lines := []uint64{0, stride, 2 * stride, 3 * stride}
	fired := trainSeq(p, tag, lines, true)
	if len(fired) != 1 {
		t.Fatalf("fired %d, want 1", len(fired))
	}
	// An unmarked (throttled) trigger retries on the next miss; a marked
	// one is suppressed for the same base.
	p2 := newPrefetcher()
	f2 := trainSeq(p2, tag, lines, false)
	f3 := trainSeq(p2, tag, []uint64{4 * stride}, false)
	if len(f2) != 1 || len(f3) != 1 {
		t.Errorf("throttled trigger did not retry: %d then %d fires", len(f2), len(f3))
	}
}

func TestStrideTableHysteresis(t *testing.T) {
	p := newPrefetcher()
	tag := pfTag(1, 0x20)
	const s = 128
	// Arm the stream at conf 2.
	trainSeq(p, tag, []uint64{0, s, 2 * s, 3 * s}, true)

	// One divergent delta steps confidence down one notch (2 → 1), not to
	// zero: the very next matching delta restores it and fires. A reset
	// policy would instead need the full re-arming sequence.
	if _, _, fire := p.train(tag, 3*s+7*s); fire {
		t.Error("divergent delta fired")
	}
	if _, _, fire := p.train(tag, 3*s+8*s); !fire {
		t.Error("hysteresis: one matching delta after one mismatch did not re-arm")
	}
	// Two divergent deltas in a row drop below the firing threshold, and
	// the second one also begins stride re-adoption (conf 0 adopts).
	p3 := newPrefetcher()
	trainSeq(p3, tag, []uint64{0, s, 2 * s, 3 * s}, true)
	if _, _, fire := p3.train(tag, 3*s+7*s); fire {
		t.Error("first divergent delta fired")
	}
	if _, _, fire := p3.train(tag, 3*s+7*s+3*s); fire {
		t.Error("second divergent delta fired")
	}
	if _, _, fire := p3.train(tag, 3*s+7*s+4*s); fire {
		t.Error("fired while still below threshold after double mismatch")
	}

	// An alternating pattern never reaches firing confidence.
	p2 := newPrefetcher()
	alt := []uint64{0}
	for i := 1; i < 20; i++ {
		step := uint64(s)
		if i%2 == 0 {
			step = 5 * s
		}
		alt = append(alt, alt[i-1]+step)
	}
	if fired := trainSeq(p2, tag, alt, true); len(fired) != 0 {
		t.Errorf("alternating strides fired %d triggers, want 0", len(fired))
	}
}

func TestStrideTableAliasingEviction(t *testing.T) {
	// Find two distinct stream tags that collide in the direct-mapped
	// table: training them alternately keeps re-allocating the entry, so
	// neither ever fires — the aliasing behavior of a real PC-indexed
	// reference-prediction table.
	t1 := pfTag(0, 0x100)
	var t2 uint64
	found := false
	for pc := int32(0x104); pc < 0x100000; pc += 4 {
		t2 = pfTag(7, pc)
		if t2 != t1 && pfIndex(t2) == pfIndex(t1) {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no colliding tag found")
	}
	p := newPrefetcher()
	const s = 128
	for i := 0; i < 32; i++ {
		if _, _, fire := p.train(t1, uint64(i)*s); fire {
			t.Fatal("aliased stream 1 fired")
		}
		if _, _, fire := p.train(t2, 0x900000+uint64(i)*s); fire {
			t.Fatal("aliased stream 2 fired")
		}
	}
	// Alone, the same sequence fires: the silence above is eviction, not
	// a broken detector.
	p2 := newPrefetcher()
	var lines []uint64
	for i := 0; i < 32; i++ {
		lines = append(lines, uint64(i)*s)
	}
	if fired := trainSeq(p2, t1, lines, true); len(fired) == 0 {
		t.Error("un-aliased stream never fired")
	}
}

func TestPrefetchUsefulnessRing(t *testing.T) {
	p := newPrefetcher()
	p.noteFill(0x1000)
	p.noteFill(0x2000)
	if !p.noteHit(0x1000) {
		t.Error("fill not credited")
	}
	if p.noteHit(0x1000) {
		t.Error("fill credited twice")
	}
	if p.noteHit(0x3000) {
		t.Error("unfilled line credited")
	}
	// The ring is bounded: pfRingSize+1 fills evict the oldest.
	for i := 0; i < pfRingSize+1; i++ {
		p.noteFill(uint64(0x10000 + i*128))
	}
	if p.noteHit(0x10000) {
		t.Error("evicted ring entry still credited")
	}
	if !p.noteHit(0x10000 + 128) {
		t.Error("retained ring entry lost")
	}
}

func TestMemoCacheHitMissEviction(t *testing.T) {
	m := &memoCache{}
	// Keys in the same set: identical low bits select the set, distinct
	// high bits are distinct tags.
	key := func(i int) uint64 { return uint64(i)<<32 | 5 }
	if m.lookup(key(0)) {
		t.Error("hit in empty cache")
	}
	for i := 0; i < memoWays; i++ {
		m.insert(key(i))
	}
	for i := 0; i < memoWays; i++ {
		if !m.lookup(key(i)) {
			t.Errorf("key %d missing after fill", i)
		}
	}
	// Round-robin: the next insert evicts way 0 — deterministically —
	// and lookups must not have perturbed the victim choice.
	m.lookup(key(2))
	m.lookup(key(3))
	m.insert(key(memoWays))
	if m.lookup(key(0)) {
		t.Error("round-robin victim (way 0) survived")
	}
	for i := 1; i <= memoWays; i++ {
		if !m.lookup(key(i)) {
			t.Errorf("non-victim key %d evicted", i)
		}
	}
	// Re-inserting a present tag is a no-op (no double occupancy, no
	// replacement-pointer advance).
	m.insert(key(1))
	m.insert(key(memoWays + 1)) // evicts way 1 only if rr advanced once
	if !m.lookup(key(2)) {
		t.Error("present-tag insert advanced the replacement pointer")
	}
}

func TestMemoCacheCollisionsStayDistinct(t *testing.T) {
	m := &memoCache{}
	// Same set, different full tags: neither lookup may alias the other.
	a := uint64(0xAAAA_0000_0000_0000 | 9)
	b := uint64(0xBBBB_0000_0000_0000 | 9)
	m.insert(a)
	if m.lookup(b) {
		t.Error("distinct tag in same set reported hit")
	}
	m.insert(b)
	if !m.lookup(a) || !m.lookup(b) {
		t.Error("set lost a co-resident tag")
	}
}

func TestMemoKeyLaneSensitivity(t *testing.T) {
	// memoKeyFor must fold in every lane's source operands: two warps
	// differing in a single lane's register value hash differently, and
	// the hash is stable for identical state.
	prog := isa.MustAssemble("memokey", `
  sfu r2, r1
  exit`)
	var sop *isa.Superop
	for i := range prog.Decoded().Ops {
		if op := &prog.Decoded().Ops[i]; op.Class == isa.ClassSFU {
			sop = op
			break
		}
	}
	if sop == nil {
		t.Fatal("no SFU superop in test program")
	}
	ex := core.NewExec(prog, core.FullMask)
	for lane := 0; lane < core.WarpSize; lane++ {
		ex.SetReg(lane, 1, uint64(100+lane))
	}
	k1 := memoKeyFor(ex, sop)
	if k2 := memoKeyFor(ex, sop); k2 != k1 {
		t.Fatal("hash not stable for identical state")
	}
	ex.SetReg(31, 1, 9999)
	if memoKeyFor(ex, sop) == k1 {
		t.Error("hash blind to last lane's operand")
	}
}
