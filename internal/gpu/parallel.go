package gpu

import "sync/atomic"

// smPool is the persistent phase-A worker pool. Each worker owns a static
// partition of the SMs (SM i belongs to worker i mod N) and ticks them on
// demand; the partition only shapes wall-clock, never results, because
// every shared-state effect is staged per SM and committed by the main
// goroutine in SM-index order.
//
// Memory-model notes: the per-worker channel send is the happens-before
// edge publishing the main goroutine's commits (and the new cycle) to the
// worker, and the countdown-plus-done-channel handoff is the edge
// publishing every worker's staged state back to the main goroutine.
// Phase-A ticks only read the shared structures (backing pages, Domain
// lines, the event queue is untouched), so concurrent workers never race.
type smPool struct {
	sms     []*SM
	work    []chan uint64
	pending atomic.Int32
	done    chan struct{}
}

// newSMPool starts n workers over sms.
func newSMPool(sms []*SM, n int) *smPool {
	p := &smPool{
		sms:  sms,
		work: make([]chan uint64, n),
		done: make(chan struct{}),
	}
	for w := range p.work {
		ch := make(chan uint64, 1)
		p.work[w] = ch
		go p.runWorker(w, ch)
	}
	return p
}

func (p *smPool) runWorker(w int, ch chan uint64) {
	stride := len(p.work)
	for cycle := range ch {
		for i := w; i < len(p.sms); i += stride {
			p.sms[i].tickSafe(cycle)
		}
		if p.pending.Add(-1) == 0 {
			p.done <- struct{}{}
		}
	}
}

// tick runs phase A for one cycle across all workers and blocks until
// every SM has ticked.
func (p *smPool) tick(cycle uint64) {
	p.pending.Store(int32(len(p.work)))
	for _, ch := range p.work {
		ch <- cycle
	}
	<-p.done
}

// stop terminates the workers. The pool must be idle.
func (p *smPool) stop() {
	for _, ch := range p.work {
		close(ch)
	}
}
