package gpu

import "github.com/caba-sim/caba/internal/compress"

// Typed event-queue actions and continuations for the SM-side paths that
// used to capture closures. Pending work must be serializable for
// snapshot/restore: every action/continuation that can live across a cycle
// boundary is a named struct encoded by object identity (see snapshot.go);
// behavior is identical to the closures they replace.

// contKind selects a continuation body.
type contKind uint8

const (
	contNone         contKind = iota
	contCompleteFill          // completeFill(ln, fill)
	contLoadLineDone          // loadLineDone(req)
)

// cont is a deferred SM continuation: what to do when a decompression,
// ECC check or recovery refetch finishes. The zero value is a no-op.
type cont struct {
	kind contKind
	ln   uint64
	fill *fillCtx
	req  *loadReq
}

// runCont executes a continuation.
func (sm *SM) runCont(c cont) {
	switch c.kind {
	case contCompleteFill:
		sm.completeFill(c.ln, c.fill)
	case contLoadLineDone:
		sm.loadLineDone(c.req)
	}
}

// decompPlain is the Entry.User payload for a decompression assist warp
// while fault injection is disabled: verify the output and resume the
// fill. (With injection active the richer decompCtx drives the
// detection/recovery chain instead.)
type decompPlain struct {
	ln   uint64
	done cont
}

// actHWCompress finishes a dedicated-logic (DecompHW) store-side
// compression after its fixed latency: compress the line's current bytes
// and release the buffered store.
type actHWCompress struct {
	sm *SM
	se *storeEntry
}

// Run compresses and releases.
func (a actHWCompress) Run() {
	a.sm.domCompressLine(a.se.lineAddr)
	a.sm.releaseStore(a.se)
}

// actCompleteFill delivers a fill after the dedicated decompressor's
// latency (DecompHW fill path).
type actCompleteFill struct {
	sm   *SM
	ln   uint64
	fill *fillCtx
}

// Run completes the fill.
func (a actCompleteFill) Run() { a.sm.completeFill(a.ln, a.fill) }

// actHWDetect is the dedicated decompressor's output check tripping on an
// injected bit flip: count the detection and refetch the raw line, with
// the original fill as the recovery continuation.
type actHWDetect struct {
	sm   *SM
	ln   uint64
	fill *fillCtx
}

// Run detects and recovers.
func (a actHWDetect) Run() {
	a.sm.stat.FaultsDetected++
	a.sm.refetchRaw(a.ln, cont{kind: contCompleteFill, ln: a.ln, fill: a.fill})
}

// pendingKind selects a queued assist-warp trigger body.
type pendingKind uint8

const (
	pendCompress pendingKind = iota // next compression-chain step for se
	pendDecomp                      // decompression AW for a compressed fill
	pendECC                         // ECC check over a decompressed image
)

// pendingTrigger is one assist-warp trigger waiting for AWT/AWB space; the
// SM retries it every tick until it lands.
type pendingTrigger struct {
	kind pendingKind
	se   *storeEntry // pendCompress
	ln   uint64      // pendDecomp
	st   compress.Compressed
	warp int
	done cont       // pendDecomp completion
	dc   *decompCtx // pendDecomp (injection active) / pendECC
}

// runTrigger attempts one queued trigger; true means it no longer needs
// retrying (landed, or its target was abandoned).
func (sm *SM) runTrigger(pt *pendingTrigger) bool {
	switch pt.kind {
	case pendCompress:
		return sm.tryCompressStep(pt.se)
	case pendDecomp:
		return sm.tryDecompTrigger(pt)
	default:
		return sm.tryECC(pt.dc)
	}
}
