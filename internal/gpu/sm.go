package gpu

import (
	"bytes"
	"fmt"

	"github.com/caba-sim/caba/internal/compress"
	"github.com/caba-sim/caba/internal/config"
	"github.com/caba-sim/caba/internal/core"
	"github.com/caba-sim/caba/internal/isa"
	"github.com/caba-sim/caba/internal/mem"
	"github.com/caba-sim/caba/internal/obs"
	"github.com/caba-sim/caba/internal/stats"
	"github.com/caba-sim/caba/internal/timing"
)

// Store-buffer tuning: the dedicated L1 sets / shared-memory space used to
// buffer pending stores awaiting compression (Section 4.2.2).
const (
	storeBufCap   = 16
	storeDrainAge = 200
)

// storeEntry is one pending store line.
type storeEntry struct {
	lineAddr  uint64
	coverage  uint32 // one bit per 4-byte word of the line
	warp      int    // last storing warp (assist-warp parent)
	lastTouch uint64
	state     storeState
	// Compression chain position for the CABA path.
	chain    []core.RoutineID
	chainPos int
	alg      compress.AlgID // algorithm the chain is running
	// released marks an entry already sent to L2 (possibly abandoned
	// mid-compression by a buffer overflow); stale callbacks ignore it.
	released bool
}

type storeState uint8

const (
	sbPending  storeState = iota
	sbRMW                 // fetching the line for a partial overwrite
	sbCompress            // compression in progress (AW or HW latency)
	sbQueued              // waiting for an AWC low-priority slot
)

// fill contexts routed through mem.System's opaque user pointer.
type fillKind uint8

const (
	fillLoad fillKind = iota
	fillRMW
	fillAssist  // global load issued by an assist warp (e.g. prefetch)
	fillRefetch // fault-recovery refetch of an uncompressed line
)

type fillCtx struct {
	kind  fillKind
	load  *loadReq
	se    *storeEntry
	after cont // fillRefetch continuation
}

// wbKind tags a pipeline writeback record.
type wbKind uint8

const (
	wbWarp   wbKind = iota // regular-warp ALU/SFU/shared-mem completion
	wbAssist               // assist-warp instruction completion
	wbLoad                 // L1-hit (or HW-decompressed) load line completion
)

// wbRec is one pending pipeline writeback, held in the SM's time-bucketed
// ring instead of a heap-allocated event closure: the issue hot path was
// dominated by one closure + instruction copy per issued instruction. The
// record references the issued instruction's superop (immutable, shared),
// so queuing a writeback copies a pointer instead of an Instr and retiring
// one releases scoreboard destinations with the superop's precomputed
// masks. Nil for wbLoad records.
type wbRec struct {
	kind wbKind
	sop  *isa.Superop
	w    *warpCtx
	e    *core.Entry
	req  *loadReq
}

// SM is one streaming multiprocessor.
type SM struct {
	id  int
	sim *Simulator

	warps []*warpCtx
	ctas  []*ctaCtx
	// drainingCTAs counts resident CTAs whose warps have all finished
	// (liveWarps == 0) but whose in-flight instructions have not drained;
	// the retirement sweep runs only while it is nonzero.
	drainingCTAs int

	l1   *mem.Cache
	mshr *mem.MSHR

	awc *core.Controller

	// Use-case hardware (usecase.go): the stride-detection prefetch unit
	// and the memoization result cache. Both are nil unless Design.UseCase
	// enables them, so compression-only designs pay nothing.
	pf   *prefetcher
	memo *memoCache

	// Two-phase tick state. inTick is true while tick() runs (phase A,
	// possibly on a worker goroutine): shared-state operations are then
	// staged into outbox/wbuf instead of applied, and the simulator
	// commits them at the cycle barrier in SM-index order. Outside
	// tick() — event callbacks delivered from the queue (phase B) — the
	// same helpers apply operations directly.
	inTick       bool
	wantDispatch bool // CTA retirement requested a dispatch; run at commit
	outbox       mem.Outbox
	wbuf         *mem.WriteBuffer

	// stat is this SM's shard of the run counters; folded into sim.S at
	// the end of the run so phase-A workers never contend.
	stat stats.Shard

	// execPool recycles assist-warp execution contexts (registers +
	// staging buffers) across triggers; the assist-warp request path is
	// the simulator's dominant allocation source without it.
	execPool []*core.Exec

	// warpExecPool recycles regular-warp execution contexts across CTA
	// placements (kept separate from execPool: warp contexts are sized by
	// the kernel's register count and carry no staging buffers).
	warpExecPool []*core.Exec

	// storeBuf holds pending store lines in age order (oldest first). It
	// is bounded by storeBufCap, so identity/address lookups are linear
	// scans over a short slice — cheaper than the map it replaces.
	storeBuf []*storeEntry

	// wbRing is the pipeline writeback ring: bucket (cycle & wbMask)
	// holds the writebacks completing at that cycle. Bucket slices are
	// recycled, so steady-state issue allocates nothing.
	wbRing    [][]wbRec
	wbMask    uint64
	wbPending int

	// Retry queues for assist-warp triggers that found the AWT/AWB full.
	decompRetry []pendingTrigger
	// replayQ holds loads whose coalesced lines overflowed the MSHR.
	replayQ []*loadReq

	// Pipeline ports, reset each cycle.
	aluPorts int
	lsuPorts int
	sfuFree  uint64 // SFU initiation interval
	lsuFree  uint64 // LSU busy from multi-line coalesced accesses

	greedy *warpCtx
	// order is the GTO scheduling order (valid warps, stable-sorted by
	// lastIssueCycle then warp slot). It is maintained incrementally:
	// issued warps recorded in issuedBuf are re-placed at the back on the
	// next tick, and orderDirty forces a full rebuild after warp validity
	// changes (CTA placement/retirement). LRR rebuilds every tick. Entries
	// are warp slot indices rather than pointers so the per-issue
	// move-to-back shift is a barrier-free memmove and the position scan
	// stays within a few cache lines.
	order       []int32
	orderDirty  bool
	issuedBuf   []*warpCtx
	lineBuf     []uint64
	awLineBuf   []uint64 // coalescing scratch for assist-warp accesses
	lastGoodEnc compress.BDIEncoding
	hasLastGood bool

	// Adaptive disable (Section 4.3.1 / Section 6: applications whose
	// data is not compressible have their assist warps disabled so they
	// see no degradation). A streak of failed compression chains turns
	// the store-side compression off.
	compFailStreak int
	compDisabled   bool

	// Quiescence cache. When valid, quiescent() has proven that every
	// tick before qHorizon (exclusive) is a pure stall-accounting no-op
	// classified as qKind, so tick() replays that verdict in O(1) instead
	// of re-scanning the warp list. Any event-side entry into the SM
	// (fills, delayed decompression, store releases, CTA placement)
	// invalidates it via touch(). This is what makes memory-stall cycles
	// cheap even when dense memory-system events pin the global clock to
	// per-cycle stepping.
	qValid   bool
	qKind    stats.StallKind
	qHorizon uint64
	// qTry gates cache establishment: only a tick that issued nothing
	// makes the next tick a quiescence candidate, so busy ticks never pay
	// for the extra scan.
	qTry bool

	// Batch window (Config.BatchIssue). When valid, tryEstablishBatch has
	// proven that every tick in [bStart, bUntil) is fully determined in
	// advance, and the exact GTO issue schedule, bEvents, has been
	// precomputed by simulating the scheduler. Each warp is modelled as
	// either a participant — mid straightline run (isa.Decoded.RunLen)
	// with an empty divergence stack, free to issue inside the window —
	// or a closer: a warp whose next op is a run boundary (memory, SFU,
	// control, an ALU op with divergence in flight). Closers evolve in
	// the simulation exactly like participants (scoreboards seeded from
	// the live masks, retired on the writeback ring's due cycles) but
	// never issue in-window: the first simulated cycle on which a closer
	// would win an issue slot ends the window (exclusive) — the boundary
	// op is scheduler-visible and must go through the normal path, which
	// reproduces that cycle's slots deterministically from the identical
	// architected state. batchTick replays the scheduled ticks without
	// the scheduler scans, with per-cycle side effects (writeback ring
	// pops and pushes, issue-slot stats, stall attribution, AWC
	// utilization window, energy class counters, greedy and
	// lastIssueCycle updates) bit-identical to the full tick. Failing
	// slots classify from the per-cycle bGap tables (closer hazard flags
	// vary cycle to cycle as their scoreboards drain); DataDep slots
	// blame the live greedy warp — the last issuer, which a failing slot
	// always visits first and always finds scoreboard-blocked. Like the
	// quiescence cache this is a pure strategy cache: touch() drops it,
	// snapshots never carry it, and aborting a window mid-flight loses
	// nothing (all replayed state is architected).
	bValid   bool
	bStart   uint64
	bUntil   uint64
	bEvents  []bEvt
	bEvtHead int
	bParts   []*warpCtx
	bPartOps [][]isa.Superop
	// Per-simulated-cycle classification of failing issue slots, indexed
	// by cycle-bStart: the stall kind, and for Memory/Compute kinds the
	// blamed (warp, cause) pair (DataDep blames the live greedy).
	bGapKind []stats.StallKind
	bGapW    []int32
	bGapC    []obs.Cause
	// Establishment scratch, retained across windows to avoid per-window
	// allocation: the simulated warp states, the simulated GTO visit
	// order, and the warp-slot → bScr-index map used to seed pending
	// sets from the writeback ring. All of it is pre-sized in one shot
	// at the first establishment attempt (bSlab doubles as the "done"
	// flag and backs every part's pend queue), so the batch engine adds
	// a fixed handful of allocations per SM lifetime rather than
	// doubling-growth churn on every fresh simulator.
	bScr    []bPart
	bOrd    []int32
	bPartOf []int16
	bIssued []int32
	bSlab   []bSimOp
	// bSkip is an establishment backoff: after a simulation proves the
	// window too short to pay for (a closer wins a slot within a cycle
	// or two), re-attempts — which would mostly re-prove the same thing
	// — are suppressed until this cycle. bSkipLen is the current backoff
	// length, doubled (capped) on consecutive short failures and reset
	// when a window establishes. Purely a strategy heuristic: the pair
	// changes when windows are attempted, never what any window replays,
	// and is not serialized.
	bSkip    uint64
	bSkipLen uint64

	// fatal is the SM's first unrecoverable error (an internal invariant
	// violation that used to panic). The run loop scans it every cycle
	// and surfaces it as a structured error from Run.
	fatal error

	// fr is this SM's flight-recorder ring (nil when the recorder is
	// off). Only this SM writes it, even during phase-A worker ticks.
	fr *flightRing

	// attr is this SM's per-warp stall attribution table (nil when
	// Config.AttributeStalls is off). Like stat and fr, it is written
	// only by its owning SM, so phase-A workers never contend.
	attr *obs.Attr
	// qBlameW/qBlameC cache the attribution target alongside the
	// quiescence verdict (qKind): the tick fast path and the
	// fast-forward bulk credit charge the cached pair, so a skipped
	// window attributes exactly like the per-cycle replay it replaces.
	qBlameW int
	qBlameC obs.Cause

	// tr is this SM's trace shard (nil when Config.TraceFile is empty);
	// written only by this SM, so phase-A workers never contend. The
	// trAW*/trMSHR* maps and free lists allocate stable per-entity
	// track ids (warp slots occupy [0, MaxWarpsPerSM); assist warps and
	// MSHR lines get recycled tracks in disjoint ranges above).
	tr         *obs.TraceShard
	trAW       map[*core.Entry]int
	trAWFree   []int
	trAWNext   int
	trMSHR     map[uint64]int
	trMSHRFree []int
	trMSHRNext int

	cycle uint64
}

// touch invalidates the quiescence cache and the batch window; every
// mutation of SM state that can happen outside tick() must call it.
func (sm *SM) touch() {
	if sm.bValid && sm.cycle+2 < sm.bUntil {
		// An external event (fill, assist completion, store release)
		// killed the window well before its planned end — the horizon
		// scan cannot see cross-SM memory timing, so on traffic-heavy
		// phases windows are established only to be torn down. Back off
		// like a short failure; a window that later replays to its end
		// resets the eagerness.
		if sm.bSkipLen < 4 {
			sm.bSkipLen = 4
		} else if sm.bSkipLen < 256 {
			sm.bSkipLen *= 2
		}
		sm.bSkip = sm.cycle + sm.bSkipLen
	}
	sm.qValid = false
	sm.bValid = false
}

// fail records the SM's first fatal error; later errors are dropped so
// the surfaced error is the root cause.
func (sm *SM) fail(err error) {
	if sm.fatal == nil {
		sm.fatal = err
	}
	sm.touch()
}

// tickSafe runs one tick with a panic backstop: a panic on a phase-A
// worker goroutine cannot be recovered by Run's own defer, so it is
// converted here into the SM's fatal error and surfaced at the cycle
// barrier.
func (sm *SM) tickSafe(cycle uint64) {
	defer func() {
		if r := recover(); r != nil {
			sm.inTick = false
			sm.fail(fmt.Errorf("gpu: sm%d: internal panic at cycle %d: %v", sm.id, cycle, r))
		}
	}()
	sm.tick(cycle)
}

// --- Staged shared-state access (two-phase tick) ---
//
// Every touch of state shared across SMs — the crossbar, the event queue,
// the compression Domain, the functional backing memory — goes through
// these helpers. During tick() (phase A, concurrent across SMs) they
// stage into the per-SM outbox/write buffer; in event contexts (phase B,
// main goroutine only) they apply directly. Reads always overlay the SM's
// own staged writes, so within a tick the SM observes its own effects
// exactly as it would on a fully serial schedule.

// sysReadLine requests a line from the memory system.
func (sm *SM) sysReadLine(ln uint64, user any) {
	if sm.inTick {
		sm.outbox.ReadLine(ln, user)
		return
	}
	sm.sim.Sys.ReadLine(sm.id, ln, user)
}

// sysReadLineRaw requests the uncompressed copy of a line (fault
// recovery).
func (sm *SM) sysReadLineRaw(ln uint64, user any) {
	if sm.inTick {
		sm.outbox.ReadLineRaw(ln, user)
		return
	}
	sm.sim.Sys.ReadLineRaw(sm.id, ln, user)
}

// sysWriteLine sends a line writeback toward L2.
func (sm *SM) sysWriteLine(ln uint64) {
	if sm.inTick {
		sm.outbox.WriteLine(ln)
		return
	}
	sm.sim.Sys.WriteLine(sm.id, ln)
}

// qAt schedules act on the global event queue at absolute time at.
func (sm *SM) qAt(at float64, act timing.Action) {
	if sm.inTick {
		sm.outbox.Event(at, act)
		return
	}
	sm.sim.Q.Push(at, act)
}

// domState returns the line's compression state, seeing this SM's staged
// same-cycle Domain writes first.
func (sm *SM) domState(ln uint64) compress.Compressed {
	if st, ok := sm.outbox.StagedState(ln); ok {
		return st
	}
	return sm.sim.Dom.State(ln)
}

// domSetCompressed records the line as stored compressed.
func (sm *SM) domSetCompressed(ln uint64, st compress.Compressed) {
	if sm.inTick {
		sm.outbox.SetCompressed(ln, st)
		return
	}
	sm.sim.Dom.SetCompressed(ln, st)
}

// domSetRaw records the line as stored uncompressed.
func (sm *SM) domSetRaw(ln uint64) {
	if sm.inTick {
		sm.outbox.SetRaw(ln)
		return
	}
	sm.sim.Dom.SetRaw(ln)
}

// domReadRaw copies the line's uncompressed truth into buf: the committed
// bytes overlaid with this SM's staged functional stores.
func (sm *SM) domReadRaw(ln uint64, buf []byte) {
	sm.sim.Dom.ReadRaw(ln, buf)
	sm.wbuf.OverlayLine(ln, buf)
}

// domCompressLine compresses the line's current (overlay-visible) bytes
// with the domain algorithm and records the result. The compressed image
// is computed here, in phase A, from a stable snapshot — not recomputed at
// commit — so the result is independent of other SMs' same-cycle stores.
func (sm *SM) domCompressLine(ln uint64) {
	var line [compress.LineSize]byte
	sm.domReadRaw(ln, line[:])
	c, err := compress.Compress(sm.sim.Dom.Alg, line[:])
	if err != nil {
		sm.fail(fmt.Errorf("gpu: %w", err)) // impossible: line is LineSize
		return
	}
	sm.domSetCompressed(ln, c)
}

// newAssistExec builds an assist-warp execution context, recycling a
// pooled context (registers, staging buffers and all) when available.
func (sm *SM) newAssistExec(rt *core.Routine) *core.Exec {
	if n := len(sm.execPool); n > 0 {
		ex := sm.execPool[n-1]
		sm.execPool = sm.execPool[:n-1]
		core.ResetAssistExec(ex, rt)
		ex.Interp = sm.sim.Cfg.Interpreter
		return ex
	}
	ex := core.NewAssistExec(rt)
	ex.Interp = sm.sim.Cfg.Interpreter
	return ex
}

// releaseAssistExec returns a retired assist exec to the pool. The exec
// must have no remaining readers.
func (sm *SM) releaseAssistExec(ex *core.Exec) {
	sm.execPool = append(sm.execPool, ex)
}

func newSM(id int, sim *Simulator) *SM {
	cfg := sim.Cfg
	sm := &SM{
		id:    id,
		sim:   sim,
		warps: make([]*warpCtx, cfg.MaxWarpsPerSM),
		l1:    mem.NewCache(cfg.L1Size, cfg.L1Assoc, cfg.LineSize, 1, sim.Design.L1TagMult),
		mshr:  mem.NewMSHR(cfg.L1MSHRs),
		wbuf:  mem.NewWriteBuffer(sim.Mem),
		fr:    newFlightRing(cfg.FlightRecorderDepth),
	}
	sm.outbox.SM = id
	for i := range sm.warps {
		sm.warps[i] = &warpCtx{id: i}
	}
	// Size the writeback ring to cover the longest in-pipeline latency:
	// ALU/SFU completion, and L1 hits including the worst-case hardware
	// decompression penalty.
	maxLat := cfg.ALULatency
	if cfg.SFULatency > maxLat {
		maxLat = cfg.SFULatency
	}
	if d, _ := compress.HWLatency(compress.AlgBest); cfg.L1Latency+d > maxLat {
		maxLat = cfg.L1Latency + d
	}
	ringSize := 1
	for ringSize < maxLat+2 {
		ringSize *= 2
	}
	sm.wbRing = make([][]wbRec, ringSize)
	sm.wbMask = uint64(ringSize - 1)
	sm.orderDirty = true
	entries := sim.awtEntries
	if entries <= 0 {
		entries = cfg.MaxWarpsPerSM
	}
	sm.awc = core.NewController(sim.AWS, entries)
	if cfg.AWDeployBW > 0 {
		sm.awc.DeployBW = cfg.AWDeployBW
	}
	if sim.Design.Prefetching() {
		sm.pf = newPrefetcher()
	}
	if sim.Design.Memoizing() {
		sm.memo = &memoCache{}
	}
	return sm
}

// hasWork reports whether the SM still has anything in flight.
func (sm *SM) hasWork() bool {
	for _, c := range sm.ctas {
		if c != nil {
			return true
		}
	}
	return len(sm.storeBuf) > 0 || len(sm.awc.Entries()) > 0 ||
		len(sm.decompRetry) > 0 || len(sm.replayQ) > 0 || sm.wbPending > 0
}

// --- Writeback ring ---

// wbAdd schedules a pipeline writeback at absolute cycle at.
func (sm *SM) wbAdd(at uint64, rec wbRec) {
	if at-sm.cycle > sm.wbMask {
		panic("gpu: writeback latency exceeds ring span")
	}
	i := at & sm.wbMask
	sm.wbRing[i] = append(sm.wbRing[i], rec)
	sm.wbPending++
}

// wbPop retires the writebacks due at cycle. It runs at tick start,
// before sm.cycle advances, preserving the completion-before-issue
// ordering (and load-latency accounting) of the event-queue path it
// replaces.
func (sm *SM) wbPop(cycle uint64) {
	bucket := sm.wbRing[cycle&sm.wbMask]
	if len(bucket) == 0 {
		return
	}
	sm.wbRing[cycle&sm.wbMask] = bucket[:0]
	sm.wbPending -= len(bucket)
	for i := range bucket {
		rec := &bucket[i]
		switch rec.kind {
		case wbWarp:
			rec.w.sb.ClearSop(rec.sop)
			rec.w.depStalled = false
			rec.w.inFlight--
		case wbAssist:
			rec.e.SB.ClearSop(rec.sop)
			rec.e.Outstanding--
			sm.checkAssistDone(rec.e)
		case wbLoad:
			sm.loadLineDone(rec.req)
		}
		*rec = wbRec{} // drop pointers so retired contexts can be collected
	}
}

// wbNext returns the cycle of the earliest pending writeback after `from`
// (exclusive); ok is false when the ring is empty. Used by the
// fast-forward engine to bound the skip window.
func (sm *SM) wbNext(from uint64) (uint64, bool) {
	if sm.wbPending == 0 {
		return 0, false
	}
	for d := uint64(1); d <= sm.wbMask+1; d++ {
		if len(sm.wbRing[(from+d)&sm.wbMask]) > 0 {
			return from + d, true
		}
	}
	return 0, false
}

// --- CTA lifecycle ---

// placeCTA installs thread block cta onto the SM. Caller checked capacity.
// It invalidates the quiescence cache: fresh warps change the issue
// picture.
func (sm *SM) placeCTA(ctaID int) {
	sm.touch()
	sm.orderDirty = true
	k := sm.sim.Kernel
	cfg := sm.sim.Cfg
	warpsNeeded := k.WarpsPerCTA(cfg)
	cta := &ctaCtx{
		id:     ctaID,
		shared: make([]byte, k.SharedMem),
	}
	placed := 0
	for _, w := range sm.warps {
		if placed == warpsNeeded {
			break
		}
		if w.valid {
			continue
		}
		threadsLeft := k.CTAThreads - placed*cfg.WarpSize
		mask := core.FullMask
		if threadsLeft < cfg.WarpSize {
			mask = (1 << threadsLeft) - 1
		}
		var ex *core.Exec
		if n := len(sm.warpExecPool); n > 0 {
			ex = sm.warpExecPool[n-1]
			sm.warpExecPool = sm.warpExecPool[:n-1]
			ex.Reset(k.Prog, mask)
		} else {
			ex = core.NewExec(k.Prog, mask)
		}
		ex.Interp = cfg.Interpreter
		ex.Mem = sm.wbuf
		ex.Shared = cta.shared
		for lane := 0; lane < cfg.WarpSize; lane++ {
			tid := placed*cfg.WarpSize + lane
			ex.SetLaneSpecial(lane, isa.RegTid, uint64(tid))
			ex.SetLaneSpecial(lane, isa.RegGtid, uint64(ctaID*k.CTAThreads+tid))
		}
		ex.SetSpecial(isa.RegNTid, uint64(k.CTAThreads))
		ex.SetSpecial(isa.RegCtaid, uint64(ctaID))
		ex.SetSpecial(isa.RegNCta, uint64(k.GridCTAs))
		ex.SetSpecial(isa.RegWarp, uint64(placed))
		ex.SetSpecial(isa.RegParam0, k.Params[0])
		ex.SetSpecial(isa.RegParam1, k.Params[1])
		ex.SetSpecial(isa.RegParam2, k.Params[2])
		ex.SetSpecial(isa.RegParam3, k.Params[3])
		w.cta = cta
		w.exec = ex
		w.sb = regMask{}
		w.depStalled = false
		w.idle = false
		w.valid = true
		w.inFlight = 0
		w.pendingLoads = 0
		cta.warps = append(cta.warps, w)
		placed++
	}
	if placed != warpsNeeded {
		panic("gpu: placeCTA without capacity")
	}
	cta.liveWarps = warpsNeeded
	sm.ctas = append(sm.ctas, cta)
	if sm.tr != nil {
		for _, w := range cta.warps {
			sm.traceWarpBegin(w, ctaID)
		}
	}
	if sm.fr != nil {
		sm.record(fmt.Sprintf("CTA %d placed (%d warps)", ctaID, warpsNeeded), 0)
	}
}

// freeWarps reports how many warp slots are free.
func (sm *SM) freeWarps() int {
	n := 0
	for _, w := range sm.warps {
		if !w.valid {
			n++
		}
	}
	return n
}

// retireCTAIfDone frees a finished CTA and asks the dispatcher for more
// work.
func (sm *SM) retireCTAIfDone(cta *ctaCtx) {
	if cta.liveWarps > 0 {
		return
	}
	for _, w := range cta.warps {
		if w.inFlight > 0 || w.pendingLoads > 0 || w.replay != nil {
			return
		}
	}
	for _, w := range cta.warps {
		if sm.tr != nil {
			sm.traceWarpEnd(w)
		}
		w.valid = false
		sm.warpExecPool = append(sm.warpExecPool, w.exec)
		w.exec = nil
		w.cta = nil
	}
	sm.orderDirty = true
	sm.drainingCTAs--
	for i, c := range sm.ctas {
		if c == cta {
			sm.ctas = append(sm.ctas[:i], sm.ctas[i+1:]...)
			break
		}
	}
	if sm.fr != nil {
		sm.record(fmt.Sprintf("CTA %d retired", cta.id), 0)
	}
	// Dispatch pulls from the shared CTA counter; during a concurrent tick
	// the request is deferred and the simulator runs it at the cycle
	// barrier in SM-index order, reproducing the serial tick's dispatch
	// order (a placed CTA cannot issue until the next tick either way).
	if sm.inTick {
		sm.wantDispatch = true
		return
	}
	sm.sim.dispatch(sm)
}

// --- Per-cycle tick ---

// tick runs one SM cycle (phase A of the two-phase tick). It may execute
// on a worker goroutine: inTick routes every shared-state effect into the
// SM's outbox/write buffer, and the simulator commits them at the cycle
// barrier in SM-index order.
func (sm *SM) tick(cycle uint64) {
	sm.inTick = true
	sm.tickCompute(cycle)
	sm.inTick = false
}

func (sm *SM) tickCompute(cycle uint64) {
	// Quiescence fast path: replay (or establish) a proven stall
	// classification without touching the pipeline. Bit-identical to the
	// full tick below — quiescent() guarantees the tick would be a pure
	// accounting no-op, and NoteIdleSlots matches NumSchedulers failed
	// NoteIssueSlot calls exactly.
	if sm.sim.Cfg.FastForward {
		if !sm.qValid && sm.qTry {
			if kind, horizon, ok := sm.quiescent(cycle); ok {
				sm.qValid, sm.qKind, sm.qHorizon = true, kind, horizon
			}
		}
		if sm.qValid {
			if cycle < sm.qHorizon {
				sm.cycle = cycle
				sched := sm.sim.Cfg.NumSchedulers
				sm.stat.IssueSlots[sm.qKind] += uint64(sched)
				if sm.attr != nil {
					sm.attr.Charge(sm.qBlameW, sm.qBlameC, uint64(sched))
				}
				sm.awc.NoteIdleSlots(sched)
				return
			}
			sm.qValid = false
		}
	}

	// Batch-window fast path: replay one precomputed cycle of the
	// established straightline run (Config.BatchIssue). Sits after the
	// quiescence block deliberately — a gap cycle of the window that the
	// fast-forward engine proved quiescent is replayed there instead,
	// with identical accounting, and the window resumes at its horizon.
	if sm.bValid {
		if cycle < sm.bUntil {
			sm.batchTick(cycle)
			return
		}
		sm.bValid = false
		// The window replayed to its planned end: establishment paid
		// off, so re-arm it at full eagerness.
		sm.bSkipLen = 0
	}

	// Retire pipeline writebacks due this cycle before the clock (and the
	// issue stage) advances.
	sm.wbPop(cycle)

	sm.cycle = cycle
	sm.aluPorts = sm.sim.Cfg.NumSchedulers
	sm.lsuPorts = 1

	// Retry assist-warp triggers that previously found structures full.
	if len(sm.decompRetry) > 0 {
		kept := sm.decompRetry[:0]
		for i := range sm.decompRetry {
			if !sm.runTrigger(&sm.decompRetry[i]) {
				kept = append(kept, sm.decompRetry[i])
			}
		}
		sm.decompRetry = kept
	}

	sm.awc.Tick()
	sm.processReplays()
	sm.rebuildOrder()

	// Block-batched issue: if the greedy warp heads a straightline run
	// and no event can intervene, precompute the whole window's schedule
	// and replay its first cycle; drainStores and the CTA sweep are
	// proven no-ops by the establishment scan.
	if sm.sim.Cfg.BatchIssue && !sm.bValid && sm.tryEstablishBatch(cycle) {
		sm.batchTick(cycle)
		return
	}

	idle := true
	for s := 0; s < sm.sim.Cfg.NumSchedulers; s++ {
		kind := sm.issueSlot()
		if kind == stats.Active {
			idle = false
		}
		sm.awc.NoteIssueSlot(kind == stats.Active)
		sm.stat.IssueSlots[kind]++
	}
	sm.qTry = idle

	sm.drainStores()

	// CTA retirement sweep, only while some CTA has every warp done and
	// is draining its in-flight instructions (drainingCTAs tracks the
	// liveWarps==0 population, so the common steady-state tick skips the
	// walk entirely).
	if sm.drainingCTAs > 0 {
		for i := len(sm.ctas) - 1; i >= 0; i-- {
			sm.retireCTAIfDone(sm.ctas[i])
		}
	}
}

// slotFlags records why candidates could not issue, for Figure 1's
// classification.
type slotFlags struct {
	dep   bool
	memS  bool
	compS bool

	// Attribution blame, filled only when blame is armed (initBlame):
	// for each raised flag, the first candidate warp that raised it —
	// in scheduler visit order — and the specific structural cause.
	// barW/drainW/idleAW back the idle-slot precedence (barrier >
	// drain > blocked low-priority assist > empty SM).
	blame             bool
	depW, memW, compW int
	depC, memC, compC obs.Cause
	barW, drainW      int
	idleAW            int
}

// quiescent reports whether tick(cycle) would be a pure stall-accounting
// no-op for this SM — nothing can issue, retire, drain or deploy — and if
// so, which stall kind each of its issue slots would record. horizon is
// the earliest future cycle at which this SM's own state can make a tick
// act again (pipeline writeback, LSU/SFU port release, store-buffer
// aging); ^uint64(0) when the SM is waiting purely on memory-system
// events. The fast-forward engine may then skip ticks up to
// min(horizon, next event) while crediting `kind` in bulk, with results
// bit-identical to per-cycle ticking.
func (sm *SM) quiescent(cycle uint64) (kind stats.StallKind, horizon uint64, ok bool) {
	horizon = ^uint64(0)

	// Assist-warp machinery in flight advances state every tick (retries,
	// AWC deployment, round-robin rotation).
	if len(sm.decompRetry) > 0 || !sm.awc.Idle() {
		return 0, 0, false
	}
	// A writeback due this very tick acts; later ones bound the window.
	if len(sm.wbRing[cycle&sm.wbMask]) > 0 {
		return 0, 0, false
	}
	if wb, any := sm.wbNext(cycle); any && wb < horizon {
		horizon = wb
	}
	// Replay queue: progress this tick means not quiescent; otherwise it
	// is gated on the LSU (horizon) or a fill event freeing the MSHR
	// (covered by the event-queue bound).
	if len(sm.replayQ) > 0 {
		if cycle >= sm.lsuFree {
			if !sm.mshr.Full() {
				return 0, 0, false
			}
		} else if sm.lsuFree < horizon {
			horizon = sm.lsuFree
		}
	}
	// A retirable CTA means the tick would retire it and dispatch work.
	for _, cta := range sm.ctas {
		if cta.liveWarps != 0 {
			continue
		}
		retirable := true
		for _, w := range cta.warps {
			if w.inFlight > 0 || w.pendingLoads > 0 || w.replay != nil {
				retirable = false
				break
			}
		}
		if retirable {
			return 0, 0, false
		}
	}
	// Store buffer: a due drain acts now; future aging bounds the window.
	bufFull := len(sm.storeBuf) >= storeBufCap*3/4
	for _, se := range sm.storeBuf {
		if se.state != sbPending {
			continue
		}
		if bufFull || cycle-se.lastTouch >= storeDrainAge {
			return 0, 0, false
		}
		if t := se.lastTouch + storeDrainAge; t < horizon {
			horizon = t
		}
	}
	// Warps: replicate issueSlot's classification flags without issuing.
	// Per-tick port counters (aluPorts/lsuPorts) reset every cycle, so
	// only the lsuFree/sfuFree time gates matter here. Under LRR the last
	// issuer is skipped by the issue loop, so it is skipped here too.
	var f slotFlags
	if sm.attr != nil {
		f.initBlame()
	}
	lrr := sm.sim.Cfg.Scheduler == config.SchedLRR
	for _, w := range sm.warps {
		if !w.valid || (lrr && w == sm.greedy) {
			continue
		}
		in := w.exec.CurrentSop()
		if in == nil {
			// Done or at barrier: contributes to idle.
			if f.blame {
				f.noteIdleWarp(w)
			}
			continue
		}
		if w.sb.ConflictsSop(in) {
			f.dep = true
			if f.blame && f.depW < 0 {
				f.depW, f.depC = w.id, sm.depCause(w)
			}
			continue
		}
		switch in.Class {
		case isa.ClassMem:
			if cycle < sm.lsuFree {
				f.memS = true
				if f.blame && f.memW < 0 {
					f.memW, f.memC = w.id, obs.CauseLSUBusy
				}
				if sm.lsuFree < horizon {
					horizon = sm.lsuFree
				}
				continue
			}
			if in.GlobalMem && in.StoreOp &&
				len(sm.storeBuf) >= storeBufCap && !sm.canEvictStore() {
				// Unblocks only via compression/RMW completion events.
				f.memS = true
				if f.blame && f.memW < 0 {
					f.memW, f.memC = w.id, obs.CauseStoreBufFull
				}
				continue
			}
			if in.GlobalMem && w.replay != nil {
				// Blocks behind the warp's replaying load, which drains
				// via fill events or the LSU horizon handled above.
				f.memS = true
				if f.blame && f.memW < 0 {
					f.memW, f.memC = w.id, sm.mshrCause()
				}
				continue
			}
			return 0, 0, false // the LSU is free: this warp would issue
		case isa.ClassSFU:
			if cycle < sm.sfuFree {
				if sm.memo != nil {
					// With memoization on, a busy SFU port is not a
					// stall: the live tick may issue this warp through
					// the probe path. Never claim quiescence over it.
					return 0, 0, false
				}
				f.compS = true
				if f.blame && f.compW < 0 {
					f.compW, f.compC = w.id, obs.CauseSFUBusy
				}
				if sm.sfuFree < horizon {
					horizon = sm.sfuFree
				}
				continue
			}
			return 0, 0, false
		default:
			// ALU and control ports are always available at tick start.
			return 0, 0, false
		}
	}
	kind = classify(&f)
	if f.blame {
		sm.qBlameW, sm.qBlameC = blameFor(kind, &f)
	}
	return kind, horizon, true
}

// bSimOp is one simulated in-flight instruction during batch-window
// establishment: the superop whose scoreboard destinations stay pending
// until the simulated writeback at `due`.
type bSimOp struct {
	due uint64
	sop *isa.Superop
}

// Batch-window warp roles. clRun is a participant (mid straightline
// run, issues in-window). The rest are closers, keyed by what gates
// their boundary op beyond the scoreboard: clMem issues once the LSU
// frees, clMemSB/clMemRp never in-window (store buffer full / MSHR
// replay pending — both frozen for the window's duration, since stores
// drain and replays resolve only through events or aged drains that
// clamp the horizon or abort via touch), clSFU once the SFU frees,
// clOther (control, run-tail or diverged ALU) as soon as its
// scoreboard clears.
const (
	clRun = iota
	clMem
	clMemSB
	clMemRp
	clSFU
	clOther
)

// bPart is the simulated state of one batch-window warp — participant
// or closer — whose only in-window interactions are its own scoreboard
// and the writeback ring. pc/end walk the run inside ops (for closers
// pc is pinned at the boundary op and end is unused); pg/pp are the
// simulated pending masks, seeded from the live scoreboard; pend[head:]
// is the simulated in-flight queue, seeded from the warp's pending
// writeback-ring entries and extended by simulated issues, kept sorted
// by due cycle — simulated issues are monotone, but a seeded op from
// just before the run (an SFU result, say) can outlive ALU ops issued
// after it, so insertion is ordered rather than FIFO. The Set masks of
// concurrently pending ops never overlap (a WAW-conflicting op would
// not have issued), so retiring an op can clear its Set bits exactly.
type bPart struct {
	w    *warpCtx
	ops  []isa.Superop
	pc   int32
	end  int32
	cl   uint8
	pg   [4]uint64
	pp   uint8
	pend []bSimOp
	head int
}

// blocked reports whether the participant's next superop conflicts with
// its simulated pending set — ConflictsSop against the evolved masks.
func (p *bPart) blocked() bool {
	s := &p.ops[p.pc]
	return (s.UseG[0]&p.pg[0])|(s.UseG[1]&p.pg[1])|
		(s.UseG[2]&p.pg[2])|(s.UseG[3]&p.pg[3]) != 0 || s.UseP&p.pp != 0
}

// bEvt is one entry of the precomputed issue schedule: participant
// `part` issues its next superop in an issue slot of cycle bStart+off.
// Entries are in slot order within a cycle, so consecutive same-part
// entries are consecutive slots and replay as one core.StepRun.
type bEvt struct {
	off  uint16
	part uint8
}

// batchWindowCap bounds a batch window's length in cycles, keeping the
// precomputed schedule small and bounding how much of it an aborting
// event (which discards the remainder) can waste.
const batchWindowCap = 256

// batchMinWindow is the shortest window worth establishing: replayed
// cycles are the scheduler's cheapest (dep-stalled warps short-circuit on
// the verdict caches), so a window must amortize its establishment scan
// over a meaningful span to break even.
const batchMinWindow = 8

// bPendCap is the slab-backed capacity of each part's simulated pending
// queue. pend accumulates one entry per op the part issues in-window
// (retires advance head without shrinking), so a run longer than this
// spills into a heap-grown slice — correct, just unamortized.
const bPendCap = 64

// tryEstablishBatch attempts to open a batch window at `cycle`. The GTO
// greedy warp must be about to issue from inside a straightline run
// (isa.Decoded.RunLen); every other valid warp joins the simulation as
// a participant (also mid-run, free to issue in-window) or a closer (at
// a run boundary — its first simulated slot win ends the window). Done
// and at-barrier warps are stable for the window's duration. The
// horizon is clamped to the earliest cycle at which anything outside
// the simulated warps' own pipelines can act: a foreign writeback
// (load-line and assist completions included) or store-buffer aging.
// Everything event-driven (fills, compression completions, CTA
// placement) aborts the window via touch() instead.
//
// On success the window's exact issue schedule is simulated into
// bEvents: per cycle, due simulated writebacks retire first (the
// wbPop-before-issue order), then each issue slot picks the first
// issuable warp in scheduler visit order — the greedy warp, then the
// GTO order — exactly as issueSlot does, with issued participants
// re-placed at the back of the simulated order at the cycle boundary,
// in warp slot order among themselves (rebuildOrder's tie-break for
// warps sharing an issue cycle). The window ends at the earliest of:
// the cycle some participant would issue its run's final op, the cycle
// a closer would win a slot (both exclusive — a boundary op is
// scheduler-visible and must go through the normal path, which
// re-derives that cycle's slots identically, possibly dual-issuing the
// boundary op with a run op), the horizon, and batchWindowCap.
//
// A failing slot implies the greedy warp — a participant, visited
// first — is scoreboard-blocked, so the dep flag is always raised and
// the DataDep blame pair names the live greedy warp. The Memory and
// Compute hazard flags vary cycle to cycle as closer scoreboards
// drain (a closer whose conflict clears while its port is still busy
// starts raising memS/compS), so each simulated cycle's classification
// and blame are recorded in the bGap tables. Closers never move in
// the visit order and participants never raise those flags, so the
// first-raiser-in-visit-order blame rule reduces to the first raising
// closer in establishment scan order.
func (sm *SM) tryEstablishBatch(cycle uint64) bool {
	cfg := sm.sim.Cfg
	if cfg.Scheduler != config.SchedGTO || cfg.Interpreter || cycle < sm.bSkip {
		return false
	}
	// The establishment scan models SFU closers as blocked while the
	// port's initiation interval runs, but memoization can issue such a
	// warp through the probe path — the precomputed schedule would
	// diverge from live ticking. No batch windows with memoization on.
	if sm.memo != nil {
		return false
	}
	// The greedy warp must issue in the window's very first slot. This
	// keeps the establishment scan cheap on ticks where no window is
	// plausible, and guarantees the greedy warp is a participant from
	// the first cycle on (the DataDep blame argument above).
	g := sm.greedy
	if g == nil || !g.valid || g.idle || g.depStalled {
		return false
	}
	in := g.exec.CurrentSop()
	if in == nil || in.Class != isa.ClassALU || !g.exec.Straightline() {
		return false
	}
	if g.exec.Prog.Decoded().RunLen[in.PC] < 2 || g.sb.ConflictsSop(in) {
		return false
	}
	// Non-warp actors, as in quiescent(): any of these acting during the
	// window would interleave with the replayed schedule.
	if len(sm.decompRetry) > 0 || len(sm.replayQ) > 0 || !sm.awc.Idle() {
		return false
	}
	// Warps: every valid warp with a current instruction enters the
	// simulation — mid-run warps as participants, boundary-headed warps
	// as closers — in GTO order, so bScr index order is scheduler visit
	// order among non-movers. Done and at-barrier warps are stable
	// (participants issue no barriers and cannot exit mid-run; their
	// idle blame is irrelevant — the blocked greedy warp raises the
	// higher-precedence dep flag on every failing slot).
	if len(sm.bSlab) < len(sm.warps)*bPendCap {
		// One-shot scratch pre-sizing (bSlab also backs pend below). The
		// caps are the structural bounds — one part per warp slot, one
		// gap entry per window cycle, NumSchedulers issues per cycle —
		// so steady state never grows them; appends stay as safe
		// fallbacks if a bound is ever loosened.
		nw := len(sm.warps)
		sm.bSlab = make([]bSimOp, nw*bPendCap)
		sm.bScr = make([]bPart, 0, nw)
		sm.bOrd = make([]int32, 0, nw)
		sm.bIssued = make([]int32, 0, nw)
		sm.bParts = make([]*warpCtx, 0, nw)
		sm.bPartOps = make([][]isa.Superop, 0, nw)
		sm.bEvents = make([]bEvt, 0, cfg.NumSchedulers*batchWindowCap)
		sm.bGapKind = make([]stats.StallKind, 0, batchWindowCap)
		sm.bGapW = make([]int32, 0, batchWindowCap)
		sm.bGapC = make([]obs.Cause, 0, batchWindowCap)
	}
	horizon := cycle + batchWindowCap
	np := 0
	gi := -1
	for _, wi := range sm.order {
		ww := sm.warps[wi]
		if !ww.valid {
			continue
		}
		in2 := ww.exec.CurrentSop()
		if in2 == nil {
			continue
		}
		if np == 255 {
			return false // bEvt.part is a uint8
		}
		if np == len(sm.bScr) {
			sm.bScr = append(sm.bScr, bPart{
				pend: sm.bSlab[np*bPendCap : np*bPendCap : (np+1)*bPendCap],
			})
		}
		p := &sm.bScr[np]
		p.w = ww
		p.pg, p.pp = ww.sb.Masks()
		p.pend, p.head = p.pend[:0], 0
		d2 := ww.exec.Prog.Decoded()
		p.ops, p.pc = d2.Ops, in2.PC
		if in2.Class == isa.ClassALU && ww.exec.Straightline() && d2.RunLen[in2.PC] >= 1 {
			p.end = in2.PC + d2.RunLen[in2.PC]
			p.cl = clRun
			if ww == g {
				gi = np
			}
		} else {
			// Closer. The store-buffer and replay-queue gates are frozen
			// for the window's duration (stores drain and replays
			// resolve only via events or aged drains, which clamp the
			// horizon or abort via touch), so the sub-kind is decided
			// once here.
			p.end = 0
			gate := true // boundary op's port gate open at `cycle`
			switch in2.Class {
			case isa.ClassMem:
				switch {
				case in2.GlobalMem && in2.StoreOp &&
					len(sm.storeBuf) >= storeBufCap && !sm.canEvictStore():
					p.cl, gate = clMemSB, false
				case in2.GlobalMem && ww.replay != nil:
					p.cl, gate = clMemRp, false
				default:
					p.cl, gate = clMem, cycle >= sm.lsuFree
				}
			case isa.ClassSFU:
				p.cl, gate = clSFU, cycle >= sm.sfuFree
			default:
				p.cl = clOther
			}
			if gate && !ww.sb.ConflictsSop(in2) {
				// A ready closer: its boundary op wins an issue slot
				// within a cycle or two (only a standing supply of
				// unblocked participants ahead of it in visit order
				// could shield it for longer, and the simulation cost
				// of discovering such windows outweighs them), so the
				// window is not worth simulating. Bail mid-scan with
				// the same exponential backoff as a short-window
				// failure: on memory-active phases one ready closer is
				// followed by another, and the O(warps) scan every
				// cycle is the establishment path's dominant cost.
				if sm.bSkipLen < 4 {
					sm.bSkipLen = 4
				} else if sm.bSkipLen < 256 {
					sm.bSkipLen *= 2
				}
				sm.bSkip = cycle + sm.bSkipLen
				return false
			}
		}
		np++
	}
	if gi < 0 {
		return false
	}
	parts := sm.bScr[:np]
	// A retirable CTA means the normal tick would retire it and dispatch
	// fresh work.
	for _, cta := range sm.ctas {
		if cta.liveWarps != 0 {
			continue
		}
		retirable := true
		for _, ww := range cta.warps {
			if ww.inFlight > 0 || ww.pendingLoads > 0 || ww.replay != nil {
				retirable = false
				break
			}
		}
		if retirable {
			return false
		}
	}
	// Store buffer: a due drain acts now; future aging bounds the window.
	bufFull := len(sm.storeBuf) >= storeBufCap*3/4
	for _, se := range sm.storeBuf {
		if se.state != sbPending {
			continue
		}
		if bufFull || cycle-se.lastTouch >= storeDrainAge {
			return false
		}
		if t := se.lastTouch + storeDrainAge; t < horizon {
			horizon = t
		}
	}
	// Writeback ring: participants' own pending entries seed their
	// simulated in-flight FIFOs (scanned in due order); anything else —
	// another warp's writeback, a load-line completion, an assist
	// completion — acts outside the plan and clamps the horizon.
	partOf := sm.bPartOf
	if cap(partOf) < len(sm.warps) {
		partOf = make([]int16, len(sm.warps))
		sm.bPartOf = partOf
	}
	partOf = partOf[:len(sm.warps)]
	for i := range partOf {
		partOf[i] = -1
	}
	for i := range parts {
		partOf[parts[i].w.id] = int16(i)
	}
	for d := uint64(1); d <= sm.wbMask; d++ {
		due := cycle + d
		bucket := sm.wbRing[due&sm.wbMask]
		for i := range bucket {
			rec := &bucket[i]
			if rec.kind == wbWarp {
				if pi := partOf[rec.w.id]; pi >= 0 {
					p := &parts[pi]
					p.pend = append(p.pend, bSimOp{due: due, sop: rec.sop})
					continue
				}
			}
			if due < horizon {
				horizon = due
			}
		}
	}
	if horizon-cycle < batchMinWindow {
		return false // too short to beat the per-cycle path
	}
	// Simulate the scheduler over the participants and closers, cycle by
	// cycle, into the event schedule and the per-cycle gap tables.
	sched := cfg.NumSchedulers
	lat := uint64(cfg.ALULatency)
	ord := sm.bOrd[:0]
	for i := range parts {
		ord = append(ord, int32(i))
	}
	events := sm.bEvents[:0]
	gapK := sm.bGapKind[:0]
	gapW := sm.bGapW[:0]
	gapC := sm.bGapC[:0]
	blame := sm.attr != nil
	issued := sm.bIssued[:0]
	gcur := gi
	until := horizon
	c := cycle
	// Cached gap classification. Warp readiness only changes at simulated
	// writeback retires and at the lsuFree/sfuFree thresholds; between
	// those points every zero-issue cycle replays identically, so the
	// classification is computed once per change (dirty) and zero-issue
	// spans are jumped over wholesale below.
	dirty := true
	ckind := stats.DataDepStall
	var cbw int32
	var cbc obs.Cause
simloop:
	for c < horizon {
		if c == sm.lsuFree || c == sm.sfuFree {
			dirty = true // a port freed: mem/sfu blame causes may shift
		}
		for i := range parts {
			p := &parts[i]
			for p.head < len(p.pend) && p.pend[p.head].due <= c {
				s := p.pend[p.head].sop
				p.pg[0] &^= s.SetG[0]
				p.pg[1] &^= s.SetG[1]
				p.pg[2] &^= s.SetG[2]
				p.pg[3] &^= s.SetG[3]
				p.pp &^= s.SetP
				p.head++
				dirty = true
			}
		}
		issued = issued[:0]
		for k := 0; k < sched; k++ {
			pi := -1
			if !parts[gcur].blocked() {
				pi = gcur
			} else {
				for _, oi := range ord {
					if int(oi) == gcur {
						continue
					}
					p := &parts[oi]
					if p.blocked() {
						continue
					}
					switch p.cl {
					case clRun:
						pi = int(oi)
					case clMem:
						if c < sm.lsuFree {
							continue
						}
					case clSFU:
						if c < sm.sfuFree {
							continue
						}
					case clMemSB, clMemRp:
						continue
					}
					if pi < 0 {
						// A closer would win this slot: its boundary op
						// is scheduler-visible, so the window ends
						// before this cycle, which re-runs through the
						// normal path (re-deriving this cycle's earlier
						// slots identically).
						until = c
						for len(events) > 0 && events[len(events)-1].off == uint16(c-cycle) {
							events = events[:len(events)-1]
						}
						break simloop
					}
					break
				}
			}
			if pi < 0 {
				break
			}
			p := &parts[pi]
			s := &p.ops[p.pc]
			pe := append(p.pend, bSimOp{})
			j := len(pe) - 1
			for j > p.head && pe[j-1].due > c+lat {
				pe[j] = pe[j-1]
				j--
			}
			pe[j] = bSimOp{due: c + lat, sop: s}
			p.pend = pe
			p.pg[0] |= s.SetG[0]
			p.pg[1] |= s.SetG[1]
			p.pg[2] |= s.SetG[2]
			p.pg[3] |= s.SetG[3]
			p.pp |= s.SetP
			p.pc++
			gcur = pi
			events = append(events, bEvt{off: uint16(c - cycle), part: uint8(pi)})
			issued = append(issued, int32(pi))
			if p.pc == p.end {
				// p's run ends here: the window closes before this
				// cycle, which re-runs through the normal path (and may
				// dual-issue the op that follows the run).
				until = c
				for len(events) > 0 && events[len(events)-1].off == uint16(c-cycle) {
					events = events[:len(events)-1]
				}
				break simloop
			}
		}
		// Classify this cycle's failing slots, if any, exactly as
		// issueSlot would: the blocked greedy participant raises dep
		// first; unblocked-but-port-gated closers raise memS/compS, in
		// visit order (bScr order — closers never move, participants
		// never raise these flags). An unblocked, ungated closer cannot
		// be live here: the slot loop would have ended the window.
		if len(issued) < sched {
			if dirty {
				dirty = false
				ckind, cbw, cbc = stats.DataDepStall, 0, 0
				compW := int32(-1)
				var compC obs.Cause
				for i := range parts {
					p := &parts[i]
					if p.cl == clRun || p.blocked() {
						continue
					}
					switch p.cl {
					case clMem, clMemSB, clMemRp:
						ckind = stats.MemoryStall
						if blame {
							cbw = int32(p.w.id)
							switch {
							case c < sm.lsuFree:
								cbc = obs.CauseLSUBusy
							case p.cl == clMemSB:
								cbc = obs.CauseStoreBufFull
							default:
								// pf.lines is frozen inside a window (fills
								// abort it), so this matches the live tick.
								cbc = sm.mshrCause()
							}
						}
					case clSFU:
						if compW < 0 {
							compW, compC = int32(p.w.id), obs.CauseSFUBusy
						}
					}
					if ckind == stats.MemoryStall {
						break
					}
				}
				if ckind != stats.MemoryStall && compW >= 0 {
					ckind, cbw, cbc = stats.ComputeStall, compW, compC
				}
			}
			gapK = append(gapK, ckind)
			gapW = append(gapW, cbw)
			gapC = append(gapC, cbc)
		} else {
			gapK = append(gapK, stats.DataDepStall)
			gapW = append(gapW, 0)
			gapC = append(gapC, 0)
		}
		// Re-place issued participants at the back of the visit order,
		// in warp slot order among themselves.
		for i := 1; i < len(issued); i++ {
			for j := i; j > 0 && parts[issued[j]].w.id < parts[issued[j-1]].w.id; j-- {
				issued[j], issued[j-1] = issued[j-1], issued[j]
			}
		}
		prev := int32(-1)
		for _, pi := range issued {
			if pi == prev {
				continue
			}
			prev = pi
			for x, oi := range ord {
				if oi == pi {
					copy(ord[x:], ord[x+1:])
					ord[len(ord)-1] = pi
					break
				}
			}
		}
		if len(issued) == 0 {
			// Nothing issued and nothing moved: every cycle until the
			// next simulated writeback retire or port-free threshold
			// replays this one exactly (no scoreboard release can unblock
			// a warp, no gate can open). Jump there, filling the gap
			// tables with the cached classification.
			next := horizon
			for i := range parts {
				p := &parts[i]
				if p.head < len(p.pend) && p.pend[p.head].due < next {
					next = p.pend[p.head].due
				}
			}
			if c < sm.lsuFree && sm.lsuFree < next {
				next = sm.lsuFree
			}
			if c < sm.sfuFree && sm.sfuFree < next {
				next = sm.sfuFree
			}
			for c+1 < next {
				gapK = append(gapK, ckind)
				gapW = append(gapW, cbw)
				gapC = append(gapC, cbc)
				c++
			}
		}
		c++
	}
	if until > c {
		until = c
	}
	sm.bOrd, sm.bIssued = ord, issued
	sm.bEvents = events
	sm.bGapKind, sm.bGapW, sm.bGapC = gapK, gapW, gapC
	if until-cycle < batchMinWindow {
		if sm.bSkipLen < 4 {
			sm.bSkipLen = 4
		} else if sm.bSkipLen < 256 {
			sm.bSkipLen *= 2
		}
		sm.bSkip = cycle + sm.bSkipLen
		return false
	}
	bp, bo := sm.bParts[:0], sm.bPartOps[:0]
	for i := range parts {
		bp = append(bp, parts[i].w)
		bo = append(bo, parts[i].ops)
	}
	sm.bParts, sm.bPartOps = bp, bo
	sm.bEvtHead = 0
	sm.bValid = true
	sm.bStart, sm.bUntil = cycle, until
	// The replay never runs rebuildOrder; force a full rebuild — which
	// reproduces the incremental maintenance exactly — at the first
	// normal tick after the window, off the final lastIssueCycle values.
	sm.orderDirty = true
	return true
}

// batchTick replays one precomputed cycle of the batch window: due
// writebacks retire first (participants' own chains — everything else
// is past the horizon), then the cycle's scheduled issues execute as
// macro-steps through core.StepRun with the per-op architected effects
// (scoreboard marks, writeback ring entries, instruction and class
// counters, greedy and lastIssueCycle updates) applied exactly as
// issueRegular would, and the slot accounting — AWC utilization notes
// in slot order, issue-slot stats, stall attribution — replayed from
// the window's constant classification. Consecutive same-warp schedule
// entries are consecutive issue slots and run as one StepRun call.
func (sm *SM) batchTick(cycle uint64) {
	sm.wbPop(cycle)
	sm.cycle = cycle
	sched := sm.sim.Cfg.NumSchedulers
	lat := uint64(sm.sim.Cfg.ALULatency)
	off := uint16(cycle - sm.bStart)
	k := 0
	for sm.bEvtHead < len(sm.bEvents) && sm.bEvents[sm.bEvtHead].off == off {
		pi := sm.bEvents[sm.bEvtHead].part
		sm.bEvtHead++
		n := 1
		for sm.bEvtHead < len(sm.bEvents) &&
			sm.bEvents[sm.bEvtHead].off == off && sm.bEvents[sm.bEvtHead].part == pi {
			sm.bEvtHead++
			n++
		}
		w := sm.bParts[pi]
		ops := sm.bPartOps[pi]
		pc := w.exec.PC
		for j := 0; j < n; j++ {
			sop := &ops[pc+j]
			w.sb.MarkSop(sop)
			w.inFlight++
			sm.wbAdd(cycle+lat, wbRec{kind: wbWarp, sop: sop, w: w})
		}
		ti, ok := w.exec.StepRun(n)
		if !ok || w.exec.Err != nil {
			err := w.exec.Err
			if err == nil {
				err = fmt.Errorf("step refused inside straightline run at pc %d", w.exec.PC)
			}
			sm.fail(fmt.Errorf("gpu: sm%d warp %d: %w", sm.id, w.id, err))
			return
		}
		w.lastIssueCycle = cycle
		sm.greedy = w
		un := uint64(n)
		sm.stat.WarpInstrs += un
		sm.stat.ThreadInstrs += ti
		sm.stat.ALUInstrs += un // countClass: runs are pure ALU
		sm.stat.IssueSlots[stats.Active] += un
		for j := 0; j < n; j++ {
			sm.awc.NoteIssueSlot(true)
		}
		k += n
	}
	if k < sched {
		n := uint64(sched - k)
		kind := sm.bGapKind[off]
		sm.stat.IssueSlots[kind] += n
		if sm.attr != nil {
			if kind == stats.DataDepStall {
				// A failing slot visits the greedy warp — the last
				// issuer — first, and always finds it scoreboard-
				// blocked (an unblocked participant would have issued).
				sm.attr.Charge(sm.greedy.id, obs.CauseScoreboard, n)
			} else {
				sm.attr.Charge(int(sm.bGapW[off]), sm.bGapC[off], n)
			}
		}
		sm.awc.NoteIdleSlots(sched - k)
	}
	sm.qTry = k == 0
}

// issueSlot tries to issue one instruction and classifies the slot. A
// slot that issues nothing is classified by classify (Memory > Compute >
// DataDep > Idle, shared with quiescent) and, when attribution is on,
// charged to exactly one (warp, cause) pair via chargeSlot.
func (sm *SM) issueSlot() stats.StallKind {
	var f slotFlags
	if sm.attr != nil {
		f.initBlame()
	}

	// High-priority assist warps issue with precedence (Section 3.2.3):
	// they are the fill critical path that blocked warps are waiting on,
	// and killing their latency is what keeps CABA competitive with
	// dedicated logic.
	for _, e := range sm.awc.Entries() {
		if e.Pri == core.PriHigh && e.Staged > 0 {
			ok, dep, memS, compS := sm.tryIssueAssist(e)
			if ok {
				return stats.Active
			}
			f.dep = f.dep || dep
			f.memS = f.memS || memS
			f.compS = f.compS || compS
			if f.blame {
				f.noteAssist(e.Warp, dep, memS, compS)
			}
		}
	}

	// GTO: greedy on the last warp, then oldest (least-recently issued).
	// LRR skips the greedy step and rotates.
	if sm.sim.Cfg.Scheduler == config.SchedGTO {
		if g := sm.greedy; g != nil && g.valid && sm.tryWarp(g, &f) {
			return stats.Active
		}
	}
	for _, wi := range sm.order {
		w := sm.warps[wi]
		if w == sm.greedy {
			continue
		}
		if sm.tryWarp(w, &f) {
			sm.greedy = w
			return stats.Active
		}
	}

	// Idle slot: low-priority assist warps (Section 3.2.3 — scheduled
	// only during idle cycles).
	for _, e := range sm.awc.LowEntries() {
		if e.Staged == 0 {
			continue
		}
		if ok, _, _, _ := sm.tryIssueAssist(e); ok {
			return stats.Active
		}
		if f.blame && f.idleAW < 0 {
			f.idleAW = e.Warp
		}
	}

	kind := classify(&f)
	if sm.attr != nil {
		sm.chargeSlot(kind, &f)
	}
	return kind
}

// tryWarp attempts to issue for one warp: its high-priority assist warp
// first (which takes precedence over the parent, Section 3.2.3), then its
// own next instruction.
func (sm *SM) tryWarp(w *warpCtx, f *slotFlags) bool {
	if !w.valid {
		return false
	}
	// Replay verdicts already proven: a dependence failure (and its blame
	// pair) holds until one of this warp's scoreboard bits clears; a
	// done/at-barrier verdict holds until a barrier release or a fresh
	// CTA placement.
	if w.depStalled {
		f.dep = true
		if f.blame && f.depW < 0 {
			f.depW, f.depC = w.id, sm.depCause(w)
		}
		return false
	}
	if w.idle {
		if f.blame {
			f.noteIdleWarp(w)
		}
		return false
	}
	in := w.exec.CurrentSop()
	if in == nil {
		// Done or at barrier: contributes to idle.
		w.idle = true
		if f.blame {
			f.noteIdleWarp(w)
		}
		return false
	}
	if w.sb.ConflictsSop(in) {
		w.depStalled = true
		f.dep = true
		if f.blame && f.depW < 0 {
			f.depW, f.depC = w.id, sm.depCause(w)
		}
		return false
	}
	ok, memS, compS := sm.portsAvailable(in)
	if !ok {
		// A saturated SFU port is exactly where the memoization use case
		// adds throughput: a result-cache hit issues through a probe
		// assist instead of waiting for the port.
		if compS && sm.memo != nil && in.Class == isa.ClassSFU && sm.tryMemoIssue(w, in) {
			return true
		}
		f.memS = f.memS || memS
		f.compS = f.compS || compS
		if f.blame {
			if memS && f.memW < 0 {
				f.memW, f.memC = w.id, sm.portCause(in)
			} else if compS && f.compW < 0 {
				f.compW, f.compC = w.id, sm.portCause(in)
			}
		}
		return false
	}
	// One load at a time may sit in the replay queue per warp: a second
	// global access waits for the first's MSHR-overflow lines to drain.
	if in.GlobalMem && w.replay != nil {
		f.memS = true
		if f.blame && f.memW < 0 {
			f.memW, f.memC = w.id, sm.mshrCause()
		}
		return false
	}
	sm.issueRegular(w, in)
	return true
}

// rebuildOrder maintains the scheduling order. LRR rotates round-robin
// from the slot after the last issuer every tick. GTO (oldest-first,
// stable on warp slot) is kept incrementally: a full filter+sort only
// after validity changes (orderDirty); otherwise each warp that issued
// last tick is re-placed at the back, which reproduces the stable sort
// exactly — issued warps share the previous tick's (maximal) issue cycle,
// and ties within that group are restored to slot order.
func (sm *SM) rebuildOrder() {
	if sm.sim.Cfg.Scheduler == config.SchedLRR {
		sm.issuedBuf = sm.issuedBuf[:0]
		sm.order = sm.order[:0]
		start := 0
		if sm.greedy != nil {
			start = sm.greedy.id + 1
		}
		n := len(sm.warps)
		for i := 0; i < n; i++ {
			wi := (start + i) % n
			if sm.warps[wi].valid {
				sm.order = append(sm.order, int32(wi))
			}
		}
		return
	}
	if sm.orderDirty {
		sm.orderDirty = false
		sm.issuedBuf = sm.issuedBuf[:0]
		sm.order = sm.order[:0]
		for i, w := range sm.warps {
			if w.valid {
				sm.order = append(sm.order, int32(i))
			}
		}
		cyc := func(wi int32) uint64 { return sm.warps[wi].lastIssueCycle }
		for i := 1; i < len(sm.order); i++ {
			for j := i; j > 0 && cyc(sm.order[j]) < cyc(sm.order[j-1]); j-- {
				sm.order[j], sm.order[j-1] = sm.order[j-1], sm.order[j]
			}
		}
		return
	}
	if len(sm.issuedBuf) > 0 {
		for _, w := range sm.issuedBuf {
			sm.orderMoveToBack(w)
		}
		sm.issuedBuf = sm.issuedBuf[:0]
	}
}

// orderMoveToBack re-places w (which just issued, so its lastIssueCycle is
// maximal) at the back of the GTO order, keeping equal-cycle ties in warp
// slot order.
func (sm *SM) orderMoveToBack(w *warpCtx) {
	id := int32(w.id)
	pos := -1
	for i, o := range sm.order {
		if o == id {
			pos = i
			break
		}
	}
	if pos < 0 {
		return
	}
	n := len(sm.order)
	copy(sm.order[pos:], sm.order[pos+1:])
	k := n - 1
	for k > pos {
		p := sm.warps[sm.order[k-1]]
		if p.lastIssueCycle != w.lastIssueCycle || p.id <= w.id {
			break
		}
		sm.order[k] = sm.order[k-1]
		k--
	}
	sm.order[k] = id
}

// portsAvailable checks structural hazards for an op class; (ok, memStall,
// compStall).
func (sm *SM) portsAvailable(in *isa.Superop) (bool, bool, bool) {
	switch in.Class {
	case isa.ClassMem:
		if sm.lsuPorts == 0 || sm.cycle < sm.lsuFree {
			return false, true, false
		}
		if in.GlobalMem && in.StoreOp &&
			len(sm.storeBuf) >= storeBufCap && !sm.canEvictStore() {
			return false, true, false
		}
	case isa.ClassSFU:
		if sm.cycle < sm.sfuFree {
			return false, false, true
		}
	case isa.ClassALU:
		if sm.aluPorts == 0 {
			return false, false, true
		}
	}
	return true, false, false
}

// portCause names the specific structural resource behind a
// portsAvailable failure, for stall attribution. Only called (blame
// armed) after portsAvailable returned false for in, so the branches
// mirror its failing conditions exactly.
func (sm *SM) portCause(in *isa.Superop) obs.Cause {
	switch in.Class {
	case isa.ClassMem:
		if sm.lsuPorts == 0 || sm.cycle < sm.lsuFree {
			return obs.CauseLSUBusy
		}
		return obs.CauseStoreBufFull
	case isa.ClassSFU:
		return obs.CauseSFUBusy
	default:
		return obs.CauseALUBusy
	}
}

// canEvictStore reports whether the store buffer has a releasable entry.
func (sm *SM) canEvictStore() bool {
	for _, se := range sm.storeBuf {
		if se.state == sbPending || se.state == sbQueued {
			return true
		}
	}
	return false
}

// findStore returns the buffered entry for lineAddr, or nil.
func (sm *SM) findStore(ln uint64) *storeEntry {
	for _, se := range sm.storeBuf {
		if se.lineAddr == ln {
			return se
		}
	}
	return nil
}

// removeStore unlinks se from the buffer, preserving age order.
func (sm *SM) removeStore(se *storeEntry) {
	for i, x := range sm.storeBuf {
		if x == se {
			sm.storeBuf = append(sm.storeBuf[:i], sm.storeBuf[i+1:]...)
			return
		}
	}
}

// --- Regular instruction issue ---

func (sm *SM) issueRegular(w *warpCtx, in *isa.Superop) {
	// Memoization consults the result cache with the instruction's content
	// hash, read before StepRef moves the register file (a source may
	// alias the destination). A free SFU port always executes directly —
	// probing only pays when the port is the bottleneck (tryMemoIssue) —
	// but misses install their freshly computed result for later reuse.
	var memoKey uint64
	memoMiss := false
	if sm.memo != nil && in.Class == isa.ClassSFU {
		memoKey = memoKeyFor(w.exec, in)
		memoMiss = !sm.memo.lookup(memoKey)
	}
	info, ok := w.exec.StepRef()
	if !ok {
		return
	}
	if w.exec.Err != nil {
		// A kernel-program fault (e.g. an out-of-range shared store) kills
		// the run with a structured error instead of a process panic.
		sm.fail(fmt.Errorf("gpu: sm%d warp %d: %w", sm.id, w.id, w.exec.Err))
		return
	}
	w.lastIssueCycle = sm.cycle
	sm.issuedBuf = append(sm.issuedBuf, w)
	sm.stat.WarpInstrs++
	sm.stat.ThreadInstrs += uint64(popcount32(info.ExecMask))
	sm.countClass(in)

	switch in.Class {
	case isa.ClassALU:
		sm.aluPorts--
		sm.finishAfter(w, in, uint64(sm.sim.Cfg.ALULatency))
	case isa.ClassSFU:
		sm.sfuFree = sm.cycle + 4 // initiation interval
		sm.finishAfter(w, in, uint64(sm.sim.Cfg.SFULatency))
		if memoMiss {
			sm.stat.MemoMisses++
			if sm.tryMemoSave(w, memoKey) {
				sm.memo.insert(memoKey)
				sm.stat.MemoUpdates++
			}
		}
	case isa.ClassMem:
		sm.lsuPorts--
		sm.issueMemory(w, in, info)
	case isa.ClassCtrl:
		sm.handleControl(w, in)
	}
	if w.exec.Done {
		sm.noteWarpDone(w)
	}
}

// finishAfter scoreboards in's destinations for lat cycles. The exec's PC
// moves on, but superops are immutable per kernel, so the ring record
// keeps only the pointer.
func (sm *SM) finishAfter(w *warpCtx, in *isa.Superop, lat uint64) {
	w.sb.MarkSop(in)
	w.inFlight++
	sm.wbAdd(sm.cycle+lat, wbRec{kind: wbWarp, sop: in, w: w})
}

func (sm *SM) handleControl(w *warpCtx, in *isa.Superop) {
	switch in.Op {
	case isa.OpBar:
		cta := w.cta
		cta.atBarrier++
		if cta.atBarrier >= cta.liveWarps {
			cta.atBarrier = 0
			for _, ww := range cta.warps {
				ww.exec.ReleaseBarrier()
				ww.idle = false
			}
		}
	}
}

// noteWarpDone handles a warp that finished execution on this issue
// (explicit exit or falling off the program end).
func (sm *SM) noteWarpDone(w *warpCtx) {
	cta := w.cta
	cta.liveWarps--
	if cta.liveWarps == 0 {
		sm.drainingCTAs++
	}
	// A warp exiting releases any barrier its siblings wait at.
	if cta.liveWarps > 0 && cta.atBarrier >= cta.liveWarps {
		cta.atBarrier = 0
		for _, ww := range cta.warps {
			if !ww.exec.Done {
				ww.exec.ReleaseBarrier()
				ww.idle = false
			}
		}
	}
}

// issueMemory handles shared/global/staging accesses of regular warps.
func (sm *SM) issueMemory(w *warpCtx, in *isa.Superop, info *core.StepInfo) {
	if !in.GlobalMem {
		// Shared memory: fixed short latency.
		sm.finishAfter(w, in, uint64(sm.sim.Cfg.L1Latency))
		return
	}
	lines := coalesceInto(&sm.lineBuf, &info.Addrs, info.ExecMask, sm.sim.Cfg.LineSize)
	sm.lsuFree = sm.cycle + uint64(len(lines)) // coalescer throughput

	if in.Op == isa.OpStGlobal || in.Op == isa.OpAtomAdd {
		for _, ln := range lines {
			sm.storeToBuffer(w, ln, info)
		}
	}
	if in.Op == isa.OpLdGlobal || in.Op == isa.OpAtomAdd {
		req := &loadReq{warp: w, sop: in, issued: sm.cycle}
		w.sb.MarkSop(in)
		w.inFlight++
		w.pendingLoads++
		trained := false
		for _, ln := range lines {
			if in.Op == isa.OpLdGlobal && sm.l1Lookup(ln, req) {
				continue // L1 hit path scheduled
			}
			// Miss (or atomic, which bypasses L1).
			req.linesPending++
			sm.stat.L1Misses++
			// The stride unit trains on the access's first missing line
			// (divergent accesses would otherwise feed it intra-access
			// deltas instead of the stream's stride).
			if sm.pf != nil && !trained && in.Op == isa.OpLdGlobal {
				trained = true
				sm.pfTrain(w, in.PC, ln)
			}
			sm.fetchOrReplay(req, ln)
		}
		if len(req.todo) > 0 {
			w.replay = req
			sm.replayQ = append(sm.replayQ, req)
		}
		if req.linesPending == 0 && len(req.todo) == 0 {
			// Guard predicate disabled every lane: nothing to wait for.
			w.sb.ClearSop(in)
			w.depStalled = false
			w.inFlight--
			w.pendingLoads--
		}
	} else {
		// Pure store: retires once buffered.
		sm.finishAfter(w, in, 1)
	}
}

// l1Lookup probes the L1 for a load line; on hit it schedules completion
// (including any capacity-mode decompression) and returns true.
func (sm *SM) l1Lookup(ln uint64, req *loadReq) bool {
	if !sm.l1.Lookup(ln, false) {
		return false
	}
	sm.stat.L1Hits++
	if sm.pf != nil && sm.pf.noteHit(ln) {
		sm.stat.PrefetchUseful++
	}
	lat := uint64(sm.sim.Cfg.L1Latency)
	// Figure 13: L1-resident compressed lines pay decompression on every
	// hit.
	if sm.sim.Design.L1TagMult > 1 {
		if st := sm.domState(ln); st.IsCompressed() && sm.l1.LineSizeOf(ln) < sm.sim.Cfg.LineSize {
			switch sm.sim.Design.Decomp {
			case config.DecompHW:
				d, _ := compress.HWLatency(sm.sim.Design.Alg)
				lat += uint64(d)
			case config.DecompCABA:
				// Run the decompression assist warp before the hit
				// completes.
				req.linesPending++
				// L1-resident lines were checked on fill; never injected.
				sm.triggerDecompAW(ln, st, req.warp.id, false, cont{kind: contLoadLineDone, req: req})
				return true
			}
		}
	}
	req.linesPending++
	sm.wbAdd(sm.cycle+lat, wbRec{kind: wbLoad, req: req})
	return true
}

// fetchOrReplay sends a missing line to memory, or queues it for replay
// when the MSHR is full (the LSU retries it in later cycles, as real
// coalescers do with split transactions).
func (sm *SM) fetchOrReplay(req *loadReq, ln uint64) {
	if primary, ok := sm.mshr.Add(ln, req); ok {
		if primary {
			if sm.tr != nil {
				sm.traceMSHRBegin(ln)
			}
			sm.sysReadLine(ln, &fillCtx{kind: fillLoad, load: req})
		}
		return
	}
	req.todo = append(req.todo, ln)
}

// processReplays retries MSHR-overflow lines, one LSU slot per line.
func (sm *SM) processReplays() {
	for len(sm.replayQ) > 0 {
		req := sm.replayQ[0]
		for len(req.todo) > 0 {
			if sm.cycle < sm.lsuFree || sm.mshr.Full() {
				return
			}
			ln := req.todo[0]
			if primary, ok := sm.mshr.Add(ln, req); ok {
				req.todo = req.todo[1:]
				sm.lsuFree = sm.cycle + 1
				if primary {
					if sm.tr != nil {
						sm.traceMSHRBegin(ln)
					}
					sm.sysReadLine(ln, &fillCtx{kind: fillLoad, load: req})
				}
				continue
			}
			return
		}
		req.todo = nil
		if req.warp.replay == req {
			req.warp.replay = nil
		}
		sm.replayQ = sm.replayQ[1:]
	}
}

// loadLineDone retires one line of a load; the last line completes the
// instruction.
func (sm *SM) loadLineDone(req *loadReq) {
	sm.touch()
	req.linesPending--
	if req.linesPending > 0 {
		return
	}
	w := req.warp
	w.sb.ClearSop(req.sop)
	w.depStalled = false
	w.inFlight--
	w.pendingLoads--
	sm.stat.LoadCount++
	sm.stat.LoadLatTotal += sm.cycle - req.issued
}

// coalesceInto merges per-lane addresses into unique cache lines using
// the caller's scratch buffer.
func coalesceInto(buf *[]uint64, addrs *[core.WarpSize]uint64, mask uint32, lineSize int) []uint64 {
	lines := (*buf)[:0]
	for lane := 0; lane < core.WarpSize; lane++ {
		if mask&(1<<lane) == 0 {
			continue
		}
		la := addrs[lane] &^ uint64(lineSize-1)
		found := false
		for _, x := range lines {
			if x == la {
				found = true
				break
			}
		}
		if !found {
			lines = append(lines, la)
		}
	}
	*buf = lines
	return lines
}

// --- Store buffer ---

// storeToBuffer merges a store's words into the pending-store buffer.
func (sm *SM) storeToBuffer(w *warpCtx, ln uint64, info *core.StepInfo) {
	se := sm.findStore(ln)
	if se == nil {
		if len(sm.storeBuf) >= storeBufCap {
			sm.evictOldestStore()
		}
		se = &storeEntry{lineAddr: ln}
		sm.storeBuf = append(sm.storeBuf, se)
	}
	se.warp = w.id
	se.lastTouch = sm.cycle
	for lane := 0; lane < core.WarpSize; lane++ {
		if info.ExecMask&(1<<lane) == 0 {
			continue
		}
		if info.Addrs[lane]&^uint64(sm.sim.Cfg.LineSize-1) != ln {
			continue
		}
		word := (info.Addrs[lane] % uint64(sm.sim.Cfg.LineSize)) / 4
		se.coverage |= 1 << word
		if info.Width == 8 && word < 31 {
			se.coverage |= 1 << (word + 1)
		}
	}
}

// evictOldestStore releases the oldest pending entry uncompressed
// (Section 4.2.2: on overflow, stores go out raw).
func (sm *SM) evictOldestStore() {
	for i, se := range sm.storeBuf {
		if se.state != sbPending && se.state != sbQueued {
			continue
		}
		se.released = true // abandon any queued compression chain
		sm.storeBuf = append(sm.storeBuf[:i], sm.storeBuf[i+1:]...)
		sm.stat.StoreBufferFlushes++
		if sm.sim.Design.Scope == config.ScopeL2 {
			sm.domSetRaw(se.lineAddr)
		}
		sm.sysWriteLine(se.lineAddr)
		return
	}
}

// drainStores ages the buffer and launches compression/writeback.
// beginDrain may release the entry synchronously (removing it from the
// buffer), so the walk re-checks the slot before advancing.
func (sm *SM) drainStores() {
	for i := 0; i < len(sm.storeBuf); {
		se := sm.storeBuf[i]
		if se.state == sbPending &&
			(sm.cycle-se.lastTouch >= storeDrainAge || len(sm.storeBuf) >= storeBufCap*3/4) {
			sm.beginDrain(se)
		}
		if i < len(sm.storeBuf) && sm.storeBuf[i] == se {
			i++
		}
	}
}

// beginDrain starts writing a store line back: a partial overwrite of a
// compressed line fetches it first (Section 4.2.2's worst case), then the
// line is compressed per the design and sent to L2.
func (sm *SM) beginDrain(se *storeEntry) {
	full := se.coverage == 0xFFFFFFFF
	if !full && sm.sim.Design.Compressing() && sm.domState(se.lineAddr).IsCompressed() {
		se.state = sbRMW
		sm.sysReadLine(se.lineAddr, &fillCtx{kind: fillRMW, se: se})
		return
	}
	sm.compressAndWrite(se)
}

// compressAndWrite runs the design's compression path and releases the
// line.
func (sm *SM) compressAndWrite(se *storeEntry) {
	design := sm.sim.Design
	if design.Scope != config.ScopeL2 {
		// Base and HW-BDI-Mem: the SM sends raw lines.
		sm.releaseStore(se)
		return
	}
	switch design.Decomp {
	case config.DecompIdeal:
		sm.domCompressLine(se.lineAddr)
		sm.releaseStore(se)
	case config.DecompHW:
		se.state = sbCompress
		_, lat := compress.HWLatency(design.Alg)
		sm.qAt(float64(sm.cycle+uint64(lat)), actHWCompress{sm: sm, se: se})
	case config.DecompCABA:
		if sm.compDisabled {
			sm.domSetRaw(se.lineAddr)
			sm.releaseStore(se)
			return
		}
		sm.beginCABACompression(se)
	default:
		sm.releaseStore(se)
	}
}

// releaseStore sends the (possibly compressed) line to L2 and frees the
// buffer slot.
func (sm *SM) releaseStore(se *storeEntry) {
	sm.touch()
	se.released = true
	sm.removeStore(se)
	sm.sysWriteLine(se.lineAddr)
}

// --- CABA integration ---

// compressionChain builds the routine sequence for one line: the
// zeros/repeat check, then encoding tests starting from the last
// successful encoding (the paper's single-encoding fast path for
// homogeneous data).
func (sm *SM) compressionChain(alg compress.AlgID) []core.RoutineID {
	switch alg {
	case compress.AlgBDI:
		chain := []core.RoutineID{core.RtBDICompSpecial}
		if sm.hasLastGood {
			chain = append(chain, core.RtBDICompTest+core.RoutineID(sm.lastGoodEnc))
		}
		for _, enc := range core.BDICompTestOrder {
			if sm.hasLastGood && enc == sm.lastGoodEnc {
				continue
			}
			chain = append(chain, core.RtBDICompTest+core.RoutineID(enc))
		}
		return chain
	case compress.AlgFPC:
		return []core.RoutineID{core.RtFPCComp}
	case compress.AlgCPack:
		return []core.RoutineID{core.RtCPackComp}
	}
	return nil
}

// beginCABACompression queues the line's compression assist-warp chain.
func (sm *SM) beginCABACompression(se *storeEntry) {
	se.state = sbQueued
	se.alg = sm.sim.Design.Alg
	if se.alg == compress.AlgBest {
		// CABA-BestOfAll selects per line with no selection overhead
		// (Section 6.3): pick the oracle's best algorithm, then pay that
		// algorithm's assist-warp cost.
		var line [compress.LineSize]byte
		sm.domReadRaw(se.lineAddr, line[:])
		best, _ := compress.Compress(compress.AlgBest, line[:])
		se.alg = best.Alg
		if se.alg == compress.AlgNone {
			sm.domSetRaw(se.lineAddr)
			sm.releaseStore(se)
			return
		}
	}
	se.chain = sm.compressionChain(se.alg)
	se.chainPos = 0
	sm.stepCompressionChain(se)
}

// stepCompressionChain triggers the next routine in the chain, retrying
// next cycle when the low-priority AWB partition is full or throttled.
func (sm *SM) stepCompressionChain(se *storeEntry) {
	if se.chainPos >= len(se.chain) {
		// Nothing fit: release raw. A long failure streak disables the
		// compression path for this core (incompressible application).
		sm.compFailStreak++
		if sm.compFailStreak >= 3 {
			sm.compDisabled = true
		}
		sm.domSetRaw(se.lineAddr)
		sm.releaseStore(se)
		return
	}
	if !sm.tryCompressStep(se) {
		se.state = sbQueued
		sm.decompRetry = append(sm.decompRetry, pendingTrigger{kind: pendCompress, se: se})
	}
}

// tryCompressStep triggers the current compression-chain routine for se;
// true means the trigger landed (or the entry was already released raw by
// a buffer overflow, which drops the chain).
func (sm *SM) tryCompressStep(se *storeEntry) bool {
	if se.released {
		return true // overflow released the line raw; drop the chain
	}
	rt := sm.sim.AWS.MustGet(se.chain[se.chainPos])
	if !sm.awc.CanTrigger(rt.Priority, se.warp) {
		return false
	}
	ex := sm.newAssistExec(rt)
	sm.domReadRaw(se.lineAddr, ex.StageIn[:compress.LineSize])
	e := sm.awc.Trigger(rt, se.warp, ex, se, sm.assistOnComplete(se, rt.ID))
	if e == nil {
		sm.releaseAssistExec(ex)
		return false
	}
	se.state = sbCompress
	sm.stat.AssistWarps++
	if sm.tr != nil {
		sm.traceAssistBegin(e, "writeback-compress")
	}
	return true
}

// assistOnComplete derives an assist warp's completion callback from its
// opaque User payload and routine. Keeping the mapping total on the User
// type (rather than capturing ad-hoc closures) is what lets snapshot
// restore reattach callbacks to deserialized AWT entries.
func (sm *SM) assistOnComplete(user any, rtID core.RoutineID) func(*core.Entry) {
	switch u := user.(type) {
	case *storeEntry:
		return func(done *core.Entry) { sm.finishCompressionStep(u, done) }
	case *decompCtx:
		if rtID == core.RtECCCheck {
			return func(fin *core.Entry) { sm.finishECCCheck(u, fin.Exec) }
		}
		return func(fin *core.Entry) { sm.finishDecompression(u, fin.Exec) }
	case *decompPlain:
		return func(fin *core.Entry) {
			// Injection disabled: verify against the backing store and
			// complete — exactly the pre-fault-framework flow.
			sm.verifyDecompression(u.ln, fin.Exec)
			sm.stat.LinesDecompressed++
			sm.runCont(u.done)
		}
	case *memoCtx:
		return func(*core.Entry) { sm.finishMemoProbe(u) }
	}
	// Use-case triggers with no owner payload (prefetches, result-cache
	// installs) still need a restorable completion: snapshot restore
	// rejects AWT entries whose OnComplete cannot be rebuilt.
	switch rtID {
	case core.RtPrefetch, core.RtMemoSave:
		return func(*core.Entry) {}
	}
	return nil
}

// finishCompressionStep consumes one routine's result.
func (sm *SM) finishCompressionStep(se *storeEntry, e *core.Entry) {
	if se.released {
		return // the buffer overflowed and released this line raw
	}
	if e.Exec.Err != nil {
		// Compression routines run on uncorrupted staging input, so an
		// error here is a simulator bug, not an injected fault.
		sm.fail(fmt.Errorf("gpu: assist warp %s: %w", e.Routine.Name, e.Exec.Err))
		return
	}
	ex := e.Exec
	id := se.chain[se.chainPos]
	switch {
	case id == core.RtBDICompSpecial:
		switch ex.Result(core.ResultReg) {
		case 2:
			sm.installCompressed(se, compress.BDIZeros, ex)
			return
		case 1:
			sm.installCompressed(se, compress.BDIRepeat, ex)
			return
		}
	case id >= core.RtBDICompTest && id < core.RtBDICompTest+core.RoutineID(compress.BDINumEncodings):
		if ex.Result(core.ResultReg) == 1 {
			enc := compress.BDIEncoding(id - core.RtBDICompTest)
			sm.lastGoodEnc, sm.hasLastGood = enc, true
			sm.installCompressed(se, enc, ex)
			return
		}
	case id == core.RtFPCComp || id == core.RtCPackComp:
		if ex.Result(core.ResultReg) == 1 {
			size := int(ex.Result(core.SizeReg))
			alg := compress.AlgFPC
			if id == core.RtCPackComp {
				alg = compress.AlgCPack
			}
			st := compress.Compressed{Alg: alg, Enc: 0,
				Data: append([]byte(nil), ex.StageOut[:size]...)}
			sm.compFailStreak = 0
			sm.domSetCompressed(se.lineAddr, st)
			sm.stat.LinesCompressed++
			sm.releaseStore(se)
			return
		}
	}
	// This routine failed: try the next one.
	se.chainPos++
	sm.stepCompressionChain(se)
}

// installCompressed stores a successful BDI compression result.
func (sm *SM) installCompressed(se *storeEntry, enc compress.BDIEncoding, ex *core.Exec) {
	sm.compFailStreak = 0
	size := enc.CompressedSize()
	st := compress.Compressed{Alg: compress.AlgBDI, Enc: uint8(enc),
		Data: append([]byte(nil), ex.StageOut[:size]...)}
	sm.domSetCompressed(se.lineAddr, st)
	sm.stat.LinesCompressed++
	sm.releaseStore(se)
}

// decompCtx tracks one in-flight decompression through the fault-aware
// completion chain: the line, the parent warp (for check-slot borrowing),
// whether this fill was corrupted by the campaign, the decompressed image
// awaiting its ECC check, and the fill continuation. Allocated only when
// injection is active, so the zero-fault fill path stays allocation-free.
type decompCtx struct {
	ln       uint64
	warp     int
	injected bool
	done     cont
	buf      [compress.LineSize]byte
}

// findAssistHost returns a warp slot that can accept a trigger at the
// given priority, preferring the parent warp; when it is busy (e.g. a
// divergent load needing several lines decompressed), any other warp's
// slot is borrowed — the AWT is a centralized per-SM structure
// (Section 3.3), and the parent's dependents are already held by the
// load's scoreboard entry. Returns -1 when every slot is busy.
func (sm *SM) findAssistHost(pri core.Priority, warp int) int {
	if pri != core.PriHigh {
		// Low-priority acceptance is warp-independent (a shared partition
		// cap), so the parent either hosts or nobody does.
		if sm.awc.CanTrigger(pri, warp) {
			return warp
		}
		return -1
	}
	if sm.awc.Full() {
		return -1
	}
	if sm.awc.HighFor(warp) == nil {
		return warp
	}
	n := len(sm.warps)
	for i := 1; i < n; i++ {
		cand := (warp + i) % n
		if sm.awc.HighFor(cand) == nil {
			return cand
		}
	}
	return -1
}

// triggerDecompAW starts (or queues) a high-priority decompression assist
// warp for a line arriving compressed; done runs when it finishes.
// injected marks a fill the fault campaign corrupted, which routes the
// completion through detection and recovery instead of delivering garbage.
func (sm *SM) triggerDecompAW(ln uint64, st compress.Compressed, warp int, injected bool, done cont) {
	sm.touch()
	if _, err := core.DecompRoutineID(st); err != nil {
		sm.fail(fmt.Errorf("gpu: %w", err))
		return
	}
	var dc *decompCtx
	if sm.sim.Sys.Inj != nil {
		dc = &decompCtx{ln: ln, warp: warp, injected: injected, done: done}
	}
	sm.record("decompression assist warp triggered", ln)
	pt := pendingTrigger{kind: pendDecomp, ln: ln, st: st, warp: warp, done: done, dc: dc}
	if !sm.tryDecompTrigger(&pt) {
		sm.decompRetry = append(sm.decompRetry, pt)
	}
}

// tryDecompTrigger triggers the decompression assist warp for a queued
// fill; false means the AWT had no slot and the trigger must retry.
func (sm *SM) tryDecompTrigger(pt *pendingTrigger) bool {
	id, _ := core.DecompRoutineID(pt.st) // validated at trigger time
	rt := sm.sim.AWS.MustGet(id)
	host := sm.findAssistHost(rt.Priority, pt.warp)
	if host < 0 {
		return false
	}
	ex := sm.newAssistExec(rt)
	copy(ex.StageIn, pt.st.Data)
	var user any
	if pt.dc != nil {
		user = pt.dc
	} else {
		user = &decompPlain{ln: pt.ln, done: pt.done}
	}
	e := sm.awc.Trigger(rt, host, ex, user, sm.assistOnComplete(user, id))
	if e == nil {
		sm.releaseAssistExec(ex)
		return false
	}
	sm.stat.AssistWarps++
	if sm.tr != nil {
		sm.traceAssistBegin(e, "fill-decompress")
	}
	return true
}

// verifyDecompression checks the assist warp's output against the backing
// store. The store may legitimately have moved on (a later write to the
// line between compression and this decompression), so only hard failures
// (routine errors) are fatal; mismatches are tolerated but counted.
func (sm *SM) verifyDecompression(ln uint64, ex *core.Exec) {
	if ex.Err != nil {
		sm.fail(fmt.Errorf("gpu: decompression routine failed: %w", ex.Err))
		return
	}
	var truth [compress.LineSize]byte
	sm.domReadRaw(ln, truth[:])
	if !bytes.Equal(ex.StageOut[:compress.LineSize], truth[:]) {
		sm.stat.DecompMismatches++
	}
}

// finishDecompression is the completion path while fault injection is
// active. A routine error on an injected fill is a detected fault that
// triggers the raw refetch; otherwise the decompressed image is handed to
// the ECC-style check assist warp before the fill's waiters resume.
func (sm *SM) finishDecompression(dc *decompCtx, ex *core.Exec) {
	if ex.Err != nil {
		if dc.injected {
			// The corrupted payload tripped the routine itself (e.g. an
			// out-of-range stage store from a mangled size field).
			sm.stat.FaultsDetected++
			sm.refetchRaw(dc.ln, dc.done)
			return
		}
		sm.fail(fmt.Errorf("gpu: decompression routine failed: %w", ex.Err))
		return
	}
	sm.stat.LinesDecompressed++
	copy(dc.buf[:], ex.StageOut[:compress.LineSize])
	sm.startECCCheck(dc)
}

// startECCCheck triggers the RtECCCheck assist warp over the decompressed
// image. The routine charges the realistic warp-wide checksum cost
// (staging loads + shuffle reduction); the pass/fail decision compares
// the image against the backing store when the routine completes.
func (sm *SM) startECCCheck(dc *decompCtx) {
	if !sm.tryECC(dc) {
		sm.decompRetry = append(sm.decompRetry, pendingTrigger{kind: pendECC, dc: dc})
	}
}

// tryECC triggers the ECC-check assist warp over dc's decompressed image;
// false means no AWT slot was available.
func (sm *SM) tryECC(dc *decompCtx) bool {
	rt := sm.sim.AWS.MustGet(core.RtECCCheck)
	host := sm.findAssistHost(rt.Priority, dc.warp)
	if host < 0 {
		return false
	}
	ex := sm.newAssistExec(rt)
	copy(ex.StageIn, dc.buf[:])
	e := sm.awc.Trigger(rt, host, ex, dc, sm.assistOnComplete(dc, core.RtECCCheck))
	if e == nil {
		sm.releaseAssistExec(ex)
		return false
	}
	sm.stat.AssistWarps++
	if sm.tr != nil {
		sm.traceAssistBegin(e, "ecc-check")
	}
	return true
}

// finishECCCheck resolves the check: a clean image completes the fill; a
// corrupted injected image triggers the raw refetch; a mismatch without
// injection is the same benign compress-vs-write race the zero-fault
// verifier tolerates.
func (sm *SM) finishECCCheck(dc *decompCtx, ex *core.Exec) {
	if ex.Err != nil {
		sm.fail(fmt.Errorf("gpu: ECC check routine failed: %w", ex.Err))
		return
	}
	var truth [compress.LineSize]byte
	sm.domReadRaw(dc.ln, truth[:])
	if bytes.Equal(dc.buf[:], truth[:]) {
		sm.runCont(dc.done)
		return
	}
	if dc.injected {
		sm.stat.FaultsDetected++
		sm.refetchRaw(dc.ln, dc.done)
		return
	}
	sm.stat.DecompMismatches++
	sm.runCont(dc.done)
}

// refetchRaw fetches the uncompressed copy of a detected-corrupt line
// instead of propagating garbage to the waiters; after runs when the
// clean copy arrives (counted then as the recovery).
func (sm *SM) refetchRaw(ln uint64, after cont) {
	sm.touch()
	sm.record("fault detected; refetching raw line", ln)
	sm.sysReadLineRaw(ln, &fillCtx{kind: fillRefetch, after: after})
}

// --- Assist-warp instruction issue ---

// tryIssueAssistOK wraps tryIssueAssist for the low-priority path.
func (sm *SM) tryIssueAssistOK(e *core.Entry) (ok, dep, memS, compS bool) {
	return sm.tryIssueAssist(e)
}

// tryIssueAssist issues one staged instruction of an assist warp.
func (sm *SM) tryIssueAssist(e *core.Entry) (ok, dep, memS, compS bool) {
	in := e.Exec.CurrentSop()
	if in == nil || e.Staged == 0 {
		return false, false, false, false
	}
	if e.SB.ConflictsSop(in) {
		return false, true, false, false
	}
	pOK, memS, compS := sm.portsAvailable(in)
	if !pOK {
		return false, false, memS, compS
	}
	info, stepped := e.Exec.StepRef()
	if !stepped {
		return false, false, false, false
	}
	// A routine error (e.g. an out-of-range stage store while chewing on a
	// corrupted payload) marks the exec Done; the entry drains through the
	// normal writeback path and its completion callback sees Exec.Err —
	// the fault-detection path for injected corruption, a fatal error
	// otherwise. No special handling is needed here.
	e.Staged--
	sm.awc.NoteConsumed()
	if e.Exec.Done {
		e.Staged = 0 // discard over-staged slots past the routine's end
	}
	sm.stat.AssistInstrs++
	sm.countClass(in)

	lat := uint64(sm.sim.Cfg.ALULatency)
	switch in.Class {
	case isa.ClassALU:
		sm.aluPorts--
	case isa.ClassSFU:
		sm.sfuFree = sm.cycle + 4
		lat = uint64(sm.sim.Cfg.SFULatency)
	case isa.ClassMem:
		sm.lsuPorts--
		lat = uint64(sm.sim.Cfg.L1Latency)
		if in.GlobalMem {
			// Assist-warp global access (prefetch routine): goes through
			// the normal memory path without blocking the assist warp's
			// completion on the fill.
			for _, ln := range coalesceInto(&sm.awLineBuf, &info.Addrs, info.ExecMask, sm.sim.Cfg.LineSize) {
				if sm.l1.Lookup(ln, false) {
					sm.stat.L1Hits++
					continue
				}
				sm.stat.L1Misses++
				primary, _ := sm.mshr.Add(ln, (*loadReq)(nil))
				if primary {
					if sm.tr != nil {
						sm.traceMSHRBegin(ln)
					}
					if sm.pf != nil {
						sm.pf.lines++ // prefetch-held MSHR entry until its fill
					}
					sm.sysReadLine(ln, &fillCtx{kind: fillAssist})
				}
			}
		}
	}
	e.SB.MarkSop(in)
	e.Outstanding++
	sm.wbAdd(sm.cycle+lat, wbRec{kind: wbAssist, sop: in, e: e})
	sm.checkAssistDone(e)
	return true, false, false, false
}

// countClass tallies the issued instruction's class for the energy model.
func (sm *SM) countClass(in *isa.Superop) {
	switch in.Class {
	case isa.ClassALU:
		sm.stat.ALUInstrs++
	case isa.ClassSFU:
		sm.stat.SFUInstrs++
	case isa.ClassMem:
		sm.stat.MemInstrs++
	case isa.ClassCtrl:
		sm.stat.CtrlInstrs++
	}
}

// checkAssistDone retires a finished assist warp and recycles its staging
// buffers (the completion callback, which fires inside Retire, is the last
// reader of the exec's staging output).
func (sm *SM) checkAssistDone(e *core.Entry) {
	if !e.Killed && e.Done() {
		if sm.tr != nil {
			sm.traceAssistEnd(e)
		}
		sm.awc.Retire(e)
		sm.releaseAssistExec(e.Exec)
	}
}

// --- Fill path ---

// onFill handles a line arriving from the memory system.
func (sm *SM) onFill(ln uint64, user any) {
	sm.touch()
	sm.record("fill delivered", ln)
	ctx := user.(*fillCtx)
	if ctx.kind == fillRefetch {
		// The uncompressed recovery copy arrived: the fault is repaired
		// and the original fill's continuation resumes with clean data.
		sm.stat.FaultsRecovered++
		sm.runCont(ctx.after)
		return
	}
	if sm.sim.dbgFetch != nil && ctx.kind == fillLoad {
		if t0, ok := sm.sim.dbgFetch[ln]; ok {
			sm.sim.dbgFetchLat += sm.cycle - t0
			sm.sim.dbgFetchN++
			delete(sm.sim.dbgFetch, ln)
		}
	}
	st := sm.sim.Sys.ArrivesCompressed(ln)
	proceed := cont{kind: contCompleteFill, ln: ln, fill: ctx}
	if !st.IsCompressed() {
		sm.runCont(proceed)
		return
	}
	// Bit-flip injection site: a compressed payload arriving at the SM may
	// have one bit flipped in its in-flight copy — the Domain's backing
	// copy stays intact, modeling a DRAM/bus transfer error. Only
	// decompressing designs are exposed; the ideal decompressor is an
	// oracle and reads the backing truth directly.
	injected := false
	if inj := sm.sim.Sys.Inj; inj != nil && len(st.Data) > 0 &&
		(sm.sim.Design.Decomp == config.DecompHW || sm.sim.Design.Decomp == config.DecompCABA) &&
		inj.BitFlip() {
		injected = true
		sm.stat.FaultsInjected++
		st.Data = inj.Corrupt(st.Data)
	}
	switch sm.sim.Design.Decomp {
	case config.DecompIdeal:
		sm.runCont(proceed)
	case config.DecompHW:
		d, _ := compress.HWLatency(sm.sim.Design.Alg)
		if injected {
			// The dedicated decompressor's output check catches the flip
			// after the decompression latency and refetches the raw line.
			sm.sim.Q.Push(sm.sim.Q.Now()+float64(d), actHWDetect{sm: sm, ln: ln, fill: ctx})
			return
		}
		sm.sim.Q.Push(sm.sim.Q.Now()+float64(d), actCompleteFill{sm: sm, ln: ln, fill: ctx})
	case config.DecompCABA:
		warp := 0
		switch {
		case ctx.kind == fillLoad && ctx.load != nil:
			warp = ctx.load.warp.id
		case ctx.kind == fillRMW && ctx.se != nil:
			warp = ctx.se.warp
		}
		sm.triggerDecompAW(ln, st, warp, injected, proceed)
	default:
		sm.runCont(proceed)
	}
}

// completeFill installs the line and wakes its waiters.
func (sm *SM) completeFill(ln uint64, ctx *fillCtx) {
	sm.touch()
	switch ctx.kind {
	case fillLoad:
		size := sm.sim.Cfg.LineSize
		if sm.sim.Design.L1TagMult > 1 {
			if st := sm.domState(ln); st.IsCompressed() {
				size = st.Size()
			}
		}
		sm.l1.Insert(ln, size, false)
		if sm.tr != nil {
			sm.traceMSHREnd(ln)
		}
		for _, w := range sm.mshr.Complete(ln) {
			if req, okReq := w.(*loadReq); okReq && req != nil {
				sm.loadLineDone(req)
			}
		}
	case fillRMW:
		sm.compressAndWrite(ctx.se)
	case fillAssist:
		sm.l1.Insert(ln, sm.sim.Cfg.LineSize, false)
		if sm.tr != nil {
			sm.traceMSHREnd(ln)
		}
		// A demand load may have merged onto an assist-initiated line
		// (prefetch won the race to the MSHR); its waiters complete like
		// any other fill rather than being dropped.
		for _, w := range sm.mshr.Complete(ln) {
			if req, okReq := w.(*loadReq); okReq && req != nil {
				sm.loadLineDone(req)
			}
		}
		if sm.pf != nil {
			sm.pf.lines--
			sm.pf.noteFill(ln)
		}
	}
}
