package gpu

import (
	"errors"
	"reflect"
	"testing"

	"github.com/caba-sim/caba/internal/audit"
	"github.com/caba-sim/caba/internal/config"
	"github.com/caba-sim/caba/internal/faults"
	"github.com/caba-sim/caba/internal/snapshot"
)

// snapMatrixCase is one point of the restore-equivalence matrix.
type snapMatrixCase struct {
	name    string
	workers int
	ff      bool
	faults  bool
}

func snapMatrix() []snapMatrixCase {
	var out []snapMatrixCase
	for _, w := range []int{1, 4} {
		for _, ff := range []bool{false, true} {
			for _, flt := range []bool{false, true} {
				name := "w1"
				if w == 4 {
					name = "w4"
				}
				if ff {
					name += "-ff"
				} else {
					name += "-noff"
				}
				if flt {
					name += "-faults"
				} else {
					name += "-clean"
				}
				out = append(out, snapMatrixCase{name, w, ff, flt})
			}
		}
	}
	return out
}

// newSnapSim builds one CABA-design simulator for the matrix: assist
// warps, compression, the store buffer and (optionally) fault recovery
// are all live, so a snapshot must carry every pending-work structure.
func newSnapSim(t *testing.T, c snapMatrixCase, fill bool) *Simulator {
	t.Helper()
	const threads, iters = 1536, 8
	cfg := config.TestConfig()
	cfg.SMWorkers = c.workers
	cfg.FastForward = c.ff
	cfg.BWScale = 0.25
	cfg.MaxWarpsPerSM = 24
	cfg.MaxThreadsPerSM = 768
	if c.faults {
		cfg.Faults = faults.Config{
			Seed:                7,
			BitFlipRate:         0.05,
			MDCorruptRate:       0.02,
			ResponseDelayRate:   0.05,
			ResponseDelayCycles: 200,
		}
	}
	k := &Kernel{Prog: streamSum4Kernel(), GridCTAs: 6, CTAThreads: 256,
		Params: [4]uint64{inBase, outBase, uint64(threads * 4), iters}}
	sim, err := New(&cfg, config.DesignCABABDI, k)
	if err != nil {
		t.Fatal(err)
	}
	if fill {
		fillInput(sim, threads*iters, true)
		sim.Dom.Precompress(inBase, uint64(threads*iters*4))
	}
	return sim
}

// outChecksum folds the output region into one value.
func outChecksum(sim *Simulator) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < 1536; i++ {
		h = (h ^ sim.Mem.ReadU(outBase+uint64(i*4), 4)) * 1099511628211
	}
	return h
}

// TestSnapshotRestoreEquivalence is the tentpole guarantee: run(N) →
// Save → Load into a fresh simulator → run(M−N) is bit-identical to
// run(M), at snapshot points near 25%, 50% and 90% of the run, across
// worker counts, fast-forward settings and fault campaigns. It also
// checks that a run with checkpointing (and auditing) enabled produces
// exactly the stats of one without — maintenance must not perturb
// simulated state.
func TestSnapshotRestoreEquivalence(t *testing.T) {
	const maxCycles = 20_000_000
	for _, c := range snapMatrix() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			straight := newSnapSim(t, c, true)
			if err := straight.Run(maxCycles); err != nil {
				t.Fatal(err)
			}
			total := straight.Cycles()
			if total == 0 {
				t.Fatal("straight run recorded no cycles")
			}

			// One checkpointed+audited run, capturing every blob.
			type ckpt struct {
				cycle uint64
				blob  []byte
			}
			var ckpts []ckpt
			ck := newSnapSim(t, c, true)
			every := total / 20
			if every == 0 {
				every = 1
			}
			ck.Cfg.CheckpointEvery = every
			ck.Cfg.AuditEvery = every / 2
			if ck.Cfg.AuditEvery == 0 {
				ck.Cfg.AuditEvery = 1
			}
			ck.OnCheckpoint = func(cycle uint64, blob []byte) error {
				ckpts = append(ckpts, ckpt{cycle, append([]byte(nil), blob...)})
				return nil
			}
			if err := ck.Run(maxCycles); err != nil {
				t.Fatal(err)
			}
			if len(ckpts) == 0 {
				t.Fatal("no checkpoints taken")
			}
			// Zero-overhead: checkpointing and auditing changed nothing.
			if !reflect.DeepEqual(straight.S, ck.S) {
				t.Fatalf("checkpointed run diverged from straight run:\nstraight: %+v\ncheckpointed: %+v", straight.S, ck.S)
			}
			if outChecksum(straight) != outChecksum(ck) {
				t.Fatal("checkpointed run produced different output memory")
			}

			for _, pct := range []uint64{25, 50, 90} {
				target := total * pct / 100
				var chosen *ckpt
				for i := range ckpts {
					if ckpts[i].cycle >= target {
						chosen = &ckpts[i]
						break
					}
				}
				if chosen == nil {
					chosen = &ckpts[len(ckpts)-1]
				}
				// Restore into a fresh simulator with *empty* memory: the
				// snapshot must carry all of it.
				resumed := newSnapSim(t, c, false)
				if err := resumed.LoadState(chosen.blob); err != nil {
					t.Fatalf("restore at %d%% (cycle %d): %v", pct, chosen.cycle, err)
				}
				if err := resumed.Run(maxCycles); err != nil {
					t.Fatalf("resume at %d%% (cycle %d): %v", pct, chosen.cycle, err)
				}
				if resumed.Cycles() != total {
					t.Fatalf("resume at %d%%: finished at cycle %d, straight run at %d",
						pct, resumed.Cycles(), total)
				}
				if !reflect.DeepEqual(straight.S, resumed.S) {
					t.Fatalf("resume at %d%% (cycle %d): stats diverged:\nstraight: %+v\nresumed: %+v",
						pct, chosen.cycle, straight.S, resumed.S)
				}
				if outChecksum(straight) != outChecksum(resumed) {
					t.Fatalf("resume at %d%%: output memory diverged", pct)
				}
				sk1, cy1 := straight.FastForwardStats()
				sk2, cy2 := resumed.FastForwardStats()
				if sk1 != sk2 || cy1 != cy2 {
					t.Fatalf("resume at %d%%: fast-forward stats diverged: %d/%d vs %d/%d",
						pct, sk1, cy1, sk2, cy2)
				}
			}
		})
	}
}

// TestSnapshotResumeReproducesWedge: a fault campaign that drops
// responses ends in a WedgeError; resuming from a mid-run checkpoint
// must reproduce the identical wedge (same cycle, same message).
func TestSnapshotResumeReproducesWedge(t *testing.T) {
	build := func(fill bool) *Simulator {
		const threads, iters = 512, 8
		cfg := config.TestConfig()
		cfg.WedgeLimit = 20_000
		cfg.Faults = faults.Config{Seed: 11, ResponseDropRate: 0.02}
		k := &Kernel{Prog: streamSumKernel(), GridCTAs: 4, CTAThreads: 64,
			Params: [4]uint64{inBase, outBase, uint64(threads * 4), iters}}
		sim, err := New(&cfg, config.DesignCABABDI, k)
		if err != nil {
			t.Fatal(err)
		}
		if fill {
			fillInput(sim, threads*iters, true)
			sim.Dom.Precompress(inBase, uint64(threads*iters*4))
		}
		return sim
	}
	straight := build(true)
	errStraight := straight.Run(5_000_000)
	var we *WedgeError
	if !errors.As(errStraight, &we) {
		t.Fatalf("dropping campaign should wedge, got %v", errStraight)
	}

	var blob []byte
	ck := build(true)
	ck.Cfg.CheckpointEvery = 2_000
	ck.OnCheckpoint = func(cycle uint64, b []byte) error {
		if blob == nil {
			blob = append([]byte(nil), b...)
		}
		return nil
	}
	errCk := ck.Run(5_000_000)
	if errCk == nil || errCk.Error() != errStraight.Error() {
		t.Fatalf("checkpointed run: %v, want %v", errCk, errStraight)
	}
	if blob == nil {
		t.Fatal("wedge before first checkpoint; lower CheckpointEvery")
	}

	resumed := build(false)
	if err := resumed.LoadState(blob); err != nil {
		t.Fatal(err)
	}
	errResumed := resumed.Run(5_000_000)
	var we2 *WedgeError
	if !errors.As(errResumed, &we2) {
		t.Fatalf("resumed run: %v, want a wedge", errResumed)
	}
	if we2.Cycle != we.Cycle || errResumed.Error() != errStraight.Error() {
		t.Fatalf("resumed wedge at cycle %d (%v), straight at %d (%v)",
			we2.Cycle, errResumed, we.Cycle, errStraight)
	}
}

// TestSnapshotRejectsWrongConfig: a blob from one configuration must not
// load into a differently configured simulator.
func TestSnapshotRejectsWrongConfig(t *testing.T) {
	c := snapMatrixCase{workers: 1}
	sim := newSnapSim(t, c, true)
	var blob []byte
	sim.Cfg.CheckpointEvery = 5_000
	sim.OnCheckpoint = func(_ uint64, b []byte) error {
		if blob == nil {
			blob = append([]byte(nil), b...)
		}
		return nil
	}
	if err := sim.Run(20_000_000); err != nil {
		t.Fatal(err)
	}
	if blob == nil {
		t.Fatal("no checkpoint taken")
	}

	// Same blob, same config modulo observability/strategy knobs: loads.
	ok := newSnapSim(t, snapMatrixCase{workers: 4, ff: true}, false)
	if err := ok.LoadState(blob); err != nil {
		t.Fatalf("worker/FF changes must not invalidate a snapshot: %v", err)
	}

	// A different design must be rejected.
	cfg := config.TestConfig()
	cfg.BWScale = 0.25
	cfg.MaxWarpsPerSM = 24
	cfg.MaxThreadsPerSM = 768
	k := &Kernel{Prog: streamSum4Kernel(), GridCTAs: 6, CTAThreads: 256,
		Params: [4]uint64{inBase, outBase, 1536 * 4, 8}}
	other, err := New(&cfg, config.DesignBase, k)
	if err != nil {
		t.Fatal(err)
	}
	if err := other.LoadState(blob); err == nil {
		t.Fatal("blob from a CABA design loaded into a base design")
	}
}

// TestSnapshotLoadNeverPanics drives the loader over truncations, bit
// flips and version skew: every corruption must yield a structured error,
// never a panic (the fuzz target extends this).
func TestSnapshotLoadNeverPanics(t *testing.T) {
	c := snapMatrixCase{workers: 1}
	sim := newSnapSim(t, c, true)
	var blob []byte
	sim.Cfg.CheckpointEvery = 5_000
	sim.OnCheckpoint = func(_ uint64, b []byte) error {
		if blob == nil {
			blob = append([]byte(nil), b...)
		}
		return nil
	}
	if err := sim.Run(20_000_000); err != nil {
		t.Fatal(err)
	}
	if blob == nil {
		t.Fatal("no checkpoint taken")
	}

	try := func(name string, data []byte) {
		fresh := newSnapSim(t, c, false)
		if err := fresh.LoadState(data); err == nil {
			t.Errorf("%s: corrupted blob loaded without error", name)
		}
	}
	for _, n := range []int{0, 1, 8, 27, 28, len(blob) / 2, len(blob) - 1} {
		if n < len(blob) {
			try("truncate", blob[:n])
		}
	}
	for _, off := range []int{0, 8, 12, 20, 28, len(blob) / 3, 2 * len(blob) / 3, len(blob) - 5} {
		mut := append([]byte(nil), blob...)
		mut[off] ^= 0x40
		try("bitflip", mut)
	}
	skew := append([]byte(nil), blob...)
	skew[8]++ // version field
	try("version-skew", skew)
}

// FuzzSnapshotLoad fuzzes the full restore path with a real checkpoint
// as the seed corpus. The property is absence of panics: any mutation
// either round-trips (unlikely past the CRC) or returns an error.
func FuzzSnapshotLoad(f *testing.F) {
	c := snapMatrixCase{workers: 1}
	const threads, iters = 512, 4
	build := func(fill bool) (*Simulator, error) {
		cfg := config.TestConfig()
		cfg.BWScale = 0.25
		k := &Kernel{Prog: streamSum4Kernel(), GridCTAs: 2, CTAThreads: 256,
			Params: [4]uint64{inBase, outBase, uint64(threads * 4), iters}}
		sim, err := New(&cfg, config.DesignCABABDI, k)
		if err != nil {
			return nil, err
		}
		if fill {
			fillInput(sim, threads*iters, true)
			sim.Dom.Precompress(inBase, uint64(threads*iters*4))
		}
		return sim, nil
	}
	sim, err := build(true)
	if err != nil {
		f.Fatal(err)
	}
	var blob []byte
	sim.Cfg.CheckpointEvery = 2_000
	sim.OnCheckpoint = func(_ uint64, b []byte) error {
		if blob == nil {
			blob = append([]byte(nil), b...)
		}
		return nil
	}
	if err := sim.Run(20_000_000); err != nil {
		f.Fatal(err)
	}
	if blob != nil {
		f.Add(blob)
		f.Add(blob[:len(blob)/2])
	}
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		fresh, err := build(false)
		if err != nil {
			t.Skip()
		}
		_ = fresh.LoadState(data) // must not panic
		_ = c
	})
}

// TestAuditCatchesMSHRLeak: a deliberately leaked MSHR entry must trip
// the auditor with a structured violation naming the invariant, cycle
// and SM, carrying the flight-recorder trail.
func TestAuditCatchesMSHRLeak(t *testing.T) {
	cfg := config.TestConfig()
	cfg.FlightRecorderDepth = 16
	k := &Kernel{Prog: vecScaleKernel(), GridCTAs: 2, CTAThreads: 64,
		Params: [4]uint64{inBase, outBase}}
	sim, err := New(&cfg, config.DesignBase, k)
	if err != nil {
		t.Fatal(err)
	}
	fillInput(sim, 128, true)
	if err := sim.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if err := sim.Audit(); err != nil {
		t.Fatalf("clean machine must audit clean: %v", err)
	}

	// Leak: an allocated line whose only waiter expects zero lines can
	// never complete or free.
	sim.sms[0].mshr.Add(0x1000, &loadReq{warp: sim.sms[0].warps[0]})
	err = sim.Audit()
	var v *audit.Violation
	if !errors.As(err, &v) {
		t.Fatalf("leak not detected: %v", err)
	}
	if v.Invariant != "mshr-waiters" || v.SM != 0 {
		t.Fatalf("violation = %+v, want mshr-waiters on SM 0", v)
	}
	if len(v.Records) == 0 {
		t.Error("violation should carry the flight-recorder trail")
	}
}

// TestAuditEveryPassesCleanRun: continuous auditing over a full CABA run
// finds nothing and changes nothing.
func TestAuditEveryPassesCleanRun(t *testing.T) {
	c := snapMatrixCase{workers: 4, ff: true}
	plain := newSnapSim(t, c, true)
	if err := plain.Run(20_000_000); err != nil {
		t.Fatal(err)
	}
	audited := newSnapSim(t, c, true)
	audited.Cfg.AuditEvery = 500
	if err := audited.Run(20_000_000); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.S, audited.S) {
		t.Fatal("auditing changed the run's statistics")
	}
}

// TestInterruptDuringFastForward: an interrupt must be observed inside
// the fast-forward path, not just at the slow-path poll.
func TestInterruptDuringFastForward(t *testing.T) {
	const threads, iters = 512, 8
	cfg := config.TestConfig()
	cfg.FastForward = true
	cfg.Faults = faults.Config{Seed: 3, ResponseDelayRate: 1.0, ResponseDelayCycles: 40_000}
	k := &Kernel{Prog: streamSumKernel(), GridCTAs: 4, CTAThreads: 64,
		Params: [4]uint64{inBase, outBase, uint64(threads * 4), iters}}
	sim, err := New(&cfg, config.DesignCABABDI, k)
	if err != nil {
		t.Fatal(err)
	}
	fillInput(sim, threads*iters, true)
	sim.Dom.Precompress(inBase, uint64(threads*iters*4))
	sim.Interrupt()
	runErr := sim.Run(50_000_000)
	if !errors.Is(runErr, ErrInterrupted) {
		t.Fatalf("Run = %v, want ErrInterrupted", runErr)
	}
}

// TestWedgeErrorMessageCompat pins the legacy error strings the typed
// wedge error must keep emitting.
func TestWedgeErrorMessageCompat(t *testing.T) {
	drain := &WedgeError{Cycle: 42, Drain: true}
	if got := drain.Error(); got != "gpu: wedged waiting for memory drain at cycle 42" {
		t.Errorf("drain message changed: %q", got)
	}
	drop := &WedgeError{Cycle: 7, Dropped: 3}
	want := "gpu: wedged at cycle 7: 3 memory responses dropped by fault injection, warps stalled forever"
	if got := drop.Error(); got != want {
		t.Errorf("drop message changed: %q", got)
	}
}

// TestSnapshotBlobWellFormed sanity-checks the container round trip at
// this layer (Seal/Open compatibility with the GPU's config hash).
func TestSnapshotBlobWellFormed(t *testing.T) {
	c := snapMatrixCase{workers: 1}
	sim := newSnapSim(t, c, true)
	hash, err := sim.configHash()
	if err != nil {
		t.Fatal(err)
	}
	var blob []byte
	sim.Cfg.CheckpointEvery = 5_000
	sim.OnCheckpoint = func(_ uint64, b []byte) error {
		if blob == nil {
			blob = append([]byte(nil), b...)
		}
		return nil
	}
	if err := sim.Run(20_000_000); err != nil {
		t.Fatal(err)
	}
	if blob == nil {
		t.Fatal("no checkpoint taken")
	}
	if _, err := snapshot.Open(blob, hash); err != nil {
		t.Fatalf("sealed blob does not open with the run's config hash: %v", err)
	}
	if _, err := snapshot.Open(blob, hash+1); err == nil {
		t.Fatal("blob opened with the wrong config hash")
	}
}
