package gpu

import (
	"testing"

	"github.com/caba-sim/caba/internal/config"
	"github.com/caba-sim/caba/internal/isa"
)

// runBothModes runs the same kernel with per-cycle ticking and with the
// fast-forward engine, returning both simulators after Run. err must agree
// between the modes; the caller compares whatever else it cares about.
func runBothModes(t *testing.T, prog *isa.Program, ctas, ctaThreads int,
	params [4]uint64, maxCycles uint64, prep func(*Simulator)) (slow, fast *Simulator, slowErr, fastErr error) {
	t.Helper()
	build := func(ff bool) (*Simulator, error) {
		cfg := config.TestConfig()
		cfg.FastForward = ff
		k := &Kernel{Prog: prog, GridCTAs: ctas, CTAThreads: ctaThreads, Params: params}
		sim, err := New(&cfg, config.DesignCABABDI, k)
		if err != nil {
			t.Fatal(err)
		}
		fillInput(sim, 4096, true)
		if prep != nil {
			prep(sim)
		}
		return sim, sim.Run(maxCycles)
	}
	slow, slowErr = build(false)
	fast, fastErr = build(true)
	return slow, fast, slowErr, fastErr
}

// TestDrainPhaseEquivalence ends a kernel on global stores so the run
// finishes with the store buffer and memory system still busy: the drain
// phase (grid exhausted, events outstanding) must reach Sys.Drained()
// under both tick modes with bit-identical statistics.
func TestDrainPhaseEquivalence(t *testing.T) {
	stride := uint64(64 * 4)
	slow, fast, serr, ferr := runBothModes(t, streamSumKernel(), 4, 64,
		[4]uint64{inBase, outBase, stride, 8}, 2_000_000, nil)
	if serr != nil || ferr != nil {
		t.Fatalf("runs failed: per-cycle %v, fast-forward %v", serr, ferr)
	}
	for _, sim := range []*Simulator{slow, fast} {
		if !sim.Sys.Drained() {
			t.Error("memory system not drained after Run returned")
		}
		if sim.Q.Len() != 0 {
			t.Errorf("event queue not empty after Run: %d events", sim.Q.Len())
		}
	}
	if slow.S.Cycles != fast.S.Cycles {
		t.Errorf("drain completion cycle diverges: %d != %d", slow.S.Cycles, fast.S.Cycles)
	}
	for _, d := range slow.S.Diff(fast.S) {
		t.Errorf("stats diverge: %s", d)
	}
	skips, skipped := fast.FastForwardStats()
	t.Logf("fast-forward: %d skips covering %d of %d cycles", skips, skipped, fast.S.Cycles)
}

// TestWedgeDetectorEquivalence wedges a drained grid behind a far-future
// event that never delivers work: the idle-streak detector must fire with
// the identical error, at the identical cycle, under both tick modes —
// including when fast-forward wants to skip a window that straddles the
// firing cycle.
func TestWedgeDetectorEquivalence(t *testing.T) {
	// The dummy event parks far beyond the wedge horizon so Q.Len() stays
	// non-zero while every SM idles.
	prep := func(sim *Simulator) {
		sim.Cfg.WedgeLimit = 500
		sim.Q.At(1_000_000, func() {})
	}
	slow, fast, serr, ferr := runBothModes(t, vecScaleKernel(), 2, 64,
		[4]uint64{inBase, outBase}, 2_000_000, prep)
	if serr == nil || ferr == nil {
		t.Fatalf("expected wedge errors, got per-cycle %v, fast-forward %v", serr, ferr)
	}
	if serr.Error() != ferr.Error() {
		t.Errorf("wedge errors diverge:\n  per-cycle:    %v\n  fast-forward: %v", serr, ferr)
	}
	if slow.cycle != fast.cycle {
		t.Errorf("wedge fires at different cycles: %d != %d", slow.cycle, fast.cycle)
	}
	if _, skipped := fast.FastForwardStats(); skipped == 0 {
		t.Error("fast-forward never skipped; the wedge window was not exercised")
	}
}
