package gpu

import (
	"fmt"

	"github.com/caba-sim/caba/internal/compress"
	"github.com/caba-sim/caba/internal/core"
	"github.com/caba-sim/caba/internal/isa"
	"github.com/caba-sim/caba/internal/snapshot"
	"github.com/caba-sim/caba/internal/timing"
)

// Mid-run checkpoint/restore. SaveState captures the complete simulator
// state at a cycle boundary — per-SM SIMT stacks, scoreboards, register
// files, assist-warp staging, caches, MSHRs, DRAM timing, the event heap,
// fault-injector streams and statistics — into one versioned, checksummed
// blob. LoadState restores it into a freshly built Simulator with the same
// configuration. The contract is bit-identical resume: run(N cycles),
// Save, Load into a new sim, run(M−N more) produces exactly the stats and
// error behavior of run(M) straight through, at any SMWorkers setting and
// with fast-forward on or off.
//
// Pending work is held in pointer-linked structures (loadReq, storeEntry,
// fillCtx, decompCtx, decompPlain) that are shared between warps, MSHR
// waiter lists, AWT entries and queued events, so the encoder first
// collects every reachable object into per-type tables (a deterministic
// walk over SM state, then queue events, then memory-side waiters) and
// encodes each reference as a table index. Decode allocates the tables
// first, fills the payloads, then rebuilds the memory system, the event
// queue and the SMs, resolving references back through the tables —
// preserving aliasing exactly.

// snapErrf builds a structured format error for semantic (non-framing)
// snapshot problems.
func snapErrf(format string, args ...any) error {
	return &snapshot.FormatError{Off: -1, Msg: fmt.Sprintf(format, args...)}
}

// maxGPUSnapLen bounds decoded collection lengths in the GPU section.
const maxGPUSnapLen = 1 << 22

// Top-level event-queue action kinds.
const (
	akNop uint8 = iota
	akMem
	akHWCompress
	akCompleteFill
	akHWDetect
)

// User / object reference tags.
const (
	refNil uint8 = iota
	refFill
	refLoad
	refStore
	refDecompCtx
	refDecompPlain
	refMemo
)

// objTables are the identity tables for pointer-shared pending-work
// objects. Index order is the deterministic registration order.
type objTables struct {
	loadIdx  map[*loadReq]int
	loads    []*loadReq
	storeIdx map[*storeEntry]int
	stores   []*storeEntry
	fillIdx  map[*fillCtx]int
	fills    []*fillCtx
	dcIdx    map[*decompCtx]int
	dcs      []*decompCtx
	dpIdx    map[*decompPlain]int
	dps      []*decompPlain
	memoIdx  map[*memoCtx]int
	memos    []*memoCtx

	// warpSM maps each warp slot to its SM index so loadReq.warp can be
	// encoded as (sm, slot).
	warpSM map[*warpCtx]int

	err error // first registration failure (unknown object type)
}

func (t *objTables) fail(err error) {
	if t.err == nil {
		t.err = err
	}
}

func (t *objTables) regLoad(q *loadReq) {
	if q == nil {
		return
	}
	if _, ok := t.loadIdx[q]; ok {
		return
	}
	t.loadIdx[q] = len(t.loads)
	t.loads = append(t.loads, q)
}

func (t *objTables) regStore(se *storeEntry) {
	if se == nil {
		return
	}
	if _, ok := t.storeIdx[se]; ok {
		return
	}
	t.storeIdx[se] = len(t.stores)
	t.stores = append(t.stores, se)
}

func (t *objTables) regCont(c cont) {
	t.regFill(c.fill)
	t.regLoad(c.req)
}

func (t *objTables) regFill(fc *fillCtx) {
	if fc == nil {
		return
	}
	if _, ok := t.fillIdx[fc]; ok {
		return
	}
	t.fillIdx[fc] = len(t.fills)
	t.fills = append(t.fills, fc)
	t.regLoad(fc.load)
	t.regStore(fc.se)
	t.regCont(fc.after)
}

func (t *objTables) regDC(dc *decompCtx) {
	if dc == nil {
		return
	}
	if _, ok := t.dcIdx[dc]; ok {
		return
	}
	t.dcIdx[dc] = len(t.dcs)
	t.dcs = append(t.dcs, dc)
	t.regCont(dc.done)
}

func (t *objTables) regDP(dp *decompPlain) {
	if dp == nil {
		return
	}
	if _, ok := t.dpIdx[dp]; ok {
		return
	}
	t.dpIdx[dp] = len(t.dps)
	t.dps = append(t.dps, dp)
	t.regCont(dp.done)
}

func (t *objTables) regMemo(mc *memoCtx) {
	if mc == nil {
		return
	}
	if _, ok := t.memoIdx[mc]; ok {
		return
	}
	t.memoIdx[mc] = len(t.memos)
	t.memos = append(t.memos, mc)
}

func (t *objTables) regUser(u any) {
	switch v := u.(type) {
	case nil:
	case *fillCtx:
		t.regFill(v)
	case *loadReq:
		t.regLoad(v)
	case *storeEntry:
		t.regStore(v)
	case *decompCtx:
		t.regDC(v)
	case *decompPlain:
		t.regDP(v)
	case *memoCtx:
		t.regMemo(v)
	default:
		t.fail(snapErrf("unserializable pending-work object %T", u))
	}
}

// collect registers every reachable pending-work object in deterministic
// order: SM-resident state in SM-index order, then event-queue actions in
// firing order, then memory-side waiters in partition order.
func (sim *Simulator) collect(evs []timing.Event) (*objTables, error) {
	t := &objTables{
		loadIdx:  make(map[*loadReq]int),
		storeIdx: make(map[*storeEntry]int),
		fillIdx:  make(map[*fillCtx]int),
		dcIdx:    make(map[*decompCtx]int),
		dpIdx:    make(map[*decompPlain]int),
		memoIdx:  make(map[*memoCtx]int),
		warpSM:   make(map[*warpCtx]int),
	}
	for _, sm := range sim.sms {
		for _, w := range sm.warps {
			t.warpSM[w] = sm.id
			t.regLoad(w.replay)
		}
		for _, q := range sm.replayQ {
			t.regLoad(q)
		}
		for _, se := range sm.storeBuf {
			t.regStore(se)
		}
		for _, ln := range sm.mshr.Lines() {
			for _, wt := range sm.mshr.Waiters(ln) {
				t.regUser(wt)
			}
		}
		for i := range sm.wbRing {
			for j := range sm.wbRing[i] {
				t.regLoad(sm.wbRing[i][j].req)
			}
		}
		for i := range sm.decompRetry {
			pt := &sm.decompRetry[i]
			t.regStore(pt.se)
			t.regDC(pt.dc)
			t.regCont(pt.done)
		}
		for _, e := range sm.awc.Entries() {
			t.regUser(e.User)
		}
	}
	for _, ev := range evs {
		switch a := ev.Act.(type) {
		case timing.Nop:
		case actHWCompress:
			t.regStore(a.se)
		case actCompleteFill:
			t.regFill(a.fill)
		case actHWDetect:
			t.regFill(a.fill)
		default:
			if !sim.Sys.VisitActionUsers(a, t.regUser) {
				if timing.IsOpaque(a) {
					return nil, snapErrf("opaque closure event on the queue (cannot checkpoint)")
				}
				return nil, snapErrf("unserializable event action %T", a)
			}
		}
	}
	sim.Sys.VisitUsers(t.regUser)
	if t.err != nil {
		return nil, t.err
	}
	return t, nil
}

// encUser encodes a pending-work reference (tagged table index).
func (t *objTables) encUser(w *snapshot.Writer, u any) error {
	switch v := u.(type) {
	case nil:
		w.U8(refNil)
	case *fillCtx:
		w.U8(refFill)
		return t.encFill(w, v)
	case *loadReq:
		w.U8(refLoad)
		return t.encLoad(w, v)
	case *storeEntry:
		w.U8(refStore)
		return t.encStore(w, v)
	case *decompCtx:
		w.U8(refDecompCtx)
		return t.encDC(w, v)
	case *decompPlain:
		w.U8(refDecompPlain)
		return t.encDP(w, v)
	case *memoCtx:
		w.U8(refMemo)
		return t.encMemo(w, v)
	default:
		return snapErrf("unserializable pending-work object %T", u)
	}
	return nil
}

func (t *objTables) encMemo(w *snapshot.Writer, mc *memoCtx) error {
	if mc == nil {
		w.Int(-1)
		return nil
	}
	i, ok := t.memoIdx[mc]
	if !ok {
		return snapErrf("unregistered memoCtx in snapshot walk")
	}
	w.Int(i)
	return nil
}

func (t *objTables) encLoad(w *snapshot.Writer, q *loadReq) error {
	if q == nil {
		w.Int(-1)
		return nil
	}
	i, ok := t.loadIdx[q]
	if !ok {
		return snapErrf("unregistered loadReq in snapshot walk")
	}
	w.Int(i)
	return nil
}

func (t *objTables) encStore(w *snapshot.Writer, se *storeEntry) error {
	if se == nil {
		w.Int(-1)
		return nil
	}
	i, ok := t.storeIdx[se]
	if !ok {
		return snapErrf("unregistered storeEntry in snapshot walk")
	}
	w.Int(i)
	return nil
}

func (t *objTables) encFill(w *snapshot.Writer, fc *fillCtx) error {
	if fc == nil {
		w.Int(-1)
		return nil
	}
	i, ok := t.fillIdx[fc]
	if !ok {
		return snapErrf("unregistered fillCtx in snapshot walk")
	}
	w.Int(i)
	return nil
}

func (t *objTables) encDC(w *snapshot.Writer, dc *decompCtx) error {
	if dc == nil {
		w.Int(-1)
		return nil
	}
	i, ok := t.dcIdx[dc]
	if !ok {
		return snapErrf("unregistered decompCtx in snapshot walk")
	}
	w.Int(i)
	return nil
}

func (t *objTables) encDP(w *snapshot.Writer, dp *decompPlain) error {
	if dp == nil {
		w.Int(-1)
		return nil
	}
	i, ok := t.dpIdx[dp]
	if !ok {
		return snapErrf("unregistered decompPlain in snapshot walk")
	}
	w.Int(i)
	return nil
}

func (t *objTables) encCont(w *snapshot.Writer, c cont) error {
	w.U8(uint8(c.kind))
	w.U64(c.ln)
	if err := t.encFill(w, c.fill); err != nil {
		return err
	}
	return t.encLoad(w, c.req)
}

// encAction encodes a queued event action (GPU kinds inline, memory kinds
// via the memory system's codec).
func (t *objTables) encAction(sim *Simulator) func(*snapshot.Writer, timing.Action) error {
	return func(w *snapshot.Writer, act timing.Action) error {
		switch a := act.(type) {
		case timing.Nop:
			w.U8(akNop)
		case actHWCompress:
			w.U8(akHWCompress)
			w.Int(a.sm.id)
			return t.encStore(w, a.se)
		case actCompleteFill:
			w.U8(akCompleteFill)
			w.Int(a.sm.id)
			w.U64(a.ln)
			return t.encFill(w, a.fill)
		case actHWDetect:
			w.U8(akHWDetect)
			w.Int(a.sm.id)
			w.U64(a.ln)
			return t.encFill(w, a.fill)
		default:
			if timing.IsOpaque(act) {
				return snapErrf("opaque closure event on the queue (cannot checkpoint)")
			}
			w.U8(akMem)
			return sim.Sys.EncodeAction(w, act, t.encUser)
		}
		return nil
	}
}

// saveComp / loadComp serialize a compressed-line value.
func saveComp(w *snapshot.Writer, c compress.Compressed) {
	w.U64(uint64(c.Alg))
	w.U8(c.Enc)
	w.Bytes(c.Data)
}

func loadComp(r *snapshot.Reader) compress.Compressed {
	var c compress.Compressed
	c.Alg = compress.AlgID(r.U64())
	c.Enc = r.U8()
	if b := r.Bytes(maxGPUSnapLen); len(b) > 0 {
		c.Data = append([]byte(nil), b...)
	}
	return c
}

// configHash binds a snapshot to the run it came from: configuration,
// design and kernel identity, with the observability knobs (checkpoint /
// audit cadence, flight-recorder depth, output paths) and the
// execution-strategy knobs (worker count, fast-forward) zeroed — those
// may differ between the saving and resuming process without affecting
// simulated state. SampleEvery and AttributeStalls stay hashed: they
// determine the snapshot's obs payload geometry, and a resumed run can
// only emit the identical metrics series under the identical cadence.
func (sim *Simulator) configHash() (uint64, error) {
	cfg := *sim.Cfg
	cfg.SMWorkers = 0
	cfg.FastForward = false
	cfg.Interpreter = false
	cfg.BatchIssue = false
	cfg.CheckpointEvery = 0
	cfg.AuditEvery = 0
	cfg.FlightRecorderDepth = 0
	cfg.MetricsFile = ""
	cfg.TraceFile = ""
	k := sim.Kernel
	return snapshot.HashPlain(cfg, sim.Design, k.Prog.Name, len(k.Prog.Code),
		k.Prog.NumReg, k.GridCTAs, k.CTAThreads, k.SharedMem, k.Params)
}

// SaveState serializes the complete simulator state into a sealed blob.
// It must be called at a cycle boundary with per-cycle staging committed —
// Run's checkpoint hook satisfies this; callers between Run invocations
// (a finished or interrupted sim) do too, provided no SM has failed.
func (sim *Simulator) SaveState() ([]byte, error) {
	for _, sm := range sim.sms {
		if !sm.outbox.Empty() || !sm.wbuf.Empty() || sm.wantDispatch {
			return nil, fmt.Errorf("gpu: snapshot at cycle %d: SM %d has uncommitted staged state", sim.cycle, sm.id)
		}
		if sm.fatal != nil {
			return nil, fmt.Errorf("gpu: snapshot at cycle %d: SM %d has a fatal error: %w", sim.cycle, sm.id, sm.fatal)
		}
	}
	now, seq, evs := sim.Q.Snapshot()
	t, err := sim.collect(evs)
	if err != nil {
		return nil, err
	}
	w := &snapshot.Writer{}

	// Simulator scalars and statistics.
	w.U64(sim.cycle)
	w.Int(sim.nextCTA)
	w.Int(sim.idleStreak)
	w.U64(sim.ffSkips)
	w.U64(sim.ffCycles)
	if err := snapshot.EncodePlain(w, *sim.S); err != nil {
		return nil, err
	}

	// Backing memory and compression domain.
	sim.Mem.Save(w)
	sim.Dom.Save(w)

	// Object tables: counts, then payloads in index order. Registration
	// is closed under reference-following, so payload encoding never
	// encounters an unregistered object.
	w.Len(len(t.loads))
	w.Len(len(t.stores))
	w.Len(len(t.fills))
	w.Len(len(t.dcs))
	w.Len(len(t.dps))
	w.Len(len(t.memos))
	for _, q := range t.loads {
		if q.warp == nil {
			w.Int(-1)
			w.Int(-1)
		} else {
			w.Int(t.warpSM[q.warp])
			w.Int(q.warp.id)
		}
		// Superops are interned per program: encode the PC and re-resolve
		// against the kernel's decoded program on load.
		if q.sop != nil {
			w.Bool(true)
			w.Int(int(q.sop.PC))
		} else {
			w.Bool(false)
		}
		w.Int(q.linesPending)
		w.U64(q.issued)
		w.Len(len(q.todo))
		for _, ln := range q.todo {
			w.U64(ln)
		}
	}
	for _, se := range t.stores {
		w.U64(se.lineAddr)
		w.U32(se.coverage)
		w.Int(se.warp)
		w.U64(se.lastTouch)
		w.U8(uint8(se.state))
		w.Len(len(se.chain))
		for _, id := range se.chain {
			w.U64(uint64(id))
		}
		w.Int(se.chainPos)
		w.U64(uint64(se.alg))
		w.Bool(se.released)
	}
	for _, fc := range t.fills {
		w.U8(uint8(fc.kind))
		if err := t.encLoad(w, fc.load); err != nil {
			return nil, err
		}
		if err := t.encStore(w, fc.se); err != nil {
			return nil, err
		}
		if err := t.encCont(w, fc.after); err != nil {
			return nil, err
		}
	}
	for _, dc := range t.dcs {
		w.U64(dc.ln)
		w.Int(dc.warp)
		w.Bool(dc.injected)
		if err := t.encCont(w, dc.done); err != nil {
			return nil, err
		}
		w.Bytes(dc.buf[:])
	}
	for _, dp := range t.dps {
		w.U64(dp.ln)
		if err := t.encCont(w, dp.done); err != nil {
			return nil, err
		}
	}
	for _, mc := range t.memos {
		// The parent warp encodes as (sm, slot) and the superop as its PC,
		// like loadReq; a memoCtx always carries both.
		w.Int(t.warpSM[mc.w])
		w.Int(mc.w.id)
		w.Int(int(mc.sop.PC))
	}

	// Memory system (caches, MSHRs, DRAM timing, injector streams).
	if err := sim.Sys.SaveState(w, t.encAction(sim), t.encUser); err != nil {
		return nil, err
	}

	// Event queue.
	w.F64(now)
	w.U64(seq)
	w.Len(len(evs))
	enc := t.encAction(sim)
	for _, ev := range evs {
		w.F64(ev.Time)
		w.U64(ev.Seq)
		if err := enc(w, ev.Act); err != nil {
			return nil, err
		}
	}

	// Per-SM sections.
	for _, sm := range sim.sms {
		if err := sm.save(w, t); err != nil {
			return nil, err
		}
	}

	// Observability state. Which subsections exist is pinned by the
	// config hash (SampleEvery and AttributeStalls are hashed), so the
	// saving and resuming processes always agree on the layout. The
	// sampler carries its cursor and every recorded row, making a
	// resumed run's series identical to the uninterrupted one; the
	// attribution tables carry their cumulative counts. Trace state is
	// deliberately absent — a resumed run re-opens spans for live
	// entities and its trace covers restore→end.
	if sim.smp != nil {
		sim.smp.save(w)
	}
	if sim.Cfg.AttributeStalls {
		for _, sm := range sim.sms {
			sm.attr.Save(w)
		}
	}

	hash, err := sim.configHash()
	if err != nil {
		return nil, err
	}
	return snapshot.Seal(hash, w.Payload()), nil
}

// save serializes one SM.
func (sm *SM) save(w *snapshot.Writer, t *objTables) error {
	// Scalars.
	w.U64(sm.sfuFree)
	w.U64(sm.lsuFree)
	if sm.greedy != nil {
		w.Int(sm.greedy.id)
	} else {
		w.Int(-1)
	}
	w.U64(uint64(sm.lastGoodEnc))
	w.Bool(sm.hasLastGood)
	w.Int(sm.compFailStreak)
	w.Bool(sm.compDisabled)
	w.Bool(sm.qTry)
	w.U64(sm.cycle)
	if err := snapshot.EncodePlain(w, sm.stat); err != nil {
		return err
	}

	// CTAs, then warps (warps reference CTAs by index).
	w.Len(len(sm.ctas))
	for _, cta := range sm.ctas {
		w.Int(cta.id)
		w.Bytes(cta.shared)
		w.Int(cta.liveWarps)
		w.Int(cta.atBarrier)
		w.Len(len(cta.warps))
		for _, cw := range cta.warps {
			w.Int(cw.id)
		}
	}
	for _, wp := range sm.warps {
		w.Bool(wp.valid)
		if !wp.valid {
			continue
		}
		ctaIdx := -1
		for i, cta := range sm.ctas {
			if cta == wp.cta {
				ctaIdx = i
				break
			}
		}
		if ctaIdx < 0 {
			return snapErrf("valid warp without a resident CTA")
		}
		w.Int(ctaIdx)
		g, p := wp.sb.Bits()
		for _, v := range g {
			w.U64(v)
		}
		w.U8(p)
		w.Int(wp.inFlight)
		w.Int(wp.pendingLoads)
		if err := t.encLoad(w, wp.replay); err != nil {
			return err
		}
		w.U64(wp.lastIssueCycle)
		wp.exec.Save(w, false)
	}

	// Assist-warp controller (entries carry opaque User refs; the
	// writeback ring below references entries by AWT position).
	if err := sm.awc.Save(w, func(w *snapshot.Writer, e *core.Entry) error {
		return t.encUser(w, e.User)
	}); err != nil {
		return err
	}

	// L1 cache and MSHR.
	sm.l1.Save(w)
	if err := sm.mshr.Save(w, t.encUser); err != nil {
		return err
	}

	// Writeback ring, bucket by bucket.
	ents := sm.awc.Entries()
	entIdx := make(map[*core.Entry]int, len(ents))
	for i, e := range ents {
		entIdx[e] = i
	}
	w.Len(len(sm.wbRing))
	for i := range sm.wbRing {
		w.Len(len(sm.wbRing[i]))
		for j := range sm.wbRing[i] {
			rec := &sm.wbRing[i][j]
			w.U8(uint8(rec.kind))
			// Superops are interned per program: a PC is enough to
			// re-resolve (kernel program for wbWarp, the entry's routine
			// for wbAssist; wbLoad records carry no superop).
			if rec.sop != nil {
				w.Int(int(rec.sop.PC))
			} else {
				w.Int(-1)
			}
			if rec.w != nil {
				w.Int(rec.w.id)
			} else {
				w.Int(-1)
			}
			if rec.e != nil {
				idx, ok := entIdx[rec.e]
				if !ok {
					return snapErrf("writeback record references a retired AWT entry")
				}
				w.Int(idx)
			} else {
				w.Int(-1)
			}
			if err := t.encLoad(w, rec.req); err != nil {
				return err
			}
		}
	}

	// Retry queues and the store buffer.
	w.Len(len(sm.decompRetry))
	for i := range sm.decompRetry {
		pt := &sm.decompRetry[i]
		w.U8(uint8(pt.kind))
		if err := t.encStore(w, pt.se); err != nil {
			return err
		}
		w.U64(pt.ln)
		saveComp(w, pt.st)
		w.Int(pt.warp)
		if err := t.encCont(w, pt.done); err != nil {
			return err
		}
		if err := t.encDC(w, pt.dc); err != nil {
			return err
		}
	}
	w.Len(len(sm.replayQ))
	for _, q := range sm.replayQ {
		if err := t.encLoad(w, q); err != nil {
			return err
		}
	}
	w.Len(len(sm.storeBuf))
	for _, se := range sm.storeBuf {
		if err := t.encStore(w, se); err != nil {
			return err
		}
	}

	// Use-case hardware (layout gated by the hashed Design, so saver and
	// loader always agree on which sub-sections are present).
	sm.saveUseCases(w)
	return nil
}

// decTables is the decode side of the object tables: pre-allocated
// objects, filled in index order.
type decTables struct {
	loads  []*loadReq
	stores []*storeEntry
	fills  []*fillCtx
	dcs    []*decompCtx
	dps    []*decompPlain
	memos  []*memoCtx
}

func (t *decTables) decLoad(r *snapshot.Reader) (*loadReq, error) {
	i := r.Int()
	if i == -1 || r.Err() != nil {
		return nil, r.Err()
	}
	if i < 0 || i >= len(t.loads) {
		return nil, snapErrf("loadReq reference %d out of range", i)
	}
	return t.loads[i], nil
}

func (t *decTables) decStore(r *snapshot.Reader) (*storeEntry, error) {
	i := r.Int()
	if i == -1 || r.Err() != nil {
		return nil, r.Err()
	}
	if i < 0 || i >= len(t.stores) {
		return nil, snapErrf("storeEntry reference %d out of range", i)
	}
	return t.stores[i], nil
}

func (t *decTables) decFill(r *snapshot.Reader) (*fillCtx, error) {
	i := r.Int()
	if i == -1 || r.Err() != nil {
		return nil, r.Err()
	}
	if i < 0 || i >= len(t.fills) {
		return nil, snapErrf("fillCtx reference %d out of range", i)
	}
	return t.fills[i], nil
}

func (t *decTables) decDC(r *snapshot.Reader) (*decompCtx, error) {
	i := r.Int()
	if i == -1 || r.Err() != nil {
		return nil, r.Err()
	}
	if i < 0 || i >= len(t.dcs) {
		return nil, snapErrf("decompCtx reference %d out of range", i)
	}
	return t.dcs[i], nil
}

func (t *decTables) decDP(r *snapshot.Reader) (*decompPlain, error) {
	i := r.Int()
	if i == -1 || r.Err() != nil {
		return nil, r.Err()
	}
	if i < 0 || i >= len(t.dps) {
		return nil, snapErrf("decompPlain reference %d out of range", i)
	}
	return t.dps[i], nil
}

func (t *decTables) decMemo(r *snapshot.Reader) (*memoCtx, error) {
	i := r.Int()
	if i == -1 || r.Err() != nil {
		return nil, r.Err()
	}
	if i < 0 || i >= len(t.memos) {
		return nil, snapErrf("memoCtx reference %d out of range", i)
	}
	return t.memos[i], nil
}

func (t *decTables) decCont(r *snapshot.Reader) (cont, error) {
	var c cont
	k := r.U8()
	if k > uint8(contLoadLineDone) {
		return c, snapErrf("continuation kind %d out of range", k)
	}
	c.kind = contKind(k)
	c.ln = r.U64()
	var err error
	if c.fill, err = t.decFill(r); err != nil {
		return c, err
	}
	c.req, err = t.decLoad(r)
	return c, err
}

// decUser decodes a tagged pending-work reference.
func (t *decTables) decUser(r *snapshot.Reader) (any, error) {
	switch tag := r.U8(); tag {
	case refNil:
		return nil, r.Err()
	case refFill:
		fc, err := t.decFill(r)
		if err != nil {
			return nil, err
		}
		return fc, nil
	case refLoad:
		q, err := t.decLoad(r)
		if err != nil {
			return nil, err
		}
		// A nil reference under the loadReq tag is the MSHR's typed-nil
		// assist-prefetch waiter, restored as such.
		return q, nil
	case refStore:
		se, err := t.decStore(r)
		if err != nil {
			return nil, err
		}
		return se, nil
	case refDecompCtx:
		dc, err := t.decDC(r)
		if err != nil {
			return nil, err
		}
		return dc, nil
	case refDecompPlain:
		dp, err := t.decDP(r)
		if err != nil {
			return nil, err
		}
		return dp, nil
	case refMemo:
		mc, err := t.decMemo(r)
		if err != nil {
			return nil, err
		}
		return mc, nil
	default:
		return nil, snapErrf("pending-work reference tag %d out of range", tag)
	}
}

// decAction decodes a queued event action.
func (t *decTables) decAction(sim *Simulator) func(*snapshot.Reader) (timing.Action, error) {
	return func(r *snapshot.Reader) (timing.Action, error) {
		smFor := func() (*SM, error) {
			i := r.Int()
			if r.Err() != nil {
				return nil, r.Err()
			}
			if i < 0 || i >= len(sim.sms) {
				return nil, snapErrf("SM index %d out of range", i)
			}
			return sim.sms[i], nil
		}
		switch kind := r.U8(); kind {
		case akNop:
			return timing.Nop{}, r.Err()
		case akMem:
			return sim.Sys.DecodeAction(r, t.decUser)
		case akHWCompress:
			sm, err := smFor()
			if err != nil {
				return nil, err
			}
			se, err := t.decStore(r)
			if err != nil {
				return nil, err
			}
			return actHWCompress{sm: sm, se: se}, nil
		case akCompleteFill:
			sm, err := smFor()
			if err != nil {
				return nil, err
			}
			ln := r.U64()
			fc, err := t.decFill(r)
			if err != nil {
				return nil, err
			}
			return actCompleteFill{sm: sm, ln: ln, fill: fc}, nil
		case akHWDetect:
			sm, err := smFor()
			if err != nil {
				return nil, err
			}
			ln := r.U64()
			fc, err := t.decFill(r)
			if err != nil {
				return nil, err
			}
			return actHWDetect{sm: sm, ln: ln, fill: fc}, nil
		default:
			return nil, snapErrf("event action kind %d out of range", kind)
		}
	}
}

// SnapshotCycle reads the simulated cycle a checkpoint blob was taken at
// without restoring it (the cycle counter is the payload's first field).
// It validates the container's integrity — magic, version, length, CRC —
// but not the configuration hash, so blob custodians (the farm
// coordinator's checkpoint store, progress reporting) can use it on blobs
// for simulators they never build. Corrupt blobs return a structured
// error, never a bogus cycle.
func SnapshotCycle(blob []byte) (uint64, error) {
	_, payload, err := snapshot.Inspect(blob)
	if err != nil {
		return 0, err
	}
	r := snapshot.NewReader(payload)
	cycle := r.U64()
	if err := r.Err(); err != nil {
		return 0, err
	}
	return cycle, nil
}

// LoadState restores a snapshot produced by SaveState into this freshly
// built simulator. The blob's embedded configuration hash must match this
// simulator's configuration, design and kernel identity. On any error the
// simulator is unusable and must be discarded; LoadState never panics on
// corrupted input.
func (sim *Simulator) LoadState(blob []byte) (err error) {
	defer func() {
		// The decoder validates lengths, enum ranges and references
		// explicitly; the backstop converts any escaped decode panic on
		// adversarial input into a structured error.
		if p := recover(); p != nil {
			err = snapErrf("snapshot decode panic: %v", p)
		}
	}()
	hash, err := sim.configHash()
	if err != nil {
		return err
	}
	payload, err := snapshot.Open(blob, hash)
	if err != nil {
		return err
	}
	r := snapshot.NewReader(payload)

	// Simulator scalars and statistics.
	sim.cycle = r.U64()
	sim.nextCTA = r.Int()
	sim.idleStreak = r.Int()
	sim.ffSkips = r.U64()
	sim.ffCycles = r.U64()
	if err := snapshot.DecodePlain(r, sim.S); err != nil {
		return err
	}
	if sim.nextCTA < 0 || sim.nextCTA > sim.Kernel.GridCTAs {
		return snapErrf("dispatch cursor out of range")
	}

	// Backing memory and compression domain.
	if err := sim.Mem.Load(r); err != nil {
		return err
	}
	if err := sim.Dom.Load(r); err != nil {
		return err
	}

	// Object tables: allocate, then fill payloads.
	t := &decTables{}
	nLoads := r.Len(maxGPUSnapLen)
	nStores := r.Len(maxGPUSnapLen)
	nFills := r.Len(maxGPUSnapLen)
	nDCs := r.Len(maxGPUSnapLen)
	nDPs := r.Len(maxGPUSnapLen)
	nMemos := r.Len(maxGPUSnapLen)
	if r.Err() != nil {
		return r.Err()
	}
	t.loads = make([]*loadReq, nLoads)
	for i := range t.loads {
		t.loads[i] = &loadReq{}
	}
	t.stores = make([]*storeEntry, nStores)
	for i := range t.stores {
		t.stores[i] = &storeEntry{}
	}
	t.fills = make([]*fillCtx, nFills)
	for i := range t.fills {
		t.fills[i] = &fillCtx{}
	}
	t.dcs = make([]*decompCtx, nDCs)
	for i := range t.dcs {
		t.dcs[i] = &decompCtx{}
	}
	t.dps = make([]*decompPlain, nDPs)
	for i := range t.dps {
		t.dps[i] = &decompPlain{}
	}
	t.memos = make([]*memoCtx, nMemos)
	for i := range t.memos {
		t.memos[i] = &memoCtx{}
	}
	for _, q := range t.loads {
		smIdx, wid := r.Int(), r.Int()
		if smIdx >= 0 {
			if smIdx >= len(sim.sms) || wid < 0 || wid >= len(sim.sms[smIdx].warps) {
				return snapErrf("loadReq warp reference out of range")
			}
			q.warp = sim.sms[smIdx].warps[wid]
		}
		if r.Bool() {
			pc := r.Int()
			ops := sim.Kernel.Prog.Decoded().Ops
			if pc < 0 || pc >= len(ops) {
				return snapErrf("loadReq pc %d out of range", pc)
			}
			q.sop = &ops[pc]
		}
		q.linesPending = r.Int()
		q.issued = r.U64()
		n := r.Len(maxGPUSnapLen)
		if r.Err() != nil {
			return r.Err()
		}
		for i := 0; i < n; i++ {
			q.todo = append(q.todo, r.U64())
		}
	}
	for _, se := range t.stores {
		se.lineAddr = r.U64()
		se.coverage = r.U32()
		se.warp = r.Int()
		se.lastTouch = r.U64()
		st := r.U8()
		if st > uint8(sbQueued) {
			return snapErrf("store-buffer state %d out of range", st)
		}
		se.state = storeState(st)
		n := r.Len(maxGPUSnapLen)
		if r.Err() != nil {
			return r.Err()
		}
		for i := 0; i < n; i++ {
			se.chain = append(se.chain, core.RoutineID(r.U64()))
		}
		se.chainPos = r.Int()
		se.alg = compress.AlgID(r.U64())
		se.released = r.Bool()
		if se.chainPos < 0 || (len(se.chain) > 0 && se.chainPos > len(se.chain)) {
			return snapErrf("compression chain position out of range")
		}
	}
	for _, fc := range t.fills {
		k := r.U8()
		if k > uint8(fillRefetch) {
			return snapErrf("fill kind %d out of range", k)
		}
		fc.kind = fillKind(k)
		if fc.load, err = t.decLoad(r); err != nil {
			return err
		}
		if fc.se, err = t.decStore(r); err != nil {
			return err
		}
		if fc.after, err = t.decCont(r); err != nil {
			return err
		}
	}
	for _, dc := range t.dcs {
		dc.ln = r.U64()
		dc.warp = r.Int()
		dc.injected = r.Bool()
		if dc.done, err = t.decCont(r); err != nil {
			return err
		}
		buf := r.Bytes(maxGPUSnapLen)
		if r.Err() != nil {
			return r.Err()
		}
		if len(buf) != len(dc.buf) {
			return snapErrf("decompression buffer length %d, want %d", len(buf), len(dc.buf))
		}
		copy(dc.buf[:], buf)
	}
	for _, dp := range t.dps {
		dp.ln = r.U64()
		if dp.done, err = t.decCont(r); err != nil {
			return err
		}
	}
	for _, mc := range t.memos {
		smIdx, wid := r.Int(), r.Int()
		if r.Err() != nil {
			return r.Err()
		}
		if smIdx < 0 || smIdx >= len(sim.sms) || wid < 0 || wid >= len(sim.sms[smIdx].warps) {
			return snapErrf("memoCtx warp reference out of range")
		}
		mc.w = sim.sms[smIdx].warps[wid]
		pc := r.Int()
		ops := sim.Kernel.Prog.Decoded().Ops
		if pc < 0 || pc >= len(ops) {
			return snapErrf("memoCtx pc %d out of range", pc)
		}
		mc.sop = &ops[pc]
	}

	// Memory system.
	if err := sim.Sys.LoadState(r, t.decAction(sim), t.decUser); err != nil {
		return err
	}

	// Event queue.
	now := r.F64()
	seq := r.U64()
	n := r.Len(maxGPUSnapLen)
	if r.Err() != nil {
		return r.Err()
	}
	dec := t.decAction(sim)
	evs := make([]timing.Event, 0, n)
	for i := 0; i < n; i++ {
		var ev timing.Event
		ev.Time = r.F64()
		ev.Seq = r.U64()
		if ev.Act, err = dec(r); err != nil {
			return err
		}
		evs = append(evs, ev)
	}
	sim.Q.Restore(now, seq, evs)

	// Per-SM sections.
	for _, sm := range sim.sms {
		if err := sm.load(r, t); err != nil {
			return err
		}
	}

	// Observability state (mirrors SaveState's section layout).
	if sim.smp != nil {
		if err := sim.smp.load(r); err != nil {
			return err
		}
	}
	if sim.Cfg.AttributeStalls {
		for _, sm := range sim.sms {
			if err := sm.attr.Load(r); err != nil {
				return err
			}
		}
	}

	if r.Err() != nil {
		return r.Err()
	}
	if r.Remaining() != 0 {
		return snapErrf("%d trailing bytes after snapshot payload", r.Remaining())
	}
	// Open trace spans for every entity live in the restored state, so
	// the resumed run's trace closes cleanly and validates.
	sim.reopenTraceSpans()
	sim.restored = true
	return nil
}

// load restores one SM from its snapshot section.
func (sm *SM) load(r *snapshot.Reader, t *decTables) error {
	k := sm.sim.Kernel

	// Scalars.
	sm.sfuFree = r.U64()
	sm.lsuFree = r.U64()
	greedyID := r.Int()
	sm.lastGoodEnc = compress.BDIEncoding(r.U64())
	sm.hasLastGood = r.Bool()
	sm.compFailStreak = r.Int()
	sm.compDisabled = r.Bool()
	sm.qTry = r.Bool()
	sm.cycle = r.U64()
	if err := snapshot.DecodePlain(r, &sm.stat); err != nil {
		return err
	}
	if r.Err() != nil {
		return r.Err()
	}
	if greedyID >= len(sm.warps) {
		return snapErrf("greedy warp id out of range")
	}
	sm.greedy = nil
	if greedyID >= 0 {
		sm.greedy = sm.warps[greedyID]
	}

	// CTAs.
	nCTA := r.Len(maxGPUSnapLen)
	if r.Err() != nil {
		return r.Err()
	}
	sm.ctas = sm.ctas[:0]
	sm.drainingCTAs = 0
	for i := 0; i < nCTA; i++ {
		cta := &ctaCtx{id: r.Int()}
		cta.shared = append([]byte(nil), r.Bytes(maxGPUSnapLen)...)
		cta.liveWarps = r.Int()
		if cta.liveWarps == 0 {
			sm.drainingCTAs++
		}
		cta.atBarrier = r.Int()
		nw := r.Len(maxGPUSnapLen)
		if r.Err() != nil {
			return r.Err()
		}
		for j := 0; j < nw; j++ {
			wid := r.Int()
			if r.Err() != nil {
				return r.Err()
			}
			if wid < 0 || wid >= len(sm.warps) {
				return snapErrf("CTA warp id out of range")
			}
			cta.warps = append(cta.warps, sm.warps[wid])
		}
		sm.ctas = append(sm.ctas, cta)
	}

	// Warps.
	for _, wp := range sm.warps {
		*wp = warpCtx{id: wp.id}
		wp.valid = r.Bool()
		if r.Err() != nil {
			return r.Err()
		}
		if !wp.valid {
			continue
		}
		ctaIdx := r.Int()
		if r.Err() != nil {
			return r.Err()
		}
		if ctaIdx < 0 || ctaIdx >= len(sm.ctas) {
			return snapErrf("warp CTA index out of range")
		}
		wp.cta = sm.ctas[ctaIdx]
		var g [4]uint64
		for i := range g {
			g[i] = r.U64()
		}
		wp.sb.SetBits(g, r.U8())
		wp.inFlight = r.Int()
		wp.pendingLoads = r.Int()
		var err error
		if wp.replay, err = t.decLoad(r); err != nil {
			return err
		}
		wp.lastIssueCycle = r.U64()
		wp.depStalled = false // pure caches: recomputed on the next probe
		wp.idle = false
		wp.exec = core.NewExec(k.Prog, 0)
		wp.exec.Interp = sm.sim.Cfg.Interpreter
		if err := wp.exec.Load(r, k.Prog, false); err != nil {
			return err
		}
		wp.exec.Shared = wp.cta.shared
		wp.exec.Mem = sm.wbuf
	}

	// Assist-warp controller.
	if err := sm.awc.Load(r, func(r *snapshot.Reader, e *core.Entry) error {
		e.Exec.Interp = sm.sim.Cfg.Interpreter
		user, err := t.decUser(r)
		if err != nil {
			return err
		}
		e.User = user
		e.OnComplete = sm.assistOnComplete(user, e.Routine.ID)
		if e.OnComplete == nil {
			return snapErrf("AWT entry with no restorable completion")
		}
		return nil
	}); err != nil {
		return err
	}

	// L1 cache and MSHR.
	if err := sm.l1.Load(r); err != nil {
		return err
	}
	if err := sm.mshr.Load(r, t.decUser); err != nil {
		return err
	}

	// Writeback ring.
	ents := sm.awc.Entries()
	nb := r.Len(maxGPUSnapLen)
	if r.Err() != nil {
		return r.Err()
	}
	if nb != len(sm.wbRing) {
		return snapErrf("writeback ring size mismatch")
	}
	sm.wbPending = 0
	for i := range sm.wbRing {
		sm.wbRing[i] = sm.wbRing[i][:0]
		nr := r.Len(maxGPUSnapLen)
		if r.Err() != nil {
			return r.Err()
		}
		for j := 0; j < nr; j++ {
			var rec wbRec
			kind := r.U8()
			if kind > uint8(wbLoad) {
				return snapErrf("writeback kind %d out of range", kind)
			}
			rec.kind = wbKind(kind)
			pc := r.Int()
			wid := r.Int()
			eid := r.Int()
			if r.Err() != nil {
				return r.Err()
			}
			if wid >= len(sm.warps) || eid >= len(ents) {
				return snapErrf("writeback reference out of range")
			}
			if wid >= 0 {
				rec.w = sm.warps[wid]
			}
			if eid >= 0 {
				rec.e = ents[eid]
			}
			// Re-resolve the superop against its owning program: the
			// kernel's for warp records, the AWT entry's routine for
			// assist records (entries were decoded above).
			if pc >= 0 {
				var ops []isa.Superop
				switch {
				case rec.e != nil:
					ops = rec.e.Routine.Prog.Decoded().Ops
				default:
					ops = sm.sim.Kernel.Prog.Decoded().Ops
				}
				if pc >= len(ops) {
					return snapErrf("writeback pc %d out of range", pc)
				}
				rec.sop = &ops[pc]
			}
			var err error
			if rec.req, err = t.decLoad(r); err != nil {
				return err
			}
			sm.wbRing[i] = append(sm.wbRing[i], rec)
			sm.wbPending++
		}
	}

	// Retry queues and the store buffer.
	nRetry := r.Len(maxGPUSnapLen)
	if r.Err() != nil {
		return r.Err()
	}
	sm.decompRetry = sm.decompRetry[:0]
	for i := 0; i < nRetry; i++ {
		var pt pendingTrigger
		kind := r.U8()
		if kind > uint8(pendECC) {
			return snapErrf("pending-trigger kind %d out of range", kind)
		}
		pt.kind = pendingKind(kind)
		var err error
		if pt.se, err = t.decStore(r); err != nil {
			return err
		}
		pt.ln = r.U64()
		pt.st = loadComp(r)
		pt.warp = r.Int()
		if pt.done, err = t.decCont(r); err != nil {
			return err
		}
		if pt.dc, err = t.decDC(r); err != nil {
			return err
		}
		sm.decompRetry = append(sm.decompRetry, pt)
	}
	nReplay := r.Len(maxGPUSnapLen)
	if r.Err() != nil {
		return r.Err()
	}
	sm.replayQ = sm.replayQ[:0]
	for i := 0; i < nReplay; i++ {
		q, err := t.decLoad(r)
		if err != nil {
			return err
		}
		if q == nil {
			return snapErrf("nil loadReq in replay queue")
		}
		sm.replayQ = append(sm.replayQ, q)
	}
	nStore := r.Len(maxGPUSnapLen)
	if r.Err() != nil {
		return r.Err()
	}
	sm.storeBuf = sm.storeBuf[:0]
	for i := 0; i < nStore; i++ {
		se, err := t.decStore(r)
		if err != nil {
			return err
		}
		if se == nil {
			return snapErrf("nil storeEntry in store buffer")
		}
		sm.storeBuf = append(sm.storeBuf, se)
	}

	// Use-case hardware.
	if err := sm.loadUseCases(r); err != nil {
		return err
	}

	// Scratch and caches rebuilt from scratch on the next tick.
	sm.orderDirty = true
	sm.order = sm.order[:0]
	sm.issuedBuf = sm.issuedBuf[:0]
	sm.qValid = false
	sm.bValid = false
	return r.Err()
}
