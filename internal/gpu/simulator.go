package gpu

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync/atomic"

	"github.com/caba-sim/caba/internal/compress"
	"github.com/caba-sim/caba/internal/config"
	"github.com/caba-sim/caba/internal/core"
	"github.com/caba-sim/caba/internal/mem"
	"github.com/caba-sim/caba/internal/obs"
	"github.com/caba-sim/caba/internal/stats"
	"github.com/caba-sim/caba/internal/timing"
)

// defaultWedgeLimit is the consecutive-idle-drain-cycle budget used when
// Config.WedgeLimit is zero.
const defaultWedgeLimit = 10_000_000

// ErrInterrupted is wrapped by Run's error when Interrupt() stopped the
// simulation before completion.
var ErrInterrupted = errors.New("interrupted")

// Simulator is one GPU: cores, CABA framework, and the memory system, run
// against one kernel under one design.
type Simulator struct {
	Cfg    *config.Config
	Design config.Design
	Kernel *Kernel

	Q   *timing.Queue
	S   *stats.Sim
	Mem *mem.Memory
	Dom *mem.Domain
	Sys *mem.System
	AWS *core.Store

	sms        []*SM
	nextCTA    int
	cycle      uint64
	awtEntries int // AWT capacity per SM, register-budget limited

	occ Occupancy

	// ffKinds is per-SM scratch for the fast-forward stall classification.
	ffKinds []stats.StallKind
	// ffSkips / ffCycles count fast-forward jumps and the cycles they
	// covered (observability; not part of the equivalence-checked stats).
	ffSkips  uint64
	ffCycles uint64

	// interrupted is set asynchronously by Interrupt(); Run polls it and
	// returns an ErrInterrupted-wrapping error. It is the only simulator
	// state another goroutine may touch during Run.
	interrupted atomic.Bool

	// OnCheckpoint receives the sealed snapshot blob at every
	// Config.CheckpointEvery boundary (the hook owns persistence; a nil
	// hook disables checkpointing). An error aborts the run.
	OnCheckpoint func(cycle uint64, blob []byte) error

	// idleStreak is the drain-phase wedge counter. It is a field (not a
	// Run local) because it is part of the architectural state a snapshot
	// must carry for bit-identical resume across a checkpoint taken
	// during the final memory drain.
	idleStreak int
	// restored marks a simulator populated by LoadState: Run then resumes
	// from the snapshot cycle instead of dispatching the grid from zero.
	restored bool
	// Maintenance schedule (checkpoints and invariant audits). nextMaint
	// is min(nextCkpt, nextAudit) so the run loop pays a single compare
	// per iteration; all three are ^uint64(0) when the knobs are off.
	nextCkpt  uint64
	nextAudit uint64
	nextMaint uint64

	// frSim is the simulator-level flight-recorder ring (nil when
	// Config.FlightRecorderDepth is zero).
	frSim *flightRing

	// smp drives the metrics time-series (nil when Config.SampleEvery is
	// zero); it runs on the main goroutine only, reading cumulative
	// counters at window boundaries. tr is the run's trace recorder (nil
	// when Config.TraceFile is empty): each SM writes its own shard, the
	// memory system writes the last one, all on determinism-safe paths.
	smp *sampler
	tr  *obs.Trace

	// Debug instrumentation (enabled by tests).
	dbgFetch    map[uint64]uint64
	dbgFetchLat uint64
	dbgFetchN   uint64
}

// Interrupt asks a running Run to stop at the next poll point (every few
// thousand loop iterations). Safe to call from any goroutine; caba's
// context-aware entry points use it to implement deadlines without
// leaking the simulation goroutine.
func (sim *Simulator) Interrupt() { sim.interrupted.Store(true) }

// sharedLibrary is built once: routines are immutable.
var sharedLibrary = core.BuildLibrary()

// New builds a simulator. The caller populates memory (via Mem) and, for
// compressing designs, precompresses input buffers (via Dom.Precompress)
// before Run.
func New(cfg *config.Config, design config.Design, k *Kernel) (*Simulator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := k.Validate(cfg); err != nil {
		return nil, err
	}
	sim := &Simulator{
		Cfg:    cfg,
		Design: design,
		Kernel: k,
		Q:      &timing.Queue{},
		S:      &stats.Sim{},
		Mem:    mem.NewMemory(),
		AWS:    sharedLibrary,
	}
	sim.frSim = newFlightRing(cfg.FlightRecorderDepth)
	sim.Dom = mem.NewDomain(sim.Mem, design.Alg)
	sim.Sys = mem.NewSystem(cfg, design, sim.Q, sim.S, sim.Dom)
	sim.Sys.OnFill = func(smID int, lineAddr uint64, user any) {
		sim.sms[smID].onFill(lineAddr, user)
	}
	// Occupancy is computed without the assist-warp reservation: assist
	// warps live in the statically unallocated register space (Figure 2);
	// when that space is tight, the number of *concurrent* assist warps
	// shrinks rather than the parent occupancy (Section 3.2.2 gives the
	// designer both options; this is the one that avoids occupancy loss).
	assistRegs := 0
	if design.Decomp == config.DecompCABA || design.AssistUseCases() {
		assistRegs = sim.assistRegDemand()
	}
	sim.occ = ComputeOccupancy(cfg, k, 0)
	awtEntries := cfg.MaxWarpsPerSM
	if assistRegs > 0 {
		unallocated := cfg.RegFilePerSM - sim.occ.RegsAllocated
		byRegs := unallocated / (assistRegs * cfg.WarpSize)
		// Register-tight kernels still get a minimum assist-warp pool;
		// the compiler covers the shortfall with spills (Section 3.2.2).
		// The pool must roughly match the MSHR depth or decompression
		// queueing dominates fill latency.
		if byRegs < 16 {
			byRegs = 16
		}
		if byRegs < awtEntries {
			awtEntries = byRegs
		}
	}
	sim.awtEntries = awtEntries
	sim.sms = make([]*SM, cfg.NumSMs)
	for i := range sim.sms {
		sim.sms[i] = newSM(i, sim)
	}
	sim.ffKinds = make([]stats.StallKind, cfg.NumSMs)
	sim.wireObs()
	sim.S.RegsPerThread = k.Prog.NumReg
	sim.S.ThreadsPerSM = sim.occ.ThreadsPerSM
	sim.S.CTAsPerSM = sim.occ.CTAsPerSM
	sim.S.UnallocatedRegs = sim.occ.UnallocatedRegs
	sim.S.AssistRegsPerWarp = assistRegs
	return sim, nil
}

// assistRegDemand is the per-warp register reservation the compiler adds
// to the block requirement (Section 3.2.2): the largest register footprint
// over the routines this design's algorithm can trigger.
func (sim *Simulator) assistRegDemand() int {
	var ids []core.RoutineID
	var add func(alg compress.AlgID)
	add = func(alg compress.AlgID) {
		switch alg {
		case compress.AlgBDI:
			for enc := compress.BDIEncoding(0); enc < compress.BDINumEncodings; enc++ {
				ids = append(ids, core.RtBDIDecomp+core.RoutineID(enc))
			}
			ids = append(ids, core.RtBDICompSpecial)
			for _, enc := range core.BDICompTestOrder {
				ids = append(ids, core.RtBDICompTest+core.RoutineID(enc))
			}
		case compress.AlgFPC:
			ids = append(ids, core.RtFPCDecomp, core.RtFPCComp)
		case compress.AlgCPack:
			ids = append(ids, core.RtCPackDecomp, core.RtCPackComp)
		case compress.AlgBest:
			add(compress.AlgBDI)
			add(compress.AlgFPC)
			add(compress.AlgCPack)
		}
	}
	add(sim.Design.Alg)
	if sim.Design.Prefetching() {
		ids = append(ids, core.RtPrefetch)
	}
	if sim.Design.Memoizing() {
		ids = append(ids, core.RtMemoProbe, core.RtMemoSave)
	}
	max := 0
	for _, id := range ids {
		if rt, ok := sim.AWS.Get(id); ok && rt.Prog.NumReg > max {
			max = rt.Prog.NumReg
		}
	}
	return max
}

// Occupancy returns the static occupancy analysis for this run.
func (sim *Simulator) Occupancy() Occupancy { return sim.occ }

// FastForwardStats returns the number of clock jumps the fast-forward
// engine performed and the total cycles they covered.
func (sim *Simulator) FastForwardStats() (skips, cycles uint64) {
	return sim.ffSkips, sim.ffCycles
}

// DecompMismatches returns the racing-write counter (tests assert zero).
// The count lives in the per-SM shards, which survive the end-of-run fold.
func (sim *Simulator) DecompMismatches() uint64 {
	var n uint64
	for _, sm := range sim.sms {
		n += sm.stat.DecompMismatches
	}
	return n
}

// dispatch fills sm with CTAs while resources allow.
func (sim *Simulator) dispatch(sm *SM) {
	k := sim.Kernel
	warpsPer := k.WarpsPerCTA(sim.Cfg)
	for sim.nextCTA < k.GridCTAs &&
		len(sm.ctas) < sim.occ.CTAsPerSM &&
		sm.freeWarps() >= warpsPer {
		sm.placeCTA(sim.nextCTA)
		sim.nextCTA++
	}
}

// Run executes the kernel to completion (or the cycle cap) and finalizes
// statistics.
//
// Every elapsed cycle contributes its issue slots to the Figure 1
// breakdown (idle slots included), so SMs tick through stalls and the
// final memory drain. When Config.FastForward is set and every SM is
// provably unable to act, the skipped ticks are credited in bulk instead
// of executed — the statistics are bit-identical either way.
//
// Each cycle runs as a two-phase tick. Phase A ticks every SM — serially
// or on the worker pool, per Config.SMWorkers — with all shared-state
// effects staged per SM (outbox, write buffer, stat shard). Phase B, on
// the main goroutine, commits each SM's staged effects in ascending
// SM-index order and then lets the event queue deliver memory responses
// at the top of the next iteration. Staging runs identically at every
// worker count, so results are bit-identical regardless of SMWorkers.
func (sim *Simulator) Run(maxCycles uint64) (err error) {
	if maxCycles == 0 {
		maxCycles = 200_000_000
	}
	start := uint64(0)
	if sim.restored {
		// State came from LoadState: the grid is already (partially)
		// dispatched and the clock resumes at the snapshot cycle.
		start = sim.cycle
	} else {
		for _, sm := range sim.sms {
			sim.dispatch(sm)
		}
	}
	// The per-SM stat shards are folded into S exactly once, on every exit
	// path — success, error, or recovered panic (DecompMismatches stays
	// shard-resident). Declared before the recover defer so the fold still
	// runs while a panic unwinds.
	defer func() {
		for _, sm := range sim.sms {
			sim.S.AddShard(&sm.stat)
		}
	}()
	// Backstop for main-goroutine panics (event callbacks, commit): a
	// simulator bug must surface as a structured error, never escape
	// caba.Run. Worker-goroutine panics are caught by tickSafe.
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("gpu: internal panic at cycle %d: %v", sim.cycle, r)
		}
	}()
	wedgeLimit := int(sim.Cfg.WedgeLimit)
	if wedgeLimit <= 0 {
		wedgeLimit = defaultWedgeLimit
	}
	workers := sim.Cfg.SMWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(sim.sms) {
		workers = len(sim.sms)
	}
	var pool *smPool
	if workers > 1 {
		pool = newSMPool(sim.sms, workers)
		defer pool.stop()
	}
	ff := sim.Cfg.FastForward
	if !sim.restored {
		sim.idleStreak = 0
	}
	const never = ^uint64(0)
	sim.nextCkpt, sim.nextAudit = never, never
	if sim.Cfg.CheckpointEvery > 0 && sim.OnCheckpoint != nil {
		sim.nextCkpt = start + sim.Cfg.CheckpointEvery
	}
	if sim.Cfg.AuditEvery > 0 {
		sim.nextAudit = start + sim.Cfg.AuditEvery
	}
	sim.nextMaint = min(sim.nextCkpt, sim.nextAudit)
	iter := 0
	for sim.cycle = start; sim.cycle < maxCycles; sim.cycle++ {
		// Maintenance runs before this cycle's events are delivered, so a
		// snapshot taken here restores to exactly this loop position. A
		// fast-forward jump that crosses a boundary lands the work at the
		// wake cycle; with both knobs at zero this is one dead compare.
		if sim.cycle >= sim.nextMaint {
			if err := sim.maintain(); err != nil {
				return err
			}
		}
		sim.Q.RunUntil(float64(sim.cycle))
		if err := sim.firstFatal(); err != nil {
			return err
		}
		iter++
		if iter&1023 == 0 && sim.interrupted.Load() {
			return fmt.Errorf("gpu: %w at cycle %d", ErrInterrupted, sim.cycle)
		}
		busy := false
		for _, sm := range sim.sms {
			if sm.hasWork() {
				busy = true
				break
			}
		}
		drainIdle := !busy && sim.nextCTA >= sim.Kernel.GridCTAs
		if drainIdle {
			if sim.Q.Len() == 0 && sim.Sys.Drained() {
				break
			}
			sim.idleStreak++
			if sim.idleStreak > wedgeLimit {
				return sim.wedged(&WedgeError{Cycle: sim.cycle, Drain: true})
			}
		} else {
			sim.idleStreak = 0
		}
		// Mid-run deadlock detection, only armed under fault injection
		// (the only source of lost responses): if SMs still hold work but
		// the event queue and memory system are empty and no SM can ever
		// act again on its own, the hang is converted into a structured
		// wedge error at the first such cycle — identical with
		// fast-forward on or off and at every SMWorkers setting.
		if sim.Sys.Inj != nil && busy && sim.Q.Len() == 0 && sim.Sys.Drained() &&
			sim.allWedged() {
			return sim.wedged(&WedgeError{Cycle: sim.cycle,
				Dropped: sim.S.ResponsesDropped})
		}
		if ff {
			if wake, ok := sim.ffWake(maxCycles); ok {
				skip := wake - sim.cycle // ticks credited: cycle .. wake-1
				if drainIdle && sim.idleStreak+int(skip-1) > wedgeLimit {
					// The wedge detector would fire inside the window:
					// credit exactly up to its firing cycle so the error
					// reports the same cycle as per-cycle ticking.
					fire := sim.cycle + uint64(wedgeLimit-sim.idleStreak) + 1
					sim.creditSkip(fire-sim.cycle, fire)
					sim.cycle = fire
					return sim.wedged(&WedgeError{Cycle: sim.cycle, Drain: true})
				}
				if sim.smp != nil {
					// Synthesize the samples the skipped ticks would have
					// recorded, before the bulk credit lands.
					sim.sampleSkip(wake)
				}
				sim.creditSkip(skip, wake)
				if drainIdle {
					sim.idleStreak += int(skip - 1)
				}
				// A fast-forward jump can cover millions of cycles in one
				// iteration, so the interrupt flag is checked per jump —
				// context cancellation stays prompt even mid-skip.
				if sim.interrupted.Load() {
					sim.cycle = wake
					sim.record("interrupted during fast-forward skip", 0)
					return fmt.Errorf("gpu: %w at cycle %d", ErrInterrupted, sim.cycle)
				}
				sim.cycle = wake - 1 // loop increment resumes at wake
				continue
			}
		}
		if pool != nil {
			pool.tick(sim.cycle) // phase A, concurrent
		} else {
			for _, sm := range sim.sms {
				sm.tickSafe(sim.cycle)
			}
		}
		for _, sm := range sim.sms {
			sim.commit(sm) // phase B, fixed SM-index order
		}
		if err := sim.firstFatal(); err != nil {
			return err
		}
		// Close the metrics window ending at the boundary this tick just
		// reached (cycle+1 cycles are now complete). Runs after the
		// commit barrier, on the main goroutine, reading only — obs on or
		// off cannot perturb the simulated statistics.
		if sim.smp != nil && sim.cycle+1 == sim.smp.next {
			sim.sample(sim.smp.next, 0)
		}
	}
	if sim.cycle >= maxCycles {
		return fmt.Errorf("gpu: exceeded %d cycles (deadlock or runaway kernel)", maxCycles)
	}
	if err := sim.firstFatal(); err != nil {
		return err
	}
	sim.Sys.FinishStats(sim.cycle)
	sim.S.L1Evictions = sim.l1Evictions()
	return nil
}

// maintain performs the scheduled maintenance due at the current cycle:
// the invariant audit, then the checkpoint (so a checkpoint is only taken
// from audited-clean state when both fire together). Neither mutates
// simulated state, so cadence never affects results. FF jumps may cross
// several boundaries at once; each duty fires once, at the wake cycle.
func (sim *Simulator) maintain() error {
	if sim.cycle >= sim.nextAudit {
		if err := sim.Audit(); err != nil {
			return err
		}
		sim.record("audit passed", 0)
		for sim.nextAudit <= sim.cycle {
			sim.nextAudit += sim.Cfg.AuditEvery
		}
	}
	if sim.cycle >= sim.nextCkpt {
		blob, err := sim.SaveState()
		if err != nil {
			return err
		}
		if err := sim.OnCheckpoint(sim.cycle, blob); err != nil {
			return fmt.Errorf("gpu: checkpoint at cycle %d: %w", sim.cycle, err)
		}
		sim.record("checkpoint saved", 0)
		for sim.nextCkpt <= sim.cycle {
			sim.nextCkpt += sim.Cfg.CheckpointEvery
		}
	}
	sim.nextMaint = min(sim.nextCkpt, sim.nextAudit)
	return nil
}

// wedged attaches the flight-recorder trail to a wedge error.
func (sim *Simulator) wedged(we *WedgeError) error {
	sim.record("wedge detected", 0)
	we.Trail = sim.FlightRecord()
	return we
}

// firstFatal returns the lowest-indexed SM's recorded fatal error, if any.
// The fixed scan order keeps the surfaced error identical at every
// SMWorkers setting.
func (sim *Simulator) firstFatal() error {
	for _, sm := range sim.sms {
		if sm.fatal != nil {
			return sm.fatal
		}
	}
	return nil
}

// allWedged reports whether every SM is quiescent with no self-wake
// horizon — i.e. nothing in the machine can ever act again without a
// memory-system event, and the caller has established that no events are
// pending. It seeds the per-SM quiescence caches exactly as ffWake does.
func (sim *Simulator) allWedged() bool {
	for _, sm := range sim.sms {
		if !sm.qValid || sim.cycle >= sm.qHorizon {
			kind, horizon, ok := sm.quiescent(sim.cycle)
			if !ok {
				sm.qValid = false
				return false
			}
			sm.qValid, sm.qKind, sm.qHorizon = true, kind, horizon
		}
		if sm.qHorizon != ^uint64(0) {
			return false
		}
	}
	return true
}

// commit is phase B for one SM: flush its staged functional stores, replay
// its outbox into the crossbar/Domain/event queue, and run any deferred
// CTA dispatch. Called in ascending SM-index order — that fixed order is
// the crossbar's port-arbitration order, and it reproduces the schedule of
// a fully serial tick loop exactly.
func (sim *Simulator) commit(sm *SM) {
	if !sm.wbuf.Empty() {
		sm.wbuf.Flush()
	}
	if !sm.outbox.Empty() {
		sim.Sys.CommitOutbox(&sm.outbox)
	}
	if sm.wantDispatch {
		sm.wantDispatch = false
		sim.dispatch(sm)
	}
}

// ffWake computes the fast-forward wake cycle: the earliest future cycle
// at which any SM could act, bounded by the next memory-system event and
// the cycle cap. ok is false when some SM can act this cycle (no skip) or
// the window is too short to be worth skipping.
func (sim *Simulator) ffWake(maxCycles uint64) (uint64, bool) {
	wake := maxCycles
	if t, qok := sim.Q.NextTime(); qok {
		// An event at time T affects tick(ceil(T)) at the earliest: events
		// run during RunUntil at the top of that iteration.
		if w := uint64(math.Ceil(t)); w < wake {
			wake = w
		}
	}
	if wake <= sim.cycle+1 {
		return 0, false
	}
	for i, sm := range sim.sms {
		// Reuse the SM's quiescence cache when it is still valid; a fresh
		// verdict seeds it for the per-SM tick fast path even when the
		// global skip below turns out to be too short.
		if !sm.qValid || sim.cycle >= sm.qHorizon {
			kind, horizon, ok := sm.quiescent(sim.cycle)
			if !ok {
				sm.qValid = false
				return 0, false
			}
			sm.qValid, sm.qKind, sm.qHorizon = true, kind, horizon
		}
		sim.ffKinds[i] = sm.qKind
		if sm.qHorizon < wake {
			wake = sm.qHorizon
		}
	}
	if wake <= sim.cycle+1 {
		return 0, false
	}
	return wake, true
}

// creditSkip applies the bulk stall accounting for n skipped ticks
// (cycles sim.cycle .. wake-1): each SM's issue slots are credited with
// its quiescent classification, the AWC utilization windows advance by
// the same slot count, and per-SM clocks move to wake-1 exactly as if
// tick(wake-1) had run.
func (sim *Simulator) creditSkip(n, wake uint64) {
	sched := sim.Cfg.NumSchedulers
	for i, sm := range sim.sms {
		sim.S.IssueSlots[sim.ffKinds[i]] += n * uint64(sched)
		if sm.attr != nil {
			// Charge the quiescence-cached blame pair for every credited
			// slot, exactly as the per-cycle fast path would have.
			sm.attr.Charge(sm.qBlameW, sm.qBlameC, n*uint64(sched))
		}
		sm.awc.NoteIdleSlots(int(n) * sched)
		sm.cycle = wake - 1
	}
	sim.ffSkips++
	sim.ffCycles += n
}

func (sim *Simulator) l1Evictions() uint64 {
	var n uint64
	for _, sm := range sim.sms {
		n += sm.l1.Evictions
	}
	return n
}

// Cycles returns the completed cycle count.
func (sim *Simulator) Cycles() uint64 { return sim.cycle }
