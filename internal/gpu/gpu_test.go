package gpu

import (
	"testing"

	"github.com/caba-sim/caba/internal/compress"
	"github.com/caba-sim/caba/internal/config"
	"github.com/caba-sim/caba/internal/isa"
	"github.com/caba-sim/caba/internal/stats"
)

// vecScaleKernel: out[gtid] = in[gtid]*3 + 1.
func vecScaleKernel() *isa.Program {
	return isa.MustAssemble("vecscale", `
  mov r0, %gtid
  shl r0, r0, 2
  add r1, r0, %p0
  ld.global.u32 r2, [r1]
  mul r2, r2, 3
  add r2, r2, 1
  add r3, r0, %p1
  st.global.u32 [r3], r2
  exit`)
}

// streamSumKernel: each thread sums iters elements strided by %p2 bytes
// starting at in+gtid*4, storing into out[gtid]. Fully coalesced,
// memory-bound.
func streamSumKernel() *isa.Program {
	return isa.MustAssemble("streamsum", `
  mov r0, %gtid
  shl r0, r0, 2
  add r1, r0, %p0
  movi r2, 0
  movi r3, 0
loop:
  ld.global.u32 r4, [r1]
  add r2, r2, r4
  add r1, r1, %p2
  add r3, r3, 1
  setp.lt p0, r3, %p3
  @p0 bra loop
  add r5, r0, %p1
  st.global.u32 [r5], r2
  exit`)
}

// sfuChainKernel: a dependent chain of SFU ops, compute-bound.
func sfuChainKernel() *isa.Program {
	return isa.MustAssemble("sfuchain", `
  mov r0, %gtid
  movi r1, 0
loop:
  sfu r0, r0
  sfu r0, r0
  add r1, r1, 1
  setp.lt p0, r1, %p3
  @p0 bra loop
  shl r2, %gtid, 2
  add r2, r2, %p1
  st.global.u32 [r2], r0
  exit`)
}

// streamSum4Kernel is the software-pipelined variant: four independent
// loads per iteration give the memory-level parallelism a real compiler
// would schedule.
func streamSum4Kernel() *isa.Program {
	return isa.MustAssemble("streamsum4", `
  mov r0, %gtid
  shl r0, r0, 2
  add r1, r0, %p0
  movi r2, 0
  movi r3, 0
loop:
  ld.global.u32 r4, [r1]
  add r1, r1, %p2
  ld.global.u32 r5, [r1]
  add r1, r1, %p2
  ld.global.u32 r6, [r1]
  add r1, r1, %p2
  ld.global.u32 r7, [r1]
  add r1, r1, %p2
  add r2, r2, r4
  add r2, r2, r5
  add r2, r2, r6
  add r2, r2, r7
  add r3, r3, 4
  setp.lt p0, r3, %p3
  @p0 bra loop
  add r5, r0, %p1
  st.global.u32 [r5], r2
  exit`)
}

const (
	inBase  = 0x1000_0000
	outBase = 0x2000_0000
)

// fillInput writes n compressible (low-dynamic-range) u32 values.
func fillInput(sim *Simulator, n int, compressible bool) {
	for i := 0; i < n; i++ {
		v := uint64(i % 64)
		if !compressible {
			v = uint64(i)*2654435761 + 12345 // noisy
		}
		sim.Mem.WriteU(inBase+uint64(i*4), v&0xFFFFFFFF, 4)
	}
}

func newSim(t *testing.T, design config.Design, prog *isa.Program, ctas, ctaThreads int, params [4]uint64) *Simulator {
	t.Helper()
	cfg := config.TestConfig()
	k := &Kernel{Prog: prog, GridCTAs: ctas, CTAThreads: ctaThreads, Params: params}
	sim, err := New(&cfg, design, k)
	if err != nil {
		t.Fatal(err)
	}
	return sim
}

func TestVecScaleFunctional(t *testing.T) {
	n := 256
	sim := newSim(t, config.DesignBase, vecScaleKernel(), 4, 64, [4]uint64{inBase, outBase})
	fillInput(sim, n, false)
	if err := sim.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		in := sim.Mem.ReadU(inBase+uint64(i*4), 4)
		want := (in*3 + 1) & 0xFFFFFFFF
		if got := sim.Mem.ReadU(outBase+uint64(i*4), 4); got != want {
			t.Fatalf("out[%d] = %d, want %d", i, got, want)
		}
	}
	if sim.S.WarpInstrs == 0 || sim.S.Cycles == 0 {
		t.Error("no work recorded")
	}
	if sim.S.IPC() <= 0 {
		t.Error("IPC must be positive")
	}
}

func TestStreamSumFunctional(t *testing.T) {
	threads, iters := 256, 16
	stride := uint64(threads * 4)
	sim := newSim(t, config.DesignBase, streamSumKernel(), 4, 64,
		[4]uint64{inBase, outBase, stride, uint64(iters)})
	fillInput(sim, threads*iters, true)
	if err := sim.Run(2_000_000); err != nil {
		t.Fatal(err)
	}
	for tid := 0; tid < threads; tid++ {
		var want uint64
		for i := 0; i < iters; i++ {
			want += sim.Mem.ReadU(inBase+uint64(tid*4)+uint64(i)*stride, 4)
		}
		got := sim.Mem.ReadU(outBase+uint64(tid*4), 4)
		if got != want&0xFFFFFFFF {
			t.Fatalf("sum[%d] = %d, want %d", tid, got, want)
		}
	}
}

func TestStallBreakdownMemoryBound(t *testing.T) {
	threads, iters := 512, 64
	sim := newSim(t, config.DesignBase, streamSumKernel(), 8, 64,
		[4]uint64{inBase, outBase, uint64(threads * 4), uint64(iters)})
	fillInput(sim, threads*iters, false)
	if err := sim.Run(5_000_000); err != nil {
		t.Fatal(err)
	}
	br := sim.S.IssueBreakdown()
	memStalls := br[stats.MemoryStall] + br[stats.DataDepStall]
	if memStalls < 0.3 {
		t.Errorf("memory-bound kernel: mem+dep stalls = %.2f, want > 0.3 (breakdown: %v)", memStalls, br)
	}
	if br[stats.Active] > 0.6 {
		t.Errorf("memory-bound kernel should not be mostly active: %v", br)
	}
}

func TestStallBreakdownComputeBound(t *testing.T) {
	sim := newSim(t, config.DesignBase, sfuChainKernel(), 8, 64,
		[4]uint64{0, outBase, 0, 64})
	if err := sim.Run(5_000_000); err != nil {
		t.Fatal(err)
	}
	br := sim.S.IssueBreakdown()
	comp := br[stats.ComputeStall] + br[stats.DataDepStall]
	if comp < 0.3 {
		t.Errorf("compute-bound kernel: compute+dep = %.2f, want > 0.3 (%v)", comp, br)
	}
	if br[stats.MemoryStall] > 0.2 {
		t.Errorf("compute-bound kernel should not be memory stalled: %v", br)
	}
}

func TestBandwidthSensitivity(t *testing.T) {
	run := func(bw float64) uint64 {
		cfg := config.TestConfig()
		cfg.BWScale = bw
		threads, iters := 512, 32
		k := &Kernel{Prog: streamSumKernel(), GridCTAs: 8, CTAThreads: 64,
			Params: [4]uint64{inBase, outBase, uint64(threads * 4), uint64(iters)}}
		sim, err := New(&cfg, config.DesignBase, k)
		if err != nil {
			t.Fatal(err)
		}
		fillInput(sim, threads*iters, false)
		if err := sim.Run(5_000_000); err != nil {
			t.Fatal(err)
		}
		return sim.Cycles()
	}
	half, full, dbl := run(0.5), run(1.0), run(2.0)
	if !(half > full && full > dbl) {
		t.Errorf("cycles at 0.5x/1x/2x BW = %d/%d/%d; must decrease with bandwidth", half, full, dbl)
	}
}

func TestCABABDICompressedRun(t *testing.T) {
	// Bandwidth-bound regime: pipelined loads, plenty of warps, starved
	// bandwidth — the configuration the paper targets.
	threads, iters := 3072, 16
	mkSim := func(design config.Design) *Simulator {
		cfg := config.TestConfig()
		cfg.BWScale = 0.25
		cfg.MaxWarpsPerSM = 24
		cfg.MaxThreadsPerSM = 768
		k := &Kernel{Prog: streamSum4Kernel(), GridCTAs: 12, CTAThreads: 256,
			Params: [4]uint64{inBase, outBase, uint64(threads * 4), uint64(iters)}}
		sim, err := New(&cfg, design, k)
		if err != nil {
			t.Fatal(err)
		}
		fillInput(sim, threads*iters, true) // compressible
		if design.Compressing() {
			sim.Dom.Precompress(inBase, uint64(threads*iters*4))
		}
		if err := sim.Run(20_000_000); err != nil {
			t.Fatal(err)
		}
		return sim
	}
	base := mkSim(config.DesignBase)
	caba := mkSim(config.DesignCABABDI)

	// Functional equivalence.
	for tid := 0; tid < threads; tid += 37 {
		b := base.Mem.ReadU(outBase+uint64(tid*4), 4)
		c := caba.Mem.ReadU(outBase+uint64(tid*4), 4)
		if b != c {
			t.Fatalf("out[%d]: base %d vs caba %d", tid, b, c)
		}
	}
	// Assist warps ran and their outputs matched the backing store.
	if caba.S.LinesDecompressed == 0 {
		t.Error("no decompression assist warps ran")
	}
	if caba.S.AssistInstrs == 0 {
		t.Error("no assist instructions issued")
	}
	if caba.DecompMismatches() != 0 {
		t.Errorf("%d decompression mismatches", caba.DecompMismatches())
	}
	// Bandwidth: compressed run must move fewer DRAM bursts.
	if caba.S.DRAMBursts >= base.S.DRAMBursts {
		t.Errorf("CABA bursts %d >= base bursts %d", caba.S.DRAMBursts, base.S.DRAMBursts)
	}
	// And it should be faster on this bandwidth-bound kernel.
	if caba.Cycles() >= base.Cycles() {
		t.Errorf("CABA (%d cycles) not faster than base (%d) on compressible bandwidth-bound kernel",
			caba.Cycles(), base.Cycles())
	}
	if caba.S.Ratio.Value() < 1.5 {
		t.Errorf("compression ratio = %.2f, want > 1.5", caba.S.Ratio.Value())
	}
}

func TestAllDesignsRunAndAgree(t *testing.T) {
	threads, iters := 256, 16
	designs := []config.Design{
		config.DesignBase, config.DesignHWBDIMem, config.DesignHWBDI,
		config.DesignCABABDI, config.DesignIdealBDI,
		config.DesignCABAFPC, config.DesignCABACPack, config.DesignCABABest,
		config.CacheCompressed("L1", 2), config.CacheCompressed("L2", 4),
	}
	var ref []uint64
	for _, d := range designs {
		sim := newSim(t, d, streamSumKernel(), 4, 64,
			[4]uint64{inBase, outBase, uint64(threads * 4), uint64(iters)})
		fillInput(sim, threads*iters, true)
		if d.Compressing() {
			sim.Dom.Precompress(inBase, uint64(threads*iters*4))
		}
		if err := sim.Run(5_000_000); err != nil {
			t.Fatalf("%s: %v", d.Name, err)
		}
		var out []uint64
		for tid := 0; tid < threads; tid += 17 {
			out = append(out, sim.Mem.ReadU(outBase+uint64(tid*4), 4))
		}
		if ref == nil {
			ref = out
			continue
		}
		for i := range out {
			if out[i] != ref[i] {
				t.Fatalf("%s: output %d = %d differs from base %d", d.Name, i, out[i], ref[i])
			}
		}
	}
}

func TestIdealAtLeastAsFastAsCABA(t *testing.T) {
	threads, iters := 512, 32
	run := func(d config.Design) uint64 {
		sim := newSim(t, d, streamSumKernel(), 8, 64,
			[4]uint64{inBase, outBase, uint64(threads * 4), uint64(iters)})
		fillInput(sim, threads*iters, true)
		if d.Compressing() {
			sim.Dom.Precompress(inBase, uint64(threads*iters*4))
		}
		if err := sim.Run(5_000_000); err != nil {
			t.Fatal(err)
		}
		return sim.Cycles()
	}
	caba := run(config.DesignCABABDI)
	ideal := run(config.DesignIdealBDI)
	// Allow the paper's observed slack (CABA can sometimes edge out Ideal
	// via cache-pollution side effects, Section 6.1), but not by much.
	if float64(ideal) > float64(caba)*1.05 {
		t.Errorf("Ideal (%d) much slower than CABA (%d)?", ideal, caba)
	}
}

func TestStoreCompressionPath(t *testing.T) {
	// vecScale writes compressible outputs: the store path must compress.
	n := 512
	sim := newSim(t, config.DesignCABABDI, vecScaleKernel(), 8, 64, [4]uint64{inBase, outBase})
	fillInput(sim, n, true)
	sim.Dom.Precompress(inBase, uint64(n*4))
	if err := sim.Run(2_000_000); err != nil {
		t.Fatal(err)
	}
	if sim.S.LinesCompressed == 0 {
		t.Error("no compression assist warps completed")
	}
	// Output lines must be recorded compressed in the domain.
	compressed := 0
	for off := uint64(0); off < uint64(n*4); off += compress.LineSize {
		if sim.Dom.State(outBase + off).IsCompressed() {
			compressed++
		}
	}
	if compressed == 0 {
		t.Error("no output lines stored compressed")
	}
}

func TestBarrierKernel(t *testing.T) {
	// Stage values through shared memory across a barrier: thread i reads
	// what thread (i+1)%n wrote.
	prog := isa.MustAssemble("shswap", `
  mov r0, %tid
  shl r1, r0, 2
  st.shared.u32 [r1], r0
  bar
  add r2, r0, 1
  setp.ge p0, r2, %ntid
  @p0 movi r2, 0
  shl r2, r2, 2
  ld.shared.u32 r3, [r2]
  mov r4, %gtid
  shl r4, r4, 2
  add r4, r4, %p1
  st.global.u32 [r4], r3
  exit`)
	cfg := config.TestConfig()
	k := &Kernel{Prog: prog, GridCTAs: 2, CTAThreads: 64, SharedMem: 256, Params: [4]uint64{0, outBase}}
	sim, err := New(&cfg, config.DesignBase, k)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	for g := 0; g < 128; g++ {
		tid := g % 64
		want := uint64((tid + 1) % 64)
		if got := sim.Mem.ReadU(outBase+uint64(g*4), 4); got != want {
			t.Fatalf("out[%d] = %d, want %d", g, got, want)
		}
	}
}

func TestAtomicKernel(t *testing.T) {
	prog := isa.MustAssemble("atom", `
  movi r0, 1
  mov r1, %p0
  atom.add.u32 r2, [r1], r0
  exit`)
	cfg := config.TestConfig()
	k := &Kernel{Prog: prog, GridCTAs: 4, CTAThreads: 64, Params: [4]uint64{outBase}}
	sim, err := New(&cfg, config.DesignBase, k)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if got := sim.Mem.ReadU(outBase, 4); got != 256 {
		t.Errorf("counter = %d, want 256", got)
	}
}

func TestOccupancyCalculation(t *testing.T) {
	cfg := config.Baseline()
	k := &Kernel{Prog: vecScaleKernel(), GridCTAs: 100, CTAThreads: 192}
	occ := ComputeOccupancy(&cfg, k, 0)
	// 192 threads x 6 warps/CTA: limited by the 8-block limit (8x192 =
	// 1536 threads exactly).
	if occ.CTAsPerSM != 8 {
		t.Errorf("CTAs = %d (%s), want 8", occ.CTAsPerSM, occ.LimitedBy)
	}
	if occ.ThreadsPerSM != 1536 {
		t.Errorf("threads = %d", occ.ThreadsPerSM)
	}
	// vecscale uses 4 registers: 8 CTAs x 6 warps x 32 x 4 = 6144 of
	// 32768 -> ~81% unallocated (register-light kernel).
	if occ.UnallocatedRegs < 0.5 {
		t.Errorf("unallocated = %.2f; register-light kernel should leave most of the RF idle", occ.UnallocatedRegs)
	}
	// Reserving assist registers reduces occupancy for heavy kernels.
	heavy := &Kernel{Prog: &isa.Program{Name: "h", NumReg: 40, Code: vecScaleKernel().Code}, GridCTAs: 10, CTAThreads: 512}
	o1 := ComputeOccupancy(&cfg, heavy, 0)
	o2 := ComputeOccupancy(&cfg, heavy, 24)
	if o2.CTAsPerSM > o1.CTAsPerSM {
		t.Error("assist register reservation cannot increase occupancy")
	}
	if o2.RegsAllocated <= o1.RegsAllocated && o2.CTAsPerSM == o1.CTAsPerSM {
		t.Error("assist registers must be accounted")
	}
}

func TestOccupancyThreadLimited(t *testing.T) {
	cfg := config.Baseline()
	k := &Kernel{Prog: vecScaleKernel(), GridCTAs: 10, CTAThreads: 512}
	occ := ComputeOccupancy(&cfg, k, 0)
	if occ.CTAsPerSM != 3 || occ.LimitedBy != "thread limit" {
		t.Errorf("CTAs = %d (%s), want 3 (thread limit)", occ.CTAsPerSM, occ.LimitedBy)
	}
}

func TestKernelValidation(t *testing.T) {
	cfg := config.TestConfig()
	bad := []*Kernel{
		{Prog: nil, GridCTAs: 1, CTAThreads: 32},
		{Prog: vecScaleKernel(), GridCTAs: 0, CTAThreads: 32},
		{Prog: vecScaleKernel(), GridCTAs: 1, CTAThreads: 0},
		{Prog: vecScaleKernel(), GridCTAs: 1, CTAThreads: 32, SharedMem: 1 << 30},
	}
	for i, k := range bad {
		if _, err := New(&cfg, config.DesignBase, k); err == nil {
			t.Errorf("kernel %d should fail validation", i)
		}
	}
}

func TestMDCacheHitRateHigh(t *testing.T) {
	threads, iters := 512, 32
	sim := newSim(t, config.DesignCABABDI, streamSumKernel(), 8, 64,
		[4]uint64{inBase, outBase, uint64(threads * 4), uint64(iters)})
	fillInput(sim, threads*iters, true)
	sim.Dom.Precompress(inBase, uint64(threads*iters*4))
	if err := sim.Run(5_000_000); err != nil {
		t.Fatal(err)
	}
	if hr := sim.S.MDHitRate(); hr < 0.8 {
		t.Errorf("MD cache hit rate = %.2f, want > 0.8 for streaming (Section 4.3.2)", hr)
	}
}

func TestIncompressibleDataNoHarm(t *testing.T) {
	// Incompressible data: CABA should neither break nor help much. The
	// run is long enough that the fixed assist-warp drain tail amortizes
	// (a few failed compression chains before the adaptive disable).
	threads, iters := 1024, 64
	run := func(d config.Design) *Simulator {
		sim := newSim(t, d, streamSumKernel(), 16, 64,
			[4]uint64{inBase, outBase, uint64(threads * 4), uint64(iters)})
		fillInput(sim, threads*iters, false)
		if d.Compressing() {
			sim.Dom.Precompress(inBase, uint64(threads*iters*4))
		}
		if err := sim.Run(5_000_000); err != nil {
			t.Fatal(err)
		}
		return sim
	}
	base := run(config.DesignBase)
	caba := run(config.DesignCABABDI)
	slowdown := float64(caba.Cycles()) / float64(base.Cycles())
	if slowdown > 1.15 {
		t.Errorf("CABA on incompressible data is %.2fx slower than base", slowdown)
	}
}

func TestLRRSchedulerRuns(t *testing.T) {
	// The LRR policy must produce the same functional results as GTO.
	threads, iters := 256, 16
	run := func(pol config.SchedPolicy) *Simulator {
		cfg := config.TestConfig()
		cfg.Scheduler = pol
		k := &Kernel{Prog: streamSumKernel(), GridCTAs: 4, CTAThreads: 64,
			Params: [4]uint64{inBase, outBase, uint64(threads * 4), uint64(iters)}}
		sim, err := New(&cfg, config.DesignBase, k)
		if err != nil {
			t.Fatal(err)
		}
		fillInput(sim, threads*iters, true)
		if err := sim.Run(5_000_000); err != nil {
			t.Fatal(err)
		}
		return sim
	}
	gto := run(config.SchedGTO)
	lrr := run(config.SchedLRR)
	for tid := 0; tid < threads; tid += 13 {
		g := gto.Mem.ReadU(outBase+uint64(tid*4), 4)
		l := lrr.Mem.ReadU(outBase+uint64(tid*4), 4)
		if g != l {
			t.Fatalf("out[%d]: gto %d vs lrr %d", tid, g, l)
		}
	}
	if lrr.Cycles() == 0 || gto.Cycles() == 0 {
		t.Error("no cycles recorded")
	}
}

func TestL1CapacityModeHoldsMoreLines(t *testing.T) {
	// Figure 13 mechanism check: with 2x tags and compressible lines the
	// L1 hit rate should not decrease versus the baseline L1.
	threads, iters := 512, 32
	run := func(d config.Design) *Simulator {
		sim := newSim(t, d, streamSumKernel(), 8, 64,
			[4]uint64{inBase, outBase, uint64(threads * 4), uint64(iters)})
		fillInput(sim, threads*iters, true)
		if d.Compressing() {
			sim.Dom.Precompress(inBase, uint64(threads*iters*4))
		}
		if err := sim.Run(5_000_000); err != nil {
			t.Fatal(err)
		}
		return sim
	}
	plain := run(config.DesignCABABDI)
	l1x2 := run(config.CacheCompressed("L1", 2))
	if l1x2.S.L1HitRate()+0.02 < plain.S.L1HitRate() {
		t.Errorf("L1 2x-tag hit rate %.3f below baseline %.3f",
			l1x2.S.L1HitRate(), plain.S.L1HitRate())
	}
}

func TestPartialStoreRMWOnCompressedLine(t *testing.T) {
	// A kernel that writes one word per cache line (sparse update) into a
	// precompressed region: Section 4.2.2's worst case — the line must be
	// fetched (and decompressed) before the merged writeback.
	prog := isa.MustAssemble("sparse", `
  mov r0, %gtid
  shl r0, r0, 7          ; one thread per 128B line
  add r1, r0, %p0
  movi r2, 7
  st.global.u32 [r1], r2
  exit`)
	cfg := config.TestConfig()
	k := &Kernel{Prog: prog, GridCTAs: 2, CTAThreads: 64, Params: [4]uint64{inBase}}
	sim, err := New(&cfg, config.DesignCABABDI, k)
	if err != nil {
		t.Fatal(err)
	}
	// Compressible content in the target region.
	for i := 0; i < 128*128/4; i++ {
		sim.Mem.WriteU(inBase+uint64(i*4), uint64(i%16), 4)
	}
	sim.Dom.Precompress(inBase, 128*128)
	if err := sim.Run(5_000_000); err != nil {
		t.Fatal(err)
	}
	// Functional: word 0 of each line overwritten, word 1 preserved.
	for tid := 0; tid < 128; tid++ {
		la := inBase + uint64(tid*128)
		if got := sim.Mem.ReadU(la, 4); got != 7 {
			t.Fatalf("line %d word 0 = %d, want 7", tid, got)
		}
		want := uint64((tid*32 + 1) % 16)
		if got := sim.Mem.ReadU(la+4, 4); got != want {
			t.Fatalf("line %d word 1 = %d, want %d (must survive the partial write)", tid, got, want)
		}
	}
	// The partial writes forced read-modify-write fetches (decompressions).
	if sim.S.LinesDecompressed == 0 {
		t.Error("partial writes to compressed lines must decompress first")
	}
}

func TestStoreBufferOverflowReleasesRaw(t *testing.T) {
	// Scatter stores across many more lines than the store buffer holds:
	// overflow must release lines uncompressed rather than stall.
	prog := isa.MustAssemble("scatter", `
  mov r0, %gtid
  shl r0, r0, 7
  add r1, r0, %p0
  mov r2, %gtid
  st.global.u32 [r1], r2
  st.global.u32 [r1+64], r2
  exit`)
	cfg := config.TestConfig()
	k := &Kernel{Prog: prog, GridCTAs: 4, CTAThreads: 64, Params: [4]uint64{outBase}}
	sim, err := New(&cfg, config.DesignCABABDI, k)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(5_000_000); err != nil {
		t.Fatal(err)
	}
	if sim.S.StoreBufferFlushes == 0 {
		t.Error("256 scattered store lines must overflow the 16-entry buffer")
	}
	for tid := 0; tid < 256; tid += 31 {
		if got := sim.Mem.ReadU(outBase+uint64(tid*128), 4); got != uint64(tid) {
			t.Fatalf("out[%d] = %d", tid, got)
		}
	}
}
