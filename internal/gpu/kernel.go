// Package gpu implements the cycle-level SIMT core model: streaming
// multiprocessors with GTO/LRR warp schedulers, a scoreboard, SIMT
// divergence, ALU/SFU/LSU pipelines with structural hazards, a memory
// coalescer, per-SM L1 caches and MSHRs, the pending-store buffer, and the
// Figure 1 stall-cycle taxonomy. It integrates the CABA framework
// (internal/core) for assist-warp execution and drives the shared memory
// system (internal/mem).
package gpu

import (
	"fmt"

	"github.com/caba-sim/caba/internal/config"
	"github.com/caba-sim/caba/internal/core"
	"github.com/caba-sim/caba/internal/isa"
	"github.com/caba-sim/caba/internal/mem"
)

// Kernel is a launchable grid of cooperative thread arrays.
type Kernel struct {
	Prog       *isa.Program
	GridCTAs   int       // thread blocks in the grid
	CTAThreads int       // threads per block
	SharedMem  int       // shared-memory bytes per block
	Params     [4]uint64 // %p0..%p3 kernel parameters
}

// Validate reports the first kernel configuration problem.
func (k *Kernel) Validate(cfg *config.Config) error {
	switch {
	case k.Prog == nil:
		return fmt.Errorf("gpu: kernel has no program")
	case k.GridCTAs <= 0:
		return fmt.Errorf("gpu: grid must have at least one CTA")
	case k.CTAThreads <= 0 || k.CTAThreads > cfg.MaxThreadsPerSM:
		return fmt.Errorf("gpu: %d threads per CTA out of range", k.CTAThreads)
	case k.SharedMem > cfg.SharedMemPerSM:
		return fmt.Errorf("gpu: CTA shared memory %d exceeds SM capacity", k.SharedMem)
	}
	return k.Prog.Validate()
}

// WarpsPerCTA returns the warps needed per block.
func (k *Kernel) WarpsPerCTA(cfg *config.Config) int {
	return (k.CTAThreads + cfg.WarpSize - 1) / cfg.WarpSize
}

// Occupancy describes the static resource allocation of a kernel on one SM
// (the Figure 2 analysis).
type Occupancy struct {
	CTAsPerSM         int
	WarpsPerSM        int
	ThreadsPerSM      int
	RegsPerThread     int
	AssistRegsPerWarp int // reserved for assist warps (CABA designs)
	RegsAllocated     int
	UnallocatedRegs   float64 // fraction of the register file left idle
	LimitedBy         string
}

// ComputeOccupancy performs the compiler/driver occupancy calculation:
// how many CTAs fit per SM given the register file, shared memory, and the
// thread/block hard limits. assistRegs is the per-warp register reservation
// for assist-warp routines (0 for non-CABA designs); the paper adds this to
// the per-block requirement (Section 3.2.2).
func ComputeOccupancy(cfg *config.Config, k *Kernel, assistRegs int) Occupancy {
	warpsPerCTA := k.WarpsPerCTA(cfg)
	regsPerCTA := warpsPerCTA * cfg.WarpSize * (k.Prog.NumReg + assistRegs)

	limit := cfg.MaxCTAsPerSM
	by := "block limit"
	if t := cfg.MaxThreadsPerSM / k.CTAThreads; t < limit {
		limit, by = t, "thread limit"
	}
	if w := cfg.MaxWarpsPerSM / warpsPerCTA; w < limit {
		limit, by = w, "warp contexts"
	}
	if regsPerCTA > 0 {
		if r := cfg.RegFilePerSM / regsPerCTA; r < limit {
			limit, by = r, "registers"
		}
	}
	if k.SharedMem > 0 {
		if s := cfg.SharedMemPerSM / k.SharedMem; s < limit {
			limit, by = s, "shared memory"
		}
	}
	if limit < 1 {
		limit, by = 1, "minimum"
	}
	occ := Occupancy{
		LimitedBy:         by,
		CTAsPerSM:         limit,
		WarpsPerSM:        limit * warpsPerCTA,
		ThreadsPerSM:      limit * k.CTAThreads,
		RegsPerThread:     k.Prog.NumReg,
		AssistRegsPerWarp: assistRegs,
		RegsAllocated:     limit * regsPerCTA,
	}
	occ.UnallocatedRegs = 1 - float64(occ.RegsAllocated)/float64(cfg.RegFilePerSM)
	return occ
}

// Warps access global memory through their SM's write buffer, which
// implements the executor's functional interface with staged (phase-A
// safe) semantics.
var _ core.GlobalMem = (*mem.WriteBuffer)(nil)
