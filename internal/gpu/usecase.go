package gpu

import (
	"fmt"

	"github.com/caba-sim/caba/internal/core"
	"github.com/caba-sim/caba/internal/isa"
	"github.com/caba-sim/caba/internal/obs"
	"github.com/caba-sim/caba/internal/snapshot"
)

// Assist-warp use cases beyond compression (Design.UseCase): the
// stride-detection prefetcher and the SFU result-cache memoizer from the
// framework generalization of the paper (Sections 7.1/7.2). Both follow
// the ecc.check precedent: the assist routine charges the timing cost of
// the hardware action (probing the LUT, issuing the prefetch loads)
// while the simulator's functional execution supplies the ground-truth
// values, so architected state is exact and the model measures only when
// the use case pays off, never whether it computes correctly.
//
// Both structures are per-SM, touched only by their owning SM (phase A)
// or the main goroutine, and serialize with the SM snapshot section so
// resumed runs stay bit-identical. They are nil unless the design's
// UseCase enables them, which keeps every existing design's behavior and
// golden outputs untouched.

// Stride-prefetcher geometry and policy knobs.
const (
	// pfTabSize is the direct-mapped stride-table size. Entries are
	// tagged by (warp slot, load PC); two streams hashing to the same
	// index evict each other (aliasing), exactly like a real PC-indexed
	// reference-prediction table.
	pfTabSize = 256
	// pfConfMax is the saturating confidence ceiling; pfConfFire is the
	// confidence a stream needs before triggers fire. Two matching
	// deltas arm a stream, one mismatch disarms it one step (hysteresis
	// rather than reset, so an isolated divergent access does not
	// cold-restart a long stream).
	pfConfMax  = 3
	pfConfFire = 2
	// pfRingSize bounds the usefulness ring: the last N prefetch-filled
	// lines, consumed by demand hits for the PrefetchUseful counter.
	pfRingSize = 64
	// pfRingEmpty marks an unused ring slot (line addresses are
	// line-aligned byte addresses, never all-ones).
	pfRingEmpty = ^uint64(0)
)

// strideEntry is one detector: a tagged (last line, stride, confidence)
// tuple plus the last triggered base, which suppresses duplicate
// triggers for the same window.
type strideEntry struct {
	tag      uint64 // (warp slot << 32) | load PC; mismatch re-allocates
	lastLine uint64
	stride   int64
	lastTrig uint64
	conf     uint8
	valid    bool
}

// prefetcher is the per-SM stride-detection unit: the table, the
// usefulness ring, and the count of prefetch-initiated MSHR fills still
// in flight (the pressure signal the throttle and the CausePrefetchMSHR
// re-attribution read).
type prefetcher struct {
	tab   [pfTabSize]strideEntry
	ring  [pfRingSize]uint64
	pos   int
	lines int
}

func newPrefetcher() *prefetcher {
	p := &prefetcher{}
	for i := range p.ring {
		p.ring[i] = pfRingEmpty
	}
	return p
}

// pfTag packs a stream identity; pfIndex maps it into the table.
func pfTag(slot int, pc int32) uint64 { return uint64(slot)<<32 | uint64(uint32(pc)) }

func pfIndex(tag uint64) int { return int(mix64(tag) & (pfTabSize - 1)) }

// train records one demand L1 miss for the stream and reports whether a
// confident, novel trigger should fire: base is the first line to fetch
// (one stride ahead of the miss) and stride the detected byte stride.
// The caller marks the trigger (markTriggered) only if it actually
// launches, so throttled triggers retry on the stream's next miss.
func (p *prefetcher) train(tag, ln uint64) (base uint64, stride int64, fire bool) {
	e := &p.tab[pfIndex(tag)]
	if !e.valid || e.tag != tag {
		*e = strideEntry{tag: tag, lastLine: ln, valid: true}
		return 0, 0, false
	}
	delta := int64(ln - e.lastLine)
	e.lastLine = ln
	if delta == 0 {
		return 0, 0, false // same line re-missed: no direction signal
	}
	if delta != e.stride {
		if e.conf > 0 {
			e.conf--
			return 0, 0, false
		}
		e.stride = delta
		return 0, 0, false
	}
	if e.conf < pfConfMax {
		e.conf++
	}
	if e.conf < pfConfFire {
		return 0, 0, false
	}
	base = uint64(int64(ln) + e.stride)
	if base == e.lastTrig {
		return 0, 0, false // this window is already covered
	}
	return base, e.stride, true
}

// markTriggered records a launched trigger's base for duplicate
// suppression.
func (p *prefetcher) markTriggered(tag, base uint64) {
	if e := &p.tab[pfIndex(tag)]; e.valid && e.tag == tag {
		e.lastTrig = base
	}
}

// noteFill records a prefetch-filled line in the usefulness ring.
func (p *prefetcher) noteFill(ln uint64) {
	p.ring[p.pos] = ln
	p.pos = (p.pos + 1) % pfRingSize
}

// noteHit consumes a ring entry on a demand hit, reporting whether the
// line was prefetch-filled (each fill is credited at most once).
func (p *prefetcher) noteHit(ln uint64) bool {
	for i := range p.ring {
		if p.ring[i] == ln {
			p.ring[i] = pfRingEmpty
			return true
		}
	}
	return false
}

// Result-cache geometry: memoSets x memoWays content-hash tags. The set
// index reuses the low tag bits that also select the shared-scratch LUT
// slot the probe/save routines address (64 slots x 16 bytes =
// core.SharedScratchSize).
const (
	memoSets     = 64
	memoWays     = 4
	memoSlotSize = 16
)

// memoCache is the per-SM result cache backing the memoization trigger:
// a bounded set-associative tag array over content-hashed SFU inputs,
// with deterministic per-set round-robin replacement. Only tags live
// here — the cached value is architecturally supplied by the simulator's
// functional execution (the ground truth the LUT would hold), so a tag
// hit means "the LUT has this result" and the probe routine charges the
// cost of reading it.
type memoCache struct {
	tags [memoSets * memoWays]uint64
	used [memoSets * memoWays]bool
	rr   [memoSets]uint8
}

// lookup probes the cache; hits do not touch replacement state, so the
// timing-visible decision depends only on architected history.
func (m *memoCache) lookup(key uint64) bool {
	base := int(key&(memoSets-1)) * memoWays
	for i := 0; i < memoWays; i++ {
		if m.used[base+i] && m.tags[base+i] == key {
			return true
		}
	}
	return false
}

// insert installs a tag, evicting round-robin within its set. Inserting
// a present tag is a no-op.
func (m *memoCache) insert(key uint64) {
	set := int(key & (memoSets - 1))
	base := set * memoWays
	for i := 0; i < memoWays; i++ {
		if m.used[base+i] && m.tags[base+i] == key {
			return
		}
	}
	way := int(m.rr[set])
	m.rr[set] = uint8((way + 1) % memoWays)
	m.tags[base+way], m.used[base+way] = key, true
}

// mix64 is the splitmix64 finalizer: the content hash both use cases
// index with. Full 64-bit avalanche keeps tag collisions negligible; the
// model treats a tag hit as exact (the paper targets hashing-tolerant
// kernels, and the functional replay supplies the true value anyway).
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// memoKeyFor content-hashes one SFU instruction instance: its PC plus
// every lane's source operand values, read before StepRef moves the
// register file (a source may alias the destination). Special-register
// sources are compile-time constants per lane and fold into the PC term.
func memoKeyFor(ex *core.Exec, in *isa.Superop) uint64 {
	h := mix64(uint64(uint32(in.PC)) ^ 0x9e3779b97f4a7c15)
	if !in.ASpec {
		for lane := 0; lane < core.WarpSize; lane++ {
			h = mix64(h ^ ex.Reg(lane, int(in.A)))
		}
	}
	if !in.BSpec {
		for lane := 0; lane < core.WarpSize; lane++ {
			h = mix64(h ^ ex.Reg(lane, int(in.B)))
		}
	}
	return h
}

// memoCtx links an in-flight memo probe back to the parent instruction
// it replays: the warp whose scoreboard holds the SFU destinations, and
// the superop to release on completion. It is an AWT entry User payload,
// serialized by reference like the decompression contexts.
type memoCtx struct {
	w   *warpCtx
	sop *isa.Superop
}

// --- Cause re-attribution (the new stall causes) ---

// mshrCause classifies an MSHR-overflow stall: with prefetch-initiated
// fills holding MSHR entries the overflow is (at least partly) the
// prefetcher's aggressiveness, and the attribution says so. pf.lines
// only changes inside issue (never during a quiescence window or batch
// window — fills run touch() first), so cached verdicts stay exact.
func (sm *SM) mshrCause() obs.Cause {
	if sm.pf != nil && sm.pf.lines > 0 {
		return obs.CausePrefetchMSHR
	}
	return obs.CauseMSHRFull
}

// depCause classifies a scoreboard stall: a warp whose pending producer
// is a memoization probe is waiting on the assist replay, not the SFU
// pipeline, and the attribution separates the two.
func (sm *SM) depCause(w *warpCtx) obs.Cause {
	if w.memoPending {
		return obs.CauseMemoWait
	}
	return obs.CauseScoreboard
}

// --- Trigger paths ---

// pfTrain records one demand miss with the stride unit and launches a
// prefetch assist warp when a stream is confident and the machine has
// headroom. Throttling is the paper's accuracy/coverage knob: triggers
// are dropped — never queued — when the AWC's utilization window is
// saturated, when prefetch fills already hold a quarter of the MSHR
// file, when total MSHR pressure is high, or when no AWT slot is free.
func (sm *SM) pfTrain(w *warpCtx, pc int32, ln uint64) {
	tag := pfTag(w.id, pc)
	base, stride, fire := sm.pf.train(tag, ln)
	if !fire {
		return
	}
	// Throttle on MSHR pressure: prefetch never takes more than a quarter
	// of the file, and never the entries a demand burst would need (the
	// degree's worth of lines must fit with a like-sized demand reserve
	// left over). LowPriorityThrottled folds in the AWC's own
	// memory-pressure signal, shared with the compression write path.
	mshrs := sm.sim.Cfg.L1MSHRs
	if sm.awc.LowPriorityThrottled() ||
		sm.pf.lines >= mshrs/4 ||
		sm.mshr.Outstanding()+2*core.PrefetchDegree > mshrs {
		sm.stat.PrefetchThrottled++
		return
	}
	rt := sm.sim.AWS.MustGet(core.RtPrefetch)
	host := sm.findAssistHost(rt.Priority, w.id)
	if host < 0 {
		sm.stat.PrefetchThrottled++
		return
	}
	sm.touch()
	ex := sm.newAssistExec(rt)
	for lane := 0; lane < core.PrefetchDegree; lane++ {
		ex.SetReg(lane, 2, base)
		ex.SetReg(lane, 3, uint64(stride))
	}
	e := sm.awc.Trigger(rt, host, ex, nil, sm.assistOnComplete(nil, core.RtPrefetch))
	if e == nil {
		sm.releaseAssistExec(ex)
		sm.stat.PrefetchThrottled++
		return
	}
	sm.pf.markTriggered(tag, base)
	sm.stat.PrefetchTriggers++
	sm.stat.AssistWarps++
	if sm.tr != nil {
		sm.traceAssistBegin(e, "prefetch")
	}
}

// memoSlotOff maps a content hash to its shared-scratch LUT byte offset
// — the live-in the AWC's trigger-side hash unit hands the probe/save
// routines in place of an in-routine SFU op.
func memoSlotOff(key uint64) uint64 { return (key & (memoSets - 1)) * memoSlotSize }

// tryMemoProbe launches the high-priority replay assist for a result
// cache hit. On success the parent's SFU destinations stay scoreboarded
// until the probe completes (finishMemoProbe) — the SFU port and its
// initiation interval are never occupied, which is the whole win. False
// means no AWT slot was free and the caller falls back to the SFU.
func (sm *SM) tryMemoProbe(w *warpCtx, in *isa.Superop, key uint64) bool {
	rt := sm.sim.AWS.MustGet(core.RtMemoProbe)
	host := sm.findAssistHost(rt.Priority, w.id)
	if host < 0 {
		return false
	}
	sm.touch()
	ex := sm.newAssistExec(rt)
	off := memoSlotOff(key)
	for lane := 0; lane < core.WarpSize; lane++ {
		ex.SetReg(lane, 2, key)
		ex.SetReg(lane, 4, off)
	}
	mc := &memoCtx{w: w, sop: in}
	e := sm.awc.Trigger(rt, host, ex, mc, sm.assistOnComplete(mc, core.RtMemoProbe))
	if e == nil {
		sm.releaseAssistExec(ex)
		return false
	}
	w.sb.MarkSop(in)
	w.inFlight++
	w.memoPending = true
	sm.stat.MemoHits++
	sm.stat.AssistWarps++
	if sm.tr != nil {
		sm.traceAssistBegin(e, "memo-probe")
	}
	return true
}

// finishMemoProbe retires a memo probe: the cached result is replayed
// into the parent's architected state (functionally it was already
// computed at issue — the ground truth the LUT holds), so the SFU
// destinations release and the warp resumes.
func (sm *SM) finishMemoProbe(mc *memoCtx) {
	sm.touch()
	w := mc.w
	w.sb.ClearSop(mc.sop)
	w.depStalled = false
	w.inFlight--
	w.memoPending = false
}

// tryMemoIssue issues an SFU instruction through the memoization probe
// path. Only called when the SFU port is saturated (portsAvailable
// failed on the initiation interval): a result-cache hit lets the
// instruction complete via a high-priority probe assist instead of
// waiting for the port, so memoization adds SFU throughput exactly
// where the pipe is the bottleneck. Returns true when the instruction
// issued (consuming the caller's issue slot, but no SFU port).
func (sm *SM) tryMemoIssue(w *warpCtx, in *isa.Superop) bool {
	key := memoKeyFor(w.exec, in) // reads pre-step register state
	if !sm.memo.lookup(key) {
		return false
	}
	if !sm.tryMemoProbe(w, in, key) {
		sm.stat.MemoNoSlot++ // hit, but no AWT slot: wait for the port
		return false
	}
	// The probe is in flight; the instruction itself retires through it.
	// The functional step runs now, supplying the architected result the
	// probe replays (the ground truth the LUT holds).
	info, ok := w.exec.StepRef()
	if !ok {
		return true // unreachable: in was CurrentSop, the step executes
	}
	if w.exec.Err != nil {
		sm.fail(fmt.Errorf("gpu: sm%d warp %d: %w", sm.id, w.id, w.exec.Err))
		return true
	}
	w.lastIssueCycle = sm.cycle
	sm.issuedBuf = append(sm.issuedBuf, w)
	sm.stat.WarpInstrs++
	sm.stat.ThreadInstrs += uint64(popcount32(info.ExecMask))
	sm.countClass(in)
	if w.exec.Done {
		sm.noteWarpDone(w)
	}
	return true
}

// tryMemoSave launches the low-priority install assist for a freshly
// computed result. The tag enters the Go-side cache only when the save
// actually launches, so the model never claims a hit the LUT would not
// have; a dropped save just costs a future miss.
func (sm *SM) tryMemoSave(w *warpCtx, key uint64) bool {
	if sm.awc.LowPriorityThrottled() {
		return false
	}
	rt := sm.sim.AWS.MustGet(core.RtMemoSave)
	host := sm.findAssistHost(rt.Priority, w.id)
	if host < 0 {
		return false
	}
	sm.touch()
	ex := sm.newAssistExec(rt)
	ex.SetReg(0, 2, key)
	ex.SetReg(0, 3, key)
	ex.SetReg(0, 4, memoSlotOff(key))
	e := sm.awc.Trigger(rt, host, ex, nil, sm.assistOnComplete(nil, core.RtMemoSave))
	if e == nil {
		sm.releaseAssistExec(ex)
		return false
	}
	sm.stat.AssistWarps++
	if sm.tr != nil {
		sm.traceAssistBegin(e, "memo-update")
	}
	return true
}

// --- Snapshot (appended to the SM section; layout gated by the hashed
// Design, so saver and loader always agree) ---

func (sm *SM) saveUseCases(w *snapshot.Writer) {
	if sm.pf != nil {
		p := sm.pf
		for i := range p.tab {
			e := &p.tab[i]
			w.U64(e.tag)
			w.U64(e.lastLine)
			w.U64(uint64(e.stride))
			w.U64(e.lastTrig)
			w.U8(e.conf)
			w.Bool(e.valid)
		}
		for _, ln := range p.ring {
			w.U64(ln)
		}
		w.Int(p.pos)
		w.Int(p.lines)
	}
	if sm.memo != nil {
		m := sm.memo
		for i := range m.tags {
			w.U64(m.tags[i])
			w.Bool(m.used[i])
		}
		for i := range m.rr {
			w.U8(m.rr[i])
		}
		for _, wp := range sm.warps {
			w.Bool(wp.memoPending)
		}
	}
}

func (sm *SM) loadUseCases(r *snapshot.Reader) error {
	if sm.pf != nil {
		p := sm.pf
		for i := range p.tab {
			e := &p.tab[i]
			e.tag = r.U64()
			e.lastLine = r.U64()
			e.stride = int64(r.U64())
			e.lastTrig = r.U64()
			e.conf = r.U8()
			e.valid = r.Bool()
		}
		for i := range p.ring {
			p.ring[i] = r.U64()
		}
		p.pos = r.Int()
		p.lines = r.Int()
		if err := r.Err(); err != nil {
			return err
		}
		if p.pos < 0 || p.pos >= pfRingSize || p.lines < 0 {
			return snapErrf("prefetcher state out of range")
		}
	}
	if sm.memo != nil {
		m := sm.memo
		for i := range m.tags {
			m.tags[i] = r.U64()
			m.used[i] = r.Bool()
		}
		for i := range m.rr {
			m.rr[i] = r.U8()
			if m.rr[i] >= memoWays {
				return snapErrf("result-cache replacement cursor out of range")
			}
		}
		for _, wp := range sm.warps {
			wp.memoPending = r.Bool()
		}
	}
	return r.Err()
}
