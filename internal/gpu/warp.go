package gpu

import (
	"math/bits"

	"github.com/caba-sim/caba/internal/core"
	"github.com/caba-sim/caba/internal/isa"
)

// regMask aliases the framework's scoreboard bitset (core.RegMask), which
// is shared with AWT entries so both warp kinds scoreboard without
// allocation.
type regMask = core.RegMask

// ctaCtx is one resident thread block on an SM.
type ctaCtx struct {
	id        int // CTA index within the grid
	shared    []byte
	warps     []*warpCtx
	liveWarps int
	atBarrier int
}

// warpCtx is one hardware warp slot.
type warpCtx struct {
	id   int // slot index within the SM
	cta  *ctaCtx
	exec *core.Exec
	sb   regMask

	valid bool
	// inFlight counts issued-but-not-retired instructions (for drain).
	inFlight int
	// pendingLoads counts outstanding global loads (the scoreboard blocks
	// dependents; independent later loads may issue, bounded by the MSHR).
	pendingLoads int
	// replay is the load whose overflow lines are still waiting for MSHR
	// slots; a warp has at most one.
	replay *loadReq
	// lastIssueCycle orders warps for the GTO "oldest" criterion.
	lastIssueCycle uint64
	// idle caches a nil CurrentSop verdict: the warp is done or parked at
	// a barrier, and stays that way until a barrier release (handleControl
	// or noteWarpDone) or a fresh CTA placement clears the flag.
	idle bool
	// depStalled caches a scoreboard-conflict verdict: the warp's current
	// instruction conflicts with its own in-flight destinations, so it
	// cannot issue until some of its scoreboard bits clear. The verdict is
	// monotone in between — a stalled warp cannot issue (its current
	// instruction and PC are pinned) and its scoreboard only gains bits —
	// so the flag stays valid across cycles and is invalidated exactly at
	// the three sites that clear bits from w.sb (wbPop, loadLineDone, the
	// zero-lane load cancel in issueMemory). Structural (port) failures
	// are never cached: port state mutates between slots.
	depStalled bool
	// memoPending marks a warp whose scoreboard holds the destinations of
	// an in-flight memoization probe: its dependence stalls are the assist
	// replay's latency, which the attribution charges as CauseMemoWait
	// instead of CauseScoreboard. Set with the probe trigger, cleared by
	// finishMemoProbe, serialized with the SM's use-case section.
	memoPending bool
}

// loadReq tracks one warp's in-flight global load (possibly several cache
// lines after coalescing).
type loadReq struct {
	warp         *warpCtx
	sop          *isa.Superop
	linesPending int
	issued       uint64
	// todo holds coalesced lines that could not allocate MSHR entries at
	// issue and await replay.
	todo []uint64
}

// popcount32 counts set bits in a lane mask.
func popcount32(m uint32) int { return bits.OnesCount32(m) }
