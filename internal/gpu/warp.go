package gpu

import (
	"math/bits"

	"github.com/caba-sim/caba/internal/core"
	"github.com/caba-sim/caba/internal/isa"
)

// regMask is a scoreboard bitset over the general registers and predicate
// registers of one warp (or one assist-warp context).
type regMask struct {
	g [4]uint64 // 256 general registers
	p uint8     // predicate registers
}

func (m *regMask) setReg(r isa.Reg) {
	if r != isa.RegNone && r.IsGeneral() {
		i := r.GeneralIndex()
		m.g[i/64] |= 1 << (i % 64)
	}
}

func (m *regMask) clearReg(r isa.Reg) {
	if r != isa.RegNone && r.IsGeneral() {
		i := r.GeneralIndex()
		m.g[i/64] &^= 1 << (i % 64)
	}
}

func (m *regMask) hasReg(r isa.Reg) bool {
	if r == isa.RegNone || !r.IsGeneral() {
		return false
	}
	i := r.GeneralIndex()
	return m.g[i/64]&(1<<(i%64)) != 0
}

func (m *regMask) setPred(p isa.Pred) {
	if p != isa.PredNone {
		m.p |= 1 << p
	}
}

func (m *regMask) clearPred(p isa.Pred) {
	if p != isa.PredNone {
		m.p &^= 1 << p
	}
}

func (m *regMask) hasPred(p isa.Pred) bool {
	return p != isa.PredNone && m.p&(1<<p) != 0
}

func (m *regMask) empty() bool {
	return m.g[0]|m.g[1]|m.g[2]|m.g[3] == 0 && m.p == 0
}

// conflicts reports whether issuing in must wait for pending writes
// (RAW on sources, guard and predicate reads; WAW on destinations).
func (m *regMask) conflicts(in *isa.Instr) bool {
	if m.empty() {
		return false
	}
	if m.hasReg(in.SrcA) || m.hasReg(in.SrcB) || m.hasReg(in.SrcC) || m.hasReg(in.Dst) {
		return true
	}
	if m.hasPred(in.Guard) || m.hasPred(in.PA) || m.hasPred(in.PB) || m.hasPred(in.PDst) {
		return true
	}
	return false
}

// markDsts records in's destinations as pending.
func (m *regMask) markDsts(in *isa.Instr) {
	m.setReg(in.Dst)
	m.setPred(in.PDst)
}

// clearDsts releases in's destinations.
func (m *regMask) clearDsts(in *isa.Instr) {
	m.clearReg(in.Dst)
	m.clearPred(in.PDst)
}

// ctaCtx is one resident thread block on an SM.
type ctaCtx struct {
	id        int // CTA index within the grid
	shared    []byte
	warps     []*warpCtx
	liveWarps int
	atBarrier int
}

// warpCtx is one hardware warp slot.
type warpCtx struct {
	id   int // slot index within the SM
	cta  *ctaCtx
	exec *core.Exec
	sb   regMask

	valid bool
	// inFlight counts issued-but-not-retired instructions (for drain).
	inFlight int
	// pendingLoads counts outstanding global loads (the scoreboard blocks
	// dependents; independent later loads may issue, bounded by the MSHR).
	pendingLoads int
	// replay is the load whose overflow lines are still waiting for MSHR
	// slots; a warp has at most one.
	replay *loadReq
	// lastIssueCycle orders warps for the GTO "oldest" criterion.
	lastIssueCycle uint64
}

// loadReq tracks one warp's in-flight global load (possibly several cache
// lines after coalescing).
type loadReq struct {
	warp         *warpCtx
	instr        *isa.Instr
	linesPending int
	issued       uint64
	// todo holds coalesced lines that could not allocate MSHR entries at
	// issue and await replay.
	todo []uint64
}

// popcount32 counts set bits in a lane mask.
func popcount32(m uint32) int { return bits.OnesCount32(m) }
