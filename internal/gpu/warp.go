package gpu

import (
	"math/bits"

	"github.com/caba-sim/caba/internal/core"
	"github.com/caba-sim/caba/internal/isa"
)

// regMask aliases the framework's scoreboard bitset (core.RegMask), which
// is shared with AWT entries so both warp kinds scoreboard without
// allocation.
type regMask = core.RegMask

// ctaCtx is one resident thread block on an SM.
type ctaCtx struct {
	id        int // CTA index within the grid
	shared    []byte
	warps     []*warpCtx
	liveWarps int
	atBarrier int
}

// warpCtx is one hardware warp slot.
type warpCtx struct {
	id   int // slot index within the SM
	cta  *ctaCtx
	exec *core.Exec
	sb   regMask

	valid bool
	// inFlight counts issued-but-not-retired instructions (for drain).
	inFlight int
	// pendingLoads counts outstanding global loads (the scoreboard blocks
	// dependents; independent later loads may issue, bounded by the MSHR).
	pendingLoads int
	// replay is the load whose overflow lines are still waiting for MSHR
	// slots; a warp has at most one.
	replay *loadReq
	// lastIssueCycle orders warps for the GTO "oldest" criterion.
	lastIssueCycle uint64
}

// loadReq tracks one warp's in-flight global load (possibly several cache
// lines after coalescing).
type loadReq struct {
	warp         *warpCtx
	instr        *isa.Instr
	linesPending int
	issued       uint64
	// todo holds coalesced lines that could not allocate MSHR entries at
	// issue and await replay.
	todo []uint64
}

// popcount32 counts set bits in a lane mask.
func popcount32(m uint32) int { return bits.OnesCount32(m) }
