package compress

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"
	"testing/quick"
)

// mkLine builds a LineSize line from 8-byte values, repeating the pattern.
func mkLine(vals ...uint64) []byte {
	line := make([]byte, LineSize)
	for i := 0; i < LineSize/8; i++ {
		binary.LittleEndian.PutUint64(line[i*8:], vals[i%len(vals)])
	}
	return line
}

func roundTrip(t *testing.T, alg AlgID, line []byte) Compressed {
	t.Helper()
	c, err := Compress(alg, line)
	if err != nil {
		t.Fatalf("Compress(%v): %v", alg, err)
	}
	if !c.IsCompressed() {
		return c
	}
	out := make([]byte, LineSize)
	if err := Decompress(c, out); err != nil {
		t.Fatalf("Decompress(%v enc=%d): %v", c.Alg, c.Enc, err)
	}
	if !bytes.Equal(out, line) {
		t.Fatalf("%v enc=%d: round trip mismatch\n in=%x\nout=%x", c.Alg, c.Enc, line, out)
	}
	return c
}

func TestBDIZeros(t *testing.T) {
	c := roundTrip(t, AlgBDI, make([]byte, LineSize))
	if BDIEncoding(c.Enc) != BDIZeros {
		t.Errorf("zero line: got encoding %v, want zeros", BDIEncoding(c.Enc))
	}
	if c.Size() != 1 {
		t.Errorf("zero line size = %d, want 1", c.Size())
	}
	if c.Bursts() != 1 {
		t.Errorf("zero line bursts = %d, want 1", c.Bursts())
	}
}

func TestBDIRepeat(t *testing.T) {
	c := roundTrip(t, AlgBDI, mkLine(0xdeadbeefcafef00d))
	if BDIEncoding(c.Enc) != BDIRepeat {
		t.Errorf("repeat line: got encoding %v, want repeat", BDIEncoding(c.Enc))
	}
	if c.Size() != 9 {
		t.Errorf("repeat size = %d, want 9", c.Size())
	}
}

func TestBDIBase8D1(t *testing.T) {
	// Pointers with small offsets: the paper's canonical case.
	vals := make([]uint64, 16)
	for i := range vals {
		vals[i] = 0x80001d000 + uint64(i*8)
	}
	c := roundTrip(t, AlgBDI, mkLine(vals...))
	if BDIEncoding(c.Enc) != BDIBase8D1 {
		t.Errorf("got encoding %v, want b8d1", BDIEncoding(c.Enc))
	}
	if got, want := c.Size(), BDIBase8D1.CompressedSize(); got != want {
		t.Errorf("size = %d, want %d", got, want)
	}
}

// TestBDIPaperExample reproduces Figure 5: a 64-byte region from PVC with
// one 8-byte pointer base plus an implicit zero base compresses with
// 1-byte deltas. Our 128-byte line duplicates the figure's 64B twice.
func TestBDIPaperExample(t *testing.T) {
	fig5 := []uint64{0x00, 0x80001d000, 0x10, 0x80001d000, 0x10, 0x80001d008, 0x20, 0x80001d010}
	line := mkLine(fig5...)
	c := roundTrip(t, AlgBDI, line)
	if BDIEncoding(c.Enc) != BDIBase8D1 {
		t.Fatalf("got encoding %v, want b8d1 (two bases: explicit pointer + implicit zero)", BDIEncoding(c.Enc))
	}
	// Figure 5: 64B -> 17B with one metadata byte, one 8B base and 8 1B
	// deltas. Our 128B line has 16 values: 1 enc + 2 mask + 8 base + 16
	// deltas = 27B, i.e. exactly 2x the figure's deltas for 2x the line.
	if c.Size() != 27 {
		t.Errorf("size = %d, want 27", c.Size())
	}
	if c.Bursts() != 1 {
		t.Errorf("bursts = %d, want 1 (4x bandwidth saving)", c.Bursts())
	}
}

func TestBDIMixedBases(t *testing.T) {
	// Alternating small immediates and large pointers exercises the
	// two-base (explicit + implicit zero) mask path.
	line := mkLine(0x7f, 0xaaaa00000000, 0x3, 0xaaaa00000010)
	c := roundTrip(t, AlgBDI, line)
	if !c.IsCompressed() {
		t.Fatal("mixed-base line should compress")
	}
}

func TestBDIIncompressible(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	line := make([]byte, LineSize)
	rng.Read(line)
	c, err := Compress(AlgBDI, line)
	if err != nil {
		t.Fatal(err)
	}
	if c.IsCompressed() {
		t.Errorf("random line compressed to %d bytes with %v", c.Size(), BDIEncoding(c.Enc))
	}
	if c.Bursts() != MaxBursts {
		t.Errorf("uncompressed bursts = %d, want %d", c.Bursts(), MaxBursts)
	}
}

func TestBDIEncodingSizes(t *testing.T) {
	want := map[BDIEncoding]int{
		BDIZeros:   1,
		BDIRepeat:  9,
		BDIBase8D1: 1 + 2 + 8 + 16,
		BDIBase8D2: 1 + 2 + 8 + 32,
		BDIBase8D4: 1 + 2 + 8 + 64,
		BDIBase4D1: 1 + 4 + 4 + 32,
		BDIBase4D2: 1 + 4 + 4 + 64,
		BDIBase2D1: 1 + 8 + 2 + 64,
	}
	for e, w := range want {
		if got := e.CompressedSize(); got != w {
			t.Errorf("%v size = %d, want %d", e, got, w)
		}
	}
}

func TestBDIPicksSmallestEncoding(t *testing.T) {
	// 4-byte values with tiny deltas: b4d1 (41B) beats b8d1's ability
	// (which fails because adjacent 4B values pack into 8B values with
	// huge apparent deltas).
	line := make([]byte, LineSize)
	for i := 0; i < 32; i++ {
		binary.LittleEndian.PutUint32(line[i*4:], 0x40000000+uint32(i))
	}
	c := roundTrip(t, AlgBDI, line)
	if BDIEncoding(c.Enc) != BDIBase8D1 && BDIEncoding(c.Enc) != BDIBase4D1 {
		t.Errorf("got %v; want a 1-byte-delta encoding", BDIEncoding(c.Enc))
	}
	best := LineSize
	for e := BDIZeros; e < BDINumEncodings; e++ {
		w, _ := e.Geometry()
		if w == 0 {
			continue
		}
		if bdiFits(line, e) && e.CompressedSize() < best {
			best = e.CompressedSize()
		}
	}
	if c.Size() != best {
		t.Errorf("size %d, smallest feasible %d", c.Size(), best)
	}
}

func TestFPCZeroLine(t *testing.T) {
	c := roundTrip(t, AlgFPC, make([]byte, LineSize))
	if !c.IsCompressed() {
		t.Fatal("zero line should FPC-compress")
	}
	// 1 enc + 12 code bytes + 0 data.
	if c.Size() != 13 {
		t.Errorf("size = %d, want 13", c.Size())
	}
}

func TestFPCPatterns(t *testing.T) {
	cases := []struct {
		name string
		w    uint32
		code int
	}{
		{"zero", 0, fpcZero},
		{"sext4 positive", 7, fpcSExt4},
		{"sext4 negative", 0xFFFFFFF9, fpcSExt4},
		{"sext8", 0x75, fpcSExt8},
		{"sext8 negative", 0xFFFFFF80, fpcSExt8},
		{"sext16", 0x7FFF, fpcSExt16},
		{"zerolow", 0xABCD0000, fpcZeroLow},
		{"halfsext", 0x007F0012, fpcHalfSExt},
		{"repbyte", 0x5A5A5A5A, fpcRepByte},
		{"raw", 0x12345678, fpcRaw},
	}
	for _, tc := range cases {
		if got := fpcClassify(tc.w); got != tc.code {
			t.Errorf("%s: classify(%#x) = %d, want %d", tc.name, tc.w, got, tc.code)
		}
	}
}

func TestFPCRoundTripPatternMix(t *testing.T) {
	line := make([]byte, LineSize)
	words := []uint32{0, 7, 0xFFFFFFF9, 0x75, 0x7FFF, 0xABCD0000, 0x007F0012, 0x5A5A5A5A, 0x12345678, 0xFFFFFF80}
	for i := 0; i < fpcWords; i++ {
		binary.LittleEndian.PutUint32(line[i*4:], words[i%len(words)])
	}
	c := roundTrip(t, AlgFPC, line)
	if !c.IsCompressed() {
		t.Fatal("pattern mix should compress")
	}
}

func TestCPackZeroLine(t *testing.T) {
	c := roundTrip(t, AlgCPack, make([]byte, LineSize))
	if !c.IsCompressed() {
		t.Fatal("zero line should C-Pack-compress")
	}
	// 1 len byte + 8 code bytes (32 x 2 bits) + 0 data.
	if c.Size() != 9 {
		t.Errorf("size = %d, want 9", c.Size())
	}
}

func TestCPackDictionaryHits(t *testing.T) {
	// A few distinct words repeated: after the first occurrence each repeat
	// is a 6-bit full match.
	line := make([]byte, LineSize)
	words := []uint32{0xdeadbeef, 0xcafef00d, 0x12345678}
	for i := 0; i < cpackWords; i++ {
		binary.LittleEndian.PutUint32(line[i*4:], words[i%len(words)])
	}
	c := roundTrip(t, AlgCPack, line)
	if !c.IsCompressed() {
		t.Fatal("dictionary-friendly line should compress")
	}
	if c.Size() > 40 {
		t.Errorf("size = %d; want strong dictionary compression (<= 40)", c.Size())
	}
}

func TestCPackPartialMatches(t *testing.T) {
	// Words sharing the top 3 bytes: first is raw, rest are mmxx.
	line := make([]byte, LineSize)
	for i := 0; i < cpackWords; i++ {
		binary.LittleEndian.PutUint32(line[i*4:], 0xAABBCC00|uint32(i))
	}
	c := roundTrip(t, AlgCPack, line)
	if !c.IsCompressed() {
		t.Fatal("partial-match line should compress")
	}
}

func TestCPackLowByteWords(t *testing.T) {
	line := make([]byte, LineSize)
	for i := 0; i < cpackWords; i++ {
		binary.LittleEndian.PutUint32(line[i*4:], uint32(i+1))
	}
	roundTrip(t, AlgCPack, line)
}

func TestBestPicksSmallest(t *testing.T) {
	// Text-like data favours FPC/C-Pack; pointer arrays favour BDI. Best
	// must never be larger than any individual algorithm.
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		line := randomPatternLine(rng)
		best, _ := Compress(AlgBest, line)
		for _, alg := range []AlgID{AlgBDI, AlgFPC, AlgCPack} {
			c, _ := Compress(alg, line)
			if c.IsCompressed() && (!best.IsCompressed() || best.Size() > c.Size()) {
				t.Fatalf("trial %d: best (%v, %d) worse than %v (%d)", trial, best.Alg, best.Size(), alg, c.Size())
			}
		}
		if best.IsCompressed() {
			roundTrip(t, best.Alg, line)
		}
	}
}

// randomPatternLine generates lines that look like real application data:
// zero runs, small integers, pointer sequences, repeated words, text bytes
// and noise.
func randomPatternLine(rng *rand.Rand) []byte {
	line := make([]byte, LineSize)
	switch rng.Intn(6) {
	case 0: // zeros with occasional spikes
		for i := 0; i < 4; i++ {
			line[rng.Intn(LineSize)] = byte(rng.Intn(256))
		}
	case 1: // small 4-byte counters
		for i := 0; i < 32; i++ {
			binary.LittleEndian.PutUint32(line[i*4:], uint32(rng.Intn(1000)))
		}
	case 2: // 8-byte pointers with small offsets
		base := rng.Uint64() &^ 0xFFF
		for i := 0; i < 16; i++ {
			binary.LittleEndian.PutUint64(line[i*8:], base+uint64(rng.Intn(256)))
		}
	case 3: // few distinct words
		var ws [3]uint32
		for i := range ws {
			ws[i] = rng.Uint32()
		}
		for i := 0; i < 32; i++ {
			binary.LittleEndian.PutUint32(line[i*4:], ws[rng.Intn(3)])
		}
	case 4: // ASCII text
		for i := range line {
			line[i] = byte(32 + rng.Intn(95))
		}
	case 5: // noise
		rng.Read(line)
	}
	return line
}

// TestQuickRoundTripAll is the core property test: any compressible line
// decompresses to itself, for every algorithm.
func TestQuickRoundTripAll(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	f := func(seed int64) bool {
		lineRng := rand.New(rand.NewSource(seed ^ rng.Int63()))
		line := randomPatternLine(lineRng)
		for _, alg := range []AlgID{AlgBDI, AlgFPC, AlgCPack, AlgBest} {
			c, err := Compress(alg, line)
			if err != nil {
				return false
			}
			if !c.IsCompressed() {
				continue
			}
			out := make([]byte, LineSize)
			if err := Decompress(c, out); err != nil {
				return false
			}
			if !bytes.Equal(out, line) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickCompressedNeverLarger checks size sanity for all algorithms.
func TestQuickCompressedNeverLarger(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	f := func(seed int64) bool {
		line := randomPatternLine(rand.New(rand.NewSource(seed ^ rng.Int63())))
		for _, alg := range []AlgID{AlgBDI, AlgFPC, AlgCPack, AlgBest} {
			c, _ := Compress(alg, line)
			if c.IsCompressed() && c.Size() >= LineSize {
				return false
			}
			if b := c.Bursts(); b < 1 || b > MaxBursts {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestCompressRejectsBadLine(t *testing.T) {
	if _, err := Compress(AlgBDI, make([]byte, 64)); err != ErrBadLine {
		t.Errorf("short line: err = %v, want ErrBadLine", err)
	}
	if err := Decompress(Compressed{Alg: AlgBDI, Data: []byte{0}}, make([]byte, 64)); err != ErrBadLine {
		t.Errorf("short out: err = %v, want ErrBadLine", err)
	}
}

func TestDecompressNoneIsError(t *testing.T) {
	if err := Decompress(Compressed{Alg: AlgNone}, make([]byte, LineSize)); err == nil {
		t.Error("decompressing an uncompressed line should error")
	}
}

func TestDecompressCorruptData(t *testing.T) {
	cases := []Compressed{
		{Alg: AlgBDI, Enc: uint8(BDINumEncodings) + 3, Data: []byte{0}},
		{Alg: AlgBDI, Enc: uint8(BDIRepeat), Data: []byte{byte(BDIRepeat), 1, 2}},
		{Alg: AlgBDI, Enc: uint8(BDIBase8D1), Data: []byte{byte(BDIBase8D1), 0}},
		{Alg: AlgBDI, Enc: uint8(BDIBase8D1), Data: []byte{byte(BDIZeros)}},
		{Alg: AlgFPC, Data: []byte{0, 1, 2}},
		{Alg: AlgCPack, Data: []byte{200, 1}},
	}
	out := make([]byte, LineSize)
	for i, c := range cases {
		if err := Decompress(c, out); err == nil {
			t.Errorf("case %d: corrupt data decompressed without error", i)
		}
	}
}

func TestRatioAccumulation(t *testing.T) {
	var r Ratio
	r.Add(Compressed{Alg: AlgBDI, Enc: uint8(BDIZeros), Data: []byte{0}}) // 1 burst
	r.Add(Compressed{Alg: AlgNone})                                       // 4 bursts
	if r.Lines != 2 || r.CompressedLines != 1 {
		t.Errorf("lines = %d/%d, want 2/1", r.CompressedLines, r.Lines)
	}
	if got, want := r.Value(), 8.0/5.0; got != want {
		t.Errorf("ratio = %v, want %v", got, want)
	}
}

func TestMeasureRatio(t *testing.T) {
	data := make([]byte, 4*LineSize) // all zeros: 4 lines x 1 burst vs 16
	ratio, err := MeasureRatio(AlgBDI, data)
	if err != nil {
		t.Fatal(err)
	}
	if ratio != 4.0 {
		t.Errorf("zero data ratio = %v, want 4.0", ratio)
	}
	if _, err := MeasureRatio(AlgBDI, data[:100]); err == nil {
		t.Error("non-multiple length should error")
	}
}

func TestParseAlg(t *testing.T) {
	for _, alg := range []AlgID{AlgNone, AlgBDI, AlgFPC, AlgCPack, AlgBest} {
		got, err := ParseAlg(alg.String())
		if err != nil || got != alg {
			t.Errorf("ParseAlg(%q) = %v, %v", alg.String(), got, err)
		}
	}
	if _, err := ParseAlg("gzip"); err == nil {
		t.Error("unknown algorithm should error")
	}
}

func TestHWLatency(t *testing.T) {
	d, c := HWLatency(AlgBDI)
	if d != 1 || c != 5 {
		t.Errorf("BDI HW latency = %d/%d, want 1/5 (Section 5)", d, c)
	}
	for _, alg := range []AlgID{AlgFPC, AlgCPack} {
		d, c := HWLatency(alg)
		if d <= 1 || c <= 0 {
			t.Errorf("%v HW latency = %d/%d; serial algorithms must be multi-cycle", alg, d, c)
		}
	}
}

func BenchmarkBDICompress(b *testing.B) {
	line := mkLine(0x80001d000, 0x10, 0x80001d008, 0x20)
	b.SetBytes(LineSize)
	for i := 0; i < b.N; i++ {
		if _, err := Compress(AlgBDI, line); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBDIDecompress(b *testing.B) {
	line := mkLine(0x80001d000, 0x10, 0x80001d008, 0x20)
	c, _ := Compress(AlgBDI, line)
	out := make([]byte, LineSize)
	b.SetBytes(LineSize)
	for i := 0; i < b.N; i++ {
		if err := Decompress(c, out); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFPCCompress(b *testing.B) {
	line := make([]byte, LineSize)
	for i := 0; i < fpcWords; i++ {
		binary.LittleEndian.PutUint32(line[i*4:], uint32(i%7))
	}
	b.SetBytes(LineSize)
	for i := 0; i < b.N; i++ {
		if _, err := Compress(AlgFPC, line); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCPackCompress(b *testing.B) {
	line := make([]byte, LineSize)
	for i := 0; i < cpackWords; i++ {
		binary.LittleEndian.PutUint32(line[i*4:], 0xAABBCC00|uint32(i%5))
	}
	b.SetBytes(LineSize)
	for i := 0; i < b.N; i++ {
		if _, err := Compress(AlgCPack, line); err != nil {
			b.Fatal(err)
		}
	}
}
