package compress

import (
	"encoding/binary"
	"fmt"
)

// Base-Delta-Immediate compression (Pekhimenko et al., PACT 2012), the
// paper's primary algorithm. A line is viewed as fixed-size values (16x8B,
// 32x4B or 64x2B for a 128B line); each value is stored as a small signed
// delta from either a single explicit base (the first value that is not
// zero-compressible) or an implicit zero base. A per-value mask selects the
// base, which is what lets one line mix pointers with small integers
// (the "Immediate" part).
//
// Compressed layout (what an assist warp walks with ld.stage):
//
//	[0]                  encoding byte (BDIEncoding)
//	[1 : 1+n/8]          base-select bitmask, bit i set => value i uses the
//	                     explicit base, clear => zero base (n = value count)
//	[.. +width]          explicit base, little endian
//	[.. +n*deltaSize]    signed deltas, little endian
//
// The all-zero and repeated-value encodings have no mask or deltas.

// BDIEncoding enumerates the supported encodings. The Assist Warp Store is
// indexed by this value: the paper stores a separate decompression
// subroutine per encoding (Section 4.1.2).
type BDIEncoding uint8

// BDI encodings, from cheapest to most expensive.
const (
	BDIZeros   BDIEncoding = iota // entire line is zero
	BDIRepeat                     // line is one 8-byte value repeated
	BDIBase8D1                    // 8-byte values, 1-byte deltas
	BDIBase8D2                    // 8-byte values, 2-byte deltas
	BDIBase8D4                    // 8-byte values, 4-byte deltas
	BDIBase4D1                    // 4-byte values, 1-byte deltas
	BDIBase4D2                    // 4-byte values, 2-byte deltas
	BDIBase2D1                    // 2-byte values, 1-byte deltas
	BDINumEncodings
)

var bdiEncNames = [...]string{"zeros", "repeat", "b8d1", "b8d2", "b8d4", "b4d1", "b4d2", "b2d1"}

// String returns the short encoding name.
func (e BDIEncoding) String() string {
	if int(e) < len(bdiEncNames) {
		return bdiEncNames[e]
	}
	return fmt.Sprintf("bdienc(%d)", uint8(e))
}

// Geometry returns the value width and delta size in bytes for a base-delta
// encoding (zero for BDIZeros/BDIRepeat).
func (e BDIEncoding) Geometry() (width, delta int) {
	switch e {
	case BDIBase8D1:
		return 8, 1
	case BDIBase8D2:
		return 8, 2
	case BDIBase8D4:
		return 8, 4
	case BDIBase4D1:
		return 4, 1
	case BDIBase4D2:
		return 4, 2
	case BDIBase2D1:
		return 2, 1
	}
	return 0, 0
}

// CompressedSize returns the compressed byte size of the encoding for a
// LineSize line (including the encoding byte).
func (e BDIEncoding) CompressedSize() int {
	switch e {
	case BDIZeros:
		return 1
	case BDIRepeat:
		return 1 + 8
	}
	w, d := e.Geometry()
	if w == 0 {
		return LineSize
	}
	n := LineSize / w
	return 1 + n/8 + w + n*d
}

func loadLE(b []byte, width int) uint64 {
	switch width {
	case 1:
		return uint64(b[0])
	case 2:
		return uint64(binary.LittleEndian.Uint16(b))
	case 4:
		return uint64(binary.LittleEndian.Uint32(b))
	case 8:
		return binary.LittleEndian.Uint64(b)
	}
	panic("compress: bad width")
}

func storeLE(b []byte, v uint64, width int) {
	switch width {
	case 1:
		b[0] = byte(v)
	case 2:
		binary.LittleEndian.PutUint16(b, uint16(v))
	case 4:
		binary.LittleEndian.PutUint32(b, uint32(v))
	case 8:
		binary.LittleEndian.PutUint64(b, v)
	default:
		panic("compress: bad width")
	}
}

// fitsSigned reports whether signed value v fits in deltaSize bytes.
func fitsSigned(v int64, deltaSize int) bool {
	shift := uint(64 - deltaSize*8)
	return (v<<shift)>>shift == v
}

// signExtendWidth interprets the low `width` bytes of v as a signed value.
func signExtendWidth(v uint64, width int) int64 {
	shift := uint(64 - width*8)
	return int64(v<<shift) >> shift
}

func bdiCompress(line []byte) Compressed {
	// All-zero check.
	zero := true
	for _, b := range line {
		if b != 0 {
			zero = false
			break
		}
	}
	if zero {
		return Compressed{Alg: AlgBDI, Enc: uint8(BDIZeros), Data: []byte{byte(BDIZeros)}}
	}
	// Repeated 8-byte value check.
	first := binary.LittleEndian.Uint64(line)
	repeat := true
	for off := 8; off < LineSize; off += 8 {
		if binary.LittleEndian.Uint64(line[off:]) != first {
			repeat = false
			break
		}
	}
	if repeat {
		data := make([]byte, 9)
		data[0] = byte(BDIRepeat)
		binary.LittleEndian.PutUint64(data[1:], first)
		return Compressed{Alg: AlgBDI, Enc: uint8(BDIRepeat), Data: data}
	}
	// Base-delta encodings, in order of increasing compressed size so the
	// first hit is the best.
	order := [...]BDIEncoding{BDIBase8D1, BDIBase4D1, BDIBase8D2, BDIBase4D2, BDIBase8D4, BDIBase2D1}
	bestEnc := BDINumEncodings
	bestSize := LineSize
	for _, e := range order {
		if s := e.CompressedSize(); s < bestSize && bdiFits(line, e) {
			bestEnc, bestSize = e, s
		}
	}
	if bestEnc == BDINumEncodings {
		return Compressed{Alg: AlgNone}
	}
	return Compressed{Alg: AlgBDI, Enc: uint8(bestEnc), Data: bdiEncode(line, bestEnc)}
}

// BDICompressAs compresses the line with one specific base-delta encoding,
// reporting ok=false when the line does not fit it. Used to verify the
// per-encoding CABA assist-warp subroutines against this oracle.
func BDICompressAs(line []byte, e BDIEncoding) (Compressed, bool) {
	if len(line) != LineSize {
		return Compressed{}, false
	}
	if w, _ := e.Geometry(); w == 0 || !bdiFits(line, e) {
		return Compressed{}, false
	}
	return Compressed{Alg: AlgBDI, Enc: uint8(e), Data: bdiEncode(line, e)}, true
}

// bdiFits reports whether every value in the line compresses under encoding
// e using either the explicit base (first non-zero-fitting value) or the
// implicit zero base.
func bdiFits(line []byte, e BDIEncoding) bool {
	width, deltaSize := e.Geometry()
	base, haveBase := uint64(0), false
	for off := 0; off < LineSize; off += width {
		v := loadLE(line[off:], width)
		sv := signExtendWidth(v, width)
		if fitsSigned(sv, deltaSize) {
			continue // zero-base immediate
		}
		if !haveBase {
			base, haveBase = v, true
			continue
		}
		d := signExtendWidth(v-base, width)
		if !fitsSigned(d, deltaSize) {
			return false
		}
	}
	return true
}

func bdiEncode(line []byte, e BDIEncoding) []byte {
	width, deltaSize := e.Geometry()
	n := LineSize / width
	data := make([]byte, e.CompressedSize())
	data[0] = byte(e)
	mask := data[1 : 1+n/8]
	basePos := 1 + n/8
	deltaPos := basePos + width

	base, haveBase := uint64(0), false
	for i := 0; i < n; i++ {
		v := loadLE(line[i*width:], width)
		sv := signExtendWidth(v, width)
		var d int64
		if fitsSigned(sv, deltaSize) {
			d = sv // zero base
		} else {
			if !haveBase {
				base, haveBase = v, true
			}
			mask[i/8] |= 1 << (i % 8)
			d = signExtendWidth(v-base, width)
		}
		storeLE(data[deltaPos+i*deltaSize:], uint64(d), deltaSize)
	}
	storeLE(data[basePos:], base, width)
	return data
}

func bdiDecompress(enc uint8, data []byte, out []byte) error {
	e := BDIEncoding(enc)
	if e >= BDINumEncodings {
		return fmt.Errorf("compress: bad BDI encoding %d", enc)
	}
	if len(data) < 1 || data[0] != enc {
		return fmt.Errorf("compress: BDI data/encoding mismatch")
	}
	switch e {
	case BDIZeros:
		for i := range out {
			out[i] = 0
		}
		return nil
	case BDIRepeat:
		if len(data) != 9 {
			return fmt.Errorf("compress: bad BDI repeat payload")
		}
		v := binary.LittleEndian.Uint64(data[1:])
		for off := 0; off < LineSize; off += 8 {
			binary.LittleEndian.PutUint64(out[off:], v)
		}
		return nil
	}
	width, deltaSize := e.Geometry()
	n := LineSize / width
	if len(data) != e.CompressedSize() {
		return fmt.Errorf("compress: bad BDI payload size %d for %v", len(data), e)
	}
	mask := data[1 : 1+n/8]
	basePos := 1 + n/8
	deltaPos := basePos + width
	base := loadLE(data[basePos:], width)
	for i := 0; i < n; i++ {
		d := signExtendWidth(loadLE(data[deltaPos+i*deltaSize:], deltaSize), deltaSize)
		var v uint64
		if mask[i/8]&(1<<(i%8)) != 0 {
			v = base + uint64(d)
		} else {
			v = uint64(d)
		}
		storeLE(out[i*width:], ZeroExtendWidth(v, width), width)
	}
	return nil
}

// ZeroExtendWidth masks v to `width` bytes.
func ZeroExtendWidth(v uint64, width int) uint64 {
	if width >= 8 {
		return v
	}
	return v & ((uint64(1) << (uint(width) * 8)) - 1)
}
