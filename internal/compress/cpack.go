package compress

import (
	"encoding/binary"
	"fmt"
)

// C-Pack (Chen et al., IEEE TVLSI 2010), in the CABA-adapted form of
// Section 4.1.3. The paper reduces the number of supported encodings
// (losing little compressibility, since bandwidth savings quantize to 32B
// bursts anyway) and hoists all metadata to the head of the line so a
// decompressing assist warp can locate every word up front.
//
// Our adaptation keeps four patterns with *fixed* 2-bit codes, which makes
// per-word data offsets a parallel prefix sum over known lengths:
//
//	00  zzzz  zero word                                   (0 data bits)
//	01  xxxx  uncompressed word; pushed into the          (32)
//	          dictionary while it has free entries
//	10  mmmm  full match against dictionary entry b       (4: index)
//	11  mmxx  high-3-byte match + low-byte literal        (4+8)
//
// The dictionary is the line's first (up to) 16 raw words in order — no
// FIFO wraparound — so a decompressor can recover every entry directly
// from the data stream without decode-order dependencies. This is what
// lets the CABA decompression subroutine run all 32 words in parallel.
//
// Layout: [0] encoding byte (0), [1..9) fixed 64-bit code stream
// (2 bits/word, LSB-first), [9..) data bitstream.

const cpackWords = LineSize / 4
const cpackDictSize = 16
const cpackCodeBytes = cpackWords * 2 / 8
const cpackDataStart = 1 + cpackCodeBytes

const (
	cpZero = 0 // 00
	cpRaw  = 1 // 01
	cpFull = 2 // 10
	cpMMXX = 3 // 11
)

// cpackDataBits[code] is the data-stream payload length.
var cpackDataBits = [4]uint{0, 32, 4, 12}

type cpackDict struct {
	entries [cpackDictSize]uint32
	n       int
}

func (d *cpackDict) push(w uint32) {
	if d.n < cpackDictSize {
		d.entries[d.n] = w
		d.n++
	}
}

// match finds the best dictionary match: exact (cpFull) anywhere beats a
// partial (cpMMXX) match; among partials the first wins.
func (d *cpackDict) match(w uint32) (int, int) {
	bestPat, bestIdx := cpRaw, 0
	for i := 0; i < d.n; i++ {
		e := d.entries[i]
		if e == w {
			return cpFull, i
		}
		if bestPat == cpRaw && e&0xFFFFFF00 == w&0xFFFFFF00 {
			bestPat, bestIdx = cpMMXX, i
		}
	}
	return bestPat, bestIdx
}

func cpackCompress(line []byte) (Compressed, error) {
	var dict cpackDict
	var cw, dw bitWriter
	for i := 0; i < cpackWords; i++ {
		w := binary.LittleEndian.Uint32(line[i*4:])
		pat, idx := cpZero, 0
		if w != 0 {
			pat, idx = dict.match(w)
		}
		cw.write(uint64(pat), 2)
		switch pat {
		case cpRaw:
			dw.write(uint64(w), 32)
			dict.push(w)
		case cpFull:
			dw.write(uint64(idx), 4)
		case cpMMXX:
			dw.write(uint64(idx), 4)
			dw.write(uint64(w&0xFF), 8)
		}
	}
	size := cpackDataStart + (dw.bitLen()+7)/8
	if size >= LineSize {
		return Compressed{Alg: AlgNone}, nil
	}
	data := make([]byte, cpackDataStart, size)
	data[0] = 0
	copy(data[1:], cw.bytes())
	data = append(data, dw.bytes()...)
	if len(data) != size {
		return Compressed{}, fmt.Errorf("compress: C-Pack size accounting mismatch: emitted %d bytes, computed %d", len(data), size)
	}
	return Compressed{Alg: AlgCPack, Enc: 0, Data: data}, nil
}

func cpackDecompress(data, out []byte) error {
	if len(data) < cpackDataStart {
		return fmt.Errorf("compress: truncated C-Pack line")
	}
	cr := bitReader{buf: data[1:cpackDataStart]}
	dr := bitReader{buf: data[cpackDataStart:]}
	var dict cpackDict
	for i := 0; i < cpackWords; i++ {
		pat := int(cr.read(2))
		var w uint32
		switch pat {
		case cpZero:
		case cpRaw:
			w = uint32(dr.read(32))
			dict.push(w)
		case cpFull, cpMMXX:
			idx := int(dr.read(4))
			if idx >= dict.n {
				return fmt.Errorf("compress: C-Pack dictionary index %d out of range (%d entries)", idx, dict.n)
			}
			if pat == cpFull {
				w = dict.entries[idx]
			} else {
				w = dict.entries[idx]&0xFFFFFF00 | uint32(dr.read(8))
			}
		}
		binary.LittleEndian.PutUint32(out[i*4:], w)
	}
	if cr.err || dr.err {
		return fmt.Errorf("compress: C-Pack bitstream underflow")
	}
	return nil
}
