// Package compress implements the three hardware cache-line compression
// algorithms the paper maps onto CABA assist warps: Base-Delta-Immediate
// (BDI, Pekhimenko et al., PACT 2012), Frequent Pattern Compression (FPC,
// Alameldeen & Wood, 2004) and C-Pack (Chen et al., 2010), plus a
// best-of-all selector.
//
// These are the bit-exact reference implementations. They serve three
// roles: (1) the compression/decompression "logic" of the HW-BDI and
// Ideal-BDI designs, (2) the oracle against which the CABA assist-warp
// instruction subroutines are verified, and (3) the source of per-line
// size/burst metadata that drives the bandwidth model.
package compress

import (
	"errors"
	"fmt"
)

// LineSize is the cache-line size in bytes (GPGPU-Sim baseline).
const LineSize = 128

// BurstSize is the DRAM burst granularity in bytes (GDDR5, 32B per burst;
// an uncompressed line moves in LineSize/BurstSize = 4 bursts).
const BurstSize = 32

// MaxBursts is the burst count of an uncompressed line.
const MaxBursts = LineSize / BurstSize

// AlgID identifies a compression algorithm.
type AlgID uint8

// Algorithm identifiers.
const (
	AlgNone AlgID = iota // stored uncompressed
	AlgBDI
	AlgFPC
	AlgCPack
	AlgBest // per-line best of BDI/FPC/C-Pack
)

var algNames = [...]string{"none", "bdi", "fpc", "cpack", "best"}

// String returns the lower-case algorithm name.
func (a AlgID) String() string {
	if int(a) < len(algNames) {
		return algNames[a]
	}
	return fmt.Sprintf("alg(%d)", uint8(a))
}

// ParseAlg maps a name to an AlgID.
func ParseAlg(s string) (AlgID, error) {
	for i, n := range algNames {
		if n == s {
			return AlgID(i), nil
		}
	}
	return AlgNone, fmt.Errorf("compress: unknown algorithm %q", s)
}

// Compressed is one compressed cache line. Data includes all metadata the
// decompressor needs except Alg/Enc, which the memory system stores in the
// per-line metadata (MD) structure per Section 4.3.2 of the paper.
type Compressed struct {
	Alg  AlgID
	Enc  uint8 // algorithm-specific encoding id
	Data []byte
}

// Size returns the compressed size in bytes (LineSize when uncompressed).
func (c Compressed) Size() int {
	if c.Alg == AlgNone {
		return LineSize
	}
	return len(c.Data)
}

// Bursts returns the number of 32B DRAM bursts needed to move this line.
// Bandwidth benefits quantize to burst multiples (Section 4.1.3).
func (c Compressed) Bursts() int {
	n := (c.Size() + BurstSize - 1) / BurstSize
	if n < 1 {
		n = 1
	}
	if n > MaxBursts {
		n = MaxBursts
	}
	return n
}

// IsCompressed reports whether the line is stored in compressed form.
func (c Compressed) IsCompressed() bool { return c.Alg != AlgNone }

// ErrBadLine is returned when a line of the wrong size is supplied.
var ErrBadLine = errors.New("compress: line must be exactly LineSize bytes")

// Compress compresses line with the given algorithm. A result with
// Alg == AlgNone means the line did not benefit and is stored raw (the
// returned Data is nil in that case; callers keep the original line).
// Lines must be exactly LineSize bytes. Internal panics (invariant
// violations in an encoder) are converted to errors; Compress never
// panics on any input.
func Compress(alg AlgID, line []byte) (c Compressed, err error) {
	defer func() {
		if r := recover(); r != nil {
			c, err = Compressed{}, fmt.Errorf("compress: internal panic compressing with %v: %v", alg, r)
		}
	}()
	if len(line) != LineSize {
		return Compressed{}, ErrBadLine
	}
	switch alg {
	case AlgNone:
		return Compressed{Alg: AlgNone}, nil
	case AlgBDI:
		return bdiCompress(line), nil
	case AlgFPC:
		return fpcCompress(line)
	case AlgCPack:
		return cpackCompress(line)
	case AlgBest:
		return bestCompress(line)
	}
	return Compressed{}, fmt.Errorf("compress: unknown algorithm %d", alg)
}

// Decompress expands c into out, which must be LineSize bytes.
// Decompressing an AlgNone line is an error: the caller already has the
// raw bytes. Arbitrary (including corrupted or adversarial) payloads are
// safe: malformed input yields an error, never a panic.
func Decompress(c Compressed, out []byte) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("compress: internal panic decompressing %v payload: %v", c.Alg, r)
		}
	}()
	if len(out) != LineSize {
		return ErrBadLine
	}
	switch c.Alg {
	case AlgBDI:
		return bdiDecompress(c.Enc, c.Data, out)
	case AlgFPC:
		return fpcDecompress(c.Data, out)
	case AlgCPack:
		return cpackDecompress(c.Data, out)
	}
	return fmt.Errorf("compress: cannot decompress algorithm %v", c.Alg)
}

// bestCompress picks the smallest of the three algorithms for the line,
// modeling the CABA-BestOfAll idealized design (Section 6.3).
func bestCompress(line []byte) (Compressed, error) {
	best := Compressed{Alg: AlgNone}
	bestSize := LineSize
	for _, alg := range [...]AlgID{AlgBDI, AlgFPC, AlgCPack} {
		c, err := Compress(alg, line)
		if err != nil {
			return Compressed{}, err
		}
		if c.IsCompressed() && c.Size() < bestSize {
			best, bestSize = c, c.Size()
		}
	}
	return best, nil
}

// Ratio accumulates the paper's compression-ratio metric: the ratio of
// DRAM bursts needed for uncompressed vs compressed transfer.
type Ratio struct {
	UncompressedBursts uint64
	CompressedBursts   uint64
	Lines              uint64
	CompressedLines    uint64
}

// Add records one line's compression outcome.
func (r *Ratio) Add(c Compressed) {
	r.Lines++
	r.UncompressedBursts += MaxBursts
	r.CompressedBursts += uint64(c.Bursts())
	if c.IsCompressed() {
		r.CompressedLines++
	}
}

// Value returns the compression ratio (>= 1.0; 1.0 means incompressible).
func (r *Ratio) Value() float64 {
	if r.CompressedBursts == 0 {
		return 1.0
	}
	return float64(r.UncompressedBursts) / float64(r.CompressedBursts)
}

// MeasureRatio compresses every line of data (length must be a multiple of
// LineSize) and returns the resulting ratio.
func MeasureRatio(alg AlgID, data []byte) (float64, error) {
	if len(data) == 0 || len(data)%LineSize != 0 {
		return 0, ErrBadLine
	}
	var r Ratio
	for off := 0; off < len(data); off += LineSize {
		c, err := Compress(alg, data[off:off+LineSize])
		if err != nil {
			return 0, err
		}
		r.Add(c)
	}
	return r.Value(), nil
}

// HWLatency returns the fixed decompression/compression latencies (in core
// cycles) of a dedicated hardware implementation of each algorithm, as used
// by the HW-BDI designs. BDI is 1/5 cycles per prior work cited in
// Section 5; FPC and C-Pack are multi-cycle serial designs.
func HWLatency(alg AlgID) (decomp, comp int) {
	switch alg {
	case AlgBDI:
		return 1, 5
	case AlgFPC:
		return 5, 8
	case AlgCPack:
		return 8, 8
	case AlgBest:
		return 8, 8
	}
	return 0, 0
}
