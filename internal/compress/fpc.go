package compress

import (
	"encoding/binary"
	"fmt"
)

// Frequent Pattern Compression (Alameldeen & Wood, 2004), adapted for CABA
// per Section 4.1.3: the per-word pattern metadata is hoisted to the head
// of the compressed line so a decompressing assist warp can determine every
// word's length and offset up front and process the words in parallel
// (variable-length words are placed with the coalescing/address-generation
// logic).
//
// The line is treated as 32 32-bit words. Each word gets a 3-bit pattern
// code; the data segment follows the 12-byte code table:
//
//	0 fpcZero     zero word                     (0 data bits)
//	1 fpcSExt4    4-bit sign-extended           (4)
//	2 fpcSExt8    8-bit sign-extended           (8)
//	3 fpcSExt16   16-bit sign-extended          (16)
//	4 fpcZeroLow  halfword padded with zeros
//	              (nonzero half in the top 16)  (16)
//	5 fpcHalfSExt two halfwords, each a
//	              sign-extended byte            (16)
//	6 fpcRepByte  word of one repeated byte     (8)
//	7 fpcRaw      uncompressed                  (32)
//
// Total size = 1 encoding byte + 12 code-table bytes + ceil(databits/8).

const fpcWords = LineSize / 4

const (
	fpcZero = iota
	fpcSExt4
	fpcSExt8
	fpcSExt16
	fpcZeroLow
	fpcHalfSExt
	fpcRepByte
	fpcRaw
)

var fpcDataBits = [8]uint{0, 4, 8, 16, 16, 16, 8, 32}

// fpcClassify picks the densest pattern for word w.
func fpcClassify(w uint32) int {
	switch {
	case w == 0:
		return fpcZero
	case int32(w)<<28>>28 == int32(w):
		return fpcSExt4
	case int32(w)<<24>>24 == int32(w):
		return fpcSExt8
	case int32(w)<<16>>16 == int32(w):
		return fpcSExt16
	case w&0xFFFF == 0:
		return fpcZeroLow
	}
	lo, hi := int16(w&0xFFFF), int16(w>>16)
	if int16(int8(lo)) == lo && int16(int8(hi)) == hi {
		return fpcHalfSExt
	}
	b := w & 0xFF
	if w == b|b<<8|b<<16|b<<24 {
		return fpcRepByte
	}
	return fpcRaw
}

func fpcCompress(line []byte) (Compressed, error) {
	codes := make([]int, fpcWords)
	bits := uint(0)
	for i := 0; i < fpcWords; i++ {
		w := binary.LittleEndian.Uint32(line[i*4:])
		codes[i] = fpcClassify(w)
		bits += fpcDataBits[codes[i]]
	}
	size := 1 + (fpcWords*3+7)/8 + int(bits+7)/8
	if size >= LineSize {
		return Compressed{Alg: AlgNone}, nil
	}
	var cw, dw bitWriter
	for i := 0; i < fpcWords; i++ {
		cw.write(uint64(codes[i]), 3)
	}
	for i := 0; i < fpcWords; i++ {
		w := binary.LittleEndian.Uint32(line[i*4:])
		switch codes[i] {
		case fpcZero:
		case fpcSExt4:
			dw.write(uint64(w&0xF), 4)
		case fpcSExt8:
			dw.write(uint64(w&0xFF), 8)
		case fpcSExt16:
			dw.write(uint64(w&0xFFFF), 16)
		case fpcZeroLow:
			dw.write(uint64(w>>16), 16)
		case fpcHalfSExt:
			dw.write(uint64(w&0xFF), 8)
			dw.write(uint64((w>>16)&0xFF), 8)
		case fpcRepByte:
			dw.write(uint64(w&0xFF), 8)
		case fpcRaw:
			dw.write(uint64(w), 32)
		}
	}
	data := make([]byte, 0, size)
	data = append(data, 0) // encoding byte (single FPC encoding)
	data = append(data, cw.bytes()...)
	data = append(data, dw.bytes()...)
	if len(data) != size {
		return Compressed{}, fmt.Errorf("compress: FPC size accounting mismatch: emitted %d bytes, computed %d", len(data), size)
	}
	return Compressed{Alg: AlgFPC, Enc: 0, Data: data}, nil
}

func fpcDecompress(data, out []byte) error {
	codeBytes := (fpcWords*3 + 7) / 8
	if len(data) < 1+codeBytes {
		return fmt.Errorf("compress: truncated FPC line")
	}
	cr := bitReader{buf: data[1 : 1+codeBytes]}
	dr := bitReader{buf: data[1+codeBytes:]}
	for i := 0; i < fpcWords; i++ {
		code := int(cr.read(3))
		var w uint32
		switch code {
		case fpcZero:
		case fpcSExt4:
			w = uint32(int32(dr.read(4)) << 28 >> 28)
		case fpcSExt8:
			w = uint32(int32(dr.read(8)) << 24 >> 24)
		case fpcSExt16:
			w = uint32(int32(dr.read(16)) << 16 >> 16)
		case fpcZeroLow:
			w = uint32(dr.read(16)) << 16
		case fpcHalfSExt:
			lo := uint32(int32(dr.read(8)) << 24 >> 24)
			hi := uint32(int32(dr.read(8)) << 24 >> 24)
			w = lo&0xFFFF | hi<<16
		case fpcRepByte:
			b := uint32(dr.read(8))
			w = b | b<<8 | b<<16 | b<<24
		case fpcRaw:
			w = uint32(dr.read(32))
		}
		binary.LittleEndian.PutUint32(out[i*4:], w)
	}
	if cr.err || dr.err {
		return fmt.Errorf("compress: FPC bitstream underflow")
	}
	return nil
}
