package compress

// Bit-level packing helpers shared by FPC and C-Pack, which produce
// variable-length codes. Bits are written LSB-first within each byte so a
// stream can be replayed by simple shift/mask logic (matching what the
// assist-warp subroutines do with ld.stage + shifts).

type bitWriter struct {
	buf  []byte
	nbit uint
}

func (w *bitWriter) write(v uint64, n uint) {
	for i := uint(0); i < n; i++ {
		byteIdx := int((w.nbit + i) / 8)
		for byteIdx >= len(w.buf) {
			w.buf = append(w.buf, 0)
		}
		if v&(1<<i) != 0 {
			w.buf[byteIdx] |= 1 << ((w.nbit + i) % 8)
		}
	}
	w.nbit += n
}

func (w *bitWriter) bytes() []byte { return w.buf }

func (w *bitWriter) bitLen() int { return int(w.nbit) }

type bitReader struct {
	buf  []byte
	nbit uint
	err  bool
}

func (r *bitReader) read(n uint) uint64 {
	var v uint64
	for i := uint(0); i < n; i++ {
		byteIdx := int((r.nbit + i) / 8)
		if byteIdx >= len(r.buf) {
			r.err = true
			return 0
		}
		if r.buf[byteIdx]&(1<<((r.nbit+i)%8)) != 0 {
			v |= 1 << i
		}
	}
	r.nbit += n
	return v
}
