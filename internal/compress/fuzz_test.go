package compress

import (
	"bytes"
	"testing"
)

// The fuzz targets assert the decompression error surface: arbitrary
// payload bytes — including truncated, oversized, and bit-flipped
// streams — must produce either a successful decode or a structured
// error, never a panic (the fault-injection framework feeds corrupted
// payloads straight into these decoders). When the input happens to be a
// full line, they additionally check the compress/decompress round trip.

// fuzzSeeds are line payloads that exercise every encoder path.
func fuzzSeeds() [][]byte {
	zeros := make([]byte, LineSize)
	repeat := make([]byte, LineSize)
	for off := 0; off < LineSize; off += 8 {
		copy(repeat[off:], []byte{0xEF, 0xBE, 0xAD, 0xDE, 0, 0, 0, 0})
	}
	deltas := make([]byte, LineSize)
	for i := 0; i < LineSize/4; i++ {
		deltas[i*4] = byte(0x40 + i)
		deltas[i*4+1] = 0x10
	}
	ramp := make([]byte, LineSize)
	for i := range ramp {
		ramp[i] = byte(i * 7)
	}
	return [][]byte{zeros, repeat, deltas, ramp}
}

// fuzzDecompress drives one algorithm's decoder with an arbitrary
// payload, then checks the round trip when the payload is a whole line.
func fuzzDecompress(t *testing.T, alg AlgID, enc uint8, data []byte) {
	t.Helper()
	var out [LineSize]byte
	// Must not panic regardless of payload; errors are fine.
	_ = Decompress(Compressed{Alg: alg, Enc: enc, Data: data}, out[:])

	if len(data) != LineSize {
		return
	}
	c, err := Compress(alg, data)
	if err != nil {
		t.Fatalf("Compress(%v) on a full line: %v", alg, err)
	}
	if !c.IsCompressed() {
		return
	}
	if err := Decompress(c, out[:]); err != nil {
		t.Fatalf("Decompress(%v) of own output: %v", alg, err)
	}
	if !bytes.Equal(out[:], data) {
		t.Fatalf("%v round trip mismatch:\n in  %x\n out %x", alg, data, out)
	}
}

func FuzzDecompressBDI(f *testing.F) {
	for _, line := range fuzzSeeds() {
		if c, err := Compress(AlgBDI, line); err == nil && c.IsCompressed() {
			f.Add(c.Enc, c.Data)
		}
		f.Add(uint8(0), line)
	}
	f.Add(uint8(BDIRepeat), []byte{byte(BDIRepeat), 1, 2, 3})
	f.Fuzz(func(t *testing.T, enc uint8, data []byte) {
		fuzzDecompress(t, AlgBDI, enc, data)
	})
}

func FuzzDecompressFPC(f *testing.F) {
	for _, line := range fuzzSeeds() {
		if c, err := Compress(AlgFPC, line); err == nil && c.IsCompressed() {
			f.Add(c.Data)
		}
		f.Add(line)
	}
	f.Add([]byte{0})
	f.Fuzz(func(t *testing.T, data []byte) {
		fuzzDecompress(t, AlgFPC, 0, data)
	})
}

func FuzzDecompressCPack(f *testing.F) {
	for _, line := range fuzzSeeds() {
		if c, err := Compress(AlgCPack, line); err == nil && c.IsCompressed() {
			f.Add(c.Data)
		}
		f.Add(line)
	}
	f.Add([]byte{0})
	f.Fuzz(func(t *testing.T, data []byte) {
		fuzzDecompress(t, AlgCPack, 0, data)
	})
}
