package timing

import (
	"math"
	"testing"
	"testing/quick"
)

func TestQueueOrdering(t *testing.T) {
	var q Queue
	var got []int
	q.At(3.0, func() { got = append(got, 3) })
	q.At(1.0, func() { got = append(got, 1) })
	q.At(2.0, func() { got = append(got, 2) })
	q.RunUntil(10)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("order = %v, want [1 2 3]", got)
	}
}

func TestQueueFIFOTieBreak(t *testing.T) {
	var q Queue
	var got []int
	for i := 0; i < 5; i++ {
		i := i
		q.At(7.0, func() { got = append(got, i) })
	}
	q.RunUntil(7.0)
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events out of FIFO order: %v", got)
		}
	}
}

func TestQueueHorizon(t *testing.T) {
	var q Queue
	ran := false
	q.At(5.0, func() { ran = true })
	q.RunUntil(4.999)
	if ran {
		t.Error("event ran before its time")
	}
	if q.Len() != 1 {
		t.Errorf("len = %d, want 1", q.Len())
	}
	q.RunUntil(5.0)
	if !ran {
		t.Error("event did not run at its time")
	}
}

func TestQueueCascade(t *testing.T) {
	var q Queue
	var got []float64
	q.At(1.0, func() {
		got = append(got, q.Now())
		q.After(1.5, func() { got = append(got, q.Now()) })
	})
	q.RunUntil(3.0)
	if len(got) != 2 || got[0] != 1.0 || got[1] != 2.5 {
		t.Errorf("cascade = %v, want [1 2.5]", got)
	}
}

func TestQueueCascadeBeyondHorizon(t *testing.T) {
	var q Queue
	ran := false
	q.At(1.0, func() { q.After(5.0, func() { ran = true }) })
	q.RunUntil(3.0)
	if ran {
		t.Error("cascaded event beyond horizon must not run")
	}
	q.RunUntil(6.0)
	if !ran {
		t.Error("cascaded event should run once horizon advances")
	}
}

func TestQueuePastSchedulingClamps(t *testing.T) {
	var q Queue
	q.RunUntil(10)
	ran := false
	q.At(2.0, func() { ran = true }) // in the past: clamps to now
	q.RunUntil(10)
	if !ran {
		t.Error("past event should run at current horizon")
	}
	if q.Now() != 10 {
		t.Errorf("now = %v, want 10", q.Now())
	}
}

func TestQueueNextTime(t *testing.T) {
	var q Queue
	if _, ok := q.NextTime(); ok {
		t.Error("empty queue should report no next time")
	}
	q.At(4.0, func() {})
	if nt, ok := q.NextTime(); !ok || nt != 4.0 {
		t.Errorf("NextTime = %v, %v", nt, ok)
	}
}

// BenchmarkQueue models the simulator's steady-state load: a standing
// population of pending events with interleaved scheduling and draining.
// Before the typed heap (container/heap with `any` boxing) this allocated
// one interface box per push; now only the callback closures allocate.
func BenchmarkQueue(b *testing.B) {
	var q Queue
	fn := func() {}
	// Standing population of events so the heap has realistic depth.
	for i := 0; i < 256; i++ {
		q.At(float64(i)*0.5, fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := q.Now()
		for j := 0; j < 8; j++ {
			q.At(t+float64(j%4)+0.25, fn)
		}
		q.RunUntil(t + 1)
	}
}

func TestQueueMonotonicNow(t *testing.T) {
	f := func(times []float64) bool {
		var q Queue
		last := -1.0
		mono := true
		for _, tm := range times {
			tm = math.Mod(math.Abs(tm), 1000) // keep magnitudes sane
			if math.IsNaN(tm) {
				tm = 0
			}
			q.At(tm, func() {
				if q.Now() < last {
					mono = false
				}
				last = q.Now()
			})
		}
		q.RunUntil(1e9)
		return mono && q.Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
