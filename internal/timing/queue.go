// Package timing provides the discrete-event scheduler that coordinates
// the simulator's clock domains. SM cores tick cycle by cycle (issue-slot
// accounting needs every cycle), while the interconnect, L2 and DRAM are
// event-driven: they schedule completion callbacks on this queue. Times are
// in core-clock cycles; fractional times express the DRAM clock domain.
package timing

import "container/heap"

// Event is a scheduled callback.
type event struct {
	time float64
	seq  uint64 // FIFO tie-break for equal times
	fn   func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// Queue is a min-heap of timed callbacks. The zero value is ready to use.
type Queue struct {
	h   eventHeap
	seq uint64
	now float64
}

// Now returns the time of the most recently executed event (or the last
// RunUntil horizon if greater).
func (q *Queue) Now() float64 { return q.now }

// At schedules fn to run at time t. Scheduling in the past runs the event
// at the current horizon instead (time never goes backwards).
func (q *Queue) At(t float64, fn func()) {
	if t < q.now {
		t = q.now
	}
	q.seq++
	heap.Push(&q.h, event{time: t, seq: q.seq, fn: fn})
}

// After schedules fn to run delay cycles after the current horizon.
func (q *Queue) After(delay float64, fn func()) { q.At(q.now+delay, fn) }

// RunUntil executes all events with time <= t in time order (events may
// schedule further events, which are honored if they also fall within t).
func (q *Queue) RunUntil(t float64) {
	for len(q.h) > 0 && q.h[0].time <= t {
		e := heap.Pop(&q.h).(event)
		if e.time > q.now {
			q.now = e.time
		}
		e.fn()
	}
	if t > q.now {
		q.now = t
	}
}

// Len returns the number of pending events.
func (q *Queue) Len() int { return len(q.h) }

// NextTime returns the time of the earliest pending event; ok is false if
// the queue is empty.
func (q *Queue) NextTime() (t float64, ok bool) {
	if len(q.h) == 0 {
		return 0, false
	}
	return q.h[0].time, true
}
