// Package timing provides the discrete-event scheduler that coordinates
// the simulator's clock domains. SM cores tick cycle by cycle (issue-slot
// accounting needs every cycle), while the interconnect, L2 and DRAM are
// event-driven: they schedule completion callbacks on this queue. Times are
// in core-clock cycles; fractional times express the DRAM clock domain.
package timing

// Event is a scheduled callback.
type event struct {
	time float64
	seq  uint64 // FIFO tie-break for equal times
	fn   func()
}

// Queue is a min-heap of timed callbacks. The zero value is ready to use.
// The heap is hand-rolled over a typed slice: events are sifted by value
// with no interface boxing, so scheduling does not allocate beyond the
// callback itself.
type Queue struct {
	h   []event
	seq uint64
	now float64
}

// Now returns the time of the most recently executed event (or the last
// RunUntil horizon if greater).
func (q *Queue) Now() float64 { return q.now }

// less orders events by time, FIFO within a time.
func (q *Queue) less(i, j int) bool {
	if q.h[i].time != q.h[j].time {
		return q.h[i].time < q.h[j].time
	}
	return q.h[i].seq < q.h[j].seq
}

// up restores the heap property from leaf i toward the root.
func (q *Queue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.h[i], q.h[parent] = q.h[parent], q.h[i]
		i = parent
	}
}

// down restores the heap property from the root toward the leaves.
func (q *Queue) down(i int) {
	n := len(q.h)
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		least := l
		if r := l + 1; r < n && q.less(r, l) {
			least = r
		}
		if !q.less(least, i) {
			break
		}
		q.h[i], q.h[least] = q.h[least], q.h[i]
		i = least
	}
}

// At schedules fn to run at time t. Scheduling in the past runs the event
// at the current horizon instead (time never goes backwards).
func (q *Queue) At(t float64, fn func()) {
	if t < q.now {
		t = q.now
	}
	q.seq++
	q.h = append(q.h, event{time: t, seq: q.seq, fn: fn})
	q.up(len(q.h) - 1)
}

// After schedules fn to run delay cycles after the current horizon.
func (q *Queue) After(delay float64, fn func()) { q.At(q.now+delay, fn) }

// RunUntil executes all events with time <= t in time order (events may
// schedule further events, which are honored if they also fall within t).
func (q *Queue) RunUntil(t float64) {
	for len(q.h) > 0 && q.h[0].time <= t {
		e := q.h[0]
		n := len(q.h) - 1
		q.h[0] = q.h[n]
		q.h[n] = event{} // release the callback for GC
		q.h = q.h[:n]
		q.down(0)
		if e.time > q.now {
			q.now = e.time
		}
		e.fn()
	}
	if t > q.now {
		q.now = t
	}
}

// Len returns the number of pending events.
func (q *Queue) Len() int { return len(q.h) }

// NextTime returns the time of the earliest pending event; ok is false if
// the queue is empty.
func (q *Queue) NextTime() (t float64, ok bool) {
	if len(q.h) == 0 {
		return 0, false
	}
	return q.h[0].time, true
}
