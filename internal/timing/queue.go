// Package timing provides the discrete-event scheduler that coordinates
// the simulator's clock domains. SM cores tick cycle by cycle (issue-slot
// accounting needs every cycle), while the interconnect, L2 and DRAM are
// event-driven: they schedule completion actions on this queue. Times are
// in core-clock cycles; fractional times express the DRAM clock domain.
package timing

// Action is a scheduled unit of work. Pending actions are part of the
// simulator's architectural state: snapshot/restore serializes the event
// heap, so every action type that can be pending across a cycle boundary
// must be a named struct the owning package knows how to encode. Plain
// closures (via At/After) are still accepted for tests and intra-cycle
// scheduling, but they are opaque to snapshotting.
type Action interface {
	Run()
}

// funcAction adapts a plain closure to Action. Opaque to snapshotting.
type funcAction struct{ fn func() }

// Run invokes the wrapped closure.
func (a funcAction) Run() { a.fn() }

// Nop is an Action that does nothing. DRAM writes use it as their
// completion action so the response event is always scheduled (keeping the
// event sequence identical whether or not anyone waits on the request).
type Nop struct{}

// Run does nothing.
func (Nop) Run() {}

// Fn adapts a plain closure to Action for callers (mostly tests) that
// need to pass one where an Action is expected. Opaque to snapshotting.
func Fn(fn func()) Action { return funcAction{fn} }

// IsOpaque reports whether a is a closure wrapper that cannot be
// serialized (scheduled via At/After/Fn rather than a named action type).
func IsOpaque(a Action) bool {
	_, ok := a.(funcAction)
	return ok
}

// Event is one pending heap entry, exposed for snapshotting.
type Event struct {
	Time float64
	Seq  uint64 // FIFO tie-break for equal times
	Act  Action
}

// Queue is a time-ordered list of timed actions. The zero value is ready
// to use. Events live sorted by (time, seq) in buf[head:]; popping the
// minimum advances head (O(1)), and pushing inserts with a binary search
// plus a short memmove. The simulator keeps tens of events in flight, so
// the sorted-array form beats a binary heap: the pop path — by far the
// hotter side — does no sifting at all, and inserts shift a few hundred
// contiguous bytes instead of chasing heap levels.
type Queue struct {
	buf  []Event // sorted by (Time, Seq); live region is buf[head:]
	head int
	seq  uint64
	now  float64
}

// Now returns the time of the most recently executed event (or the last
// RunUntil horizon if greater).
func (q *Queue) Now() float64 { return q.now }

// Push schedules a to run at time t. Scheduling in the past runs the
// action at the current horizon instead (time never goes backwards).
func (q *Queue) Push(t float64, a Action) {
	if t < q.now {
		t = q.now
	}
	q.seq++
	e := Event{Time: t, Seq: q.seq, Act: a}
	// Reclaim the dead prefix once it outgrows the live region (amortized
	// O(1); the vacated tail is zeroed so actions are released for GC).
	if q.head > 32 && q.head > len(q.buf)-q.head {
		n := copy(q.buf, q.buf[q.head:])
		for i := n; i < len(q.buf); i++ {
			q.buf[i] = Event{}
		}
		q.buf = q.buf[:n]
		q.head = 0
	}
	// Upper-bound binary search by time: the new event carries the
	// largest Seq, so it sorts after every pending event with equal time,
	// which preserves the FIFO tie-break exactly.
	live := q.buf[q.head:]
	lo, hi := 0, len(live)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if live[mid].Time <= e.Time {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	pos := q.head + lo
	q.buf = append(q.buf, Event{})
	copy(q.buf[pos+1:], q.buf[pos:])
	q.buf[pos] = e
}

// At schedules fn to run at time t (closure convenience; opaque to
// snapshotting — see Action).
func (q *Queue) At(t float64, fn func()) { q.Push(t, funcAction{fn}) }

// After schedules fn to run delay cycles after the current horizon.
func (q *Queue) After(delay float64, fn func()) { q.At(q.now+delay, fn) }

// RunUntil executes all events with time <= t in time order (events may
// schedule further events, which are honored if they also fall within t).
func (q *Queue) RunUntil(t float64) {
	for q.head < len(q.buf) && q.buf[q.head].Time <= t {
		e := q.buf[q.head]
		q.buf[q.head] = Event{} // release the action for GC
		q.head++
		if e.Time > q.now {
			q.now = e.Time
		}
		// Run may Push; insertion and compaction keep buf[head:] sorted,
		// and the loop re-reads head/buf each iteration.
		e.Act.Run()
	}
	if t > q.now {
		q.now = t
	}
	if q.head == len(q.buf) {
		q.buf = q.buf[:0]
		q.head = 0
	}
}

// Len returns the number of pending events.
func (q *Queue) Len() int { return len(q.buf) - q.head }

// NextTime returns the time of the earliest pending event; ok is false if
// the queue is empty.
func (q *Queue) NextTime() (t float64, ok bool) {
	if q.head == len(q.buf) {
		return 0, false
	}
	return q.buf[q.head].Time, true
}

// Snapshot returns the queue's clock, sequence counter and pending events
// sorted in firing order (time, then seq). The slice is a copy — the live
// region is already kept in firing order.
func (q *Queue) Snapshot() (now float64, seq uint64, evs []Event) {
	evs = make([]Event, q.Len())
	copy(evs, q.buf[q.head:])
	return q.now, q.seq, evs
}

// Restore replaces the queue's state with a snapshot previously produced
// by Snapshot (evs must be sorted in firing order, which is the live
// representation).
func (q *Queue) Restore(now float64, seq uint64, evs []Event) {
	q.now = now
	q.seq = seq
	q.buf = append(q.buf[:0], evs...)
	q.head = 0
}
