// Package timing provides the discrete-event scheduler that coordinates
// the simulator's clock domains. SM cores tick cycle by cycle (issue-slot
// accounting needs every cycle), while the interconnect, L2 and DRAM are
// event-driven: they schedule completion actions on this queue. Times are
// in core-clock cycles; fractional times express the DRAM clock domain.
package timing

// Action is a scheduled unit of work. Pending actions are part of the
// simulator's architectural state: snapshot/restore serializes the event
// heap, so every action type that can be pending across a cycle boundary
// must be a named struct the owning package knows how to encode. Plain
// closures (via At/After) are still accepted for tests and intra-cycle
// scheduling, but they are opaque to snapshotting.
type Action interface {
	Run()
}

// funcAction adapts a plain closure to Action. Opaque to snapshotting.
type funcAction struct{ fn func() }

// Run invokes the wrapped closure.
func (a funcAction) Run() { a.fn() }

// Nop is an Action that does nothing. DRAM writes use it as their
// completion action so the response event is always scheduled (keeping the
// event sequence identical whether or not anyone waits on the request).
type Nop struct{}

// Run does nothing.
func (Nop) Run() {}

// Fn adapts a plain closure to Action for callers (mostly tests) that
// need to pass one where an Action is expected. Opaque to snapshotting.
func Fn(fn func()) Action { return funcAction{fn} }

// IsOpaque reports whether a is a closure wrapper that cannot be
// serialized (scheduled via At/After/Fn rather than a named action type).
func IsOpaque(a Action) bool {
	_, ok := a.(funcAction)
	return ok
}

// Event is one pending heap entry, exposed for snapshotting.
type Event struct {
	Time float64
	Seq  uint64 // FIFO tie-break for equal times
	Act  Action
}

// Queue is a min-heap of timed actions. The zero value is ready to use.
// The heap is hand-rolled over a typed slice: events are sifted by value
// with no extra boxing, so scheduling does not allocate beyond the action
// itself.
type Queue struct {
	h   []Event
	seq uint64
	now float64
}

// Now returns the time of the most recently executed event (or the last
// RunUntil horizon if greater).
func (q *Queue) Now() float64 { return q.now }

// less orders events by time, FIFO within a time.
func (q *Queue) less(i, j int) bool {
	if q.h[i].Time != q.h[j].Time {
		return q.h[i].Time < q.h[j].Time
	}
	return q.h[i].Seq < q.h[j].Seq
}

// up restores the heap property from leaf i toward the root.
func (q *Queue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.h[i], q.h[parent] = q.h[parent], q.h[i]
		i = parent
	}
}

// down restores the heap property from the root toward the leaves.
func (q *Queue) down(i int) {
	n := len(q.h)
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		least := l
		if r := l + 1; r < n && q.less(r, l) {
			least = r
		}
		if !q.less(least, i) {
			break
		}
		q.h[i], q.h[least] = q.h[least], q.h[i]
		i = least
	}
}

// Push schedules a to run at time t. Scheduling in the past runs the
// action at the current horizon instead (time never goes backwards).
func (q *Queue) Push(t float64, a Action) {
	if t < q.now {
		t = q.now
	}
	q.seq++
	q.h = append(q.h, Event{Time: t, Seq: q.seq, Act: a})
	q.up(len(q.h) - 1)
}

// At schedules fn to run at time t (closure convenience; opaque to
// snapshotting — see Action).
func (q *Queue) At(t float64, fn func()) { q.Push(t, funcAction{fn}) }

// After schedules fn to run delay cycles after the current horizon.
func (q *Queue) After(delay float64, fn func()) { q.At(q.now+delay, fn) }

// RunUntil executes all events with time <= t in time order (events may
// schedule further events, which are honored if they also fall within t).
func (q *Queue) RunUntil(t float64) {
	for len(q.h) > 0 && q.h[0].Time <= t {
		e := q.h[0]
		n := len(q.h) - 1
		q.h[0] = q.h[n]
		q.h[n] = Event{} // release the action for GC
		q.h = q.h[:n]
		q.down(0)
		if e.Time > q.now {
			q.now = e.Time
		}
		e.Act.Run()
	}
	if t > q.now {
		q.now = t
	}
}

// Len returns the number of pending events.
func (q *Queue) Len() int { return len(q.h) }

// NextTime returns the time of the earliest pending event; ok is false if
// the queue is empty.
func (q *Queue) NextTime() (t float64, ok bool) {
	if len(q.h) == 0 {
		return 0, false
	}
	return q.h[0].Time, true
}

// Snapshot returns the queue's clock, sequence counter and pending events
// sorted in firing order (time, then seq). The slice is a copy.
func (q *Queue) Snapshot() (now float64, seq uint64, evs []Event) {
	evs = make([]Event, len(q.h))
	copy(evs, q.h)
	// Heapsort in place: repeatedly pop the minimum. Cheaper to sort a
	// copy than to expose heap internals; snapshotting is off the hot
	// path.
	sortEvents(evs)
	return q.now, q.seq, evs
}

// Restore replaces the queue's state with a snapshot previously produced
// by Snapshot (evs must be sorted in firing order; a sorted slice is a
// valid min-heap, so it is adopted directly).
func (q *Queue) Restore(now float64, seq uint64, evs []Event) {
	q.now = now
	q.seq = seq
	q.h = append(q.h[:0], evs...)
}

// sortEvents orders events by (time, seq) with a simple binary-insertion
// sort — snapshot sizes are small (the simulator keeps tens of events in
// flight) and this avoids importing sort for a comparator closure.
func sortEvents(evs []Event) {
	for i := 1; i < len(evs); i++ {
		e := evs[i]
		lo, hi := 0, i
		for lo < hi {
			mid := (lo + hi) / 2
			if evs[mid].Time < e.Time || (evs[mid].Time == e.Time && evs[mid].Seq < e.Seq) {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		copy(evs[lo+1:i+1], evs[lo:i])
		evs[lo] = e
	}
}
