// Package audit defines the structured diagnostics produced by the
// simulator's runtime invariant auditor and crash flight recorder. The
// auditor (gpu.Simulator.Audit, scheduled by Config.AuditEvery) walks the
// machine's bookkeeping — MSHR allocation balance, scoreboard/in-flight
// consistency, SIMT stack bounds, writeback-ring conservation — and fails
// fast with a Violation naming the invariant, the cycle and the SM,
// instead of letting corrupted state surface later as a wedge or silently
// wrong statistics. The flight recorder (Config.FlightRecorderDepth)
// keeps a short ring of recent notable events per SM; wedges, panics and
// violations attach the merged trail for postmortems.
package audit

import (
	"fmt"
	"strings"
)

// Record is one flight-recorder event.
type Record struct {
	Cycle uint64
	SM    int // -1 for simulator-level events
	Event string
	Line  uint64 // line address when relevant, else 0
}

// String formats a record for a postmortem dump.
func (rec Record) String() string {
	sm := "sim"
	if rec.SM >= 0 {
		sm = fmt.Sprintf("sm%d", rec.SM)
	}
	if rec.Line != 0 {
		return fmt.Sprintf("cycle %d %s: %s line %#x", rec.Cycle, sm, rec.Event, rec.Line)
	}
	return fmt.Sprintf("cycle %d %s: %s", rec.Cycle, sm, rec.Event)
}

// Violation is one failed invariant, with enough context to localize the
// corruption: which invariant, where, when, and the recent event trail if
// the flight recorder was on.
type Violation struct {
	Invariant string // short invariant name, e.g. "mshr-waiters"
	Cycle     uint64
	SM        int // -1 when not SM-specific
	Detail    string
	Records   []Record
}

// Error implements error.
func (v *Violation) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "audit: invariant %s violated at cycle %d", v.Invariant, v.Cycle)
	if v.SM >= 0 {
		fmt.Fprintf(&b, " on SM %d", v.SM)
	}
	fmt.Fprintf(&b, ": %s", v.Detail)
	if len(v.Records) > 0 {
		fmt.Fprintf(&b, "\nrecent events:")
		for _, rec := range v.Records {
			fmt.Fprintf(&b, "\n  %s", rec.String())
		}
	}
	return b.String()
}
