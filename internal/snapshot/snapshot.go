// Package snapshot is the versioned, checksummed serialization container
// and primitive codec for mid-run simulator checkpoints. The container
// carries a magic number, a format version, a configuration hash (so a
// blob is never restored into a differently-configured simulator) and a
// CRC32 over the payload; the Reader is bounds-checked on every primitive
// so truncated or bit-flipped blobs always surface a structured
// *FormatError and never panic or load silently-corrupt state.
package snapshot

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"reflect"
)

// Version is the current snapshot format version. Bump on any encoding
// change; Open rejects blobs from other versions.
const Version uint32 = 1

// magic identifies a snapshot blob ("CABASNAP").
const magic uint64 = 0x43414241534e4150

// FormatError describes why a blob could not be decoded. It is the only
// error type the loader returns for malformed input.
type FormatError struct {
	Off int // byte offset where decoding failed (-1 for container-level problems)
	Msg string
}

// Error implements error.
func (e *FormatError) Error() string {
	if e.Off < 0 {
		return fmt.Sprintf("snapshot: %s", e.Msg)
	}
	return fmt.Sprintf("snapshot: offset %d: %s", e.Off, e.Msg)
}

// errf builds a container-level FormatError.
func errf(format string, args ...any) *FormatError {
	return &FormatError{Off: -1, Msg: fmt.Sprintf(format, args...)}
}

// --- Writer ---

// Writer accumulates a snapshot payload. All integers are little-endian
// and fixed-width; lengths are u64 so the Reader can bound them.
type Writer struct {
	buf []byte
}

// U8 appends one byte.
func (w *Writer) U8(v uint8) { w.buf = append(w.buf, v) }

// Bool appends a boolean as one byte.
func (w *Writer) Bool(b bool) {
	if b {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

// U32 appends a little-endian uint32.
func (w *Writer) U32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }

// U64 appends a little-endian uint64.
func (w *Writer) U64(v uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }

// I64 appends an int64.
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// Int appends an int.
func (w *Writer) Int(v int) { w.I64(int64(v)) }

// F64 appends a float64 by bit pattern.
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// Len appends a non-negative length.
func (w *Writer) Len(n int) { w.U64(uint64(n)) }

// Bytes appends a length-prefixed byte string.
func (w *Writer) Bytes(b []byte) {
	w.Len(len(b))
	w.buf = append(w.buf, b...)
}

// String appends a length-prefixed string.
func (w *Writer) String(s string) {
	w.Len(len(s))
	w.buf = append(w.buf, s...)
}

// Payload returns the accumulated bytes.
func (w *Writer) Payload() []byte { return w.buf }

// --- Reader ---

// Reader decodes a payload with full bounds checking. The first failure
// latches into err; subsequent reads return zero values, so decode
// sequences need only check Err once (or at natural boundaries).
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader wraps a payload.
func NewReader(b []byte) *Reader { return &Reader{buf: b} }

// fail latches a decoding error at the current offset.
func (r *Reader) fail(msg string) {
	if r.err == nil {
		r.err = &FormatError{Off: r.off, Msg: msg}
	}
}

// Err returns the first decoding error, if any.
func (r *Reader) Err() error { return r.err }

// Remaining returns the undecoded byte count.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

// take consumes n bytes.
func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || n > len(r.buf)-r.off {
		r.fail(fmt.Sprintf("need %d bytes, have %d", n, len(r.buf)-r.off))
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads a boolean; any value other than 0/1 is a format error.
func (r *Reader) Bool() bool {
	switch r.U8() {
	case 0:
		return false
	case 1:
		return true
	default:
		r.fail("invalid boolean")
		return false
	}
}

// U32 reads a little-endian uint32.
func (r *Reader) U32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a little-endian uint64.
func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I64 reads an int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// Int reads an int, rejecting values that overflow the platform int.
func (r *Reader) Int() int {
	v := r.I64()
	if int64(int(v)) != v {
		r.fail("int overflow")
		return 0
	}
	return int(v)
}

// F64 reads a float64.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// Len reads a length and validates it against max and the remaining
// bytes (a length can never legitimately exceed what is left to read, so
// corrupt huge lengths fail here instead of triggering giant
// allocations).
func (r *Reader) Len(max int) int {
	v := r.U64()
	if r.err != nil {
		return 0
	}
	if v > uint64(max) || v > uint64(r.Remaining()) {
		r.fail(fmt.Sprintf("length %d out of bounds (max %d, %d bytes left)", v, max, r.Remaining()))
		return 0
	}
	return int(v)
}

// Bytes reads a length-prefixed byte string of at most max bytes. The
// returned slice aliases the blob.
func (r *Reader) Bytes(max int) []byte {
	n := r.Len(max)
	if r.err != nil {
		return nil
	}
	return r.take(n)
}

// String reads a length-prefixed string of at most max bytes.
func (r *Reader) String(max int) string { return string(r.Bytes(max)) }

// --- Container ---

// container layout:
//
//	u64 magic | u32 version | u64 configHash | u64 payloadLen |
//	payload bytes | u32 CRC32-IEEE(payload)

const headerSize = 8 + 4 + 8 + 8

// Seal wraps a payload into a self-describing blob bound to configHash.
func Seal(configHash uint64, payload []byte) []byte {
	out := make([]byte, 0, headerSize+len(payload)+4)
	out = binary.LittleEndian.AppendUint64(out, magic)
	out = binary.LittleEndian.AppendUint32(out, Version)
	out = binary.LittleEndian.AppendUint64(out, configHash)
	out = binary.LittleEndian.AppendUint64(out, uint64(len(payload)))
	out = append(out, payload...)
	out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(payload))
	return out
}

// Open validates a blob's container (magic, version, configuration hash,
// length, checksum) and returns its payload. All failures are
// *FormatError.
func Open(blob []byte, configHash uint64) ([]byte, error) {
	h, payload, err := Inspect(blob)
	if err != nil {
		return nil, err
	}
	if h != configHash {
		return nil, errf("configuration hash mismatch: blob %#x, simulator %#x", h, configHash)
	}
	return payload, nil
}

// Inspect validates a blob's container integrity (magic, version, length,
// checksum) without binding it to a particular configuration, and returns
// the embedded configuration hash alongside the payload. It exists for
// blob custodians — stores that hold checkpoint blobs on behalf of
// simulators they never instantiate — which must reject torn or
// bit-flipped uploads yet cannot know the hash the eventual restorer will
// check. All failures are *FormatError.
func Inspect(blob []byte) (configHash uint64, payload []byte, err error) {
	if len(blob) < headerSize+4 {
		return 0, nil, errf("blob too short: %d bytes", len(blob))
	}
	if m := binary.LittleEndian.Uint64(blob); m != magic {
		return 0, nil, errf("bad magic %#x", m)
	}
	if v := binary.LittleEndian.Uint32(blob[8:]); v != Version {
		return 0, nil, errf("version %d not supported (want %d)", v, Version)
	}
	configHash = binary.LittleEndian.Uint64(blob[12:])
	n := binary.LittleEndian.Uint64(blob[20:])
	if n != uint64(len(blob)-headerSize-4) {
		return 0, nil, errf("payload length %d does not match blob size %d", n, len(blob))
	}
	payload = blob[headerSize : headerSize+int(n)]
	want := binary.LittleEndian.Uint32(blob[headerSize+int(n):])
	if got := crc32.ChecksumIEEE(payload); got != want {
		return 0, nil, errf("payload checksum mismatch: %#x != %#x", got, want)
	}
	return configHash, payload, nil
}

// --- Plain-struct codec ---

// maxPlainLen bounds string/slice lengths in plain-codec decoding.
const maxPlainLen = 1 << 20

// EncodePlain serializes a value composed of plain data: booleans,
// integers, floats, strings, arrays, slices and structs of those (all
// fields exported). Pointers, maps, interfaces and channels are rejected
// — state containing them needs a hand-written codec.
func EncodePlain(w *Writer, v any) error {
	return encodeValue(w, reflect.ValueOf(v))
}

func encodeValue(w *Writer, v reflect.Value) error {
	switch v.Kind() {
	case reflect.Bool:
		w.Bool(v.Bool())
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		w.I64(v.Int())
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		w.U64(v.Uint())
	case reflect.Float64, reflect.Float32:
		w.F64(v.Float())
	case reflect.String:
		w.String(v.String())
	case reflect.Array:
		for i := 0; i < v.Len(); i++ {
			if err := encodeValue(w, v.Index(i)); err != nil {
				return err
			}
		}
	case reflect.Slice:
		w.Len(v.Len())
		for i := 0; i < v.Len(); i++ {
			if err := encodeValue(w, v.Index(i)); err != nil {
				return err
			}
		}
	case reflect.Struct:
		t := v.Type()
		for i := 0; i < v.NumField(); i++ {
			if t.Field(i).PkgPath != "" {
				return errf("cannot encode unexported field %s.%s", t.Name(), t.Field(i).Name)
			}
			if err := encodeValue(w, v.Field(i)); err != nil {
				return err
			}
		}
	default:
		return errf("cannot encode kind %s", v.Kind())
	}
	return nil
}

// DecodePlain fills *out (a pointer to a plain-data value) from the
// reader, mirroring EncodePlain.
func DecodePlain(r *Reader, out any) error {
	v := reflect.ValueOf(out)
	if v.Kind() != reflect.Ptr || v.IsNil() {
		return errf("DecodePlain needs a non-nil pointer")
	}
	if err := decodeValue(r, v.Elem()); err != nil {
		return err
	}
	return r.Err()
}

func decodeValue(r *Reader, v reflect.Value) error {
	switch v.Kind() {
	case reflect.Bool:
		v.SetBool(r.Bool())
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		n := r.I64()
		if v.OverflowInt(n) {
			return errf("value %d overflows %s", n, v.Type())
		}
		v.SetInt(n)
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		n := r.U64()
		if v.OverflowUint(n) {
			return errf("value %d overflows %s", n, v.Type())
		}
		v.SetUint(n)
	case reflect.Float64, reflect.Float32:
		v.SetFloat(r.F64())
	case reflect.String:
		v.SetString(r.String(maxPlainLen))
	case reflect.Array:
		for i := 0; i < v.Len(); i++ {
			if err := decodeValue(r, v.Index(i)); err != nil {
				return err
			}
		}
	case reflect.Slice:
		n := r.Len(maxPlainLen)
		if r.Err() != nil {
			return r.Err()
		}
		s := reflect.MakeSlice(v.Type(), n, n)
		for i := 0; i < n; i++ {
			if err := decodeValue(r, s.Index(i)); err != nil {
				return err
			}
		}
		v.Set(s)
	case reflect.Struct:
		t := v.Type()
		for i := 0; i < v.NumField(); i++ {
			if t.Field(i).PkgPath != "" {
				return errf("cannot decode unexported field %s.%s", t.Name(), t.Field(i).Name)
			}
			if err := decodeValue(r, v.Field(i)); err != nil {
				return err
			}
		}
	default:
		return errf("cannot decode kind %s", v.Kind())
	}
	return r.Err()
}

// HashPlain returns an FNV-1a 64-bit hash of a plain value's encoding,
// used to bind snapshots to the configuration that produced them.
func HashPlain(vs ...any) (uint64, error) {
	var w Writer
	for _, v := range vs {
		if err := EncodePlain(&w, v); err != nil {
			return 0, err
		}
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range w.Payload() {
		h ^= uint64(b)
		h *= prime64
	}
	return h, nil
}
