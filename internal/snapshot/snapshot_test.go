package snapshot

import (
	"errors"
	"math"
	"testing"
)

func TestWriterReaderRoundTrip(t *testing.T) {
	var w Writer
	w.U8(0xab)
	w.Bool(true)
	w.Bool(false)
	w.U32(0xdeadbeef)
	w.U64(0x0123456789abcdef)
	w.I64(-42)
	w.Int(-7)
	w.F64(math.Pi)
	w.Len(3)
	w.Bytes([]byte{1, 2, 3})
	w.String("hello")

	r := NewReader(w.Payload())
	if got := r.U8(); got != 0xab {
		t.Errorf("U8 = %#x", got)
	}
	if !r.Bool() || r.Bool() {
		t.Error("Bool round trip failed")
	}
	if got := r.U32(); got != 0xdeadbeef {
		t.Errorf("U32 = %#x", got)
	}
	if got := r.U64(); got != 0x0123456789abcdef {
		t.Errorf("U64 = %#x", got)
	}
	if got := r.I64(); got != -42 {
		t.Errorf("I64 = %d", got)
	}
	if got := r.Int(); got != -7 {
		t.Errorf("Int = %d", got)
	}
	if got := r.F64(); got != math.Pi {
		t.Errorf("F64 = %v", got)
	}
	if got := r.Len(10); got != 3 {
		t.Errorf("Len = %d", got)
	}
	if got := r.Bytes(10); len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Errorf("Bytes = %v", got)
	}
	if got := r.String(10); got != "hello" {
		t.Errorf("String = %q", got)
	}
	if r.Err() != nil {
		t.Fatalf("unexpected error: %v", r.Err())
	}
	if r.Remaining() != 0 {
		t.Errorf("%d bytes left over", r.Remaining())
	}
}

func TestReaderErrorLatches(t *testing.T) {
	r := NewReader([]byte{1, 2})
	_ = r.U64() // needs 8 bytes, only 2 available
	if r.Err() == nil {
		t.Fatal("expected error after short read")
	}
	var fe *FormatError
	if !errors.As(r.Err(), &fe) {
		t.Fatalf("error %T is not *FormatError", r.Err())
	}
	// Subsequent reads return zero values without touching the buffer.
	if got := r.U8(); got != 0 {
		t.Errorf("U8 after error = %d", got)
	}
	if got := r.Bytes(100); got != nil {
		t.Errorf("Bytes after error = %v", got)
	}
}

func TestReaderRejectsBadValues(t *testing.T) {
	// Boolean byte other than 0/1.
	r := NewReader([]byte{2})
	r.Bool()
	if r.Err() == nil {
		t.Error("Bool(2) accepted")
	}
	// Length exceeding max.
	var w Writer
	w.Len(100)
	r = NewReader(append(w.Payload(), make([]byte, 100)...))
	r.Len(50)
	if r.Err() == nil {
		t.Error("length beyond max accepted")
	}
	// Length exceeding remaining bytes (the giant-allocation guard).
	var w2 Writer
	w2.Len(1 << 40)
	r = NewReader(w2.Payload())
	r.Bytes(1 << 50)
	if r.Err() == nil {
		t.Error("length beyond remaining bytes accepted")
	}
}

func TestSealOpenRoundTrip(t *testing.T) {
	payload := []byte("state bytes here")
	const hash = 0x1122334455667788
	blob := Seal(hash, payload)
	got, err := Open(blob, hash)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if string(got) != string(payload) {
		t.Errorf("payload mismatch: %q", got)
	}
}

func TestOpenRejectsTampering(t *testing.T) {
	payload := []byte("state bytes here")
	const hash = 0x1122334455667788
	blob := Seal(hash, payload)

	cases := []struct {
		name   string
		mutate func([]byte) []byte
		hash   uint64
	}{
		{"wrong hash", func(b []byte) []byte { return b }, hash + 1},
		{"truncated header", func(b []byte) []byte { return b[:10] }, hash},
		{"truncated payload", func(b []byte) []byte { return b[:len(b)-5] }, hash},
		{"empty", func(b []byte) []byte { return nil }, hash},
		{"bad magic", func(b []byte) []byte { b[0] ^= 0xff; return b }, hash},
		{"version skew", func(b []byte) []byte { b[8]++; return b }, hash},
		{"payload bit flip", func(b []byte) []byte { b[headerSize+3] ^= 0x10; return b }, hash},
		{"crc bit flip", func(b []byte) []byte { b[len(b)-1] ^= 1; return b }, hash},
		{"extra trailing byte", func(b []byte) []byte { return append(b, 0) }, hash},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := tc.mutate(append([]byte(nil), blob...))
			if _, err := Open(b, tc.hash); err == nil {
				t.Fatal("tampered blob accepted")
			} else {
				var fe *FormatError
				if !errors.As(err, &fe) {
					t.Fatalf("error %T is not *FormatError", err)
				}
			}
		})
	}
}

func TestInspect(t *testing.T) {
	payload := []byte("state bytes here")
	const hash = 0x1122334455667788
	blob := Seal(hash, payload)

	h, got, err := Inspect(blob)
	if err != nil {
		t.Fatalf("Inspect: %v", err)
	}
	if h != hash {
		t.Errorf("hash = %#x, want %#x", h, hash)
	}
	if string(got) != string(payload) {
		t.Errorf("payload mismatch: %q", got)
	}

	// Inspect does not bind to a configuration, but every integrity
	// defect Open rejects must still fail.
	for _, tc := range []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"truncated header", func(b []byte) []byte { return b[:10] }},
		{"truncated payload", func(b []byte) []byte { return b[:len(b)-5] }},
		{"bad magic", func(b []byte) []byte { b[0] ^= 0xff; return b }},
		{"version skew", func(b []byte) []byte { b[8]++; return b }},
		{"payload bit flip", func(b []byte) []byte { b[headerSize+3] ^= 0x10; return b }},
		{"crc bit flip", func(b []byte) []byte { b[len(b)-1] ^= 1; return b }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			b := tc.mutate(append([]byte(nil), blob...))
			if _, _, err := Inspect(b); err == nil {
				t.Fatal("tampered blob accepted")
			} else {
				var fe *FormatError
				if !errors.As(err, &fe) {
					t.Fatalf("error %T is not *FormatError", err)
				}
			}
		})
	}
}

type plainInner struct {
	Name  string
	Vals  []uint64
	Flag  bool
	Ratio float64
}

type plainOuter struct {
	A     int
	B     uint32
	Inner plainInner
	Arr   [3]int16
}

func TestPlainCodecRoundTrip(t *testing.T) {
	in := plainOuter{
		A:     -99,
		B:     77,
		Inner: plainInner{Name: "x", Vals: []uint64{1, 2, 3}, Flag: true, Ratio: 0.5},
		Arr:   [3]int16{-1, 0, 1},
	}
	var w Writer
	if err := EncodePlain(&w, in); err != nil {
		t.Fatalf("EncodePlain: %v", err)
	}
	var out plainOuter
	r := NewReader(w.Payload())
	if err := DecodePlain(r, &out); err != nil {
		t.Fatalf("DecodePlain: %v", err)
	}
	if out.A != in.A || out.B != in.B || out.Inner.Name != in.Inner.Name ||
		len(out.Inner.Vals) != 3 || out.Inner.Vals[2] != 3 ||
		!out.Inner.Flag || out.Inner.Ratio != 0.5 || out.Arr != in.Arr {
		t.Errorf("round trip mismatch: %+v", out)
	}
	if r.Remaining() != 0 {
		t.Errorf("%d bytes left over", r.Remaining())
	}
}

func TestPlainCodecRejectsPointers(t *testing.T) {
	var w Writer
	if err := EncodePlain(&w, struct{ P *int }{}); err == nil {
		t.Error("pointer field accepted")
	}
}

func TestHashPlainStable(t *testing.T) {
	a, err := HashPlain(plainOuter{A: 1}, "tag")
	if err != nil {
		t.Fatal(err)
	}
	b, err := HashPlain(plainOuter{A: 1}, "tag")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("hash not deterministic")
	}
	c, err := HashPlain(plainOuter{A: 2}, "tag")
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Error("hash insensitive to value change")
	}
}

// FuzzOpen checks that no input to the container validator panics or is
// accepted without a matching seal.
func FuzzOpen(f *testing.F) {
	f.Add([]byte{}, uint64(0))
	f.Add(Seal(42, []byte("payload")), uint64(42))
	f.Add(Seal(42, []byte("payload")), uint64(43))
	blob := Seal(7, []byte("x"))
	blob[9]++
	f.Add(blob, uint64(7))
	f.Fuzz(func(t *testing.T, b []byte, hash uint64) {
		payload, err := Open(b, hash)
		if err != nil {
			var fe *FormatError
			if !errors.As(err, &fe) {
				t.Fatalf("error %T is not *FormatError", err)
			}
			return
		}
		// Accepted blobs must round-trip exactly.
		again := Seal(hash, payload)
		if string(again) != string(b) {
			t.Fatalf("accepted blob does not re-seal identically")
		}
	})
}

// FuzzReader drives the bounds-checked primitives over arbitrary bytes;
// they must never panic and must latch an error instead of over-reading.
func FuzzReader(f *testing.F) {
	var w Writer
	w.U64(1)
	w.Bytes([]byte("abc"))
	w.Bool(true)
	f.Add(w.Payload())
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, b []byte) {
		r := NewReader(b)
		_ = r.U8()
		_ = r.Bool()
		_ = r.U32()
		_ = r.U64()
		_ = r.Int()
		_ = r.F64()
		_ = r.Bytes(1 << 16)
		_ = r.String(1 << 16)
		if r.Remaining() < 0 {
			t.Fatal("reader over-read the buffer")
		}
	})
}
