package mem

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/caba-sim/caba/internal/compress"
	"github.com/caba-sim/caba/internal/config"
	"github.com/caba-sim/caba/internal/stats"
	"github.com/caba-sim/caba/internal/timing"
)

// --- backing store ---

func TestMemoryReadWriteRoundTrip(t *testing.T) {
	m := NewMemory()
	data := []byte("hello, memory system")
	m.Write(0x1000, data)
	got := make([]byte, len(data))
	m.Read(0x1000, got)
	if !bytes.Equal(got, data) {
		t.Errorf("round trip: got %q", got)
	}
}

func TestMemoryCrossPageAccess(t *testing.T) {
	m := NewMemory()
	addr := uint64(pageSize - 3)
	data := []byte{1, 2, 3, 4, 5, 6, 7}
	m.Write(addr, data)
	got := make([]byte, len(data))
	m.Read(addr, got)
	if !bytes.Equal(got, data) {
		t.Errorf("cross-page: got %v", got)
	}
}

func TestMemoryZeroFill(t *testing.T) {
	m := NewMemory()
	buf := []byte{9, 9, 9}
	m.Read(0xdead0000, buf)
	if buf[0] != 0 || buf[1] != 0 || buf[2] != 0 {
		t.Errorf("unwritten memory should read zero: %v", buf)
	}
}

func TestMemoryReadWriteU(t *testing.T) {
	m := NewMemory()
	for _, w := range []uint8{1, 2, 4, 8} {
		v := uint64(0x1122334455667788) & ((1 << (uint(w) * 8)) - 1)
		if w == 8 {
			v = 0x1122334455667788
		}
		m.WriteU(0x2000, v, w)
		if got := m.ReadU(0x2000, w); got != v {
			t.Errorf("width %d: got %#x, want %#x", w, got, v)
		}
	}
}

func TestMemoryQuickU32(t *testing.T) {
	m := NewMemory()
	f := func(addr uint32, v uint32) bool {
		a := uint64(addr)
		m.WriteU(a, uint64(v), 4)
		return m.ReadU(a, 4) == uint64(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// --- domain ---

func TestDomainStateLifecycle(t *testing.T) {
	m := NewMemory()
	d := NewDomain(m, compress.AlgBDI)
	la := uint64(0x4000)
	if d.State(la).IsCompressed() {
		t.Error("fresh line should be raw")
	}
	if d.Bursts(la) != compress.MaxBursts {
		t.Error("raw line should need max bursts")
	}
	// Zero line compresses to 1 burst.
	c := d.CompressLine(la)
	if !c.IsCompressed() || c.Bursts() != 1 {
		t.Errorf("zero line: %+v", c)
	}
	if d.Bursts(la) != 1 {
		t.Error("domain should remember compression")
	}
	d.SetRaw(la)
	if d.State(la).IsCompressed() {
		t.Error("SetRaw should clear state")
	}
}

func TestDomainPrecompress(t *testing.T) {
	m := NewMemory()
	d := NewDomain(m, compress.AlgBDI)
	// 8 lines of pointer-like data.
	for i := 0; i < 8*compress.LineSize/8; i++ {
		m.WriteU(uint64(i*8), 0x70000000+uint64(i), 8)
	}
	ratio := d.Precompress(0, 8*compress.LineSize)
	if ratio <= 1.5 {
		t.Errorf("pointer data ratio = %v, want > 1.5", ratio)
	}
	if d.CompressedLineCount() != 8 {
		t.Errorf("compressed lines = %d, want 8", d.CompressedLineCount())
	}
}

func TestDomainCompressionMatchesBacking(t *testing.T) {
	m := NewMemory()
	d := NewDomain(m, compress.AlgBDI)
	line := make([]byte, compress.LineSize)
	for i := 0; i < 16; i++ {
		binary.LittleEndian.PutUint64(line[i*8:], 0xabc000+uint64(i*4))
	}
	m.Write(0x8000, line)
	c := d.CompressLine(0x8000)
	if !c.IsCompressed() {
		t.Fatal("should compress")
	}
	out := make([]byte, compress.LineSize)
	if err := compress.Decompress(c, out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, line) {
		t.Error("domain payload does not decompress to backing bytes")
	}
}

func TestLineAddr(t *testing.T) {
	if LineAddr(0x12345) != 0x12345&^uint64(compress.LineSize-1) {
		t.Error("LineAddr mask wrong")
	}
	if LineAddr(128) != 128 || LineAddr(129) != 128 || LineAddr(255) != 128 {
		t.Error("LineAddr boundaries wrong")
	}
}

// --- cache ---

func TestCacheHitMiss(t *testing.T) {
	c := NewCache(1024, 2, 128, 1, 1) // 4 sets x 2 ways
	if c.Lookup(0, false) {
		t.Error("empty cache should miss")
	}
	c.Insert(0, 128, false)
	if !c.Lookup(0, false) {
		t.Error("inserted line should hit")
	}
	if c.Hits != 1 || c.Misses != 1 {
		t.Errorf("counters = %d/%d", c.Hits, c.Misses)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(1024, 2, 128, 1, 1) // 4 sets x 2 ways
	// Three lines in the same set (stride = numSets*lineSize = 512).
	c.Insert(0, 128, false)
	c.Insert(512, 128, false)
	c.Lookup(0, false) // refresh 0
	evs := c.Insert(1024, 128, false)
	if len(evs) != 1 || evs[0].LineAddr != 512 {
		t.Errorf("evicted %+v, want line 512 (LRU)", evs)
	}
	if !c.Contains(0) || !c.Contains(1024) || c.Contains(512) {
		t.Error("wrong resident set after eviction")
	}
}

func TestCacheDirtyWriteback(t *testing.T) {
	c := NewCache(256, 2, 128, 1, 1) // 1 set x 2 ways
	c.Insert(0, 128, true)
	c.Insert(128, 128, false)
	evs := c.Insert(256, 128, false)
	if len(evs) != 1 || !evs[0].Dirty || evs[0].LineAddr != 0 {
		t.Errorf("dirty eviction wrong: %+v", evs)
	}
}

func TestCacheWriteMarksDirty(t *testing.T) {
	c := NewCache(256, 2, 128, 1, 1)
	c.Insert(0, 128, false)
	c.Lookup(0, true) // store hit
	ev, ok := c.Invalidate(0)
	if !ok || !ev.Dirty {
		t.Error("store hit should mark line dirty")
	}
}

func TestCacheCompressedCapacityMode(t *testing.T) {
	// 1 set, 2 ways, 4x tags: up to 8 tags but only 256B of data.
	c := NewCache(256, 2, 128, 1, 4)
	// Insert 8 lines of 32B each: all fit (8 x 32 = 256 <= 256).
	for i := 0; i < 8; i++ {
		if evs := c.Insert(uint64(i*128), 32, false); len(evs) != 0 {
			t.Fatalf("line %d evicted %+v; all should fit", i, evs)
		}
	}
	if c.ResidentLines() != 8 {
		t.Errorf("resident = %d, want 8 (capacity benefit)", c.ResidentLines())
	}
	// A 9th line: tags exhausted -> evict one.
	evs := c.Insert(uint64(8*128), 32, false)
	if len(evs) != 1 {
		t.Errorf("9th line should evict exactly one, got %d", len(evs))
	}
}

func TestCacheCapacityModeEvictsBySize(t *testing.T) {
	c := NewCache(256, 2, 128, 1, 4)
	c.Insert(0, 32, false)
	c.Insert(128, 32, false)
	// A full-size line (128B) forces usage 32+32+128 = 192 <= 256: fits.
	if evs := c.Insert(256, 128, false); len(evs) != 0 {
		t.Fatalf("should fit: %+v", evs)
	}
	// Another full-size line: 192+128 = 320 > 256: evicts LRU lines.
	evs := c.Insert(384, 128, false)
	if len(evs) == 0 {
		t.Fatal("overflow must evict")
	}
}

func TestCacheBaselineNoCapacityBenefit(t *testing.T) {
	// tagMult=1: even 32B lines occupy a tag each; 2 ways = 2 lines max.
	c := NewCache(256, 2, 128, 1, 1)
	c.Insert(0, 32, false)
	c.Insert(128, 32, false)
	evs := c.Insert(256, 32, false)
	if len(evs) != 1 {
		t.Errorf("baseline cache must evict on 3rd line in a 2-way set, got %d evictions", len(evs))
	}
}

func TestCacheIndexDivisor(t *testing.T) {
	// Simulates an L2 partition: lines strided by 4 channels. With div=4
	// consecutive local lines map to consecutive sets.
	c := NewCache(1024, 2, 128, 4, 1)     // 4 sets
	addrs := []uint64{0, 512, 1024, 1536} // channel-0 lines: local lines 0,1,2,3
	for _, a := range addrs {
		c.Insert(a, 128, false)
	}
	if c.ResidentLines() != 4 {
		t.Errorf("resident = %d, want 4 (each local line its own set)", c.ResidentLines())
	}
}

func TestCacheUpdateResidentSize(t *testing.T) {
	c := NewCache(256, 2, 128, 1, 4)
	c.Insert(0, 32, false)
	c.Insert(0, 128, true) // same line, recompressed larger + dirty
	if got := c.LineSizeOf(0); got != 128 {
		t.Errorf("size = %d, want 128", got)
	}
	ev, _ := c.Invalidate(0)
	if !ev.Dirty {
		t.Error("reinsertion should keep dirty bit")
	}
}

// --- MSHR ---

func TestMSHRMergeAndComplete(t *testing.T) {
	m := NewMSHR(2)
	p1, ok1 := m.Add(128, "a")
	p2, ok2 := m.Add(128, "b")
	if !p1 || !ok1 || p2 || !ok2 {
		t.Errorf("primary/secondary wrong: %v %v %v %v", p1, ok1, p2, ok2)
	}
	m.Add(256, "c")
	if !m.Full() {
		t.Error("2 entries should fill a 2-entry MSHR")
	}
	if _, ok := m.Add(384, "d"); ok {
		t.Error("full MSHR must reject new lines")
	}
	if _, ok := m.Add(128, "e"); !ok {
		t.Error("full MSHR must still merge existing lines")
	}
	w := m.Complete(128)
	if len(w) != 3 || w[0] != "a" || w[2] != "e" {
		t.Errorf("waiters = %v", w)
	}
	if m.Pending(128) {
		t.Error("completed entry should be gone")
	}
}

func TestMSHRUnbounded(t *testing.T) {
	m := NewMSHR(0)
	for i := 0; i < 1000; i++ {
		if _, ok := m.Add(uint64(i*128), i); !ok {
			t.Fatal("unbounded MSHR rejected an entry")
		}
	}
	if m.Full() {
		t.Error("unbounded MSHR is never full")
	}
}

// --- xbar ---

func TestXbarSerializesPortFlits(t *testing.T) {
	var q timing.Queue
	var s stats.Sim
	x := NewXbar(&q, &s, 2, 8)
	var arrivals []float64
	for i := 0; i < 3; i++ {
		x.ToPartition(0, 4, timing.Fn(func() { arrivals = append(arrivals, q.Now()) }))
	}
	x.ToPartition(1, 4, timing.Fn(func() { arrivals = append(arrivals, q.Now()) }))
	q.RunUntil(1000)
	// Port 0: packets finish at 4, 8, 12 (+8 latency) = 12, 16, 20.
	// Port 1: independent, 4+8 = 12.
	if len(arrivals) != 4 {
		t.Fatalf("arrivals = %v", arrivals)
	}
	if arrivals[0] != 12 || arrivals[1] != 12 || arrivals[2] != 16 || arrivals[3] != 20 {
		t.Errorf("arrivals = %v, want [12 12 16 20]", arrivals)
	}
	if s.FlitsToMem != 16 {
		t.Errorf("flits = %d, want 16", s.FlitsToMem)
	}
}

func TestXbarDirectionsIndependent(t *testing.T) {
	var q timing.Queue
	var s stats.Sim
	x := NewXbar(&q, &s, 1, 0)
	var order []string
	x.ToPartition(0, 10, timing.Fn(func() { order = append(order, "req") }))
	x.FromPartition(0, 1, timing.Fn(func() { order = append(order, "resp") }))
	q.RunUntil(100)
	if len(order) != 2 || order[0] != "resp" {
		t.Errorf("order = %v; directions must not contend", order)
	}
}

// --- DRAM channel ---

func testChannel(md bool) (*Channel, *timing.Queue, *stats.Sim) {
	cfg := config.Baseline()
	q := &timing.Queue{}
	s := &stats.Sim{}
	var mdc *MDCache
	if md {
		mdc = NewMDCache(&cfg)
	}
	// Note: cfg escapes; take a stable copy.
	c := cfg
	return NewChannel(0, &c, q, s, mdc, nil), q, s
}

func TestChannelBurstAccounting(t *testing.T) {
	ch, q, s := testChannel(false)
	done := 0
	ch.Enqueue(0, false, 4, timing.Fn(func() { done++ }))
	ch.Enqueue(128*6, false, 1, timing.Fn(func() { done++ })) // same channel, next local line
	q.RunUntil(10000)
	if done != 2 {
		t.Fatalf("done = %d", done)
	}
	if s.DRAMBursts != 5 || s.DRAMBusyCycles != 5 {
		t.Errorf("bursts = %d busy = %d, want 5/5", s.DRAMBursts, s.DRAMBusyCycles)
	}
	if s.DRAMReads != 2 {
		t.Errorf("reads = %d", s.DRAMReads)
	}
}

func TestChannelRowHitFaster(t *testing.T) {
	ch, q, _ := testChannel(false)
	var t2, t3 float64
	ch.Enqueue(0, false, 4, nil)
	q.RunUntil(100000)
	// Same row: only CAS latency.
	ch.Enqueue(128*6, false, 4, timing.Fn(func() { t2 = q.Now() }))
	q.RunUntil(200000)
	// Far line, same bank, different row: precharge + activate.
	far := uint64(128) * 6 * ch.linesPerRow * uint64(len(ch.banks)) * 3
	ch.Enqueue(far, false, 4, timing.Fn(func() { t3 = q.Now() }))
	q.RunUntil(300000)
	hitLat := t2 - 100000
	missLat := t3 - 200000
	if hitLat <= 0 || missLat <= hitLat {
		t.Errorf("row hit %v should be faster than row miss %v", hitLat, missLat)
	}
}

func TestChannelFRFCFSPrefersRowHits(t *testing.T) {
	ch, q, _ := testChannel(false)
	var order []uint64
	// Occupy the channel, then queue a row-conflict and a row-hit request.
	ch.Enqueue(0, false, 4, timing.Fn(func() { order = append(order, 0) }))
	conflict := uint64(128) * 6 * ch.linesPerRow * uint64(len(ch.banks)) * 5
	ch.Enqueue(conflict, false, 4, timing.Fn(func() { order = append(order, 1) }))
	ch.Enqueue(128*6, false, 4, timing.Fn(func() { order = append(order, 2) })) // row hit with req 0
	q.RunUntil(100000)
	if len(order) != 3 || order[1] != 2 {
		t.Errorf("service order = %v; FR-FCFS should serve the row hit (2) before the conflict (1)", order)
	}
}

func TestChannelMDCacheMissCostsExtraBurst(t *testing.T) {
	ch, q, s := testChannel(true)
	ch.Enqueue(0, false, 1, nil) // first touch: MD miss
	q.RunUntil(10000)
	if s.MDMisses != 1 || s.DRAMBursts != 2 {
		t.Errorf("md misses = %d bursts = %d, want 1/2", s.MDMisses, s.DRAMBursts)
	}
	ch.Enqueue(128*6, false, 1, nil) // neighbor line: MD hit
	q.RunUntil(20000)
	if s.MDHits != 1 || s.DRAMBursts != 3 {
		t.Errorf("md hits = %d bursts = %d, want 1/3", s.MDHits, s.DRAMBursts)
	}
}

func TestMDCacheSpatialLocality(t *testing.T) {
	cfg := config.Baseline()
	md := NewMDCache(&cfg)
	// Stream 4096 consecutive lines: 1 miss per MDLinesPerEntry lines.
	for i := 0; i < 4096; i++ {
		md.Access(uint64(i*cfg.LineSize), cfg.LineSize)
	}
	wantMisses := uint64(4096 / cfg.MDLinesPerEntry)
	if md.Misses != wantMisses {
		t.Errorf("misses = %d, want %d", md.Misses, wantMisses)
	}
	hitRate := float64(md.Hits) / float64(md.Hits+md.Misses)
	if hitRate < 0.99 {
		t.Errorf("streaming MD hit rate = %v, want > 99%% (Section 4.3.2)", hitRate)
	}
}

// --- full system ---

func testSystem(design config.Design) (*System, *timing.Queue, *stats.Sim, *Domain) {
	cfg := config.TestConfig()
	c := cfg
	q := &timing.Queue{}
	s := &stats.Sim{}
	dom := NewDomain(NewMemory(), design.Alg)
	sys := NewSystem(&c, design, q, s, dom)
	return sys, q, s, dom
}

func TestSystemReadFillFlow(t *testing.T) {
	sys, q, s, _ := testSystem(config.DesignBase)
	fills := 0
	sys.OnFill = func(sm int, lineAddr uint64, user any) {
		fills++
		if sm != 3 || lineAddr != 256 || user != "tag" {
			t.Errorf("fill = sm%d %#x %v", sm, lineAddr, user)
		}
	}
	sys.ReadLine(3, 256, "tag")
	q.RunUntil(100000)
	if fills != 1 {
		t.Fatalf("fills = %d", fills)
	}
	if s.L2Misses != 1 || s.DRAMReads != 1 || s.DRAMBursts != 4 {
		t.Errorf("miss=%d reads=%d bursts=%d", s.L2Misses, s.DRAMReads, s.DRAMBursts)
	}
	// Second read: L2 hit, no DRAM.
	sys.ReadLine(3, 256, "tag")
	q.RunUntil(200000)
	if s.L2Hits != 1 || s.DRAMReads != 1 {
		t.Errorf("hit=%d reads=%d after re-read", s.L2Hits, s.DRAMReads)
	}
}

func TestSystemCompressedReadUsesFewerBursts(t *testing.T) {
	sys, q, s, dom := testSystem(config.DesignCABABDI)
	dom.Precompress(0, compress.LineSize) // zero line -> 1 burst
	sys.OnFill = func(int, uint64, any) {}
	sys.ReadLine(0, 0, nil)
	q.RunUntil(100000)
	// 1 data burst + 1 metadata burst (first touch misses the MD cache).
	if s.DRAMBursts != 2 {
		t.Errorf("bursts = %d, want 2 (1 data + 1 MD-miss) for a zero line", s.DRAMBursts)
	}
	if got := sys.ArrivesCompressed(0); !got.IsCompressed() {
		t.Error("ScopeL2 line should arrive compressed at the SM")
	}
}

func TestSystemHWBDIMemDecompressesAtMC(t *testing.T) {
	sys, q, s, dom := testSystem(config.DesignHWBDIMem)
	dom.Precompress(0, compress.LineSize)
	sys.OnFill = func(int, uint64, any) {}
	sys.ReadLine(0, 0, nil)
	q.RunUntil(100000)
	if s.DRAMBursts != 2 { // 1 data + 1 MD-miss
		t.Errorf("DRAM bursts = %d, want 2 (compressed in memory + MD miss)", s.DRAMBursts)
	}
	if sys.ArrivesCompressed(0).IsCompressed() {
		t.Error("HW-BDI-Mem lines must arrive raw at the SM")
	}
	// Interconnect response: full line = 1 + LineSize/FlitSize flits.
	wantResp := uint64(1 + compress.LineSize/sys.Cfg.FlitSize)
	if s.FlitsFromMem != wantResp {
		t.Errorf("response flits = %d, want %d (no interconnect compression)", s.FlitsFromMem, wantResp)
	}
}

func TestSystemScopeL2SavesInterconnect(t *testing.T) {
	sys, q, s, dom := testSystem(config.DesignHWBDI)
	dom.Precompress(0, compress.LineSize)
	sys.OnFill = func(int, uint64, any) {}
	sys.ReadLine(0, 0, nil)
	q.RunUntil(100000)
	if s.FlitsFromMem != 2 { // header + 1 compressed flit
		t.Errorf("response flits = %d, want 2 (interconnect compression)", s.FlitsFromMem)
	}
}

func TestSystemWriteDirtyEvictionWritesBack(t *testing.T) {
	sys, q, s, _ := testSystem(config.DesignBase)
	sys.OnFill = func(int, uint64, any) {}
	// Fill one L2 partition set beyond capacity with dirty lines.
	// Partition 0 lines: stride = NumChannels * LineSize.
	stride := uint64(sys.Cfg.NumChannels * sys.Cfg.LineSize)
	setStride := stride * uint64(sys.parts[0].cache.numSets)
	for i := 0; i < sys.Cfg.L2Assoc+2; i++ {
		sys.WriteLine(0, uint64(i)*setStride)
		q.RunUntil(q.Now() + 10000)
	}
	q.RunUntil(q.Now() + 100000)
	if s.DRAMWrites < 2 {
		t.Errorf("DRAM writes = %d, want >= 2 dirty writebacks", s.DRAMWrites)
	}
}

func TestSystemMSHRMergesSameLine(t *testing.T) {
	sys, q, s, _ := testSystem(config.DesignBase)
	fills := 0
	sys.OnFill = func(int, uint64, any) { fills++ }
	sys.ReadLine(0, 512, nil)
	sys.ReadLine(1, 512, nil)
	q.RunUntil(100000)
	if fills != 2 {
		t.Errorf("fills = %d, want 2 (both waiters woken)", fills)
	}
	if s.DRAMReads != 1 {
		t.Errorf("DRAM reads = %d, want 1 (merged)", s.DRAMReads)
	}
}

func TestSystemRatioAccumulates(t *testing.T) {
	sys, q, s, dom := testSystem(config.DesignCABABDI)
	dom.Precompress(0, 4*compress.LineSize)
	sys.OnFill = func(int, uint64, any) {}
	for i := 0; i < 4; i++ {
		sys.ReadLine(0, uint64(i*compress.LineSize), nil)
	}
	q.RunUntil(100000)
	if s.Ratio.Lines != 4 {
		t.Errorf("ratio lines = %d, want 4", s.Ratio.Lines)
	}
	if s.Ratio.Value() != 4.0 {
		t.Errorf("ratio = %v, want 4.0 for zero lines", s.Ratio.Value())
	}
}

func TestSystemDrained(t *testing.T) {
	sys, q, _, _ := testSystem(config.DesignBase)
	done := false
	sys.OnFill = func(int, uint64, any) { done = true }
	if !sys.Drained() {
		t.Error("fresh system should be drained")
	}
	sys.ReadLine(0, 0, nil)
	if sys.Drained() {
		t.Error("in-flight read: not drained")
	}
	q.RunUntil(100000)
	if !done || !sys.Drained() {
		t.Error("after completion system should be drained")
	}
}

func TestSystemPartitionInterleaving(t *testing.T) {
	sys, _, _, _ := testSystem(config.DesignBase)
	seen := map[int]bool{}
	for i := 0; i < sys.Cfg.NumChannels*3; i++ {
		seen[sys.PartitionOf(uint64(i*sys.Cfg.LineSize))] = true
	}
	if len(seen) != sys.Cfg.NumChannels {
		t.Errorf("interleaving covers %d partitions, want %d", len(seen), sys.Cfg.NumChannels)
	}
}

func TestSystemBandwidthScaling(t *testing.T) {
	// Same traffic at 0.5x and 2x bandwidth: completion time should
	// shrink as bandwidth grows.
	elapsed := func(bw float64) float64 {
		cfg := config.TestConfig()
		cfg.BWScale = bw
		q := &timing.Queue{}
		s := &stats.Sim{}
		dom := NewDomain(NewMemory(), compress.AlgNone)
		sys := NewSystem(&cfg, config.DesignBase, q, s, dom)
		var last float64
		sys.OnFill = func(int, uint64, any) { last = q.Now() }
		for i := 0; i < 64; i++ {
			sys.ReadLine(0, uint64(i*cfg.LineSize), nil)
		}
		q.RunUntil(1e7)
		return last
	}
	slow, fast := elapsed(0.5), elapsed(2.0)
	if fast >= slow {
		t.Errorf("2x BW (%v) should finish before 0.5x BW (%v)", fast, slow)
	}
}

// Property: random mixes of reads/writes always drain and every read
// fills exactly once.
func TestSystemQuickAlwaysDrains(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sys, q, _, dom := testSystem(config.DesignCABABDI)
		dom.Precompress(0, 64*compress.LineSize)
		fills := 0
		sys.OnFill = func(int, uint64, any) { fills++ }
		reads := 0
		for i := 0; i < 100; i++ {
			la := uint64(rng.Intn(64) * compress.LineSize)
			if rng.Intn(2) == 0 {
				sys.ReadLine(rng.Intn(2), la, nil)
				reads++
			} else {
				sys.WriteLine(rng.Intn(2), la)
			}
		}
		q.RunUntil(1e8)
		return fills == reads && sys.Drained()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
