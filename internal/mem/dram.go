package mem

import (
	"github.com/caba-sim/caba/internal/config"
	"github.com/caba-sim/caba/internal/faults"
	"github.com/caba-sim/caba/internal/obs"
	"github.com/caba-sim/caba/internal/stats"
	"github.com/caba-sim/caba/internal/timing"
)

// MDCache is the compression-metadata cache near each memory controller
// (Section 4.3.2): without it, every DRAM access would need a second access
// to fetch the per-line burst-count metadata. One MD line covers the
// metadata of MDLinesPerEntry consecutive data lines, so spatially local
// workloads hit nearly always.
type MDCache struct {
	c *Cache
	// linesPerEntry is how many data lines one MD entry covers.
	linesPerEntry uint64
	Hits, Misses  uint64
}

// NewMDCache builds the per-channel MD cache from the configuration. The
// configured capacity is split evenly across channels.
func NewMDCache(cfg *config.Config) *MDCache {
	size := cfg.MDCacheSize / cfg.NumChannels
	if size < cfg.MDCacheAssoc*32 {
		size = cfg.MDCacheAssoc * 32
	}
	return &MDCache{
		c:             NewCache(size, cfg.MDCacheAssoc, 32, 1, 1),
		linesPerEntry: uint64(cfg.MDLinesPerEntry),
	}
}

// Access probes the MD cache for the metadata covering lineAddr, inserting
// it on miss. It reports whether the access hit.
func (m *MDCache) Access(lineAddr uint64, lineSize int) bool {
	key := lineAddr / uint64(lineSize) / m.linesPerEntry * 32
	if m.c.Lookup(key, false) {
		m.Hits++
		return true
	}
	m.Misses++
	m.c.Insert(key, 32, false)
	return false
}

// dramReq is one line-granularity DRAM access.
type dramReq struct {
	lineAddr uint64
	write    bool
	bursts   int
	arrival  float64
	mdMiss   bool
	done     timing.Action
}

// Channel models one GDDR5 memory controller + device: banked timing with
// open rows, FR-FCFS scheduling (row hits first, then oldest), and a data
// bus that moves one 32B burst per memory cycle. Bandwidth utilization is
// bursts transferred over memory cycles elapsed, exactly the paper's
// metric.
type Channel struct {
	id  int
	cfg *config.Config
	q   *timing.Queue
	s   *stats.Sim
	md  *MDCache         // nil when the design stores DRAM data raw
	inj *faults.Injector // nil when fault injection is disabled
	tr  *obs.TraceShard  // nil when tracing is disabled; tid = channel id

	coresPerMem    float64 // core cycles per memory cycle (bandwidth-scaled)
	coresPerMemLat float64 // core cycles per memory cycle for latency terms
	busNextFree    float64 // core-cycle time the data bus frees up
	banks          []bank
	queue          []*dramReq
	busy           bool

	linesPerRow uint64
}

type bank struct {
	openRow   int64 // -1 = closed
	nextReady float64
}

// NewChannel builds memory channel id.
func NewChannel(id int, cfg *config.Config, q *timing.Queue, s *stats.Sim, md *MDCache, inj *faults.Injector) *Channel {
	ch := &Channel{
		id:  id,
		cfg: cfg,
		q:   q,
		s:   s,
		md:  md,
		inj: inj,
		// BWScale stretches/shrinks only the data-bus occupancy per burst
		// (narrower/wider bus), leaving array timings unchanged — the
		// paper's sensitivity study varies peak bandwidth, not latency.
		coresPerMem:    float64(cfg.CoreClockMHz) / (float64(cfg.MemClockMHz) * cfg.BWScale),
		coresPerMemLat: float64(cfg.CoreClockMHz) / float64(cfg.MemClockMHz),
		banks:          make([]bank, cfg.BanksPerChannel),
		linesPerRow:    2048 / uint64(cfg.LineSize), // 2KB rows
	}
	for i := range ch.banks {
		ch.banks[i].openRow = -1
	}
	return ch
}

// bankAndRow maps a line address to this channel's bank and row.
func (ch *Channel) bankAndRow(lineAddr uint64) (int, int64) {
	local := lineAddr / uint64(ch.cfg.LineSize) / uint64(ch.cfg.NumChannels)
	colGroup := local / ch.linesPerRow
	b := int(colGroup % uint64(len(ch.banks)))
	row := int64(colGroup / uint64(len(ch.banks)))
	return b, row
}

// Enqueue adds a request; done runs when its last burst leaves the bus
// (plus the CAS latency). Pass timing.Nop for fire-and-forget writes: the
// completion event is scheduled either way, keeping the event sequence —
// and hence the golden statistics — independent of who waits.
func (ch *Channel) Enqueue(lineAddr uint64, write bool, bursts int, done timing.Action) {
	if done == nil {
		done = timing.Nop{}
	}
	r := &dramReq{
		lineAddr: lineAddr,
		write:    write,
		bursts:   bursts,
		arrival:  ch.q.Now(),
		done:     done,
	}
	if ch.md != nil {
		// A MD-cache miss costs one extra metadata burst from the
		// metadata region (Section 4.3.2: 8MB reserved in DRAM).
		r.mdMiss = !ch.md.Access(lineAddr, ch.cfg.LineSize)
		if r.mdMiss {
			ch.s.MDMisses++
		} else {
			ch.s.MDHits++
		}
		if !r.mdMiss && ch.inj.MDCorrupt() {
			// MD-corruption injection site: the cached metadata entry is
			// bad. The MD cache's ECC detects it, and the channel recovers
			// by refetching the metadata from the DRAM region — the same
			// extra burst a miss costs — so a wrong burst count never
			// reaches the scheduler.
			r.mdMiss = true
			ch.s.FaultsInjected++
			ch.s.FaultsDetected++
			ch.s.FaultsRecovered++
		}
	}
	ch.queue = append(ch.queue, r)
	if !ch.busy {
		ch.serveNext()
	}
}

// serveNext picks the next request FR-FCFS style and schedules its
// completion. Bank preparation (precharge/activate) is assumed to have
// proceeded in the background since arrival, so a deep queue keeps the
// data bus saturated.
func (ch *Channel) serveNext() {
	if len(ch.queue) == 0 {
		ch.busy = false
		return
	}
	ch.busy = true
	now := ch.q.Now()

	// FR-FCFS: first row hit whose bank is ready; otherwise the oldest.
	pick := 0
	for i, r := range ch.queue {
		b, row := ch.bankAndRow(r.lineAddr)
		if ch.banks[b].openRow == row && ch.banks[b].nextReady <= now {
			pick = i
			break
		}
	}
	r := ch.queue[pick]
	ch.queue = append(ch.queue[:pick], ch.queue[pick+1:]...)

	t := &ch.cfg.Timing
	bi, row := ch.bankAndRow(r.lineAddr)
	bk := &ch.banks[bi]

	// Bank occupancy in core cycles. Preparation counts from arrival (the
	// activate proceeds in the background while earlier transfers use the
	// bus). Row hits pipeline at the column-to-column delay; the CAS
	// latency itself is pure latency, charged on the response below, not
	// occupancy.
	prepStart := r.arrival
	if bk.nextReady > prepStart {
		prepStart = bk.nextReady
	}
	var prepMem int
	if bk.openRow != row {
		prepMem = t.TRP + t.TRCD // precharge + activate
		ch.s.DRAMActivates++
		bk.openRow = row
	} else {
		prepMem = t.TCCD
	}
	bursts := r.bursts
	if r.mdMiss {
		// Metadata fetch: one extra burst. Its latency overlaps the data
		// access (the paper notes MD misses coincide with TLB misses, so
		// the lookup is not serialized on the critical path).
		bursts++
	}
	ready := prepStart + float64(prepMem)*ch.coresPerMemLat

	start := ch.busNextFree
	if now > start {
		start = now
	}
	if ready > start {
		start = ready
	}
	end := start + float64(bursts)*ch.coresPerMem
	ch.busNextFree = end
	bk.nextReady = end
	if r.write {
		bk.nextReady = end + float64(t.TWR)*ch.coresPerMemLat
		ch.s.DRAMWrites++
	} else {
		ch.s.DRAMReads++
	}
	ch.s.DRAMBursts += uint64(bursts)
	ch.s.DRAMBusyCycles += uint64(bursts) // in memory cycles: 1 burst = 1 cycle
	if ch.tr != nil {
		// One data-bus occupancy span per request (timestamps in core
		// cycles; start never regresses — it is clamped to busNextFree).
		name := "read"
		if r.write {
			name = "write"
		}
		ch.tr.Complete(uint64(start), uint64(end)-uint64(start), ch.id, name, "dram")
	}

	// The requester sees the CAS latency on top of the data transfer.
	respond := end + float64(t.TCL)*ch.coresPerMemLat
	ch.q.Push(respond, r.done)
	// The bus frees at `end`: pick the next request then (or now if the
	// queue builds earlier — Enqueue restarts an idle channel).
	ch.q.Push(end, actServe{ch: ch})
}

// QueueDepth returns the number of waiting requests (excluding the one in
// service).
func (ch *Channel) QueueDepth() int { return len(ch.queue) }
