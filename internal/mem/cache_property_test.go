package mem

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestQuickCacheAgainstModel drives the set-associative cache with random
// access sequences and checks it against a trivial reference model:
// resident bytes never exceed each set's data capacity, tags never exceed
// the tag count, a hit implies the line was inserted and not yet evicted,
// and every eviction names a line that was actually resident.
func TestQuickCacheAgainstModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		assoc := 1 + rng.Intn(4)
		sets := 1 << rng.Intn(3)
		tagMult := 1 + rng.Intn(3)
		lineSize := 128
		c := NewCache(sets*assoc*lineSize, assoc, lineSize, 1, tagMult)

		resident := map[uint64]int{} // lineAddr -> size
		for step := 0; step < 400; step++ {
			la := uint64(rng.Intn(sets*8)) * uint64(lineSize)
			switch rng.Intn(3) {
			case 0: // lookup
				hit := c.Lookup(la, rng.Intn(2) == 0)
				if _, want := resident[la]; hit != want {
					return false
				}
			case 1: // insert
				size := 16 * (1 + rng.Intn(8)) // 16..128
				evs := c.Insert(la, size, rng.Intn(2) == 0)
				for _, ev := range evs {
					if _, ok := resident[ev.LineAddr]; !ok {
						return false // evicted something not resident
					}
					delete(resident, ev.LineAddr)
				}
				resident[la] = size
			case 2: // invalidate
				_, had := c.Invalidate(la)
				if _, want := resident[la]; had != want {
					return false
				}
				delete(resident, la)
			}
			// Invariants: per-set byte and tag budgets.
			setBytes := map[uint64]int{}
			setTags := map[uint64]int{}
			for addr, size := range resident {
				s := addr / uint64(lineSize) % uint64(sets)
				setBytes[s] += size
				setTags[s]++
			}
			for s := range setBytes {
				if setBytes[s] > assoc*lineSize {
					return false
				}
				if setTags[s] > assoc*tagMult {
					return false
				}
			}
			if c.ResidentLines() != len(resident) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickMSHRConservation: every added waiter comes back exactly once.
func TestQuickMSHRConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := NewMSHR(8)
		added := map[int]bool{}
		pending := map[uint64][]int{}
		next := 0
		for step := 0; step < 200; step++ {
			if rng.Intn(3) != 0 || len(pending) == 0 {
				la := uint64(rng.Intn(12)) * 128
				primary, ok := m.Add(la, next)
				if !ok {
					continue
				}
				if primary != (len(pending[la]) == 0) {
					return false
				}
				pending[la] = append(pending[la], next)
				added[next] = true
				next++
			} else {
				// complete a random pending line
				for la := range pending {
					ws := m.Complete(la)
					if len(ws) != len(pending[la]) {
						return false
					}
					for i, w := range ws {
						if w.(int) != pending[la][i] {
							return false // arrival order violated
						}
						delete(added, w.(int))
					}
					delete(pending, la)
					break
				}
			}
		}
		for la := range pending {
			for _, w := range m.Complete(la) {
				delete(added, w.(int))
			}
		}
		return len(added) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
