package mem

import (
	"github.com/caba-sim/caba/internal/compress"
	"github.com/caba-sim/caba/internal/timing"
)

// Outbox collects one SM's outbound shared-state operations during the
// parallel phase (phase A) of the two-phase tick: crossbar traffic
// (ReadLine/WriteLine), delayed-event scheduling, and compression-metadata
// (Domain) updates. The operations are recorded in program order and
// replayed verbatim by System.CommitOutbox on the main goroutine at the
// cycle barrier, so phase-A workers never touch the crossbar, the event
// queue, the Domain map, or any other shared structure.
//
// Domain writes ride in the same ordered stream as crossbar ops because
// WriteLine's flit count reads the line's compression state at send time:
// a staged SetCompressed must land before the staged WriteLine that
// follows it, exactly as the direct calls interleave on the serial path.
// StagedState gives the owning SM read-through to its own not-yet-
// committed Domain writes within the tick.
type Outbox struct {
	// SM is the owning SM's index, used as the crossbar port at commit.
	SM int

	ops []stagedOp
	dom map[uint64]compress.Compressed // staged Domain state; Alg==AlgNone entry = staged raw
}

type opKind uint8

const (
	opReadLine opKind = iota
	opReadLineRaw
	opWriteLine
	opEvent
	opSetCompressed
	opSetRaw
)

type stagedOp struct {
	kind opKind
	line uint64
	user any
	at   float64
	act  timing.Action
	st   compress.Compressed
}

// Empty reports whether nothing is staged.
func (ob *Outbox) Empty() bool { return len(ob.ops) == 0 }

// ReadLine stages a line request on behalf of the owning SM.
func (ob *Outbox) ReadLine(line uint64, user any) {
	ob.ops = append(ob.ops, stagedOp{kind: opReadLine, line: line, user: user})
}

// ReadLineRaw stages a fault-recovery refetch of the uncompressed line.
func (ob *Outbox) ReadLineRaw(line uint64, user any) {
	ob.ops = append(ob.ops, stagedOp{kind: opReadLineRaw, line: line, user: user})
}

// WriteLine stages a line writeback toward L2.
func (ob *Outbox) WriteLine(line uint64) {
	ob.ops = append(ob.ops, stagedOp{kind: opWriteLine, line: line})
}

// Event stages a timed action (Queue.Push) for the commit phase. at is an
// absolute time; times at or before the commit cycle fire on the next
// queue run, matching Queue.Push's clamping on the direct path.
func (ob *Outbox) Event(at float64, act timing.Action) {
	ob.ops = append(ob.ops, stagedOp{kind: opEvent, at: at, act: act})
}

// SetCompressed stages a Domain compression-state update.
func (ob *Outbox) SetCompressed(line uint64, st compress.Compressed) {
	ob.ops = append(ob.ops, stagedOp{kind: opSetCompressed, line: line, st: st})
	ob.stageDom(line, st)
}

// SetRaw stages a Domain raw-state update.
func (ob *Outbox) SetRaw(line uint64) {
	ob.ops = append(ob.ops, stagedOp{kind: opSetRaw, line: line})
	ob.stageDom(line, compress.Compressed{Alg: compress.AlgNone})
}

func (ob *Outbox) stageDom(line uint64, st compress.Compressed) {
	if ob.dom == nil {
		ob.dom = make(map[uint64]compress.Compressed)
	}
	ob.dom[line] = st
}

// StagedState returns the staged Domain state for line, if this outbox
// holds one. The owning SM consults it before the committed Domain so its
// own same-cycle metadata writes are visible to its later reads.
func (ob *Outbox) StagedState(line uint64) (compress.Compressed, bool) {
	if len(ob.dom) == 0 {
		return compress.Compressed{}, false
	}
	st, ok := ob.dom[line]
	return st, ok
}

// CommitOutbox replays one SM's staged operations, in the order the SM
// issued them, into the live crossbar/Domain/event queue. The simulator
// calls it at the cycle barrier in ascending SM-index order; that fixed
// order is the crossbar's port-arbitration order, and it reproduces the
// serial tick schedule exactly (SM i's tick ran, and hence sent, before
// SM i+1's), which is what makes the parallel tick bit-identical.
func (sys *System) CommitOutbox(ob *Outbox) {
	for i := range ob.ops {
		op := &ob.ops[i]
		switch op.kind {
		case opReadLine:
			sys.ReadLine(ob.SM, op.line, op.user)
		case opReadLineRaw:
			sys.ReadLineRaw(ob.SM, op.line, op.user)
		case opWriteLine:
			sys.WriteLine(ob.SM, op.line)
		case opEvent:
			sys.Q.Push(op.at, op.act)
		case opSetCompressed:
			sys.Dom.SetCompressed(op.line, op.st)
		case opSetRaw:
			sys.Dom.SetRaw(op.line)
		}
		*op = stagedOp{} // drop user/action references for the collector
	}
	ob.ops = ob.ops[:0]
	if len(ob.dom) > 0 {
		clear(ob.dom)
	}
}
