// Package mem implements the GPU memory hierarchy: the functional backing
// store, set-associative caches (with the optional compressed-capacity mode
// of Figure 13), per-SM MSHRs, the crossbar interconnect, the GDDR5 memory
// controllers with FR-FCFS scheduling and burst-level data-bus accounting,
// and the compression metadata (MD) cache of Section 4.3.2.
//
// The functional truth of every byte lives in Memory, always uncompressed.
// Compression state (which lines are compressed, with which algorithm and
// encoding, and the exact compressed payload) is tracked per line by
// Domain; the payload is what assist warps walk during decompression and
// the size is what the bandwidth model charges.
package mem

import "encoding/binary"

const pageBits = 16
const pageSize = 1 << pageBits

// Memory is a sparse flat 64-bit address space.
type Memory struct {
	pages map[uint64]*[pageSize]byte
}

// NewMemory returns an empty memory.
func NewMemory() *Memory {
	return &Memory{pages: make(map[uint64]*[pageSize]byte)}
}

func (m *Memory) page(addr uint64, create bool) (*[pageSize]byte, int) {
	pn := addr >> pageBits
	p := m.pages[pn]
	if p == nil && create {
		p = new([pageSize]byte)
		m.pages[pn] = p
	}
	return p, int(addr & (pageSize - 1))
}

// Read copies len(buf) bytes starting at addr into buf. Unwritten memory
// reads as zero.
func (m *Memory) Read(addr uint64, buf []byte) {
	for len(buf) > 0 {
		p, off := m.page(addr, false)
		n := pageSize - off
		if n > len(buf) {
			n = len(buf)
		}
		if p == nil {
			for i := 0; i < n; i++ {
				buf[i] = 0
			}
		} else {
			copy(buf[:n], p[off:off+n])
		}
		buf = buf[n:]
		addr += uint64(n)
	}
}

// Write copies buf into memory starting at addr.
func (m *Memory) Write(addr uint64, buf []byte) {
	for len(buf) > 0 {
		p, off := m.page(addr, true)
		n := pageSize - off
		if n > len(buf) {
			n = len(buf)
		}
		copy(p[off:off+n], buf[:n])
		buf = buf[n:]
		addr += uint64(n)
	}
}

// ReadU reads a little-endian unsigned value of width bytes (1, 2, 4, 8).
func (m *Memory) ReadU(addr uint64, width uint8) uint64 {
	var buf [8]byte
	m.Read(addr, buf[:width])
	return binary.LittleEndian.Uint64(buf[:])
}

// WriteU writes the low width bytes of v little-endian at addr.
func (m *Memory) WriteU(addr uint64, v uint64, width uint8) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	m.Write(addr, buf[:width])
}
