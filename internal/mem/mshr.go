package mem

// MSHR models miss-status holding registers: outstanding line fetches with
// merging of secondary misses. Waiters are opaque to the memory system;
// the GPU core attaches its pending-load bookkeeping.
type MSHR struct {
	entries map[uint64][]any
	max     int // 0 = unbounded
}

// NewMSHR builds an MSHR file with at most max outstanding lines
// (0 = unbounded, used by L2 partitions where the SM-side MSHRs already
// bound outstanding misses).
func NewMSHR(max int) *MSHR {
	return &MSHR{entries: make(map[uint64][]any), max: max}
}

// Full reports whether a new (non-merging) miss would be rejected.
func (m *MSHR) Full() bool { return m.max > 0 && len(m.entries) >= m.max }

// Add registers a waiter for lineAddr. primary is true if this allocated a
// new entry (the caller must then issue the fetch); ok is false if the
// MSHR is full and the miss must be retried (a structural memory stall).
func (m *MSHR) Add(lineAddr uint64, waiter any) (primary, ok bool) {
	if w, exists := m.entries[lineAddr]; exists {
		m.entries[lineAddr] = append(w, waiter)
		return false, true
	}
	if m.Full() {
		return false, false
	}
	m.entries[lineAddr] = []any{waiter}
	return true, true
}

// Pending reports whether lineAddr has an outstanding fetch.
func (m *MSHR) Pending(lineAddr uint64) bool {
	_, exists := m.entries[lineAddr]
	return exists
}

// Complete removes the entry and returns its waiters in arrival order.
func (m *MSHR) Complete(lineAddr uint64) []any {
	w := m.entries[lineAddr]
	delete(m.entries, lineAddr)
	return w
}

// Outstanding returns the number of in-flight lines.
func (m *MSHR) Outstanding() int { return len(m.entries) }
