package mem

import (
	"github.com/caba-sim/caba/internal/compress"
	"github.com/caba-sim/caba/internal/timing"
)

// The memory system's pending work lives on the event queue as typed
// actions so snapshot/restore can serialize the heap. Each action holds
// live pointers for execution and is encoded by stable identity (partition
// or channel index) plus its value fields; the opaque `user` payload is
// owned by the GPU core and round-trips through the System's Codec.

// actArriveRead delivers a read-request packet at its partition (the
// crossbar traversal endpoint); the L2 lookup is a second stage.
type actArriveRead struct {
	p    *Partition
	sm   int
	ln   uint64
	user any
}

// Run schedules the L2 tag lookup after the hit latency.
func (a actArriveRead) Run() { a.p.handleRead(a.sm, a.ln, a.user) }

// actReadL2 is the L2 lookup stage of a read: hit responds, miss allocates
// an MSHR entry and fetches from DRAM.
type actReadL2 struct {
	p    *Partition
	sm   int
	ln   uint64
	user any
}

// Run performs the lookup.
func (a actReadL2) Run() {
	p := a.p
	if p.cache.Lookup(a.ln, false) {
		p.sys.S.L2Hits++
		p.respond(a.sm, a.ln, a.user)
		return
	}
	p.sys.S.L2Misses++
	primary, _ := p.mshr.Add(a.ln, readWaiter{sm: a.sm, user: a.user})
	if !primary {
		return
	}
	p.fetch(a.ln)
}

// actArriveReadRaw delivers a fault-recovery raw-read request packet.
type actArriveReadRaw struct {
	p    *Partition
	sm   int
	ln   uint64
	user any
}

// Run schedules the L2 lookup stage.
func (a actArriveReadRaw) Run() { a.p.handleReadRaw(a.sm, a.ln, a.user) }

// actReadRawL2 is the L2 lookup stage of a raw read (MSHR bypassed).
type actReadRawL2 struct {
	p    *Partition
	sm   int
	ln   uint64
	user any
}

// Run performs the lookup.
func (a actReadRawL2) Run() {
	p := a.p
	if p.cache.Lookup(a.ln, false) {
		p.sys.S.L2Hits++
		p.respondRaw(a.sm, a.ln, a.user)
		return
	}
	p.sys.S.L2Misses++
	p.ch.Enqueue(a.ln, false, compress.MaxBursts,
		actRespondRaw{p: p, sm: a.sm, ln: a.ln, user: a.user})
}

// actRespondRaw completes a raw DRAM read and sends the uncompressed line
// back to the SM.
type actRespondRaw struct {
	p    *Partition
	sm   int
	ln   uint64
	user any
}

// Run sends the response.
func (a actRespondRaw) Run() { a.p.respondRaw(a.sm, a.ln, a.user) }

// actArriveWrite delivers a full-line write packet at its partition.
type actArriveWrite struct {
	p  *Partition
	ln uint64
}

// Run schedules the L2 write stage.
func (a actArriveWrite) Run() { a.p.handleWrite(a.ln) }

// actWriteL2 is the L2 stage of a write: insert (allocate-on-write) and
// push out any evicted dirty lines.
type actWriteL2 struct {
	p  *Partition
	ln uint64
}

// Run performs the insert.
func (a actWriteL2) Run() {
	p := a.p
	if p.cache.Lookup(a.ln, true) {
		p.sys.S.L2Hits++
		// Size may have changed if the line recompressed differently.
		p.writebacks(p.cache.Insert(a.ln, p.residentSize(a.ln), true))
		return
	}
	p.sys.S.L2Misses++
	p.writebacks(p.cache.Insert(a.ln, p.residentSize(a.ln), true))
}

// actFillDRAM completes a DRAM read for a missing L2 line.
type actFillDRAM struct {
	p  *Partition
	ln uint64
}

// Run installs the line (possibly after HW decompression latency).
func (a actFillDRAM) Run() { a.p.fill(a.ln) }

// actDeliverFill installs a filled line into L2 and wakes its MSHR
// waiters.
type actDeliverFill struct {
	p  *Partition
	ln uint64
}

// Run installs and responds.
func (a actDeliverFill) Run() {
	p := a.p
	evs := p.cache.Insert(a.ln, p.residentSize(a.ln), false)
	p.writebacks(evs)
	for _, w := range p.mshr.Complete(a.ln) {
		wt := w.(readWaiter)
		p.respond(wt.sm, a.ln, wt.user)
	}
}

// actWBIssue issues an evicted dirty line's DRAM write (possibly delayed
// by the HW compressor's latency for ScopeMemory designs).
type actWBIssue struct {
	p  *Partition
	ln uint64
}

// Run computes the burst count at issue time and enqueues the write.
func (a actWBIssue) Run() {
	p := a.p
	bursts := compress.MaxBursts
	if p.sys.Design.Compressing() {
		st := p.sys.Dom.State(a.ln)
		bursts = st.Bursts()
		p.sys.S.Ratio.Add(st)
	}
	p.ch.Enqueue(a.ln, true, bursts, timing.Nop{})
}

// actRespSend sends a (possibly fault-delayed) read response across the
// interconnect. The flit count was computed at respond time, before the
// delay, so a metadata update during the delay cannot change the packet.
type actRespSend struct {
	p     *Partition
	sm    int
	ln    uint64
	flits int
	user  any
}

// Run pushes the packet onto the response crossbar.
func (a actRespSend) Run() {
	a.p.sys.X.FromPartition(a.p.id, a.flits,
		actFill{p: a.p, sm: a.sm, ln: a.ln, user: a.user})
}

// actFill delivers a response packet at its SM (the OnFill upcall).
type actFill struct {
	p    *Partition
	sm   int
	ln   uint64
	user any
}

// Run invokes the SM fill handler.
func (a actFill) Run() { a.p.sys.OnFill(a.sm, a.ln, a.user) }

// actServe frees the DRAM data bus and picks the channel's next request.
type actServe struct {
	ch *Channel
}

// Run continues FR-FCFS service.
func (a actServe) Run() { a.ch.serveNext() }
