package mem

import (
	"fmt"

	"github.com/caba-sim/caba/internal/compress"
	"github.com/caba-sim/caba/internal/config"
	"github.com/caba-sim/caba/internal/faults"
	"github.com/caba-sim/caba/internal/obs"
	"github.com/caba-sim/caba/internal/stats"
	"github.com/caba-sim/caba/internal/timing"
)

// System is the shared memory system below the SMs' L1 caches: the
// crossbar, the L2 partitions and the DRAM channels. The GPU core model
// calls ReadLine/WriteLine and receives fills through OnFill.
type System struct {
	Cfg    *config.Config
	Design config.Design
	Q      *timing.Queue
	S      *stats.Sim
	Dom    *Domain
	X      *Xbar
	parts  []*Partition

	// Inj draws deterministic fault-injection decisions; nil when the
	// campaign is disabled. Every site that consults it runs on the main
	// goroutine (event delivery / phase-B commit), so the decision
	// sequence — and therefore every injected fault — is identical at
	// every SMWorkers setting.
	Inj *faults.Injector

	// OnFill is invoked (at SM arrival time) for every completed ReadLine.
	OnFill func(sm int, lineAddr uint64, user any)
}

// AttachTrace routes each DRAM channel's data-bus occupancy spans onto
// the given trace shard (tid = channel id). Channels only record on the
// main goroutine (event delivery / phase-B commit), so one shard for the
// whole memory system is race-free at every SMWorkers setting.
func (sys *System) AttachTrace(sh *obs.TraceShard) {
	for i, p := range sys.parts {
		sh.ThreadName(i, fmt.Sprintf("channel %d", i))
		p.ch.tr = sh
	}
}

// NewSystem builds the memory system.
func NewSystem(cfg *config.Config, design config.Design, q *timing.Queue, s *stats.Sim, dom *Domain) *System {
	sys := &System{
		Cfg:    cfg,
		Design: design,
		Q:      q,
		S:      s,
		Dom:    dom,
		X:      NewXbar(q, s, cfg.NumChannels, 8),
		Inj:    faults.New(cfg.Faults),
	}
	sys.parts = make([]*Partition, cfg.NumChannels)
	for i := range sys.parts {
		sys.parts[i] = newPartition(i, sys)
	}
	return sys
}

// PartitionOf maps a line address to its memory partition.
func (sys *System) PartitionOf(lineAddr uint64) int {
	return int(lineAddr / uint64(sys.Cfg.LineSize) % uint64(sys.Cfg.NumChannels))
}

// ReadLine requests a line on behalf of SM sm. user is returned untouched
// via OnFill.
func (sys *System) ReadLine(sm int, lineAddr uint64, user any) {
	p := sys.PartitionOf(lineAddr)
	// A read request is a single control flit.
	sys.X.ToPartition(p, 1, actArriveRead{p: sys.parts[p], sm: sm, ln: lineAddr, user: user})
}

// ReadLineRaw requests the uncompressed copy of a line — the
// fault-recovery refetch path after a detected decompression corruption.
// The request bypasses the MSHR (recovery is rare and must not merge with
// compressed-line waiters whose fills carry the corrupt payload) and the
// response always charges full-line flits, so recovery costs real
// bandwidth. The recovery channel itself is assumed protected: no faults
// are injected on it, otherwise a hot campaign could livelock recovery.
func (sys *System) ReadLineRaw(sm int, lineAddr uint64, user any) {
	p := sys.PartitionOf(lineAddr)
	sys.X.ToPartition(p, 1, actArriveReadRaw{p: sys.parts[p], sm: sm, ln: lineAddr, user: user})
}

// WriteLine sends a full-line write toward L2. The payload size (and hence
// flit count) is the line's current compressed size for ScopeL2 designs —
// the SM compressed it before calling — or the full line otherwise.
func (sys *System) WriteLine(sm int, lineAddr uint64) {
	p := sys.PartitionOf(lineAddr)
	flits := 1 + sys.payloadFlits(lineAddr)
	sys.X.ToPartition(p, flits, actArriveWrite{p: sys.parts[p], ln: lineAddr})
}

// payloadFlits returns the data flits a line occupies on the interconnect.
func (sys *System) payloadFlits(lineAddr uint64) int {
	size := sys.Cfg.LineSize
	if sys.Design.Scope == config.ScopeL2 {
		if st := sys.Dom.State(lineAddr); st.IsCompressed() {
			size = st.Size()
		}
	}
	n := (size + sys.Cfg.FlitSize - 1) / sys.Cfg.FlitSize
	if n < 1 {
		n = 1
	}
	return n
}

// respFlits is the response packet size: header + payload.
func (sys *System) respFlits(lineAddr uint64) int {
	return 1 + sys.payloadFlits(lineAddr)
}

// rawFlits is the response packet size for an uncompressed line.
func (sys *System) rawFlits() int {
	return 1 + (sys.Cfg.LineSize+sys.Cfg.FlitSize-1)/sys.Cfg.FlitSize
}

// ArrivesCompressed reports the compression state a line has when it
// reaches the SM: compressed only for ScopeL2 designs (HW-BDI-Mem
// decompresses at the memory controller, so its lines arrive raw).
func (sys *System) ArrivesCompressed(lineAddr uint64) compress.Compressed {
	if sys.Design.Scope != config.ScopeL2 {
		return compress.Compressed{Alg: compress.AlgNone}
	}
	return sys.Dom.State(lineAddr)
}

// Drained reports whether the memory system has no pending work.
func (sys *System) Drained() bool {
	for _, p := range sys.parts {
		if p.mshr.Outstanding() > 0 || p.ch.QueueDepth() > 0 || p.ch.busy {
			return false
		}
	}
	return sys.Q.Len() == 0
}

// FinishStats folds component-local counters into the run stats.
// MemCycles is the total data-bus capacity in burst slots (memory cycles
// times channels), so DRAMBusyCycles/MemCycles is the paper's bandwidth
// utilization.
func (sys *System) FinishStats(coreCycles uint64) {
	sys.S.Cycles = coreCycles
	sys.S.MemCycles = uint64(float64(coreCycles) * sys.Cfg.MemCyclesPerCoreCycle() *
		float64(sys.Cfg.NumChannels))
}
