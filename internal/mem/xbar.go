package mem

import (
	"github.com/caba-sim/caba/internal/stats"
	"github.com/caba-sim/caba/internal/timing"
)

// Xbar models the two crossbars (one per direction, Table 1) between the
// SMs and the memory partitions. Contention is modeled at the partition
// side — each partition has a request-ingress link and a response-egress
// link moving one flit (FlitSize bytes) per core cycle — plus a fixed
// traversal latency. Compressed lines move in fewer flits, which is how
// ScopeL2 designs save interconnect bandwidth.
type Xbar struct {
	q       *timing.Queue
	s       *stats.Sim
	latency float64
	reqIn   []float64 // per-partition next-free time, SM -> partition
	respOut []float64 // per-partition next-free time, partition -> SM
}

// NewXbar builds the interconnect for numPartitions memory partitions.
func NewXbar(q *timing.Queue, s *stats.Sim, numPartitions int, latency float64) *Xbar {
	return &Xbar{
		q:       q,
		s:       s,
		latency: latency,
		reqIn:   make([]float64, numPartitions),
		respOut: make([]float64, numPartitions),
	}
}

func (x *Xbar) send(link []float64, part, flits int, deliver timing.Action) {
	now := x.q.Now()
	start := now
	if link[part] > start {
		start = link[part]
	}
	end := start + float64(flits)
	link[part] = end
	x.q.Push(end+x.latency, deliver)
}

// ToPartition sends a packet of flits toward partition part, running
// deliver when it arrives.
func (x *Xbar) ToPartition(part, flits int, deliver timing.Action) {
	x.s.FlitsToMem += uint64(flits)
	x.send(x.reqIn, part, flits, deliver)
}

// FromPartition sends a packet of flits from partition part toward an SM.
func (x *Xbar) FromPartition(part, flits int, deliver timing.Action) {
	x.s.FlitsFromMem += uint64(flits)
	x.send(x.respOut, part, flits, deliver)
}
