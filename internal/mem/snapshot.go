package mem

import (
	"fmt"
	"sort"

	"github.com/caba-sim/caba/internal/compress"
	"github.com/caba-sim/caba/internal/snapshot"
	"github.com/caba-sim/caba/internal/timing"
)

// Serialization of the memory hierarchy: caches, MSHRs, backing memory,
// compression metadata, DRAM channel/bank timing and the crossbar links.
// Opaque GPU-owned payloads (MSHR waiters' user pointers, DRAM completion
// actions) round-trip through caller-supplied codecs; everything else is
// encoded by value. Structural dimensions (set counts, bank counts) are
// written and validated on load so a blob can never be restored into a
// differently-shaped hierarchy.

// maxMemSnapLen bounds decoded collection lengths in this package.
const maxMemSnapLen = 1 << 24

func memErrf(msg string) error { return &snapshot.FormatError{Off: -1, Msg: msg} }

// --- Cache ---

// Save serializes tags, metadata and counters. Geometry is validated on
// load, not restored: the owner rebuilds the cache from configuration.
func (c *Cache) Save(w *snapshot.Writer) {
	w.Int(c.numSets)
	w.Int(len(c.sets[0]))
	w.U64(c.tick)
	w.U64(c.Hits)
	w.U64(c.Misses)
	w.U64(c.Evictions)
	for _, set := range c.sets {
		for i := range set {
			w.U64(set[i].lineAddr)
			w.Bool(set[i].valid)
			w.Bool(set[i].dirty)
			w.Int(set[i].size)
			w.U64(set[i].lru)
		}
	}
}

// Load restores a cache previously serialized by Save into an
// identically-configured cache.
func (c *Cache) Load(r *snapshot.Reader) error {
	if n := r.Int(); n != c.numSets {
		return memErrf("cache set count mismatch")
	}
	if n := r.Int(); n != len(c.sets[0]) {
		return memErrf("cache associativity mismatch")
	}
	c.tick = r.U64()
	c.Hits = r.U64()
	c.Misses = r.U64()
	c.Evictions = r.U64()
	for _, set := range c.sets {
		for i := range set {
			set[i].lineAddr = r.U64()
			set[i].valid = r.Bool()
			set[i].dirty = r.Bool()
			set[i].size = r.Int()
			set[i].lru = r.U64()
		}
	}
	return r.Err()
}

// --- MSHR ---

// Lines returns the outstanding line addresses in ascending order (a
// deterministic iteration order for serialization and audits).
func (m *MSHR) Lines() []uint64 {
	lines := make([]uint64, 0, len(m.entries))
	for ln := range m.entries {
		lines = append(lines, ln)
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })
	return lines
}

// Waiters returns the waiters registered for a line, in arrival order.
func (m *MSHR) Waiters(ln uint64) []any { return m.entries[ln] }

// Save serializes outstanding entries; encWaiter encodes each opaque
// waiter.
func (m *MSHR) Save(w *snapshot.Writer, encWaiter func(*snapshot.Writer, any) error) error {
	lines := m.Lines()
	w.Len(len(lines))
	for _, ln := range lines {
		w.U64(ln)
		ws := m.entries[ln]
		w.Len(len(ws))
		for _, wt := range ws {
			if err := encWaiter(w, wt); err != nil {
				return err
			}
		}
	}
	return nil
}

// Load restores outstanding entries; decWaiter decodes each waiter.
func (m *MSHR) Load(r *snapshot.Reader, decWaiter func(*snapshot.Reader) (any, error)) error {
	clear(m.entries)
	n := r.Len(maxMemSnapLen)
	for i := 0; i < n; i++ {
		ln := r.U64()
		nw := r.Len(maxMemSnapLen)
		if r.Err() != nil {
			return r.Err()
		}
		ws := make([]any, 0, nw)
		for j := 0; j < nw; j++ {
			wt, err := decWaiter(r)
			if err != nil {
				return err
			}
			ws = append(ws, wt)
		}
		if _, dup := m.entries[ln]; dup {
			return memErrf("duplicate MSHR line in snapshot")
		}
		m.entries[ln] = ws
	}
	return r.Err()
}

// --- Memory ---

// Save serializes the backing store (pages in ascending order). Workload
// data mutates during a run, so the full image is part of a checkpoint.
func (m *Memory) Save(w *snapshot.Writer) {
	pns := make([]uint64, 0, len(m.pages))
	for pn := range m.pages {
		pns = append(pns, pn)
	}
	sort.Slice(pns, func(i, j int) bool { return pns[i] < pns[j] })
	w.Len(len(pns))
	for _, pn := range pns {
		w.U64(pn)
		w.Bytes(m.pages[pn][:])
	}
}

// Load restores the backing store.
func (m *Memory) Load(r *snapshot.Reader) error {
	clear(m.pages)
	n := r.Len(maxMemSnapLen)
	for i := 0; i < n; i++ {
		pn := r.U64()
		b := r.Bytes(pageSize)
		if r.Err() != nil {
			return r.Err()
		}
		if len(b) != pageSize {
			return memErrf("short memory page")
		}
		p := new([pageSize]byte)
		copy(p[:], b)
		m.pages[pn] = p
	}
	return r.Err()
}

// --- Domain ---

// saveCompressed encodes one compression state by value.
func saveCompressed(w *snapshot.Writer, c compress.Compressed) {
	w.U64(uint64(c.Alg))
	w.U8(c.Enc)
	w.Bytes(c.Data)
}

// loadCompressed decodes one compression state.
func loadCompressed(r *snapshot.Reader) compress.Compressed {
	return compress.Compressed{
		Alg:  compress.AlgID(r.U64()),
		Enc:  r.U8(),
		Data: append([]byte(nil), r.Bytes(maxMemSnapLen)...),
	}
}

// Save serializes the per-line compression states in ascending line
// order.
func (d *Domain) Save(w *snapshot.Writer) {
	lns := make([]uint64, 0, len(d.lines))
	for ln := range d.lines {
		lns = append(lns, ln)
	}
	sort.Slice(lns, func(i, j int) bool { return lns[i] < lns[j] })
	w.Len(len(lns))
	for _, ln := range lns {
		w.U64(ln)
		saveCompressed(w, d.lines[ln])
	}
}

// Load restores the per-line compression states.
func (d *Domain) Load(r *snapshot.Reader) error {
	clear(d.lines)
	n := r.Len(maxMemSnapLen)
	for i := 0; i < n; i++ {
		ln := r.U64()
		d.lines[ln] = loadCompressed(r)
		if r.Err() != nil {
			return r.Err()
		}
	}
	return r.Err()
}

// --- MD cache / DRAM channel ---

// save serializes the metadata cache.
func (m *MDCache) save(w *snapshot.Writer) {
	m.c.Save(w)
	w.U64(m.Hits)
	w.U64(m.Misses)
}

// load restores the metadata cache.
func (m *MDCache) load(r *snapshot.Reader) error {
	if err := m.c.Load(r); err != nil {
		return err
	}
	m.Hits = r.U64()
	m.Misses = r.U64()
	return r.Err()
}

// save serializes the channel's timing state and request queue. encAction
// encodes each request's completion action.
func (ch *Channel) save(w *snapshot.Writer, encAction func(*snapshot.Writer, timing.Action) error) error {
	w.F64(ch.busNextFree)
	w.Bool(ch.busy)
	w.Len(len(ch.banks))
	for i := range ch.banks {
		w.I64(ch.banks[i].openRow)
		w.F64(ch.banks[i].nextReady)
	}
	w.Len(len(ch.queue))
	for _, rq := range ch.queue {
		w.U64(rq.lineAddr)
		w.Bool(rq.write)
		w.Int(rq.bursts)
		w.F64(rq.arrival)
		w.Bool(rq.mdMiss)
		if err := encAction(w, rq.done); err != nil {
			return err
		}
	}
	if ch.md != nil {
		w.Bool(true)
		ch.md.save(w)
	} else {
		w.Bool(false)
	}
	return nil
}

// load restores the channel.
func (ch *Channel) load(r *snapshot.Reader, decAction func(*snapshot.Reader) (timing.Action, error)) error {
	ch.busNextFree = r.F64()
	ch.busy = r.Bool()
	if n := r.Len(maxMemSnapLen); n != len(ch.banks) {
		if r.Err() != nil {
			return r.Err()
		}
		return memErrf("DRAM bank count mismatch")
	}
	for i := range ch.banks {
		ch.banks[i].openRow = r.I64()
		ch.banks[i].nextReady = r.F64()
	}
	nq := r.Len(maxMemSnapLen)
	if r.Err() != nil {
		return r.Err()
	}
	ch.queue = ch.queue[:0]
	for i := 0; i < nq; i++ {
		rq := &dramReq{
			lineAddr: r.U64(),
			write:    r.Bool(),
			bursts:   r.Int(),
			arrival:  r.F64(),
			mdMiss:   r.Bool(),
		}
		done, err := decAction(r)
		if err != nil {
			return err
		}
		rq.done = done
		ch.queue = append(ch.queue, rq)
	}
	hasMD := r.Bool()
	if r.Err() != nil {
		return r.Err()
	}
	if hasMD != (ch.md != nil) {
		return memErrf("MD cache presence mismatch")
	}
	if hasMD {
		return ch.md.load(r)
	}
	return nil
}

// --- System ---

// VisitActionUsers calls f on the opaque user payload carried by a memory
// action, if any. It reports whether act is one of this package's action
// types (timing.Nop counts as recognized: the channel schedules it for
// fire-and-forget writes).
func (sys *System) VisitActionUsers(act timing.Action, f func(user any)) bool {
	switch a := act.(type) {
	case actArriveRead:
		f(a.user)
	case actReadL2:
		f(a.user)
	case actArriveReadRaw:
		f(a.user)
	case actReadRawL2:
		f(a.user)
	case actRespondRaw:
		f(a.user)
	case actRespSend:
		f(a.user)
	case actFill:
		f(a.user)
	case actArriveWrite, actWriteL2, actFillDRAM, actDeliverFill, actWBIssue, actServe, timing.Nop:
	default:
		return false
	}
	return true
}

// VisitUsers walks every opaque user payload held inside the memory
// system (L2 MSHR waiters and DRAM queue completion actions) in a
// deterministic order, so the GPU core can register its payload objects
// before encoding.
func (sys *System) VisitUsers(f func(user any)) {
	for _, p := range sys.parts {
		for _, ln := range p.mshr.Lines() {
			for _, wt := range p.mshr.Waiters(ln) {
				f(wt.(readWaiter).user)
			}
		}
		for _, rq := range p.ch.queue {
			sys.VisitActionUsers(rq.done, f)
		}
	}
}

// Memory-action sub-kind tags (EncodeAction/DecodeAction).
const (
	mkArriveRead uint8 = iota
	mkReadL2
	mkArriveReadRaw
	mkReadRawL2
	mkRespondRaw
	mkArriveWrite
	mkWriteL2
	mkFillDRAM
	mkDeliverFill
	mkWBIssue
	mkRespSend
	mkFill
	mkServe
)

// EncodeAction serializes one of this package's event-queue actions;
// encUser encodes opaque user payloads. Unknown action types return an
// error (the caller owns the top-level action dispatch).
func (sys *System) EncodeAction(w *snapshot.Writer, act timing.Action, encUser func(*snapshot.Writer, any) error) error {
	user := func(k uint8, p *Partition, sm int, ln uint64, u any) error {
		w.U8(k)
		w.Int(p.id)
		w.Int(sm)
		w.U64(ln)
		return encUser(w, u)
	}
	plain := func(k uint8, p *Partition, ln uint64) error {
		w.U8(k)
		w.Int(p.id)
		w.U64(ln)
		return nil
	}
	switch a := act.(type) {
	case actArriveRead:
		return user(mkArriveRead, a.p, a.sm, a.ln, a.user)
	case actReadL2:
		return user(mkReadL2, a.p, a.sm, a.ln, a.user)
	case actArriveReadRaw:
		return user(mkArriveReadRaw, a.p, a.sm, a.ln, a.user)
	case actReadRawL2:
		return user(mkReadRawL2, a.p, a.sm, a.ln, a.user)
	case actRespondRaw:
		return user(mkRespondRaw, a.p, a.sm, a.ln, a.user)
	case actArriveWrite:
		return plain(mkArriveWrite, a.p, a.ln)
	case actWriteL2:
		return plain(mkWriteL2, a.p, a.ln)
	case actFillDRAM:
		return plain(mkFillDRAM, a.p, a.ln)
	case actDeliverFill:
		return plain(mkDeliverFill, a.p, a.ln)
	case actWBIssue:
		return plain(mkWBIssue, a.p, a.ln)
	case actRespSend:
		w.U8(mkRespSend)
		w.Int(a.p.id)
		w.Int(a.sm)
		w.U64(a.ln)
		w.Int(a.flits)
		return encUser(w, a.user)
	case actFill:
		return user(mkFill, a.p, a.sm, a.ln, a.user)
	case actServe:
		w.U8(mkServe)
		w.Int(a.ch.id)
		return nil
	default:
		return memErrf("not a memory action")
	}
}

// DecodeAction mirrors EncodeAction.
func (sys *System) DecodeAction(r *snapshot.Reader, decUser func(*snapshot.Reader) (any, error)) (timing.Action, error) {
	k := r.U8()
	part := func() (*Partition, error) {
		i := r.Int()
		if r.Err() != nil {
			return nil, r.Err()
		}
		if i < 0 || i >= len(sys.parts) {
			return nil, memErrf("partition index out of range")
		}
		return sys.parts[i], nil
	}
	switch k {
	case mkArriveRead, mkReadL2, mkArriveReadRaw, mkReadRawL2, mkRespondRaw, mkFill:
		p, err := part()
		if err != nil {
			return nil, err
		}
		sm := r.Int()
		ln := r.U64()
		u, err := decUser(r)
		if err != nil {
			return nil, err
		}
		switch k {
		case mkArriveRead:
			return actArriveRead{p: p, sm: sm, ln: ln, user: u}, nil
		case mkReadL2:
			return actReadL2{p: p, sm: sm, ln: ln, user: u}, nil
		case mkArriveReadRaw:
			return actArriveReadRaw{p: p, sm: sm, ln: ln, user: u}, nil
		case mkReadRawL2:
			return actReadRawL2{p: p, sm: sm, ln: ln, user: u}, nil
		case mkRespondRaw:
			return actRespondRaw{p: p, sm: sm, ln: ln, user: u}, nil
		default:
			return actFill{p: p, sm: sm, ln: ln, user: u}, nil
		}
	case mkArriveWrite, mkWriteL2, mkFillDRAM, mkDeliverFill, mkWBIssue:
		p, err := part()
		if err != nil {
			return nil, err
		}
		ln := r.U64()
		switch k {
		case mkArriveWrite:
			return actArriveWrite{p: p, ln: ln}, nil
		case mkWriteL2:
			return actWriteL2{p: p, ln: ln}, nil
		case mkFillDRAM:
			return actFillDRAM{p: p, ln: ln}, nil
		case mkDeliverFill:
			return actDeliverFill{p: p, ln: ln}, nil
		default:
			return actWBIssue{p: p, ln: ln}, nil
		}
	case mkRespSend:
		p, err := part()
		if err != nil {
			return nil, err
		}
		sm := r.Int()
		ln := r.U64()
		flits := r.Int()
		u, err := decUser(r)
		if err != nil {
			return nil, err
		}
		return actRespSend{p: p, sm: sm, ln: ln, flits: flits, user: u}, nil
	case mkServe:
		p, err := part()
		if err != nil {
			return nil, err
		}
		return actServe{ch: p.ch}, nil
	default:
		if r.Err() != nil {
			return nil, r.Err()
		}
		return nil, memErrf("unknown memory action kind")
	}
}

// SaveState serializes the crossbar links, every partition (L2 cache,
// MSHR, channel) and the fault-injector streams. encAction/encUser encode
// DRAM completion actions and opaque waiter payloads.
func (sys *System) SaveState(w *snapshot.Writer,
	encAction func(*snapshot.Writer, timing.Action) error,
	encUser func(*snapshot.Writer, any) error) error {
	w.Len(len(sys.X.reqIn))
	for _, v := range sys.X.reqIn {
		w.F64(v)
	}
	for _, v := range sys.X.respOut {
		w.F64(v)
	}
	w.Len(len(sys.parts))
	encWaiter := func(w *snapshot.Writer, wt any) error {
		rw, ok := wt.(readWaiter)
		if !ok {
			return memErrf("unexpected L2 MSHR waiter type")
		}
		w.Int(rw.sm)
		return encUser(w, rw.user)
	}
	for _, p := range sys.parts {
		p.cache.Save(w)
		if err := p.mshr.Save(w, encWaiter); err != nil {
			return err
		}
		if err := p.ch.save(w, encAction); err != nil {
			return err
		}
	}
	streams := sys.Inj.SaveStreams()
	w.Len(len(streams))
	for _, s := range streams {
		w.U64(s)
	}
	return nil
}

// LoadState mirrors SaveState.
func (sys *System) LoadState(r *snapshot.Reader,
	decAction func(*snapshot.Reader) (timing.Action, error),
	decUser func(*snapshot.Reader) (any, error)) error {
	if n := r.Len(maxMemSnapLen); n != len(sys.X.reqIn) {
		if r.Err() != nil {
			return r.Err()
		}
		return memErrf("crossbar width mismatch")
	}
	for i := range sys.X.reqIn {
		sys.X.reqIn[i] = r.F64()
	}
	for i := range sys.X.respOut {
		sys.X.respOut[i] = r.F64()
	}
	if n := r.Len(maxMemSnapLen); n != len(sys.parts) {
		if r.Err() != nil {
			return r.Err()
		}
		return memErrf("partition count mismatch")
	}
	decWaiter := func(r *snapshot.Reader) (any, error) {
		sm := r.Int()
		u, err := decUser(r)
		if err != nil {
			return nil, err
		}
		return readWaiter{sm: sm, user: u}, nil
	}
	for _, p := range sys.parts {
		if err := p.cache.Load(r); err != nil {
			return err
		}
		if err := p.mshr.Load(r, decWaiter); err != nil {
			return err
		}
		if err := p.ch.load(r, decAction); err != nil {
			return err
		}
	}
	ns := r.Len(maxMemSnapLen)
	if r.Err() != nil {
		return r.Err()
	}
	streams := make([]uint64, ns)
	for i := range streams {
		streams[i] = r.U64()
	}
	if r.Err() != nil {
		return r.Err()
	}
	return sys.Inj.LoadStreams(streams)
}

// Audit checks the memory system's internal invariants (scheduled by the
// GPU auditor): every allocated L2 MSHR line must have waiters of the
// partition's waiter type, and every queued DRAM request must be sane. It
// returns a plain error naming the failing structure; the caller wraps it
// with cycle context.
func (sys *System) Audit() error {
	for _, p := range sys.parts {
		for _, ln := range p.mshr.Lines() {
			ws := p.mshr.Waiters(ln)
			if len(ws) == 0 {
				return fmt.Errorf("partition %d: MSHR line %#x allocated with no waiters", p.id, ln)
			}
			for _, wt := range ws {
				if _, ok := wt.(readWaiter); !ok {
					return fmt.Errorf("partition %d: MSHR line %#x has a foreign waiter %T", p.id, ln, wt)
				}
			}
		}
		for _, rq := range p.ch.queue {
			if rq == nil || rq.bursts <= 0 {
				return fmt.Errorf("partition %d: malformed DRAM queue entry", p.id)
			}
		}
	}
	return nil
}
