package mem

import "fmt"

// Cache is a set-associative, LRU, write-back cache model. It tracks tags
// and line metadata only — data lives in the backing Memory.
//
// With tagMult == 1 it is a conventional cache. With tagMult > 1 it models
// the compressed-capacity caches of Figure 13: each set has assoc*tagMult
// tags but only assoc*lineSize bytes of data storage, and each resident
// line occupies its (compressed) size, so more lines fit when they
// compress well.
type Cache struct {
	sets     [][]cacheLine
	numSets  int
	lineSize int
	setBytes int // data capacity per set
	indexDiv int // line-number divisor applied before set indexing
	tick     uint64

	// Counters (the owner mirrors these into stats.Sim).
	Hits, Misses, Evictions uint64
}

type cacheLine struct {
	lineAddr uint64
	valid    bool
	dirty    bool
	size     int
	lru      uint64
}

// Evicted describes a line pushed out by an insertion.
type Evicted struct {
	LineAddr uint64
	Dirty    bool
	Size     int
}

// NewCache builds a cache of totalSize bytes, assoc ways, lineSize-byte
// lines. indexDiv divides the line number before set indexing (used by L2
// partitions, whose lines are strided across channels). tagMult multiplies
// the tag count for compressed-capacity mode.
func NewCache(totalSize, assoc, lineSize, indexDiv, tagMult int) *Cache {
	if indexDiv < 1 {
		indexDiv = 1
	}
	if tagMult < 1 {
		tagMult = 1
	}
	numSets := totalSize / (assoc * lineSize)
	if numSets < 1 {
		panic(fmt.Sprintf("mem: cache too small: %d bytes / %d-way", totalSize, assoc))
	}
	c := &Cache{
		numSets:  numSets,
		lineSize: lineSize,
		setBytes: assoc * lineSize,
		indexDiv: indexDiv,
		sets:     make([][]cacheLine, numSets),
	}
	for i := range c.sets {
		c.sets[i] = make([]cacheLine, assoc*tagMult)
	}
	return c
}

func (c *Cache) setOf(lineAddr uint64) []cacheLine {
	ln := lineAddr / uint64(c.lineSize) / uint64(c.indexDiv)
	return c.sets[ln%uint64(c.numSets)]
}

// Lookup probes for lineAddr; on hit it refreshes LRU state and, when
// write is set, marks the line dirty.
func (c *Cache) Lookup(lineAddr uint64, write bool) bool {
	set := c.setOf(lineAddr)
	for i := range set {
		if set[i].valid && set[i].lineAddr == lineAddr {
			c.tick++
			set[i].lru = c.tick
			if write {
				set[i].dirty = true
			}
			c.Hits++
			return true
		}
	}
	c.Misses++
	return false
}

// Contains probes without touching LRU or counters.
func (c *Cache) Contains(lineAddr uint64) bool {
	set := c.setOf(lineAddr)
	for i := range set {
		if set[i].valid && set[i].lineAddr == lineAddr {
			return true
		}
	}
	return false
}

// LineSizeOf returns the resident size of the line, or 0 if absent.
func (c *Cache) LineSizeOf(lineAddr uint64) int {
	set := c.setOf(lineAddr)
	for i := range set {
		if set[i].valid && set[i].lineAddr == lineAddr {
			return set[i].size
		}
	}
	return 0
}

// Insert places lineAddr with the given resident size (<= lineSize),
// evicting LRU lines until both a tag and enough data capacity are free.
// It returns the evicted lines (dirty ones must be written back by the
// caller). Inserting a line that is already resident just updates its size
// and dirty bit.
func (c *Cache) Insert(lineAddr uint64, size int, dirty bool) []Evicted {
	if size <= 0 || size > c.lineSize {
		size = c.lineSize
	}
	set := c.setOf(lineAddr)
	c.tick++
	// Already resident: update in place (size change may overflow the set;
	// evict others if needed).
	for i := range set {
		if set[i].valid && set[i].lineAddr == lineAddr {
			set[i].size = size
			set[i].dirty = set[i].dirty || dirty
			set[i].lru = c.tick
			return c.makeRoom(set, lineAddr)
		}
	}
	var evicted []Evicted
	// Find a free tag, evicting LRU if all tags are taken.
	slot := -1
	for i := range set {
		if !set[i].valid {
			slot = i
			break
		}
	}
	if slot == -1 {
		slot = c.lruVictim(set, lineAddr)
		evicted = append(evicted, c.evict(set, slot))
	}
	set[slot] = cacheLine{lineAddr: lineAddr, valid: true, dirty: dirty, size: size, lru: c.tick}
	return append(evicted, c.makeRoom(set, lineAddr)...)
}

// makeRoom evicts LRU lines (never `keep`) until the set's resident bytes
// fit its data capacity.
func (c *Cache) makeRoom(set []cacheLine, keep uint64) []Evicted {
	var evicted []Evicted
	for c.setUsage(set) > c.setBytes {
		v := c.lruVictim(set, keep)
		if v < 0 {
			break // only `keep` remains; a single line always fits
		}
		evicted = append(evicted, c.evict(set, v))
	}
	return evicted
}

func (c *Cache) setUsage(set []cacheLine) int {
	total := 0
	for i := range set {
		if set[i].valid {
			total += set[i].size
		}
	}
	return total
}

func (c *Cache) lruVictim(set []cacheLine, keep uint64) int {
	best, bestLRU := -1, ^uint64(0)
	for i := range set {
		if set[i].valid && set[i].lineAddr != keep && set[i].lru < bestLRU {
			best, bestLRU = i, set[i].lru
		}
	}
	return best
}

func (c *Cache) evict(set []cacheLine, i int) Evicted {
	e := Evicted{LineAddr: set[i].lineAddr, Dirty: set[i].dirty, Size: set[i].size}
	set[i].valid = false
	c.Evictions++
	return e
}

// Invalidate drops the line if present, returning its state.
func (c *Cache) Invalidate(lineAddr uint64) (Evicted, bool) {
	set := c.setOf(lineAddr)
	for i := range set {
		if set[i].valid && set[i].lineAddr == lineAddr {
			return c.evict(set, i), true
		}
	}
	return Evicted{}, false
}

// ResidentLines counts valid lines (tests/debugging).
func (c *Cache) ResidentLines() int {
	n := 0
	for _, set := range c.sets {
		for i := range set {
			if set[i].valid {
				n++
			}
		}
	}
	return n
}
