package mem

import (
	"github.com/caba-sim/caba/internal/compress"
)

// Domain tracks per-line compression state for the whole GPU memory image.
// A line present in the map is stored compressed (in DRAM, and in L2 for
// ScopeL2 designs); absent lines are raw. The backing Memory always holds
// the uncompressed truth, so functional execution is independent of
// compression state — only sizes, payloads and timing differ.
type Domain struct {
	Mem *Memory
	Alg compress.AlgID

	lines map[uint64]compress.Compressed
}

// NewDomain creates a compression domain over mem using alg.
func NewDomain(mem *Memory, alg compress.AlgID) *Domain {
	return &Domain{Mem: mem, Alg: alg, lines: make(map[uint64]compress.Compressed)}
}

// LineAddr masks addr down to its line base.
func LineAddr(addr uint64) uint64 { return addr &^ uint64(compress.LineSize-1) }

// State returns the compression state of the line containing addr.
// Uncompressed lines return a Compressed with Alg == AlgNone.
func (d *Domain) State(lineAddr uint64) compress.Compressed {
	if d == nil {
		return compress.Compressed{Alg: compress.AlgNone}
	}
	return d.lines[lineAddr]
}

// Bursts returns the DRAM bursts needed to move the line in its current
// stored form.
func (d *Domain) Bursts(lineAddr uint64) int {
	return d.State(lineAddr).Bursts()
}

// SetCompressed records that lineAddr is now stored as c.
func (d *Domain) SetCompressed(lineAddr uint64, c compress.Compressed) {
	if c.IsCompressed() {
		d.lines[lineAddr] = c
	} else {
		delete(d.lines, lineAddr)
	}
}

// SetRaw records that lineAddr is stored uncompressed (e.g. the store
// buffer overflowed and released it raw, Section 4.2.2).
func (d *Domain) SetRaw(lineAddr uint64) { delete(d.lines, lineAddr) }

// CompressLine compresses the current backing bytes of the line with the
// domain algorithm and records the result. It returns the new state. This
// is the "oracle" path used by the HW and Ideal designs; the CABA design
// instead runs the assist-warp subroutine and calls SetCompressed with its
// output (which tests verify equals this oracle).
func (d *Domain) CompressLine(lineAddr uint64) compress.Compressed {
	var line [compress.LineSize]byte
	d.Mem.Read(lineAddr, line[:])
	c, err := compress.Compress(d.Alg, line[:])
	if err != nil {
		panic("mem: " + err.Error()) // impossible: line is LineSize
	}
	d.SetCompressed(lineAddr, c)
	return c
}

// ReadRaw copies the uncompressed line bytes into buf.
func (d *Domain) ReadRaw(lineAddr uint64, buf []byte) {
	d.Mem.Read(lineAddr, buf[:compress.LineSize])
}

// Precompress compresses every line in [addr, addr+size) — the one-time
// software data preparation of Section 4.3.1 (input data is transferred to
// GPU memory already compressed). It returns the achieved ratio.
func (d *Domain) Precompress(addr, size uint64) float64 {
	var r compress.Ratio
	start := LineAddr(addr)
	end := LineAddr(addr + size + compress.LineSize - 1)
	for la := start; la < end; la += compress.LineSize {
		r.Add(d.CompressLine(la))
	}
	return r.Value()
}

// CompressedLineCount returns how many lines are currently stored
// compressed (for tests and debugging).
func (d *Domain) CompressedLineCount() int { return len(d.lines) }
