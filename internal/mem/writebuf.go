package mem

import (
	"math/bits"

	"github.com/caba-sim/caba/internal/compress"
)

// WriteBuffer stages one SM's functional global-memory writes during the
// parallel phase (phase A) of the two-phase tick and flushes them into the
// shared backing Memory at the cycle barrier. Phase-A workers then only
// ever read the shared page map — all writers run on the main goroutine —
// which is what makes the concurrent tick race-free without locks.
//
// The visibility model is cycle-deferred cross-SM stores: a store or
// atomic becomes visible to other SMs at the end of the cycle it issued
// in, while the issuing SM reads its own staged writes through the buffer
// immediately (stores from one warp are visible to the SM's other warps
// and to its store-buffer compression reads within the same tick, as on
// the serial path). The same staging runs at every SMWorkers setting, so
// serial and parallel execution are bit-identical by construction.
//
// Atomic adds are staged as deltas so concurrent-cycle updates from many
// SMs to one address (e.g. a shared histogram bucket) all land: each SM's
// delta is applied read-modify-write against the committed value at
// flush. The value an atomic returns is the committed value plus this
// SM's own pending deltas. When the target bytes already carry a staged
// plain store, the atomic degrades to a plain store of (visible value +
// delta), preserving program order within the SM. Flush applies deltas
// first, then plain stores, which resolves every same-cycle interleaving
// to the same final bytes as the serial schedule.
type WriteBuffer struct {
	mem *Memory

	lines map[uint64]*bufLine
	order []uint64 // staged lines in creation order

	deltas   []stagedDelta
	deltaIdx map[uint64]int // addr -> index in deltas

	free []*bufLine // recycled line buffers
}

const wbLineSize = compress.LineSize

// bufLine holds staged bytes for one cache line; mask bit i covers byte i.
type bufLine struct {
	data [wbLineSize]byte
	mask [wbLineSize / 64]uint64
}

type stagedDelta struct {
	addr  uint64
	v     uint64
	width uint8
}

// NewWriteBuffer builds a staging buffer over m.
func NewWriteBuffer(m *Memory) *WriteBuffer {
	return &WriteBuffer{
		mem:      m,
		lines:    make(map[uint64]*bufLine),
		deltaIdx: make(map[uint64]int),
	}
}

// Empty reports whether nothing is staged.
func (b *WriteBuffer) Empty() bool { return len(b.order) == 0 && len(b.deltas) == 0 }

func (b *WriteBuffer) line(la uint64) *bufLine {
	l := b.lines[la]
	if l == nil {
		if n := len(b.free); n > 0 {
			l = b.free[n-1]
			b.free = b.free[:n-1]
		} else {
			l = new(bufLine)
		}
		b.lines[la] = l
		b.order = append(b.order, la)
	}
	return l
}

// span resolves the one or two staged lines a width-byte access at addr
// touches (width ≤ 8, so it never crosses more than one line boundary).
// Hoisting the map lookups out of the per-byte loops is measurable: the
// execution engines call the byte-overlay paths once per active lane.
func (b *WriteBuffer) span(addr uint64, width uint8) (la uint64, l, l2 *bufLine) {
	la = addr &^ uint64(wbLineSize-1)
	l = b.lines[la]
	if last := (addr + uint64(width) - 1) &^ uint64(wbLineSize-1); last != la {
		l2 = b.lines[last]
	} else {
		l2 = l
	}
	return la, l, l2
}

// dirty reports whether any of the width bytes at addr carry a staged
// plain store.
func (b *WriteBuffer) dirty(addr uint64, width uint8) bool {
	if len(b.order) == 0 {
		return false
	}
	la, l, l2 := b.span(addr, width)
	if l == nil && l2 == nil {
		return false
	}
	for i := uint64(0); i < uint64(width); i++ {
		a := addr + i
		ln := l
		if a&^uint64(wbLineSize-1) != la {
			ln = l2
		}
		if ln != nil {
			off := a & (wbLineSize - 1)
			if ln.mask[off/64]&(1<<(off%64)) != 0 {
				return true
			}
		}
	}
	return false
}

// StoreGlobal stages width bytes of v at addr (little-endian).
func (b *WriteBuffer) StoreGlobal(addr, v uint64, width uint8) {
	for i := uint64(0); i < uint64(width); i++ {
		a := addr + i
		l := b.line(a &^ uint64(wbLineSize-1))
		off := a & (wbLineSize - 1)
		l.data[off] = byte(v >> (8 * i))
		l.mask[off/64] |= 1 << (off % 64)
	}
}

// LoadGlobal returns the value visible to the owning SM: the committed
// bytes overlaid with this SM's staged stores, plus its pending atomic
// delta when the bytes carry no staged store.
func (b *WriteBuffer) LoadGlobal(addr uint64, width uint8) uint64 {
	v := b.mem.ReadU(addr, width)
	anyStore := false
	if len(b.order) != 0 {
		la, l, l2 := b.span(addr, width)
		if l != nil || l2 != nil {
			for i := uint64(0); i < uint64(width); i++ {
				a := addr + i
				ln := l
				if a&^uint64(wbLineSize-1) != la {
					ln = l2
				}
				if ln == nil {
					continue
				}
				off := a & (wbLineSize - 1)
				if ln.mask[off/64]&(1<<(off%64)) != 0 {
					v = v&^(0xFF<<(8*i)) | uint64(ln.data[off])<<(8*i)
					anyStore = true
				}
			}
		}
	}
	if !anyStore && len(b.deltas) != 0 {
		if di, ok := b.deltaIdx[addr]; ok && b.deltas[di].width == width {
			v += b.deltas[di].v
		}
	}
	return v
}

// AtomicAdd stages an atomic read-modify-write and returns the old value
// visible to this SM.
func (b *WriteBuffer) AtomicAdd(addr, v uint64, width uint8) uint64 {
	if b.dirty(addr, width) {
		old := b.LoadGlobal(addr, width)
		b.StoreGlobal(addr, old+v, width)
		return old
	}
	old := b.mem.ReadU(addr, width)
	if di, ok := b.deltaIdx[addr]; ok && b.deltas[di].width == width {
		old += b.deltas[di].v
		b.deltas[di].v += v
		return old
	}
	b.deltaIdx[addr] = len(b.deltas)
	b.deltas = append(b.deltas, stagedDelta{addr: addr, v: v, width: width})
	return old
}

// OverlayLine applies this SM's staged writes for the line at lineAddr
// onto buf (which the caller filled with the committed bytes), so the SM's
// same-cycle compression/verification reads see its own stores.
func (b *WriteBuffer) OverlayLine(lineAddr uint64, buf []byte) {
	if l := b.lines[lineAddr]; l != nil {
		for w, m := range l.mask {
			for ; m != 0; m &= m - 1 {
				off := w*64 + bits.TrailingZeros64(m)
				buf[off] = l.data[off]
			}
		}
	}
	for i := range b.deltas {
		d := &b.deltas[i]
		if d.addr >= lineAddr && d.addr+uint64(d.width) <= lineAddr+wbLineSize {
			off := d.addr - lineAddr
			var cur uint64
			for j := uint64(0); j < uint64(d.width); j++ {
				cur |= uint64(buf[off+j]) << (8 * j)
			}
			cur += d.v
			for j := uint64(0); j < uint64(d.width); j++ {
				buf[off+j] = byte(cur >> (8 * j))
			}
		}
	}
}

// Flush commits every staged write into the backing Memory: atomic deltas
// first (read-modify-write against the committed value), then the staged
// line bytes. The simulator calls it at the cycle barrier in ascending
// SM-index order, before replaying the SM's outbox.
func (b *WriteBuffer) Flush() {
	for i := range b.deltas {
		d := &b.deltas[i]
		b.mem.WriteU(d.addr, b.mem.ReadU(d.addr, d.width)+d.v, d.width)
	}
	if len(b.deltas) != 0 {
		b.deltas = b.deltas[:0]
		clear(b.deltaIdx)
	}
	if len(b.order) != 0 {
		var buf [wbLineSize]byte
		for _, la := range b.order {
			l := b.lines[la]
			full := true
			for _, m := range l.mask {
				if m != ^uint64(0) {
					full = false
					break
				}
			}
			if full {
				b.mem.Write(la, l.data[:])
			} else {
				b.mem.Read(la, buf[:])
				for w, m := range l.mask {
					for ; m != 0; m &= m - 1 {
						off := w*64 + bits.TrailingZeros64(m)
						buf[off] = l.data[off]
					}
				}
				b.mem.Write(la, buf[:])
			}
			l.mask = [wbLineSize / 64]uint64{}
			b.free = append(b.free, l)
			delete(b.lines, la)
		}
		b.order = b.order[:0]
	}
}
