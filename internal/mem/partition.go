package mem

import (
	"github.com/caba-sim/caba/internal/compress"
	"github.com/caba-sim/caba/internal/config"
)

// Partition is one memory partition: a bank of the shared L2 plus its
// GDDR5 channel. Lines are interleaved across partitions at line
// granularity.
type Partition struct {
	id    int
	sys   *System
	cache *Cache
	mshr  *MSHR
	ch    *Channel
}

type readWaiter struct {
	sm   int
	user any
}

func newPartition(id int, sys *System) *Partition {
	cfg := sys.Cfg
	var md *MDCache
	if sys.Design.Compressing() {
		md = NewMDCache(cfg)
	}
	return &Partition{
		id:  id,
		sys: sys,
		cache: NewCache(cfg.L2Size/cfg.NumChannels, cfg.L2Assoc, cfg.LineSize,
			cfg.NumChannels, sys.Design.L2TagMult),
		mshr: NewMSHR(0),
		ch:   NewChannel(id, cfg, sys.Q, sys.S, md, sys.Inj),
	}
}

// handleRead runs when a read request packet arrives at the partition.
func (p *Partition) handleRead(sm int, lineAddr uint64, user any) {
	p.sys.Q.Push(p.sys.Q.Now()+float64(p.sys.Cfg.L2Latency),
		actReadL2{p: p, sm: sm, ln: lineAddr, user: user})
}

// fetch issues the DRAM read for a missing line.
func (p *Partition) fetch(lineAddr uint64) {
	bursts := compress.MaxBursts
	if p.sys.Design.Compressing() {
		st := p.sys.Dom.State(lineAddr)
		bursts = st.Bursts()
		p.sys.S.Ratio.Add(st)
	}
	p.ch.Enqueue(lineAddr, false, bursts, actFillDRAM{p: p, ln: lineAddr})
}

// fill installs a line arriving from DRAM and wakes its waiters.
func (p *Partition) fill(lineAddr uint64) {
	deliver := actDeliverFill{p: p, ln: lineAddr}
	if p.sys.Design.Scope == config.ScopeMemory && p.sys.Design.Decomp == config.DecompHW {
		// Dedicated logic at the MC decompresses before the line enters
		// L2 (HW-BDI-Mem): fixed-latency, off the core.
		d, _ := compress.HWLatency(p.sys.Design.Alg)
		p.sys.Q.Push(p.sys.Q.Now()+float64(d), deliver)
		return
	}
	deliver.Run()
}

// residentSize is the L2 slot size the line occupies: its compressed size
// only in the Figure 13 capacity-compression mode, otherwise a full slot
// (the paper's default bandwidth-only compression, Section 4.2).
func (p *Partition) residentSize(lineAddr uint64) int {
	if p.sys.Design.Scope == config.ScopeL2 && p.sys.Design.L2TagMult > 1 {
		if st := p.sys.Dom.State(lineAddr); st.IsCompressed() {
			return st.Size()
		}
	}
	return p.sys.Cfg.LineSize
}

// handleWrite runs when a full-line write packet arrives.
func (p *Partition) handleWrite(lineAddr uint64) {
	p.sys.Q.Push(p.sys.Q.Now()+float64(p.sys.Cfg.L2Latency),
		actWriteL2{p: p, ln: lineAddr})
}

// writebacks sends evicted dirty lines to DRAM.
func (p *Partition) writebacks(evs []Evicted) {
	for _, ev := range evs {
		if !ev.Dirty {
			continue
		}
		p.sys.S.L2Evictions++
		issue := actWBIssue{p: p, ln: ev.LineAddr}
		if p.sys.Design.Scope == config.ScopeMemory {
			// HW-BDI-Mem compresses at the MC on the way out.
			p.sys.Dom.CompressLine(ev.LineAddr)
			if p.sys.Design.Decomp == config.DecompHW {
				_, c := compress.HWLatency(p.sys.Design.Alg)
				p.sys.Q.Push(p.sys.Q.Now()+float64(c), issue)
				continue
			}
		}
		issue.Run()
	}
}

// respond sends the line back across the interconnect to the SM. This is
// the response-fault injection site: a dropped response never reaches the
// SM (the waiting warp wedges and the simulator's wedge detector turns
// the hang into a structured error); a delayed response is held for the
// configured number of cycles and then delivered normally (a transient
// link fault recovered by retry).
func (p *Partition) respond(sm int, lineAddr uint64, user any) {
	if p.sys.Inj.RespDrop() {
		p.sys.S.FaultsInjected++
		p.sys.S.ResponsesDropped++
		return
	}
	send := actRespSend{p: p, sm: sm, ln: lineAddr, flits: p.sys.respFlits(lineAddr), user: user}
	if d, ok := p.sys.Inj.RespDelay(); ok {
		p.sys.S.FaultsInjected++
		p.sys.S.ResponsesDelayed++
		p.sys.Q.Push(p.sys.Q.Now()+float64(d), send)
		return
	}
	send.Run()
}

// handleReadRaw serves a fault-recovery refetch of the uncompressed line.
// It reuses the L2 lookup timing but bypasses the MSHR (no merging with
// compressed waiters) and skips the compression-ratio accounting: the
// recovery transfer is overhead, not part of the campaign's compressed
// traffic.
func (p *Partition) handleReadRaw(sm int, lineAddr uint64, user any) {
	p.sys.Q.Push(p.sys.Q.Now()+float64(p.sys.Cfg.L2Latency),
		actReadRawL2{p: p, sm: sm, ln: lineAddr, user: user})
}

// respondRaw returns the uncompressed line at full-line flit cost, with no
// fault injection (the recovery channel is protected).
func (p *Partition) respondRaw(sm int, lineAddr uint64, user any) {
	p.sys.X.FromPartition(p.id, p.sys.rawFlits(),
		actFill{p: p, sm: sm, ln: lineAddr, user: user})
}
