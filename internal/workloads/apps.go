package workloads

// App describes one synthetic stand-in for a paper application. The
// fields encode what the evaluation depends on: whether the app is memory-
// or compute-bound (Figure 1), how compressible its data is and with which
// algorithm (Figure 11), its register/thread geometry (Figure 2), and its
// arithmetic intensity and working set (performance shape).
type App struct {
	Name  string
	Suite string // CUDA | Rodinia | Mars | LoneStar

	MemoryBound bool
	InFig1      bool // among the 27 apps of Figures 1-2
	InCompress  bool // among the 20 apps of Figures 7-13

	Kind       Kind
	Pattern    Pattern
	IdxPattern Pattern // index-array pattern for gather kernels

	Intensity  int // extra ALU ops per element
	SFUHeavy   bool
	CTAThreads int
	ExtraRegs  int // register pressure beyond the template's need (Fig 2)

	// WorkingSetKB is the input array size at Scale = 1.
	WorkingSetKB int
	// ItersPerThread controls run length.
	ItersPerThread int
	// ThreadsCap bounds the instantiated thread count (0 = no bound).
	// Capping threads below the machine's fill point forces each thread
	// through more loop iterations over the same working set — the
	// low-occupancy, latency-bound regime where there are too few warps
	// to hide memory latency and stride prefetching has room to win.
	ThreadsCap int
}

// Apps is the full application pool: the 27 programs of Figure 1 plus
// TRA, nw and KM, which appear only in the compression studies.
var Apps = []App{
	// --- Memory-bound (Figure 1 left) ---
	{Name: "BFS", Suite: "CUDA", MemoryBound: true, InFig1: true, InCompress: true,
		Kind: KindGather, Pattern: PatSmallInt, IdxPattern: PatStride,
		Intensity: 6, CTAThreads: 256, ExtraRegs: 4, WorkingSetKB: 4096, ItersPerThread: 24},
	{Name: "CONS", Suite: "CUDA", MemoryBound: true, InFig1: true, InCompress: true,
		Kind: KindStencil, Pattern: PatZero,
		Intensity: 8, CTAThreads: 192, ExtraRegs: 8, WorkingSetKB: 4096, ItersPerThread: 20},
	{Name: "JPEG", Suite: "CUDA", MemoryBound: true, InFig1: true, InCompress: true,
		Kind: KindStreaming, Pattern: PatDict,
		Intensity: 10, CTAThreads: 256, ExtraRegs: 10, WorkingSetKB: 4096, ItersPerThread: 32},
	{Name: "LPS", Suite: "CUDA", MemoryBound: true, InFig1: true, InCompress: true,
		Kind: KindStencil, Pattern: PatZero,
		Intensity: 10, CTAThreads: 128, ExtraRegs: 12, WorkingSetKB: 4096, ItersPerThread: 24},
	{Name: "MUM", Suite: "CUDA", MemoryBound: true, InFig1: true, InCompress: true,
		Kind: KindGather, Pattern: PatText, IdxPattern: PatRandom,
		Intensity: 8, CTAThreads: 256, ExtraRegs: 6, WorkingSetKB: 8192, ItersPerThread: 20},
	{Name: "RAY", Suite: "CUDA", MemoryBound: true, InFig1: true, InCompress: true,
		Kind: KindStreaming, Pattern: PatFloatish,
		Intensity: 40, SFUHeavy: true, CTAThreads: 128, ExtraRegs: 16, WorkingSetKB: 2048, ItersPerThread: 24},
	{Name: "SCP", Suite: "CUDA", MemoryBound: true, InFig1: true, InCompress: false,
		Kind: KindStreaming, Pattern: PatRandom,
		Intensity: 6, CTAThreads: 256, ExtraRegs: 2, WorkingSetKB: 4096, ItersPerThread: 32},
	{Name: "MM", Suite: "Mars", MemoryBound: true, InFig1: true, InCompress: true,
		Kind: KindMatmul, Pattern: PatFloatish,
		Intensity: 0, CTAThreads: 256, ExtraRegs: 8, WorkingSetKB: 4096, ItersPerThread: 64},
	{Name: "PVC", Suite: "Mars", MemoryBound: true, InFig1: true, InCompress: true,
		Kind: KindMapReduce, Pattern: PatMixedPtr,
		Intensity: 6, CTAThreads: 256, ExtraRegs: 6, WorkingSetKB: 8192, ItersPerThread: 24},
	{Name: "PVR", Suite: "Mars", MemoryBound: true, InFig1: true, InCompress: true,
		Kind: KindMapReduce, Pattern: PatMixedPtr,
		Intensity: 8, CTAThreads: 192, ExtraRegs: 8, WorkingSetKB: 8192, ItersPerThread: 20},
	{Name: "SS", Suite: "Mars", MemoryBound: true, InFig1: true, InCompress: true,
		Kind: KindMapReduce, Pattern: PatFloatish,
		Intensity: 12, CTAThreads: 256, ExtraRegs: 10, WorkingSetKB: 4096, ItersPerThread: 20},
	{Name: "sc", Suite: "Rodinia", MemoryBound: true, InFig1: true, InCompress: false,
		Kind: KindStreaming, Pattern: PatRandom,
		Intensity: 8, CTAThreads: 256, ExtraRegs: 6, WorkingSetKB: 4096, ItersPerThread: 24},
	{Name: "bfs", Suite: "LoneStar", MemoryBound: true, InFig1: true, InCompress: true,
		Kind: KindGather, Pattern: PatSmallInt, IdxPattern: PatStride,
		Intensity: 4, CTAThreads: 256, ExtraRegs: 2, WorkingSetKB: 2048, ItersPerThread: 24},
	{Name: "bh", Suite: "LoneStar", MemoryBound: true, InFig1: true, InCompress: true,
		Kind: KindGather, Pattern: PatPointer, IdxPattern: PatRandom,
		Intensity: 12, CTAThreads: 192, ExtraRegs: 14, WorkingSetKB: 4096, ItersPerThread: 16},
	{Name: "mst", Suite: "LoneStar", MemoryBound: true, InFig1: true, InCompress: true,
		Kind: KindGather, Pattern: PatSmallInt, IdxPattern: PatStride,
		Intensity: 6, CTAThreads: 256, ExtraRegs: 4, WorkingSetKB: 8192, ItersPerThread: 24},
	{Name: "sp", Suite: "LoneStar", MemoryBound: true, InFig1: true, InCompress: true,
		Kind: KindGather, Pattern: PatFloatish, IdxPattern: PatStride,
		Intensity: 10, CTAThreads: 192, ExtraRegs: 8, WorkingSetKB: 4096, ItersPerThread: 20},
	{Name: "sssp", Suite: "LoneStar", MemoryBound: true, InFig1: true, InCompress: true,
		Kind: KindGather, Pattern: PatSmallInt, IdxPattern: PatStride,
		Intensity: 5, CTAThreads: 256, ExtraRegs: 4, WorkingSetKB: 2048, ItersPerThread: 28},

	// --- Compression-suite apps not in Figure 1 ---
	{Name: "TRA", Suite: "CUDA", MemoryBound: true, InFig1: false, InCompress: true,
		Kind: KindStreaming, Pattern: PatStride,
		Intensity: 4, CTAThreads: 256, ExtraRegs: 4, WorkingSetKB: 4096, ItersPerThread: 40},
	{Name: "nw", Suite: "Rodinia", MemoryBound: true, InFig1: false, InCompress: true,
		Kind: KindStencil, Pattern: PatDict,
		Intensity: 12, CTAThreads: 128, ExtraRegs: 10, WorkingSetKB: 2048, ItersPerThread: 24},
	{Name: "KM", Suite: "Mars", MemoryBound: true, InFig1: false, InCompress: true,
		Kind: KindMapReduce, Pattern: PatFloatish,
		Intensity: 16, CTAThreads: 256, ExtraRegs: 8, WorkingSetKB: 1024, ItersPerThread: 32},

	// --- Compute-bound (Figure 1 right) ---
	{Name: "bp", Suite: "Rodinia", MemoryBound: false, InFig1: true, InCompress: false,
		Kind: KindCompute, Pattern: PatFloatish,
		Intensity: 40, CTAThreads: 256, ExtraRegs: 8, WorkingSetKB: 512, ItersPerThread: 64},
	{Name: "hs", Suite: "Rodinia", MemoryBound: false, InFig1: true, InCompress: true,
		Kind: KindStencil, Pattern: PatFloatish,
		Intensity: 36, CTAThreads: 192, ExtraRegs: 12, WorkingSetKB: 1024, ItersPerThread: 20},
	{Name: "dmr", Suite: "LoneStar", MemoryBound: false, InFig1: true, InCompress: false,
		Kind: KindCompute, Pattern: PatFloatish, SFUHeavy: true,
		Intensity: 32, CTAThreads: 128, ExtraRegs: 18, WorkingSetKB: 512, ItersPerThread: 48},
	{Name: "NQU", Suite: "CUDA", MemoryBound: false, InFig1: true, InCompress: false,
		Kind: KindCompute, Pattern: PatSmallInt,
		Intensity: 48, CTAThreads: 96, ExtraRegs: 6, WorkingSetKB: 256, ItersPerThread: 64},
	{Name: "SLA", Suite: "CUDA", MemoryBound: false, InFig1: true, InCompress: true,
		Kind: KindStreaming, Pattern: PatSmallInt,
		Intensity: 32, CTAThreads: 256, ExtraRegs: 8, WorkingSetKB: 1024, ItersPerThread: 24},
	{Name: "pt", Suite: "LoneStar", MemoryBound: false, InFig1: true, InCompress: false,
		Kind: KindCompute, Pattern: PatSmallInt,
		Intensity: 40, CTAThreads: 192, ExtraRegs: 10, WorkingSetKB: 512, ItersPerThread: 56},
	{Name: "lc", Suite: "CUDA", MemoryBound: false, InFig1: true, InCompress: false,
		Kind: KindCompute, Pattern: PatDict,
		Intensity: 36, CTAThreads: 256, ExtraRegs: 6, WorkingSetKB: 512, ItersPerThread: 48},
	{Name: "STO", Suite: "CUDA", MemoryBound: false, InFig1: true, InCompress: false,
		Kind: KindCompute, Pattern: PatRandom,
		Intensity: 44, CTAThreads: 128, ExtraRegs: 14, WorkingSetKB: 512, ItersPerThread: 48},
	{Name: "NN", Suite: "CUDA", MemoryBound: false, InFig1: true, InCompress: false,
		Kind: KindCompute, Pattern: PatFloatish,
		Intensity: 40, CTAThreads: 256, ExtraRegs: 10, WorkingSetKB: 512, ItersPerThread: 56},
	{Name: "mc", Suite: "CUDA", MemoryBound: false, InFig1: true, InCompress: false,
		Kind: KindCompute, Pattern: PatRandom, SFUHeavy: true,
		Intensity: 32, CTAThreads: 256, ExtraRegs: 8, WorkingSetKB: 256, ItersPerThread: 64},

	// --- Section 7 use-case studies (outside the paper's figure pools) ---
	// STRD: a low-occupancy strided stream over incompressible data — the
	// per-PC line stride is constant, so the stride prefetcher's detector
	// locks on, and the thread cap leaves too few warps to hide the miss
	// latency the prefetches remove (a fully occupied machine hides it
	// with parallelism instead). The favorable case for Design.UseCase =
	// UsePrefetch.
	{Name: "STRD", Suite: "CUDA", MemoryBound: true, InFig1: false, InCompress: false,
		Kind: KindStreaming, Pattern: PatRandom, ThreadsCap: 1024,
		Intensity: 2, CTAThreads: 32, ExtraRegs: 2, WorkingSetKB: 8192, ItersPerThread: 32},
	// TBL: an SFU-bound transcendental evaluation whose operands repeat
	// across warps (every warp walks the identical accumulator sequence
	// over zero-filled data), so the result cache converts almost every
	// SFU chain after the first warp's into probe hits. The favorable case
	// for Design.UseCase = UseMemoization.
	{Name: "TBL", Suite: "Rodinia", MemoryBound: false, InFig1: false, InCompress: false,
		Kind: KindCompute, Pattern: PatZero, SFUHeavy: true,
		Intensity: 4, CTAThreads: 256, ExtraRegs: 4, WorkingSetKB: 512, ItersPerThread: 64},
}

// ByName returns the app descriptor, or nil.
func ByName(name string) *App {
	for i := range Apps {
		if Apps[i].Name == name {
			return &Apps[i]
		}
	}
	return nil
}

// Fig1Apps returns the 27 apps of Figures 1-2, memory-bound first (the
// paper's ordering).
func Fig1Apps() []*App {
	var mem, comp []*App
	for i := range Apps {
		a := &Apps[i]
		if !a.InFig1 {
			continue
		}
		if a.MemoryBound {
			mem = append(mem, a)
		} else {
			comp = append(comp, a)
		}
	}
	return append(mem, comp...)
}

// CompressApps returns the 20 apps of the compression studies.
func CompressApps() []*App {
	var out []*App
	for i := range Apps {
		if Apps[i].InCompress {
			out = append(out, &Apps[i])
		}
	}
	return out
}
