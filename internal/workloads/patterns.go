// Package workloads provides synthetic stand-ins for the paper's 27
// CUDA/Rodinia/Mars/LoneStar applications. Each application descriptor
// pairs a kernel template (streaming, stencil, gather, map-reduce, tiled
// matrix, compute) with a data-pattern generator calibrated to the
// compressibility the paper reports (Figure 11) and an arithmetic
// intensity/working-set that reproduces its memory- or compute-bound
// behaviour (Figure 1).
package workloads

import (
	"encoding/binary"
	"math/rand"
)

// Pattern identifies a synthetic data distribution. Compressibility is a
// property of the bytes themselves: the generators below are calibrated so
// measuring them with internal/compress reproduces the paper's per-app
// algorithm preferences (e.g. pointer-heavy data favours BDI, text and
// dictionary data favour FPC/C-Pack, random data compresses with nothing).
type Pattern uint8

// Data patterns.
const (
	PatZero     Pattern = iota // mostly zero with sparse values
	PatSmallInt                // small bounded integers (counters, distances)
	PatPointer                 // 8-byte bases with small deltas
	PatFloatish                // 4-byte values sharing high bits (narrow-range floats)
	PatText                    // ASCII bytes
	PatDict                    // few distinct 32-bit words
	PatStride                  // smoothly increasing 4-byte values
	PatRandom                  // incompressible noise
	PatMixedPtr                // alternating pointers and small ints (PVC-style)
)

// Fill writes n bytes of the pattern at buf using rng.
func (p Pattern) Fill(buf []byte, rng *rand.Rand) {
	switch p {
	case PatZero:
		for i := range buf {
			buf[i] = 0
		}
		// Sparse small values at aligned offsets (boundary cells,
		// sparse matrices).
		for i := 0; i < len(buf)/512; i++ {
			off := rng.Intn(len(buf)/4) * 4
			binary.LittleEndian.PutUint32(buf[off:], uint32(1+rng.Intn(100)))
		}
	case PatSmallInt:
		for i := 0; i+4 <= len(buf); i += 4 {
			binary.LittleEndian.PutUint32(buf[i:], uint32(rng.Intn(512)))
		}
	case PatPointer:
		base := (rng.Uint64() | 0x4000_0000_0000) &^ 0xFFFF
		for i := 0; i+8 <= len(buf); i += 8 {
			if i%1024 == 0 {
				base += uint64(rng.Intn(1 << 20))
			}
			binary.LittleEndian.PutUint64(buf[i:], base+uint64(rng.Intn(180)))
		}
	case PatFloatish:
		// Narrow-range "floats": shared exponent bits, varying mantissa
		// low bits — compresses with 4-byte-base BDI.
		exp := uint32(0x3F80_0000)
		for i := 0; i+4 <= len(buf); i += 4 {
			binary.LittleEndian.PutUint32(buf[i:], exp|uint32(rng.Intn(1<<14)))
		}
	case PatText:
		// Genome/text-like: a small alphabet with run-length structure,
		// which FPC's repeated-byte pattern and C-Pack's dictionary catch
		// but BDI's base-delta view does not.
		alphabet := []byte("ACGTacgt nthe")
		for i := 0; i < len(buf); {
			ch := alphabet[rng.Intn(len(alphabet))]
			run := 2 + rng.Intn(7)
			for j := 0; j < run && i < len(buf); j++ {
				buf[i] = ch
				i++
			}
		}
	case PatDict:
		var dict [6]uint32
		for i := range dict {
			dict[i] = rng.Uint32()
		}
		for i := 0; i+4 <= len(buf); i += 4 {
			binary.LittleEndian.PutUint32(buf[i:], dict[rng.Intn(len(dict))])
		}
	case PatStride:
		v := uint32(rng.Intn(1 << 16))
		for i := 0; i+4 <= len(buf); i += 4 {
			binary.LittleEndian.PutUint32(buf[i:], v)
			v += uint32(1 + rng.Intn(7))
		}
	case PatRandom:
		rng.Read(buf)
	case PatMixedPtr:
		base := (rng.Uint64() | 0x8000_0000) &^ 0xFFF
		for i := 0; i+8 <= len(buf); i += 8 {
			if i%16 == 0 {
				binary.LittleEndian.PutUint64(buf[i:], uint64(rng.Intn(64)))
			} else {
				binary.LittleEndian.PutUint64(buf[i:], base+uint64(rng.Intn(200)))
			}
		}
	}
}
