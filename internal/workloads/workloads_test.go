package workloads

import (
	"math/rand"
	"testing"

	"github.com/caba-sim/caba/internal/compress"
	"github.com/caba-sim/caba/internal/config"
	"github.com/caba-sim/caba/internal/gpu"
)

func TestAppPoolShape(t *testing.T) {
	fig1 := Fig1Apps()
	if len(fig1) != 27 {
		t.Errorf("Figure 1 pool = %d apps, want 27", len(fig1))
	}
	mem := 0
	for _, a := range fig1 {
		if a.MemoryBound {
			mem++
		}
	}
	if mem != 17 {
		t.Errorf("memory-bound = %d, want 17 (Section 2)", mem)
	}
	if got := len(CompressApps()); got != 20 {
		t.Errorf("compression suite = %d apps, want 20", got)
	}
	seen := map[string]bool{}
	for i := range Apps {
		if seen[Apps[i].Name] {
			t.Errorf("duplicate app %q", Apps[i].Name)
		}
		seen[Apps[i].Name] = true
	}
}

func TestByName(t *testing.T) {
	if ByName("PVC") == nil || ByName("PVC").Suite != "Mars" {
		t.Error("PVC lookup failed")
	}
	if ByName("nope") != nil {
		t.Error("unknown app should be nil")
	}
}

func TestAllAppsInstantiate(t *testing.T) {
	cfg := config.Baseline()
	cfg.Scale = 0.05
	for i := range Apps {
		a := &Apps[i]
		inst, err := a.Instantiate(&cfg)
		if err != nil {
			t.Fatalf("%s: %v", a.Name, err)
		}
		if err := inst.Kernel.Validate(&cfg); err != nil {
			t.Errorf("%s: invalid kernel: %v", a.Name, err)
		}
		if inst.Threads%a.CTAThreads != 0 {
			t.Errorf("%s: %d threads not whole CTAs", a.Name, inst.Threads)
		}
		if inst.Kernel.Prog.NumReg > 64 {
			t.Errorf("%s: %d registers", a.Name, inst.Kernel.Prog.NumReg)
		}
	}
}

// TestPatternCompressibility pins the Figure 11 calibration: which
// algorithm wins on which pattern.
func TestPatternCompressibility(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	measure := func(p Pattern, alg compress.AlgID) float64 {
		buf := make([]byte, 64*compress.LineSize)
		p.Fill(buf, rng)
		r, err := compress.MeasureRatio(alg, buf)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	// Pointer-style data: BDI strong.
	if r := measure(PatPointer, compress.AlgBDI); r < 1.5 {
		t.Errorf("pointer/BDI ratio = %.2f, want > 1.5", r)
	}
	// Mixed pointer (the Figure 5 PVC shape): BDI strong.
	if r := measure(PatMixedPtr, compress.AlgBDI); r < 1.5 {
		t.Errorf("mixedptr/BDI ratio = %.2f, want > 1.5", r)
	}
	// Dictionary data: C-Pack beats BDI (JPEG, nw per the paper).
	bdi := measure(PatDict, compress.AlgBDI)
	cpack := measure(PatDict, compress.AlgCPack)
	if cpack <= bdi {
		t.Errorf("dict: C-Pack (%.2f) should beat BDI (%.2f)", cpack, bdi)
	}
	// Text: FPC/C-Pack beat BDI (MUM).
	bdi = measure(PatText, compress.AlgBDI)
	fpc := measure(PatText, compress.AlgFPC)
	cpk := measure(PatText, compress.AlgCPack)
	if fpc <= bdi && cpk <= bdi {
		t.Errorf("text: FPC (%.2f) or C-Pack (%.2f) should beat BDI (%.2f)", fpc, cpk, bdi)
	}
	// Random: nothing compresses.
	for _, alg := range []compress.AlgID{compress.AlgBDI, compress.AlgFPC, compress.AlgCPack} {
		if r := measure(PatRandom, alg); r > 1.1 {
			t.Errorf("random/%v ratio = %.2f, want ~1.0", alg, r)
		}
	}
	// Zero-heavy: everything compresses a lot.
	if r := measure(PatZero, compress.AlgBDI); r < 2.5 {
		t.Errorf("zero/BDI ratio = %.2f, want > 2.5", r)
	}
}

func TestPrepareAndRunSelectedApps(t *testing.T) {
	cfg := config.Baseline()
	cfg.Scale = 0.01
	cfg.NumSMs = 4
	cfg.MaxThreadsPerSM = 512
	for _, name := range []string{"SCP", "PVC", "bfs", "MM", "hs", "NQU"} {
		a := ByName(name)
		inst, err := a.Instantiate(&cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		sim, err := gpu.New(&cfg, config.DesignBase, inst.Kernel)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		ratio := inst.Prepare(sim, 7)
		if ratio != 1.0 {
			t.Errorf("%s: base design should not precompress (%v)", name, ratio)
		}
		if err := sim.Run(inst.MaxCycles()); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if sim.S.ThreadInstrs == 0 {
			t.Errorf("%s: no work executed", name)
		}
	}
}

func TestPrepareCompressingDesignPrecompresses(t *testing.T) {
	cfg := config.Baseline()
	cfg.Scale = 0.01
	cfg.NumSMs = 2
	cfg.MaxThreadsPerSM = 256
	a := ByName("PVC")
	inst, _ := a.Instantiate(&cfg)
	sim, err := gpu.New(&cfg, config.DesignCABABDI, inst.Kernel)
	if err != nil {
		t.Fatal(err)
	}
	ratio := inst.Prepare(sim, 7)
	if ratio < 1.5 {
		t.Errorf("PVC input ratio = %.2f, want BDI-friendly (> 1.5)", ratio)
	}
	if sim.Dom.CompressedLineCount() == 0 {
		t.Error("precompression left no compressed lines")
	}
}

func TestDeterministicPreparation(t *testing.T) {
	cfg := config.Baseline()
	cfg.Scale = 0.01
	a := ByName("JPEG")
	mk := func() uint64 {
		inst, _ := a.Instantiate(&cfg)
		sim, err := gpu.New(&cfg, config.DesignBase, inst.Kernel)
		if err != nil {
			t.Fatal(err)
		}
		inst.Prepare(sim, 42)
		var sum uint64
		for off := uint64(0); off < 4096; off += 8 {
			sum += sim.Mem.ReadU(InBase+off, 8)
		}
		return sum
	}
	if mk() != mk() {
		t.Error("same seed must produce identical data")
	}
}

func TestKindString(t *testing.T) {
	if KindGather.String() != "gather" || Kind(99).String() == "" {
		t.Error("Kind.String broken")
	}
}

func TestMemoryBoundAppsHaveMemoryKinds(t *testing.T) {
	for i := range Apps {
		a := &Apps[i]
		if !a.MemoryBound && a.Kind != KindCompute && a.Kind != KindStencil && a.Kind != KindStreaming {
			t.Errorf("%s: compute-bound app with kind %v", a.Name, a.Kind)
		}
	}
}
