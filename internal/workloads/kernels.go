package workloads

import (
	"fmt"
	"strings"

	"github.com/caba-sim/caba/internal/isa"
)

// Memory layout shared by all workload kernels. Addresses are baked into
// the programs; the %p parameter registers carry sizes.
const (
	InBase  = 0x1000_0000 // input data array
	IdxBase = 0x1800_0000 // index array (gather kernels)
	OutBase = 0x2000_0000 // output array
	AuxBase = 0x2800_0000 // buckets / scratch (map-reduce kernels)

	// AuxBuckets is the histogram size used by map-reduce kernels.
	AuxBuckets = 1024
)

// Kind selects a kernel template.
type Kind uint8

// Kernel templates.
const (
	KindStreaming Kind = iota // pipelined strided reduction/transform
	KindStencil               // 3-point neighbourhood sweep
	KindGather                // index-array indirection (irregular)
	KindMapReduce             // hash + atomic histogram
	KindMatmul                // shared-memory tiled multiply with barriers
	KindCompute               // SFU-heavy, little memory
)

var kindNames = [...]string{"streaming", "stencil", "gather", "mapreduce", "matmul", "compute"}

// String returns the template name.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// aluBody emits `n` data-dependent ALU ops over reg (as assembly lines),
// modeling per-element compute intensity.
func aluBody(reg string, n int) string {
	ops := []string{
		"mul %s, %s, 3\n", "add %s, %s, 17\n", "xor %s, %s, 255\n",
		"shr %s, %s, 1\n", "or %s, %s, 5\n", "sub %s, %s, 2\n",
	}
	var b strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, ops[i%len(ops)], reg, reg)
	}
	return b.String()
}

// buildStreaming: each thread sums `iters` elements strided across the
// array with 4-deep pipelined loads, applies `intensity` ALU ops per
// element batch, and writes one result.
//
// Params: %p0 = passes over the working set, %p2 = stride bytes,
// %p3 = iters per pass.
func buildStreaming(name string, intensity int) *isa.Program {
	src := fmt.Sprintf(`
  movi r10, %d          ; in base
  mov r0, %%gtid
  shl r0, r0, 2
  movi r2, 0
  movi r9, 0            ; pass counter
pass:
  add r1, r0, r10
  movi r3, 0
loop:
  ld.global.u32 r4, [r1]
  add r1, r1, %%p2
  ld.global.u32 r5, [r1]
  add r1, r1, %%p2
  ld.global.u32 r6, [r1]
  add r1, r1, %%p2
  ld.global.u32 r7, [r1]
  add r1, r1, %%p2
  add r2, r2, r4
  add r2, r2, r5
  add r2, r2, r6
  add r2, r2, r7
%s  add r3, r3, 4
  setp.lt p0, r3, %%p3
  @p0 bra loop
  add r9, r9, 1
  setp.lt p0, r9, %%p0
  @p0 bra pass
  movi r10, %d          ; out base
  add r5, r0, r10
  st.global.u32 [r5], r2
  exit`, InBase, aluBody("r2", intensity), OutBase)
	return isa.MustAssemble(name, src)
}

// buildStencil: threads sweep rows of a 2D grid, reading the 3-point
// neighbourhood, computing, and writing the result row.
//
// Params: %p0 = passes, %p2 = row stride bytes (grid width * 4),
// %p3 = rows per pass.
func buildStencil(name string, intensity int) *isa.Program {
	src := fmt.Sprintf(`
  movi r10, %d
  mov r0, %%gtid
  shl r0, r0, 2
  movi r11, %d
  movi r8, 0            ; pass counter
pass:
  add r1, r0, r10       ; row pointer (input)
  add r9, r0, r11       ; row pointer (output)
  movi r3, 0
loop:
  ld.global.u32 r4, [r1-4]
  ld.global.u32 r5, [r1]
  ld.global.u32 r6, [r1+4]
  add r4, r4, r6
  shr r4, r4, 1
  add r4, r4, r5
  shr r4, r4, 1
%s  st.global.u32 [r9], r4
  add r1, r1, %%p2
  add r9, r9, %%p2
  add r3, r3, 1
  setp.lt p0, r3, %%p3
  @p0 bra loop
  add r8, r8, 1
  setp.lt p0, r8, %%p0
  @p0 bra pass
  exit`, InBase, OutBase, aluBody("r4", intensity))
	return isa.MustAssemble(name, src)
}

// buildGather: irregular access — each step loads an index, then the
// indexed element (a dependent load), accumulating. Low MLP, the classic
// graph-application profile.
//
// Params: %p0 = index-walk stride in bytes (total threads * 4),
// %p2 = element count (power of two), %p3 = iters.
func buildGather(name string, intensity int) *isa.Program {
	src := fmt.Sprintf(`
  movi r10, %d          ; idx base
  movi r11, %d          ; in base
  mov r0, %%gtid
  shl r0, r0, 2
  mov r13, r0           ; byte offset within the index array
  movi r2, 0
  movi r3, 0
  mov r12, %%p2
  shl r12, r12, 2
  sub r12, r12, 1      ; byte mask over the index array
  mov r14, %%p2
  sub r14, r14, 1      ; element mask over the data array
loop:
  add r1, r13, r10
  ld.global.u32 r4, [r1]
  and r4, r4, r14
  shl r4, r4, 2
  add r4, r4, r11
  ld.global.u32 r5, [r4] ; dependent, data-driven load
  add r2, r2, r5
%s  add r13, r13, %%p0
  and r13, r13, r12     ; wrap within the index array
  add r3, r3, 1
  setp.lt p0, r3, %%p3
  @p0 bra loop
  movi r10, %d
  add r5, r0, r10
  st.global.u32 [r5], r2
  exit`, IdxBase, InBase, aluBody("r2", intensity), OutBase)
	return isa.MustAssemble(name, src)
}

// buildMapReduce: stream elements, hash them, and atomically accumulate
// into a bucket array (Mars-style PageViewCount/Rank).
//
// Params: %p0 = passes, %p2 = stride bytes, %p3 = iters per pass.
func buildMapReduce(name string, intensity int) *isa.Program {
	src := fmt.Sprintf(`
  movi r10, %d          ; in base
  movi r11, %d          ; aux (buckets) base
  mov r0, %%gtid
  shl r0, r0, 2
  movi r9, 0            ; pass counter
  movi r8, 0            ; local combiner (Mars-style)
pass:
  add r1, r0, r10
  movi r3, 0
loop:
  ld.global.u32 r4, [r1]
  add r1, r1, %%p2
  sfu r5, r4            ; hash
%s  add r8, r8, r5
  and r6, r3, 7
  setp.eq p1, r6, 7     ; flush the combiner every 8 elements
  and r5, r8, %d
  shl r5, r5, 2
  add r5, r5, r11
  movi r6, 1
  @p1 atom.add.u32 r7, [r5], r6
  add r3, r3, 1
  setp.lt p0, r3, %%p3
  @p0 bra loop
  add r9, r9, 1
  setp.lt p0, r9, %%p0
  @p0 bra pass
  exit`, InBase, AuxBase, aluBody("r4", intensity), AuxBuckets-1)
	return isa.MustAssemble(name, src)
}

// buildMatmul: a simplified shared-memory tiled multiply. Each CTA stages
// a tile of A and B into shared memory behind barriers, then every thread
// accumulates an 8-term dot-product slice per tile.
//
// Params: %p2 = tiles per thread, %p3 = tile stride bytes.
func buildMatmul(name string) *isa.Program {
	src := fmt.Sprintf(`
  movi r10, %d
  mov r0, %%tid
  shl r1, r0, 2
  mov r2, %%gtid
  shl r2, r2, 2
  add r2, r2, r10       ; A pointer
  movi r4, 0            ; acc
  movi r3, 0            ; tile counter
tile:
  ld.global.u32 r5, [r2]
  st.shared.u32 [r1], r5
  bar
  movi r6, 0
  mov r7, r1
inner:
  ld.shared.u32 r8, [r7]
  mad r4, r8, r5, r4
  add r7, r7, 4
  and r7, r7, 1023
  add r6, r6, 1
  setp.lt p0, r6, 8
  @p0 bra inner
  bar
  add r2, r2, %%p3
  add r3, r3, 1
  setp.lt p0, r3, %%p2
  @p0 bra tile
  movi r10, %d
  mov r9, %%gtid
  shl r9, r9, 2
  add r9, r9, r10
  st.global.u32 [r9], r4
  exit`, InBase, OutBase)
	return isa.MustAssemble(name, src)
}

// buildCompute: SFU-and-ALU-heavy with an occasional load; the
// compute-bound profile of Figure 1.
//
// Params: %p2 = stride bytes, %p3 = iters.
func buildCompute(name string, intensity int, sfuHeavy bool) *isa.Program {
	sfu := "sfu r2, r2\n"
	if sfuHeavy {
		sfu = "sfu r2, r2\n  sfu r2, r2\n  sfu r2, r2\n"
	}
	src := fmt.Sprintf(`
  movi r10, %d
  mov r0, %%gtid
  shl r0, r0, 2
  add r1, r0, r10
  movi r2, 7
  movi r3, 0
loop:
  and r6, r3, 7
  setp.eq p1, r6, 0
  @p1 ld.global.u32 r4, [r1]
  @p1 add r1, r1, %%p2
  @p1 xor r2, r2, r4
  %s%s  add r3, r3, 1
  setp.lt p0, r3, %%p3
  @p0 bra loop
  movi r10, %d
  add r5, r0, r10
  st.global.u32 [r5], r2
  exit`, InBase, sfu, aluBody("r2", intensity), OutBase)
	return isa.MustAssemble(name, src)
}
