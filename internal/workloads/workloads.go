package workloads

import (
	"fmt"
	"math/rand"

	"github.com/caba-sim/caba/internal/config"
	"github.com/caba-sim/caba/internal/gpu"
	"github.com/caba-sim/caba/internal/isa"
)

// Instance is an App instantiated for a particular configuration: the
// built kernel plus the memory layout it expects.
type Instance struct {
	App     *App
	Kernel  *gpu.Kernel
	Threads int
	// Memory regions (bytes) the workload reads; compressing designs
	// precompress these (Section 4.3.1).
	InBytes  uint64
	IdxBytes uint64
	OutBytes uint64
}

// roundPow2 rounds n up to a power of two (minimum 1024).
func roundPow2(n int) int {
	p := 1024
	for p < n {
		p <<= 1
	}
	return p
}

// Instantiate sizes and builds the kernel for cfg (honoring cfg.Scale).
// Threads are chosen to fill the machine (so scaled-down runs stay
// parallel); per-thread iteration counts then cover the working set.
func (a *App) Instantiate(cfg *config.Config) (*Instance, error) {
	elements := roundPow2(int(float64(a.WorkingSetKB) * 1024 * cfg.Scale / 4))
	fill := cfg.NumSMs * cfg.MaxThreadsPerSM

	var threads, iters, passes int
	passes = 1
	if a.Kind == KindCompute {
		// Compute-bound apps: work is iterations, not elements.
		threads = 2 * fill
		iters = a.ItersPerThread
	} else {
		threads = elements / 4 // at least 4 elements per thread
		if threads > 2*fill {
			threads = 2 * fill
		}
		if threads > 1<<16 {
			threads = 1 << 16
		}
		if a.ThreadsCap > 0 && threads > a.ThreadsCap {
			threads = a.ThreadsCap
		}
		if threads < a.CTAThreads {
			threads = a.CTAThreads
		}
		iters = elements / threads
		if iters > a.ItersPerThread*4 {
			iters = a.ItersPerThread * 4
		}
		if iters < 4 {
			iters = 4
		}
		// Multiple passes give a sustained phase (real kernels launch
		// repeatedly over the same data) — but only when the working set
		// exceeds the L2 by a margin, so repetition does not turn a
		// DRAM-streaming application into an L2-resident one.
		if elements*4 > 3*(cfg.L2Size/2) {
			for passes*iters < a.ItersPerThread && passes < 8 {
				passes++
			}
		}
	}
	if iters < 4 {
		iters = 4
	}
	iters &^= 3 // templates unroll by 4 where it matters
	ctas := (threads + a.CTAThreads - 1) / a.CTAThreads
	threads = ctas * a.CTAThreads

	var prog *isa.Program
	params := [4]uint64{}
	shared := 0
	stride := uint64(threads * 4)
	switch a.Kind {
	case KindStreaming:
		prog = buildStreaming(a.Name, a.Intensity)
		params = [4]uint64{uint64(passes), 0, stride, uint64(iters)}
	case KindStencil:
		prog = buildStencil(a.Name, a.Intensity)
		params = [4]uint64{uint64(passes), 0, stride, uint64(iters)}
	case KindGather:
		prog = buildGather(a.Name, a.Intensity)
		params = [4]uint64{stride, 0, uint64(elements), uint64(iters)}
	case KindMapReduce:
		prog = buildMapReduce(a.Name, a.Intensity)
		params = [4]uint64{uint64(passes), 0, stride, uint64(iters)}
	case KindMatmul:
		prog = buildMatmul(a.Name)
		// Tile count is the app's work knob (each tile is an 8-term
		// inner loop behind two barriers).
		tiles := a.ItersPerThread / 8
		if tiles < 1 {
			tiles = 1
		}
		params = [4]uint64{0, 0, uint64(tiles), stride}
		shared = a.CTAThreads * 4
		if shared < 1024 {
			shared = 1024
		}
	case KindCompute:
		prog = buildCompute(a.Name, a.Intensity, a.SFUHeavy)
		params = [4]uint64{0, 0, stride, uint64(iters)}
	default:
		return nil, fmt.Errorf("workloads: %s: unknown kind %v", a.Name, a.Kind)
	}
	// Model the application's real register pressure (Figure 2).
	prog.NumReg += a.ExtraRegs
	if prog.NumReg > 64 {
		prog.NumReg = 64
	}

	inBytes := uint64(elements * 4)
	inst := &Instance{
		App:     a,
		Threads: threads,
		Kernel: &gpu.Kernel{
			Prog:       prog,
			GridCTAs:   ctas,
			CTAThreads: a.CTAThreads,
			SharedMem:  shared,
			Params:     params,
		},
		InBytes:  inBytes,
		OutBytes: uint64(threads * 4),
	}
	if a.Kind == KindGather {
		inst.IdxBytes = inBytes
	}
	return inst, nil
}

// Prepare fills the simulator's memory with the app's data patterns and,
// for compressing designs, performs the Section 4.3.1 one-time setup
// (input transferred to GPU memory in compressed form). It returns the
// input compression ratio achieved by the precompression (1.0 when not
// compressing).
func (inst *Instance) Prepare(sim *gpu.Simulator, seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	buf := make([]byte, inst.InBytes)
	inst.App.Pattern.Fill(buf, rng)
	sim.Mem.Write(InBase, buf)
	if inst.IdxBytes > 0 {
		idx := make([]byte, inst.IdxBytes)
		pat := inst.App.IdxPattern
		pat.Fill(idx, rng)
		sim.Mem.Write(IdxBase, idx)
	}
	if !sim.Design.Compressing() {
		return 1.0
	}
	ratio := sim.Dom.Precompress(InBase, inst.InBytes)
	if inst.IdxBytes > 0 {
		sim.Dom.Precompress(IdxBase, inst.IdxBytes)
	}
	return ratio
}

// MaxCycles returns a generous per-run cycle budget scaled to the
// instance (a watchdog against deadlock regressions).
func (inst *Instance) MaxCycles() uint64 {
	work := uint64(inst.Threads) * uint64(8*(inst.App.ItersPerThread+8))
	c := work * 400
	if c < 20_000_000 {
		c = 20_000_000
	}
	return c
}
