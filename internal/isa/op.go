// Package isa defines the miniature SIMT instruction set executed by the
// simulated GPU cores. Both regular workload kernels and CABA assist-warp
// subroutines are expressed in this ISA, so assist warps compete for the
// same fetch/issue/ALU resources as the programs they accelerate.
//
// The ISA is deliberately small (integer/logic ALU ops, a long-latency SFU
// op, global/shared memory accesses, predication, SIMT branches, barriers)
// plus a handful of staging ops that assist warps use to read a fetched
// compressed cache line and write back its decompressed form. Values are
// 64-bit so that 8-byte Base-Delta-Immediate bases fit in one register.
package isa

import "fmt"

// Op identifies an instruction operation.
type Op uint8

// Operation codes. The groupings matter to the timing model: ALU ops occupy
// the integer pipeline, SFU ops the special-function pipeline, and memory
// ops the load-store pipeline.
const (
	OpNop Op = iota

	// ALU: integer arithmetic and logic.
	OpMov  // dst = srcA
	OpMovI // dst = imm
	OpAdd  // dst = srcA + srcB
	OpAddI // dst = srcA + imm
	OpSub  // dst = srcA - srcB
	OpSubI // dst = srcA - imm
	OpMul  // dst = srcA * srcB
	OpMulI // dst = srcA * imm
	OpMad  // dst = srcA*srcB + srcC
	OpMin  // dst = min(srcA, srcB) (unsigned)
	OpMax  // dst = max(srcA, srcB) (unsigned)
	OpAnd
	OpAndI
	OpOr
	OpOrI
	OpXor
	OpXorI
	OpNot  // dst = ^srcA
	OpShl  // dst = srcA << srcB
	OpShlI // dst = srcA << imm
	OpShr  // dst = srcA >> srcB (logical)
	OpShrI // dst = srcA >> imm (logical)
	OpSext // dst = sign-extend low Width bytes of srcA

	// Predicate manipulation.
	OpSetP    // predDst = cmp(srcA, srcB)
	OpSetPI   // predDst = cmp(srcA, imm)
	OpPAnd    // predDst = predA && predB
	OpPOr     // predDst = predA || predB
	OpPNot    // predDst = !predA
	OpSel     // dst = predA ? srcA : srcB
	OpVoteAll // predDst = AND of predA across all active lanes (warp-wide)
	OpVoteAny // predDst = OR of predA across all active lanes (warp-wide)
	OpBallot  // dst = bitmask of predA across the warp (inactive lanes read 0)
	OpShfl    // dst = srcA value of lane (srcB & 31), pre-instruction state
	OpCtz     // dst = count of trailing zero bits in srcA (64 if srcA == 0)

	// SFU: long-latency special function (modeled bit-mixing function).
	OpSfu

	// Memory.
	OpLdGlobal // dst = mem[srcA + imm] (Width bytes, zero-extended)
	OpStGlobal // mem[srcA + imm] = srcB (Width bytes)
	OpLdShared // dst = shared[srcA + imm]
	OpStShared // shared[srcA + imm] = srcB
	OpAtomAdd  // dst = mem[srcA+imm]; mem[srcA+imm] += srcB (global)

	// Assist-warp staging ops. LdStage reads from the per-warp staging
	// buffer holding a fetched (compressed) cache line; StStage writes the
	// per-warp output buffer that is installed into the cache when the
	// subroutine completes. These occupy the load-store pipeline but never
	// leave the SM.
	OpLdStage // dst = stage[srcA + imm] (Width bytes)
	OpStStage // out[srcA + imm] = srcB (Width bytes)

	// Control.
	OpBra  // unconditional branch to Target
	OpBrab // branch with reconvergence: lanes where guard pred holds jump
	OpBar  // CTA-wide barrier
	OpExit // thread terminates

	opCount
)

// Class buckets ops by the pipeline they occupy.
type Class uint8

const (
	// ClassALU ops execute in the scalar ALU pipelines.
	ClassALU Class = iota
	// ClassSFU ops occupy a special-function unit with an initiation
	// interval.
	ClassSFU
	// ClassMem ops issue through the load-store unit.
	ClassMem
	// ClassCtrl ops steer control flow (branches, barriers, exits).
	ClassCtrl
)

var opInfo = [opCount]struct {
	name  string
	class Class
}{
	OpNop:      {"nop", ClassALU},
	OpMov:      {"mov", ClassALU},
	OpMovI:     {"movi", ClassALU},
	OpAdd:      {"add", ClassALU},
	OpAddI:     {"addi", ClassALU},
	OpSub:      {"sub", ClassALU},
	OpSubI:     {"subi", ClassALU},
	OpMul:      {"mul", ClassALU},
	OpMulI:     {"muli", ClassALU},
	OpMad:      {"mad", ClassALU},
	OpMin:      {"min", ClassALU},
	OpMax:      {"max", ClassALU},
	OpAnd:      {"and", ClassALU},
	OpAndI:     {"andi", ClassALU},
	OpOr:       {"or", ClassALU},
	OpOrI:      {"ori", ClassALU},
	OpXor:      {"xor", ClassALU},
	OpXorI:     {"xori", ClassALU},
	OpNot:      {"not", ClassALU},
	OpShl:      {"shl", ClassALU},
	OpShlI:     {"shli", ClassALU},
	OpShr:      {"shr", ClassALU},
	OpShrI:     {"shri", ClassALU},
	OpSext:     {"sext", ClassALU},
	OpSetP:     {"setp", ClassALU},
	OpSetPI:    {"setpi", ClassALU},
	OpPAnd:     {"pand", ClassALU},
	OpPOr:      {"por", ClassALU},
	OpPNot:     {"pnot", ClassALU},
	OpSel:      {"sel", ClassALU},
	OpVoteAll:  {"vote.all", ClassALU},
	OpVoteAny:  {"vote.any", ClassALU},
	OpBallot:   {"ballot", ClassALU},
	OpShfl:     {"shfl", ClassALU},
	OpCtz:      {"ctz", ClassALU},
	OpSfu:      {"sfu", ClassSFU},
	OpLdGlobal: {"ld.global", ClassMem},
	OpStGlobal: {"st.global", ClassMem},
	OpLdShared: {"ld.shared", ClassMem},
	OpStShared: {"st.shared", ClassMem},
	OpAtomAdd:  {"atom.add", ClassMem},
	OpLdStage:  {"ld.stage", ClassMem},
	OpStStage:  {"st.stage", ClassMem},
	OpBra:      {"bra", ClassCtrl},
	OpBrab:     {"brab", ClassCtrl},
	OpBar:      {"bar", ClassCtrl},
	OpExit:     {"exit", ClassCtrl},
}

// String returns the mnemonic for the op.
func (o Op) String() string {
	if int(o) < len(opInfo) && opInfo[o].name != "" {
		return opInfo[o].name
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Class reports which execution pipeline the op occupies.
func (o Op) Class() Class {
	if int(o) < len(opInfo) {
		return opInfo[o].class
	}
	return ClassALU
}

// IsMem reports whether the op accesses a memory pipeline.
func (o Op) IsMem() bool { return o.Class() == ClassMem }

// IsGlobalMem reports whether the op accesses global memory (and therefore
// the cache hierarchy, as opposed to shared memory or staging buffers).
func (o Op) IsGlobalMem() bool {
	return o == OpLdGlobal || o == OpStGlobal || o == OpAtomAdd
}

// IsLoad reports whether the op produces a register value from memory.
func (o Op) IsLoad() bool {
	return o == OpLdGlobal || o == OpLdShared || o == OpLdStage || o == OpAtomAdd
}

// IsStore reports whether the op writes memory.
func (o Op) IsStore() bool {
	return o == OpStGlobal || o == OpStShared || o == OpStStage || o == OpAtomAdd
}

// IsBranch reports whether the op can redirect control flow.
func (o Op) IsBranch() bool { return o == OpBra || o == OpBrab }

// HasImm reports whether the op consumes its immediate operand.
func (o Op) HasImm() bool {
	switch o {
	case OpMovI, OpAddI, OpSubI, OpMulI, OpAndI, OpOrI, OpXorI, OpShlI, OpShrI,
		OpSetPI, OpLdGlobal, OpStGlobal, OpLdShared, OpStShared, OpAtomAdd,
		OpLdStage, OpStStage:
		return true
	}
	return false
}

// CmpOp is a comparison used by SetP.
type CmpOp uint8

// Comparison operators. Signed variants interpret operands as two's
// complement int64.
const (
	CmpEQ CmpOp = iota
	CmpNE
	CmpLT
	CmpLE
	CmpGT
	CmpGE
	CmpLTS
	CmpLES
	CmpGTS
	CmpGES
)

var cmpNames = [...]string{"eq", "ne", "lt", "le", "gt", "ge", "lts", "les", "gts", "ges"}

// String returns the suffix mnemonic for the comparison.
func (c CmpOp) String() string {
	if int(c) < len(cmpNames) {
		return cmpNames[c]
	}
	return fmt.Sprintf("cmp(%d)", uint8(c))
}
