package isa

import "fmt"

// Builder constructs Programs programmatically. It tracks forward label
// references and the highest general register touched so that NumReg is
// computed automatically (callers may still raise it, e.g. to model register
// pressure). The zero value is not usable; call NewBuilder.
type Builder struct {
	name    string
	code    []Instr
	labels  map[string]int
	fixups  []fixup
	maxReg  int
	lastErr error
}

type fixup struct {
	instr int
	label string
}

// NewBuilder returns a Builder for a program with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{name: name, labels: make(map[string]int), maxReg: -1}
}

func (b *Builder) touch(rs ...Reg) {
	for _, r := range rs {
		if r != RegNone && r.IsGeneral() && r.GeneralIndex() > b.maxReg {
			b.maxReg = r.GeneralIndex()
		}
	}
}

func (b *Builder) emit(in Instr) *Builder {
	b.touch(in.Dst, in.SrcA, in.SrcB, in.SrcC)
	b.code = append(b.code, in)
	return b
}

// Label defines a label at the current position.
func (b *Builder) Label(name string) *Builder {
	if _, dup := b.labels[name]; dup && b.lastErr == nil {
		b.lastErr = fmt.Errorf("isa: duplicate label %q", name)
	}
	b.labels[name] = len(b.code)
	return b
}

// Guard returns a copy of the builder state that predicates the next
// emitted instruction. Implemented by mutating the last instruction is
// error-prone; instead callers use the explicit *P variants below or
// GuardNext.
func (b *Builder) GuardNext(p Pred, neg bool) func(*Builder) *Builder {
	return func(bb *Builder) *Builder {
		if len(bb.code) > 0 {
			last := &bb.code[len(bb.code)-1]
			last.Guard, last.GuardNeg = p, neg
		}
		return bb
	}
}

// WithGuard predicates the most recently emitted instruction.
func (b *Builder) WithGuard(p Pred, neg bool) *Builder {
	if len(b.code) == 0 {
		if b.lastErr == nil {
			b.lastErr = fmt.Errorf("isa: WithGuard on empty program")
		}
		return b
	}
	last := &b.code[len(b.code)-1]
	last.Guard, last.GuardNeg = p, neg
	return b
}

// --- ALU ---

// Mov emits dst = src.
func (b *Builder) Mov(dst, src Reg) *Builder {
	return b.emit(Instr{Op: OpMov, Dst: dst, SrcA: src, SrcB: RegNone, SrcC: RegNone, Guard: PredNone, PDst: PredNone, PA: PredNone, PB: PredNone})
}

// MovI emits dst = imm.
func (b *Builder) MovI(dst Reg, imm int64) *Builder {
	return b.emit(Instr{Op: OpMovI, Dst: dst, SrcA: RegNone, SrcB: RegNone, SrcC: RegNone, Imm: imm, Guard: PredNone, PDst: PredNone, PA: PredNone, PB: PredNone})
}

func (b *Builder) alu2(op Op, dst, a, c Reg) *Builder {
	return b.emit(Instr{Op: op, Dst: dst, SrcA: a, SrcB: c, SrcC: RegNone, Guard: PredNone, PDst: PredNone, PA: PredNone, PB: PredNone})
}

func (b *Builder) aluI(op Op, dst, a Reg, imm int64) *Builder {
	return b.emit(Instr{Op: op, Dst: dst, SrcA: a, SrcB: RegNone, SrcC: RegNone, Imm: imm, Guard: PredNone, PDst: PredNone, PA: PredNone, PB: PredNone})
}

// Add emits dst = a + c.
func (b *Builder) Add(dst, a, c Reg) *Builder { return b.alu2(OpAdd, dst, a, c) }

// AddI emits dst = a + imm.
func (b *Builder) AddI(dst, a Reg, imm int64) *Builder { return b.aluI(OpAddI, dst, a, imm) }

// Sub emits dst = a - c.
func (b *Builder) Sub(dst, a, c Reg) *Builder { return b.alu2(OpSub, dst, a, c) }

// SubI emits dst = a - imm.
func (b *Builder) SubI(dst, a Reg, imm int64) *Builder { return b.aluI(OpSubI, dst, a, imm) }

// Mul emits dst = a * c.
func (b *Builder) Mul(dst, a, c Reg) *Builder { return b.alu2(OpMul, dst, a, c) }

// MulI emits dst = a * imm.
func (b *Builder) MulI(dst, a Reg, imm int64) *Builder { return b.aluI(OpMulI, dst, a, imm) }

// Mad emits dst = a*x + y.
func (b *Builder) Mad(dst, a, x, y Reg) *Builder {
	return b.emit(Instr{Op: OpMad, Dst: dst, SrcA: a, SrcB: x, SrcC: y, Guard: PredNone, PDst: PredNone, PA: PredNone, PB: PredNone})
}

// Min emits dst = min(a, c) treating operands as unsigned.
func (b *Builder) Min(dst, a, c Reg) *Builder { return b.alu2(OpMin, dst, a, c) }

// Max emits dst = max(a, c) treating operands as unsigned.
func (b *Builder) Max(dst, a, c Reg) *Builder { return b.alu2(OpMax, dst, a, c) }

// And emits dst = a & c.
func (b *Builder) And(dst, a, c Reg) *Builder { return b.alu2(OpAnd, dst, a, c) }

// AndI emits dst = a & imm.
func (b *Builder) AndI(dst, a Reg, imm int64) *Builder { return b.aluI(OpAndI, dst, a, imm) }

// Or emits dst = a | c.
func (b *Builder) Or(dst, a, c Reg) *Builder { return b.alu2(OpOr, dst, a, c) }

// OrI emits dst = a | imm.
func (b *Builder) OrI(dst, a Reg, imm int64) *Builder { return b.aluI(OpOrI, dst, a, imm) }

// Xor emits dst = a ^ c.
func (b *Builder) Xor(dst, a, c Reg) *Builder { return b.alu2(OpXor, dst, a, c) }

// XorI emits dst = a ^ imm.
func (b *Builder) XorI(dst, a Reg, imm int64) *Builder { return b.aluI(OpXorI, dst, a, imm) }

// Not emits dst = ^a.
func (b *Builder) Not(dst, a Reg) *Builder {
	return b.emit(Instr{Op: OpNot, Dst: dst, SrcA: a, SrcB: RegNone, SrcC: RegNone, Guard: PredNone, PDst: PredNone, PA: PredNone, PB: PredNone})
}

// Shl emits dst = a << c.
func (b *Builder) Shl(dst, a, c Reg) *Builder { return b.alu2(OpShl, dst, a, c) }

// ShlI emits dst = a << imm.
func (b *Builder) ShlI(dst, a Reg, imm int64) *Builder { return b.aluI(OpShlI, dst, a, imm) }

// Shr emits dst = a >> c (logical).
func (b *Builder) Shr(dst, a, c Reg) *Builder { return b.alu2(OpShr, dst, a, c) }

// ShrI emits dst = a >> imm (logical).
func (b *Builder) ShrI(dst, a Reg, imm int64) *Builder { return b.aluI(OpShrI, dst, a, imm) }

// Sext emits dst = sign-extend of the low width bytes of a.
func (b *Builder) Sext(dst, a Reg, width uint8) *Builder {
	return b.emit(Instr{Op: OpSext, Dst: dst, SrcA: a, SrcB: RegNone, SrcC: RegNone, Width: width, Guard: PredNone, PDst: PredNone, PA: PredNone, PB: PredNone})
}

// Sfu emits dst = sfu(a), the long-latency special-function op.
func (b *Builder) Sfu(dst, a Reg) *Builder {
	return b.emit(Instr{Op: OpSfu, Dst: dst, SrcA: a, SrcB: RegNone, SrcC: RegNone, Guard: PredNone, PDst: PredNone, PA: PredNone, PB: PredNone})
}

// --- Predicates ---

// SetP emits pd = cmp(a, c).
func (b *Builder) SetP(cmp CmpOp, pd Pred, a, c Reg) *Builder {
	return b.emit(Instr{Op: OpSetP, Cmp: cmp, Dst: RegNone, SrcA: a, SrcB: c, SrcC: RegNone, PDst: pd, PA: PredNone, PB: PredNone, Guard: PredNone})
}

// SetPI emits pd = cmp(a, imm).
func (b *Builder) SetPI(cmp CmpOp, pd Pred, a Reg, imm int64) *Builder {
	return b.emit(Instr{Op: OpSetPI, Cmp: cmp, Dst: RegNone, SrcA: a, SrcB: RegNone, SrcC: RegNone, Imm: imm, PDst: pd, PA: PredNone, PB: PredNone, Guard: PredNone})
}

// PAnd emits pd = pa && pb.
func (b *Builder) PAnd(pd, pa, pb Pred) *Builder {
	return b.emit(Instr{Op: OpPAnd, Dst: RegNone, SrcA: RegNone, SrcB: RegNone, SrcC: RegNone, PDst: pd, PA: pa, PB: pb, Guard: PredNone})
}

// POr emits pd = pa || pb.
func (b *Builder) POr(pd, pa, pb Pred) *Builder {
	return b.emit(Instr{Op: OpPOr, Dst: RegNone, SrcA: RegNone, SrcB: RegNone, SrcC: RegNone, PDst: pd, PA: pa, PB: pb, Guard: PredNone})
}

// PNot emits pd = !pa.
func (b *Builder) PNot(pd, pa Pred) *Builder {
	return b.emit(Instr{Op: OpPNot, Dst: RegNone, SrcA: RegNone, SrcB: RegNone, SrcC: RegNone, PDst: pd, PA: pa, PB: PredNone, Guard: PredNone})
}

// Sel emits dst = pa ? a : c.
func (b *Builder) Sel(dst Reg, pa Pred, a, c Reg) *Builder {
	return b.emit(Instr{Op: OpSel, Dst: dst, SrcA: a, SrcB: c, SrcC: RegNone, PDst: PredNone, PA: pa, PB: PredNone, Guard: PredNone})
}

// VoteAll emits pd = AND of pa across active lanes. This is the warp-wide
// "global predicate register" the paper adds for compression encoding tests.
func (b *Builder) VoteAll(pd, pa Pred) *Builder {
	return b.emit(Instr{Op: OpVoteAll, Dst: RegNone, SrcA: RegNone, SrcB: RegNone, SrcC: RegNone, PDst: pd, PA: pa, PB: PredNone, Guard: PredNone})
}

// VoteAny emits pd = OR of pa across active lanes.
func (b *Builder) VoteAny(pd, pa Pred) *Builder {
	return b.emit(Instr{Op: OpVoteAny, Dst: RegNone, SrcA: RegNone, SrcB: RegNone, SrcC: RegNone, PDst: pd, PA: pa, PB: PredNone, Guard: PredNone})
}

// Ballot emits dst = bitmask of pa across the warp (bit i = lane i's pa;
// inactive lanes contribute 0). This is PTX vote.ballot.
func (b *Builder) Ballot(dst Reg, pa Pred) *Builder {
	return b.emit(Instr{Op: OpBallot, Dst: dst, SrcA: RegNone, SrcB: RegNone, SrcC: RegNone, PDst: PredNone, PA: pa, PB: PredNone, Guard: PredNone})
}

// Shfl emits dst = a's value in lane (idx & 31), reading pre-instruction
// register state (PTX shfl.idx). Inactive source lanes supply 0.
func (b *Builder) Shfl(dst, a, idx Reg) *Builder {
	return b.emit(Instr{Op: OpShfl, Dst: dst, SrcA: a, SrcB: idx, SrcC: RegNone, PDst: PredNone, PA: PredNone, PB: PredNone, Guard: PredNone})
}

// Ctz emits dst = count of trailing zeros of a (64 when a == 0); PTX
// bfind/clz equivalent used to locate the first set ballot bit.
func (b *Builder) Ctz(dst, a Reg) *Builder {
	return b.emit(Instr{Op: OpCtz, Dst: dst, SrcA: a, SrcB: RegNone, SrcC: RegNone, PDst: PredNone, PA: PredNone, PB: PredNone, Guard: PredNone})
}

// --- Memory ---

func (b *Builder) load(op Op, dst, addr Reg, off int64, width uint8) *Builder {
	return b.emit(Instr{Op: op, Dst: dst, SrcA: addr, SrcB: RegNone, SrcC: RegNone, Imm: off, Width: width, Guard: PredNone, PDst: PredNone, PA: PredNone, PB: PredNone})
}

func (b *Builder) store(op Op, addr Reg, off int64, src Reg, width uint8) *Builder {
	return b.emit(Instr{Op: op, Dst: RegNone, SrcA: addr, SrcB: src, SrcC: RegNone, Imm: off, Width: width, Guard: PredNone, PDst: PredNone, PA: PredNone, PB: PredNone})
}

// LdGlobal emits dst = global[addr+off] of width bytes.
func (b *Builder) LdGlobal(dst, addr Reg, off int64, width uint8) *Builder {
	return b.load(OpLdGlobal, dst, addr, off, width)
}

// StGlobal emits global[addr+off] = src of width bytes.
func (b *Builder) StGlobal(addr Reg, off int64, src Reg, width uint8) *Builder {
	return b.store(OpStGlobal, addr, off, src, width)
}

// LdShared emits dst = shared[addr+off].
func (b *Builder) LdShared(dst, addr Reg, off int64, width uint8) *Builder {
	return b.load(OpLdShared, dst, addr, off, width)
}

// StShared emits shared[addr+off] = src.
func (b *Builder) StShared(addr Reg, off int64, src Reg, width uint8) *Builder {
	return b.store(OpStShared, addr, off, src, width)
}

// AtomAdd emits dst = global[addr+off]; global[addr+off] += src.
func (b *Builder) AtomAdd(dst, addr Reg, off int64, src Reg, width uint8) *Builder {
	return b.emit(Instr{Op: OpAtomAdd, Dst: dst, SrcA: addr, SrcB: src, SrcC: RegNone, Imm: off, Width: width, Guard: PredNone, PDst: PredNone, PA: PredNone, PB: PredNone})
}

// LdStage emits dst = stage[addr+off] (assist-warp staging buffer read).
func (b *Builder) LdStage(dst, addr Reg, off int64, width uint8) *Builder {
	return b.load(OpLdStage, dst, addr, off, width)
}

// StStage emits out[addr+off] = src (assist-warp output buffer write).
func (b *Builder) StStage(addr Reg, off int64, src Reg, width uint8) *Builder {
	return b.store(OpStStage, addr, off, src, width)
}

// --- Control ---

// Bra emits an unconditional branch to label.
func (b *Builder) Bra(label string) *Builder {
	b.fixups = append(b.fixups, fixup{len(b.code), label})
	return b.emit(Instr{Op: OpBra, Dst: RegNone, SrcA: RegNone, SrcB: RegNone, SrcC: RegNone, Guard: PredNone, PDst: PredNone, PA: PredNone, PB: PredNone})
}

// BraP emits a predicated, reconverging branch: lanes where p (xor neg)
// holds jump to label, others fall through; the SIMT stack reconverges at
// the immediate post-dominator chosen by the hardware model.
func (b *Builder) BraP(p Pred, neg bool, label string) *Builder {
	b.fixups = append(b.fixups, fixup{len(b.code), label})
	return b.emit(Instr{Op: OpBrab, Dst: RegNone, SrcA: RegNone, SrcB: RegNone, SrcC: RegNone, Guard: p, GuardNeg: neg, PDst: PredNone, PA: PredNone, PB: PredNone})
}

// Bar emits a CTA-wide barrier.
func (b *Builder) Bar() *Builder {
	return b.emit(Instr{Op: OpBar, Dst: RegNone, SrcA: RegNone, SrcB: RegNone, SrcC: RegNone, Guard: PredNone, PDst: PredNone, PA: PredNone, PB: PredNone})
}

// Exit emits thread termination.
func (b *Builder) Exit() *Builder {
	return b.emit(Instr{Op: OpExit, Dst: RegNone, SrcA: RegNone, SrcB: RegNone, SrcC: RegNone, Guard: PredNone, PDst: PredNone, PA: PredNone, PB: PredNone})
}

// Nop emits a no-op (consumes an issue slot and ALU cycle).
func (b *Builder) Nop() *Builder {
	return b.emit(Instr{Op: OpNop, Dst: RegNone, SrcA: RegNone, SrcB: RegNone, SrcC: RegNone, Guard: PredNone, PDst: PredNone, PA: PredNone, PB: PredNone})
}

// Build resolves labels and returns the validated program.
func (b *Builder) Build() (*Program, error) {
	if b.lastErr != nil {
		return nil, b.lastErr
	}
	for _, f := range b.fixups {
		target, ok := b.labels[f.label]
		if !ok {
			return nil, fmt.Errorf("isa: program %q: undefined label %q", b.name, f.label)
		}
		b.code[f.instr].Target = int32(target)
	}
	p := &Program{
		Name:   b.name,
		Code:   b.code,
		NumReg: b.maxReg + 1,
		Labels: b.labels,
	}
	if p.NumReg == 0 {
		p.NumReg = 1
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustBuild is Build that panics on error; for static program construction.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}
