package isa

import "math/bits"

// This file implements the functional (value) semantics of the scalar ALU
// and SFU operations. The execution engine calls these per active lane;
// warp-level ops (ballot, shfl, vote) are handled by the executor, which
// sees all lanes at once.

// NonALUOpError reports an op outside the scalar ALU set reaching ALU
// evaluation — a malformed program (Validate rejects none of the ops, so
// this means a corrupted opcode). It is a typed error so the executor can
// surface it as a structured execution fault instead of a bare panic.
type NonALUOpError struct{ Op Op }

// Error implements the error interface.
func (e *NonALUOpError) Error() string {
	return "isa: EvalALU called with non-ALU op " + e.Op.String()
}

// EvalALU computes the result of a scalar ALU op given already-read operand
// values a, b, c and the instruction immediate. Ops that do not produce a
// general-register result (predicate ops, memory, control) yield a
// *NonALUOpError.
func EvalALU(in *Instr, a, b, c uint64) (uint64, error) {
	switch in.Op {
	case OpMov:
		return a, nil
	case OpMovI:
		return uint64(in.Imm), nil
	case OpAdd:
		return a + b, nil
	case OpAddI:
		return a + uint64(in.Imm), nil
	case OpSub:
		return a - b, nil
	case OpSubI:
		return a - uint64(in.Imm), nil
	case OpMul:
		return a * b, nil
	case OpMulI:
		return a * uint64(in.Imm), nil
	case OpMad:
		return a*b + c, nil
	case OpMin:
		if a < b {
			return a, nil
		}
		return b, nil
	case OpMax:
		if a > b {
			return a, nil
		}
		return b, nil
	case OpAnd:
		return a & b, nil
	case OpAndI:
		return a & uint64(in.Imm), nil
	case OpOr:
		return a | b, nil
	case OpOrI:
		return a | uint64(in.Imm), nil
	case OpXor:
		return a ^ b, nil
	case OpXorI:
		return a ^ uint64(in.Imm), nil
	case OpNot:
		return ^a, nil
	case OpShl:
		return a << (b & 63), nil
	case OpShlI:
		return a << (uint64(in.Imm) & 63), nil
	case OpShr:
		return a >> (b & 63), nil
	case OpShrI:
		return a >> (uint64(in.Imm) & 63), nil
	case OpSext:
		return SignExtend(a, in.Width), nil
	case OpSfu:
		return SFUMix(a), nil
	case OpCtz:
		return uint64(bits.TrailingZeros64(a)), nil
	case OpNop:
		return 0, nil
	}
	return 0, &NonALUOpError{Op: in.Op}
}

// EvalCmp evaluates a SetP comparison between a and b.
func EvalCmp(cmp CmpOp, a, b uint64) bool {
	switch cmp {
	case CmpEQ:
		return a == b
	case CmpNE:
		return a != b
	case CmpLT:
		return a < b
	case CmpLE:
		return a <= b
	case CmpGT:
		return a > b
	case CmpGE:
		return a >= b
	case CmpLTS:
		return int64(a) < int64(b)
	case CmpLES:
		return int64(a) <= int64(b)
	case CmpGTS:
		return int64(a) > int64(b)
	case CmpGES:
		return int64(a) >= int64(b)
	}
	panic("isa: unknown comparison")
}

// SignExtend sign-extends the low `width` bytes of v to 64 bits.
func SignExtend(v uint64, width uint8) uint64 {
	shift := 64 - uint(width)*8
	return uint64(int64(v<<shift) >> shift)
}

// ZeroExtend keeps only the low `width` bytes of v.
func ZeroExtend(v uint64, width uint8) uint64 {
	if width >= 8 {
		return v
	}
	return v & ((uint64(1) << (uint(width) * 8)) - 1)
}

// SFUMix is the modeled special-function computation: an invertible 64-bit
// bit-mixer (splitmix64 finalizer). Its exact function is irrelevant to the
// architecture study; it stands in for rsqrt/sin-style SFU work and gives
// data-dependent but deterministic results for memoization experiments.
func SFUMix(v uint64) uint64 {
	v ^= v >> 30
	v *= 0xbf58476d1ce4e5b9
	v ^= v >> 27
	v *= 0x94d049bb133111eb
	v ^= v >> 31
	return v
}
