package isa

import "math/bits"

// This file implements the functional (value) semantics of the scalar ALU
// and SFU operations. The execution engine calls these per active lane;
// warp-level ops (ballot, shfl, vote) are handled by the executor, which
// sees all lanes at once.

// EvalALU computes the result of a scalar ALU op given already-read operand
// values a, b, c and the instruction immediate. Ops that do not produce a
// general-register result (predicate ops, memory, control) must not be
// passed here.
func EvalALU(in *Instr, a, b, c uint64) uint64 {
	switch in.Op {
	case OpMov:
		return a
	case OpMovI:
		return uint64(in.Imm)
	case OpAdd:
		return a + b
	case OpAddI:
		return a + uint64(in.Imm)
	case OpSub:
		return a - b
	case OpSubI:
		return a - uint64(in.Imm)
	case OpMul:
		return a * b
	case OpMulI:
		return a * uint64(in.Imm)
	case OpMad:
		return a*b + c
	case OpMin:
		if a < b {
			return a
		}
		return b
	case OpMax:
		if a > b {
			return a
		}
		return b
	case OpAnd:
		return a & b
	case OpAndI:
		return a & uint64(in.Imm)
	case OpOr:
		return a | b
	case OpOrI:
		return a | uint64(in.Imm)
	case OpXor:
		return a ^ b
	case OpXorI:
		return a ^ uint64(in.Imm)
	case OpNot:
		return ^a
	case OpShl:
		return a << (b & 63)
	case OpShlI:
		return a << (uint64(in.Imm) & 63)
	case OpShr:
		return a >> (b & 63)
	case OpShrI:
		return a >> (uint64(in.Imm) & 63)
	case OpSext:
		return SignExtend(a, in.Width)
	case OpSfu:
		return sfuMix(a)
	case OpCtz:
		return uint64(bits.TrailingZeros64(a))
	case OpNop:
		return 0
	}
	panic("isa: EvalALU called with non-ALU op " + in.Op.String())
}

// EvalCmp evaluates a SetP comparison between a and b.
func EvalCmp(cmp CmpOp, a, b uint64) bool {
	switch cmp {
	case CmpEQ:
		return a == b
	case CmpNE:
		return a != b
	case CmpLT:
		return a < b
	case CmpLE:
		return a <= b
	case CmpGT:
		return a > b
	case CmpGE:
		return a >= b
	case CmpLTS:
		return int64(a) < int64(b)
	case CmpLES:
		return int64(a) <= int64(b)
	case CmpGTS:
		return int64(a) > int64(b)
	case CmpGES:
		return int64(a) >= int64(b)
	}
	panic("isa: unknown comparison")
}

// SignExtend sign-extends the low `width` bytes of v to 64 bits.
func SignExtend(v uint64, width uint8) uint64 {
	shift := 64 - uint(width)*8
	return uint64(int64(v<<shift) >> shift)
}

// ZeroExtend keeps only the low `width` bytes of v.
func ZeroExtend(v uint64, width uint8) uint64 {
	if width >= 8 {
		return v
	}
	return v & ((uint64(1) << (uint(width) * 8)) - 1)
}

// sfuMix is the modeled special-function computation: an invertible 64-bit
// bit-mixer (splitmix64 finalizer). Its exact function is irrelevant to the
// architecture study; it stands in for rsqrt/sin-style SFU work and gives
// data-dependent but deterministic results for memoization experiments.
func sfuMix(v uint64) uint64 {
	v ^= v >> 30
	v *= 0xbf58476d1ce4e5b9
	v ^= v >> 27
	v *= 0x94d049bb133111eb
	v ^= v >> 31
	return v
}
