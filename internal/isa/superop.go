package isa

// This file implements the predecode pass: at kernel load a Program is
// compiled once into a flat []Superop — dense decoded-instruction records
// with operands resolved to direct register-file indices, branch and
// reconvergence targets precomputed, and scoreboard bitmasks ready for
// single AND/OR dependence checks. The per-cycle hot loop then performs a
// single indexed dispatch per issued instruction instead of re-walking
// Instr fields through layered switch statements (Reg.IsGeneral, RegNone
// checks, Op.Class table chases, on-demand post-dominator lookups).
//
// Superop index == PC. The identity mapping keeps the SIMT divergence
// stack, snapshots, and the invariant auditor expressed in program
// counters, so a decoded and an interpreted execution are byte-identical
// in every serialized or observable structure.

// Superop is one pre-decoded instruction. It is immutable after
// predecode and shared by every warp executing the program (across
// simulators too: Decoded is cached on the Program like IPDom).
type Superop struct {
	Op    Op
	Class Class
	Cmp   CmpOp
	Width uint8

	// Guard predicate, as on Instr.
	Guard    Pred
	GuardNeg bool

	// A/B/C are SrcA/SrcB/SrcC resolved to register-file indices: the
	// general file when the Spec flag is false, the special file when
	// true. Unused operands (RegNone) resolve to the always-zero special
	// register, so operand readers need no RegNone branch.
	ASpec, BSpec, CSpec bool
	A, B, C             uint16

	// Dst is the general destination register index, or -1 when the
	// instruction writes no general register.
	Dst int16

	PDst, PA, PB Pred

	Imm    int64
	Target int32

	// RPC is the precomputed reconvergence point (immediate
	// post-dominator) used by Brab; the interpreter looks this up in the
	// IPDom table per execution.
	RPC int32

	// PC is the instruction's own index (superop index == PC).
	PC int32

	// Issue-path flags, precomputed from the op so the scheduler does no
	// opInfo table walks.
	GlobalMem bool // accesses the cache hierarchy (ld/st.global, atom)
	StoreOp   bool // writes memory
	LoadOp    bool // produces a register value from memory
	// BadOp marks an op outside the ISA (or an operand outside the
	// architectural register files). Executing it yields a structured
	// error; Program.Validate rejects such programs up front.
	BadOp bool

	// Scoreboard masks over the 256 general registers and the predicate
	// registers, mirroring core.RegMask's layout: Use covers every
	// register the instruction reads or writes (sources, destinations,
	// guard and predicate operands — the RAW/WAW conflict set), Set
	// covers the destinations it marks pending at issue and releases at
	// writeback.
	UseG [4]uint64
	UseP uint8
	SetG [4]uint64
	SetP uint8

	// In points at the original instruction, for diagnostics and
	// disassembly.
	In *Instr
}

// Decoded is a predecoded program: Ops[i] is the superop form of
// Prog.Code[i].
type Decoded struct {
	Prog *Program
	Ops  []Superop

	// RunLen[pc] is the length of the maximal straightline *run* headed at
	// pc: consecutive ClassALU superops with no memory accesses, no
	// barriers, no branches (and so no divergence or reconvergence), no
	// SFU initiation-interval interactions, no assist-warp trigger sites,
	// and no BadOp — every op advances PC by exactly one. The final
	// program instruction is never part of a run (falling off the end
	// exits the warp, a scheduler-visible lifecycle event). A pc heading
	// no such sequence has RunLen 0; RunLen[pc] >= 2 marks a macro-step
	// candidate for the block-batched issue engine (Config.BatchIssue).
	RunLen []int32
}

// Decoded returns the predecoded form of p, computing and caching it on
// first use. Safe for concurrent use (programs are immutable after
// assembly and shared across simulators in parallel sweeps).
func (p *Program) Decoded() *Decoded {
	p.decOnce.Do(func() { p.dec = decodeProgram(p) })
	return p.dec
}

// resolveReg maps a source operand to its register-file slot. RegNone
// reads as zero, which is exactly what the always-zero special register
// provides.
func resolveReg(r Reg) (idx uint16, spec bool, bad bool) {
	switch {
	case r == RegNone:
		return uint16(RegZero.SpecialIndex()), true, false
	case r.IsGeneral():
		return uint16(r), false, r.GeneralIndex() >= 256
	default:
		return uint16(r.SpecialIndex()), true, r.SpecialIndex() >= NumSpecial
	}
}

func decodeProgram(p *Program) *Decoded {
	ipdom := p.IPDom()
	d := &Decoded{Prog: p, Ops: make([]Superop, len(p.Code))}
	for i := range p.Code {
		in := &p.Code[i]
		s := &d.Ops[i]
		s.Op = in.Op
		s.Class = in.Op.Class()
		s.Cmp = in.Cmp
		s.Width = in.Width
		s.Guard, s.GuardNeg = in.Guard, in.GuardNeg

		var badA, badB, badC bool
		s.A, s.ASpec, badA = resolveReg(in.SrcA)
		s.B, s.BSpec, badB = resolveReg(in.SrcB)
		s.C, s.CSpec, badC = resolveReg(in.SrcC)
		s.Dst = -1
		if in.Dst != RegNone && in.Dst.IsGeneral() {
			if in.Dst.GeneralIndex() >= 256 {
				s.BadOp = true
			} else {
				s.Dst = int16(in.Dst.GeneralIndex())
			}
		}
		s.PDst, s.PA, s.PB = in.PDst, in.PA, in.PB
		s.Imm = in.Imm
		s.Target = in.Target
		s.RPC = int32(ipdom[i])
		s.PC = int32(i)

		s.GlobalMem = in.Op.IsGlobalMem()
		s.StoreOp = in.Op.IsStore()
		s.LoadOp = in.Op.IsLoad()
		if in.Op >= opCount || badA || badB || badC {
			s.BadOp = true
		}

		// Conflict set: every general register and predicate the
		// instruction touches (sources and destinations; the guard and
		// predicate operands). The shift semantics mirror core.RegMask
		// exactly, including the uint8 shift-out-of-range behavior for
		// malformed predicate numbers.
		for _, r := range [...]Reg{in.SrcA, in.SrcB, in.SrcC, in.Dst} {
			if r != RegNone && r.IsGeneral() && r.GeneralIndex() < 256 {
				gi := r.GeneralIndex()
				s.UseG[gi/64] |= 1 << (gi % 64)
			}
		}
		for _, pr := range [...]Pred{in.Guard, in.PA, in.PB, in.PDst} {
			if pr != PredNone {
				s.UseP |= 1 << pr
			}
		}
		// Destination set: what issue marks pending and writeback clears.
		if s.Dst >= 0 {
			s.SetG[s.Dst/64] |= 1 << (uint(s.Dst) % 64)
		}
		if in.PDst != PredNone {
			s.SetP |= 1 << in.PDst
		}

		s.In = in
	}
	d.RunLen = segmentRuns(d.Ops)
	return d
}

// segmentRuns computes the straightline-run table (Decoded.RunLen) with a
// single backward pass: an op extends the run headed at its successor iff
// it is a well-formed ALU op, and the final instruction never joins a run
// (executing it can exit the warp when it falls off the program end).
// ClassMem (LSU ports, store buffer, MSHR, assist-warp triggers), ClassSFU
// (initiation interval), ClassCtrl (branches, barriers, exit) and BadOp
// all terminate runs: each interacts with scheduler state beyond the
// warp's own scoreboard, so only pure ALU sequences batch.
func segmentRuns(ops []Superop) []int32 {
	runs := make([]int32, len(ops))
	for i := len(ops) - 1; i >= 0; i-- {
		if i == len(ops)-1 || ops[i].Class != ClassALU || ops[i].BadOp {
			continue // RunLen 0
		}
		runs[i] = runs[i+1] + 1
	}
	return runs
}
